(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Figures 2-4 and the fourth, text-only server-count experiment)
   and runs Bechamel micro-benchmarks of the concurrency-control hot paths
   that make up the "added overhead of the ACC".

   Usage:  main.exe [all|fig2|fig3|fig4|servers|micro|parallel|quick] *)

module Experiment = Acc_harness.Experiment
module Figures = Acc_harness.Figures
module Json = Acc_obs.Json

let ppf = Format.std_formatter

let check_consistency fig =
  let v = Figures.consistency_violations fig in
  if v > 0 then Format.fprintf ppf "!! %d consistency violations (semantic correctness broken)@." v
  else Format.fprintf ppf "consistency: all runs ended in a consistent database@."

(* fig3 and fig4 share fig2's standard sweep; run it once *)
let run_figures ~quick =
  let settings = Experiment.default_settings in
  let fig2 = Figures.fig2 ~quick settings in
  Figures.render ppf fig2;
  check_consistency fig2;
  let std_series =
    match List.find_opt (fun s -> s.Figures.name = "standard") fig2.Figures.series with
    | Some s -> s
    | None ->
        failwith
          (Printf.sprintf
             "fig2 produced no \"standard\" series (got: %s); fig3/fig4 splice from it"
             (String.concat ", " (List.map (fun s -> s.Figures.name) fig2.Figures.series)))
  in
  let fig3 =
    let computed = Figures.fig3 ~quick settings in
    {
      computed with
      Figures.series =
        (match computed.Figures.series with
        | [ _without; with_compute ] ->
            [ { std_series with Figures.name = "w/o compute time" }; with_compute ]
        | other -> other);
    }
  in
  Figures.render ppf fig3;
  check_consistency fig3;
  let fig4 = { (Figures.fig4 ~quick settings) with Figures.series = [ std_series ] } in
  Figures.render ppf fig4;
  let servers = Figures.servers ~quick settings in
  Figures.render ppf servers;
  check_consistency servers;
  let items = Figures.items ~quick settings in
  Figures.render ppf items;
  check_consistency items;
  let ablation = Figures.ablation ~quick settings in
  Figures.render ppf ablation;
  check_consistency ablation;
  [ fig2; fig3; fig4; servers; items; ablation ]

let run_one ~quick id =
  let settings = Experiment.default_settings in
  let fig =
    match id with
    | "fig2" -> Figures.fig2 ~quick settings
    | "fig3" -> Figures.fig3 ~quick settings
    | "fig4" -> Figures.fig4 ~quick settings
    | "servers" -> Figures.servers ~quick settings
    | "ablation" -> Figures.ablation ~quick settings
    | "items" -> Figures.items ~quick settings
    | _ -> invalid_arg "unknown figure"
  in
  Figures.render ppf fig;
  check_consistency fig;
  fig

(* ---------- multicore scaling ------------------------------------------ *)

(* Committed-txns/sec versus domain count, ACC against strict 2PL, on the
   real-domain engine (no simulator): the contended regime — client compute
   at each pace point while locks are held — where step-boundary release
   pays.  Wall-clock, so numbers vary with the host; the shape is the
   point. *)
let run_parallel ~quick =
  let module P = Acc_tpcc.Parallel_driver in
  let seconds = if quick then 1.5 else 4.0 in
  let base =
    {
      P.default_config with
      P.duration = seconds;
      compute_between = 0.001;
      mix = P.New_order_payment;
    }
  in
  Format.fprintf ppf "@.=== parallel: committed txns/sec vs domains (%.1fs per cell) ===@."
    seconds;
  Format.fprintf ppf "%8s %12s %12s %8s@." "domains" "acc" "2pl" "ratio";
  let cells =
    List.map
      (fun domains ->
        let cfg system = { base with P.system; domains } in
        (* the ACC cell runs traced so its span-level phase breakdown lands
           next to the throughput numbers; the 2PL cell stays untraced (its
           role is the clean baseline trajectory) *)
        let acc, phases = Bench_json.with_phases (fun () -> P.run (cfg P.Acc)) in
        let bl = P.run (cfg P.Baseline) in
        (match (acc.P.violations, bl.P.violations) with
        | [], [] -> ()
        | va, vb ->
            Format.fprintf ppf "!! consistency violations: acc=%d 2pl=%d@." (List.length va)
              (List.length vb));
        Format.fprintf ppf "%8d %12.1f %12.1f %8.2f@." domains acc.P.throughput
          bl.P.throughput
          (if bl.P.throughput > 0. then acc.P.throughput /. bl.P.throughput else nan);
        Json.Obj
          [
            ("domains", Json.Int domains);
            ("acc", Bench_json.parallel_report_json ~cfg:(cfg P.Acc) acc);
            ("twopl", Bench_json.parallel_report_json ~cfg:(cfg P.Baseline) bl);
            ("phases", phases);
            ( "throughput_ratio",
              Json.Float
                (if bl.P.throughput > 0. then acc.P.throughput /. bl.P.throughput else nan) );
          ])
      [ 1; 2; 4 ]
  in
  (* one instrumented cell: conflict accounting on, fixed txn count, so the
     "ACC passed where 2PL would block" numbers land in the JSON (the sweep
     cells above run clean to keep the trajectory numbers honest) *)
  let inst_domains = 2 in
  let inst_cfg =
    {
      base with
      P.system = P.Acc;
      domains = inst_domains;
      duration = 0.;
      txns_per_domain = Some (if quick then 100 else 300);
      accounting = true;
    }
  in
  let inst = P.run inst_cfg in
  Format.fprintf ppf "@.--- instrumented cell (accounting on, %d domains) ---@." inst_domains;
  Acc_obs.Conflict_accounting.pp_table ppf ~label:P.step_label ~header:"lock decisions"
    inst.P.conflicts;
  [
    ("cells", Json.List cells);
    ( "instrumented",
      Json.Obj
        [
          ("domains", Json.Int inst_domains);
          ("acc", Bench_json.parallel_report_json ~cfg:inst_cfg inst);
        ] );
  ]

(* ---------- workload plugin sweep -------------------------------------- *)

(* Every registered workload plugin through the multicore engine: ACC with
   conflict accounting on against the strict-2PL baseline, fixed transaction
   count, same seed.  The headline per workload is the false-conflict column
   — lock decisions the ACC granted where strict 2PL would have blocked
   (the shadow-2PL classifier, DESIGN.md §11) — next to the throughput
   ratio; each cell also re-checks the workload's own invariants.  Exits
   non-zero on violations or leaks anywhere in the sweep. *)
let run_workloads ~quick =
  let module P = Acc_tpcc.Parallel_driver in
  let module CA = Acc_obs.Conflict_accounting in
  Acc_harness.Cli.ensure_registered ();
  let domains = 4 in
  let per_domain = if quick then 150 else 500 in
  let names = List.map fst (Acc_workload.Registry.names ()) in
  Format.fprintf ppf
    "@.=== workloads: every registered plugin, ACC vs strict 2PL (%d domains x %d txns) ===@."
    domains per_domain;
  Format.fprintf ppf "%18s %10s %10s %7s %12s %12s %12s@." "workload" "acc tx/s"
    "2pl tx/s" "ratio" "granted" "false-confl" "true-confl";
  let failures = ref 0 in
  let cells =
    List.map
      (fun name ->
        let wl =
          match Acc_workload.Registry.find name with
          | Some make ->
              make { Acc_workload.scale = 1; skew = 0.; mix = None; abort_rate = None }
          | None -> assert false
        in
        let cfg system =
          {
            P.default_config with
            P.system;
            domains;
            duration = 0.;
            txns_per_domain = Some per_domain;
            (* the contended regime (client compute at each pace point while
               locks are held) — same as the parallel sweep, and the regime
               where step-boundary release is supposed to pay *)
            compute_between = 0.001;
            accounting = true;
            workload = Some wl;
          }
        in
        let acc = P.run (cfg P.Acc) in
        let bl = P.run (cfg P.Baseline) in
        let bad r = r.P.violations <> [] || r.P.leaked_locks > 0 || r.P.leaked_waiters > 0 in
        if bad acc || bad bl then begin
          incr failures;
          List.iter
            (fun v -> Format.fprintf ppf "  violation (%s): %s@." name v)
            (acc.P.violations @ bl.P.violations)
        end;
        (* the accounting totals come from the ACC run: every grant is also
           checked against a shadow strict-2PL lock table, so r_passed_2pl
           counts exactly the false conflicts the assertional modes dissolve *)
        let tot f = List.fold_left (fun a row -> a + f row) 0 acc.P.conflicts in
        let granted = tot (fun r -> r.CA.r_granted_clean) in
        let false_conflicts = tot (fun r -> r.CA.r_passed_2pl) in
        let true_conflicts = tot (fun r -> r.CA.r_blocked_conv + r.CA.r_blocked_assert) in
        Format.fprintf ppf "%18s %10.1f %10.1f %7.2f %12d %12d %12d@." name
          acc.P.throughput bl.P.throughput
          (if bl.P.throughput > 0. then acc.P.throughput /. bl.P.throughput else nan)
          granted false_conflicts true_conflicts;
        Json.Obj
          [
            ("workload", Json.Str name);
            ("domains", Json.Int domains);
            ("txns_per_domain", Json.Int per_domain);
            ("granted_clean", Json.Int granted);
            ("false_conflicts", Json.Int false_conflicts);
            ("true_conflicts", Json.Int true_conflicts);
            ( "throughput_ratio",
              Json.Float
                (if bl.P.throughput > 0. then acc.P.throughput /. bl.P.throughput
                 else nan) );
            ("acc", Bench_json.parallel_report_json ~cfg:(cfg P.Acc) acc);
            ("twopl", Bench_json.parallel_report_json ~cfg:(cfg P.Baseline) bl);
          ])
      names
  in
  let json = [ ("cells", Json.List cells) ] in
  if !failures > 0 then begin
    Bench_json.write ~mode:"workloads" json;
    Format.fprintf ppf "!! workload sweep left violations or leaks@.";
    exit 1
  end;
  json

(* ---------- overload bench --------------------------------------------- *)

(* The engine past saturation: 4× more worker domains than the admission cap,
   a district hotspot, and a short lock-wait deadline.  The robustness claim
   being measured (DESIGN.md §13): the engine sheds rather than queues, every
   lock wait is bounded, and the database is consistent after the drain — so
   the headline numbers are the shed rate and the p99 lock wait, not
   throughput.  Exits non-zero on violations or leaks: CI runs this as the
   overload soak's machine-readable half. *)
let run_overload ~quick =
  let module P = Acc_tpcc.Parallel_driver in
  let seconds = if quick then 2.0 else 5.0 in
  let max_inflight = 2 in
  let domains = 4 * max_inflight in
  let deadline = 0.05 in
  let cfg =
    {
      P.default_config with
      P.system = P.Acc;
      domains;
      duration = seconds;
      compute_between = 0.001;
      mix = P.New_order_payment;
      skewed_district = true;
      lock_deadline = Some deadline;
      max_inflight = Some max_inflight;
      shed_watermark = Some 200.;
    }
  in
  Format.fprintf ppf
    "@.=== overload: %d domains against an admission cap of %d (%.1fs, %.0fms deadline) ===@."
    domains max_inflight seconds (deadline *. 1000.);
  let r, phases = Bench_json.with_phases (fun () -> P.run cfg) in
  Format.fprintf ppf "%a@." P.pp_report r;
  List.iter (fun v -> Format.fprintf ppf "  violation: %s@." v) r.P.violations;
  let attempts = r.P.shed + r.P.committed + r.P.forced_aborts + r.P.compensations in
  let shed_rate =
    if attempts > 0 then float_of_int r.P.shed /. float_of_int attempts else 0.
  in
  Format.fprintf ppf "  shed rate:           %.3f (%d of %d admission attempts)@."
    shed_rate r.P.shed attempts;
  let json =
    [
      ( "overload",
        Json.Obj
          [
            ("domains", Json.Int domains);
            ("max_inflight", Json.Int max_inflight);
            ("deadline_ms", Json.Float (deadline *. 1000.));
            ("shed_watermark", Json.Float 200.);
            ("shed_rate", Json.Float shed_rate);
            ("report", Bench_json.parallel_report_json ~cfg r);
            ("phases", phases);
          ] );
    ]
  in
  if r.P.violations <> [] || r.P.leaked_locks > 0 || r.P.leaked_waiters > 0 then begin
    Bench_json.write ~mode:"overload" json;
    Format.fprintf ppf "!! overload run left violations or leaks@.";
    exit 1
  end;
  json

(* ---------- batched footprint acquisition ------------------------------ *)

(* The lock-service batching claim, measured: the same fixed-count parallel
   TPC-C run with footprints acquired lock-by-lock versus batched per step
   ([Runtime.options.batch_footprints]).  Batching groups each step's
   declared footprint per shard and takes every shard mutex once, so the
   comparison is shard-mutex acquisitions per committed transaction; the
   guard rail is that throughput must not regress. *)
let run_batch ~quick =
  let module P = Acc_tpcc.Parallel_driver in
  let module Runtime = Acc_core.Runtime in
  let domains = if quick then 2 else 4 in
  let per_domain = if quick then 150 else 500 in
  let base =
    {
      P.default_config with
      P.system = P.Acc;
      domains;
      duration = 0.;
      txns_per_domain = Some per_domain;
      mix = P.New_order_payment;
    }
  in
  Format.fprintf ppf
    "@.=== batched footprints: shard-mutex traffic (%d domains x %d txns) ===@." domains
    per_domain;
  Format.fprintf ppf "%12s %12s %14s %12s@." "mode" "txn/s" "mutex acqs" "acqs/txn";
  let cell name options =
    let cfg = { base with P.acc_options = options } in
    let r, phases = Bench_json.with_phases (fun () -> P.run cfg) in
    let per_txn =
      float_of_int r.P.mutex_acquisitions /. float_of_int (max 1 r.P.committed)
    in
    Format.fprintf ppf "%12s %12.1f %14d %12.1f@." name r.P.throughput
      r.P.mutex_acquisitions per_txn;
    if r.P.violations <> [] then
      Format.fprintf ppf "!! %d consistency violations in the %s cell@."
        (List.length r.P.violations) name;
    (cfg, r, per_txn, phases)
  in
  let s_cfg, singleton, s_per, s_phases = cell "singleton" Runtime.default_options in
  let b_cfg, batched, b_per, b_phases =
    cell "batched" { Runtime.default_options with Runtime.batch_footprints = true }
  in
  Format.fprintf ppf "  mutex acquisitions per txn: %.1f -> %.1f (%.2fx)@." s_per b_per
    (if b_per > 0. then s_per /. b_per else nan);
  Format.fprintf ppf "  throughput:                 %.1f -> %.1f txn/s@."
    singleton.P.throughput batched.P.throughput;
  let cell_json (cfg, r, per_txn, phases) =
    Json.Obj
      [
        ("mutex_acquisitions_per_txn", Json.Float per_txn);
        ("report", Bench_json.parallel_report_json ~cfg r);
        ("phases", phases);
      ]
  in
  [
    ( "batch",
      Json.Obj
        [
          ("domains", Json.Int domains);
          ("txns_per_domain", Json.Int per_domain);
          ("singleton", cell_json (s_cfg, singleton, s_per, s_phases));
          ("batched", cell_json (b_cfg, batched, b_per, b_phases));
          ( "mutex_reduction",
            Json.Float (if b_per > 0. then s_per /. b_per else nan) );
          ( "throughput_ratio",
            Json.Float
              (if singleton.P.throughput > 0. then
                 batched.P.throughput /. singleton.P.throughput
               else nan) );
        ] );
  ]

(* ---------- lock fast path + group commit scaling ---------------------- *)

(* The lock-manager fast path and group-commit WAL, measured together: the
   same fixed-count parallel TPC-C run as the batch bench (batched footprints
   on, so the remaining mutex traffic is what the fast path removes), swept
   across domain counts.  Per cell: committed txn/s, shard-mutex acquisitions
   per committed transaction, fast-path hit rate, and WAL durability round
   trips per committed transaction under group commit.  CI gates the 1-domain
   hit rate (uncontended, so the fast path should carry most requests) and
   the 4-domain acqs/txn against the pre-fast-path batched baseline. *)
let run_scale ~quick =
  let module P = Acc_tpcc.Parallel_driver in
  let module Runtime = Acc_core.Runtime in
  let domain_counts = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let per_domain = if quick then 150 else 500 in
  let base =
    {
      P.default_config with
      P.system = P.Acc;
      duration = 0.;
      txns_per_domain = Some per_domain;
      mix = P.New_order_payment;
      group_commit = true;
      acc_options =
        { Runtime.default_options with Runtime.batch_footprints = true };
    }
  in
  Format.fprintf ppf
    "@.=== scale: lock fast path + group commit vs domains (%d txns/domain) ===@."
    per_domain;
  Format.fprintf ppf "%8s %10s %12s %10s %12s@." "domains" "txn/s" "acqs/txn"
    "fast-hit" "flushes/txn";
  let cells =
    List.map
      (fun domains ->
        let cfg = { base with P.domains } in
        let r, phases = Bench_json.with_phases (fun () -> P.run cfg) in
        let per c = float_of_int c /. float_of_int (max 1 r.P.committed) in
        let acqs = per r.P.mutex_acquisitions in
        let flushes = per r.P.wal_flushes in
        let hit_rate =
          if r.P.fast_path_attempts = 0 then 0.
          else float_of_int r.P.fast_path_hits /. float_of_int r.P.fast_path_attempts
        in
        Format.fprintf ppf "%8d %10.1f %12.1f %9.1f%% %12.2f@." domains r.P.throughput
          acqs (100. *. hit_rate) flushes;
        if r.P.violations <> [] then
          Format.fprintf ppf "!! %d consistency violations at %d domains@."
            (List.length r.P.violations) domains;
        Json.Obj
          [
            ("domains", Json.Int domains);
            ("mutex_acquisitions_per_txn", Json.Float acqs);
            ("fast_path_hit_rate", Json.Float hit_rate);
            ("wal_flushes_per_txn", Json.Float flushes);
            ("report", Bench_json.parallel_report_json ~cfg r);
            ("phases", phases);
          ])
      domain_counts
  in
  [
    ( "scale",
      Json.Obj
        [
          ("txns_per_domain", Json.Int per_domain);
          ("batch_footprints", Json.Bool true);
          ("group_commit", Json.Bool true);
          ("cells", Json.List cells);
        ] );
  ]

(* ---------- micro-benchmarks ------------------------------------------- *)

module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Table = Acc_relation.Table
module Database = Acc_relation.Database
module Mode = Acc_lock.Mode
module Lock_table = Acc_lock.Lock_table
module Lock_request = Acc_lock.Lock_request
module Resource_id = Acc_lock.Resource_id
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Program = Acc_core.Program
module Runtime = Acc_core.Runtime

let bench_schema =
  Schema.make ~name:"t" ~key:[ "id" ] [ Schema.col "id" Value.Tint; Schema.col "v" Value.Tint ]

let bench_db () =
  let db = Database.create () in
  let t = Database.create_table db bench_schema in
  for i = 1 to 1000 do
    Table.insert t [| Value.Int i; Value.Int 0 |]
  done;
  db

let micro_tests () =
  let open Bechamel in
  let res i = Resource_id.Tuple ("t", [ Value.Int i ]) in
  (* conventional lock round trip *)
  let plain_locks = Lock_table.create Mode.no_semantics in
  let t_lock =
    Test.make ~name:"lock: S acquire+release"
      (Staged.stage (fun () ->
           ignore (Lock_table.submit plain_locks (Lock_request.make ~txn:1 Mode.S (res 1)));
           ignore (Lock_table.release plain_locks ~txn:1 Mode.S (res 1))))
  in
  (* assertional conflict check on the grant path: X against a held,
     non-interfering assertional lock *)
  let sem = Acc_tpcc.Txns.semantics in
  let a_locks = Lock_table.create sem in
  Lock_table.attach_req a_locks (Lock_request.make ~txn:99 (Mode.A 3) (res 2));
  let t_alock =
    Test.make ~name:"lock: X grant past foreign A (table lookup)"
      (Staged.stage (fun () ->
           ignore
             (Lock_table.submit a_locks (Lock_request.make ~txn:1 ~step_type:13 Mode.X (res 2)));
           ignore (Lock_table.release a_locks ~txn:1 Mode.X (res 2))))
  in
  (* the §3.2 comparator: predicate-lock conflict checking is a run-time
     intersection test per held lock, vs the ACC's precomputed lookup *)
  let module Predicate = Acc_relation.Predicate in
  let module Predicate_lock = Acc_lock.Predicate_lock in
  let range c lo hi =
    Predicate.And
      ( Predicate.Cmp (Predicate.Ge, c, Value.Int lo),
        Predicate.Cmp (Predicate.Le, c, Value.Int hi) )
  in
  let p1 =
    Predicate.conj [ Predicate.Eq ("w", Value.Int 1); Predicate.Eq ("d", Value.Int 3); range "o" 10 30 ]
  in
  let p2 =
    Predicate.conj [ Predicate.Eq ("w", Value.Int 1); Predicate.Eq ("d", Value.Int 3); range "o" 25 60 ]
  in
  let t_predlock =
    Test.make ~name:"predicate lock: one intersection test"
      (Staged.stage (fun () -> ignore (Predicate_lock.may_intersect p1 p2)))
  in
  let pred_mgr = Predicate_lock.create () in
  for i = 1 to 20 do
    ignore
      (Predicate_lock.acquire pred_mgr ~txn:i ~mode:Predicate_lock.Read ~table:"order_line"
         (Predicate.conj
            [ Predicate.Eq ("w", Value.Int 1); Predicate.Eq ("d", Value.Int (i mod 10)); range "o" i (i + 20) ]))
  done;
  let t_predlock_acquire =
    Test.make ~name:"predicate lock: acquire vs 20 held locks"
      (Staged.stage (fun () ->
           (match
              Predicate_lock.acquire pred_mgr ~txn:99 ~mode:Predicate_lock.Write
                ~table:"order_line" p1
            with
           | `Granted -> Predicate_lock.release_all pred_mgr ~txn:99
           | `Conflict _ -> ())))
  in
  (* the run-time face of the design-time analysis *)
  let t_interf =
    Test.make ~name:"interference: step-vs-assertion lookup"
      (Staged.stage (fun () ->
           ignore
             (Acc_core.Interference.step_interferes Acc_tpcc.Txns.interference ~step_type:3
                ~assertion:2)))
  in
  let t_build =
    Test.make ~name:"interference: build TPC-C tables"
      (Staged.stage (fun () -> ignore (Acc_core.Interference.build Acc_tpcc.Txns.workload)))
  in
  (* storage engine point operations *)
  let db = bench_db () in
  let tbl = Database.table db "t" in
  let t_read =
    Test.make ~name:"table: point read" (Staged.stage (fun () -> ignore (Table.get tbl [ Value.Int 500 ])))
  in
  let t_update =
    Test.make ~name:"table: point update"
      (Staged.stage (fun () ->
           ignore
             (Table.update tbl [ Value.Int 500 ] (fun row ->
                  row.(1) <- Value.Int (Value.as_int row.(1) + 1);
                  row))))
  in
  (* end-to-end transaction dispatch: flat 2PL vs a 2-step ACC transaction,
     uncontended — the pure protocol overhead of Sec 5.3's low-concurrency
     regime *)
  let flat_step =
    Program.step ~id:70 ~name:"whole" ~txn_type:"bump2" ~index:1 ~reads:[] ~writes:[] ()
  in
  let s1 = Program.step ~id:71 ~name:"one" ~txn_type:"bump2s" ~index:1 ~reads:[] ~writes:[] () in
  let s2 = Program.step ~id:72 ~name:"two" ~txn_type:"bump2s" ~index:2 ~reads:[] ~writes:[] () in
  let comp = Program.step ~id:73 ~name:"undo" ~txn_type:"bump2s" ~index:0 ~reads:[] ~writes:[] () in
  let flat_type = Program.txn_type ~name:"bump2" ~steps:[ flat_step ] ~assertions:[] () in
  let stepped_type =
    Program.txn_type ~name:"bump2s" ~steps:[ s1; s2 ] ~comp ~assertions:[] ()
  in
  let wl = Program.workload [ flat_type; stepped_type ] in
  let interference = Acc_core.Interference.build wl in
  let eng = Executor.create ~sem:(Acc_core.Interference.semantics interference) (bench_db ()) in
  let bump ctx i =
    ignore
      (Executor.update ctx "t" [ Value.Int i ] (fun row ->
           row.(1) <- Value.Int (Value.as_int row.(1) + 1);
           row))
  in
  let t_flat =
    Test.make ~name:"txn: flat 2PL (2 updates)"
      (Staged.stage (fun () ->
           Schedule.run eng
             [
               (fun () ->
                 let ctx = Executor.begin_txn eng ~txn_type:"bump2" ~multi_step:false in
                 bump ctx 1;
                 bump ctx 2;
                 Executor.commit ctx);
             ]))
  in
  let t_acc =
    Test.make ~name:"txn: ACC 2-step (2 updates + step overhead)"
      (Staged.stage (fun () ->
           Schedule.run eng
             [
               (fun () ->
                 let inst =
                   Program.instance ~def:stepped_type
                     ~steps:[ (s1, fun ctx -> bump ctx 1); (s2, fun ctx -> bump ctx 2) ]
                     ~compensate:(fun _ctx ~completed:_ -> ())
                     ()
                 in
                 ignore (Runtime.run eng inst));
             ]))
  in
  [
    t_lock; t_alock; t_predlock; t_predlock_acquire; t_interf; t_build; t_read; t_update;
    t_flat; t_acc;
  ]

let run_micro () =
  let open Bechamel in
  Format.fprintf ppf "@.=== micro-benchmarks (CC hot paths) ===@.";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Bechamel.Measure.run |]
  in
  let out = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] ->
              Format.fprintf ppf "  %-48s %10.1f ns/run@." name ns;
              out := (name, ns) :: !out
          | Some _ | None -> Format.fprintf ppf "  %-48s (no estimate)@." name)
        analyzed)
    (micro_tests ());
  List.rev !out

let micro_json results =
  Json.List
    (List.map
       (fun (name, ns) -> Json.Obj [ ("name", Json.Str name); ("ns_per_run", Json.Float ns) ])
       results)

(* ---------- disabled-path overhead gate -------------------------------- *)

(* The observability contract (DESIGN.md): with no trace sink installed and no
   accounting hook registered, the instrumentation must cost < 2% of a lock
   round trip.  Every emission site compiles to one of two guards — a
   [Trace.enabled ()] atomic load or an [obs = None] match — so we measure the
   guard directly, scale by the number of guards a lock round trip passes, and
   compare against the measured round trip itself.  Exits non-zero on
   failure: CI runs this as a hard gate. *)
let run_obs_gate () =
  let module Trace = Acc_obs.Trace in
  let module Lock_table = Acc_lock.Lock_table in
  let module Lock_request = Acc_lock.Lock_request in
  let module Mode = Acc_lock.Mode in
  let module Resource_id = Acc_lock.Resource_id in
  Format.fprintf ppf "@.=== observability disabled-path gate ===@.";
  assert (not (Trace.enabled ()));
  let time_ns iters f =
    (* one warmup pass keeps the first measurement honest *)
    f (min iters 100_000);
    let t0 = Unix.gettimeofday () in
    f iters;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  (* the guard: exactly what every emission site evaluates when tracing is
     off.  [sink] is ref-read + match; keep the result live so it can't be
     dead-code-eliminated. *)
  let live = ref 0 in
  let guard_ns =
    time_ns 50_000_000 (fun n ->
        for _ = 1 to n do
          if Trace.enabled () then incr live
        done)
  in
  (* the work it rides on: a conventional S acquire+release round trip
     through the real lock table *)
  let locks = Lock_table.create Mode.no_semantics in
  let res = Resource_id.Tuple ("t", [ Acc_relation.Value.Int 1 ]) in
  let lock_ns =
    time_ns 2_000_000 (fun n ->
        for _ = 1 to n do
          ignore (Lock_table.submit locks (Lock_request.make ~txn:1 Mode.S res));
          ignore (Lock_table.release locks ~txn:1 Mode.S res)
        done)
  in
  ignore !live;
  (* a lock round trip crosses at most ~4 guard sites: request-observe,
     release-observe, and a trace guard on each side of the executor step *)
  let sites = 4.0 in
  let overhead = sites *. guard_ns /. lock_ns in
  let limit = 0.02 in
  Format.fprintf ppf "  guard (trace disabled):      %8.2f ns@." guard_ns;
  Format.fprintf ppf "  lock S acquire+release:      %8.2f ns@." lock_ns;
  Format.fprintf ppf "  overhead (%d sites):          %8.3f%%  (limit %.0f%%)@."
    (int_of_float sites) (100. *. overhead) (100. *. limit);
  let pass = overhead <= limit in
  Format.fprintf ppf "  %s@." (if pass then "PASS" else "FAIL: disabled path too expensive");
  let json =
    [
      ( "obs_gate",
        Json.Obj
          [
            ("guard_ns", Json.Float guard_ns);
            ("lock_roundtrip_ns", Json.Float lock_ns);
            ("sites", Json.Int (int_of_float sites));
            ("overhead_fraction", Json.Float overhead);
            ("limit_fraction", Json.Float limit);
            ("pass", Json.Bool pass);
          ] );
    ]
  in
  Bench_json.write ~mode:"obs-gate" json;
  if not pass then exit 1

(* ---------- crash-recovery bench --------------------------------------- *)

(* How long a restart takes: full-log recovery versus recovery from the last
   quiescent checkpoint, over the log of a seed-deterministic TPC-C run.
   The checkpoint path is the reason lib/wal/checkpoint.ml exists — this
   reports the observed replay reduction. *)
let run_recovery ~quick =
  let module Txns = Acc_tpcc.Txns in
  let module Load = Acc_tpcc.Load in
  let module Executor = Acc_txn.Executor in
  let module Schedule = Acc_txn.Schedule in
  let module Database = Acc_relation.Database in
  let module Log = Acc_wal.Log in
  let module Recovery = Acc_wal.Recovery in
  let module Checkpoint = Acc_wal.Checkpoint in
  let txns = if quick then 200 else 1_000 in
  let checkpoint_every = 256 in
  let seed = 7 in
  let params = Acc_tpcc.Params.default in
  Txns.reset_history_seq ();
  let env = Txns.default_env ~seed params in
  let inputs = Array.init txns (fun _ -> Txns.gen_input env) in
  let db = Load.populate ~seed params in
  let baseline = Database.copy db in
  let eng = Executor.create ~sem:Txns.semantics db in
  let mgr = Checkpoint.Manager.create ~every:checkpoint_every () in
  Array.iter
    (fun input ->
      Schedule.run eng [ (fun () -> ignore (Txns.run_acc eng env input)) ];
      ignore (Checkpoint.Manager.maybe_take mgr (Executor.db eng) (Executor.log eng)))
    inputs;
  let log = Executor.log eng in
  let records = Log.to_list log in
  let time_ms reps f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) *. 1e3 /. float_of_int reps
  in
  let reps = if quick then 3 else 10 in
  let full_ms = time_ms reps (fun () -> Recovery.recover ~baseline records) in
  let ckpt_ms = time_ms reps (fun () -> Checkpoint.Manager.recover mgr ~baseline log) in
  let from_lsn =
    match Checkpoint.Manager.latest mgr with
    | Some c -> Checkpoint.position c
    | None -> 0
  in
  let tail = Log.length log - from_lsn in
  Format.fprintf ppf "recovery bench: %d txns, %d log records@." txns (Log.length log);
  Format.fprintf ppf "  full-log recovery:        %8.2f ms (%d records)@." full_ms
    (Log.length log);
  Format.fprintf ppf "  checkpoint recovery:      %8.2f ms (%d-record tail)@." ckpt_ms tail;
  Format.fprintf ppf "  replay reduction:         %8.2fx@."
    (if ckpt_ms > 0. then full_ms /. ckpt_ms else nan);
  [
    ( "recovery",
      Json.Obj
        [
          ("txns", Json.Int txns);
          ("log_records", Json.Int (Log.length log));
          ("checkpoint_every", Json.Int checkpoint_every);
          ("checkpoint_lsn", Json.Int from_lsn);
          ("tail_records", Json.Int tail);
          ("full_recovery_ms", Json.Float full_ms);
          ("checkpoint_recovery_ms", Json.Float ckpt_ms);
        ] );
  ]

(* ---------- partitioned 2PC bench -------------------------------------- *)

(* Throughput versus partition count with the cross-partition 2PC tax in
   view: each cell reports the cross-partition fraction and the prepare-
   window hold time (how long a branch's locks stay pinned across the
   prepare/decide exchange).  The sweep holds the load fixed at 8 warehouses
   and varies only the partitioning, so cell-to-cell deltas are the cost of
   distribution, not of scale.  The transport axis (loopback vs pipe) prices
   the RPC layer itself: same protocol, but pipe adds the socketpair hop and
   a handler domain per partition (multi-partition cells only — with one
   partition nothing crosses, so the transport is never exercised).  Exits
   non-zero on merged-database violations. *)
let run_dist ~quick =
  let module D = Acc_dist.Dist_driver in
  let module Tally = Acc_util.Stats.Tally in
  let module Params = Acc_tpcc.Params in
  let seconds = if quick then 1.0 else 3.0 in
  let params = { Params.default with Params.warehouses = 8 } in
  let base = { D.default_config with D.duration = seconds; domains = 4; params } in
  Format.fprintf ppf "@.=== dist: partitioned TPC-C under 2PC (%.1fs per cell) ===@."
    seconds;
  Format.fprintf ppf "%10s %10s %10s %12s %10s %16s@." "partitions" "transport"
    "txn/s" "cross-frac" "aborts" "prep-hold p95 ms";
  let failures = ref 0 in
  let grid =
    List.concat_map
      (fun partitions ->
        List.filter_map
          (fun transport ->
            if transport = `Pipe && (partitions = 1 || (quick && partitions <> 2))
            then None
            else Some (partitions, transport))
          [ `Loopback; `Pipe ])
      [ 1; 2; 4; 8 ]
  in
  let cells =
    List.map
      (fun (partitions, transport) ->
        let r, phases =
          Bench_json.with_phases (fun () ->
              D.run { base with D.partitions; transport })
        in
        if r.D.violations <> [] then begin
          incr failures;
          List.iter (fun v -> Format.fprintf ppf "  violation: %s@." v) r.D.violations
        end;
        Format.fprintf ppf "%10d %10s %10.1f %12.3f %10d %16.3f@." partitions
          r.D.transport r.D.throughput r.D.cross_fraction r.D.cross_aborted
          (1000. *. Tally.percentile r.D.prepare_hold 0.95);
        Json.Obj
          (Bench_json.meta_fields ~warehouses:params.Params.warehouses
             ~domains:base.D.domains
          @ [
              ("partitions", Json.Int partitions);
              ("transport", Json.Str r.D.transport);
              ("committed", Json.Int r.D.committed);
              ("single_committed", Json.Int r.D.single_committed);
              ("cross_committed", Json.Int r.D.cross_committed);
              ("cross_aborted", Json.Int r.D.cross_aborted);
              ("compensations", Json.Int r.D.compensations);
              ("cross_attempted", Json.Int r.D.cross_attempted);
              ("cross_fraction", Json.Float r.D.cross_fraction);
              ("throughput", Json.Float r.D.throughput);
              ("elapsed", Json.Float r.D.elapsed);
              ("prepare_hold", Bench_json.tally_json r.D.prepare_hold);
              ("phases", phases);
              ("violations", Json.Int (List.length r.D.violations));
              ( "partition_committed",
                Json.List (List.map (fun c -> Json.Int c) r.D.partition_committed) );
            ]))
      grid
  in
  let json = [ ("cells", Json.List cells) ] in
  if !failures > 0 then begin
    Bench_json.write ~mode:"dist" json;
    Format.fprintf ppf "!! dist run left consistency violations@.";
    exit 1
  end;
  json

let figures_json figs =
  ("figures", Json.List (List.map Bench_json.figure_json figs))

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "all" ->
      let figs = run_figures ~quick:false in
      let micro = run_micro () in
      Bench_json.write ~mode [ figures_json figs; ("micro", micro_json micro) ]
  | "quick" ->
      let figs = run_figures ~quick:true in
      let micro = run_micro () in
      Bench_json.write ~mode [ figures_json figs; ("micro", micro_json micro) ]
  | "fig2" | "fig3" | "fig4" | "servers" | "ablation" | "items" ->
      let fig = run_one ~quick:false mode in
      Bench_json.write ~mode [ figures_json [ fig ] ]
  | "micro" -> Bench_json.write ~mode [ ("micro", micro_json (run_micro ())) ]
  | "parallel" -> Bench_json.write ~mode (run_parallel ~quick:false)
  | "parallel-quick" -> Bench_json.write ~mode (run_parallel ~quick:true)
  | "workloads" -> Bench_json.write ~mode (run_workloads ~quick:false)
  | "workloads-quick" -> Bench_json.write ~mode:"workloads" (run_workloads ~quick:true)
  | "overload" -> Bench_json.write ~mode (run_overload ~quick:false)
  | "overload-quick" -> Bench_json.write ~mode:"overload" (run_overload ~quick:true)
  | "batch" -> Bench_json.write ~mode (run_batch ~quick:false)
  | "batch-quick" -> Bench_json.write ~mode:"batch" (run_batch ~quick:true)
  | "scale" -> Bench_json.write ~mode (run_scale ~quick:false)
  | "scale-quick" -> Bench_json.write ~mode:"scale" (run_scale ~quick:true)
  | "obs-gate" -> run_obs_gate ()
  | "recovery" -> Bench_json.write ~mode (run_recovery ~quick:false)
  | "recovery-quick" -> Bench_json.write ~mode (run_recovery ~quick:true)
  | "dist" -> Bench_json.write ~mode (run_dist ~quick:false)
  | "dist-quick" -> Bench_json.write ~mode:"dist" (run_dist ~quick:true)
  | other ->
      Format.eprintf
        "unknown mode %s \
         (use all|quick|fig2|fig3|fig4|servers|ablation|items|micro|parallel|workloads|overload|batch|scale|obs-gate|recovery|dist)@."
        other;
      exit 2
