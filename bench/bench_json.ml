(* Machine-readable benchmark output: every bench mode writes a
   BENCH_<mode>.json next to its human-readable tables, so trend tooling and
   later PRs can consume the numbers without scraping stdout.  Schema is
   versioned; everything is plain Json (lib/obs), no external dependency. *)

module Json = Acc_obs.Json
module Experiment = Acc_harness.Experiment
module Figures = Acc_harness.Figures
module Tally = Acc_util.Stats.Tally
module Histogram = Acc_util.Metrics.Histogram
module CA = Acc_obs.Conflict_accounting
module P = Acc_tpcc.Parallel_driver

let schema_version = 3

(* Build identity for trend tooling: without it, two BENCH files from
   different checkouts are indistinguishable.  Never fails the bench run —
   a non-git checkout just reports "unknown". *)
let git_describe =
  lazy
    (try
       let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       match (Unix.close_process_in ic, line) with
       | Unix.WEXITED 0, d when d <> "" -> d
       | _ -> "unknown"
     with _ -> "unknown")

(* Experiment context stamped into every result cell, so each cell is
   self-describing even when cut loose from the file that held it. *)
let meta_fields ~warehouses ~domains =
  [
    ("warehouses", Json.Int warehouses);
    ("domains", Json.Int domains);
    ("git_describe", Json.Str (Lazy.force git_describe));
  ]

let pct t p = Tally.percentile t p

let tally_json t =
  Json.Obj
    [
      ("count", Json.Int (Tally.count t));
      ("mean", Json.Float (Tally.mean t));
      ("p50", Json.Float (pct t 0.50));
      ("p95", Json.Float (pct t 0.95));
      ("p99", Json.Float (pct t 0.99));
    ]

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int (Histogram.count h));
      ("mean", Json.Float (Histogram.mean h));
      ("p50", Json.Float (Histogram.percentile h 0.50));
      ("p95", Json.Float (Histogram.percentile h 0.95));
      ("p99", Json.Float (Histogram.percentile h 0.99));
    ]

let side_json (s : Experiment.side) =
  Json.Obj
    [
      ("response_mean", Json.Float s.Experiment.s_response);
      ("throughput", Json.Float s.Experiment.s_throughput);
      ("deadlocks", Json.Float s.Experiment.s_deadlocks);
      ("compensations", Json.Float s.Experiment.s_compensations);
      ("cpu", Json.Float s.Experiment.s_cpu);
      ("lock_wait", Json.Float s.Experiment.s_lock_wait);
      ("violations", Json.Int s.Experiment.s_violations);
    ]

let point_json (p : Experiment.point) =
  Json.Obj
    [
      ("label", Json.Str p.Experiment.p_label);
      ("terminals", Json.Int p.Experiment.p_terminals);
      ("response_ratio", Json.Float (Experiment.response_ratio p));
      ("throughput_ratio", Json.Float (Experiment.throughput_ratio p));
      ("base", side_json p.Experiment.p_base);
      ("acc", side_json p.Experiment.p_acc);
    ]

let figure_json (f : Figures.figure) =
  Json.Obj
    [
      ("id", Json.Str f.Figures.fig_id);
      ("title", Json.Str f.Figures.title);
      ("consistency_violations", Json.Int (Figures.consistency_violations f));
      ( "series",
        Json.List
          (List.map
             (fun (s : Figures.series) ->
               Json.Obj
                 [
                   ("name", Json.Str s.Figures.name);
                   ("points", Json.List (List.map point_json s.Figures.points));
                 ])
             f.Figures.series) );
    ]

(* Every parallel cell self-describes: which workload produced it and which
   cell schema it speaks (v3 added the workload stamp and report-carried step
   labels, so a consumer must not decode step ids with the TPC-C table). *)
let parallel_report_json ?cfg (r : P.report) =
  let meta =
    match cfg with
    | Some c -> meta_fields ~warehouses:c.P.params.Acc_tpcc.Params.warehouses ~domains:c.P.domains
    | None -> []
  in
  Json.Obj
    (("schema_version", Json.Int schema_version)
    :: ("workload", Json.Str r.P.workload_name)
    :: meta
    @ [
      ("committed", Json.Int r.P.committed);
      ("throughput", Json.Float r.P.throughput);
      ("elapsed", Json.Float r.P.elapsed);
      ("measured", Json.Float r.P.measured);
      ("response", tally_json r.P.response);
      ("forced_aborts", Json.Int r.P.forced_aborts);
      ("compensations", Json.Int r.P.compensations);
      ("deadlock_victims", Json.Int r.P.detector_victims);
      ("leaked_locks", Json.Int r.P.leaked_locks);
      ("leaked_waiters", Json.Int r.P.leaked_waiters);
      ("violations", Json.Int (List.length r.P.violations));
      ("lock_timeouts", Json.Int r.P.lock_timeouts);
      ("shed", Json.Int r.P.shed);
      ("degraded_runs", Json.Int r.P.degraded_runs);
      ("degraded_trips", Json.Int r.P.degraded_trips);
      ("lock_wait_count", Json.Int r.P.lock_wait_count);
      ( "lock_wait_p99",
        Json.Float (if r.P.lock_wait_count = 0 then 0. else r.P.lock_wait_p99) );
      ("peak_queue_depth", Json.Int r.P.peak_queue_depth);
      ("peak_oldest_wait", Json.Float r.P.peak_oldest_wait);
      ("mutex_acquisitions", Json.Int r.P.mutex_acquisitions);
      ("fast_path_attempts", Json.Int r.P.fast_path_attempts);
      ("fast_path_hits", Json.Int r.P.fast_path_hits);
      ( "fast_path_hit_rate",
        Json.Float
          (if r.P.fast_path_attempts = 0 then 0.
           else float_of_int r.P.fast_path_hits /. float_of_int r.P.fast_path_attempts) );
      ("wal_flushes", Json.Int r.P.wal_flushes);
      ( "step_latency",
        Json.List
          (List.map
             (fun (st, h) ->
               match hist_json h with
               | Json.Obj fields ->
                   Json.Obj
                     (("step_type", Json.Int st)
                     :: ("label", Json.Str (r.P.step_label st))
                     :: fields)
               | j -> j)
             r.P.step_hist) );
      ( "conflicts",
        Json.List (List.map (CA.row_to_json ~label:r.P.step_label) r.P.conflicts) );
      ( "conflicts_by_txn_type",
        Json.List
          (List.map
             (fun (name, row) ->
               match CA.row_to_json row with
               | Json.Obj fields ->
                   Json.Obj
                     (("txn_type", Json.Str name)
                     :: List.filter (fun (k, _) -> k <> "label" && k <> "step_type") fields)
               | j -> j)
             (P.conflicts_by_txn_type_with ~step_txn_type:r.P.step_txn_type
                r.P.conflicts)) );
      ])

(* Run one bench cell under a private trace sink and return its result with
   the span layer's phase breakdown (the "phases" object of a cell).  The
   sink costs a few ring writes per event while the cell runs — acceptable
   for the attribution it buys; the obs-gate mode measures the disabled
   path separately and never goes through here.  A long cell can overflow
   the ring (drop-oldest): the earliest transactions lose their begins and
   fall out of the report, the surviving spans stay exact. *)
let with_phases f =
  let module Trace = Acc_obs.Trace in
  let module Span = Acc_obs.Span in
  Trace.start ~capacity:(1 lsl 18) ();
  let result = f () in
  let dump = Trace.stop () in
  let spans = Span.of_dump dump in
  let banded =
    List.exists
      (fun sp -> sp.Span.sp_txn >= Acc_dist.Partition.txn_stride)
      spans
  in
  let report =
    if banded then
      Span.Report.build ~partition_of:Acc_dist.Partition.partition_of_txn spans
    else Span.Report.build spans
  in
  (result, Span.Report.to_json report)

let write ~mode sections =
  let path = Printf.sprintf "BENCH_%s.json" mode in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.pretty_to_channel oc
        (Json.Obj
           (("schema_version", Json.Int schema_version)
           :: ("mode", Json.Str mode)
           :: ("git_describe", Json.Str (Lazy.force git_describe))
           :: sections)));
  Format.printf "@.wrote %s@." path
