(* Tests for acc.core: interference analysis, the one-level ACC runtime
   (admission, step interleaving, compensation, legacy isolation), and the
   semantic-correctness properties on the §4-style order workload. *)

open Acc_core
module W = Workload_orders
module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Value = Acc_relation.Value
module Predicate = Acc_relation.Predicate
module Executor = Acc_txn.Executor
module Lock_service = Acc_lock.Lock_service
module Lock_request = Acc_lock.Lock_request
module Schedule = Acc_txn.Schedule
module Txn_effect = Acc_txn.Txn_effect
module Serializability = Acc_txn.Serializability
module Lock_table = Acc_lock.Lock_table
module Mode = Acc_lock.Mode
module Resource_id = Acc_lock.Resource_id

let v_int n = Value.Int n
let opts = { Runtime.default_options with verify_assertions = true }

let stock2 = [ (1, 15, 10); (2, 15, 20) ]

let check_consistent ?(what = "consistency") ~initial_stock eng =
  match W.check_consistency ~initial_stock (Executor.db eng) with
  | [] -> ()
  | problems -> Alcotest.fail (what ^ ": " ^ String.concat "; " problems)

let expect_committed what = function
  | Runtime.Committed -> ()
  | Runtime.Compensated _ -> Alcotest.fail (what ^ ": unexpectedly compensated")

(* --- footprints & analysis ------------------------------------------------ *)

let test_footprint_overlap () =
  let open Footprint in
  Alcotest.(check bool) "all vs cols" true (cols_overlap All_columns (Columns [ "x" ]));
  Alcotest.(check bool) "disjoint cols" false (cols_overlap (Columns [ "a" ]) (Columns [ "b" ]));
  Alcotest.(check bool) "shared col" true (cols_overlap (Columns [ "a"; "b" ]) (Columns [ "b" ]));
  let fresh_orders = make ~fresh:Fresh "orders" All_columns in
  let shared_orders = make "orders" (Columns [ "num_items" ]) in
  Alcotest.(check bool) "fresh vs fresh never aliases" false (may_alias fresh_orders fresh_orders);
  Alcotest.(check bool) "fresh vs shared aliases" true (may_alias fresh_orders shared_orders);
  Alcotest.(check bool) "different tables" false
    (may_alias fresh_orders (make "stock" All_columns))

let test_assertion_validation () =
  Alcotest.(check bool) "reserved id" true
    (try
       ignore (Assertion.make ~id:0 ~name:"x" ~txn_type:"t" ~pre_of:1 ~until:1 ~refs:[]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad window" true
    (try
       ignore (Assertion.make ~id:5 ~name:"x" ~txn_type:"t" ~pre_of:3 ~until:2 ~refs:[]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check (list string)) "tables deduped"
    [ "orderlines"; "orders" ]
    (Assertion.tables W.assert_loop_inv)

let test_program_validation () =
  (* multi-step without compensation is rejected *)
  let s1 =
    Program.step ~id:90 ~name:"a" ~txn_type:"t" ~index:1 ~reads:[] ~writes:[] ()
  in
  let s2 = Program.step ~id:91 ~name:"b" ~txn_type:"t" ~index:2 ~reads:[] ~writes:[] () in
  Alcotest.(check bool) "multi-step needs comp" true
    (try
       ignore (Program.txn_type ~name:"t" ~steps:[ s1; s2 ] ~assertions:[] ());
       false
     with Invalid_argument _ -> true);
  (* wrong index order rejected *)
  Alcotest.(check bool) "index order" true
    (try
       ignore (Program.txn_type ~name:"t" ~steps:[ s2; s1 ] ~assertions:[] ());
       false
     with Invalid_argument _ -> true)

let test_workload_registry () =
  Alcotest.(check int) "txn types" 3 (List.length (Program.txn_types W.workload));
  (* legacy + 3 new_order (incl comp) + 1 bill + 3 audit (incl comp) *)
  Alcotest.(check int) "steps" 8 (List.length (Program.all_steps W.workload));
  Alcotest.(check int) "assertions incl legacy" 3
    (List.length (Program.all_assertions W.workload));
  Alcotest.(check bool) "find step" true
    (match Program.find_step W.workload 11 with
    | Some s -> s.Program.sd_name = "line"
    | None -> false)

let si step assertion =
  Interference.step_interferes W.interference ~step_type:step ~assertion

let test_interference_table () =
  (* the §4 facts, mechanically derived from footprints *)
  Alcotest.(check bool) "header does not disturb other new_orders" false (si 10 100);
  Alcotest.(check bool) "line does not disturb other new_orders" false (si 11 100);
  Alcotest.(check bool) "header interferes with bill's I1" true (si 10 101);
  Alcotest.(check bool) "line interferes with bill's I1" true (si 11 101);
  Alcotest.(check bool) "compensation interferes with bill's I1" true (si 12 101);
  Alcotest.(check bool) "bill does not disturb new_order invariant" false (si 13 100);
  (* every writer interferes with legacy isolation *)
  List.iter
    (fun step -> Alcotest.(check bool) "writer vs legacy" true (si step 0))
    [ 10; 11; 12; 13 ];
  (* the legacy pseudo-step interferes with everything *)
  Alcotest.(check bool) "legacy vs loop inv" true (si Program.legacy_step_id 100);
  (* unknown ids answer conservatively *)
  Alcotest.(check bool) "unknown step conservative" true (si 9999 100);
  Alcotest.(check bool) "unknown assertion conservative" true (si 10 9999)

let test_prefix_table () =
  let pi holder req =
    Interference.prefix_interferes W.interference ~holder_assertion:holder ~assertion:req
  in
  (* holder of the new_order loop invariant has executed the header, whose
     partial effect breaks I1 for its order: bill admission must wait *)
  Alcotest.(check bool) "new_order prefix blocks bill" true (pi 100 101);
  (* a legacy holder exposes nothing *)
  Alcotest.(check bool) "legacy prefix harmless" false (pi 0 101)

let test_interference_override () =
  let override ~prefix_of ~assertion =
    if prefix_of.Assertion.id = 100 && assertion.Assertion.id = 101 then Some false else None
  in
  let t = Interference.build ~override W.workload in
  Alcotest.(check bool) "override applied" false
    (Interference.prefix_interferes t ~holder_assertion:100 ~assertion:101);
  Alcotest.(check bool) "others unchanged" true
    (Interference.step_interferes t ~step_type:10 ~assertion:101)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_interference_pp () =
  let s = Format.asprintf "%a" Interference.pp W.interference in
  Alcotest.(check bool) "mentions the header step" true (contains_substring s "header");
  Alcotest.(check bool) "mentions bill's assertion" true (contains_substring s "bill_I1")

(* --- basic runtime ---------------------------------------------------------- *)

let test_single_new_order () =
  let eng = W.make_engine stock2 in
  let inst, result = W.new_order_instance ~items:[ (1, 5); (2, 3) ] in
  let outcome = ref None in
  Schedule.run ~policy:Runtime.victim_policy eng
    [ (fun () -> outcome := Some (Runtime.run ~options:opts eng inst)) ];
  (match !outcome with
  | Some Runtime.Committed -> ()
  | _ -> Alcotest.fail "expected commit");
  Alcotest.(check int) "order id assigned" 1 result.W.r_order_id;
  Alcotest.(check bool) "fills recorded" true
    (List.sort compare result.W.r_filled = [ (1, 5); (2, 3) ]);
  check_consistent ~initial_stock:stock2 eng;
  Alcotest.(check int) "locks drained" 0 (Lock_service.lock_count (Executor.lock_service eng));
  (* stock decremented *)
  let stock = Database.table (Executor.db eng) "stock" in
  Alcotest.(check int) "item 1 stock" 10 (Value.as_int (Table.get_exn stock [ v_int 1 ]).(1))

let test_insufficient_stock_partial_fill () =
  let eng = W.make_engine [ (1, 3, 10) ] in
  let inst, result = W.new_order_instance ~items:[ (1, 5) ] in
  Schedule.run ~policy:Runtime.victim_policy eng
    [ (fun () -> expect_committed "new_order" (Runtime.run ~options:opts eng inst)) ];
  Alcotest.(check bool) "partial fill" true (result.W.r_filled = [ (1, 3) ]);
  check_consistent ~initial_stock:[ (1, 3, 10) ] eng

let test_bill_after_commit () =
  let eng = W.make_engine stock2 in
  let no, _ = W.new_order_instance ~items:[ (1, 2) ] in
  let bill_total = ref (-1) in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        expect_committed "new_order" (Runtime.run ~options:opts eng no);
        let bi, bres = W.bill_instance ~order:1 in
        expect_committed "bill" (Runtime.run ~options:opts eng bi);
        bill_total := bres.W.b_total);
    ];
  Alcotest.(check int) "billed 2 x 10" 20 !bill_total;
  check_consistent ~initial_stock:stock2 eng

let test_forced_abort_compensates () =
  let eng = W.make_engine stock2 in
  let inst, result = W.new_order_instance ~items:[ (1, 5); (2, 3) ] in
  let outcome = ref None in
  Schedule.run ~policy:Runtime.victim_policy eng
    [ (fun () -> outcome := Some (Runtime.run ~options:opts ~abort_at:2 eng inst)) ];
  (match !outcome with
  | Some (Runtime.Compensated { completed_steps = 2 }) -> ()
  | _ -> Alcotest.fail "expected compensation after step 2");
  (* the order is gone, stock restored *)
  let db = Executor.db eng in
  Alcotest.(check bool) "order removed" false
    (Table.mem (Database.table db "orders") [ v_int result.W.r_order_id ]);
  let stock = Database.table db "stock" in
  Alcotest.(check int) "item 1 stock restored" 15 (Value.as_int (Table.get_exn stock [ v_int 1 ]).(1));
  check_consistent ~initial_stock:stock2 eng;
  Alcotest.(check int) "locks drained" 0 (Lock_service.lock_count (Executor.lock_service eng));
  (* the consumed order number stays burnt (paper: result allows it) *)
  let counter = Database.table db "counter" in
  Alcotest.(check int) "counter advanced" 2 (Value.as_int (Table.get_exn counter [ v_int 0 ]).(1))

let test_abort_at_first_step_physical () =
  let eng = W.make_engine stock2 in
  let inst, _ = W.new_order_instance ~items:[ (1, 5) ] in
  let outcome = ref None in
  Schedule.run ~policy:Runtime.victim_policy eng
    [ (fun () -> outcome := Some (Runtime.run ~options:opts ~abort_at:1 eng inst)) ];
  (match !outcome with
  | Some (Runtime.Compensated { completed_steps = 1 }) -> ()
  | _ -> Alcotest.fail "expected compensation after step 1");
  check_consistent ~initial_stock:stock2 eng

(* --- interleaving ----------------------------------------------------------- *)

(* new_order instance whose line bodies yield first, to force interleaving *)
let yielding_new_order ~items =
  let inst, result = W.new_order_instance ~items in
  let steps =
    Array.to_list inst.Program.i_steps
    |> List.map (fun (sd, body) ->
           if sd.Program.sd_name = "line" then
             ( sd,
               fun ctx ->
                 Txn_effect.yield ();
                 body ctx )
           else (sd, body))
  in
  ( { inst with Program.i_steps = Array.of_list steps }, result )

let test_new_orders_interleave_nonserializably () =
  (* the paper's television/VCR scenario: both transactions get one full and
     one partial fill, impossible in any serial order *)
  let eng = W.make_engine stock2 in
  let checker = Serializability.create () in
  Executor.set_trace eng (Some (Serializability.hook checker));
  let i1, r1 = yielding_new_order ~items:[ (1, 10); (2, 10) ] in
  let i2, r2 = yielding_new_order ~items:[ (2, 10); (1, 10) ] in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        expect_committed "T1" (Runtime.run ~options:opts eng i1);
        Serializability.note_commit checker 1);
      (fun () ->
        expect_committed "T2" (Runtime.run ~options:opts eng i2);
        Serializability.note_commit checker 2);
    ];
  Alcotest.(check bool) "T1 crosswise fills" true
    (List.sort compare r1.W.r_filled = [ (1, 10); (2, 5) ]);
  Alcotest.(check bool) "T2 crosswise fills" true
    (List.sort compare r2.W.r_filled = [ (1, 5); (2, 10) ]);
  (* semantically correct ... *)
  check_consistent ~initial_stock:stock2 eng;
  (* ... but NOT serializable: the outcome could not arise from any serial
     execution, and the conflict graph is cyclic *)
  Alcotest.(check bool) "conflict graph cyclic" false
    (Serializability.conflict_serializable checker)

let test_bill_blocked_by_inflight_new_order () =
  let eng = W.make_engine stock2 in
  let no, nres = yielding_new_order ~items:[ (1, 5) ] in
  let billed_before_commit = ref None in
  let new_order_committed = ref false in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        expect_committed "new_order" (Runtime.run ~options:opts eng no);
        new_order_committed := true);
      (fun () ->
        (* runs once new_order is mid-flight (parked at the line yield) *)
        Alcotest.(check bool) "new_order started" true (nres.W.r_order_id >= 0);
        let bi, bres = W.bill_instance ~order:nres.W.r_order_id in
        expect_committed "bill" (Runtime.run ~options:opts eng bi);
        billed_before_commit := Some !new_order_committed;
        ignore bres.W.b_total);
    ];
  (* bill's admission had to wait for the new_order commit *)
  Alcotest.(check (option bool)) "bill waited" (Some true) !billed_before_commit;
  check_consistent ~initial_stock:stock2 eng

let test_bill_other_order_not_blocked () =
  let eng = W.make_engine stock2 in
  (* create order 1 up front *)
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        let i, _ = W.new_order_instance ~items:[ (2, 1) ] in
        expect_committed "setup" (Runtime.run ~options:opts eng i));
    ];
  let no, _ = yielding_new_order ~items:[ (1, 5) ] in
  let new_order_committed = ref false in
  let bill_ran_during_flight = ref false in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        expect_committed "new_order" (Runtime.run ~options:opts eng no);
        new_order_committed := true);
      (fun () ->
        let bi, _ = W.bill_instance ~order:1 in
        expect_committed "bill" (Runtime.run ~options:opts eng bi);
        bill_ran_during_flight := not !new_order_committed);
    ];
  Alcotest.(check bool) "no false conflict across orders" true !bill_ran_during_flight;
  check_consistent ~initial_stock:stock2 eng

let test_two_level_false_conflict () =
  (* the §3.2 ablation: with table-granularity assertional locks (the
     two-level design) a bill is delayed by an in-flight new_order on a
     DIFFERENT order — the false conflict the one-level item-granularity
     design eliminates (cf. test_bill_other_order_not_blocked) *)
  let eng = W.make_engine stock2 in
  let two_level =
    { opts with Runtime.assertion_granularity = Runtime.Table }
  in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        let i, _ = W.new_order_instance ~items:[ (2, 1) ] in
        expect_committed "setup" (Runtime.run ~options:two_level eng i));
    ];
  let no, _ = yielding_new_order ~items:[ (1, 5) ] in
  let new_order_committed = ref false in
  let bill_ran_during_flight = ref None in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        expect_committed "new_order" (Runtime.run ~options:two_level eng no);
        new_order_committed := true);
      (fun () ->
        (* bill order 1, which committed before the in-flight new_order even
           started: under two-level it must still wait *)
        let bi, _ = W.bill_instance ~order:1 in
        expect_committed "bill" (Runtime.run ~options:two_level eng bi);
        bill_ran_during_flight := Some (not !new_order_committed));
    ];
  Alcotest.(check (option bool)) "two-level: bill suffered the false conflict" (Some false)
    !bill_ran_during_flight;
  check_consistent ~initial_stock:stock2 eng

let test_legacy_isolated_from_decomposed () =
  let eng = W.make_engine stock2 in
  let no, nres = yielding_new_order ~items:[ (1, 5) ] in
  let new_order_committed = ref false in
  let legacy_saw_committed_state = ref None in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        expect_committed "new_order" (Runtime.run ~options:opts eng no);
        new_order_committed := true);
      (fun () ->
        (* new_order is mid-flight; its header insert is exposed to other
           decomposed transactions but must NOT be visible here before
           commit *)
        let o = nres.W.r_order_id in
        ignore
          (Runtime.run_legacy eng ~txn_type:"report" (fun ctx ->
               match Executor.read ctx "orders" [ v_int o ] with
               | Some _ -> legacy_saw_committed_state := Some !new_order_committed
               | None -> legacy_saw_committed_state := Some true)));
    ];
  Alcotest.(check (option bool)) "legacy read waited for commit" (Some true)
    !legacy_saw_committed_state;
  check_consistent ~initial_stock:stock2 eng

let test_decomposed_blocked_by_legacy () =
  let eng = W.make_engine stock2 in
  (* seed one order so the legacy transaction has something to hold *)
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        let i, _ = W.new_order_instance ~items:[ (1, 1) ] in
        expect_committed "setup" (Runtime.run ~options:opts eng i));
    ];
  let legacy_committed = ref false in
  let writer_waited = ref None in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        ignore
          (Runtime.run_legacy eng ~txn_type:"audit" (fun ctx ->
               (* read stock item 1; hold A(legacy) to commit *)
               ignore (Executor.read ctx "stock" [ v_int 1 ]);
               Txn_effect.yield ();
               Txn_effect.yield ()));
        legacy_committed := true);
      (fun () ->
        (* a decomposed new_order writing that stock item must wait *)
        let i, _ = W.new_order_instance ~items:[ (1, 2) ] in
        expect_committed "new_order" (Runtime.run ~options:opts eng i);
        writer_waited := Some !legacy_committed);
    ];
  Alcotest.(check (option bool)) "decomposed writer waited for legacy" (Some true) !writer_waited;
  check_consistent ~initial_stock:stock2 eng

(* --- read-isolation restrictions (the [11] extension) ------------------------ *)

(* audit with a yield between its steps so a writer can try to slip in *)
let yielding_audit ?read_isolation ~item () =
  let inst, result = W.audit_instance ?read_isolation ~item () in
  let steps =
    Array.to_list inst.Program.i_steps
    |> List.map (fun (sd, body) ->
           ( sd,
             fun ctx ->
               if sd.Program.sd_name = "audit2" then Txn_effect.yield ();
               body ctx ))
  in
  ({ inst with Program.i_steps = Array.of_list steps }, result)

let test_exposed_reads_see_intermediate () =
  (* default: an audit interleaved with an in-flight new_order observes the
     exposed intermediate stock level *)
  let eng = W.make_engine stock2 in
  let no, _ = yielding_new_order ~items:[ (1, 5) ] in
  let observed = ref (-1) in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () -> expect_committed "new_order" (Runtime.run ~options:opts eng no));
      (fun () ->
        (* the new_order is parked mid-line having not yet written stock;
           run after it wrote: park order matters, so just read both steps *)
        let a, res = W.audit_instance ~item:1 () in
        expect_committed "audit" (Runtime.run eng a);
        observed := res.W.a_second);
    ];
  (* whether it saw 15 or 10 depends on interleaving; the point is it never
     blocked and the run is consistent *)
  Alcotest.(check bool) "audit read something" true (!observed = 15 || !observed = 10);
  check_consistent ~initial_stock:stock2 eng

(* new_order that yields AFTER each line body: parks with the stock write
   exposed (compensation lock held) *)
let post_yielding_new_order ~items =
  let inst, result = W.new_order_instance ~items in
  let steps =
    Array.to_list inst.Program.i_steps
    |> List.map (fun (sd, body) ->
           if sd.Program.sd_name = "line" then
             ( sd,
               fun ctx ->
                 body ctx;
                 Txn_effect.yield ();
                 Txn_effect.yield () )
           else (sd, body))
  in
  ({ inst with Program.i_steps = Array.of_list steps }, result)

let test_committed_only_waits () =
  (* Committed_only: the audit's read of a stock item written by an
     in-flight new_order waits for its commit *)
  let eng = W.make_engine stock2 in
  let no, _ = post_yielding_new_order ~items:[ (1, 5) ] in
  let new_order_committed = ref false in
  let audit_waited = ref None in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        expect_committed "new_order" (Runtime.run ~options:opts eng no);
        new_order_committed := true);
      (fun () ->
        (* runs while the new_order is parked inside its line step, after the
           header exposed the order but before commit *)
        let a, res = W.audit_instance ~read_isolation:Program.Committed_only ~item:1 () in
        expect_committed "audit" (Runtime.run eng a);
        audit_waited := Some (!new_order_committed, res.W.a_second));
    ];
  (match !audit_waited with
  | Some (waited, level) ->
      Alcotest.(check bool) "waited for commit" true waited;
      Alcotest.(check int) "saw the committed level" 10 level
  | None -> Alcotest.fail "audit did not run");
  check_consistent ~initial_stock:stock2 eng

let test_snapshot_reads_stable () =
  (* Snapshot: both reads of the audit agree even though a writer tried to
     update the item between its steps; the writer proceeds after commit *)
  let eng = W.make_engine stock2 in
  let a, res = yielding_audit ~read_isolation:Program.Snapshot ~item:1 () in
  let writer_done = ref false in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        expect_committed "audit" (Runtime.run eng a);
        Alcotest.(check bool) "writer still blocked at audit commit" false !writer_done);
      (fun () ->
        let no, _ = W.new_order_instance ~items:[ (1, 5) ] in
        expect_committed "new_order" (Runtime.run ~options:opts eng no);
        writer_done := true);
    ];
  Alcotest.(check int) "first read" 15 res.W.a_first;
  Alcotest.(check int) "second read stable" 15 res.W.a_second;
  Alcotest.(check bool) "writer eventually ran" true !writer_done;
  check_consistent ~initial_stock:stock2 eng

let test_exposed_reads_can_be_unstable () =
  (* contrast: without Snapshot the same interleaving yields two different
     values across the audit's steps *)
  let eng = W.make_engine stock2 in
  let a, res = yielding_audit ~item:1 () in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () -> expect_committed "audit" (Runtime.run eng a));
      (fun () ->
        let no, _ = W.new_order_instance ~items:[ (1, 5) ] in
        expect_committed "new_order" (Runtime.run ~options:opts eng no));
    ];
  Alcotest.(check int) "first read pre-write" 15 res.W.a_first;
  Alcotest.(check int) "second read post-write" 10 res.W.a_second;
  check_consistent ~initial_stock:stock2 eng

(* --- deadlock handling in the ACC ------------------------------------------- *)

(* a custom two-step workload whose second step takes two stock locks in a
   parameterized order, to manufacture deadlocks inside a step *)
let pair_step1 =
  Program.step ~id:50 ~name:"first" ~txn_type:"pair" ~index:1
    ~reads:[]
    ~writes:[ Footprint.make "stock" (Footprint.Columns [ "s_level" ]) ]
    ()

let pair_step2 =
  Program.step ~id:51 ~name:"second" ~txn_type:"pair" ~index:2
    ~reads:[]
    ~writes:[ Footprint.make "stock" (Footprint.Columns [ "s_level" ]) ]
    ()

let pair_comp =
  Program.step ~id:52 ~name:"undo_pair" ~txn_type:"pair" ~index:0
    ~reads:[]
    ~writes:[ Footprint.make "stock" (Footprint.Columns [ "s_level" ]) ]
    ()

let pair_type = Program.txn_type ~name:"pair" ~steps:[ pair_step1; pair_step2 ] ~comp:pair_comp ~assertions:[] ()

let pair_workload = Program.workload [ pair_type ]
let pair_interference = Interference.build pair_workload

let bump ctx item delta =
  ignore
    (Executor.update ctx "stock" [ v_int item ] (fun row ->
         row.(1) <- v_int (Value.as_int row.(1) + delta);
         row))

let pair_instance ~anchor ~first ~second =
  let step1 ctx = bump ctx anchor 1 in
  let step2 ctx =
    bump ctx first 1;
    Txn_effect.yield ();
    bump ctx second 1
  in
  let compensate ctx ~completed = if completed >= 1 then bump ctx anchor (-1) in
  Program.instance ~def:pair_type
    ~steps:[ (pair_step1, step1); (pair_step2, step2) ]
    ~compensate ()

let pair_engine () =
  let db = Database.create () in
  let stock = Database.create_table db W.stock_schema in
  List.iter (fun i -> Table.insert stock [| v_int i; v_int 0 |]) [ 1; 2; 3; 4 ];
  Executor.create ~sem:(Interference.semantics pair_interference) db

let stock_val eng i =
  Value.as_int (Table.get_exn (Database.table (Executor.db eng) "stock") [ v_int i ]).(1)

let test_step_deadlock_retried () =
  let eng = pair_engine () in
  let o1 = ref None and o2 = ref None in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () -> o1 := Some (Runtime.run eng (pair_instance ~anchor:3 ~first:1 ~second:2)));
      (fun () -> o2 := Some (Runtime.run eng (pair_instance ~anchor:4 ~first:2 ~second:1)));
    ];
  (* with the default retry budget both transactions eventually commit *)
  (match (!o1, !o2) with
  | Some Runtime.Committed, Some Runtime.Committed -> ()
  | _ -> Alcotest.fail "expected both to commit after retry");
  Alcotest.(check int) "item1 got both bumps" 2 (stock_val eng 1);
  Alcotest.(check int) "item2 got both bumps" 2 (stock_val eng 2);
  Alcotest.(check int) "locks drained" 0 (Lock_service.lock_count (Executor.lock_service eng))

let test_step_deadlock_exhaustion_compensates () =
  let eng = pair_engine () in
  let no_retry = { Runtime.default_options with step_retry_limit = 0 } in
  let o1 = ref None and o2 = ref None in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        o1 := Some (Runtime.run ~options:no_retry eng (pair_instance ~anchor:3 ~first:1 ~second:2)));
      (fun () ->
        o2 := Some (Runtime.run ~options:no_retry eng (pair_instance ~anchor:4 ~first:2 ~second:1)));
    ];
  let compensated = function Some (Runtime.Compensated _) -> true | _ -> false in
  Alcotest.(check bool) "exactly one compensated" true
    (compensated !o1 <> compensated !o2);
  (* the victim's anchor bump was undone by its compensating step *)
  let anchor_sum = stock_val eng 3 + stock_val eng 4 in
  Alcotest.(check int) "one anchor survives" 1 anchor_sum;
  Alcotest.(check int) "locks drained" 0 (Lock_service.lock_count (Executor.lock_service eng))

let test_victim_policy_shields_compensation () =
  let locks = Lock_table.create Mode.no_semantics in
  let r = Resource_id.Tuple ("stock", [ v_int 1 ]) in
  let r2 = Resource_id.Tuple ("stock", [ v_int 2 ]) in
  (* txn 1 (compensating) waits on txn 2; txn 2 waits on txn 1 *)
  ignore (Lock_table.submit locks (Lock_request.make ~txn:1 ~step_type:0 Mode.X r));
  ignore (Lock_table.submit locks (Lock_request.make ~txn:2 ~step_type:0 Mode.X r2));
  ignore (Lock_table.submit locks (Lock_request.make ~txn:2 ~step_type:0 Mode.X r));
  ignore (Lock_table.submit locks (Lock_request.make ~txn:1 ~step_type:0 ~compensating:true Mode.X r2));
  (* the policy only inspects waiter state, so the service view needs no
     working suspension hook *)
  let svc =
    Lock_service.of_table ~wait:(fun ~ticket:_ ~txn:_ -> assert false) ~deliver:ignore locks
  in
  let cycle = [ 1; 2 ] in
  Alcotest.(check (list int)) "compensating requester spared" [ 2 ]
    (Runtime.victim_policy svc ~requester:1 ~cycle);
  Alcotest.(check (list int)) "plain requester is the victim" [ 2 ]
    (Runtime.victim_policy svc ~requester:2 ~cycle)

let test_buggy_step_body_cleans_up () =
  (* an exception in a step body compensates the completed steps, drains the
     locks, and surfaces to the caller *)
  let eng = W.make_engine stock2 in
  let inst, res = W.new_order_instance ~items:[ (1, 3); (2, 2) ] in
  (* sabotage the second line step *)
  let steps =
    Array.to_list inst.Program.i_steps
    |> List.mapi (fun idx (sd, body) ->
           if idx = 2 then (sd, fun _ctx -> failwith "boom") else (sd, body))
  in
  let broken = { inst with Program.i_steps = Array.of_list steps } in
  let surfaced = ref false in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        try ignore (Runtime.run eng broken)
        with Failure msg when msg = "boom" -> surfaced := true);
    ];
  Alcotest.(check bool) "exception surfaced" true !surfaced;
  Alcotest.(check int) "locks drained" 0 (Lock_service.lock_count (Executor.lock_service eng));
  (* the completed line (item 1) was compensated: stock restored, order
     cancelled *)
  let db = Executor.db eng in
  Alcotest.(check int) "stock restored" 15
    (Value.as_int (Table.get_exn (Database.table db "stock") [ v_int 1 ]).(1));
  check_consistent ~initial_stock:stock2 eng;
  ignore res

let test_buggy_legacy_cleans_up () =
  let eng = W.make_engine stock2 in
  let surfaced = ref false in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        try
          ignore
            (Runtime.run_legacy eng ~txn_type:"bug" (fun ctx ->
                 ignore (Executor.read ctx "stock" [ v_int 1 ]);
                 failwith "legacy boom"))
        with Failure msg when msg = "legacy boom" -> surfaced := true);
    ];
  Alcotest.(check bool) "exception surfaced" true !surfaced;
  Alcotest.(check int) "locks drained" 0 (Lock_service.lock_count (Executor.lock_service eng))

(* --- assertion verification harness ------------------------------------------ *)

let test_assertion_checker_fires () =
  (* sabotage: a legacy transaction that violates I1 by deleting an orderline
     row out from under a billed order; with verification on, running a bill
     with a stale assertion would raise.  We simulate by corrupting the db
     directly and then running bill with verify_assertions. *)
  let eng = W.make_engine stock2 in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        let i, _ = W.new_order_instance ~items:[ (1, 2); (2, 1) ] in
        expect_committed "setup" (Runtime.run ~options:opts eng i));
    ];
  (* corrupt behind the CC's back *)
  ignore (Table.delete (Database.table (Executor.db eng) "orderlines") [ v_int 1; v_int 1 ]);
  let raised = ref false in
  (try
     Schedule.run ~policy:Runtime.victim_policy eng
       [
         (fun () ->
           let bi, _ = W.bill_instance ~order:1 in
           ignore (Runtime.run ~options:opts eng bi));
       ]
   with Runtime.Assertion_violated { assertion = "bill_I1"; _ } -> raised := true);
  Alcotest.(check bool) "verification caught the violation" true !raised

(* --- recovery of decomposed transactions -------------------------------------- *)

let run_compensation_on_recovered db (p : Acc_wal.Recovery.pending) =
  (* the driver-side completion of a pending compensation: §4's semantic undo
     re-executed from the saved work area *)
  Alcotest.(check string) "pending type" "new_order" p.Acc_wal.Recovery.p_txn_type;
  let o =
    match List.assoc_opt "order_id" p.Acc_wal.Recovery.p_area with
    | Some v -> Value.as_int v
    | None -> Alcotest.fail "work area lacks order_id"
  in
  let orders = Database.table db "orders" in
  let orderlines = Database.table db "orderlines" in
  let stock = Database.table db "stock" in
  List.iter
    (fun key ->
      let row = Table.get_exn orderlines key in
      let item = Value.as_int row.(1) and filled = Value.as_int row.(3) in
      let srow = Table.get_exn stock [ v_int item ] in
      ignore
        (Table.update stock [ v_int item ] (fun r ->
             r.(1) <- v_int (Value.as_int srow.(1) + filled);
             r));
      ignore (Table.delete orderlines key))
    (Table.scan_keys ~where:(Predicate.Eq ("order_id", v_int o)) orderlines);
  if Table.mem orders [ v_int o ] then ignore (Table.delete orders [ v_int o ])

let test_crash_recovery_every_prefix () =
  (* run two new_orders to completion, then crash at every log prefix and
     check that recovery + pending compensation restores consistency *)
  let eng = W.make_engine stock2 in
  let baseline = Database.copy (Executor.db eng) in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        let a, _ = W.new_order_instance ~items:[ (1, 5); (2, 3) ] in
        expect_committed "A" (Runtime.run ~options:opts eng a);
        let b, _ = W.new_order_instance ~items:[ (2, 4) ] in
        expect_committed "B" (Runtime.run ~options:opts eng b));
    ];
  let log = Executor.log eng in
  for cut = 0 to Acc_wal.Log.length log do
    let r = Acc_wal.Recovery.recover ~baseline (Acc_wal.Log.prefix log cut) in
    List.iter (run_compensation_on_recovered r.Acc_wal.Recovery.db) r.Acc_wal.Recovery.pending;
    match W.check_consistency ~initial_stock:stock2 r.Acc_wal.Recovery.db with
    | [] -> ()
    | problems ->
        Alcotest.fail (Printf.sprintf "cut %d: %s" cut (String.concat "; " problems))
  done

(* --- properties -------------------------------------------------------------- *)

(* random mixes of new_orders (some forced to abort) and bills, with random
   yield points: the database constraint must hold at quiescence, aborted
   orders must vanish, committed ones must be intact; schedules need NOT be
   serializable *)
let prop_semantic_correctness =
  QCheck2.Test.make ~name:"acc: semantic correctness under random interleavings" ~count:40
    QCheck2.Gen.(
      list_size (int_range 1 5)
        (triple
           (list_size (int_range 1 3) (pair (int_range 1 3) (int_range 1 4)))
           (int_range 0 9) (* abort_at source: 0-6 no abort, 7-9 abort after step 1 *)
           bool (* yield in line steps *)))
    (fun specs ->
      let initial_stock = [ (1, 30, 5); (2, 30, 7); (3, 30, 11) ] in
      let eng = W.make_engine initial_stock in
      let expected = ref [] in
      let dedupe items =
        (* an order names each item at most once *)
        List.fold_left
          (fun acc (it, q) -> if List.mem_assoc it acc then acc else acc @ [ (it, q) ])
          [] items
      in
      let fibers =
        List.map
          (fun (items, abort_code, yields) ->
            fun () ->
              let items = dedupe items in
              let inst, _res =
                if yields then yielding_new_order ~items else W.new_order_instance ~items
              in
              let abort_at = if abort_code >= 7 then Some 1 else None in
              let outcome = Runtime.run ~options:opts ?abort_at eng inst in
              expected := (outcome, abort_at) :: !expected)
          specs
      in
      Schedule.run ~policy:Runtime.victim_policy eng fibers;
      List.for_all
        (fun (outcome, abort_at) ->
          match (outcome, abort_at) with
          | Runtime.Committed, None -> true
          | Runtime.Compensated { completed_steps = 1 }, Some 1 -> true
          | (Runtime.Committed | Runtime.Compensated _), _ -> false)
        !expected
      && W.check_consistency ~initial_stock (Executor.db eng) = []
      && Lock_service.lock_count (Executor.lock_service eng) = 0)

let suites =
  [
    ( "acc.analysis",
      [
        Alcotest.test_case "footprint overlap" `Quick test_footprint_overlap;
        Alcotest.test_case "assertion validation" `Quick test_assertion_validation;
        Alcotest.test_case "program validation" `Quick test_program_validation;
        Alcotest.test_case "workload registry" `Quick test_workload_registry;
        Alcotest.test_case "interference table (the §4 facts)" `Quick test_interference_table;
        Alcotest.test_case "prefix table" `Quick test_prefix_table;
        Alcotest.test_case "override hook" `Quick test_interference_override;
        Alcotest.test_case "table rendering" `Quick test_interference_pp;
      ] );
    ( "acc.runtime",
      [
        Alcotest.test_case "single new_order" `Quick test_single_new_order;
        Alcotest.test_case "partial fill" `Quick test_insufficient_stock_partial_fill;
        Alcotest.test_case "bill after commit" `Quick test_bill_after_commit;
        Alcotest.test_case "forced abort compensates" `Quick test_forced_abort_compensates;
        Alcotest.test_case "abort at first step" `Quick test_abort_at_first_step_physical;
      ] );
    ( "acc.interleaving",
      [
        Alcotest.test_case "non-serializable crosswise fills" `Quick
          test_new_orders_interleave_nonserializably;
        Alcotest.test_case "bill blocked by in-flight order" `Quick
          test_bill_blocked_by_inflight_new_order;
        Alcotest.test_case "bill of other order not blocked" `Quick
          test_bill_other_order_not_blocked;
        Alcotest.test_case "two-level ablation: false conflict" `Quick
          test_two_level_false_conflict;
        Alcotest.test_case "legacy isolated from decomposed" `Quick
          test_legacy_isolated_from_decomposed;
        Alcotest.test_case "decomposed blocked by legacy" `Quick test_decomposed_blocked_by_legacy;
      ] );
    ( "acc.read_isolation",
      [
        Alcotest.test_case "exposed reads see intermediates" `Quick
          test_exposed_reads_see_intermediate;
        Alcotest.test_case "committed-only waits" `Quick test_committed_only_waits;
        Alcotest.test_case "snapshot reads stable" `Quick test_snapshot_reads_stable;
        Alcotest.test_case "exposed reads can be unstable" `Quick
          test_exposed_reads_can_be_unstable;
      ] );
    ( "acc.deadlock",
      [
        Alcotest.test_case "step deadlock retried" `Quick test_step_deadlock_retried;
        Alcotest.test_case "retry exhaustion compensates" `Quick
          test_step_deadlock_exhaustion_compensates;
        Alcotest.test_case "victim policy shields compensation" `Quick
          test_victim_policy_shields_compensation;
      ] );
    ( "acc.verification",
      [
        Alcotest.test_case "buggy step body cleans up" `Quick test_buggy_step_body_cleans_up;
        Alcotest.test_case "buggy legacy cleans up" `Quick test_buggy_legacy_cleans_up;
        Alcotest.test_case "assertion checker fires" `Quick test_assertion_checker_fires;
        Alcotest.test_case "crash recovery at every prefix" `Quick
          test_crash_recovery_every_prefix;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_semantic_correctness;
      ] );
  ]
