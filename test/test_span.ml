(* Tests for the span layer (lib/obs/span.ml), the metric registry and the
   Prometheus exposition — plus the Histogram.Snapshot properties they lean
   on (read safety under concurrent writers, merge-order independence). *)

module Span = Acc_obs.Span
module Trace = Acc_obs.Trace
module Registry = Acc_obs.Registry
module Prom = Acc_obs.Prom
module Metrics = Acc_util.Metrics
module Mode = Acc_lock.Mode
module Resource_id = Acc_lock.Resource_id
module Value = Acc_relation.Value

let res i = Resource_id.Tuple ("t", [ Value.Int i ])

(* Event shorthand: every test builds a hand-timed trace and folds it
   through the builder, so the expected phase arithmetic is exact. *)
let ev_begin ?(txn_type = "new_order") txn = Trace.Txn_begin { txn; txn_type }
let ev_commit txn = Trace.Txn_commit { txn }
let ev_abort ?(compensated = false) txn = Trace.Txn_abort { txn; compensated }
let ev_step_begin ?(idx = 1) txn = Trace.Step_begin { txn; step_type = 3; step_index = idx }
let ev_step_end ?(idx = 1) txn = Trace.Step_end { txn; step_index = idx }
let ev_comp txn = Trace.Comp_run { txn; step_type = 3; from_step = 1 }

let ev_block txn =
  Trace.Lock_block
    {
      txn;
      step_type = 3;
      mode = Mode.X;
      resource = res 1;
      blocker_txn = 99;
      blocker_mode = Mode.S;
      blocker_waiting = false;
      assertion = None;
      interfering_step = None;
    }

let ev_wake txn = Trace.Lock_wake { txn; mode = Mode.X; resource = res 1 }
let ev_wal txn dur = Trace.Wal_append { txn; lsn = 1; kind = "write"; dur }
let ev_prepare txn gid = Trace.Prepare { txn; gid }
let ev_decide gid = Trace.Decide { gid; commit = true; participants = 2 }
let ev_resolve txn gid = Trace.Resolve { txn; gid; commit = true }

let spans_of events =
  let b = Span.Builder.create () in
  List.iter (fun (ts, ev) -> Span.Builder.feed_event b ~ts ~dom:0 ev) events;
  (Span.Builder.finish b, b)

let only = function
  | [ sp ] -> sp
  | l -> Alcotest.failf "expected exactly one span, got %d" (List.length l)

let check_phase what sp p expected =
  Alcotest.(check (float 1e-9)) what expected (Span.phase sp p)

(* --- directed: phase arithmetic ---------------------------------------- *)

let test_commit_phases () =
  let spans, b =
    spans_of
      [
        (0.0, ev_begin 1);
        (1.0, ev_step_begin 1);
        (2.0, ev_block 1);
        (5.0, ev_wake 1);
        (6.0, ev_wal 1 0.5);
        (7.0, ev_step_end 1);
        (8.0, ev_commit 1);
      ]
  in
  let sp = only spans in
  Alcotest.(check int) "no orphans" 0 (Span.Builder.orphans b);
  Alcotest.(check bool) "committed" true (sp.Span.sp_outcome = Span.Committed);
  Alcotest.(check bool) "complete" true (Span.complete sp);
  Alcotest.(check (option (float 1e-9))) "wall" (Some 8.0) (Span.wall sp);
  check_phase "lock_wait" sp Span.Lock_wait 3.0;
  check_phase "wal" sp Span.Wal_append 0.5;
  (* step ran 6s; 3s of lock wait and 0.5s of WAL fell inside it *)
  check_phase "execute" sp Span.Execute 2.5;
  check_phase "prepare_hold" sp Span.Prepare_hold 0.0;
  check_phase "decide" sp Span.Decide 0.0;
  check_phase "compensate" sp Span.Compensate 0.0

let test_2pc_phases () =
  let spans, _ =
    spans_of
      [
        (0.0, ev_begin 1);
        (1.0, ev_step_begin 1);
        (2.0, ev_step_end 1);
        (3.0, ev_prepare 1 9);
        (5.0, ev_decide 9);
        (6.0, ev_commit 1);
      ]
  in
  let sp = only spans in
  Alcotest.(check (option int)) "gid" (Some 9) sp.Span.sp_gid;
  Alcotest.(check bool) "complete" true (Span.complete sp);
  check_phase "execute" sp Span.Execute 1.0;
  check_phase "prepare_hold" sp Span.Prepare_hold 2.0;
  (* decision to the branch's end event *)
  check_phase "decide" sp Span.Decide 1.0

let test_resolve_closes_prepare () =
  (* adopted in-doubt branch: recovery resolves instead of a Decide *)
  let spans, _ =
    spans_of
      [ (0.0, ev_begin 4); (1.0, ev_prepare 4 7); (4.0, ev_resolve 4 7); (5.0, ev_commit 4) ]
  in
  let sp = only spans in
  Alcotest.(check bool) "complete" true (Span.complete sp);
  check_phase "prepare_hold" sp Span.Prepare_hold 3.0;
  check_phase "decide" sp Span.Decide 1.0

let test_compensate_phases () =
  let spans, _ =
    spans_of
      [
        (0.0, ev_begin 2);
        (1.0, ev_step_begin 2);
        (2.0, ev_step_end 2);
        (3.0, ev_comp 2);
        (4.0, ev_step_end 2);
        (5.0, ev_abort ~compensated:true 2);
      ]
  in
  let sp = only spans in
  Alcotest.(check bool) "aborted+compensated" true
    (sp.Span.sp_outcome = Span.Aborted { compensated = true });
  check_phase "execute" sp Span.Execute 1.0;
  check_phase "compensate" sp Span.Compensate 1.0;
  let sum = List.fold_left (fun a (_, v) -> a +. v) 0. sp.Span.sp_phases in
  Alcotest.(check bool) "phases <= wall" true
    (sum <= Option.get (Span.wall sp) +. 1e-9)

(* --- directed: crash truncation ---------------------------------------- *)

let open_phase_of events =
  let spans, _ = spans_of events in
  let sp = only spans in
  Alcotest.(check bool) "open outcome" true (sp.Span.sp_outcome = Span.Open);
  Alcotest.(check (option (float 0.))) "no end" None sp.Span.sp_end;
  Alcotest.(check bool) "incomplete" true (not (Span.complete sp));
  sp.Span.sp_open_phase

let test_truncated_mid_step () =
  Alcotest.(check (option string))
    "cut in execute" (Some "execute")
    (Option.map Span.phase_name
       (open_phase_of [ (0.0, ev_begin 1); (1.0, ev_step_begin 1) ]))

let test_truncated_mid_wait () =
  (* admission wait before the first step: block with no step open *)
  Alcotest.(check (option string))
    "cut in lock_wait" (Some "lock_wait")
    (Option.map Span.phase_name
       (open_phase_of [ (0.0, ev_begin 1); (1.0, ev_block 1) ]))

let test_truncated_in_doubt () =
  Alcotest.(check (option string))
    "cut in prepare_hold" (Some "prepare_hold")
    (Option.map Span.phase_name
       (open_phase_of
          [ (0.0, ev_begin 1); (1.0, ev_step_begin 1); (2.0, ev_step_end 1); (3.0, ev_prepare 1 5) ]))

let test_truncated_mid_decide () =
  Alcotest.(check (option string))
    "cut in decide" (Some "decide")
    (Option.map Span.phase_name
       (open_phase_of
          [ (0.0, ev_begin 1); (1.0, ev_prepare 1 5); (2.0, ev_decide 5) ]))

let test_dangling_prepare_flagged () =
  (* a committed branch whose Decide never appeared in the trace: the whole
     in-doubt window is charged and the span is flagged incomplete *)
  let spans, _ =
    spans_of [ (0.0, ev_begin 1); (1.0, ev_prepare 1 5); (3.0, ev_commit 1) ]
  in
  let sp = only spans in
  Alcotest.(check bool) "committed" true (sp.Span.sp_outcome = Span.Committed);
  Alcotest.(check (option string)) "flagged" (Some "prepare_hold")
    (Option.map Span.phase_name sp.Span.sp_open_phase);
  check_phase "charged to end" sp Span.Prepare_hold 2.0;
  let r = Span.Report.build spans in
  Alcotest.(check int) "report flags it" 1 (Span.Report.incomplete_committed r)

let test_rebegin_cuts_live_span () =
  (* same txn id begins twice (crash + re-adoption in one trace): the first
     span is finalized Open, the second proceeds normally *)
  let spans, _ =
    spans_of
      [ (0.0, ev_begin 1); (1.0, ev_step_begin 1); (2.0, ev_begin 1); (3.0, ev_commit 1) ]
  in
  match spans with
  | [ a; b ] ->
      Alcotest.(check bool) "first open" true (a.Span.sp_outcome = Span.Open);
      Alcotest.(check bool) "second committed" true (b.Span.sp_outcome = Span.Committed)
  | l -> Alcotest.failf "expected two spans, got %d" (List.length l)

let test_orphans_counted () =
  let _, b =
    spans_of [ (1.0, ev_commit 42); (2.0, ev_step_begin 43); (3.0, ev_block 44) ]
  in
  (* commit and step_begin without a live span are orphans; a block for an
     unknown txn is ignored (lock events outlive spans on the release path) *)
  Alcotest.(check int) "orphans" 2 (Span.Builder.orphans b);
  Alcotest.(check (list (pair int string)))
    "sample" [ (42, "txn_commit"); (43, "step_begin") ]
    (Span.Builder.orphan_sample b)

let test_json_frontend_agrees () =
  (* the offline (JSONL) front-end must reconstruct the same spans as the
     live one; Trace.to_json is the wire format between them *)
  let events =
    [
      (0.0, ev_begin 1);
      (1.0, ev_step_begin 1);
      (2.0, ev_block 1);
      (3.0, ev_wake 1);
      (3.5, ev_wal 1 0.25);
      (4.0, ev_step_end 1);
      (5.0, ev_prepare 1 9);
      (6.0, ev_decide 9);
      (7.0, ev_commit 1);
    ]
  in
  let live, _ = spans_of events in
  let b = Span.Builder.create () in
  List.iteri
    (fun seq (ts, ev) ->
      Span.Builder.feed_json b (Trace.to_json { Trace.ts; dom = 0; seq; ev }))
    events;
  let offline = Span.Builder.finish b in
  let sp_live = only live and sp_off = only offline in
  Alcotest.(check int) "txn" sp_live.Span.sp_txn sp_off.Span.sp_txn;
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Span.phase_name p) (Span.phase sp_live p) (Span.phase sp_off p))
    Span.all_phases

(* --- qcheck: random traces --------------------------------------------- *)

(* A well-formed per-txn script, encoded as ops (timestamps are assigned
   after the scripts are interleaved).  Covers steps with optional lock
   waits and WAL appends, the 2PC prepare/decide pair, compensating aborts,
   and crash truncation via a random prefix cut of the merged stream. *)
type op = O_begin | O_step_b | O_step_e | O_block | O_wake | O_wal | O_prep | O_decide | O_comp | O_commit | O_abort

let gen_script =
  QCheck2.Gen.(
    let* n_steps = int_range 1 3 in
    let* waits = list_repeat n_steps bool in
    let* wals = list_repeat n_steps bool in
    let* prep = bool in
    let* commit = bool in
    let steps =
      List.concat
        (List.map2
           (fun w wl ->
             (O_step_b :: (if w then [ O_block; O_wake ] else []))
             @ (if wl then [ O_wal ] else [])
             @ [ O_step_e ])
           waits wals)
    in
    let tail =
      if commit then (if prep then [ O_prep; O_decide ] else []) @ [ O_commit ]
      else [ O_comp; O_step_e; O_abort ]
    in
    return ((O_begin :: steps) @ tail))

(* random interleave preserving per-script order, driven by generated picks *)
let interleave picks scripts =
  let arr = Array.of_list (List.map ref scripts) in
  let out = ref [] in
  let picks = ref picks in
  let next_pick n =
    match !picks with
    | [] -> 0
    | p :: rest ->
        picks := rest;
        p mod n
  in
  let live () =
    Array.to_list arr |> List.mapi (fun i r -> (i, r)) |> List.filter (fun (_, r) -> !r <> [])
  in
  let rec go () =
    match live () with
    | [] -> ()
    | l ->
        let i, r = List.nth l (next_pick (List.length l)) in
        (match !r with
        | [] -> ()
        | op :: rest ->
            r := rest;
            out := (i, op) :: !out);
        go ()
  in
  go ();
  List.rev !out

let events_of_ops ops =
  List.mapi
    (fun i (txn_ix, op) ->
      let txn = txn_ix + 1 in
      let ts = 0.001 *. float_of_int (i + 1) in
      let ev =
        match op with
        | O_begin -> ev_begin txn
        | O_step_b -> ev_step_begin txn
        | O_step_e -> ev_step_end txn
        | O_block -> ev_block txn
        | O_wake -> ev_wake txn
        | O_wal -> ev_wal txn 0.0001
        | O_prep -> ev_prepare txn txn
        | O_decide -> ev_decide txn
        | O_comp -> ev_comp txn
        | O_commit -> ev_commit txn
        | O_abort -> ev_abort ~compensated:true txn
      in
      (ts, ev))
    ops

let gen_trace =
  QCheck2.Gen.(
    let* n_txns = int_range 1 5 in
    let* scripts = list_repeat n_txns gen_script in
    let* picks = list_size (int_range 0 60) (int_range 0 1000) in
    let ops = interleave picks scripts in
    let* cut = int_range 1 (List.length ops) in
    (* sometimes truncate (crash), sometimes keep the whole trace *)
    let* truncate = bool in
    return (events_of_ops (if truncate then List.filteri (fun i _ -> i < cut) ops else ops)))

let prop_phases_sum_le_wall =
  QCheck2.Test.make ~name:"span: phase durations sum to <= wall time" ~count:500
    gen_trace (fun events ->
      let spans, _ = spans_of events in
      List.for_all
        (fun sp ->
          List.for_all (fun (_, v) -> v >= -1e-12) sp.Span.sp_phases
          && List.length sp.Span.sp_phases = Span.n_phases
          &&
          match Span.wall sp with
          | None -> sp.Span.sp_outcome = Span.Open
          | Some w ->
              let sum = List.fold_left (fun a (_, v) -> a +. v) 0. sp.Span.sp_phases in
              sum <= w +. 1e-9)
        spans)

let prop_span_accounting =
  QCheck2.Test.make ~name:"span: every begin is accounted exactly once" ~count:300
    gen_trace (fun events ->
      let begins =
        List.length
          (List.filter (function _, Trace.Txn_begin _ -> true | _ -> false) events)
      in
      let spans, _ = spans_of events in
      List.length spans = begins)

(* --- histogram snapshots ----------------------------------------------- *)

let test_snapshot_under_writers () =
  (* read paths must be safe while writers run: every snapshot is internally
     consistent (derived count = sum of its own buckets; percentile walk
     terminates inside the array), even mid-record *)
  let h = Metrics.Histogram.create () in
  let stop = Atomic.make false in
  let worker () =
    let i = ref 0 in
    while not (Atomic.get stop) do
      incr i;
      Metrics.Histogram.record h (float_of_int (!i land 0xff) *. 1e-5)
    done
  in
  let ds = List.init 2 (fun _ -> Domain.spawn worker) in
  for _ = 1 to 2_000 do
    let s = Metrics.Histogram.snapshot h in
    let module S = Metrics.Histogram.Snapshot in
    Alcotest.(check int) "count = sum of buckets" (Array.fold_left ( + ) 0 s.S.counts)
      (S.count s);
    if S.count s > 0 then begin
      let p = S.percentile s 0.99 in
      Alcotest.(check bool) "p99 finite" true (Float.is_finite p);
      match List.rev (S.cumulative s) with
      | (inf_bound, total) :: _ ->
          Alcotest.(check bool) "+Inf bucket" true (inf_bound = Float.infinity);
          Alcotest.(check int) "cumulative total" (S.count s) total
      | [] -> Alcotest.fail "cumulative empty"
    end
  done;
  Atomic.set stop true;
  List.iter Domain.join ds

let prop_snapshot_merge_order_independent =
  QCheck2.Test.make ~name:"histogram: snapshot merge is order-independent" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 2 5)
           (list_size (int_range 0 30) (float_bound_inclusive 0.1)))
        (list_size (int_range 0 10) (int_range 0 1000)))
    (fun (sample_sets, picks) ->
      let module S = Metrics.Histogram.Snapshot in
      let snaps =
        List.map
          (fun samples ->
            let h = Metrics.Histogram.create () in
            List.iter (Metrics.Histogram.record h) samples;
            Metrics.Histogram.snapshot h)
          sample_sets
      in
      (* permute via the generated picks (Fisher–Yates with fixed choices) *)
      let arr = Array.of_list snaps in
      let n = Array.length arr in
      List.iteri
        (fun i p ->
          let i = i mod n in
          let j = p mod n in
          let tmp = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- tmp)
        picks;
      let merged_fwd = List.fold_left S.merge (List.hd snaps) (List.tl snaps) in
      let permuted = Array.to_list arr in
      let merged_perm = List.fold_left S.merge (List.hd permuted) (List.tl permuted) in
      S.count merged_fwd = S.count merged_perm
      && merged_fwd.S.counts = merged_perm.S.counts
      && Float.abs (S.sum merged_fwd -. S.sum merged_perm)
         <= 1e-9 *. Float.max 1. (Float.abs (S.sum merged_fwd))
      && (S.count merged_fwd = 0
         || S.percentile merged_fwd 0.95 = S.percentile merged_perm 0.95))

let test_snapshot_merge_mismatch () =
  let module S = Metrics.Histogram.Snapshot in
  let h1 = Metrics.Histogram.create ~base:1e-6 () in
  let h2 = Metrics.Histogram.create ~base:1e-3 () in
  Alcotest.check_raises "base mismatch"
    (Invalid_argument "Histogram.Snapshot.merge: shape mismatch")
    (fun () ->
      ignore (S.merge (Metrics.Histogram.snapshot h1) (Metrics.Histogram.snapshot h2)))

(* --- registry + exposition --------------------------------------------- *)

let test_registry_snapshot_sorted () =
  let r = Registry.create () in
  let c = Metrics.Counter.create () in
  Metrics.Counter.add c 3;
  Registry.register ~registry:r ~help:"b help" "b_total" (Registry.Counter c);
  Registry.register ~registry:r
    ~labels:[ ("partition", "1") ]
    "a_total"
    (Registry.Poll_counter (fun () -> 7));
  Registry.register ~registry:r
    ~labels:[ ("partition", "0") ]
    "a_total"
    (Registry.Poll_counter (fun () -> 5));
  let rows = Registry.snapshot ~registry:r () in
  Alcotest.(check (list string)) "sorted by (name, labels)"
    [ "a_total{partition=0}"; "a_total{partition=1}"; "b_total" ]
    (List.map
       (fun row ->
         match row.Registry.r_labels with
         | [] -> row.Registry.r_name
         | ls ->
             row.Registry.r_name ^ "{"
             ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
             ^ "}")
       rows);
  Alcotest.(check int) "counter sampled" 3
    (match (List.nth rows 2).Registry.r_sample with
    | Registry.S_counter n -> n
    | _ -> -1)

let test_registry_replaces () =
  let r = Registry.create () in
  Registry.register ~registry:r "x_total" (Registry.Poll_counter (fun () -> 1));
  Registry.register ~registry:r "x_total" (Registry.Poll_counter (fun () -> 2));
  Alcotest.(check int) "one row" 1 (Registry.size ~registry:r ());
  match Registry.snapshot ~registry:r () with
  | [ { Registry.r_sample = Registry.S_counter 2; _ } ] -> ()
  | _ -> Alcotest.fail "replacement did not win"

let test_registry_rejects_bad_names () =
  let r = Registry.create () in
  Alcotest.(check bool) "bad metric name" true
    (try
       Registry.register ~registry:r "9bad" (Registry.Poll_counter (fun () -> 0));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad label name" true
    (try
       Registry.register ~registry:r ~labels:[ ("0p", "x") ] "ok_total"
         (Registry.Poll_counter (fun () -> 0));
       false
     with Invalid_argument _ -> true)

let test_prom_exposition () =
  let r = Registry.create () in
  let h = Metrics.Histogram.create () in
  Metrics.Histogram.record h 0.5e-6;
  Metrics.Histogram.record h 3e-6;
  Registry.register ~registry:r ~help:"hold time" "acc_t_hold_seconds"
    (Registry.Histogram h);
  let g = Metrics.Gauge.create () in
  Metrics.Gauge.set g 2.5;
  Registry.register ~registry:r ~labels:[ ("partition", "0") ] "acc_t_depth"
    (Registry.Gauge g);
  let text = Prom.to_string ~registry:r () in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "help line" true (has "# HELP acc_t_hold_seconds hold time");
  Alcotest.(check bool) "type histogram" true (has "# TYPE acc_t_hold_seconds histogram");
  Alcotest.(check bool) "+Inf bucket" true (has "acc_t_hold_seconds_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "count" true (has "acc_t_hold_seconds_count 2");
  Alcotest.(check bool) "gauge with label" true (has "acc_t_depth{partition=\"0\"} 2.5");
  (* dump_file writes the same exposition atomically (tmp + rename) *)
  let path = Filename.temp_file "acc_prom" ".prom" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Prom.dump_file ~registry:r path;
      let ic = open_in path in
      let n = in_channel_length ic in
      let contents = really_input_string ic n in
      close_in ic;
      Alcotest.(check string) "file matches to_string" text contents)

let qtest = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |])

let suites =
  [
    ( "obs.span",
      [
        Alcotest.test_case "commit phase arithmetic" `Quick test_commit_phases;
        Alcotest.test_case "2pc prepare/decide phases" `Quick test_2pc_phases;
        Alcotest.test_case "resolve closes prepare" `Quick test_resolve_closes_prepare;
        Alcotest.test_case "compensating abort" `Quick test_compensate_phases;
        Alcotest.test_case "truncated mid-step" `Quick test_truncated_mid_step;
        Alcotest.test_case "truncated mid-wait" `Quick test_truncated_mid_wait;
        Alcotest.test_case "truncated in-doubt" `Quick test_truncated_in_doubt;
        Alcotest.test_case "truncated mid-decide" `Quick test_truncated_mid_decide;
        Alcotest.test_case "dangling prepare flagged" `Quick test_dangling_prepare_flagged;
        Alcotest.test_case "re-begin cuts live span" `Quick test_rebegin_cuts_live_span;
        Alcotest.test_case "orphans counted" `Quick test_orphans_counted;
        Alcotest.test_case "json front-end agrees" `Quick test_json_frontend_agrees;
        qtest prop_phases_sum_le_wall;
        qtest prop_span_accounting;
      ] );
    ( "obs.snapshot",
      [
        Alcotest.test_case "reads safe under writers" `Quick test_snapshot_under_writers;
        Alcotest.test_case "merge rejects mismatch" `Quick test_snapshot_merge_mismatch;
        qtest prop_snapshot_merge_order_independent;
      ] );
    ( "obs.registry",
      [
        Alcotest.test_case "snapshot sorted" `Quick test_registry_snapshot_sorted;
        Alcotest.test_case "re-register replaces" `Quick test_registry_replaces;
        Alcotest.test_case "rejects bad names" `Quick test_registry_rejects_bad_names;
        Alcotest.test_case "prometheus exposition" `Quick test_prom_exposition;
      ] );
  ]
