(* Tests for acc.parallel: decision parity of the sharded lock table with the
   sequential one, real-domain blocking and victimization, metrics merging,
   and a multi-domain TPC-C stress run. *)

open Acc_lock
module Sharded = Acc_parallel.Sharded_lock_table
module Detector = Acc_parallel.Deadlock_detector
module Domain_pool = Acc_parallel.Domain_pool
module Txn_effect = Acc_txn.Txn_effect
module Metrics = Acc_util.Metrics
module Tally = Acc_util.Stats.Tally
module Value = Acc_relation.Value

(* --- parity: sharded vs sequential, same decisions --------------------- *)

(* The oracle of test_lock: step 10 interferes with assertion 100; prefix
   behind 200 interferes with 100. *)
let parity_sem =
  Mode.
    {
      step_interferes = (fun ~step_type ~assertion -> step_type = 10 && assertion = 100);
      prefix_interferes =
        (fun ~holder_assertion ~assertion -> holder_assertion = 200 && assertion = 100);
    }

let parity_resources =
  let tuple t k = Resource_id.Tuple (t, [ Value.Int k ]) in
  [|
    Resource_id.Table "t"; tuple "t" 1; tuple "t" 2;
    Resource_id.Table "u"; tuple "u" 1; tuple "u" 2;
    Resource_id.Table "v"; tuple "v" 1; tuple "v" 2;
  |]

let parity_modes = [| Mode.S; Mode.X; Mode.IS; Mode.IX; Mode.A 100; Mode.A 200; Mode.Comp 10 |]

type pop =
  | PReq of { txn : int; step : int; adm : bool; comp : bool; mode : int; res : int }
  | PRel_where of { txn : int; res : int }
  | PRel_all of int
  | PCancel of int

let pop_gen =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun (txn, step, adm, comp, mode, res) -> PReq { txn; step; adm; comp; mode; res })
          (tup6 (int_range 1 4) (oneofl [ 0; 10; 11 ]) bool bool (int_range 0 6)
             (int_range 0 8));
        map2 (fun txn res -> PRel_where { txn; res }) (int_range 1 4) (int_range 0 8);
        map (fun txn -> PRel_all txn) (int_range 1 4);
        map (fun txn -> PCancel txn) (int_range 1 4);
      ])

let woken_txns wakeups =
  List.sort compare (List.map (fun w -> w.Lock_table.woken_txn) wakeups)

let sorted_held tbl_held = List.sort compare tbl_held

(* Drive the same single-threaded op sequence through a sequential table and
   a sharded one and require identical decisions at every point: grant vs
   queue, who wakes on each release, and identical final holds, waits-for
   edges and counts.  (Ticket numbers differ by construction; they are never
   compared.)  Waiting is one-request-per-transaction, as the blocking engine
   guarantees. *)
let prop_parity =
  QCheck2.Test.make ~name:"sharded table: decision parity with sequential" ~count:200
    QCheck2.Gen.(
      triple (oneofl [ 1; 2; 4; 7 ]) bool (list_size (int_range 0 60) pop_gen))
    (fun (shards, fast, ops) ->
      let seq = Lock_table.create parity_sem in
      let sha = Sharded.create ~shards ~fast parity_sem in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun op ->
          if !ok then
            match op with
            | PReq { txn; step; adm; comp; mode; res } ->
                if Lock_table.outstanding_tickets seq ~txn = [] then begin
                  let mode = parity_modes.(mode) and res = parity_resources.(res) in
                  let r =
                    Lock_request.make ~txn ~step_type:step ~admission:adm
                      ~compensating:comp mode res
                  in
                  let g1 = Lock_table.submit seq r in
                  let g2 = Sharded.submit sha r in
                  check
                    (match (g1, g2) with
                    | Lock_table.Granted, Lock_table.Granted -> true
                    | Lock_table.Queued _, Lock_table.Queued _ -> true
                    | _ -> false)
                end
            | PRel_where { txn; res } ->
                let target = parity_resources.(res) in
                let pred r _ = Resource_id.equal r target in
                let w1 = Lock_table.release_where seq ~txn pred in
                let w2 = Sharded.release_where sha ~txn pred in
                check (woken_txns w1 = woken_txns w2)
            | PRel_all txn ->
                let w1 = Lock_table.release_all seq ~txn in
                let w2 = Sharded.release_all sha ~txn in
                check (woken_txns w1 = woken_txns w2)
            | PCancel txn ->
                let w1 =
                  List.concat_map
                    (fun ticket -> Lock_table.cancel seq ~ticket)
                    (Lock_table.outstanding_tickets seq ~txn)
                in
                let w2 =
                  List.concat_map
                    (fun ticket -> Sharded.cancel sha ~ticket)
                    (Sharded.outstanding_tickets sha ~txn)
                in
                check (woken_txns w1 = woken_txns w2))
        ops;
      (* end-state equivalence *)
      for txn = 1 to 4 do
        check
          (sorted_held (Lock_table.held_by seq ~txn) = sorted_held (Sharded.held_by sha ~txn));
        check
          (Lock_table.compensating_waiter seq ~txn = Sharded.compensating_waiter sha ~txn)
      done;
      check
        (List.sort compare (Lock_table.wait_edges seq)
        = List.sort compare (Sharded.wait_edges sha));
      check (Lock_table.lock_count seq = Sharded.lock_count sha);
      check (Lock_table.waiter_count seq = Sharded.waiter_count sha);
      check (Lock_table.entry_count seq = Sharded.entry_count sha);
      !ok)

(* --- batched acquisition parity ----------------------------------------- *)

(* acquire_batch must land exactly the lock state of the equivalent singleton
   sequence (the canonicalized requests acquired one by one) on both
   backends.  Generated batches mix admission/compensating flags, modes and
   transactions but are granted-by-construction — shared resources are taken
   in intent modes only (mutually compatible) and absolute modes stay on
   per-transaction tuples — so the single-threaded driver never suspends;
   the blocking and expiry corners are the directed tests below. *)

let batch_req_gen =
  QCheck2.Gen.(
    map
      (fun (txn, step, adm, comp, shared, pick) ->
        let resource =
          if shared then
            [| Resource_id.Table "t"; Resource_id.Table "u"; Resource_id.Table "v" |].(pick mod 3)
          else
            [|
              Resource_id.Tuple ("t", [ Value.Int (10 * txn) ]);
              Resource_id.Tuple ("u", [ Value.Int (10 * txn) ]);
              Resource_id.Tuple ("v", [ Value.Int ((10 * txn) + 1) ]);
            |].(pick mod 3)
        in
        let mode =
          if shared then [| Mode.IS; Mode.IX |].(pick mod 2)
          else [| Mode.S; Mode.X; Mode.A 100; Mode.Comp 10 |].(pick)
        in
        Lock_request.make ~txn ~step_type:step ~admission:adm ~compensating:comp mode
          resource)
      (tup6 (int_range 1 3) (oneofl [ 0; 10; 11 ]) bool bool bool (int_range 0 3)))

let universe =
  [ Resource_id.Table "t"; Resource_id.Table "u"; Resource_id.Table "v" ]
  @ List.concat_map
      (fun txn ->
        [
          Resource_id.Tuple ("t", [ Value.Int (10 * txn) ]);
          Resource_id.Tuple ("u", [ Value.Int (10 * txn) ]);
          Resource_id.Tuple ("v", [ Value.Int ((10 * txn) + 1) ]);
        ])
      [ 1; 2; 3 ]

let never_wait ~ticket:_ ~txn:_ = assert false

let prop_batch_parity =
  QCheck2.Test.make
    ~name:"acquire_batch = canonical singleton sequence, both backends" ~count:300
    QCheck2.Gen.(
      triple (oneofl [ 1; 2; 4; 7 ]) bool (list_size (int_range 0 24) batch_req_gen))
    (fun (shards, fast, reqs) ->
      (* sharded: batch vs singleton *)
      let sha_b = Sharded.create ~shards ~fast parity_sem in
      Sharded.acquire_batch sha_b reqs;
      let batch_mutex_ops = Sharded.mutex_acquisitions sha_b in
      let sha_s = Sharded.create ~shards ~fast parity_sem in
      List.iter (Sharded.acquire_req sha_s) (Lock_request.canonicalize reqs);
      let singleton_mutex_ops = Sharded.mutex_acquisitions sha_s in
      (* sequential service: batch vs singleton *)
      let seq_b_t = Lock_table.create parity_sem in
      let seq_b = Lock_service.of_table ~wait:never_wait ~deliver:ignore seq_b_t in
      Lock_service.acquire_batch seq_b reqs;
      let seq_s_t = Lock_table.create parity_sem in
      let seq_s = Lock_service.of_table ~wait:never_wait ~deliver:ignore seq_s_t in
      List.iter (Lock_service.acquire seq_s) (Lock_request.canonicalize reqs);
      let held t res = List.sort compare (Sharded.holders t res) in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun res ->
          check (held sha_b res = held sha_s res);
          check
            (List.sort compare (Lock_table.holders seq_b_t res)
            = List.sort compare (Lock_table.holders seq_s_t res));
          (* cross-backend: the sharded end state matches the sequential one *)
          check (held sha_b res = List.sort compare (Lock_table.holders seq_b_t res)))
        universe;
      check (Sharded.lock_count sha_b = Sharded.lock_count sha_s);
      check (Sharded.lock_count sha_b = Lock_table.lock_count seq_b_t);
      check (Sharded.waiter_count sha_b = 0 && Sharded.waiter_count sha_s = 0);
      (* the batch's reason to exist: never more shard-mutex round trips than
         the singleton sequence (snapshots taken before the state queries
         above, which also take shard mutexes) *)
      check (batch_mutex_ops <= singleton_mutex_ops);
      !ok)

(* A batch whose later member is held elsewhere: earlier members are granted
   and stay held while the caller blocks, and the batch completes when the
   blocker leaves — the singleton-equivalent end state. *)
let test_batch_blocks_then_completes () =
  (* one shard so the canonical order (r1 before r2) is also the
     acquisition order — shard groups are walked in shard-index order *)
  let t = Sharded.create ~shards:1 Mode.no_semantics in
  let r1 = Resource_id.Tuple ("t", [ Value.Int 1 ]) in
  let r2 = Resource_id.Tuple ("t", [ Value.Int 2 ]) in
  Sharded.acquire_req t (Lock_request.make ~txn:1 Mode.X r2);
  let d =
    Domain.spawn (fun () ->
        (* canonical order acquires r1 first, then blocks on r2 *)
        Sharded.acquire_batch t
          [ Lock_request.make ~txn:2 Mode.X r2; Lock_request.make ~txn:2 Mode.X r1 ];
        `Done)
  in
  let spins = ref 0 in
  while Sharded.waiter_count t = 0 && !spins < 5000 do
    incr spins;
    Unix.sleepf 0.001
  done;
  Alcotest.(check bool) "earlier batch member already held" true
    (List.exists (fun (txn, m, _) -> txn = 2 && m = Mode.X) (Sharded.holders t r1));
  ignore (Sharded.release_all t ~txn:1);
  (match Domain.join d with
  | `Done -> ()
  | _ -> Alcotest.fail "batch did not complete");
  Alcotest.(check bool) "blocked member granted after handoff" true
    (List.exists (fun (txn, m, _) -> txn = 2 && m = Mode.X) (Sharded.holders t r2));
  ignore (Sharded.release_all t ~txn:2);
  Alcotest.(check int) "no residue" 0 (Sharded.lock_count t);
  Alcotest.(check int) "no waiters" 0 (Sharded.waiter_count t)

(* Deadline expiry mid-batch: the queued member is withdrawn by the sweep and
   the batch raises [Lock_timeout]; the caller's abort path reclaims the
   already-granted members and nothing leaks. *)
let test_batch_deadline_expiry () =
  let t = Sharded.create ~shards:1 Mode.no_semantics in
  let r1 = Resource_id.Tuple ("t", [ Value.Int 1 ]) in
  let r2 = Resource_id.Tuple ("t", [ Value.Int 2 ]) in
  Sharded.acquire_req t (Lock_request.make ~txn:1 Mode.X r2);
  let d =
    Domain.spawn (fun () ->
        match
          Sharded.acquire_batch t
            [
              Lock_request.make ~txn:2 Mode.X r1;
              Lock_request.make ~txn:2 ~deadline:(Unix.gettimeofday () +. 0.05) Mode.X r2;
            ]
        with
        | () ->
            ignore (Sharded.release_all t ~txn:2);
            `Granted
        | exception Txn_effect.Lock_timeout ->
            (* the executor's abort path: release the partial grants *)
            ignore (Sharded.release_all t ~txn:2);
            `Timed_out)
  in
  let sweeps = ref 0 in
  while Sharded.timeout_count t = 0 && !sweeps < 5000 do
    incr sweeps;
    Unix.sleepf 0.002;
    ignore (Sharded.expire t ~now:(Unix.gettimeofday ()))
  done;
  (match Domain.join d with
  | `Timed_out -> ()
  | `Granted -> Alcotest.fail "expected the batch to time out");
  ignore (Sharded.release_all t ~txn:1);
  Alcotest.(check int) "no residue locks" 0 (Sharded.lock_count t);
  Alcotest.(check int) "no residue waiters" 0 (Sharded.waiter_count t);
  Alcotest.(check int) "one timeout recorded" 1 (Sharded.timeout_count t)

(* --- lock-free fast path (DESIGN.md §17) -------------------------------- *)

(* Compatible installers racing on one resource: both CAS into the same fast
   slot, in whichever order the race lands, and both holds must be present
   afterwards.  Repeated so both interleavings (and the CAS-failure retry)
   actually occur. *)
let test_fast_racing_compatible_installs () =
  let t = Sharded.create ~shards:1 Mode.no_semantics in
  let r = Resource_id.Tuple ("t", [ Value.Int 1 ]) in
  for _ = 1 to 400 do
    ignore
      (Domain_pool.run ~domains:2 (fun i ->
           Sharded.acquire_req t (Lock_request.make ~txn:(i + 1) ~step_type:0 Mode.S r)));
    let holders = List.sort compare (List.map (fun (txn, _, _) -> txn) (Sharded.holders t r)) in
    if holders <> [ 1; 2 ] then
      Alcotest.failf "racing compatible installs lost a hold: [%s]"
        (String.concat ";" (List.map string_of_int holders));
    ignore (Sharded.release_all t ~txn:1);
    ignore (Sharded.release_all t ~txn:2)
  done;
  Alcotest.(check int) "no residue" 0 (Sharded.lock_count t);
  Alcotest.(check bool) "fast path actually exercised" true (Sharded.fast_hits t > 0)

(* Conflicting installers racing on one resource: exactly one side's CAS can
   install; the loser must land in the slow path's queue, never as a second
   incompatible hold.  Both submit orders occur across iterations. *)
let test_fast_racing_conflicting_installs () =
  let t = Sharded.create ~shards:1 Mode.no_semantics in
  let r = Resource_id.Tuple ("t", [ Value.Int 1 ]) in
  for _ = 1 to 400 do
    let grants =
      Domain_pool.run ~domains:2 (fun i ->
          match Sharded.submit t (Lock_request.make ~txn:(i + 1) ~step_type:0 Mode.X r) with
          | Lock_table.Granted -> `Granted (i + 1)
          | Lock_table.Queued ticket -> `Queued ticket)
    in
    let granted = List.filter_map (function `Granted t -> Some t | _ -> None) grants in
    let queued = List.filter_map (function `Queued k -> Some k | _ -> None) grants in
    Alcotest.(check int) "exactly one grant" 1 (List.length granted);
    Alcotest.(check int) "the loser queued" 1 (List.length queued);
    List.iter (fun ticket -> ignore (Sharded.cancel t ~ticket)) queued;
    ignore (Sharded.release_all t ~txn:1);
    ignore (Sharded.release_all t ~txn:2)
  done;
  Alcotest.(check int) "no residue locks" 0 (Sharded.lock_count t);
  Alcotest.(check int) "no residue waiters" 0 (Sharded.waiter_count t)

(* Deadline expiry racing fast-path traffic on the same shard: the sweep must
   still find (and time out) the queued waiter while another transaction
   hammers the fast surface, and nothing leaks afterwards. *)
let test_fast_expiry_race () =
  let t = Sharded.create ~shards:1 Mode.no_semantics in
  let r1 = Resource_id.Tuple ("t", [ Value.Int 1 ]) in
  let r2 = Resource_id.Tuple ("t", [ Value.Int 2 ]) in
  (* txn 1's hold lands in a fast slot; txn 2's conflicting wait migrates it
     into the table *)
  Sharded.acquire_req t (Lock_request.make ~txn:1 ~step_type:0 Mode.X r1);
  let d =
    Domain.spawn (fun () ->
        match
          Sharded.acquire_req t
            (Lock_request.make ~txn:2 ~step_type:0
               ~deadline:(Unix.gettimeofday () +. 0.05) Mode.X r1)
        with
        | () ->
            ignore (Sharded.release_all t ~txn:2);
            `Granted
        | exception Txn_effect.Lock_timeout ->
            ignore (Sharded.release_all t ~txn:2);
            `Timed_out)
  in
  let sweeps = ref 0 in
  while Sharded.timeout_count t = 0 && !sweeps < 5000 do
    incr sweeps;
    (* concurrent fast acquire/release traffic on the waiter's own shard *)
    Sharded.acquire_req t (Lock_request.make ~txn:3 ~step_type:0 Mode.S r2);
    ignore (Sharded.release t ~txn:3 Mode.S r2);
    Unix.sleepf 0.002;
    ignore (Sharded.expire t ~now:(Unix.gettimeofday ()))
  done;
  (match Domain.join d with
  | `Timed_out -> ()
  | `Granted -> Alcotest.fail "expected the racing wait to expire");
  Alcotest.(check int) "one timeout" 1 (Sharded.timeout_count t);
  ignore (Sharded.release_all t ~txn:1);
  Alcotest.(check int) "no residue locks" 0 (Sharded.lock_count t);
  Alcotest.(check int) "no residue waiters" 0 (Sharded.waiter_count t)

(* Group commit's durability contract through the executor: arm the
   [wal.flush] batch-boundary crash point and commit transactions until it
   fires.  Every commit that was acknowledged before the crash must have its
   Commit record in the flushed log; the transaction whose sync crashed lost
   its whole batch — including its own, never-acknowledged commit. *)
let test_group_commit_crash_loses_no_acked_commit () =
  let module Executor = Acc_txn.Executor in
  let module Fault = Acc_fault.Fault in
  let module Log = Acc_wal.Log in
  let module Record = Acc_wal.Record in
  let db = Acc_relation.Database.create () in
  let tbl =
    Acc_relation.Database.create_table db
      (Acc_relation.Schema.make ~name:"t" ~key:[ "id" ]
         [ Acc_relation.Schema.col "id" Value.Tint; Acc_relation.Schema.col "v" Value.Tint ])
  in
  Acc_relation.Table.insert tbl [| Value.Int 1; Value.Int 0 |];
  let locks = Sharded.create ~shards:1 Mode.no_semantics in
  let eng =
    Executor.create_with
      ~wal_policy:(Log.Buffered { cap = 64; group = true })
      ~service:(Sharded.service locks) db
  in
  Fun.protect ~finally:Fault.disarm (fun () ->
      (* each commit syncs one non-empty batch, so hit 3 crashes txn 3's sync *)
      Fault.arm ~point:"wal.flush" ~hit:3;
      let acked = ref [] in
      (try
         for i = 1 to 10 do
           let ctx = Executor.begin_txn eng ~txn_type:"bump" ~multi_step:false in
           ignore
             (Executor.update ctx "t" [ Value.Int 1 ] (fun row ->
                  row.(1) <- Value.Int (Value.as_int row.(1) + 1);
                  row));
           Executor.commit ctx;
           acked := i :: !acked
         done;
         Alcotest.fail "armed crash point never fired"
       with Fault.Crash _ -> ());
      Alcotest.(check (list int)) "two commits acked before the crash" [ 2; 1 ] !acked;
      (* executor txn ids are internal, so compare counts: one durable Commit
         record per acked commit, and none from the crashed batch *)
      let durable_commits =
        List.length
          (List.filter
             (function Record.Commit _ -> true | _ -> false)
             (Log.to_list (Executor.log eng)))
      in
      Alcotest.(check int) "durable commits = acked commits, crashed batch lost whole"
        (List.length !acked) durable_commits)

(* --- real-domain blocking ---------------------------------------------- *)

let res_k = Resource_id.Tuple ("t", [ Value.Int 1 ])

let test_blocking_handoff () =
  let t = Sharded.create ~shards:4 Mode.no_semantics in
  Sharded.acquire_req t (Lock_request.make ~txn:1 ~step_type:0 Mode.X res_k);
  let acquired = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Sharded.acquire_req t (Lock_request.make ~txn:2 ~step_type:0 Mode.X res_k);
        Atomic.set acquired true;
        ignore (Sharded.release_all t ~txn:2))
  in
  (* give the waiter time to block, then verify it actually did *)
  Unix.sleepf 0.05;
  Alcotest.(check bool) "waiter blocked" false (Atomic.get acquired);
  Alcotest.(check int) "one waiter" 1 (Sharded.waiter_count t);
  ignore (Sharded.release_all t ~txn:1);
  Domain.join d;
  Alcotest.(check bool) "waiter ran after release" true (Atomic.get acquired);
  Alcotest.(check int) "no leaked locks" 0 (Sharded.lock_count t);
  Alcotest.(check int) "no leaked waiters" 0 (Sharded.waiter_count t)

(* Two domains close an X/X cycle across two resources; the detector sweep
   must break it by victimizing exactly one side, and the survivor must then
   complete. *)
let test_deadlock_kill () =
  let t = Sharded.create ~shards:4 Mode.no_semantics in
  let a = Resource_id.Tuple ("t", [ Value.Int 1 ])
  and b = Resource_id.Tuple ("u", [ Value.Int 1 ]) in
  let holding = Atomic.make 0 in
  let worker (txn, first, second) =
    Sharded.acquire_req t (Lock_request.make ~txn ~step_type:0 Mode.X first);
    Atomic.incr holding;
    (* wait for the other side to hold its first lock before crossing *)
    while Atomic.get holding < 2 do
      Domain.cpu_relax ()
    done;
    match
      Sharded.acquire_req t (Lock_request.make ~txn ~step_type:0 Mode.X second)
    with
    | () ->
        ignore (Sharded.release_all t ~txn);
        `Done
    | exception Txn_effect.Deadlock_victim ->
        ignore (Sharded.release_all t ~txn);
        `Victim
  in
  let killer =
    Domain.spawn (fun () ->
        (* sweep until the cycle is visible and broken (bounded) *)
        let victims = ref 0 in
        let attempts = ref 0 in
        while !victims = 0 && !attempts < 2000 do
          incr attempts;
          Unix.sleepf 0.002;
          victims := !victims + Detector.sweep (Sharded.service t)
        done;
        !victims)
  in
  let outcomes = Domain_pool.run ~domains:2 (fun i ->
      worker (if i = 0 then (1, a, b) else (2, b, a))) in
  let victims = Domain.join killer in
  Alcotest.(check int) "one wait victimized" 1 victims;
  Alcotest.(check int) "exactly one Victim outcome" 1
    (List.length (List.filter (fun o -> o = `Victim) outcomes));
  Alcotest.(check int) "the other side completed" 1
    (List.length (List.filter (fun o -> o = `Done) outcomes));
  Alcotest.(check int) "no leaked locks" 0 (Sharded.lock_count t);
  Alcotest.(check int) "no leaked waiters" 0 (Sharded.waiter_count t)

(* §3.4: a compensating waiter is never the victim — the transactions
   delaying it are. *)
let test_victim_policy_spares_compensation () =
  let t = Sharded.create ~shards:4 Mode.no_semantics in
  let a = Resource_id.Tuple ("t", [ Value.Int 1 ])
  and b = Resource_id.Tuple ("u", [ Value.Int 1 ]) in
  (* txn 1 (compensating) holds a, waits for b; txn 2 holds b, waits for a *)
  Sharded.acquire_req t (Lock_request.make ~txn:1 ~step_type:0 Mode.X a);
  Sharded.acquire_req t (Lock_request.make ~txn:2 ~step_type:0 Mode.X b);
  ignore (Sharded.submit t (Lock_request.make ~txn:1 ~step_type:0 ~compensating:true Mode.X b));
  ignore (Sharded.submit t (Lock_request.make ~txn:2 ~step_type:0 Mode.X a));
  ignore (Detector.sweep (Sharded.service t));
  (* txn 1's wait must survive; txn 2's must have been cancelled *)
  Alcotest.(check int) "compensating wait survives" 1
    (List.length (Sharded.outstanding_tickets t ~txn:1));
  Alcotest.(check int) "non-compensating wait killed" 0
    (List.length (Sharded.outstanding_tickets t ~txn:2))

(* --- lock-wait deadlines under real domains (DESIGN.md §13) ------------- *)

(* A real two-domain deadlock where one side carries a wait deadline: the
   expiry sweep (the watchdog's job, driven manually here) must break the
   cycle by timing that side out, and the subsequent detector pass and kill
   must find nothing left — timeout before detection never double-aborts or
   leaks a queue entry. *)
let test_timeout_breaks_cycle () =
  let t = Sharded.create ~shards:4 Mode.no_semantics in
  let a = Resource_id.Tuple ("t", [ Value.Int 1 ])
  and b = Resource_id.Tuple ("u", [ Value.Int 1 ]) in
  Sharded.acquire_req t (Lock_request.make ~txn:1 ~step_type:0 Mode.X a);
  let d =
    Domain.spawn (fun () ->
        Sharded.acquire_req t (Lock_request.make ~txn:2 ~step_type:0 Mode.X b);
        match
          Sharded.acquire_req t
            (Lock_request.make ~txn:2 ~step_type:0
               ~deadline:(Unix.gettimeofday () +. 0.05) Mode.X a)
        with
        | () ->
            ignore (Sharded.release_all t ~txn:2);
            `Granted
        | exception Txn_effect.Lock_timeout ->
            (* the executor's abort path: release everything *)
            ignore (Sharded.release_all t ~txn:2);
            `Timed_out)
  in
  (* wait until txn 2 is queued on a, then close the cycle from this side
     with a synchronous (non-blocking) request *)
  let spins = ref 0 in
  while Sharded.waiter_count t = 0 && !spins < 5000 do
    incr spins;
    Unix.sleepf 0.001
  done;
  let g = Sharded.submit t (Lock_request.make ~txn:1 ~step_type:0 Mode.X b) in
  let sweeps = ref 0 in
  while Sharded.timeout_count t = 0 && !sweeps < 5000 do
    incr sweeps;
    Unix.sleepf 0.002;
    ignore (Sharded.expire t ~now:(Unix.gettimeofday ()))
  done;
  (match Domain.join d with
  | `Timed_out -> ()
  | `Granted -> Alcotest.fail "deadlocked wait was granted");
  Alcotest.(check int) "exactly one timeout" 1 (Sharded.timeout_count t);
  (* the cycle is already broken: detection and victimization find nothing *)
  Alcotest.(check int) "detector sweep finds no cycle" 0 (Detector.sweep (Sharded.service t));
  Alcotest.(check int) "kill after timeout is a no-op" 0 (Sharded.kill t ~txn:2);
  (* txn 2's release promoted the survivor's queued request *)
  (match g with
  | Lock_table.Granted -> ()
  | Lock_table.Queued ticket ->
      Alcotest.(check bool) "survivor promoted" false (Sharded.outstanding t ~ticket));
  ignore (Sharded.release_all t ~txn:1);
  Alcotest.(check int) "no leaked locks" 0 (Sharded.lock_count t);
  Alcotest.(check int) "no leaked waiters" 0 (Sharded.waiter_count t)

(* Same fairness bound as test_lock's property, through the sharded table's
   synchronous surface: fresh transactions only, so every grant avenue is the
   gated one. *)
let shard_res = [| res_k; Resource_id.Tuple ("u", [ Value.Int 1 ]); Resource_id.Table "t" |]

let prop_sharded_bounded_bypass =
  QCheck2.Test.make ~name:"sharded table: no waiter overtaken more than max_bypass times"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 120) (pair (int_range 0 7) (int_range 0 5)))
    (fun ops ->
      let max_bypass = 4 in
      let t = Sharded.create ~shards:4 ~max_bypass Mode.no_semantics in
      let next = ref 0 in
      let active = ref [] in
      let ok = ref true in
      List.iter
        (fun (k, r) ->
          (match k with
          | 0 | 1 | 2 | 3 ->
              incr next;
              active := !next :: !active;
              let mode = [| Mode.S; Mode.X; Mode.IS; Mode.IX |].(k) in
              let res = if k >= 2 then shard_res.(2) else shard_res.(r mod 2) in
              ignore (Sharded.submit t (Lock_request.make ~txn:!next ~step_type:0 mode res))
          | 4 | 5 -> (
              match !active with
              | [] -> ()
              | l ->
                  let txn = List.nth l (r mod List.length l) in
                  ignore (Sharded.release_all t ~txn);
                  active := List.filter (fun x -> x <> txn) l)
          | _ -> (
              match !active with
              | [] -> ()
              | l ->
                  let txn = List.nth l (r mod List.length l) in
                  List.iter
                    (fun ticket -> ignore (Sharded.cancel t ~ticket))
                    (Sharded.outstanding_tickets t ~txn)));
          if Sharded.max_bypassed t > max_bypass then ok := false)
        ops;
      !ok)

(* --- admission control --------------------------------------------------- *)

module Engine = Acc_parallel.Engine

let test_admission_gate () =
  let db = Acc_relation.Database.create () in
  let e = Engine.create ~shards:2 ~max_inflight:2 ~sem:Mode.no_semantics db in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown e)
    (fun () ->
      match (Engine.try_admit e, Engine.try_admit e) with
      | Engine.Admitted, Engine.Admitted ->
          (match Engine.try_admit e with
          | Engine.Shed "capacity" -> ()
          | Engine.Shed r -> Alcotest.fail ("unexpected shed reason: " ^ r)
          | Engine.Admitted -> Alcotest.fail "admitted past the cap");
          Alcotest.(check int) "shed counted" 1 (Engine.shed_count e);
          Alcotest.(check int) "inflight at cap" 2 (Engine.inflight e);
          Engine.finish e;
          (match Engine.try_admit e with
          | Engine.Admitted -> ()
          | Engine.Shed _ -> Alcotest.fail "returned token not re-admitted");
          Engine.finish e;
          Engine.finish e;
          Alcotest.(check int) "inflight drains to zero" 0 (Engine.inflight e)
      | _ -> Alcotest.fail "initial admissions refused")

(* --- metrics ------------------------------------------------------------ *)

let test_metrics_multicore () =
  let c = Metrics.Counter.create () in
  let lat = Metrics.Latency.create () in
  let per_domain = 25_000 in
  ignore
    (Domain_pool.run ~domains:4 (fun i ->
         let slot = Metrics.Latency.slot lat in
         for j = 1 to per_domain do
           Metrics.Counter.incr c;
           if j <= 100 then Metrics.Latency.record slot (float_of_int (i + 1))
         done));
  Alcotest.(check int) "atomic counter exact under contention" (4 * per_domain)
    (Metrics.Counter.get c);
  Alcotest.(check int) "all latency samples merged" 400 (Metrics.Latency.count lat);
  let merged = Metrics.Latency.merged lat in
  Alcotest.(check (float 1e-9)) "merged mean" 2.5 (Tally.mean merged)

(* --- multi-domain TPC-C stress ------------------------------------------ *)

module P = Acc_tpcc.Parallel_driver

let stress_cfg system txns =
  {
    P.default_config with
    P.system;
    domains = 4;
    duration = 60.0 (* safety net; txns_per_domain bounds the run *);
    txns_per_domain = Some txns;
    mix = P.New_order_payment;
    seed = 11;
  }

let test_stress_acc () =
  let r = P.run (stress_cfg P.Acc 250) in
  Alcotest.(check (list string)) "no consistency violations" [] r.P.violations;
  Alcotest.(check int) "no leaked locks" 0 r.P.leaked_locks;
  Alcotest.(check int) "no leaked waiters" 0 r.P.leaked_waiters;
  Alcotest.(check bool) "committed transactions" true (r.P.committed > 900);
  Alcotest.(check int) "four domains reported" 4 (List.length r.P.per_domain_committed)

let test_stress_2pl () =
  let r = P.run (stress_cfg P.Baseline 100) in
  Alcotest.(check (list string)) "no consistency violations" [] r.P.violations;
  Alcotest.(check int) "no leaked locks" 0 r.P.leaked_locks;
  Alcotest.(check int) "no leaked waiters" 0 r.P.leaked_waiters;
  Alcotest.(check bool) "committed transactions" true (r.P.committed > 300)

(* Saturation: 4 domains against an admission cap of 1, a district hotspot,
   and a 20ms lock-wait deadline, in duration mode (so the deadline-drain
   path runs too).  The robustness contract: the run completes (no hung
   worker), the gate actually shed, and the drain leaves a consistent
   database with zero leaked locks or wait-queue entries. *)
let test_overload_admission () =
  let r =
    P.run
      {
        P.default_config with
        P.system = P.Acc;
        domains = 4;
        duration = 1.0;
        mix = P.New_order_payment;
        skewed_district = true;
        seed = 23;
        compute_between = 0.0005;
        lock_deadline = Some 0.02;
        max_inflight = Some 1;
        shed_watermark = Some 500.;
      }
  in
  Alcotest.(check (list string)) "consistent after drain" [] r.P.violations;
  Alcotest.(check int) "no leaked locks" 0 r.P.leaked_locks;
  Alcotest.(check int) "no leaked waiters" 0 r.P.leaked_waiters;
  Alcotest.(check bool) "made progress" true (r.P.committed > 0);
  Alcotest.(check bool) "gate shed under 4x overload" true (r.P.shed > 0)

let suites =
  [
    ( "parallel.lock",
      [
        Alcotest.test_case "blocking handoff across domains" `Quick test_blocking_handoff;
        Alcotest.test_case "detector breaks a cross-domain deadlock" `Quick
          test_deadlock_kill;
        Alcotest.test_case "victim policy spares compensating waiter" `Quick
          test_victim_policy_spares_compensation;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_parity;
        QCheck_alcotest.to_alcotest
          ~rand:(Random.State.make [| 0xACC |])
          prop_batch_parity;
        Alcotest.test_case "batch blocks mid-footprint, completes on handoff" `Quick
          test_batch_blocks_then_completes;
        Alcotest.test_case "deadline expiry mid-batch reclaims cleanly" `Quick
          test_batch_deadline_expiry;
      ] );
    ( "parallel.fastpath",
      [
        Alcotest.test_case "racing compatible installs both land" `Quick
          test_fast_racing_compatible_installs;
        Alcotest.test_case "racing conflicting installs: one grant, one queued" `Quick
          test_fast_racing_conflicting_installs;
        Alcotest.test_case "deadline expiry races fast-path traffic" `Quick
          test_fast_expiry_race;
        Alcotest.test_case "group-commit crash loses no acked commit" `Quick
          test_group_commit_crash_loses_no_acked_commit;
      ] );
    ( "parallel.overload",
      [
        Alcotest.test_case "timeout breaks a cycle, detector finds nothing" `Quick
          test_timeout_breaks_cycle;
        Alcotest.test_case "admission gate caps in-flight and sheds" `Quick
          test_admission_gate;
        QCheck_alcotest.to_alcotest
          ~rand:(Random.State.make [| 0xACC |])
          prop_sharded_bounded_bypass;
        Alcotest.test_case "4 domains vs cap 1: sheds, drains, stays consistent" `Slow
          test_overload_admission;
      ] );
    ( "parallel.metrics",
      [ Alcotest.test_case "counters and tallies across 4 domains" `Quick test_metrics_multicore ] );
    ( "parallel.tpcc",
      [
        Alcotest.test_case "4 domains x 250 acc txns, consistent, no leaks" `Slow
          test_stress_acc;
        Alcotest.test_case "4 domains x 100 2pl txns, consistent, no leaks" `Slow
          test_stress_2pl;
      ] );
  ]
