(* Tests for acc.dist: partitioning, the 2PC coordinator, the remote-payment
   and remote-stock paths (single-node and partitioned), the partitioned
   crash harness (no-lost-decision oracle), and the partitioned driver's
   cross-partition fraction and merged-database consistency. *)

open Acc_tpcc
module Dist = Acc_dist
module Partition = Acc_dist.Partition
module Coordinator = Acc_dist.Coordinator
module Transport = Acc_dist.Transport
module Participant = Acc_dist.Participant
module Dist_driver = Acc_dist.Dist_driver
module Dist_harness = Acc_dist.Dist_harness
module Fault = Acc_fault.Fault
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Database = Acc_relation.Database
module Table = Acc_relation.Table
open Acc_relation.Value

let small_params =
  {
    Params.default with
    Params.warehouses = 4;
    districts_per_warehouse = 4;
    customers_per_district = 20;
    items = 200;
    initial_orders_per_district = 3;
  }

(* --- partitioning --------------------------------------------------------- *)

let test_ranges () =
  Alcotest.(check (list (pair int int)))
    "4 over 2" [ (1, 2); (3, 4) ]
    (Partition.ranges ~warehouses:4 ~partitions:2);
  Alcotest.(check (list (pair int int)))
    "5 over 2: first takes the extra" [ (1, 3); (4, 5) ]
    (Partition.ranges ~warehouses:5 ~partitions:2);
  Alcotest.(check (list (pair int int)))
    "1 over 1" [ (1, 1) ]
    (Partition.ranges ~warehouses:1 ~partitions:1);
  Alcotest.(check bool) "more partitions than warehouses rejected" true
    (try
       ignore (Partition.ranges ~warehouses:1 ~partitions:2);
       false
     with Invalid_argument _ -> true)

let mk_parts ~seed ~partitions params =
  let ranges = Partition.ranges ~warehouses:params.Params.warehouses ~partitions in
  Array.of_list
    (List.mapi
       (fun id (lo, hi) ->
         let db = Load.populate ~only:(fun w -> lo <= w && w <= hi) ~seed params in
         Partition.make ~id ~lo ~hi (Executor.create ~sem:Dist_txns.semantics db))
       ranges)

(* partition loads are exact disjoint projections: their union is the
   unpartitioned load *)
let test_load_projection () =
  let seed = 11 in
  let parts = mk_parts ~seed ~partitions:3 small_params in
  let merged = Dist_driver.merged_db (Array.to_list parts) in
  let full = Load.populate ~seed small_params in
  Alcotest.(check bool) "merged partitions = unpartitioned load" true
    (Database.equal merged full);
  Alcotest.(check (list string)) "merged load is consistent" [] (Consistency.check merged)

(* --- remote payment, single-node ------------------------------------------ *)

(* the 15% remote-customer payment on one engine: money lands in the paying
   warehouse's ytd (C1/C8 group history by h_w_id), the customer side at the
   customer's home warehouse *)
let test_remote_payment_single_node () =
  let seed = 5 in
  let db = Load.populate ~seed small_params in
  let eng = Executor.create ~sem:Txns.semantics db in
  let env = Txns.default_env ~seed small_params in
  let input =
    Txns.Payment
      {
        Txns.p_w = 1; p_d = 2; p_c_w = 3; p_c_d = 4;
        p_customer = Txns.By_id 7; p_amount = 123.25;
      }
  in
  let outcome = ref None in
  Schedule.run eng [ (fun () -> outcome := Some (Txns.run_acc eng env input)) ];
  (match !outcome with
  | Some Acc_core.Runtime.Committed -> ()
  | _ -> Alcotest.fail "remote payment did not commit");
  Alcotest.(check (list string)) "C1/C8 hold across warehouses" []
    (Consistency.check db);
  let site_rows =
    Table.scan (Database.table db "history")
      ~where:
        (Acc_relation.Predicate.conj
           [
             Acc_relation.Predicate.Eq ("h_c_w_id", Int 3);
             Acc_relation.Predicate.Eq ("h_w_id", Int 1);
           ])
  in
  Alcotest.(check int) "history row: customer home 3, payment site 1" 1
    (List.length site_rows)

(* --- cross-partition payment through the coordinator ---------------------- *)

let cross_payment =
  {
    Txns.p_w = 1; p_d = 1; p_c_w = 4; p_c_d = 2;
    p_customer = Txns.By_id 3; p_amount = 77.5;
  }

let run_cross_input coord parts env input =
  let part_of w = Partition.id (Coordinator.partition_of coord w) in
  let branches =
    List.map (fun (pid, inst) -> (parts.(pid), inst)) (Dist_txns.branches env ~part_of input)
  in
  let home = Partition.engine (fst (List.hd branches)) in
  let outcome = ref Coordinator.Aborted in
  Schedule.run home [ (fun () -> outcome := Coordinator.run_cross coord branches) ];
  !outcome

let test_cross_payment_commit () =
  let seed = 3 in
  let parts = mk_parts ~seed ~partitions:2 small_params in
  let coord = Coordinator.create parts in
  let env = Txns.default_env ~seed small_params in
  let outcome = run_cross_input coord parts env (Txns.Payment cross_payment) in
  Alcotest.(check bool) "committed" true (outcome = Coordinator.Committed);
  Alcotest.(check int) "decision logged" 1
    (Coordinator.Decision_log.size (Coordinator.decision_log coord));
  let merged = Dist_driver.merged_db (Array.to_list parts) in
  Alcotest.(check (list string)) "C1/C8 hold across partitions" []
    (Consistency.check merged);
  (* the history row lives on the customer's partition, stamped with the
     paying site *)
  let rcust_db = Executor.db (Partition.engine (Coordinator.partition_of coord 4)) in
  let rows =
    Table.scan (Database.table rcust_db "history")
      ~where:(Acc_relation.Predicate.Eq ("h_w_id", Int 1))
  in
  Alcotest.(check int) "history on the customer's partition names site w1" 1
    (List.length rows)

(* a branch failure after the home branch prepared: the coordinator logs
   Abort and the prepared branch compensates — both ytds restored *)
let test_cross_payment_abort_compensates () =
  let seed = 3 in
  let parts = mk_parts ~seed ~partitions:2 small_params in
  let coord = Coordinator.create parts in
  let env = Txns.default_env ~seed small_params in
  let home_db = Executor.db (Partition.engine parts.(0)) in
  let w_ytd_before =
    match Table.scan (Database.table home_db "warehouse") with
    | row :: _ -> number row.(3)
    | [] -> Alcotest.fail "no warehouse row"
  in
  let input =
    Txns.Payment { cross_payment with Txns.p_customer = Txns.By_last_name "NOSUCHNAME" }
  in
  let outcome = run_cross_input coord parts env input in
  Alcotest.(check bool) "aborted" true (outcome = Coordinator.Aborted);
  let w_ytd_after =
    match Table.scan (Database.table home_db "warehouse") with
    | row :: _ -> number row.(3)
    | [] -> Alcotest.fail "no warehouse row"
  in
  Alcotest.(check (float 1e-9)) "home w_ytd restored" w_ytd_before w_ytd_after;
  Alcotest.(check (list string)) "merged state consistent" []
    (Consistency.check (Dist_driver.merged_db (Array.to_list parts)))

(* a cross-partition new_order spreads stock draws over partitions; C12
   groups by the supplying warehouse of the merged database *)
let test_cross_new_order () =
  let seed = 9 in
  let parts = mk_parts ~seed ~partitions:2 small_params in
  let coord = Coordinator.create parts in
  let env = Txns.default_env ~seed small_params in
  let input =
    Txns.New_order
      {
        Txns.no_w = 1; no_d = 1; no_c = 2;
        (* two local lines, one remote line supplied from w3 (partition 1) *)
        no_items = [ (5, 3, 1); (6, 2, 3); (7, 1, 1) ];
        no_fail_last = false;
      }
  in
  let outcome = run_cross_input coord parts env input in
  Alcotest.(check bool) "committed" true (outcome = Coordinator.Committed);
  let merged = Dist_driver.merged_db (Array.to_list parts) in
  Alcotest.(check (list string)) "C12 holds across partitions" []
    (Consistency.check merged);
  (* the remote line's quantity was drawn from w3's stock on partition 1 *)
  let p1_db = Executor.db (Partition.engine parts.(1)) in
  let stock_row =
    match
      Table.scan (Database.table p1_db "stock")
        ~where:
          (Acc_relation.Predicate.conj
             [
               Acc_relation.Predicate.Eq ("s_w_id", Int 3);
               Acc_relation.Predicate.Eq ("s_i_id", Int 6);
             ])
    with
    | [ row ] -> row
    | _ -> Alcotest.fail "remote stock row missing"
  in
  Alcotest.(check int) "remote s_ytd counts the draw" 2 (as_int stock_row.(3))

(* --- the partitioned driver ----------------------------------------------- *)

let test_driver_4_partitions () =
  let cfg =
    {
      Dist_driver.default_config with
      Dist_driver.seed = 21;
      domains = 2;
      partitions = 4;
      txns_per_domain = Some 150;
      params = small_params;
    }
  in
  let r = Dist_driver.run cfg in
  Alcotest.(check (list string)) "merged database consistent" []
    r.Dist_driver.violations;
  Alcotest.(check bool) "committed work" true (r.Dist_driver.committed > 100);
  Alcotest.(check bool) "cross-partition commits happened" true
    (r.Dist_driver.cross_committed > 0);
  (* acceptance floor: the TPC-C mix at 4 warehouses yields >= 10%
     cross-partition transactions (15% remote-customer payments + ~1%/line
     remote stock) *)
  Alcotest.(check bool)
    (Printf.sprintf "cross fraction %.3f >= 0.10" r.Dist_driver.cross_fraction)
    true
    (r.Dist_driver.cross_fraction >= 0.10)

(* --- crash harness --------------------------------------------------------- *)

let harness_config =
  {
    Dist_harness.default_config with
    Dist_harness.params = small_params;
    partitions = 2;
    txns = 24;
    hits_per_point = 2;
  }

let check_results results =
  List.iter
    (fun r ->
      if Dist_harness.failed r then
        Alcotest.failf "%s" (Format.asprintf "%a" Dist_harness.pp_result r))
    results

let test_harness_sweep () =
  let results = Dist_harness.sweep ~config:harness_config () in
  check_results results;
  Alcotest.(check bool) "sweep injected crashes" true
    (List.exists (fun r -> r.Dist_harness.r_crashes > 0) results)

let test_harness_chaos () =
  check_results [ Dist_harness.chaos ~config:{ harness_config with txns = 16 } ~seed:2 () ]

(* crash-equivalence, coordinator edition: whatever the seed, crashing at
   random points leaves every partition decided (no in-doubt, no pending),
   never loses a logged Commit, and the merged database stays consistent —
   all checked inside the harness oracle *)
let prop_no_lost_decision =
  QCheck2.Test.make ~name:"dist: chaos crashes lose no decision" ~count:6
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let config = { harness_config with Dist_harness.txns = 14; chaos_p = 0.02 } in
      let r = Dist_harness.chaos ~config ~seed () in
      if Dist_harness.failed r then
        QCheck2.Test.fail_report (Format.asprintf "%a" Dist_harness.pp_result r)
      else true)

(* --- transport framing ----------------------------------------------------- *)

let all_msgs =
  [
    Transport.Prepare { gid = 7; part = 1 };
    Transport.Vote { gid = 7; ok = true };
    Transport.Decide { gid = 7; commit = false };
    Transport.Ack { gid = 7 };
    Transport.Resolve { gid = 9 };
  ]

let test_framing_roundtrip () =
  List.iteri
    (fun i msg ->
      let f = { Transport.seq = 100 + i; msg } in
      let f' = Transport.decode (Transport.encode f) in
      Alcotest.(check bool) ("round-trips: " ^ Transport.msg_kind msg) true (f' = f))
    all_msgs;
  Alcotest.(check (list string)) "msg_kind is the netfault ops vocabulary"
    [ "prepare"; "vote"; "decide"; "ack"; "resolve" ]
    (List.map Transport.msg_kind all_msgs);
  Alcotest.(check (list int)) "gid_of" [ 7; 7; 7; 7; 9 ] (List.map Transport.gid_of all_msgs)

let test_framing_rejects () =
  let fails s = try ignore (Transport.decode s); false with Failure _ -> true in
  let good = Transport.encode { Transport.seq = 1; msg = Transport.Ack { gid = 1 } } in
  Alcotest.(check bool) "truncated header" true (fails (String.sub good 0 3));
  let foreign = Bytes.of_string good in
  Bytes.set foreign 0 'X';
  Alcotest.(check bool) "foreign magic" true (fails (Bytes.to_string foreign));
  let hdr = Acc_wal.Log.Header.size ~magic:Transport.magic in
  let future =
    Acc_wal.Log.Header.to_string ~magic:Transport.magic ~version:(Transport.version + 1)
    ^ String.sub good hdr (String.length good - hdr)
  in
  Alcotest.(check bool) "future version" true (fails future);
  Alcotest.(check bool) "truncated payload" true
    (fails (String.sub good 0 (String.length good - 2)))

let test_transport_kinds () =
  Alcotest.(check string) "loopback name" "loopback" (Transport.kind_name `Loopback);
  Alcotest.(check string) "pipe name" "pipe" (Transport.kind_name `Pipe);
  Alcotest.(check bool) "loopback parses" true (Transport.kind_of_string "loopback" = `Loopback);
  Alcotest.(check bool) "pipe parses" true (Transport.kind_of_string "pipe" = `Pipe);
  Alcotest.(check bool) "junk rejected" true
    (try ignore (Transport.kind_of_string "carrier-pigeon"); false
     with Invalid_argument _ -> true)

(* --- idempotent participant handlers --------------------------------------- *)

(* the transport may duplicate any frame: a repeated Prepare returns the
   cached vote without re-running the branch; a repeated Decide re-Acks an
   already-applied gid; a Decide for an unknown gid is a harmless no-op *)
let test_participant_idempotent () =
  let seed = 3 in
  let parts = mk_parts ~seed ~partitions:2 small_params in
  let coord = Coordinator.create parts in
  let env = Txns.default_env ~seed small_params in
  let part_of w = Partition.id (Coordinator.partition_of coord w) in
  let remote_inst =
    match Dist_txns.branches env ~part_of (Txns.Payment cross_payment) with
    | [ _home; (1, inst) ] -> inst
    | _ -> Alcotest.fail "expected a home + partition-1 branch split"
  in
  let p = Participant.make parts.(1) in
  Participant.stage p ~gid:1 remote_inst;
  let history_rows () =
    Table.scan
      (Database.table (Executor.db (Partition.engine parts.(1))) "history")
      ~where:(Acc_relation.Predicate.Eq ("h_w_id", Int 1))
    |> List.length
  in
  Schedule.run (Partition.engine parts.(1))
    [
      (fun () ->
        let v1 = Participant.handle p (Transport.Prepare { gid = 1; part = 1 }) in
        Alcotest.(check bool) "prepare votes yes" true
          (v1 = Transport.Vote { gid = 1; ok = true });
        let v2 = Participant.handle p (Transport.Prepare { gid = 1; part = 1 }) in
        Alcotest.(check bool) "duplicate prepare: cached vote" true (v1 = v2);
        Alcotest.(check (list int)) "gid 1 in doubt once prepared" [ 1 ]
          (Participant.in_doubt p);
        Alcotest.(check bool) "unstaged gid votes no" true
          (Participant.handle p (Transport.Prepare { gid = 50; part = 1 })
          = Transport.Vote { gid = 50; ok = false });
        let a1 = Participant.handle p (Transport.Decide { gid = 1; commit = true }) in
        Alcotest.(check bool) "decide acks" true (a1 = Transport.Ack { gid = 1 });
        Alcotest.(check int) "branch applied exactly once" 1 (history_rows ());
        let a2 = Participant.handle p (Transport.Decide { gid = 1; commit = true }) in
        Alcotest.(check bool) "duplicate decide re-acks" true (a2 = Transport.Ack { gid = 1 });
        Alcotest.(check int) "duplicate decide did not re-apply" 1 (history_rows ());
        Alcotest.(check (list int)) "nothing left in doubt" [] (Participant.in_doubt p);
        Alcotest.(check bool) "decide for an unknown gid is a no-op ack" true
          (Participant.handle p (Transport.Decide { gid = 99; commit = false })
          = Transport.Ack { gid = 99 });
        Alcotest.(check bool) "reply kinds rejected" true
          (try ignore (Participant.handle p (Transport.Vote { gid = 1; ok = true })); false
           with Invalid_argument _ -> true);
        Alcotest.(check int) "max gid tracks every role" 99 (Participant.max_gid p));
    ]

(* the fault layer can deliver a Prepare *after* its Decide: a delay/reorder
   hold on the last Prepare retry is released by the Decide send.  The
   participant must answer the late Prepare from the recorded decision and
   never run the branch — re-running it would acquire locks into a prepared
   state no subsequent Decide or settle releases (the applied mark would
   make apply a no-op forever) *)
let test_participant_late_prepare_after_decide () =
  let seed = 3 in
  let parts = mk_parts ~seed ~partitions:2 small_params in
  let coord = Coordinator.create parts in
  let env = Txns.default_env ~seed small_params in
  let part_of w = Partition.id (Coordinator.partition_of coord w) in
  let remote_inst gid =
    match Dist_txns.branches env ~part_of (Txns.Payment cross_payment) with
    | [ _home; (1, inst) ] -> inst
    | _ -> Alcotest.fail (Printf.sprintf "gid %d: expected a partition-1 branch" gid)
  in
  let p = Participant.make parts.(1) in
  let history_rows () =
    Table.scan
      (Database.table (Executor.db (Partition.engine parts.(1))) "history")
      ~where:(Acc_relation.Predicate.Eq ("h_w_id", Int 1))
    |> List.length
  in
  Schedule.run (Partition.engine parts.(1))
    [
      (fun () ->
        (* gid 1: the abort decision lands before the (held-back) Prepare *)
        Participant.stage p ~gid:1 (remote_inst 1);
        Alcotest.(check bool) "decide-first acks" true
          (Participant.handle p (Transport.Decide { gid = 1; commit = false })
          = Transport.Ack { gid = 1 });
        Alcotest.(check bool) "late prepare echoes the abort decision" true
          (Participant.handle p (Transport.Prepare { gid = 1; part = 1 })
          = Transport.Vote { gid = 1; ok = false });
        Alcotest.(check int) "branch never ran" 0 (history_rows ());
        Alcotest.(check (list int)) "nothing in doubt" [] (Participant.in_doubt p);
        Alcotest.(check bool) "retried decide still a duplicate" true
          (Participant.handle p (Transport.Decide { gid = 1; commit = false })
          = Transport.Ack { gid = 1 });
        (* gid 2: same race, commit decision — the late vote is consistent *)
        Participant.stage p ~gid:2 (remote_inst 2);
        ignore (Participant.handle p (Transport.Decide { gid = 2; commit = true }));
        Alcotest.(check bool) "late prepare echoes the commit decision" true
          (Participant.handle p (Transport.Prepare { gid = 2; part = 1 })
          = Transport.Vote { gid = 2; ok = true });
        Alcotest.(check int) "commit race: branch still never ran" 0 (history_rows ());
        (* gid 3: a fresh fault-free transaction proves no locks were left
           behind by the raced gids *)
        Participant.stage p ~gid:3 (remote_inst 3);
        Alcotest.(check bool) "fresh prepare acquires locks and votes yes" true
          (Participant.handle p (Transport.Prepare { gid = 3; part = 1 })
          = Transport.Vote { gid = 3; ok = true });
        ignore (Participant.handle p (Transport.Decide { gid = 3; commit = true }));
        Alcotest.(check int) "fresh branch applied" 1 (history_rows ());
        Alcotest.(check (list int)) "all settled" [] (Participant.in_doubt p));
    ]

(* --- the durable decision log ---------------------------------------------- *)

let with_temp_log f =
  let path = Filename.temp_file "acc_dec_test" ".log" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_decision_log_durable () =
  with_temp_log @@ fun path ->
  let module L = Coordinator.Decision_log in
  let log = L.open_file path in
  Alcotest.(check bool) "file-backed" true (L.path log = Some path);
  Alcotest.(check int) "fresh log empty" 0 (L.size log);
  L.record log ~gid:5 Coordinator.Commit;
  L.record log ~gid:9 Coordinator.Abort;
  L.record log ~gid:5 Coordinator.Commit;
  (* idempotent re-record *)
  Alcotest.(check int) "re-record is a no-op" 2 (L.size log);
  L.close log;
  let log = L.open_file path in
  Alcotest.(check int) "records survive reopen" 2 (L.size log);
  Alcotest.(check bool) "commit survives" true (L.lookup log ~gid:5 = Some Coordinator.Commit);
  Alcotest.(check bool) "abort survives" true (L.lookup log ~gid:9 = Some Coordinator.Abort);
  Alcotest.(check bool) "absent gid is absent" true (L.lookup log ~gid:7 = None);
  Alcotest.(check int) "watermark" 9 (L.max_gid log);
  L.close log;
  (* a crash mid-append leaves a torn tail: reopen truncates it and the log
     accepts new records at the healed end *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\000\000\000";
  close_out oc;
  let log = L.open_file path in
  Alcotest.(check int) "torn tail truncated away" 2 (L.size log);
  L.record log ~gid:12 Coordinator.Commit;
  L.close log;
  let log = L.open_file path in
  Alcotest.(check int) "append after heal survives" 3 (L.size log);
  Alcotest.(check bool) "healed record readable" true
    (L.lookup log ~gid:12 = Some Coordinator.Commit);
  L.close log;
  (* a crash during the very first header write leaves 0 < size < header:
     the file provably holds no record, so open heals it to an empty log
     instead of failing every subsequent open *)
  Sys.remove path;
  let oc = open_out_bin path in
  output_string oc "ACC";
  close_out oc;
  let log = L.open_file path in
  Alcotest.(check int) "torn header heals to an empty log" 0 (L.size log);
  L.record log ~gid:21 Coordinator.Commit;
  L.close log;
  let log = L.open_file path in
  Alcotest.(check bool) "record survives the healed header" true
    (L.lookup log ~gid:21 = Some Coordinator.Commit);
  L.close log

let test_decision_log_foreign_file () =
  with_temp_log @@ fun path ->
  let oc = open_out_bin path in
  output_string oc "this is no decision log, and longer than any header";
  close_out oc;
  Alcotest.(check bool) "foreign file rejected" true
    (try ignore (Coordinator.Decision_log.open_file path); false with Failure _ -> true)

(* --- coordinator failover: the gid watermark ------------------------------- *)

(* The ISSUE-9 directed case: the coordinator dies at "dist.decide" with gid 2
   prepared on the participants (their WALs carry Prepare records for it) but
   the on-disk decision log stale at gid 1.  The failed-over coordinator must
   presume gid 2 aborted, and must never reissue a colliding gid: its counter
   restarts above every surviving participant's largest seen gid, not just
   above the stale log's watermark. *)
let test_failover_never_reissues_gid () =
  with_temp_log @@ fun path ->
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let seed = 3 in
  let parts = mk_parts ~seed ~partitions:2 small_params in
  let log = Coordinator.Decision_log.open_file path in
  let coord = Coordinator.create ~log parts in
  let remote = Coordinator.Remote.make coord in
  let env = Txns.default_env ~seed small_params in
  let part_of w = Partition.id (Coordinator.partition_of coord w) in
  let run input =
    let branches =
      List.map (fun (pid, inst) -> (parts.(pid), inst)) (Dist_txns.branches env ~part_of input)
    in
    let home = Partition.engine (fst (List.hd branches)) in
    let outcome = ref Coordinator.Aborted in
    Schedule.run home [ (fun () -> outcome := Coordinator.Remote.run_cross remote branches) ];
    !outcome
  in
  (* gid 1 commits and is durable *)
  Alcotest.(check bool) "gid 1 committed" true
    (run (Txns.Payment cross_payment) = Coordinator.Committed);
  (* gid 2: die between the decision and its durability point *)
  Fault.arm ~point:"dist.decide" ~hit:1;
  (match run (Txns.Payment { cross_payment with Txns.p_d = 2; p_amount = 11.0 }) with
  | _ -> Alcotest.fail "expected the coordinator to crash at dist.decide"
  | exception Fault.Crash { point; _ } ->
      Alcotest.(check string) "died at the decision point" "dist.decide" point);
  Fault.disarm ();
  Alcotest.(check bool) "participants hold gid 2 in doubt" true
    (Array.exists
       (fun p -> Participant.in_doubt p = [ 2 ])
       (Coordinator.Remote.participants remote));
  let resolved = Coordinator.Remote.recover remote in
  Alcotest.(check bool) "failover resolved the in-doubt branches" true (resolved >= 1);
  let core = Coordinator.Remote.core remote in
  Alcotest.(check bool) "gid 2 presumed aborted (no log entry)" true
    (Coordinator.decision_of core ~gid:2 = None);
  Array.iter
    (fun p ->
      Alcotest.(check (list int)) "no branch left in doubt" [] (Participant.in_doubt p))
    (Coordinator.Remote.participants remote);
  (* the next transaction must not collide with the stale gid 2 *)
  Alcotest.(check bool) "post-failover txn commits" true
    (run (Txns.Payment { cross_payment with Txns.p_d = 3; p_amount = 12.0 }) = Coordinator.Committed);
  let log' = Coordinator.decision_log core in
  Alcotest.(check int) "new gid issued above the in-doubt watermark" 3
    (Coordinator.Decision_log.max_gid log');
  Alcotest.(check bool) "gid 2 still has no decision" true
    (Coordinator.Decision_log.lookup log' ~gid:2 = None);
  Alcotest.(check (list string)) "merged state consistent after failover" []
    (Consistency.check (Dist_driver.merged_db (Array.to_list parts)));
  Coordinator.Remote.close remote;
  Coordinator.Decision_log.close log'

(* --- crash-point registry once lib/dist is linked -------------------------- *)

let test_dist_registry () =
  ignore Dist_harness.default_config;
  (* link the dist modules *)
  let names = Fault.registered () in
  List.iter
    (fun n -> Alcotest.(check bool) ("registered: " ^ n) true (List.mem n names))
    [ "dist.prepare"; "dist.decide"; "dist.decision.durable"; "dist.apply" ];
  Alcotest.(check (list string)) "registry is stable across reads" names (Fault.registered ());
  ignore (Fault.register "dist.decide");
  Alcotest.(check (list string)) "re-registering a dist point adds nothing" names
    (Fault.registered ())

(* --- loopback / pipe parity ------------------------------------------------ *)

(* same seed, one domain: the socketpair transport must commit exactly the
   same work as loopback — the transport is an implementation detail, not a
   semantics knob *)
let test_transport_parity () =
  let run transport =
    Dist_driver.run
      {
        Dist_driver.default_config with
        Dist_driver.seed = 17;
        domains = 1;
        partitions = 2;
        txns_per_domain = Some 60;
        params = small_params;
        transport;
      }
  in
  let a = run `Loopback and b = run `Pipe in
  Alcotest.(check (list string)) "loopback consistent" [] a.Dist_driver.violations;
  Alcotest.(check (list string)) "pipe consistent" [] b.Dist_driver.violations;
  Alcotest.(check int) "same commits" a.Dist_driver.committed b.Dist_driver.committed;
  Alcotest.(check int) "same cross commits" a.Dist_driver.cross_committed
    b.Dist_driver.cross_committed;
  Alcotest.(check bool) "parity run crossed partitions" true
    (a.Dist_driver.cross_committed > 0)

(* --- dup/reorder Decide equivalence ---------------------------------------- *)

(* fixed cross-partition workload for the fault-equivalence property; every
   input commits fault-free *)
let equiv_inputs =
  [
    Txns.Payment cross_payment;
    Txns.Payment { cross_payment with Txns.p_d = 2; p_c_d = 3; p_amount = 10.5 };
    Txns.Payment
      { cross_payment with Txns.p_w = 4; p_d = 1; p_c_w = 1; p_c_d = 4; p_amount = 9.0 };
    Txns.New_order
      {
        Txns.no_w = 1; no_d = 1; no_c = 2;
        no_items = [ (5, 3, 1); (6, 2, 3); (7, 1, 1) ];
        no_fail_last = false;
      };
    Txns.Payment { cross_payment with Txns.p_d = 4; p_customer = Txns.By_id 5 };
  ]

let run_equiv ~seed faults =
  Txns.reset_history_seq ();
  let parts = mk_parts ~seed ~partitions:2 small_params in
  let coord = Coordinator.create parts in
  let remote = Coordinator.Remote.make ~transport:`Loopback ~faults coord in
  let env = Txns.default_env ~seed small_params in
  let part_of w = Partition.id (Coordinator.partition_of coord w) in
  let outcomes =
    List.map
      (fun input ->
        let branches =
          List.map
            (fun (pid, inst) -> (parts.(pid), inst))
            (Dist_txns.branches env ~part_of input)
        in
        let home = Partition.engine (fst (List.hd branches)) in
        let outcome = ref Coordinator.Aborted in
        Schedule.run home [ (fun () -> outcome := Coordinator.Remote.run_cross remote branches) ];
        !outcome)
      equiv_inputs
  in
  Coordinator.Remote.close remote;
  (outcomes, Dist_driver.merged_db (Array.to_list parts))

(* ISSUE-9 satellite: duplicated and reordered Decide messages — any mix the
   fault layer produces — leave every partition's merged state exactly equal
   to the fault-free run's.  Retries flush held frames and the handlers are
   idempotent, so dup/reorder (which never lose a message for good) must be
   invisible. *)
let prop_dup_reorder_decide_equiv =
  QCheck2.Test.make ~name:"dist: dup/reorder'd Decides = fault-free state" ~count:8
    QCheck2.Gen.(
      quad (int_range 0 1000) (int_range 0 50) (int_range 0 50) (int_range 0 1000))
    (fun (seed, dup_pct, reorder_pct, fault_seed) ->
      let faults =
        {
          Fault.Netfault.none with
          Fault.Netfault.dup = float_of_int dup_pct /. 100.;
          reorder = float_of_int reorder_pct /. 100.;
          seed = fault_seed;
          ops = [ "decide" ];
        }
      in
      let outcomes_ref, db_ref = run_equiv ~seed Fault.Netfault.none in
      let outcomes, db = run_equiv ~seed faults in
      if outcomes <> outcomes_ref then
        QCheck2.Test.fail_report "outcomes diverged under dup/reorder"
      else if not (Database.equal db db_ref) then
        QCheck2.Test.fail_report "merged state diverged under dup/reorder"
      else if Consistency.check db <> [] then
        QCheck2.Test.fail_report "faulted run inconsistent"
      else true)

(* --- the chaos matrix (quick slice) ---------------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_harness_matrix_quick () =
  let config = { harness_config with Dist_harness.txns = 16; hits_per_point = 1 } in
  let results = Dist_harness.sweep_matrix ~config ~quick:true () in
  check_results results;
  Alcotest.(check bool) "matrix injected crashes" true
    (List.exists (fun r -> r.Dist_harness.r_crashes > 0) results);
  Alcotest.(check bool) "matrix includes coordinator-kill cells" true
    (List.exists
       (fun r -> r.Dist_harness.r_crashes > 0 && contains ~sub:"[kill]" r.Dist_harness.r_label)
       results)

let suites =
  [
    ( "dist.partition",
      [
        Alcotest.test_case "warehouse ranges" `Quick test_ranges;
        Alcotest.test_case "partition loads are exact projections" `Quick
          test_load_projection;
      ] );
    ( "dist.transport",
      [
        Alcotest.test_case "frame round-trip" `Quick test_framing_roundtrip;
        Alcotest.test_case "foreign/short/future frames rejected" `Quick test_framing_rejects;
        Alcotest.test_case "transport kinds" `Quick test_transport_kinds;
        Alcotest.test_case "participant handlers idempotent" `Quick
          test_participant_idempotent;
        Alcotest.test_case "late prepare after decide answers from the decision"
          `Quick test_participant_late_prepare_after_decide;
        Alcotest.test_case "loopback/pipe parity" `Slow test_transport_parity;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xD15F |])
          prop_dup_reorder_decide_equiv;
      ] );
    ( "dist.decision_log",
      [
        Alcotest.test_case "durable, idempotent, heals a torn tail" `Quick
          test_decision_log_durable;
        Alcotest.test_case "foreign file rejected" `Quick test_decision_log_foreign_file;
      ] );
    ( "dist.failover",
      [
        Alcotest.test_case "failover never reissues an in-doubt gid" `Quick
          test_failover_never_reissues_gid;
        Alcotest.test_case "dist crash points registered" `Quick test_dist_registry;
      ] );
    ( "dist.payment",
      [
        Alcotest.test_case "remote payment, single node" `Quick
          test_remote_payment_single_node;
        Alcotest.test_case "cross-partition payment commits" `Quick
          test_cross_payment_commit;
        Alcotest.test_case "cross-partition abort compensates" `Quick
          test_cross_payment_abort_compensates;
        Alcotest.test_case "cross-partition new_order" `Quick test_cross_new_order;
      ] );
    ( "dist.driver",
      [ Alcotest.test_case "4 partitions: consistent, >=10%% cross" `Slow test_driver_4_partitions ] );
    ( "dist.harness",
      [
        Alcotest.test_case "sweep survives every dist point" `Slow test_harness_sweep;
        Alcotest.test_case "chaos seed survives" `Slow test_harness_chaos;
        Alcotest.test_case "chaos matrix quick slice survives" `Slow
          test_harness_matrix_quick;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xD157 |])
          prop_no_lost_decision;
      ] );
  ]
