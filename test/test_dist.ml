(* Tests for acc.dist: partitioning, the 2PC coordinator, the remote-payment
   and remote-stock paths (single-node and partitioned), the partitioned
   crash harness (no-lost-decision oracle), and the partitioned driver's
   cross-partition fraction and merged-database consistency. *)

open Acc_tpcc
module Dist = Acc_dist
module Partition = Acc_dist.Partition
module Coordinator = Acc_dist.Coordinator
module Dist_driver = Acc_dist.Dist_driver
module Dist_harness = Acc_dist.Dist_harness
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Database = Acc_relation.Database
module Table = Acc_relation.Table
open Acc_relation.Value

let small_params =
  {
    Params.default with
    Params.warehouses = 4;
    districts_per_warehouse = 4;
    customers_per_district = 20;
    items = 200;
    initial_orders_per_district = 3;
  }

(* --- partitioning --------------------------------------------------------- *)

let test_ranges () =
  Alcotest.(check (list (pair int int)))
    "4 over 2" [ (1, 2); (3, 4) ]
    (Partition.ranges ~warehouses:4 ~partitions:2);
  Alcotest.(check (list (pair int int)))
    "5 over 2: first takes the extra" [ (1, 3); (4, 5) ]
    (Partition.ranges ~warehouses:5 ~partitions:2);
  Alcotest.(check (list (pair int int)))
    "1 over 1" [ (1, 1) ]
    (Partition.ranges ~warehouses:1 ~partitions:1);
  Alcotest.(check bool) "more partitions than warehouses rejected" true
    (try
       ignore (Partition.ranges ~warehouses:1 ~partitions:2);
       false
     with Invalid_argument _ -> true)

let mk_parts ~seed ~partitions params =
  let ranges = Partition.ranges ~warehouses:params.Params.warehouses ~partitions in
  Array.of_list
    (List.mapi
       (fun id (lo, hi) ->
         let db = Load.populate ~only:(fun w -> lo <= w && w <= hi) ~seed params in
         Partition.make ~id ~lo ~hi (Executor.create ~sem:Dist_txns.semantics db))
       ranges)

(* partition loads are exact disjoint projections: their union is the
   unpartitioned load *)
let test_load_projection () =
  let seed = 11 in
  let parts = mk_parts ~seed ~partitions:3 small_params in
  let merged = Dist_driver.merged_db (Array.to_list parts) in
  let full = Load.populate ~seed small_params in
  Alcotest.(check bool) "merged partitions = unpartitioned load" true
    (Database.equal merged full);
  Alcotest.(check (list string)) "merged load is consistent" [] (Consistency.check merged)

(* --- remote payment, single-node ------------------------------------------ *)

(* the 15% remote-customer payment on one engine: money lands in the paying
   warehouse's ytd (C1/C8 group history by h_w_id), the customer side at the
   customer's home warehouse *)
let test_remote_payment_single_node () =
  let seed = 5 in
  let db = Load.populate ~seed small_params in
  let eng = Executor.create ~sem:Txns.semantics db in
  let env = Txns.default_env ~seed small_params in
  let input =
    Txns.Payment
      {
        Txns.p_w = 1; p_d = 2; p_c_w = 3; p_c_d = 4;
        p_customer = Txns.By_id 7; p_amount = 123.25;
      }
  in
  let outcome = ref None in
  Schedule.run eng [ (fun () -> outcome := Some (Txns.run_acc eng env input)) ];
  (match !outcome with
  | Some Acc_core.Runtime.Committed -> ()
  | _ -> Alcotest.fail "remote payment did not commit");
  Alcotest.(check (list string)) "C1/C8 hold across warehouses" []
    (Consistency.check db);
  let site_rows =
    Table.scan (Database.table db "history")
      ~where:
        (Acc_relation.Predicate.conj
           [
             Acc_relation.Predicate.Eq ("h_c_w_id", Int 3);
             Acc_relation.Predicate.Eq ("h_w_id", Int 1);
           ])
  in
  Alcotest.(check int) "history row: customer home 3, payment site 1" 1
    (List.length site_rows)

(* --- cross-partition payment through the coordinator ---------------------- *)

let cross_payment =
  {
    Txns.p_w = 1; p_d = 1; p_c_w = 4; p_c_d = 2;
    p_customer = Txns.By_id 3; p_amount = 77.5;
  }

let run_cross_input coord parts env input =
  let part_of w = Partition.id (Coordinator.partition_of coord w) in
  let branches =
    List.map (fun (pid, inst) -> (parts.(pid), inst)) (Dist_txns.branches env ~part_of input)
  in
  let home = Partition.engine (fst (List.hd branches)) in
  let outcome = ref Coordinator.Aborted in
  Schedule.run home [ (fun () -> outcome := Coordinator.run_cross coord branches) ];
  !outcome

let test_cross_payment_commit () =
  let seed = 3 in
  let parts = mk_parts ~seed ~partitions:2 small_params in
  let coord = Coordinator.create parts in
  let env = Txns.default_env ~seed small_params in
  let outcome = run_cross_input coord parts env (Txns.Payment cross_payment) in
  Alcotest.(check bool) "committed" true (outcome = Coordinator.Committed);
  Alcotest.(check int) "decision logged" 1
    (Coordinator.Decision_log.size (Coordinator.decision_log coord));
  let merged = Dist_driver.merged_db (Array.to_list parts) in
  Alcotest.(check (list string)) "C1/C8 hold across partitions" []
    (Consistency.check merged);
  (* the history row lives on the customer's partition, stamped with the
     paying site *)
  let rcust_db = Executor.db (Partition.engine (Coordinator.partition_of coord 4)) in
  let rows =
    Table.scan (Database.table rcust_db "history")
      ~where:(Acc_relation.Predicate.Eq ("h_w_id", Int 1))
  in
  Alcotest.(check int) "history on the customer's partition names site w1" 1
    (List.length rows)

(* a branch failure after the home branch prepared: the coordinator logs
   Abort and the prepared branch compensates — both ytds restored *)
let test_cross_payment_abort_compensates () =
  let seed = 3 in
  let parts = mk_parts ~seed ~partitions:2 small_params in
  let coord = Coordinator.create parts in
  let env = Txns.default_env ~seed small_params in
  let home_db = Executor.db (Partition.engine parts.(0)) in
  let w_ytd_before =
    match Table.scan (Database.table home_db "warehouse") with
    | row :: _ -> number row.(3)
    | [] -> Alcotest.fail "no warehouse row"
  in
  let input =
    Txns.Payment { cross_payment with Txns.p_customer = Txns.By_last_name "NOSUCHNAME" }
  in
  let outcome = run_cross_input coord parts env input in
  Alcotest.(check bool) "aborted" true (outcome = Coordinator.Aborted);
  let w_ytd_after =
    match Table.scan (Database.table home_db "warehouse") with
    | row :: _ -> number row.(3)
    | [] -> Alcotest.fail "no warehouse row"
  in
  Alcotest.(check (float 1e-9)) "home w_ytd restored" w_ytd_before w_ytd_after;
  Alcotest.(check (list string)) "merged state consistent" []
    (Consistency.check (Dist_driver.merged_db (Array.to_list parts)))

(* a cross-partition new_order spreads stock draws over partitions; C12
   groups by the supplying warehouse of the merged database *)
let test_cross_new_order () =
  let seed = 9 in
  let parts = mk_parts ~seed ~partitions:2 small_params in
  let coord = Coordinator.create parts in
  let env = Txns.default_env ~seed small_params in
  let input =
    Txns.New_order
      {
        Txns.no_w = 1; no_d = 1; no_c = 2;
        (* two local lines, one remote line supplied from w3 (partition 1) *)
        no_items = [ (5, 3, 1); (6, 2, 3); (7, 1, 1) ];
        no_fail_last = false;
      }
  in
  let outcome = run_cross_input coord parts env input in
  Alcotest.(check bool) "committed" true (outcome = Coordinator.Committed);
  let merged = Dist_driver.merged_db (Array.to_list parts) in
  Alcotest.(check (list string)) "C12 holds across partitions" []
    (Consistency.check merged);
  (* the remote line's quantity was drawn from w3's stock on partition 1 *)
  let p1_db = Executor.db (Partition.engine parts.(1)) in
  let stock_row =
    match
      Table.scan (Database.table p1_db "stock")
        ~where:
          (Acc_relation.Predicate.conj
             [
               Acc_relation.Predicate.Eq ("s_w_id", Int 3);
               Acc_relation.Predicate.Eq ("s_i_id", Int 6);
             ])
    with
    | [ row ] -> row
    | _ -> Alcotest.fail "remote stock row missing"
  in
  Alcotest.(check int) "remote s_ytd counts the draw" 2 (as_int stock_row.(3))

(* --- the partitioned driver ----------------------------------------------- *)

let test_driver_4_partitions () =
  let cfg =
    {
      Dist_driver.default_config with
      Dist_driver.seed = 21;
      domains = 2;
      partitions = 4;
      txns_per_domain = Some 150;
      params = small_params;
    }
  in
  let r = Dist_driver.run cfg in
  Alcotest.(check (list string)) "merged database consistent" []
    r.Dist_driver.violations;
  Alcotest.(check bool) "committed work" true (r.Dist_driver.committed > 100);
  Alcotest.(check bool) "cross-partition commits happened" true
    (r.Dist_driver.cross_committed > 0);
  (* acceptance floor: the TPC-C mix at 4 warehouses yields >= 10%
     cross-partition transactions (15% remote-customer payments + ~1%/line
     remote stock) *)
  Alcotest.(check bool)
    (Printf.sprintf "cross fraction %.3f >= 0.10" r.Dist_driver.cross_fraction)
    true
    (r.Dist_driver.cross_fraction >= 0.10)

(* --- crash harness --------------------------------------------------------- *)

let harness_config =
  {
    Dist_harness.default_config with
    Dist_harness.params = small_params;
    partitions = 2;
    txns = 24;
    hits_per_point = 2;
  }

let check_results results =
  List.iter
    (fun r ->
      if Dist_harness.failed r then
        Alcotest.failf "%s" (Format.asprintf "%a" Dist_harness.pp_result r))
    results

let test_harness_sweep () =
  let results = Dist_harness.sweep ~config:harness_config () in
  check_results results;
  Alcotest.(check bool) "sweep injected crashes" true
    (List.exists (fun r -> r.Dist_harness.r_crashes > 0) results)

let test_harness_chaos () =
  check_results [ Dist_harness.chaos ~config:{ harness_config with txns = 16 } ~seed:2 () ]

(* crash-equivalence, coordinator edition: whatever the seed, crashing at
   random points leaves every partition decided (no in-doubt, no pending),
   never loses a logged Commit, and the merged database stays consistent —
   all checked inside the harness oracle *)
let prop_no_lost_decision =
  QCheck2.Test.make ~name:"dist: chaos crashes lose no decision" ~count:6
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let config = { harness_config with Dist_harness.txns = 14; chaos_p = 0.02 } in
      let r = Dist_harness.chaos ~config ~seed () in
      if Dist_harness.failed r then
        QCheck2.Test.fail_report (Format.asprintf "%a" Dist_harness.pp_result r)
      else true)

let suites =
  [
    ( "dist.partition",
      [
        Alcotest.test_case "warehouse ranges" `Quick test_ranges;
        Alcotest.test_case "partition loads are exact projections" `Quick
          test_load_projection;
      ] );
    ( "dist.payment",
      [
        Alcotest.test_case "remote payment, single node" `Quick
          test_remote_payment_single_node;
        Alcotest.test_case "cross-partition payment commits" `Quick
          test_cross_payment_commit;
        Alcotest.test_case "cross-partition abort compensates" `Quick
          test_cross_payment_abort_compensates;
        Alcotest.test_case "cross-partition new_order" `Quick test_cross_new_order;
      ] );
    ( "dist.driver",
      [ Alcotest.test_case "4 partitions: consistent, >=10%% cross" `Slow test_driver_4_partitions ] );
    ( "dist.harness",
      [
        Alcotest.test_case "sweep survives every dist point" `Slow test_harness_sweep;
        Alcotest.test_case "chaos seed survives" `Slow test_harness_chaos;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xD157 |])
          prop_no_lost_decision;
      ] );
  ]
