(* Small, targeted tests for API surface not exercised by the behavioural
   suites: pretty-printers, accessors, window resolution, edge parameters. *)

module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Table = Acc_relation.Table
module Database = Acc_relation.Database
module Predicate = Acc_relation.Predicate
module Ordered_index = Acc_relation.Ordered_index
module Mode = Acc_lock.Mode
module Lock_table = Acc_lock.Lock_table
module Lock_request = Acc_lock.Lock_request
module Resource_id = Acc_lock.Resource_id
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Program = Acc_core.Program
module Sim = Acc_sim.Sim
module Prng = Acc_util.Prng

let v_int n = Value.Int n

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* --- printers ------------------------------------------------------------- *)

let test_value_printers () =
  Alcotest.(check string) "int" "42" (Value.to_string (v_int 42));
  Alcotest.(check string) "float" "2.5" (Value.to_string (Value.Float 2.5));
  Alcotest.(check string) "string quoted" "\"hi\"" (Value.to_string (Value.Str "hi"));
  Alcotest.(check string) "bool" "true" (Value.to_string (Value.Bool true));
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null)

let test_predicate_printer () =
  let p =
    Predicate.And
      ( Predicate.Eq ("a", v_int 1),
        Predicate.Or
          ( Predicate.Cmp (Predicate.Ge, "b", v_int 2),
            Predicate.Not (Predicate.In ("c", [ v_int 3; v_int 4 ])) ) )
  in
  let s = Format.asprintf "%a" Predicate.pp p in
  List.iter
    (fun frag -> Alcotest.(check bool) ("mentions " ^ frag) true (contains s frag))
    [ "a = 1"; "b >= 2"; "c in (3, 4)"; "and"; "or"; "not" ]

let test_mode_printer () =
  Alcotest.(check string) "S" "S" (Format.asprintf "%a" Mode.pp Mode.S);
  Alcotest.(check string) "A" "A(7)" (Format.asprintf "%a" Mode.pp (Mode.A 7));
  Alcotest.(check string) "Comp" "Comp(9)" (Format.asprintf "%a" Mode.pp (Mode.Comp 9))

let test_schema_printer () =
  let s =
    Schema.make ~name:"t" ~key:[ "k" ]
      [ Schema.col "k" Value.Tint; Schema.col ~nullable:true "v" Value.Tstr ]
  in
  let out = Format.asprintf "%a" Schema.pp s in
  Alcotest.(check bool) "mentions table" true (contains out "table t");
  Alcotest.(check bool) "mentions null column" true (contains out "v : string null")

let test_lock_state_printer () =
  let t = Lock_table.create Mode.no_semantics in
  let res = Resource_id.Tuple ("t", [ v_int 1 ]) in
  ignore (Lock_table.submit t (Lock_request.make ~txn:1 ~step_type:0 Mode.X res));
  ignore (Lock_table.submit t (Lock_request.make ~txn:2 ~step_type:0 Mode.S res));
  let out = Format.asprintf "%a" Lock_table.pp_state t in
  Alcotest.(check bool) "shows holder" true (contains out "held(T1,X");
  Alcotest.(check bool) "shows waiter" true (contains out "wait(T2,S)");
  Alcotest.(check (list int)) "waiting_on" [] (Lock_table.waiting_on t ~txn:1 |> List.map (fun _ -> 0));
  Alcotest.(check int) "waiter waits somewhere" 1 (List.length (Lock_table.waiting_on t ~txn:2))

let test_database_summary () =
  let db = Database.create () in
  let _ =
    Database.create_table db
      (Schema.make ~name:"t" ~key:[ "k" ] [ Schema.col "k" Value.Tint ])
  in
  let out = Format.asprintf "%a" Database.pp_summary db in
  Alcotest.(check bool) "lists table with count" true (contains out "t" && contains out "0 rows")

(* --- window resolution -------------------------------------------------------- *)

let mk_step id index repeats =
  Program.step ~id ~name:(Printf.sprintf "s%d" id) ~txn_type:"w" ~index ~repeats ~reads:[]
    ~writes:[] ()

let test_resolve_window_with_middle_repeats () =
  (* static: s1, s2 (repeats), s3; dynamic expansion s1 s2 s2 s2 s3 *)
  let s1 = mk_step 1 1 false and s2 = mk_step 2 2 true and s3 = mk_step 3 3 false in
  let comp = mk_step 9 0 false in
  let def = Program.txn_type ~name:"w" ~steps:[ s1; s2; s3 ] ~comp ~assertions:[] () in
  let nop _ = () in
  let inst =
    Program.instance ~def
      ~steps:[ (s1, nop); (s2, nop); (s2, nop); (s2, nop); (s3, nop) ]
      ~compensate:(fun _ ~completed:_ -> ())
      ()
  in
  let a_mid =
    Acc_core.Assertion.make ~id:50 ~name:"mid" ~txn_type:"w" ~pre_of:2 ~until:3 ~refs:[]
  in
  (* pre(S2) opens at the FIRST dynamic occurrence of static step 2 and
     closes at the LAST dynamic occurrence of static step 3 *)
  Alcotest.(check (pair int int)) "window over repeats" (2, 5) (Program.resolve_window inst a_mid);
  let a_commit =
    Acc_core.Assertion.make ~id:51 ~name:"c" ~txn_type:"w" ~pre_of:3
      ~until:Acc_core.Assertion.until_commit ~refs:[]
  in
  Alcotest.(check (pair int int)) "until_commit = last step" (5, 5)
    (Program.resolve_window inst a_commit)

(* --- executor accessors --------------------------------------------------------- *)

let test_executor_accessors () =
  let db = Database.create () in
  let _ =
    Database.create_table db
      (Schema.make ~name:"t" ~key:[ "k" ] [ Schema.col "k" Value.Tint; Schema.col "v" Value.Tint ])
  in
  let eng = Executor.create ~sem:Mode.no_semantics db in
  Schedule.run eng
    [
      (fun () ->
        let ctx = Executor.begin_txn eng ~txn_type:"probe" ~multi_step:true in
        Alcotest.(check string) "txn_type" "probe" (Executor.txn_type ctx);
        Alcotest.(check bool) "engine identity" true (Executor.engine ctx == eng);
        Alcotest.(check bool) "not finished" false (Executor.finished ctx);
        Executor.set_step ctx ~step_type:3 ~step_index:2;
        Alcotest.(check int) "step type" 3 (Executor.step_type ctx);
        Alcotest.(check int) "step index" 2 (Executor.step_index ctx);
        Alcotest.(check bool) "not compensating" false (Executor.compensating ctx);
        Executor.set_compensating ctx true;
        Alcotest.(check bool) "compensating" true (Executor.compensating ctx);
        Executor.set_compensating ctx false;
        Alcotest.(check int) "empty undo stack" 0 (Executor.undo_stack_size ctx);
        Executor.insert ctx "t" [| v_int 1; v_int 0 |];
        Alcotest.(check int) "undo stack grows" 1 (Executor.undo_stack_size ctx);
        Executor.end_step ctx ~comp_area:None;
        Alcotest.(check int) "undo stack cleared at step end" 0 (Executor.undo_stack_size ctx);
        Executor.commit ctx;
        Alcotest.(check bool) "finished" true (Executor.finished ctx))
    ];
  Alcotest.(check bool) "read_exn raises on missing" true
    (try
       Schedule.run eng
         [
           (fun () ->
             let ctx = Executor.begin_txn eng ~txn_type:"x" ~multi_step:false in
             (try ignore (Executor.read_exn ctx "t" [ v_int 99 ])
              with Table.No_such_row _ ->
                Executor.abort_physical ctx;
                raise Exit))
         ];
       false
     with Exit -> true)

(* --- sim edges -------------------------------------------------------------------- *)

let test_sim_edges () =
  let s = Sim.create () in
  let ran_at = ref (-1.0) in
  Sim.spawn s ~at:5.0 (fun () ->
      (* spawning in the past clamps to now *)
      Sim.spawn s ~at:1.0 (fun () -> ran_at := Sim.now s));
  Sim.run s;
  Alcotest.(check (float 1e-9)) "past spawn clamped" 5.0 !ran_at;
  Alcotest.(check bool) "events counted" true (Sim.events_executed s >= 2)

(* --- ordered index extras ------------------------------------------------------------ *)

let test_ordered_index_extras () =
  let idx = Ordered_index.create ~name:"x" ~key_of:(fun row -> [ row.(0) ]) in
  List.iter
    (fun i -> Ordered_index.insert idx ~pk:[ v_int i ] [| v_int (10 - i) |])
    [ 1; 2; 3 ];
  let keys =
    Ordered_index.fold_ascending idx ~init:[] ~f:(fun acc key _pk -> key :: acc) |> List.rev
  in
  Alcotest.(check bool) "fold ascending" true
    (keys = [ [ v_int 7 ]; [ v_int 8 ]; [ v_int 9 ] ]);
  Alcotest.(check bool) "projection usable" true
    (Ordered_index.projection idx [| v_int 42 |] = [ v_int 42 ])

(* --- prng edges -------------------------------------------------------------------------- *)

let test_prng_edges () =
  let g = Prng.create ~seed:1 in
  Alcotest.(check int) "alpha min=max" 4 (String.length (Prng.alpha_string g ~min:4 ~max:4));
  Alcotest.(check int) "int bound 1" 0 (Prng.int g 1);
  Alcotest.(check int) "int_in singleton" 5 (Prng.int_in g 5 5);
  let p = Prng.permutation g 0 in
  Alcotest.(check int) "empty permutation" 0 (Array.length p)

let suites =
  [
    ( "surface",
      [
        Alcotest.test_case "value printers" `Quick test_value_printers;
        Alcotest.test_case "predicate printer" `Quick test_predicate_printer;
        Alcotest.test_case "mode printer" `Quick test_mode_printer;
        Alcotest.test_case "schema printer" `Quick test_schema_printer;
        Alcotest.test_case "lock state printer" `Quick test_lock_state_printer;
        Alcotest.test_case "database summary" `Quick test_database_summary;
        Alcotest.test_case "resolve_window with repeats" `Quick
          test_resolve_window_with_middle_repeats;
        Alcotest.test_case "executor accessors" `Quick test_executor_accessors;
        Alcotest.test_case "sim edges" `Quick test_sim_edges;
        Alcotest.test_case "ordered index extras" `Quick test_ordered_index_extras;
        Alcotest.test_case "prng edges" `Quick test_prng_edges;
      ] );
  ]
