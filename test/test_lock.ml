(* Tests for acc.lock: modes, conflict semantics, the lock table, deadlock
   detection.  Transaction ids are plain ints; step type 0 is used when the
   step identity does not matter. *)

open Acc_lock
module Value = Acc_relation.Value

let res_a = Resource_id.Tuple ("t", [ Value.Int 1 ])
let res_b = Resource_id.Tuple ("t", [ Value.Int 2 ])
let tbl = Resource_id.Table "t"

let plain () = Lock_table.create Mode.no_semantics

(* Interference oracle used by the assertional tests:
   - step 10 interferes with assertion 100
   - step 11 interferes with nothing
   - prefix behind assertion 200 interferes with assertion 100 *)
let test_semantics =
  Mode.
    {
      step_interferes = (fun ~step_type ~assertion -> step_type = 10 && assertion = 100);
      prefix_interferes =
        (fun ~holder_assertion ~assertion -> holder_assertion = 200 && assertion = 100);
    }

let granted = function Lock_table.Granted -> true | Lock_table.Queued _ -> false

let ticket_exn = function
  | Lock_table.Queued tk -> tk
  | Lock_table.Granted -> Alcotest.fail "expected Queued, got Granted"

let req ?(txn = 1) ?(step = 0) ?admission ?compensating t mode res =
  Lock_table.submit t (Lock_request.make ~txn ~step_type:step ?admission ?compensating mode res)

(* --- Mode ------------------------------------------------------------- *)

let requester = Mode.{ req_step_type = 0; req_admission = false }

let conv_conflict a b =
  Mode.conflicts Mode.no_semantics ~held:a ~held_step:0 ~req:b ~requester

let test_conventional_matrix () =
  let expect held r v =
    Alcotest.(check bool)
      (Format.asprintf "%a vs %a" Mode.pp held Mode.pp r)
      v (conv_conflict held r)
  in
  expect Mode.S Mode.S false;
  expect Mode.S Mode.X true;
  expect Mode.X Mode.S true;
  expect Mode.X Mode.X true;
  expect Mode.IS Mode.IS false;
  expect Mode.IS Mode.IX false;
  expect Mode.IX Mode.IS false;
  expect Mode.IX Mode.IX false;
  expect Mode.IS Mode.S false;
  expect Mode.S Mode.IS false;
  expect Mode.IX Mode.S true;
  expect Mode.S Mode.IX true;
  expect Mode.IS Mode.X true;
  expect Mode.X Mode.IS true;
  expect Mode.IX Mode.X true;
  expect Mode.X Mode.IX true

let test_covers () =
  Alcotest.(check bool) "X covers S" true (Mode.covers Mode.X Mode.S);
  Alcotest.(check bool) "X covers IX" true (Mode.covers Mode.X Mode.IX);
  Alcotest.(check bool) "S covers IS" true (Mode.covers Mode.S Mode.IS);
  Alcotest.(check bool) "S !covers X" false (Mode.covers Mode.S Mode.X);
  Alcotest.(check bool) "IS !covers S" false (Mode.covers Mode.IS Mode.S);
  Alcotest.(check bool) "A self" true (Mode.covers (Mode.A 1) (Mode.A 1));
  Alcotest.(check bool) "A other" false (Mode.covers (Mode.A 1) (Mode.A 2));
  Alcotest.(check bool) "A !covers S" false (Mode.covers (Mode.A 1) Mode.S)

let test_assertional_conflicts () =
  let c ~held ~held_step ~req ~requester =
    Mode.conflicts test_semantics ~held ~held_step ~req ~requester
  in
  let writer10 = Mode.{ req_step_type = 10; req_admission = false } in
  let writer11 = Mode.{ req_step_type = 11; req_admission = false } in
  (* X vs foreign A: via interference table *)
  Alcotest.(check bool) "interfering write blocked" true
    (c ~held:(Mode.A 100) ~held_step:0 ~req:Mode.X ~requester:writer10);
  Alcotest.(check bool) "benign write passes" false
    (c ~held:(Mode.A 100) ~held_step:0 ~req:Mode.X ~requester:writer11);
  Alcotest.(check bool) "other assertion passes" false
    (c ~held:(Mode.A 101) ~held_step:0 ~req:Mode.X ~requester:writer10);
  (* reads never conflict with assertions *)
  Alcotest.(check bool) "S vs A" false
    (c ~held:(Mode.A 100) ~held_step:0 ~req:Mode.S ~requester:writer10);
  (* A vs A only at admission, via prefix interference *)
  let admission = Mode.{ req_step_type = 0; req_admission = true } in
  Alcotest.(check bool) "admission prefix conflict" true
    (c ~held:(Mode.A 200) ~held_step:0 ~req:(Mode.A 100) ~requester:admission);
  Alcotest.(check bool) "admission no prefix conflict" false
    (c ~held:(Mode.A 201) ~held_step:0 ~req:(Mode.A 100) ~requester:admission);
  Alcotest.(check bool) "non-admission A vs A free" false
    (c ~held:(Mode.A 200) ~held_step:0 ~req:(Mode.A 100) ~requester);
  (* X holder vs admission assertion: holder's step consulted *)
  Alcotest.(check bool) "X holder blocks admission" true
    (c ~held:Mode.X ~held_step:10 ~req:(Mode.A 100) ~requester:admission);
  Alcotest.(check bool) "benign X holder admits" false
    (c ~held:Mode.X ~held_step:11 ~req:(Mode.A 100) ~requester:admission);
  (* compensation locks *)
  Alcotest.(check bool) "Comp blocks interfering assertion" true
    (c ~held:(Mode.Comp 10) ~held_step:0 ~req:(Mode.A 100) ~requester);
  Alcotest.(check bool) "Comp passes benign assertion" false
    (c ~held:(Mode.Comp 11) ~held_step:0 ~req:(Mode.A 100) ~requester);
  Alcotest.(check bool) "assertion blocks interfering Comp" true
    (c ~held:(Mode.A 100) ~held_step:0 ~req:(Mode.Comp 10) ~requester);
  Alcotest.(check bool) "Comp vs X free" false
    (c ~held:(Mode.Comp 10) ~held_step:0 ~req:Mode.X ~requester);
  Alcotest.(check bool) "Comp vs Comp free" false
    (c ~held:(Mode.Comp 10) ~held_step:0 ~req:(Mode.Comp 10) ~requester)

(* --- Resource ids ------------------------------------------------------ *)

let test_resource_ids () =
  Alcotest.(check bool) "tuple eq" true
    (Resource_id.equal res_a (Resource_id.Tuple ("t", [ Value.Int 1 ])));
  Alcotest.(check bool) "tuple ne" false (Resource_id.equal res_a res_b);
  Alcotest.(check bool) "parent" true
    (Resource_id.parent res_a = Some (Resource_id.Table "t"));
  Alcotest.(check bool) "table no parent" true (Resource_id.parent tbl = None);
  Alcotest.(check string) "table_of" "t" (Resource_id.table_of res_a)

(* --- basic grant/queue/release ----------------------------------------- *)

let test_shared_compatible () =
  let t = plain () in
  Alcotest.(check bool) "t1 S" true (granted (req t ~txn:1 Mode.S res_a));
  Alcotest.(check bool) "t2 S" true (granted (req t ~txn:2 Mode.S res_a));
  Alcotest.(check int) "two holds" 2 (List.length (Lock_table.holders t res_a))

let test_exclusive_blocks () =
  let t = plain () in
  Alcotest.(check bool) "t1 X" true (granted (req t ~txn:1 Mode.X res_a));
  let g = req t ~txn:2 Mode.X res_a in
  Alcotest.(check bool) "t2 queued" false (granted g);
  Alcotest.(check bool) "outstanding" true (Lock_table.outstanding t ~ticket:(ticket_exn g))

let test_release_wakes_fifo () =
  let t = plain () in
  ignore (req t ~txn:1 Mode.X res_a);
  let g2 = req t ~txn:2 Mode.X res_a in
  let g3 = req t ~txn:3 Mode.X res_a in
  let wake = Lock_table.release t ~txn:1 Mode.X res_a in
  (match wake with
  | [ w ] ->
      Alcotest.(check int) "t2 woken first" 2 w.Lock_table.woken_txn;
      Alcotest.(check int) "ticket matches" (ticket_exn g2) w.Lock_table.woken_ticket
  | _ -> Alcotest.fail "expected exactly one wakeup");
  Alcotest.(check bool) "t3 still waits" true
    (Lock_table.outstanding t ~ticket:(ticket_exn g3))

let test_release_wakes_multiple_readers () =
  let t = plain () in
  ignore (req t ~txn:1 Mode.X res_a);
  ignore (req t ~txn:2 Mode.S res_a);
  ignore (req t ~txn:3 Mode.S res_a);
  let wake = Lock_table.release t ~txn:1 Mode.X res_a in
  Alcotest.(check int) "both readers woken" 2 (List.length wake)

let test_fifo_no_overtake () =
  (* S granted, X queued, new S must wait behind the X (no starvation). *)
  let t = plain () in
  ignore (req t ~txn:1 Mode.S res_a);
  ignore (req t ~txn:2 Mode.X res_a);
  let g3 = req t ~txn:3 Mode.S res_a in
  Alcotest.(check bool) "late S queued behind X" false (granted g3);
  (* when t1 releases, only t2's X is granted *)
  let wake = Lock_table.release t ~txn:1 Mode.S res_a in
  Alcotest.(check (list int)) "only X woken" [ 2 ]
    (List.map (fun w -> w.Lock_table.woken_txn) wake);
  (* and when t2 releases, t3's S follows *)
  let wake2 = Lock_table.release t ~txn:2 Mode.X res_a in
  Alcotest.(check (list int)) "S follows" [ 3 ]
    (List.map (fun w -> w.Lock_table.woken_txn) wake2)

let test_reentrant () =
  let t = plain () in
  Alcotest.(check bool) "first" true (granted (req t ~txn:1 Mode.S res_a));
  Alcotest.(check bool) "second" true (granted (req t ~txn:1 Mode.S res_a));
  (* one release leaves the hold, second removes it *)
  Alcotest.(check int) "no wake" 0 (List.length (Lock_table.release t ~txn:1 Mode.S res_a));
  Alcotest.(check int) "still held" 1 (List.length (Lock_table.holders t res_a));
  ignore (Lock_table.release t ~txn:1 Mode.S res_a);
  Alcotest.(check int) "gone" 0 (List.length (Lock_table.holders t res_a))

let test_covered_mode_reentrant () =
  let t = plain () in
  Alcotest.(check bool) "X" true (granted (req t ~txn:1 Mode.X res_a));
  Alcotest.(check bool) "S under X" true (granted (req t ~txn:1 Mode.S res_a));
  Alcotest.(check bool) "only one hold" true (List.length (Lock_table.holders t res_a) = 1)

let test_upgrade_sole_holder () =
  let t = plain () in
  ignore (req t ~txn:1 Mode.S res_a);
  Alcotest.(check bool) "upgrade granted" true (granted (req t ~txn:1 Mode.X res_a));
  (* both holds present, both owned by 1 *)
  Alcotest.(check bool) "all mine" true
    (List.for_all (fun (txn, _, _) -> txn = 1) (Lock_table.holders t res_a))

let test_upgrade_waits_for_other_reader () =
  let t = plain () in
  ignore (req t ~txn:1 Mode.S res_a);
  ignore (req t ~txn:2 Mode.S res_a);
  let g = req t ~txn:1 Mode.X res_a in
  Alcotest.(check bool) "upgrade queued" false (granted g);
  let wake = Lock_table.release t ~txn:2 Mode.S res_a in
  Alcotest.(check (list int)) "upgrade granted on release" [ 1 ]
    (List.map (fun w -> w.Lock_table.woken_txn) wake)

let test_upgrade_jumps_queue () =
  (* t1 holds S; t2 queues X; t1's upgrade must go in front of t2, otherwise
     it would deadlock behind a request that waits on t1 itself. *)
  let t = plain () in
  ignore (req t ~txn:1 Mode.S res_a);
  ignore (req t ~txn:2 Mode.X res_a);
  let _g = req t ~txn:1 Mode.X res_a in
  (* t1's upgrade waits only on nobody (conflict is with t2's queued X but
     upgrades ignore the queue) -- actually it is granted immediately since
     the only holder is t1 itself. *)
  Alcotest.(check bool) "upgrade granted over queued X" true (granted _g)

let test_release_where () =
  let t = plain () in
  ignore (req t ~txn:1 Mode.IX tbl);
  ignore (req t ~txn:1 Mode.X res_a);
  Lock_table.attach_req t (Lock_request.make ~txn:1 ~step_type:0 (Mode.A 7) res_a);
  let _ = Lock_table.release_where t ~txn:1 (fun _ m -> Mode.conventional m) in
  let remaining = Lock_table.held_by t ~txn:1 in
  Alcotest.(check int) "only assertional left" 1 (List.length remaining);
  (match remaining with
  | [ (_, Mode.A 7) ] -> ()
  | _ -> Alcotest.fail "expected A(7) to survive");
  ignore (Lock_table.release_all t ~txn:1);
  Alcotest.(check int) "all gone" 0 (Lock_table.lock_count t)

let test_release_unheld_raises () =
  let t = plain () in
  let raised =
    try
      ignore (Lock_table.release t ~txn:1 Mode.S res_a);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "raises" true raised

let test_cancel_unblocks () =
  let t = plain () in
  ignore (req t ~txn:1 Mode.S res_a);
  let gx = req t ~txn:2 Mode.X res_a in
  let gs = req t ~txn:3 Mode.S res_a in
  (* cancelling the X in the middle lets the S through immediately *)
  let wake = Lock_table.cancel t ~ticket:(ticket_exn gx) in
  Alcotest.(check (list int)) "S promoted" [ 3 ]
    (List.map (fun w -> w.Lock_table.woken_txn) wake);
  Alcotest.(check bool) "S no longer outstanding" false
    (Lock_table.outstanding t ~ticket:(ticket_exn gs))

let test_release_all_cancels_waits () =
  let t = plain () in
  ignore (req t ~txn:1 Mode.X res_a);
  ignore (req t ~txn:2 Mode.X res_a);
  (* txn 2 is waiting; release_all on 2 must clear the wait *)
  ignore (Lock_table.release_all t ~txn:2);
  Alcotest.(check (list (pair int int))) "no edges left" [] (Lock_table.wait_edges t)

(* --- assertional behaviour through the table --------------------------- *)

let acc_table () = Lock_table.create test_semantics

let test_assertional_write_blocked () =
  let t = acc_table () in
  Lock_table.attach_req t (Lock_request.make ~txn:1 ~step_type:0 (Mode.A 100) res_a);
  (* non-interfering write by txn 3 (step 11) passes despite the assertion *)
  Alcotest.(check bool) "benign write granted" true
    (granted (req t ~txn:3 ~step:11 Mode.X res_a));
  ignore (Lock_table.release t ~txn:3 Mode.X res_a);
  (* interfering write by txn 2 (step 10) blocks *)
  Alcotest.(check bool) "interfering write queued" false
    (granted (req t ~txn:2 ~step:10 Mode.X res_a))

let test_own_assertion_no_self_block () =
  let t = acc_table () in
  Lock_table.attach_req t (Lock_request.make ~txn:1 ~step_type:0 (Mode.A 100) res_a);
  Alcotest.(check bool) "own write passes own assertion" true
    (granted (req t ~txn:1 ~step:10 Mode.X res_a))

let test_admission_prefix_check () =
  let t = acc_table () in
  Lock_table.attach_req t (Lock_request.make ~txn:1 ~step_type:0 (Mode.A 200) res_a);
  (* admission of an assertion the prefix interferes with: delayed *)
  Alcotest.(check bool) "admission blocked" false
    (granted (req t ~txn:2 ~admission:true (Mode.A 100) res_a));
  (* without the admission flag the same acquisition is unchecked *)
  Alcotest.(check bool) "mid-txn grant unchecked" true
    (granted (req t ~txn:3 (Mode.A 100) res_a))

let test_admission_unblocked_on_commit () =
  let t = acc_table () in
  Lock_table.attach_req t (Lock_request.make ~txn:1 ~step_type:0 (Mode.A 200) res_a);
  let g = req t ~txn:2 ~admission:true (Mode.A 100) res_a in
  let wake = Lock_table.release_all t ~txn:1 in
  Alcotest.(check (list int)) "admitted after release" [ 2 ]
    (List.map (fun w -> w.Lock_table.woken_txn) wake);
  Alcotest.(check bool) "granted now" false (Lock_table.outstanding t ~ticket:(ticket_exn g))

let test_comp_lock_blocks_interfering_assertion () =
  let t = acc_table () in
  (* txn 1 modified res_a; its compensating step type is 10 *)
  Lock_table.attach_req t (Lock_request.make ~txn:1 ~step_type:0 (Mode.Comp 10) res_a);
  Alcotest.(check bool) "interfering assertion blocked" false
    (granted (req t ~txn:2 ~admission:true (Mode.A 100) res_a));
  Alcotest.(check bool) "benign assertion allowed" true
    (granted (req t ~txn:3 ~admission:true (Mode.A 101) res_a))

(* --- deadlock detection ------------------------------------------------ *)

let test_blockers () =
  let t = plain () in
  ignore (req t ~txn:1 Mode.S res_a);
  ignore (req t ~txn:2 Mode.S res_a);
  let g = req t ~txn:3 Mode.X res_a in
  Alcotest.(check (list int)) "blockers are both readers" [ 1; 2 ]
    (Lock_table.blockers t ~ticket:(ticket_exn g))

let test_cycle_two_txns () =
  let t = plain () in
  ignore (req t ~txn:1 Mode.X res_a);
  ignore (req t ~txn:2 Mode.X res_b);
  ignore (req t ~txn:1 Mode.X res_b);
  (* no cycle yet *)
  Alcotest.(check bool) "no cycle yet" true (Lock_table.find_cycle t ~from:1 = None);
  ignore (req t ~txn:2 Mode.X res_a);
  (match Lock_table.find_cycle t ~from:2 with
  | Some cycle ->
      Alcotest.(check bool) "cycle contains 1 and 2" true
        (List.mem 1 cycle && List.mem 2 cycle)
  | None -> Alcotest.fail "expected deadlock cycle");
  (* resolving: cancel txn 2's wait and release its lock *)
  ignore (Lock_table.release_all t ~txn:2);
  Alcotest.(check bool) "resolved" true (Lock_table.find_cycle t ~from:1 = None)

let test_cycle_three_txns () =
  let t = plain () in
  let res_c = Resource_id.Tuple ("t", [ Value.Int 3 ]) in
  ignore (req t ~txn:1 Mode.X res_a);
  ignore (req t ~txn:2 Mode.X res_b);
  ignore (req t ~txn:3 Mode.X res_c);
  ignore (req t ~txn:1 Mode.X res_b);
  ignore (req t ~txn:2 Mode.X res_c);
  Alcotest.(check bool) "no cycle with chain" true (Lock_table.find_cycle t ~from:2 = None);
  ignore (req t ~txn:3 Mode.X res_a);
  match Lock_table.find_cycle t ~from:3 with
  | Some cycle -> Alcotest.(check int) "three-node cycle" 3 (List.length cycle)
  | None -> Alcotest.fail "expected 3-cycle"

let test_compensating_flag () =
  let t = plain () in
  ignore (req t ~txn:1 Mode.X res_a);
  ignore (req t ~txn:2 ~compensating:true Mode.X res_a);
  Alcotest.(check bool) "flag readable" true (Lock_table.compensating_waiter t ~txn:2);
  Alcotest.(check bool) "other txn unflagged" false (Lock_table.compensating_waiter t ~txn:1)

let test_wait_edges_via_queue () =
  (* A waiter also waits on conflicting waiters ahead of it. *)
  let t = plain () in
  ignore (req t ~txn:1 Mode.S res_a);
  ignore (req t ~txn:2 Mode.X res_a);
  ignore (req t ~txn:3 Mode.X res_a);
  let edges = List.sort compare (Lock_table.wait_edges t) in
  Alcotest.(check (list (pair int int))) "edges" [ (2, 1); (3, 1); (3, 2) ] edges

(* --- hierarchical (cross-level) checks ---------------------------------- *)

let test_table_s_blocks_tuple_x () =
  (* an absolute S at table level reaches down to tuple writes *)
  let t = plain () in
  ignore (req t ~txn:1 Mode.S tbl);
  Alcotest.(check bool) "tuple X blocked by table S" false (granted (req t ~txn:2 Mode.X res_a));
  (* but intention locks at table level do NOT constrain tuple requests *)
  let t2 = plain () in
  ignore (req t2 ~txn:1 Mode.IX tbl);
  Alcotest.(check bool) "tuple X passes foreign IX" true (granted (req t2 ~txn:2 Mode.X res_a))

let test_table_a_blocks_tuple_write () =
  (* a table-level assertional lock (legacy scan isolation) blocks
     interfering tuple writes *)
  let t = acc_table () in
  Lock_table.attach_req t (Lock_request.make ~txn:1 ~step_type:0 (Mode.A 100) tbl);
  Alcotest.(check bool) "interfering tuple write blocked" false
    (granted (req t ~txn:2 ~step:10 Mode.X res_a));
  Alcotest.(check bool) "benign tuple write passes" true
    (granted (req t ~txn:3 ~step:11 Mode.X res_b))

let test_table_a_checks_tuple_comp_holders () =
  (* a checked A request on a table must wait out tuple-level Comp holders
     whose compensating step interferes (the legacy-scan admission) *)
  let t = acc_table () in
  Lock_table.attach_req t (Lock_request.make ~txn:1 ~step_type:0 (Mode.Comp 10) res_a);
  Alcotest.(check bool) "table A blocked by tuple Comp" false
    (granted (req t ~txn:2 (Mode.A 100) tbl));
  (* released when the exposing transaction commits *)
  let wake = Lock_table.release_all t ~txn:1 in
  Alcotest.(check (list int)) "granted on commit" [ 2 ]
    (List.map (fun w -> w.Lock_table.woken_txn) wake)

let test_cross_level_promotion () =
  (* a waiter on a tuple is unblocked by a release at table level *)
  let t = plain () in
  ignore (req t ~txn:1 Mode.S tbl);
  let g = req t ~txn:2 Mode.X res_a in
  Alcotest.(check bool) "blocked" false (granted g);
  let wake = Lock_table.release t ~txn:1 Mode.S tbl in
  Alcotest.(check (list int)) "woken by table release" [ 2 ]
    (List.map (fun w -> w.Lock_table.woken_txn) wake)

let test_entry_gc () =
  (* drained entries are collected so table sweeps stay cheap *)
  let t = plain () in
  for i = 1 to 50 do
    ignore (req t ~txn:1 Mode.X (Resource_id.Tuple ("t", [ Value.Int i ])))
  done;
  Alcotest.(check bool) "entries live while held" true (Lock_table.entry_count t >= 50);
  ignore (Lock_table.release_all t ~txn:1);
  Alcotest.(check int) "entries collected" 0 (Lock_table.entry_count t);
  Alcotest.(check int) "no waiters" 0 (Lock_table.waiter_count t)

let test_cross_level_wait_edges () =
  (* the deadlock graph must include cross-level blockers *)
  let t = plain () in
  ignore (req t ~txn:1 Mode.S tbl);
  ignore (req t ~txn:2 Mode.X res_a);
  Alcotest.(check (list (pair int int))) "edge via parent table" [ (2, 1) ]
    (Lock_table.wait_edges t)

(* --- predicate locks (the §3.2 comparator) ------------------------------- *)

module Predicate = Acc_relation.Predicate
module Predicate_lock = Acc_lock.Predicate_lock

let p_eq c v = Predicate.Eq (c, Value.Int v)
let p_range c lo hi =
  Predicate.And (Predicate.Cmp (Predicate.Ge, c, Value.Int lo),
                 Predicate.Cmp (Predicate.Le, c, Value.Int hi))

let test_predlock_intersection () =
  let open Predicate_lock in
  (* the bank-account example of §3.2: different accounts do not conflict *)
  Alcotest.(check bool) "same key intersects" true (may_intersect (p_eq "id" 1) (p_eq "id" 1));
  Alcotest.(check bool) "different keys disjoint" true
    (definitely_disjoint (p_eq "id" 1) (p_eq "id" 2));
  Alcotest.(check bool) "range overlap" true
    (may_intersect (p_range "v" 0 10) (p_range "v" 10 20));
  Alcotest.(check bool) "range disjoint" true
    (definitely_disjoint (p_range "v" 0 9) (p_range "v" 10 20));
  Alcotest.(check bool) "open ranges disjoint" true
    (definitely_disjoint
       (Predicate.Cmp (Predicate.Lt, "v", Value.Int 5))
       (Predicate.Cmp (Predicate.Gt, "v", Value.Int 5)));
  Alcotest.(check bool) "eq inside range" true
    (may_intersect (p_eq "v" 5) (p_range "v" 0 10));
  Alcotest.(check bool) "eq outside range" true
    (definitely_disjoint (p_eq "v" 50) (p_range "v" 0 10));
  Alcotest.(check bool) "ne excludes eq" true
    (definitely_disjoint (p_eq "v" 5) (Predicate.Ne ("v", Value.Int 5)));
  Alcotest.(check bool) "in-lists overlap" true
    (may_intersect
       (Predicate.In ("v", [ Value.Int 1; Value.Int 2 ]))
       (Predicate.In ("v", [ Value.Int 2; Value.Int 3 ])));
  Alcotest.(check bool) "in-lists disjoint" true
    (definitely_disjoint
       (Predicate.In ("v", [ Value.Int 1 ]))
       (Predicate.In ("v", [ Value.Int 2; Value.Int 3 ])));
  (* different columns constrain independently: both can hold *)
  Alcotest.(check bool) "different columns intersect" true
    (may_intersect (p_eq "a" 1) (p_eq "b" 2));
  (* disjunctions are conservative *)
  Alcotest.(check bool) "or is conservative" true
    (may_intersect (Predicate.Or (p_eq "v" 1, p_eq "v" 2)) (p_eq "v" 9))

let test_predlock_manager () =
  let open Predicate_lock in
  let t = create () in
  Alcotest.(check bool) "read granted" true
    (acquire t ~txn:1 ~mode:Read ~table:"acct" (p_range "v" 0 10) = `Granted);
  Alcotest.(check bool) "overlapping read granted" true
    (acquire t ~txn:2 ~mode:Read ~table:"acct" (p_range "v" 5 15) = `Granted);
  (* a write intersecting both readers reports both *)
  (match acquire t ~txn:3 ~mode:Write ~table:"acct" (p_eq "v" 7) with
  | `Conflict blockers -> Alcotest.(check (list int)) "both readers block" [ 1; 2 ] blockers
  | `Granted -> Alcotest.fail "expected conflict");
  (* a disjoint write sails through *)
  Alcotest.(check bool) "disjoint write granted" true
    (acquire t ~txn:3 ~mode:Write ~table:"acct" (p_eq "v" 50) = `Granted);
  (* another table is independent *)
  Alcotest.(check bool) "other table granted" true
    (acquire t ~txn:3 ~mode:Write ~table:"other" (p_eq "v" 7) = `Granted);
  release_all t ~txn:1;
  release_all t ~txn:2;
  Alcotest.(check bool) "write granted after release" true
    (acquire t ~txn:3 ~mode:Write ~table:"acct" (p_eq "v" 7) = `Granted);
  release_all t ~txn:3;
  Alcotest.(check int) "drained" 0 (lock_count t)

(* soundness: if some row satisfies both predicates, may_intersect must say
   so.  Generate conjunctive predicates and rows over a small value space. *)
let conj_pred_gen =
  QCheck2.Gen.(
    let atom =
      oneof
        [
          map2 (fun c v -> Predicate.Eq (c, Value.Int v)) (oneofl [ "a"; "b" ]) (int_range 0 6);
          map2 (fun c v -> Predicate.Ne (c, Value.Int v)) (oneofl [ "a"; "b" ]) (int_range 0 6);
          map3
            (fun op c v -> Predicate.Cmp (op, c, Value.Int v))
            (oneofl [ Predicate.Lt; Predicate.Le; Predicate.Gt; Predicate.Ge ])
            (oneofl [ "a"; "b" ]) (int_range 0 6);
          map2
            (fun c vs -> Predicate.In (c, List.map (fun v -> Value.Int v) vs))
            (oneofl [ "a"; "b" ])
            (list_size (int_range 1 3) (int_range 0 6));
        ]
    in
    map Predicate.conj (list_size (int_range 1 4) atom))

let pred_schema =
  Acc_relation.Schema.make ~name:"p" ~key:[ "a" ]
    [ Acc_relation.Schema.col "a" Value.Tint; Acc_relation.Schema.col "b" Value.Tint ]

let prop_may_intersect_sound =
  QCheck2.Test.make ~name:"predicate_lock: may_intersect is sound" ~count:1000
    QCheck2.Gen.(pair conj_pred_gen conj_pred_gen)
    (fun (p1, p2) ->
      let f1 = Predicate.compile pred_schema p1 and f2 = Predicate.compile pred_schema p2 in
      let witness = ref false in
      for a = 0 to 6 do
        for b = 0 to 6 do
          let row = [| Value.Int a; Value.Int b |] in
          if f1 row && f2 row then witness := true
        done
      done;
      (* soundness: a common row forces may_intersect *)
      (not !witness) || Predicate_lock.may_intersect p1 p2)

(* --- qcheck safety: no two conflicting holds ever coexist --------------- *)

type lock_op = Req of int * bool * int | Rel of int

let lock_op_gen =
  QCheck2.Gen.(
    oneof
      [
        map3 (fun txn x r -> Req (txn, x, r)) (int_range 1 5) bool (int_range 0 2);
        map (fun txn -> Rel txn) (int_range 1 5);
      ])

let prop_no_conflicting_holds =
  QCheck2.Test.make ~name:"lock_table: conflicting holds never coexist" ~count:300
    QCheck2.Gen.(list_size (int_range 0 80) lock_op_gen)
    (fun ops ->
      let t = plain () in
      let resources = [| res_a; res_b; tbl |] in
      List.iter
        (fun op ->
          match op with
          | Req (txn, exclusive, r) ->
              let mode = if exclusive then Mode.X else Mode.S in
              ignore (req t ~txn mode resources.(r))
          | Rel txn -> ignore (Lock_table.release_all t ~txn))
        ops;
      (* check pairwise compatibility of holds on every resource *)
      Array.for_all
        (fun r ->
          let holds = Lock_table.holders t r in
          List.for_all
            (fun (txn1, m1, _) ->
              List.for_all
                (fun (txn2, m2, _) ->
                  txn1 = txn2
                  || not
                       (Mode.conflicts Mode.no_semantics ~held:m1 ~held_step:0 ~req:m2
                          ~requester))
                holds)
            holds)
        resources)

let prop_release_all_drains =
  QCheck2.Test.make ~name:"lock_table: release_all leaves no residue" ~count:200
    QCheck2.Gen.(list_size (int_range 0 60) lock_op_gen)
    (fun ops ->
      let t = plain () in
      let resources = [| res_a; res_b; tbl |] in
      List.iter
        (fun op ->
          match op with
          | Req (txn, exclusive, r) ->
              let mode = if exclusive then Mode.X else Mode.S in
              ignore (req t ~txn mode resources.(r))
          | Rel txn -> ignore (Lock_table.release_all t ~txn))
        ops;
      for txn = 1 to 5 do
        ignore (Lock_table.release_all t ~txn)
      done;
      Lock_table.lock_count t = 0 && Lock_table.wait_edges t = [])

(* safety against a RANDOM interference oracle: requests that follow the
   hierarchical protocol (intention lock before tuple lock, assertional
   attachment only alongside an own conventional hold — the §3.3 side
   condition) must never produce two coexisting conflicting holds, across
   levels included.  Queued requests are immediately cancelled ("timeout")
   so the state stays protocol-clean without a scheduler. *)

type rnd_op =
  | RRead of int * int (* txn, resource *)
  | RWrite of int * int
  | RAttach of int * int * int (* txn, assertion, resource *)
  | RRel of int

let rnd_op_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun t r -> RRead (t, r)) (int_range 1 4) (int_range 1 3);
        map2 (fun t r -> RWrite (t, r)) (int_range 1 4) (int_range 1 3);
        map3 (fun t a r -> RAttach (t, a, r)) (int_range 1 4) (int_range 1 3) (int_range 1 3);
        map (fun t -> RRel t) (int_range 1 4);
      ])

let prop_oracle_safety =
  QCheck2.Test.make ~name:"lock_table: protocol-following grants are pairwise safe" ~count:300
    QCheck2.Gen.(pair (int_range 0 255) (list_size (int_range 0 80) rnd_op_gen))
    (fun (oracle_bits, ops) ->
      let sem =
        Mode.
          {
            step_interferes =
              (fun ~step_type ~assertion ->
                (oracle_bits lsr ((step_type + (3 * assertion)) mod 8)) land 1 = 1);
            prefix_interferes = (fun ~holder_assertion:_ ~assertion:_ -> false);
          }
      in
      let t = Lock_table.create sem in
      let table = Resource_id.Table "t" in
      let tuple n = Resource_id.Tuple ("t", [ Value.Int n ]) in
      (* request; on block, cancel at once *)
      let try_lock txn mode res =
        match Lock_table.submit t (Lock_request.make ~txn ~step_type:(txn mod 3) mode res) with
        | Lock_table.Granted -> true
        | Lock_table.Queued ticket ->
            ignore (Lock_table.cancel t ~ticket);
            false
      in
      let holds_conventional txn res =
        List.exists
          (fun (tx, m, _) -> tx = txn && Mode.conventional m)
          (Lock_table.holders t res)
      in
      List.iter
        (fun op ->
          match op with
          | RRead (txn, r) -> if try_lock txn Mode.IS table then ignore (try_lock txn Mode.S (tuple r))
          | RWrite (txn, r) -> if try_lock txn Mode.IX table then ignore (try_lock txn Mode.X (tuple r))
          | RAttach (txn, a, r) ->
              (* the §3.3 side condition: attach only alongside an own
                 conventional hold on the same item *)
              if holds_conventional txn (tuple r) then
                Lock_table.attach_req t (Lock_request.make ~txn ~step_type:(txn mod 3) (Mode.A a) (tuple r))
          | RRel txn -> ignore (Lock_table.release_all t ~txn))
        ops;
      (* pairwise safety across ALL holds, including tuple-vs-absolute-table *)
      let table_absolute =
        List.filter (fun (_, m, _) -> match m with Mode.IS | Mode.IX -> false | _ -> true)
          (Lock_table.holders t table)
      in
      let ok_pair (t1, m1, s1) (t2, _m2, _) req_mode =
        t1 = t2
        || not
             (Mode.conflicts sem ~held:m1 ~held_step:s1 ~req:req_mode
                ~requester:Mode.{ req_step_type = t2 mod 3; req_admission = false })
      in
      List.for_all
        (fun r ->
          let own = Lock_table.holders t (tuple r) in
          List.for_all
            (fun ((_, m2, _) as h2) ->
              List.for_all (fun h1 -> ok_pair h1 h2 m2) (own @ table_absolute))
            own)
        [ 1; 2; 3 ]
      &&
      let tholds = Lock_table.holders t table in
      List.for_all
        (fun ((_, m2, _) as h2) -> List.for_all (fun h1 -> ok_pair h1 h2 m2) tholds)
        tholds)

(* --- lock-wait deadlines and bounded-bypass fairness (DESIGN.md §13) ---- *)

let test_deadline_expiry () =
  let now = ref 0. in
  let t = Lock_table.create ~clock:(fun () -> !now) Mode.no_semantics in
  ignore (req t ~txn:1 Mode.X res_a);
  let tk =
    ticket_exn (Lock_table.submit t (Lock_request.make ~txn:2 ~step_type:0 ~deadline:5. Mode.X res_a))
  in
  let ex, wk = Lock_table.expire_overdue t ~now:4.9 in
  Alcotest.(check int) "nothing due yet" 0 (List.length ex);
  Alcotest.(check int) "no wakeups" 0 (List.length wk);
  now := 6.;
  let ex, _ = Lock_table.expire_overdue t ~now:6. in
  (match ex with
  | [ e ] ->
      Alcotest.(check int) "expired txn" 2 e.Lock_table.ex_txn;
      Alcotest.(check bool) "waited measured from enqueue" true (e.Lock_table.ex_waited >= 5.9)
  | _ -> Alcotest.fail "expected exactly one expiry");
  Alcotest.(check bool) "ticket withdrawn" false (Lock_table.outstanding t ~ticket:tk);
  Alcotest.(check int) "no waiter leaked" 0 (Lock_table.waiter_count t);
  (* no double abort: a later sweep, a late cancel, and a detector-style kill
     all find nothing to withdraw *)
  let ex2, _ = Lock_table.expire_overdue t ~now:7. in
  Alcotest.(check int) "second sweep empty" 0 (List.length ex2);
  Alcotest.(check int) "late cancel is a no-op" 0
    (List.length (Lock_table.cancel t ~ticket:tk));
  Alcotest.(check int) "release wakes nobody" 0 (List.length (Lock_table.release_all t ~txn:1));
  Alcotest.(check int) "clean table" 0 (Lock_table.lock_count t)

let test_deadline_spares_compensating () =
  let now = ref 0. in
  let t = Lock_table.create ~clock:(fun () -> !now) Mode.no_semantics in
  ignore (req t ~txn:1 Mode.X res_a);
  (* §3.4 compensation-sparing: the deadline is discarded on a compensating
     request, so no sweep ever withdraws it *)
  ignore
    (Lock_table.submit t (Lock_request.make ~txn:2 ~step_type:0 ~compensating:true ~deadline:1. Mode.X res_a));
  now := 100.;
  let ex, _ = Lock_table.expire_overdue t ~now:100. in
  Alcotest.(check int) "compensating wait never expires" 0 (List.length ex);
  Alcotest.(check int) "still queued" 1 (Lock_table.waiter_count t)

let test_bounded_bypass_gate () =
  (* same-queue FIFO already forbids overtaking; the gate bounds the avenues
     FIFO cannot see.  Here: tuple-level grants never consult the table-level
     queue, so readers of a tuple can starve a queued table writer forever
     without the gate. *)
  let t = Lock_table.create ~max_bypass:3 Mode.no_semantics in
  ignore (Lock_table.submit t (Lock_request.make ~txn:1 ~step_type:0 Mode.S tbl));
  let tk = ticket_exn (Lock_table.submit t (Lock_request.make ~txn:2 ~step_type:0 Mode.X tbl)) in
  (* direct tuple readers bypass the queued table writer, but only
     max_bypass times — then the gate refuses further conflicting grants *)
  let grants = ref [] in
  for txn = 3 to 10 do
    if granted (Lock_table.submit t (Lock_request.make ~txn ~step_type:0 Mode.S res_a)) then
      grants := txn :: !grants
  done;
  Alcotest.(check (list int)) "gate closes after max_bypass overtakes" [ 3; 4; 5 ]
    (List.rev !grants);
  Alcotest.(check int) "starved waiter's bypass count" 3 (Lock_table.max_bypassed t);
  (* gate refusals are visible to the deadlock detector as wait edges on the
     starved waiter *)
  Alcotest.(check bool) "fairness wait edge recorded" true
    (List.mem (6, 2) (Lock_table.wait_edges t));
  (* §3.4: compensating requests are never fairness-gated *)
  Alcotest.(check bool) "compensating reader passes the closed gate" true
    (granted (Lock_table.submit t (Lock_request.make ~txn:20 ~step_type:0 ~compensating:true Mode.S res_a)));
  (* drain: the starved writer goes first once the table holder leaves (an
     absolute table grant does not sweep tuple holds — the protocol relies on
     intention locks, which these direct tuple readers skipped), then the
     deferred readers, and nothing leaks *)
  ignore (Lock_table.release_all t ~txn:1);
  Alcotest.(check bool) "starved writer granted first" false
    (Lock_table.outstanding t ~ticket:tk);
  List.iter (fun txn -> ignore (Lock_table.release_all t ~txn)) [ 3; 4; 5; 20 ];
  ignore (Lock_table.release_all t ~txn:2);
  List.iter (fun txn -> ignore (Lock_table.release_all t ~txn)) [ 6; 7; 8; 9; 10 ];
  Alcotest.(check int) "no residue locks" 0 (Lock_table.lock_count t);
  Alcotest.(check int) "no residue waiters" 0 (Lock_table.waiter_count t)

(* The fairness bound as a property: with every request from a fresh
   transaction (so no re-entrant/upgrade exemptions apply), no waiter is ever
   overtaken more than max_bypass times, across any interleaving of grants,
   queue jumps, releases and cancels — the "granted or aborted within a
   bounded number of grant events" guarantee. *)
let bypass_ops_gen =
  QCheck2.Gen.(list_size (int_range 0 120) (pair (int_range 0 7) (int_range 0 5)))

let run_bypass_ops ~max_bypass ~request ~release_all ~cancel_txn ~max_bypassed ops =
  let resources = [| res_a; res_b; tbl |] in
  let next = ref 0 in
  let active = ref [] in
  let ok = ref true in
  List.iter
    (fun (k, r) ->
      (match k with
      | 0 | 1 | 2 | 3 ->
          incr next;
          active := !next :: !active;
          let mode = [| Mode.S; Mode.X; Mode.IS; Mode.IX |].(k) in
          (* intention modes only make sense on the table *)
          let res = if k >= 2 then tbl else resources.(r mod 3) in
          request ~txn:!next mode res
      | 4 | 5 -> (
          match !active with
          | [] -> ()
          | l ->
              let txn = List.nth l (r mod List.length l) in
              release_all ~txn;
              active := List.filter (fun x -> x <> txn) l)
      | _ -> (
          match !active with [] -> () | l -> cancel_txn ~txn:(List.nth l (r mod List.length l))));
      if max_bypassed () > max_bypass then ok := false)
    ops;
  !ok

let prop_bounded_bypass =
  QCheck2.Test.make ~name:"lock_table: no waiter overtaken more than max_bypass times"
    ~count:300 bypass_ops_gen (fun ops ->
      let max_bypass = 4 in
      let t = Lock_table.create ~max_bypass Mode.no_semantics in
      run_bypass_ops ~max_bypass
        ~request:(fun ~txn mode res ->
          ignore (Lock_table.submit t (Lock_request.make ~txn ~step_type:0 mode res)))
        ~release_all:(fun ~txn -> ignore (Lock_table.release_all t ~txn))
        ~cancel_txn:(fun ~txn ->
          List.iter
            (fun ticket -> ignore (Lock_table.cancel t ~ticket))
            (Lock_table.outstanding_tickets t ~txn))
        ~max_bypassed:(fun () -> Lock_table.max_bypassed t)
        ops)

(* Sequential-vs-sharded parity: the sharded table must agree with the
   sequential one request-for-request on the Lock_request surface.  The
   script exercises grants, queueing, upgrades, re-entry and the
   assertional/compensating modes. *)
module Sharded = Acc_parallel.Sharded_lock_table

let parity_script =
  [
    (1, 0, false, false, None, Mode.IX, tbl);
    (1, 0, false, false, None, Mode.X, res_a);
    (2, 10, false, false, None, Mode.IS, tbl);
    (2, 10, false, false, Some 99.0, Mode.S, res_a) (* queues behind txn 1 *);
    (3, 0, true, false, None, Mode.A 100, res_b);
    (3, 0, false, true, None, Mode.Comp 10, res_b);
    (1, 0, false, false, None, Mode.X, res_a) (* re-entrant *);
    (3, 0, false, false, None, Mode.A 200, Resource_id.Tuple ("t", [ Value.Int 3 ]));
  ]

let same_grant g1 g2 =
  match (g1, g2) with
  | Lock_table.Granted, Lock_table.Granted -> true
  | Lock_table.Queued _, Lock_table.Queued _ -> true
  | _ -> false

let test_sequential_sharded_parity () =
  let seq = Lock_table.create test_semantics in
  let sh = Sharded.create ~shards:4 test_semantics in
  List.iter
    (fun (txn, step_type, admission, compensating, deadline, mode, res) ->
      let req = Lock_request.make ~txn ~step_type ~admission ~compensating ?deadline mode res in
      let g_seq = Lock_table.submit seq req in
      let g_sh = Sharded.submit sh req in
      Alcotest.(check bool) "same grant decision" true (same_grant g_seq g_sh);
      (* attach on a disjoint txn space so it cannot disturb the grants *)
      let att = Lock_request.make ~txn:(txn + 100) ~step_type mode res in
      Lock_table.attach_req seq att;
      Sharded.attach_req sh att)
    parity_script;
  List.iter
    (fun res ->
      Alcotest.(check bool)
        "same holders" true
        (List.sort compare (Lock_table.holders seq res)
        = List.sort compare (Sharded.holders sh res)))
    [ tbl; res_a; res_b; Resource_id.Tuple ("t", [ Value.Int 3 ]) ];
  Alcotest.(check int) "same lock count" (Lock_table.lock_count seq) (Sharded.lock_count sh);
  Alcotest.(check int) "same waiter count" (Lock_table.waiter_count seq)
    (Sharded.waiter_count sh)

let suites =
  [
    ( "lock.mode",
      [
        Alcotest.test_case "conventional matrix" `Quick test_conventional_matrix;
        Alcotest.test_case "covers" `Quick test_covers;
        Alcotest.test_case "assertional conflicts" `Quick test_assertional_conflicts;
      ] );
    ("lock.resource", [ Alcotest.test_case "identity" `Quick test_resource_ids ]);
    ( "lock.table",
      [
        Alcotest.test_case "shared compatible" `Quick test_shared_compatible;
        Alcotest.test_case "exclusive blocks" `Quick test_exclusive_blocks;
        Alcotest.test_case "release wakes fifo" `Quick test_release_wakes_fifo;
        Alcotest.test_case "release wakes readers" `Quick test_release_wakes_multiple_readers;
        Alcotest.test_case "fifo no overtake" `Quick test_fifo_no_overtake;
        Alcotest.test_case "reentrant" `Quick test_reentrant;
        Alcotest.test_case "covered mode reentrant" `Quick test_covered_mode_reentrant;
        Alcotest.test_case "upgrade sole holder" `Quick test_upgrade_sole_holder;
        Alcotest.test_case "upgrade waits for reader" `Quick test_upgrade_waits_for_other_reader;
        Alcotest.test_case "upgrade ignores queue" `Quick test_upgrade_jumps_queue;
        Alcotest.test_case "release_where" `Quick test_release_where;
        Alcotest.test_case "release unheld raises" `Quick test_release_unheld_raises;
        Alcotest.test_case "cancel unblocks" `Quick test_cancel_unblocks;
        Alcotest.test_case "release_all cancels waits" `Quick test_release_all_cancels_waits;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_no_conflicting_holds;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_oracle_safety;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_release_all_drains;
      ] );
    ( "lock.assertional",
      [
        Alcotest.test_case "interfering write blocked" `Quick test_assertional_write_blocked;
        Alcotest.test_case "no self block" `Quick test_own_assertion_no_self_block;
        Alcotest.test_case "admission prefix check" `Quick test_admission_prefix_check;
        Alcotest.test_case "admission unblocked on commit" `Quick
          test_admission_unblocked_on_commit;
        Alcotest.test_case "comp lock semantics" `Quick
          test_comp_lock_blocks_interfering_assertion;
      ] );
    ( "lock.deadlock",
      [
        Alcotest.test_case "blockers" `Quick test_blockers;
        Alcotest.test_case "two-txn cycle" `Quick test_cycle_two_txns;
        Alcotest.test_case "three-txn cycle" `Quick test_cycle_three_txns;
        Alcotest.test_case "compensating flag" `Quick test_compensating_flag;
        Alcotest.test_case "wait edges via queue" `Quick test_wait_edges_via_queue;
      ] );
    ( "lock.overload",
      [
        Alcotest.test_case "deadline expiry withdraws the wait once" `Quick
          test_deadline_expiry;
        Alcotest.test_case "deadline spares compensating requests" `Quick
          test_deadline_spares_compensating;
        Alcotest.test_case "bounded-bypass gate" `Quick test_bounded_bypass_gate;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_bounded_bypass;
      ] );
    ( "lock.parity",
      [
        Alcotest.test_case "sequential and sharded tables agree on Lock_request" `Quick
          test_sequential_sharded_parity;
      ] );
    ( "lock.predicate",
      [
        Alcotest.test_case "intersection tests" `Quick test_predlock_intersection;
        Alcotest.test_case "manager" `Quick test_predlock_manager;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_may_intersect_sound;
      ] );
    ( "lock.hierarchy",
      [
        Alcotest.test_case "table S blocks tuple X" `Quick test_table_s_blocks_tuple_x;
        Alcotest.test_case "table A blocks tuple write" `Quick test_table_a_blocks_tuple_write;
        Alcotest.test_case "table A checks tuple Comp holders" `Quick
          test_table_a_checks_tuple_comp_holders;
        Alcotest.test_case "cross-level promotion" `Quick test_cross_level_promotion;
        Alcotest.test_case "entry gc" `Quick test_entry_gc;
        Alcotest.test_case "cross-level wait edges" `Quick test_cross_level_wait_edges;
      ] );
  ]
