(* The deprecated optional-argument shims ([Lock_table.request]/[attach],
   [Sharded_lock_table.request]/[attach]/[acquire]) are kept for one release;
   until they go they must agree exactly with the [Lock_request.t] surface
   they wrap.  Each test drives the same operation sequence through a shim
   table and a new-surface table and compares grant decisions and end state. *)

[@@@alert "-deprecated"]

open Acc_lock
module Sharded = Acc_parallel.Sharded_lock_table
module Value = Acc_relation.Value

let sem =
  Mode.
    {
      step_interferes = (fun ~step_type ~assertion -> step_type = 10 && assertion = 100);
      prefix_interferes =
        (fun ~holder_assertion ~assertion -> holder_assertion = 200 && assertion = 100);
    }

let tab = Resource_id.Table "t"
let tup k = Resource_id.Tuple ("t", [ Value.Int k ])

(* (txn, step, admission, compensating, deadline, mode, resource) exercising
   grants, queueing, upgrades, re-entry and the assertional modes *)
let script =
  [
    (1, 0, false, false, None, Mode.IX, tab);
    (1, 0, false, false, None, Mode.X, tup 1);
    (2, 10, false, false, None, Mode.IS, tab);
    (2, 10, false, false, Some 99.0, Mode.S, tup 1) (* queues behind txn 1 *);
    (3, 0, true, false, None, Mode.A 100, tup 2);
    (3, 0, false, true, None, Mode.Comp 10, tup 2);
    (1, 0, false, false, None, Mode.X, tup 1) (* re-entrant *);
    (3, 0, false, false, None, Mode.A 200, tup 3);
  ]

let same_grant g1 g2 =
  match (g1, g2) with
  | Lock_table.Granted, Lock_table.Granted -> true
  | Lock_table.Queued _, Lock_table.Queued _ -> true
  | _ -> false

let check_same_state ~holders ~lock_count ~waiter_count =
  List.iter
    (fun res ->
      Alcotest.(check bool)
        "same holders" true
        (List.sort compare (holders `Old res) = List.sort compare (holders `New res)))
    [ tab; tup 1; tup 2; tup 3 ];
  Alcotest.(check int) "same lock count" (lock_count `Old) (lock_count `New);
  Alcotest.(check int) "same waiter count" (waiter_count `Old) (waiter_count `New)

let test_sequential_request_shim () =
  let old_t = Lock_table.create sem in
  let new_t = Lock_table.create sem in
  List.iter
    (fun (txn, step_type, admission, compensating, deadline, mode, res) ->
      let g_old =
        Lock_table.request old_t ~txn ~step_type ~admission ~compensating ?deadline mode
          res
      in
      let g_new =
        Lock_table.submit new_t
          (Lock_request.make ~txn ~step_type ~admission ~compensating ?deadline mode res)
      in
      Alcotest.(check bool) "same grant decision" true (same_grant g_old g_new))
    script;
  check_same_state
    ~holders:(fun w res ->
      Lock_table.holders (match w with `Old -> old_t | `New -> new_t) res)
    ~lock_count:(fun w ->
      Lock_table.lock_count (match w with `Old -> old_t | `New -> new_t))
    ~waiter_count:(fun w ->
      Lock_table.waiter_count (match w with `Old -> old_t | `New -> new_t))

let test_sequential_attach_shim () =
  let old_t = Lock_table.create sem in
  let new_t = Lock_table.create sem in
  List.iter
    (fun (txn, step_type, _, _, _, mode, res) ->
      Lock_table.attach old_t ~txn ~step_type mode res;
      Lock_table.attach_req new_t (Lock_request.make ~txn ~step_type mode res))
    script;
  check_same_state
    ~holders:(fun w res ->
      Lock_table.holders (match w with `Old -> old_t | `New -> new_t) res)
    ~lock_count:(fun w ->
      Lock_table.lock_count (match w with `Old -> old_t | `New -> new_t))
    ~waiter_count:(fun w ->
      Lock_table.waiter_count (match w with `Old -> old_t | `New -> new_t))

let sharded_state_check old_t new_t =
  check_same_state
    ~holders:(fun w res -> Sharded.holders (match w with `Old -> old_t | `New -> new_t) res)
    ~lock_count:(fun w -> Sharded.lock_count (match w with `Old -> old_t | `New -> new_t))
    ~waiter_count:(fun w ->
      Sharded.waiter_count (match w with `Old -> old_t | `New -> new_t))

let test_sharded_request_attach_shims () =
  let old_t = Sharded.create ~shards:4 sem in
  let new_t = Sharded.create ~shards:4 sem in
  List.iter
    (fun (txn, step_type, admission, compensating, deadline, mode, res) ->
      let g_old =
        Sharded.request old_t ~txn ~step_type ~admission ~compensating ?deadline mode res
      in
      let g_new =
        Sharded.submit new_t
          (Lock_request.make ~txn ~step_type ~admission ~compensating ?deadline mode res)
      in
      Alcotest.(check bool) "same grant decision" true (same_grant g_old g_new);
      (* attach on a disjoint txn space so it cannot disturb the grants *)
      Sharded.attach old_t ~txn:(txn + 100) ~step_type mode res;
      Sharded.attach_req new_t
        (Lock_request.make ~txn:(txn + 100) ~step_type mode res))
    script;
  sharded_state_check old_t new_t

(* the blocking shim, on a conflict-free script so it never suspends *)
let test_sharded_acquire_shim () =
  let old_t = Sharded.create ~shards:4 sem in
  let new_t = Sharded.create ~shards:4 sem in
  List.iter
    (fun (txn, step_type, admission, compensating, deadline, mode, res) ->
      Sharded.acquire old_t ~txn ~step_type ~admission ~compensating ?deadline mode res;
      Sharded.acquire_req new_t
        (Lock_request.make ~txn ~step_type ~admission ~compensating ?deadline mode res))
    (List.filter (fun (txn, _, _, _, _, _, _) -> txn <> 2) script);
  sharded_state_check old_t new_t

let suites =
  [
    ( "lock.compat",
      [
        Alcotest.test_case "request shim agrees with submit" `Quick
          test_sequential_request_shim;
        Alcotest.test_case "attach shim agrees with attach_req" `Quick
          test_sequential_attach_shim;
        Alcotest.test_case "sharded request/attach shims agree" `Quick
          test_sharded_request_attach_shims;
        Alcotest.test_case "sharded acquire shim agrees with acquire_req" `Quick
          test_sharded_acquire_shim;
      ] );
  ]
