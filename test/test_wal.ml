(* Tests for acc.wal: the log, physical redo/undo, and crash recovery with
   step-atomic undo and pending-compensation reporting. *)

open Acc_wal
module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Schema = Acc_relation.Schema
module Value = Acc_relation.Value

let v_int n = Value.Int n

let items_schema =
  Schema.make ~name:"items" ~key:[ "id" ]
    [ Schema.col "id" Value.Tint; Schema.col "qty" Value.Tint ]

let fresh_db rows =
  let db = Database.create () in
  let t = Database.create_table db items_schema in
  List.iter (fun (id, qty) -> Table.insert t [| v_int id; v_int qty |]) rows;
  db

let qty db id = Value.as_int (Table.get_exn (Database.table db "items") [ v_int id ]).(1)
let has db id = Table.mem (Database.table db "items") [ v_int id ]

let w_insert id qty =
  { Record.w_table = "items"; w_key = [ v_int id ]; w_before = None; w_after = Some [| v_int id; v_int qty |] }

let w_update id before after =
  {
    Record.w_table = "items";
    w_key = [ v_int id ];
    w_before = Some [| v_int id; v_int before |];
    w_after = Some [| v_int id; v_int after |];
  }

let w_delete id qty =
  { Record.w_table = "items"; w_key = [ v_int id ]; w_before = Some [| v_int id; v_int qty |]; w_after = None }

(* --- Log ---------------------------------------------------------------- *)

let test_log_append_get () =
  let log = Log.create () in
  let l0 = Log.append log (Record.Begin { txn = 1; txn_type = "t"; multi_step = false }) in
  let l1 = Log.append log (Record.Commit { txn = 1 }) in
  Alcotest.(check int) "lsn 0" 0 l0;
  Alcotest.(check int) "lsn 1" 1 l1;
  Alcotest.(check int) "length" 2 (Log.length log);
  (match Log.get log 1 with
  | Record.Commit { txn } -> Alcotest.(check int) "commit txn" 1 txn
  | _ -> Alcotest.fail "wrong record");
  Alcotest.(check int) "to_list" 2 (List.length (Log.to_list log))

let test_log_growth () =
  (* push past the initial capacity to exercise resizing *)
  let log = Log.create () in
  for i = 1 to 1000 do
    ignore (Log.append log (Record.Commit { txn = i }))
  done;
  Alcotest.(check int) "length" 1000 (Log.length log);
  match Log.get log 999 with
  | Record.Commit { txn } -> Alcotest.(check int) "last" 1000 txn
  | _ -> Alcotest.fail "wrong record"

let test_log_prefix () =
  let log = Log.create () in
  for i = 1 to 5 do
    ignore (Log.append log (Record.Commit { txn = i }))
  done;
  Alcotest.(check int) "prefix 3" 3 (List.length (Log.prefix log 3));
  Alcotest.(check int) "prefix over" 5 (List.length (Log.prefix log 99));
  Alcotest.(check int) "since 3" 2 (List.length (Log.appended_since log 3));
  Alcotest.(check int) "get oob" 5
    (try
       ignore (Log.get log 5);
       0
     with Invalid_argument _ -> 5)

let test_log_save_load () =
  let log = Log.create () in
  ignore (Log.append log (Record.Begin { txn = 1; txn_type = "t"; multi_step = true }));
  ignore (Log.append log (Record.Write { txn = 1; write = w_update 1 10 20; undo = false }));
  ignore (Log.append log (Record.Comp_area { txn = 1; completed_steps = 1; area = [ ("k", v_int 3) ] }));
  ignore (Log.append log (Record.Commit { txn = 1 }));
  let path = Filename.temp_file "acc_log" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Log.save log path;
      let log' = Log.load path in
      Alcotest.(check int) "length survives" (Log.length log) (Log.length log');
      Alcotest.(check bool) "records survive" true (Log.to_list log = Log.to_list log'))

(* --- buffered appends and group commit (DESIGN.md §17) ------------------ *)

(* Buffered policy: appends stage invisibly in the domain buffer; sync makes
   them durable as one batch (one flush), in append order. *)
let test_log_buffered_sync () =
  let log = Log.create ~policy:(Log.Buffered { cap = 64; group = false }) () in
  let l0 = Log.append log (Record.Begin { txn = 1; txn_type = "t"; multi_step = false }) in
  ignore (Log.append log (Record.Commit { txn = 1 }));
  Alcotest.(check int) "buffered append has no lsn" (-1) l0;
  Alcotest.(check int) "invisible before sync" 0 (Log.length log);
  Alcotest.(check int) "no flush yet" 0 (Log.flush_count log);
  Log.sync log;
  Alcotest.(check int) "batch landed" 2 (Log.length log);
  Alcotest.(check int) "one flush for the batch" 1 (Log.flush_count log);
  (match Log.to_list log with
  | [ Record.Begin _; Record.Commit _ ] -> ()
  | _ -> Alcotest.fail "append order lost in the batch");
  (* idle sync is free *)
  Log.sync log;
  Alcotest.(check int) "empty sync does not flush" 1 (Log.flush_count log)

(* A full buffer flushes itself: cap appends cost one flush, not cap. *)
let test_log_buffered_cap_overflow () =
  let cap = 8 in
  let log = Log.create ~policy:(Log.Buffered { cap; group = false }) () in
  for i = 1 to cap - 1 do
    ignore (Log.append log (Record.Commit { txn = i }))
  done;
  Alcotest.(check int) "under cap: still buffered" 0 (Log.length log);
  ignore (Log.append log (Record.Commit { txn = cap }));
  Alcotest.(check int) "cap overflow flushed the batch" cap (Log.length log);
  Alcotest.(check int) "one flush" 1 (Log.flush_count log)

(* flush_all drains every registered domain buffer on a quiesced log. *)
let test_log_flush_all () =
  let log = Log.create ~policy:(Log.Buffered { cap = 64; group = true }) () in
  let domains =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            ignore (Log.append log (Record.Commit { txn = i + 1 }))))
  in
  Array.iter Domain.join domains;
  ignore (Log.append log (Record.Commit { txn = 99 }));
  Log.flush_all log;
  Alcotest.(check int) "every buffer drained" 4 (Log.length log);
  let txns =
    List.sort compare
      (List.filter_map
         (function Record.Commit { txn } -> Some txn | _ -> None)
         (Log.to_list log))
  in
  Alcotest.(check (list int)) "no record lost or duplicated" [ 1; 2; 3; 99 ] txns

(* Group commit under real concurrency: N domains each append-and-sync M
   times; every synced record must be in the log afterwards, and concurrent
   syncs must have merged (fewer flushes than syncs). *)
let test_log_group_commit_concurrent () =
  let log = Log.create ~policy:(Log.Buffered { cap = 1024; group = true }) () in
  let domains = 4 and per = 200 in
  let workers =
    Array.init domains (fun i ->
        Domain.spawn (fun () ->
            for j = 1 to per do
              ignore (Log.append log (Record.Commit { txn = (i * per) + j }));
              Log.sync log
            done))
  in
  Array.iter Domain.join workers;
  Alcotest.(check int) "every synced record durable" (domains * per) (Log.length log);
  let txns =
    List.sort compare
      (List.filter_map
         (function Record.Commit { txn } -> Some txn | _ -> None)
         (Log.to_list log))
  in
  Alcotest.(check (list int)) "no record lost or duplicated"
    (List.init (domains * per) (fun i -> i + 1))
    txns;
  Alcotest.(check bool) "flushes never exceed syncs" true
    (Log.flush_count log <= domains * per)

(* the header check must turn each corruption class into its own message,
   not a marshal crash *)
let test_log_load_rejects () =
  let with_file content f =
    let path = Filename.temp_file "acc_log" ".bin" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out_bin path in
        content oc;
        close_out oc;
        f path)
  in
  let expect_failure label substring path =
    match Log.load path with
    | (_ : Log.t) -> Alcotest.failf "%s: load succeeded" label
    | exception Failure msg ->
        let contains hay needle =
          let lh = String.length hay and ln = String.length needle in
          let rec scan i = i + ln <= lh && (String.sub hay i ln = needle || scan (i + 1)) in
          scan 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s: %S mentions %S" label msg substring)
          true (contains msg substring)
  in
  (* a foreign file: wrong magic *)
  with_file (fun oc -> output_string oc "not a log at all")
    (expect_failure "foreign" "not a WAL file");
  (* shorter than the header *)
  with_file (fun oc -> output_string oc "ACC")
    (expect_failure "short" "not a WAL file");
  (* right magic, unreadable version *)
  with_file (fun oc -> output_string oc "ACCWAL\x00\x00")
    (expect_failure "truncated" "truncated");
  (* right magic, wrong version *)
  with_file (fun oc ->
      output_string oc "ACCWAL\x00\x00";
      output_binary_int oc 999)
    (expect_failure "version" "version 999");
  (* right header, corrupt payload *)
  with_file (fun oc ->
      output_string oc "ACCWAL\x00\x00";
      output_binary_int oc 1;
      output_string oc "garbage")
    (expect_failure "corrupt" "unreadable")

(* --- Record ------------------------------------------------------------- *)

let test_record_invert () =
  let w = w_update 1 10 20 in
  let inv = Record.invert w in
  Alcotest.(check bool) "before/after swapped" true
    (inv.Record.w_before = w.Record.w_after && inv.Record.w_after = w.Record.w_before);
  let ins = w_insert 5 1 in
  let inv_ins = Record.invert ins in
  Alcotest.(check bool) "insert inverts to delete" true
    (inv_ins.Record.w_before <> None && inv_ins.Record.w_after = None)

let test_record_txn_of () =
  Alcotest.(check int) "begin" 7 (Record.txn_of (Record.Begin { txn = 7; txn_type = "x"; multi_step = true }));
  Alcotest.(check int) "write" 8
    (Record.txn_of (Record.Write { txn = 8; write = w_insert 1 1; undo = false }));
  Alcotest.(check int) "step" 9 (Record.txn_of (Record.Step_end { txn = 9; step_index = 1 }));
  Alcotest.(check int) "area" 1 (Record.txn_of (Record.Comp_area { txn = 1; completed_steps = 1; area = [] }));
  Alcotest.(check int) "abort" 2 (Record.txn_of (Record.Abort { txn = 2 }))

(* --- apply_write -------------------------------------------------------- *)

let test_apply_write () =
  let db = fresh_db [ (1, 10) ] in
  Recovery.apply_write db (w_insert 2 5);
  Alcotest.(check int) "insert applied" 5 (qty db 2);
  Recovery.apply_write db (w_update 1 10 99);
  Alcotest.(check int) "update applied" 99 (qty db 1);
  Recovery.apply_write db (w_delete 2 5);
  Alcotest.(check bool) "delete applied" false (has db 2)

(* --- recovery scenarios -------------------------------------------------- *)

let begin_r ?(multi = false) txn = Record.Begin { txn; txn_type = "test"; multi_step = multi }
let write_r ?(undo = false) txn write = Record.Write { txn; write; undo }
let step_r txn i = Record.Step_end { txn; step_index = i }
let commit_r txn = Record.Commit { txn }
let abort_r txn = Record.Abort { txn }

let test_recover_committed () =
  let baseline = fresh_db [ (1, 10) ] in
  let log =
    [ begin_r 1; write_r 1 (w_update 1 10 20); write_r 1 (w_insert 2 7); commit_r 1 ]
  in
  let r = Recovery.recover ~baseline log in
  Alcotest.(check int) "redone update" 20 (qty r.Recovery.db 1);
  Alcotest.(check int) "redone insert" 7 (qty r.Recovery.db 2);
  Alcotest.(check (list int)) "committed" [ 1 ] r.Recovery.committed;
  Alcotest.(check int) "no pending" 0 (List.length r.Recovery.pending);
  (* baseline untouched *)
  Alcotest.(check int) "baseline intact" 10 (qty baseline 1);
  Alcotest.(check bool) "baseline lacks insert" false (has baseline 2)

let test_recover_loser_mid_step () =
  (* flat transaction dies mid-flight: all its writes physically undone *)
  let baseline = fresh_db [ (1, 10); (2, 20) ] in
  let log =
    [ begin_r 1; write_r 1 (w_update 1 10 0); write_r 1 (w_update 2 20 30); write_r 1 (w_delete 2 30) ]
  in
  let r = Recovery.recover ~baseline log in
  Alcotest.(check int) "item 1 restored" 10 (qty r.Recovery.db 1);
  Alcotest.(check int) "item 2 restored" 20 (qty r.Recovery.db 2);
  Alcotest.(check (list int)) "physically undone" [ 1 ] r.Recovery.physically_undone;
  Alcotest.(check int) "no pending" 0 (List.length r.Recovery.pending)

let test_recover_multistep_pending_compensation () =
  (* a multi-step txn finished step 1 (exposed), died during step 2: step 2's
     writes are physically undone; step 1 stands and compensation is pending *)
  let baseline = fresh_db [ (1, 10); (2, 20) ] in
  let log =
    [
      begin_r ~multi:true 1;
      write_r 1 (w_update 1 10 11);
      (* the work area precedes its end-of-step record, as the executor
         writes them: the area binds only once the step is durably complete *)
      Record.Comp_area { txn = 1; completed_steps = 1; area = [ ("item", v_int 1) ] };
      step_r 1 1;
      write_r 1 (w_update 2 20 21);
    ]
  in
  let r = Recovery.recover ~baseline log in
  Alcotest.(check int) "step-1 write survives" 11 (qty r.Recovery.db 1);
  Alcotest.(check int) "step-2 write undone" 20 (qty r.Recovery.db 2);
  (match r.Recovery.pending with
  | [ p ] ->
      Alcotest.(check int) "pending txn" 1 p.Recovery.p_txn;
      Alcotest.(check int) "completed steps" 1 p.Recovery.p_completed_steps;
      Alcotest.(check string) "txn type" "test" p.Recovery.p_txn_type;
      Alcotest.(check bool) "area recovered" true (p.Recovery.p_area = [ ("item", v_int 1) ])
  | _ -> Alcotest.fail "expected one pending compensation");
  Alcotest.(check int) "not physically undone" 0 (List.length r.Recovery.physically_undone)

let test_recover_multistep_before_first_boundary () =
  (* multi-step txn that never finished step 1: nothing exposed, physical undo *)
  let baseline = fresh_db [ (1, 10) ] in
  let log = [ begin_r ~multi:true 1; write_r 1 (w_update 1 10 11) ] in
  let r = Recovery.recover ~baseline log in
  Alcotest.(check int) "restored" 10 (qty r.Recovery.db 1);
  Alcotest.(check (list int)) "undone physically" [ 1 ] r.Recovery.physically_undone;
  Alcotest.(check int) "no pending" 0 (List.length r.Recovery.pending)

let test_recover_interrupted_rollback () =
  (* the crash hits while a step abort was already logging compensation
     records: recovery must finish the job without double-undoing *)
  let baseline = fresh_db [ (1, 10); (2, 20) ] in
  let log =
    [
      begin_r 1;
      write_r 1 (w_update 1 10 11);
      write_r 1 (w_update 2 20 22);
      (* rollback in progress: newest write already undone and logged *)
      write_r ~undo:true 1 (Record.invert (w_update 2 20 22));
    ]
  in
  let r = Recovery.recover ~baseline log in
  Alcotest.(check int) "item 2 single undo" 20 (qty r.Recovery.db 2);
  Alcotest.(check int) "item 1 undone by recovery" 10 (qty r.Recovery.db 1)

let test_recover_aborted_txn_untouched () =
  (* an Abort record means rollback completed before the crash *)
  let baseline = fresh_db [ (1, 10) ] in
  let log =
    [
      begin_r 1;
      write_r 1 (w_update 1 10 11);
      write_r ~undo:true 1 (Record.invert (w_update 1 10 11));
      abort_r 1;
    ]
  in
  let r = Recovery.recover ~baseline log in
  Alcotest.(check int) "value restored by logged undo" 10 (qty r.Recovery.db 1);
  Alcotest.(check (list int)) "resolved" [ 1 ] r.Recovery.already_resolved;
  Alcotest.(check int) "no pending" 0 (List.length r.Recovery.pending)

let test_recover_mixed_txns () =
  let baseline = fresh_db [ (1, 10); (2, 20); (3, 30) ] in
  let log =
    [
      begin_r 1;
      begin_r ~multi:true 2;
      write_r 1 (w_update 1 10 100);
      write_r 2 (w_update 2 20 200);
      step_r 2 1;
      commit_r 1;
      begin_r 3;
      write_r 3 (w_update 3 30 300);
      write_r 2 (w_update 3 300 301);
      (* t3 still active, t2 in step 2 *)
    ]
  in
  let r = Recovery.recover ~baseline log in
  Alcotest.(check int) "t1 committed work" 100 (qty r.Recovery.db 1);
  Alcotest.(check int) "t2 step-1 survives" 200 (qty r.Recovery.db 2);
  (* t2's step-2 write on item 3 undone to 300; then t3's write undone to 30 *)
  Alcotest.(check int) "item 3 fully restored" 30 (qty r.Recovery.db 3);
  Alcotest.(check (list int)) "committed" [ 1 ] r.Recovery.committed;
  Alcotest.(check (list int)) "physical" [ 3 ] r.Recovery.physically_undone;
  Alcotest.(check int) "t2 pending" 1 (List.length r.Recovery.pending)

(* Crash injection: cut the log of a synthetic history at every prefix and
   verify that recovery always yields one of the legal states. *)
let test_area_staged_until_step_end () =
  (* a crash between a work-area record and its step-end must pair the OLD
     area with the OLD completed-step count: the staged area is discarded *)
  let baseline = fresh_db [ (1, 10); (2, 20) ] in
  let log =
    [
      begin_r ~multi:true 1;
      write_r 1 (w_update 1 10 11);
      Record.Comp_area { txn = 1; completed_steps = 1; area = [ ("v", v_int 1) ] };
      step_r 1 1;
      write_r 1 (w_update 2 20 21);
      Record.Comp_area { txn = 1; completed_steps = 2; area = [ ("v", v_int 2) ] };
      (* crash here: step 2's end-of-step record never made it *)
    ]
  in
  let r = Recovery.recover ~baseline log in
  Alcotest.(check int) "step 2 write undone" 20 (qty r.Recovery.db 2);
  (match r.Recovery.pending with
  | [ p ] ->
      Alcotest.(check int) "completed steps = 1" 1 p.Recovery.p_completed_steps;
      Alcotest.(check bool) "area is the step-1 area" true (p.Recovery.p_area = [ ("v", v_int 1) ])
  | _ -> Alcotest.fail "expected one pending");
  (* with the step-end present, the newer area binds *)
  let r2 = Recovery.recover ~baseline (log @ [ step_r 1 2 ]) in
  match r2.Recovery.pending with
  | [ p ] ->
      Alcotest.(check int) "completed steps = 2" 2 p.Recovery.p_completed_steps;
      Alcotest.(check bool) "area is the step-2 area" true (p.Recovery.p_area = [ ("v", v_int 2) ])
  | _ -> Alcotest.fail "expected one pending"

let test_crash_at_every_prefix () =
  let baseline = fresh_db [ (1, 10); (2, 20) ] in
  let full_log =
    [
      begin_r ~multi:true 1;
      write_r 1 (w_update 1 10 11);
      step_r 1 1;
      write_r 1 (w_update 2 20 21);
      step_r 1 2;
      commit_r 1;
    ]
  in
  for cut = 0 to List.length full_log do
    let log = List.filteri (fun i _ -> i < cut) full_log in
    let r = Recovery.recover ~baseline log in
    let q1 = qty r.Recovery.db 1 and q2 = qty r.Recovery.db 2 in
    (* legal states: nothing (10,20); step1 only (11,20); both (11,21) *)
    let legal =
      (q1 = 10 && q2 = 20) || (q1 = 11 && q2 = 20) || (q1 = 11 && q2 = 21)
    in
    Alcotest.(check bool) (Printf.sprintf "legal state at cut %d" cut) true legal;
    (* mid-step crash never leaves a torn step: q2=21 requires step 2 done *)
    if q2 = 21 then Alcotest.(check bool) "step 2 boundary passed" true (cut >= 5)
  done

(* --- checkpoints ---------------------------------------------------------- *)

let test_checkpoint_equivalence () =
  (* recovery from (checkpoint + suffix) = recovery from (baseline + full log) *)
  let baseline = fresh_db [ (1, 10); (2, 20) ] in
  let log = Log.create () in
  let db = Database.copy baseline in
  let apply r =
    ignore (Log.append log r);
    match r with Record.Write { write; _ } -> Recovery.apply_write db write | _ -> ()
  in
  List.iter apply [ begin_r 1; write_r 1 (w_update 1 10 11); commit_r 1 ];
  let cp = Checkpoint.take db log in
  Alcotest.(check int) "position" 3 (Checkpoint.position cp);
  List.iter apply
    [ begin_r ~multi:true 2; write_r 2 (w_update 2 20 21);
      Record.Comp_area { txn = 2; completed_steps = 1; area = [ ("k", v_int 9) ] };
      step_r 2 1; write_r 2 (w_update 1 11 12) ];
  let from_cp = Checkpoint.recover cp log in
  let from_scratch = Recovery.recover ~baseline (Log.to_list log) in
  Alcotest.(check int) "same item 1" (qty from_scratch.Recovery.db 1) (qty from_cp.Recovery.db 1);
  Alcotest.(check int) "same item 2" (qty from_scratch.Recovery.db 2) (qty from_cp.Recovery.db 2);
  Alcotest.(check int) "same pending count" (List.length from_scratch.Recovery.pending)
    (List.length from_cp.Recovery.pending);
  (match from_cp.Recovery.pending with
  | [ p ] ->
      Alcotest.(check int) "pending steps" 1 p.Recovery.p_completed_steps;
      Alcotest.(check bool) "area survived" true (p.Recovery.p_area = [ ("k", v_int 9) ])
  | _ -> Alcotest.fail "expected one pending");
  (* the snapshot is isolated from later mutation *)
  Recovery.apply_write db (w_update 2 21 99);
  Alcotest.(check int) "snapshot isolated" 20
    (qty (Checkpoint.snapshot cp) 2)

(* A logical compensating step logs its writes as compensation records
   (undo = true).  Its own durable Step_end is the compensation's atomic
   commit point: the transaction is resolved even though the final Abort
   record never made the log. *)
let test_recover_comp_step_end_commits () =
  let records =
    [
      begin_r ~multi:true 1;
      write_r 1 (w_update 1 10 20);
      Record.Comp_area { txn = 1; completed_steps = 1; area = [ ("k", v_int 1) ] };
      step_r 1 1;
      (* compensating step: reverses the completed step, then its step-end *)
      write_r ~undo:true 1 (w_update 1 20 10);
      step_r 1 2;
      (* crash before the Abort record *)
    ]
  in
  let r = Recovery.recover ~baseline:(fresh_db [ (1, 10) ]) records in
  Alcotest.(check int) "compensation kept" 10 (qty r.Recovery.db 1);
  Alcotest.(check (list int)) "resolved, not pending" [ 1 ] r.Recovery.already_resolved;
  Alcotest.(check int) "no pending" 0 (List.length r.Recovery.pending)

(* Without that step-end, the compensating step's partial writes are
   physically rewound and the transaction stays pending, so replay restarts
   the compensating step from a clean post-last-step state. *)
let test_recover_comp_partial_rewound () =
  let records =
    [
      begin_r ~multi:true 1;
      write_r 1 (w_update 1 10 20);
      write_r 1 (w_update 2 5 6);
      Record.Comp_area { txn = 1; completed_steps = 1; area = [ ("k", v_int 1) ] };
      step_r 1 1;
      (* compensation in progress: one of two reversals logged, then crash *)
      write_r ~undo:true 1 (w_update 2 6 5);
    ]
  in
  let r = Recovery.recover ~baseline:(fresh_db [ (1, 10); (2, 5) ]) records in
  Alcotest.(check int) "partial comp write rewound" 6 (qty r.Recovery.db 2);
  Alcotest.(check int) "completed step untouched" 20 (qty r.Recovery.db 1);
  match r.Recovery.pending with
  | [ p ] ->
      Alcotest.(check int) "pending after step 1" 1 p.Recovery.p_completed_steps;
      Alcotest.(check bool) "area carried" true (p.Recovery.p_area = [ ("k", v_int 1) ])
  | l -> Alcotest.fail (Printf.sprintf "expected 1 pending, got %d" (List.length l))

let test_checkpoint_save_load () =
  let db = fresh_db [ (1, 10); (2, 20) ] in
  Table.add_index (Database.table db "items") ~name:"by_qty" [ "qty" ];
  let log = Log.create () in
  ignore (Log.append log (begin_r 1));
  ignore (Log.append log (write_r 1 (w_update 1 10 11)));
  Recovery.apply_write db (w_update 1 10 11);
  ignore (Log.append log (commit_r 1));
  let cp = Checkpoint.take db log in
  let path = Filename.temp_file "acc_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Checkpoint.save cp path;
      let cp' = Checkpoint.load path in
      Alcotest.(check int) "position survives" (Checkpoint.position cp) (Checkpoint.position cp');
      Alcotest.(check bool) "snapshot survives" true
        (Database.equal (Checkpoint.snapshot cp) (Checkpoint.snapshot cp'));
      Alcotest.(check bool) "indexes rebuilt" true
        (Table.index_specs (Database.table (Checkpoint.snapshot cp') "items")
        = [ ("by_qty", [ "qty" ]) ]))

let test_checkpoint_manager () =
  let module M = Checkpoint.Manager in
  let baseline = fresh_db [ (1, 10) ] in
  let db = Database.copy baseline in
  let log = Log.create () in
  let mgr = M.create ~every:3 () in
  Alcotest.(check bool) "nothing due on empty log" false (M.maybe_take mgr db log);
  let run_txn txn before after =
    ignore (Log.append log (begin_r txn));
    ignore (Log.append log (write_r txn (w_update 1 before after)));
    Recovery.apply_write db (w_update 1 before after);
    ignore (Log.append log (commit_r txn))
  in
  run_txn 1 10 11;
  Alcotest.(check bool) "due after [every] records" true (M.maybe_take mgr db log);
  (match M.latest mgr with
  | Some c -> Alcotest.(check int) "position at log end" 3 (Checkpoint.position c)
  | None -> Alcotest.fail "no checkpoint installed");
  run_txn 2 11 12;
  run_txn 3 12 13;
  (* recovery from the checkpoint + suffix agrees with the full log *)
  let via_mgr = M.recover mgr ~baseline log in
  let via_full = Recovery.recover ~baseline (Log.to_list log) in
  Alcotest.(check bool) "manager = full recovery" true
    (Database.equal via_mgr.Recovery.db via_full.Recovery.db);
  (* the suffix only mentions transactions begun after the checkpoint *)
  Alcotest.(check (list int)) "suffix commits" [ 2; 3 ] via_mgr.Recovery.committed;
  (* a manager with no checkpoint falls back to the whole log *)
  let empty = M.create ~every:3 () in
  let via_empty = M.recover empty ~baseline log in
  Alcotest.(check bool) "fallback = full recovery" true
    (Database.equal via_empty.Recovery.db via_full.Recovery.db)

let test_checkpoint_engine_guard () =
  let module Executor = Acc_txn.Executor in
  let db = fresh_db [ (1, 10) ] in
  let eng = Executor.create ~sem:Acc_lock.Mode.no_semantics db in
  Alcotest.(check int) "idle" 0 (Executor.active_txns eng);
  let ctx = Executor.begin_txn eng ~txn_type:"t" ~multi_step:false in
  Alcotest.(check int) "one active" 1 (Executor.active_txns eng);
  Alcotest.(check bool) "checkpoint refused while active" true
    (try
       ignore (Executor.checkpoint eng);
       false
     with Invalid_argument _ -> true);
  Executor.abort_physical ctx;
  Alcotest.(check int) "idle again" 0 (Executor.active_txns eng);
  let cp = Executor.checkpoint eng in
  Alcotest.(check bool) "position at log end" true
    (Checkpoint.position cp = Log.length (Executor.log eng))

let suites =
  [
    ( "wal.log",
      [
        Alcotest.test_case "append/get" `Quick test_log_append_get;
        Alcotest.test_case "growth" `Quick test_log_growth;
        Alcotest.test_case "prefix/since" `Quick test_log_prefix;
        Alcotest.test_case "save/load" `Quick test_log_save_load;
        Alcotest.test_case "load rejects foreign/corrupt files" `Quick test_log_load_rejects;
        Alcotest.test_case "buffered: invisible until sync, one flush" `Quick
          test_log_buffered_sync;
        Alcotest.test_case "buffered: cap overflow self-flushes" `Quick
          test_log_buffered_cap_overflow;
        Alcotest.test_case "buffered: flush_all drains every domain" `Quick
          test_log_flush_all;
        Alcotest.test_case "group commit: 4 domains, nothing lost, syncs merge" `Quick
          test_log_group_commit_concurrent;
      ] );
    ( "wal.record",
      [
        Alcotest.test_case "invert" `Quick test_record_invert;
        Alcotest.test_case "txn_of" `Quick test_record_txn_of;
      ] );
    ( "wal.recovery",
      [
        Alcotest.test_case "apply_write" `Quick test_apply_write;
        Alcotest.test_case "committed redone" `Quick test_recover_committed;
        Alcotest.test_case "loser mid-step undone" `Quick test_recover_loser_mid_step;
        Alcotest.test_case "multi-step pending compensation" `Quick
          test_recover_multistep_pending_compensation;
        Alcotest.test_case "multi-step before first boundary" `Quick
          test_recover_multistep_before_first_boundary;
        Alcotest.test_case "interrupted rollback" `Quick test_recover_interrupted_rollback;
        Alcotest.test_case "aborted txn untouched" `Quick test_recover_aborted_txn_untouched;
        Alcotest.test_case "mixed transactions" `Quick test_recover_mixed_txns;
        Alcotest.test_case "work area staged until step end" `Quick
          test_area_staged_until_step_end;
        Alcotest.test_case "crash at every prefix" `Quick test_crash_at_every_prefix;
        Alcotest.test_case "comp step-end commits compensation" `Quick
          test_recover_comp_step_end_commits;
        Alcotest.test_case "partial compensation rewound" `Quick
          test_recover_comp_partial_rewound;
      ] );
    ( "wal.checkpoint",
      [
        Alcotest.test_case "checkpoint+suffix = full recovery" `Quick
          test_checkpoint_equivalence;
        Alcotest.test_case "save/load roundtrip" `Quick test_checkpoint_save_load;
        Alcotest.test_case "manager cadence + recovery" `Quick test_checkpoint_manager;
        Alcotest.test_case "engine guard" `Quick test_checkpoint_engine_guard;
      ] );
  ]
