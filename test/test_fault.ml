(* Tests for acc.fault and the crash-restart harness: the crash-point
   registry and arming modes, the harness's sweep/chaos invariant checks,
   and a crash-equivalence property — a run killed at a random registered
   point, recovered and compensation-replayed, must end in a state some
   crash-free schedule of the same inputs could have produced. *)

open Acc_tpcc
module Fault = Acc_fault.Fault
module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Log = Acc_wal.Log
module Record = Acc_wal.Record
module Recovery = Acc_wal.Recovery
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Runtime = Acc_core.Runtime
module Replay = Acc_core.Replay

(* Unit tests reuse engine-registered points rather than registering fresh
   ones: the registry is global and append-only, and [Crash_harness.sweep]
   (exercised below, same process) reports any registered point the TPC-C
   workload never trips as a coverage failure. *)
let release_pt = Fault.register "exec.release"

let with_faults f = Fun.protect ~finally:Fault.disarm f

(* --- registry and arming -------------------------------------------------- *)

let test_registry () =
  let names = Fault.registered () in
  Alcotest.(check (list string)) "re-register is idempotent" names
    (ignore (Fault.register "exec.release");
     Fault.registered ());
  List.iter
    (fun n -> Alcotest.(check bool) ("registered: " ^ n) true (List.mem n names))
    [
      "wal.append.begin"; "wal.append.write"; "wal.append.undo"; "wal.append.step_end";
      "wal.append.comp_area"; "wal.append.commit"; "wal.append.abort"; "exec.step_area";
      "exec.commit.durable"; "exec.release"; "comp.write"; "comp.begin";
    ]

let test_observe_counts () =
  with_faults (fun () ->
      Fault.observe ();
      for _ = 1 to 5 do
        Fault.trip release_pt
      done;
      Alcotest.(check int) "trips counted" 5 (Fault.trips release_pt);
      Alcotest.(check int) "trips_of agrees" 5 (Fault.trips_of "exec.release");
      Fault.disarm ();
      Alcotest.(check int) "disarm resets counters" 0 (Fault.trips release_pt);
      Fault.trip release_pt;
      Alcotest.(check int) "disarmed trips not counted" 0 (Fault.trips release_pt))

let test_arm_exact_hit () =
  with_faults (fun () ->
      let other = Fault.register "exec.step_area" in
      Fault.arm ~point:"exec.release" ~hit:3;
      Fault.trip release_pt;
      Fault.trip other;
      (* a different point never fires *)
      Fault.trip release_pt;
      (match Fault.trip release_pt with
      | () -> Alcotest.fail "expected a crash at hit 3"
      | exception (Fault.Crash { point; hit } as e) ->
          Alcotest.(check string) "crash names the point" "exec.release" point;
          Alcotest.(check int) "crash at the armed hit" 3 hit;
          Alcotest.(check bool) "is_crash" true (Fault.is_crash e);
          Alcotest.(check bool) "is_crash is specific" false (Fault.is_crash Exit));
      (* At-mode fires only at the exact hit, so a restarted process (which
         keeps counting past it) runs on *)
      Fault.trip release_pt;
      Alcotest.(check int) "counting continues past the hit" 4 (Fault.trips release_pt))

let test_arm_validation () =
  let invalid f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "unknown point" true
    (invalid (fun () -> Fault.arm ~point:"no.such.point" ~hit:1));
  Alcotest.(check bool) "hit < 1" true (invalid (fun () -> Fault.arm ~point:"exec.release" ~hit:0));
  Alcotest.(check bool) "trips_of unknown" true (invalid (fun () -> ignore (Fault.trips_of "no")));
  Alcotest.(check bool) "chaos p out of range" true
    (invalid (fun () -> Fault.arm_chaos ~seed:1 ~p:1.5))

let test_chaos_deterministic () =
  with_faults (fun () ->
      let trips_until_crash seed =
        Fault.arm_chaos ~seed ~p:0.1;
        let n = ref 0 in
        (try
           while !n < 10_000 do
             Fault.trip release_pt;
             incr n
           done
         with Fault.Crash _ -> ());
        Fault.disarm ();
        !n
      in
      let a = trips_until_crash 5 in
      Alcotest.(check bool) "chaos fires" true (a < 10_000);
      Alcotest.(check int) "same seed, same crash" a (trips_until_crash 5))

let test_step_faults () =
  with_faults (fun () ->
      Fault.arm_step_faults ~seed:1 ~p:1.0;
      Alcotest.(check bool) "p=1 fires" true
        (try
           Fault.step_trip ();
           false
         with Fault.Step_fault -> true);
      Fault.disarm ();
      Fault.step_trip ();
      (* disarmed: no raise *)
      Fault.arm_step_faults ~seed:1 ~p:0.0;
      for _ = 1 to 100 do
        Fault.step_trip ()
      done)

let test_configure_from_env () =
  let clear () =
    Unix.putenv "ACC_CRASHPOINT" "";
    Unix.putenv "ACC_STEP_FAULTS" ""
  in
  with_faults (fun () ->
      Fun.protect ~finally:clear (fun () ->
          clear ();
          Unix.putenv "ACC_CRASHPOINT" "exec.release:2";
          Fault.configure_from_env ();
          Fault.trip release_pt;
          Alcotest.(check bool) "point:hit form" true
            (try
               Fault.trip release_pt;
               false
             with Fault.Crash { hit = 2; _ } -> true);
          Fault.disarm ();
          clear ();
          Unix.putenv "ACC_CRASHPOINT" "chaos:1.0:9";
          Fault.configure_from_env ();
          Alcotest.(check bool) "chaos:p:seed form" true
            (try
               Fault.trip release_pt;
               false
             with Fault.Crash _ -> true);
          Fault.disarm ();
          clear ();
          Unix.putenv "ACC_STEP_FAULTS" "1.0:3";
          Fault.configure_from_env ();
          Alcotest.(check bool) "step-fault form" true
            (try
               Fault.step_trip ();
               false
             with Fault.Step_fault -> true);
          Fault.disarm ();
          clear ();
          Fault.configure_from_env ();
          Fault.trip release_pt;
          Alcotest.(check int) "empty vars leave faults disarmed" 0 (Fault.trips release_pt)))

(* --- message-fault specs (the dist transport's arming surface) ------------ *)

let test_netfault_parse () =
  let s = Fault.Netfault.parse "drop=0.1,dup=0.05,seed=7,ops=decide+prepare" in
  Alcotest.(check (float 0.)) "drop" 0.1 s.Fault.Netfault.drop;
  Alcotest.(check (float 0.)) "dup" 0.05 s.Fault.Netfault.dup;
  Alcotest.(check (float 0.)) "delay defaults to 0" 0. s.Fault.Netfault.delay;
  Alcotest.(check int) "seed" 7 s.Fault.Netfault.seed;
  Alcotest.(check (list string)) "ops filter" [ "decide"; "prepare" ]
    (List.sort compare s.Fault.Netfault.ops);
  Alcotest.(check bool) "applies to a listed op" true (Fault.Netfault.applies s ~op:"decide");
  Alcotest.(check bool) "ignores an unlisted op" false (Fault.Netfault.applies s ~op:"ack");
  let all = Fault.Netfault.parse "all=0.05" in
  List.iter
    (fun k ->
      let v =
        match k with
        | "drop" -> all.Fault.Netfault.drop
        | "dup" -> all.Fault.Netfault.dup
        | "delay" -> all.Fault.Netfault.delay
        | "reorder" -> all.Fault.Netfault.reorder
        | _ -> all.Fault.Netfault.disconnect
      in
      Alcotest.(check (float 0.)) ("all sets " ^ k) 0.05 v)
    Fault.Netfault.kinds;
  Alcotest.(check bool) "empty ops applies everywhere" true
    (Fault.Netfault.applies all ~op:"vote");
  Alcotest.(check bool) "none is none" true (Fault.Netfault.is_none Fault.Netfault.none);
  Alcotest.(check bool) "a live spec is not none" false (Fault.Netfault.is_none s);
  (* to_string is parse's inverse *)
  Alcotest.(check bool) "round-trips through to_string" true
    (Fault.Netfault.parse (Fault.Netfault.to_string s) = s);
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "unknown key" true
    (invalid (fun () -> Fault.Netfault.parse "bogus=1"));
  Alcotest.(check bool) "p > 1" true (invalid (fun () -> Fault.Netfault.parse "drop=1.5"));
  Alcotest.(check bool) "p < 0" true (invalid (fun () -> Fault.Netfault.parse "dup=-0.1"));
  Alcotest.(check bool) "bare word" true (invalid (fun () -> Fault.Netfault.parse "drop"))

let test_netfault_of_env () =
  let clear () = Unix.putenv "ACC_NETFAULT" "" in
  Fun.protect ~finally:clear (fun () ->
      clear ();
      Alcotest.(check bool) "empty var is None" true (Fault.Netfault.of_env () = None);
      Unix.putenv "ACC_NETFAULT" "drop=0.25,seed=3";
      match Fault.Netfault.of_env () with
      | None -> Alcotest.fail "set var ignored"
      | Some s ->
          Alcotest.(check (float 0.)) "drop from env" 0.25 s.Fault.Netfault.drop;
          Alcotest.(check int) "seed from env" 3 s.Fault.Netfault.seed)

(* --- crash-restart harness ------------------------------------------------ *)

let small_config =
  { Crash_harness.default_config with txns = 20; hits_per_point = 1; checkpoint_every = 8 }

let check_results results =
  List.iter
    (fun r ->
      if Crash_harness.failed r then
        Alcotest.failf "%s" (Format.asprintf "%a" Crash_harness.pp_result r))
    results

let test_sweep_smoke () =
  let results = Crash_harness.sweep ~config:small_config () in
  check_results results;
  Alcotest.(check bool) "sweep injected crashes" true
    (List.exists (fun r -> r.Crash_harness.r_crashes > 0) results)

let test_chaos_smoke () =
  let config = { small_config with txns = 12; chaos_p = 0.01 } in
  check_results [ Crash_harness.chaos ~config ~seed:1 () ]

(* --- crash-equivalence property ------------------------------------------- *)

(* Kill a run at a registered point, recover from (baseline, log), replay
   the pending compensation; then build the crash-free reference: the same
   inputs up to the crashed one, which is (a) re-run whole if its Commit
   record was durable, (b) run with a programmatic abort after its last
   durable step if recovery reported it pending — compensation replay and an
   inline abort-after-step-[k] must coincide — or (c) skipped if it left no
   completed step (physical undo ≡ never ran).  The two final states must
   agree, except that history's surrogate h_id may differ (the process-wide
   sequence also counts inserts the crash discarded), so history is compared
   as a multiset of its other columns. *)

type crash_outcome =
  | Ran_all
  | Crashed_at of { at : int; committed : bool; pending : Recovery.pending list }

let quiet_env seed =
  { (Txns.default_env ~seed Params.default) with Txns.new_order_abort_rate = 0. }

let run_input eng env input =
  Schedule.run eng [ (fun () -> ignore (Txns.run_acc eng env input)) ]

let run_crashed ~seed ~inputs ~point ~hit =
  Fault.disarm ();
  Txns.reset_history_seq ();
  let db = Load.populate ~seed Params.default in
  let baseline = Database.copy db in
  let eng = Executor.create ~sem:Txns.semantics db in
  let env = quiet_env seed in
  Fault.arm ~point ~hit;
  let rec go i =
    if i >= Array.length inputs then begin
      Fault.disarm ();
      (Executor.db eng, Ran_all)
    end
    else
      let start_lsn = Log.length (Executor.log eng) in
      match run_input eng env inputs.(i) with
      | () -> go (i + 1)
      | exception Fault.Crash _ ->
          Fault.disarm ();
          let committed =
            List.exists
              (function Record.Commit _ -> true | _ -> false)
              (Log.appended_since (Executor.log eng) start_lsn)
          in
          let rep = Recovery.recover ~baseline (Log.to_list (Executor.log eng)) in
          let eng' = Executor.create ~sem:Txns.semantics (Database.copy rep.Recovery.db) in
          List.iter (Replay.replay_one eng') rep.Recovery.pending;
          (Executor.db eng', Crashed_at { at = i; committed; pending = rep.Recovery.pending })
  in
  Fun.protect ~finally:Fault.disarm (fun () -> go 0)

let run_reference ~seed ~inputs outcome =
  Txns.reset_history_seq ();
  let db = Load.populate ~seed Params.default in
  let eng = Executor.create ~sem:Txns.semantics db in
  let env = quiet_env seed in
  (match outcome with
  | Ran_all -> Array.iter (run_input eng env) inputs
  | Crashed_at { at; committed; pending } ->
      for i = 0 to at - 1 do
        run_input eng env inputs.(i)
      done;
      if committed then run_input eng env inputs.(at)
      else (
        match pending with
        | [] -> () (* no completed step survived: as if it never ran *)
        | [ p ] -> (
            match Txns.instance env inputs.(at) with
            | Some inst ->
                Schedule.run eng
                  [
                    (fun () ->
                      ignore (Runtime.run ~abort_at:p.Recovery.p_completed_steps eng inst));
                  ]
            | None -> Alcotest.fail "pending compensation for a non-decomposed input")
        | _ -> Alcotest.fail "multiple pending from a single-fiber run"));
  Executor.db eng

let history_multiset db =
  Table.scan (Database.table db "history")
  |> List.map (fun row -> Array.to_list (Array.sub row 1 (Array.length row - 1)))
  |> List.sort compare

let db_equiv a b =
  List.sort compare (Database.table_names a) = List.sort compare (Database.table_names b)
  && List.for_all
       (fun name ->
         if name = "history" then history_multiset a = history_multiset b
         else Table.equal (Database.table a name) (Database.table b name))
       (Database.table_names a)

(* Points a fault-free TPC-C run passes through (the comp.* and undo points
   need an abort in flight; the sweep above covers those). *)
let crashable_points =
  [|
    "wal.append.begin"; "wal.append.write"; "wal.append.step_end"; "wal.append.comp_area";
    "wal.append.commit"; "exec.step_area"; "exec.commit.durable"; "exec.release";
  |]

let prop_crash_equivalence =
  QCheck2.Test.make ~name:"fault: crash+recover+replay = a crash-free schedule" ~count:20
    QCheck2.Gen.(
      quad (int_range 0 1000) (int_range 4 10)
        (int_range 0 (Array.length crashable_points - 1))
        (int_range 1 60))
    (fun (seed, txns, pi, hit) ->
      let point = crashable_points.(pi) in
      let cfg =
        { Crash_harness.default_config with seed; txns; abort_rate = 0.; step_fault_p = 0. }
      in
      let inputs = Crash_harness.gen_inputs cfg in
      let crashed_db, outcome = run_crashed ~seed ~inputs ~point ~hit in
      let reference_db = run_reference ~seed ~inputs outcome in
      db_equiv crashed_db reference_db
      && Consistency.check crashed_db = [])

let suites =
  [
    ( "fault.inject",
      [
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "observe counts" `Quick test_observe_counts;
        Alcotest.test_case "arm fires at exact hit" `Quick test_arm_exact_hit;
        Alcotest.test_case "arm validation" `Quick test_arm_validation;
        Alcotest.test_case "chaos is seed-deterministic" `Quick test_chaos_deterministic;
        Alcotest.test_case "step faults" `Quick test_step_faults;
        Alcotest.test_case "configure from env" `Quick test_configure_from_env;
        Alcotest.test_case "netfault spec parse/print" `Quick test_netfault_parse;
        Alcotest.test_case "netfault from ACC_NETFAULT" `Quick test_netfault_of_env;
      ] );
    ( "fault.harness",
      [
        Alcotest.test_case "sweep survives every crash point" `Slow test_sweep_smoke;
        Alcotest.test_case "chaos seed survives" `Slow test_chaos_smoke;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xFA017 |])
          prop_crash_equivalence;
      ] );
  ]
