(* Tests for acc.util: PRNG determinism/distribution and statistics. *)

module Prng = Acc_util.Prng
module Stats = Acc_util.Stats

let check_float = Alcotest.(check (float 1e-9))

(* --- Prng ------------------------------------------------------------- *)

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_copy_replays () =
  let g = Prng.create ~seed:7 in
  ignore (Prng.bits64 g);
  let h = Prng.copy g in
  for _ = 1 to 20 do
    Alcotest.(check int64) "copy replays" (Prng.bits64 g) (Prng.bits64 h)
  done

let test_split_independent () =
  let g = Prng.create ~seed:9 in
  let child = Prng.split g in
  (* The child stream and the parent's continued stream should not be
     identical. *)
  let same = ref true in
  for _ = 1 to 8 do
    if not (Int64.equal (Prng.bits64 g) (Prng.bits64 child)) then same := false
  done;
  Alcotest.(check bool) "split stream differs" false !same

let test_int_bounds () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_in_bounds () =
  let g = Prng.create ~seed:4 in
  for _ = 1 to 1000 do
    let v = Prng.int_in g (-3) 5 in
    Alcotest.(check bool) "in [-3,5]" true (v >= -3 && v <= 5)
  done

let test_int_covers_range () =
  let g = Prng.create ~seed:5 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int g 5) <- true
  done;
  Alcotest.(check bool) "all 5 values hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let g = Prng.create ~seed:6 in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_uniform_mean () =
  let g = Prng.create ~seed:8 in
  let t = Stats.Tally.create () in
  for _ = 1 to 20_000 do
    Stats.Tally.add t (Prng.float g 1.0)
  done;
  let m = Stats.Tally.mean t in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (m -. 0.5) < 0.01)

let test_exponential_mean () =
  let g = Prng.create ~seed:10 in
  let t = Stats.Tally.create () in
  for _ = 1 to 50_000 do
    Stats.Tally.add t (Prng.exponential g ~mean:3.0)
  done;
  let m = Stats.Tally.mean t in
  Alcotest.(check bool) "mean near 3.0" true (Float.abs (m -. 3.0) < 0.1);
  Alcotest.(check bool) "all positive" true (Stats.Tally.min t >= 0.)

let test_chance_extremes () =
  let g = Prng.create ~seed:11 in
  Alcotest.(check bool) "p=0 never" false (Prng.chance g 0.);
  Alcotest.(check bool) "p=1 always" true (Prng.chance g 1.);
  Alcotest.(check bool) "p<0 never" false (Prng.chance g (-0.5));
  Alcotest.(check bool) "p>1 always" true (Prng.chance g 1.5)

let test_chance_rate () =
  let g = Prng.create ~seed:12 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.chance g 0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.25" true (Float.abs (rate -. 0.25) < 0.02)

let test_permutation () =
  let g = Prng.create ~seed:13 in
  let p = Prng.permutation g 10 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 10 Fun.id) sorted

let test_shuffle_preserves_elements () =
  let g = Prng.create ~seed:14 in
  let a = [| 1; 2; 3; 4; 5; 6 |] in
  let b = Array.copy a in
  Prng.shuffle g b;
  Array.sort compare b;
  Alcotest.(check (array int)) "multiset preserved" a b

let test_strings () =
  let g = Prng.create ~seed:15 in
  for _ = 1 to 100 do
    let s = Prng.alpha_string g ~min:3 ~max:8 in
    Alcotest.(check bool) "alpha len" true (String.length s >= 3 && String.length s <= 8);
    String.iter (fun c -> Alcotest.(check bool) "alpha char" true (c >= 'a' && c <= 'z')) s
  done;
  let n = Prng.numeric_string g 6 in
  Alcotest.(check int) "numeric len" 6 (String.length n);
  String.iter (fun c -> Alcotest.(check bool) "digit" true (c >= '0' && c <= '9')) n

let test_choose () =
  let g = Prng.create ~seed:16 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    let v = Prng.choose g arr in
    Alcotest.(check bool) "member" true (Array.mem v arr)
  done

(* --- Stats ------------------------------------------------------------ *)

let test_tally_basic () =
  let t = Stats.Tally.create () in
  List.iter (Stats.Tally.add t) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Stats.Tally.count t);
  check_float "total" 10. (Stats.Tally.total t);
  check_float "mean" 2.5 (Stats.Tally.mean t);
  check_float "min" 1. (Stats.Tally.min t);
  check_float "max" 4. (Stats.Tally.max t);
  check_float "variance" (5. /. 3.) (Stats.Tally.variance t)

let test_tally_empty () =
  let t = Stats.Tally.create () in
  Alcotest.(check int) "count" 0 (Stats.Tally.count t);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Tally.mean t));
  Alcotest.(check bool) "percentile nan" true (Float.is_nan (Stats.Tally.percentile t 0.5))

let test_tally_single () =
  let t = Stats.Tally.create () in
  Stats.Tally.add t 7.;
  check_float "mean" 7. (Stats.Tally.mean t);
  check_float "variance" 0. (Stats.Tally.variance t);
  check_float "p50" 7. (Stats.Tally.percentile t 0.5)

let test_percentiles () =
  let t = Stats.Tally.create () in
  (* insert shuffled to make sure sorting happens *)
  List.iter (Stats.Tally.add t) [ 30.; 10.; 50.; 20.; 40. ];
  check_float "p0" 10. (Stats.Tally.percentile t 0.);
  check_float "p50" 30. (Stats.Tally.percentile t 0.5);
  check_float "p100" 50. (Stats.Tally.percentile t 1.0);
  check_float "p25" 20. (Stats.Tally.percentile t 0.25);
  check_float "p oob low" 10. (Stats.Tally.percentile t (-1.));
  check_float "p oob high" 50. (Stats.Tally.percentile t 2.)

let test_percentile_interpolation () =
  let t = Stats.Tally.create () in
  List.iter (Stats.Tally.add t) [ 0.; 10. ];
  check_float "p50 interpolated" 5. (Stats.Tally.percentile t 0.5);
  check_float "p75 interpolated" 7.5 (Stats.Tally.percentile t 0.75)

let test_percentile_after_add () =
  (* The sorted cache must be invalidated by a subsequent add. *)
  let t = Stats.Tally.create () in
  Stats.Tally.add t 1.;
  check_float "p100 = 1" 1. (Stats.Tally.percentile t 1.0);
  Stats.Tally.add t 9.;
  check_float "p100 = 9 after add" 9. (Stats.Tally.percentile t 1.0)

let test_merge () =
  let a = Stats.Tally.create () and b = Stats.Tally.create () in
  List.iter (Stats.Tally.add a) [ 1.; 2. ];
  List.iter (Stats.Tally.add b) [ 3.; 4.; 5. ];
  let m = Stats.Tally.merge a b in
  Alcotest.(check int) "merged count" 5 (Stats.Tally.count m);
  check_float "merged mean" 3. (Stats.Tally.mean m);
  (* originals untouched *)
  Alcotest.(check int) "a count" 2 (Stats.Tally.count a);
  Alcotest.(check int) "b count" 3 (Stats.Tally.count b)

let test_welford_against_naive () =
  let g = Prng.create ~seed:17 in
  let t = Stats.Tally.create () in
  let xs = List.init 1000 (fun _ -> Prng.float g 100.) in
  List.iter (Stats.Tally.add t) xs;
  let n = float_of_int (List.length xs) in
  let mean = List.fold_left ( +. ) 0. xs /. n in
  let var = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.) in
  Alcotest.(check bool) "mean matches naive" true (Float.abs (mean -. Stats.Tally.mean t) < 1e-6);
  Alcotest.(check bool)
    "variance matches naive" true
    (Float.abs (var -. Stats.Tally.variance t) /. var < 1e-9)

let test_counter () =
  let c = Stats.Counter.create () in
  Alcotest.(check int) "absent is 0" 0 (Stats.Counter.get c "commits");
  Stats.Counter.incr c "commits";
  Stats.Counter.incr c "commits";
  Stats.Counter.add c "aborts" 5;
  Alcotest.(check int) "commits" 2 (Stats.Counter.get c "commits");
  Alcotest.(check int) "aborts" 5 (Stats.Counter.get c "aborts");
  Alcotest.(check (list (pair string int)))
    "sorted dump"
    [ ("aborts", 5); ("commits", 2) ]
    (Stats.Counter.to_list c)

(* --- qcheck properties ------------------------------------------------ *)

let prop_int_in_range =
  QCheck2.Test.make ~name:"prng: int_in stays in range" ~count:500
    QCheck2.Gen.(triple int (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, span) ->
      let g = Prng.create ~seed in
      let v = Prng.int_in g lo (lo + span) in
      v >= lo && v <= lo + span)

let prop_tally_mean_bounded =
  QCheck2.Test.make ~name:"stats: min <= mean <= max" ~count:500
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let t = Stats.Tally.create () in
      List.iter (Stats.Tally.add t) xs;
      let m = Stats.Tally.mean t in
      m >= Stats.Tally.min t -. 1e-9 && m <= Stats.Tally.max t +. 1e-9)

let prop_percentile_monotone =
  QCheck2.Test.make ~name:"stats: percentile monotone in p" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 50) (float_bound_inclusive 100.))
        (pair (float_bound_inclusive 1.) (float_bound_inclusive 1.)))
    (fun (xs, (p1, p2)) ->
      let t = Stats.Tally.create () in
      List.iter (Stats.Tally.add t) xs;
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.Tally.percentile t lo <= Stats.Tally.percentile t hi +. 1e-9)

let suites =
  [
    ( "util.prng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "copy replays" `Quick test_copy_replays;
        Alcotest.test_case "split independent" `Quick test_split_independent;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
        Alcotest.test_case "int covers range" `Quick test_int_covers_range;
        Alcotest.test_case "float bounds" `Quick test_float_bounds;
        Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
        Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
        Alcotest.test_case "chance rate" `Quick test_chance_rate;
        Alcotest.test_case "permutation" `Quick test_permutation;
        Alcotest.test_case "shuffle preserves elements" `Quick test_shuffle_preserves_elements;
        Alcotest.test_case "random strings" `Quick test_strings;
        Alcotest.test_case "choose membership" `Quick test_choose;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_int_in_range;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "tally basic" `Quick test_tally_basic;
        Alcotest.test_case "tally empty" `Quick test_tally_empty;
        Alcotest.test_case "tally single" `Quick test_tally_single;
        Alcotest.test_case "percentiles" `Quick test_percentiles;
        Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
        Alcotest.test_case "percentile cache invalidation" `Quick test_percentile_after_add;
        Alcotest.test_case "merge" `Quick test_merge;
        Alcotest.test_case "welford vs naive" `Quick test_welford_against_naive;
        Alcotest.test_case "counter" `Quick test_counter;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_tally_mean_bounded;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_percentile_monotone;
      ] );
  ]
