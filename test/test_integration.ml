(* End-to-end integration tests: the simulation driver running both systems,
   determinism, semantic correctness at quiescence, and the qualitative
   orderings the paper's evaluation rests on. *)

open Acc_tpcc
module Experiment = Acc_harness.Experiment
module Tally = Acc_util.Stats.Tally

let small cfg = { cfg with Driver.horizon = 120.0; Driver.warmup = 15.0 }

let base_cfg =
  small
    {
      Driver.default_config with
      Driver.seed = 13;
      terminals = 12;
      servers = 3;
      think_mean = 5.0;
      cpu_per_unit = 0.005;
    }

let test_driver_baseline () =
  let r = Driver.run { base_cfg with Driver.system = Driver.Baseline } in
  Alcotest.(check bool) "completed some work" true (r.Driver.completed > 50);
  Alcotest.(check (list string)) "consistent at quiescence" [] r.Driver.violations;
  Alcotest.(check bool) "responses recorded" true (Tally.count r.Driver.response > 0);
  Alcotest.(check bool) "cpu busy" true (r.Driver.cpu_utilization > 0.01)

let test_driver_acc () =
  let r = Driver.run { base_cfg with Driver.system = Driver.Acc } in
  Alcotest.(check bool) "completed some work" true (r.Driver.completed > 50);
  Alcotest.(check (list string)) "consistent at quiescence" [] r.Driver.violations;
  Alcotest.(check bool) "some multi-step commits happened" true
    (List.mem_assoc "new_order" r.Driver.per_type)

let test_driver_deterministic () =
  let r1 = Driver.run { base_cfg with Driver.system = Driver.Acc } in
  let r2 = Driver.run { base_cfg with Driver.system = Driver.Acc } in
  Alcotest.(check int) "same completions" r1.Driver.completed r2.Driver.completed;
  Alcotest.(check (float 1e-12)) "same mean response" (Driver.mean_response r1)
    (Driver.mean_response r2);
  Alcotest.(check int) "same deadlocks" r1.Driver.deadlock_victims r2.Driver.deadlock_victims

let test_driver_seed_sensitivity () =
  let r1 = Driver.run { base_cfg with Driver.system = Driver.Acc } in
  let r2 = Driver.run { base_cfg with Driver.system = Driver.Acc; Driver.seed = 14 } in
  Alcotest.(check bool) "different seeds differ" true
    (Driver.mean_response r1 <> Driver.mean_response r2)

let test_forced_abort_rate () =
  (* ~1% of new-orders must abort; over a long run the count is positive and
     small *)
  let r =
    Driver.run
      {
        base_cfg with
        Driver.system = Driver.Acc;
        Driver.horizon = 400.0;
        terminals = 20;
        seed = 5;
      }
  in
  let new_orders =
    match List.assoc_opt "new_order" r.Driver.per_type with
    | Some t -> Tally.count t
    | None -> 0
  in
  Alcotest.(check bool) "some forced aborts" true (r.Driver.forced_aborts > 0);
  Alcotest.(check bool) "about 1 percent" true
    (r.Driver.forced_aborts < max 8 (new_orders / 20));
  Alcotest.(check (list string)) "still consistent" [] r.Driver.violations

(* the three load regimes the paper's conclusions rest on, at fixed seeds *)

let avg_ratio ~settings =
  let p = Experiment.measure settings in
  Experiment.response_ratio p

let quick_settings =
  {
    Experiment.default_settings with
    Experiment.seeds = [ 3; 17 ];
    horizon = 250.0;
    warmup = 25.0;
  }

let test_low_contention_overhead () =
  (* few terminals: the ACC's extra work makes it slower (ratio < 1) *)
  let ratio = avg_ratio ~settings:{ quick_settings with Experiment.terminals = 5 } in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f < 1 at low contention" ratio)
    true (ratio < 1.0)

let test_high_contention_win () =
  (* many terminals: lock contention dominates and the ACC wins (ratio > 1) *)
  let ratio = avg_ratio ~settings:{ quick_settings with Experiment.terminals = 50 } in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f > 1 at high contention" ratio)
    true (ratio > 1.0)

let test_single_server_bottleneck () =
  (* one server: CPU is the bottleneck, the ACC's overhead loses *)
  let ratio =
    avg_ratio
      ~settings:{ quick_settings with Experiment.terminals = 40; Experiment.servers = 1 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f < 1 with a single server" ratio)
    true (ratio < 1.0)

let test_compute_time_amplifies () =
  (* inter-statement compute time lengthens lock holds: the ACC's advantage
     grows markedly *)
  let plain = avg_ratio ~settings:{ quick_settings with Experiment.terminals = 40 } in
  let computed =
    avg_ratio
      ~settings:
        { quick_settings with Experiment.terminals = 40; Experiment.compute_between = 0.004 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "compute time amplifies (%.3f -> %.3f)" plain computed)
    true
    (computed > plain)

let test_crash_recovery_from_driver_log () =
  (* a real concurrent history: recover from prefixes of the actual driver
     log and complete the pending compensations *)
  let params = Params.default in
  let baseline = Load.populate ~seed:13 params in
  let r = Driver.run { base_cfg with Driver.system = Driver.Acc } in
  ignore r;
  (* Driver builds its own db; rebuild the same history here for the log *)
  let eng = Acc_txn.Executor.create ~sem:Txns.semantics (Acc_relation.Database.copy baseline) in
  let env = Txns.default_env ~seed:13 params in
  Acc_txn.Schedule.run ~policy:Acc_core.Runtime.victim_policy eng
    [
      (fun () ->
        for _ = 1 to 12 do
          ignore (Txns.run_acc eng env (Txns.gen_input env))
        done);
    ];
  let log = Acc_txn.Executor.log eng in
  let n = Acc_wal.Log.length log in
  (* sample prefixes: every 7th cut plus the ends *)
  let cuts = List.init ((n / 7) + 1) (fun i -> i * 7) @ [ n ] in
  List.iter
    (fun cut ->
      let db = Recovery_comp.recover_and_compensate ~baseline (Acc_wal.Log.prefix log cut) in
      match Consistency.check db with
      | [] -> ()
      | problems ->
          Alcotest.fail (Printf.sprintf "cut %d: %s" cut (String.concat "; " problems)))
    cuts

let test_full_scale_driver () =
  (* the Rev 3.1 cardinalities end-to-end: both systems, consistent *)
  List.iter
    (fun system ->
      let r =
        Driver.run
          {
            base_cfg with
            Driver.system;
            Driver.params = Params.full;
            horizon = 60.0;
            warmup = 10.0;
            terminals = 10;
          }
      in
      Alcotest.(check bool) "worked" true (r.Driver.completed > 20);
      Alcotest.(check (list string)) "consistent" [] r.Driver.violations)
    [ Driver.Baseline; Driver.Acc ]

let suites =
  [
    ( "integration.driver",
      [
        Alcotest.test_case "baseline run" `Quick test_driver_baseline;
        Alcotest.test_case "acc run" `Quick test_driver_acc;
        Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_driver_seed_sensitivity;
        Alcotest.test_case "forced abort rate" `Slow test_forced_abort_rate;
        Alcotest.test_case "crash recovery from history" `Slow
          test_crash_recovery_from_driver_log;
        Alcotest.test_case "full-scale (Rev 3.1) driver run" `Slow test_full_scale_driver;
      ] );
    ( "integration.regimes",
      [
        Alcotest.test_case "low contention: ACC overhead" `Slow test_low_contention_overhead;
        Alcotest.test_case "high contention: ACC wins" `Slow test_high_contention_win;
        Alcotest.test_case "single server: baseline wins" `Slow test_single_server_bottleneck;
        Alcotest.test_case "compute time amplifies" `Slow test_compute_time_amplifies;
      ] );
  ]
