(* A compact order-processing workload modeled directly on the paper's §4
   example: new_order (decomposed: header step + one step per order line,
   with a compensating step) and bill (single analyzed step with an
   admission assertion standing for the I1 conjunct).  Shared by the
   acc_core tests, the integration tests and the properties. *)

open Acc_core
module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Schema = Acc_relation.Schema
module Value = Acc_relation.Value
module Predicate = Acc_relation.Predicate
module Executor = Acc_txn.Executor
module Resource_id = Acc_lock.Resource_id

let v_int n = Value.Int n

(* --- schema & population ------------------------------------------------ *)

let counter_schema =
  Schema.make ~name:"counter" ~key:[ "id" ]
    [ Schema.col "id" Value.Tint; Schema.col "next" Value.Tint ]

let orders_schema =
  Schema.make ~name:"orders" ~key:[ "order_id" ]
    [
      Schema.col "order_id" Value.Tint;
      Schema.col "num_items" Value.Tint;
      Schema.col "total" Value.Tint (* -1 until billed *);
    ]

let orderlines_schema =
  Schema.make ~name:"orderlines" ~key:[ "order_id"; "item_id" ]
    [
      Schema.col "order_id" Value.Tint;
      Schema.col "item_id" Value.Tint;
      Schema.col "ordered" Value.Tint;
      Schema.col "filled" Value.Tint;
    ]

let stock_schema =
  Schema.make ~name:"stock" ~key:[ "item_id" ]
    [ Schema.col "item_id" Value.Tint; Schema.col "s_level" Value.Tint ]

let prices_schema =
  Schema.make ~name:"prices" ~key:[ "item_id" ]
    [ Schema.col "item_id" Value.Tint; Schema.col "price" Value.Tint ]

(* [stock_levels] : (item_id, initial level, unit price) *)
let make_db stock_levels =
  let db = Database.create () in
  let counter = Database.create_table db counter_schema in
  Table.insert counter [| v_int 0; v_int 1 |];
  let _orders = Database.create_table db orders_schema in
  let orderlines = Database.create_table db orderlines_schema in
  Table.add_index orderlines ~name:"by_order" [ "order_id" ];
  let stock = Database.create_table db stock_schema in
  let prices = Database.create_table db prices_schema in
  List.iter
    (fun (item, level, price) ->
      Table.insert stock [| v_int item; v_int level |];
      Table.insert prices [| v_int item; v_int price |])
    stock_levels;
  db

(* --- static workload ------------------------------------------------------ *)

let step_header =
  Program.step ~id:10 ~name:"header" ~txn_type:"new_order" ~index:1
    ~reads:[ Footprint.make "counter" (Footprint.Columns [ "next" ]) ]
    ~writes:
      [
        Footprint.make "counter" (Footprint.Columns [ "next" ]);
        Footprint.make ~fresh:Footprint.Fresh "orders" Footprint.All_columns;
      ]
    ()

let step_line =
  Program.step ~id:11 ~name:"line" ~txn_type:"new_order" ~index:2 ~repeats:true
    ~reads:[ Footprint.make "stock" (Footprint.Columns [ "s_level" ]) ]
    ~writes:
      [
        Footprint.make "stock" (Footprint.Columns [ "s_level" ]);
        Footprint.make ~fresh:Footprint.Fresh "orderlines" Footprint.All_columns;
      ]
    ()

let step_no_comp =
  Program.step ~id:12 ~name:"undo_order" ~txn_type:"new_order" ~index:0
    ~reads:
      [
        Footprint.make ~fresh:Footprint.Fresh "orders" Footprint.All_columns;
        Footprint.make ~fresh:Footprint.Fresh "orderlines" Footprint.All_columns;
      ]
    ~writes:
      [
        Footprint.make "stock" (Footprint.Columns [ "s_level" ]);
        Footprint.make ~fresh:Footprint.Fresh "orders" Footprint.All_columns;
        Footprint.make ~fresh:Footprint.Fresh "orderlines" Footprint.All_columns;
      ]
    ()

(* I1 restricted to the instance's own (fresh) order: the loop invariant of
   the §4 analysis, pre(S_2), held until commit *)
let assert_loop_inv =
  Assertion.make ~id:100 ~name:"no_loop_inv" ~txn_type:"new_order" ~pre_of:2
    ~until:Assertion.until_commit
    ~refs:
      [
        Footprint.make ~fresh:Footprint.Fresh "orders" (Footprint.Columns [ "num_items" ]);
        Footprint.make ~fresh:Footprint.Fresh "orderlines" Footprint.All_columns;
      ]

let step_bill =
  Program.step ~id:13 ~name:"total" ~txn_type:"bill" ~index:1
    ~reads:
      [
        Footprint.make "orders" Footprint.All_columns;
        Footprint.make "orderlines" Footprint.All_columns;
        Footprint.make "prices" (Footprint.Columns [ "price" ]);
      ]
    ~writes:[ Footprint.make "orders" (Footprint.Columns [ "total" ]) ]
    ()

(* bill's precondition: I1 for the billed order (a Shared reference: the
   order id is supplied from outside and may be anyone's fresh order) *)
let assert_bill_i1 =
  Assertion.make ~id:101 ~name:"bill_I1" ~txn_type:"bill" ~pre_of:1 ~until:1
    ~refs:
      [
        Footprint.make "orders" (Footprint.Columns [ "num_items" ]);
        Footprint.make "orderlines" Footprint.All_columns;
      ]

(* a two-step read-only audit used by the read-isolation tests: reads the
   same stock item in both steps *)
let step_audit_1 =
  Program.step ~id:14 ~name:"audit1" ~txn_type:"audit" ~index:1
    ~reads:[ Footprint.make "stock" (Footprint.Columns [ "s_level" ]) ]
    ~writes:[] ()

let step_audit_2 =
  Program.step ~id:15 ~name:"audit2" ~txn_type:"audit" ~index:2
    ~reads:[ Footprint.make "stock" (Footprint.Columns [ "s_level" ]) ]
    ~writes:[] ()

let step_audit_comp =
  Program.step ~id:16 ~name:"audit_undo" ~txn_type:"audit" ~index:0 ~reads:[] ~writes:[] ()

let audit_type =
  Program.txn_type ~name:"audit" ~steps:[ step_audit_1; step_audit_2 ] ~comp:step_audit_comp
    ~assertions:[] ()

let new_order_type =
  Program.txn_type ~name:"new_order" ~steps:[ step_header; step_line ] ~comp:step_no_comp
    ~assertions:[ assert_loop_inv ] ()

let bill_type = Program.txn_type ~name:"bill" ~steps:[ step_bill ] ~assertions:[ assert_bill_i1 ] ()

let workload = Program.workload [ new_order_type; bill_type; audit_type ]

let interference = Interference.build workload

let make_engine ?cost stock_levels =
  Executor.create ?cost ~sem:(Interference.semantics interference) (make_db stock_levels)

(* --- run-time instances ---------------------------------------------------- *)

(* Result record a new_order instance reports into. *)
type new_order_result = {
  mutable r_order_id : int;  (* -1 until the header step ran *)
  mutable r_filled : (int * int) list;  (* item, filled *)
}

(* [items] : (item_id, qty) list *)
let new_order_instance ~items =
  let result = { r_order_id = -1; r_filled = [] } in
  let lines_done = ref 0 in
  let header ctx =
    (* single update (no S-then-X upgrade on the hot counter tuple) *)
    let row =
      Executor.update ctx "counter" [ v_int 0 ] (fun row ->
          row.(1) <- v_int (Value.as_int row.(1) + 1);
          row)
    in
    let o = Value.as_int row.(1) - 1 in
    result.r_order_id <- o;
    lines_done := 0;
    result.r_filled <- [];
    Executor.insert ctx "orders" [| v_int o; v_int (List.length items); v_int (-1) |]
  in
  let line idx (item, qty) ctx =
    (* idempotent under step retry: progress is assigned from the step's
       position, never accumulated *)
    let o = result.r_order_id in
    let srow = Executor.read_exn ctx "stock" [ v_int item ] in
    let level = Value.as_int srow.(1) in
    let filled = min qty level in
    Executor.set_column ctx "stock" [ v_int item ] "s_level" (v_int (level - filled));
    Executor.insert ctx "orderlines" [| v_int o; v_int item; v_int qty; v_int filled |];
    lines_done := idx + 1;
    result.r_filled <- (item, filled) :: List.remove_assoc item result.r_filled
  in
  let compensate ctx ~completed =
    (* semantic undo: return filled stock, remove the lines and the header;
       point-keyed access only (a compensating step touches nothing beyond
       its own items, §3.4); the consumed order number is not restored *)
    if completed >= 1 then begin
      let o = result.r_order_id in
      let committed = min (List.length items) (max 0 (completed - 1)) in
      List.iteri
        (fun idx (item, _) ->
          if idx < committed then begin
            let row = Executor.read_exn ctx "orderlines" [ v_int o; v_int item ] in
            let filled = Value.as_int row.(3) in
            let srow = Executor.read_exn ctx "stock" [ v_int item ] in
            Executor.set_column ctx "stock" [ v_int item ] "s_level"
              (v_int (Value.as_int srow.(1) + filled));
            Executor.delete ctx "orderlines" [ v_int o; v_int item ]
          end)
        items;
      Executor.delete ctx "orders" [ v_int o ]
    end
  in
  let n = 1 + List.length items in
  let loop_inv_check db =
    result.r_order_id >= 0
    &&
    let orders = Database.table db "orders" in
    match Table.get orders [ v_int result.r_order_id ] with
    | None -> false
    | Some row ->
        Value.as_int row.(1) = List.length items
        && Table.scan_count
             ~where:(Predicate.Eq ("order_id", v_int result.r_order_id))
             (Database.table db "orderlines")
           = !lines_done
  in
  let assertions =
    [
      {
        Program.ai_assertion = assert_loop_inv;
        ai_from = 2;
        ai_until = n;
        ai_check = Some loop_inv_check;
      };
    ]
  in
  let comp_area () =
    [ ("order_id", v_int result.r_order_id); ("lines_done", v_int !lines_done) ]
  in
  let inst =
    Program.instance ~def:new_order_type
      ~steps:
        ((step_header, header) :: List.mapi (fun idx it -> (step_line, line idx it)) items)
      ~assertions ~compensate ~comp_area ()
  in
  (inst, result)

type bill_result = { mutable b_total : int }

let bill_instance ~order =
  let result = { b_total = -1 } in
  let body ctx =
    let orow = Executor.read_exn ctx "orders" [ v_int order ] in
    ignore (Value.as_int orow.(1));
    let lines = Executor.scan ctx "orderlines" ~where:(Predicate.Eq ("order_id", v_int order)) () in
    let total =
      List.fold_left
        (fun acc row ->
          let item = Value.as_int row.(1) and filled = Value.as_int row.(3) in
          let price = Value.as_int (Executor.read_exn ctx "prices" [ v_int item ]).(1) in
          acc + (filled * price))
        0 lines
    in
    Executor.set_column ctx "orders" [ v_int order ] "total" (v_int total);
    result.b_total <- total
  in
  let i1_check db =
    let orders = Database.table db "orders" in
    match Table.get orders [ v_int order ] with
    | None -> true (* vacuous: assertion instance about a missing order *)
    | Some row ->
        Value.as_int row.(1)
        = Table.scan_count
            ~where:(Predicate.Eq ("order_id", v_int order))
            (Database.table db "orderlines")
  in
  let admission_assertion =
    { Program.ai_assertion = assert_bill_i1; ai_from = 1; ai_until = 1; ai_check = Some i1_check }
  in
  let inst =
    Program.instance ~def:bill_type
      ~steps:[ (step_bill, body) ]
      ~assertions:[ admission_assertion ]
      ~admission:[ (admission_assertion, [ Resource_id.Tuple ("orders", [ v_int order ]) ]) ]
      ()
  in
  (inst, result)

(* read the same stock item in two steps; report both observations *)
type audit_result = { mutable a_first : int; mutable a_second : int }

let audit_instance ?read_isolation ~item () =
  let result = { a_first = -1; a_second = -1 } in
  let read_level ctx =
    Value.as_int (Executor.read_exn ctx "stock" [ v_int item ]).(1)
  in
  let inst =
    Program.instance ~def:audit_type
      ~steps:
        [
          (step_audit_1, fun ctx -> result.a_first <- read_level ctx);
          (step_audit_2, fun ctx -> result.a_second <- read_level ctx);
        ]
      ~compensate:(fun _ctx ~completed:_ -> ())
      ?read_isolation ()
  in
  (inst, result)

(* --- whole-database consistency (the constraint I) ----------------------- *)

let check_consistency ~initial_stock db =
  let orders = Database.table db "orders" in
  let orderlines = Database.table db "orderlines" in
  let stock = Database.table db "stock" in
  let prices = Database.table db "prices" in
  let problems = ref [] in
  let complain fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  (* I1: num_items matches the orderline count, per order *)
  Table.iter
    (fun _ row ->
      let o = Value.as_int row.(0) and n = Value.as_int row.(1) in
      let lines = Table.scan_count ~where:(Predicate.Eq ("order_id", v_int o)) orderlines in
      if lines <> n then complain "order %d: num_items %d but %d orderlines" o n lines)
    orders;
  (* orderlines reference existing orders; filled <= ordered *)
  Table.iter
    (fun _ row ->
      let o = Value.as_int row.(0) in
      if not (Table.mem orders [ v_int o ]) then complain "orphan orderline for order %d" o;
      if Value.as_int row.(3) > Value.as_int row.(2) then
        complain "order %d item %d: filled > ordered" o (Value.as_int row.(1)))
    orderlines;
  (* stock conservation and non-negativity *)
  List.iter
    (fun (item, level0, _) ->
      let level = Value.as_int (Table.get_exn stock [ v_int item ]).(1) in
      if level < 0 then complain "item %d: negative stock %d" item level;
      let filled_total =
        Table.fold
          (fun _ row acc ->
            if Value.as_int row.(1) = item then acc + Value.as_int row.(3) else acc)
          orderlines 0
      in
      if level + filled_total <> level0 then
        complain "item %d: conservation broken (%d + %d <> %d)" item level filled_total level0)
    initial_stock;
  (* billed totals are correct *)
  Table.iter
    (fun _ row ->
      let o = Value.as_int row.(0) and total = Value.as_int row.(2) in
      if total >= 0 then begin
        let expect =
          Table.fold
            (fun _ l acc ->
              if Value.as_int l.(0) = o then
                acc
                + Value.as_int l.(3)
                  * Value.as_int (Table.get_exn prices [ v_int (Value.as_int l.(1)) ]).(1)
              else acc)
            orderlines 0
        in
        if total <> expect then complain "order %d: billed %d, expected %d" o total expect
      end)
    orders;
  List.rev !problems
