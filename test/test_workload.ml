(* Tests for acc.workload: the plugin registry, generic consistency of every
   registered workload under the sequential and multicore engines, and the
   directed write-skew test — the SmallBank invariant checker must catch the
   overdraw a deliberately weakened interference table lets through, and the
   shipped table must prevent it. *)

module W = Acc_workload
module P = Acc_tpcc.Parallel_driver
module SB = Acc_workload.Smallbank
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Txn_effect = Acc_txn.Txn_effect
module Runtime = Acc_core.Runtime
module Prng = Acc_util.Prng

let registered () =
  W.Builtin.ensure ();
  Acc_tpcc.Tpcc_workload.register ();
  W.Registry.names ()

(* --- registry ----------------------------------------------------------- *)

let test_registry () =
  let names = List.map fst (registered ()) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "tpcc"; "smallbank"; "tatp"; "hotspot"; "longreader"; "order-processing"; "stock-trading" ];
  Alcotest.(check bool) "ensure is idempotent" true
    (List.length (registered ()) = List.length names);
  match W.Registry.find "no-such-workload" with
  | None -> ()
  | Some _ -> Alcotest.fail "find of an unknown name returned a workload"

let test_zipf () =
  let g = Prng.create ~seed:5 in
  let z = Prng.zipf ~n:100 ~theta:0.9 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Prng.zipf_draw g z in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 100);
    counts.(k) <- counts.(k) + 1
  done;
  (* the defining property: rank 0 dominates any deep-tail rank *)
  Alcotest.(check bool) "skewed toward rank 0" true (counts.(0) > 10 * counts.(99))

(* --- every registered workload, sequential and multicore ---------------- *)

(* One spec per workload, small, fixed seed: the run must end with that
   workload's own consistency check clean and no locks or waiters leaked,
   at 1 domain (sequential order) and at 4 (real interleaving), under both
   the ACC and the strict-2PL flat baseline. *)
let run_registered name ~domains ~system =
  let wl =
    match W.Registry.find name with
    | Some make -> make { W.scale = 1; skew = 0.; mix = None; abort_rate = None }
    | None -> Alcotest.failf "%s not registered" name
  in
  let r =
    P.run
      {
        P.default_config with
        P.system;
        domains;
        duration = 0.;
        txns_per_domain = Some 40;
        compute_between = 0.;
        seed = 11;
        workload = Some wl;
      }
  in
  Alcotest.(check (list string)) (name ^ ": consistency") [] r.P.violations;
  Alcotest.(check int) (name ^ ": leaked locks") 0 r.P.leaked_locks;
  Alcotest.(check int) (name ^ ": leaked waiters") 0 r.P.leaked_waiters;
  Alcotest.(check bool) (name ^ ": committed") true (r.P.committed > 0);
  Alcotest.(check string) (name ^ ": report names itself") name r.P.workload_name

let test_all_seq () =
  List.iter
    (fun (name, _) -> run_registered name ~domains:1 ~system:P.Acc)
    (registered ())

let test_all_parallel () =
  List.iter
    (fun (name, _) -> run_registered name ~domains:4 ~system:P.Acc)
    (registered ())

let test_all_baseline () =
  List.iter
    (fun (name, _) -> run_registered name ~domains:2 ~system:P.Baseline)
    (registered ())

(* --- directed write-skew ------------------------------------------------ *)

(* Two write_checks of 400 against one account endowed with 600, run with
   batched footprints so both verify-funds steps hold their S locks — and
   attach wc_funds — before either deduct is admitted.  The shipped
   interference table makes each deduct (and its void-check compensation
   lock) interfere with the other's held wc_funds assertion: the crosswise
   blocks are a deadlock, the victim policy compensates one, and at most
   one deduct lands (total stays >= 0).  The weakened table declares the
   deducts compatible with wc_funds — the false claim — so both stale
   decisions execute and the account is jointly overdrawn, which
   [SB.consistency] must report. *)
let write_skew_race sem =
  SB.reset_global ();
  let db = SB.populate ~accounts:4 ~seed:3 in
  let eng = Executor.create ~sem db in
  let env =
    SB.make_env
      ~pace:(fun () -> Txn_effect.yield ())
      ~accounts:4 ~skew:0. ~abort_rate:0. ~mix:None ~seed:1 ()
  in
  let options = { Runtime.default_options with Runtime.batch_footprints = true } in
  let run acct =
    let inst = SB.write_check_instance env ~acct ~amount:400. ~fail:false in
    fun () -> ignore (Runtime.run eng ~options inst)
  in
  Schedule.run ~policy:Runtime.victim_policy eng [ run 1; run 1 ];
  SB.consistency (Executor.db eng)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_write_skew_weakened () =
  let violations = write_skew_race SB.semantics_weakened in
  Alcotest.(check bool) "weakened table lets the overdraw through" true
    (List.exists (fun v -> contains v "overdrawn") violations)

let test_write_skew_guarded () =
  Alcotest.(check (list string)) "shipped table keeps the invariant" []
    (write_skew_race SB.semantics)

let suites =
  [
    ( "workload",
      [
        Alcotest.test_case "registry: all plugins present" `Quick test_registry;
        Alcotest.test_case "zipf: range and skew" `Quick test_zipf;
        Alcotest.test_case "every workload: 1-domain acc" `Quick test_all_seq;
        Alcotest.test_case "every workload: 4-domain acc" `Slow test_all_parallel;
        Alcotest.test_case "every workload: 2-domain 2pl" `Slow test_all_baseline;
        Alcotest.test_case "write-skew: weakened table caught" `Quick test_write_skew_weakened;
        Alcotest.test_case "write-skew: shipped table clean" `Quick test_write_skew_guarded;
      ] );
  ]
