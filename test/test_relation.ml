(* Tests for acc.relation: values, schemas, predicates, tables, indexes. *)

open Acc_relation
module Prng = Acc_util.Prng

let v_int n = Value.Int n
let v_str s = Value.Str s

(* A small accounts table used throughout. *)
let accounts_schema () =
  Schema.make ~name:"accounts" ~key:[ "id" ]
    [
      Schema.col "id" Value.Tint;
      Schema.col "owner" Value.Tstr;
      Schema.col "balance" Value.Tint;
      Schema.col ~nullable:true "note" Value.Tstr;
    ]

let make_accounts () =
  let t = Table.create (accounts_schema ()) in
  List.iter (Table.insert t)
    [
      [| v_int 1; v_str "alice"; v_int 100; Value.Null |];
      [| v_int 2; v_str "bob"; v_int 250; Value.Null |];
      [| v_int 3; v_str "alice"; v_int 50; v_str "joint" |];
    ];
  t

(* --- Value ------------------------------------------------------------ *)

let test_value_equal () =
  Alcotest.(check bool) "int eq" true (Value.equal (v_int 3) (v_int 3));
  Alcotest.(check bool) "int ne" false (Value.equal (v_int 3) (v_int 4));
  Alcotest.(check bool) "null eq null" true (Value.equal Value.Null Value.Null);
  Alcotest.(check bool) "null ne int" false (Value.equal Value.Null (v_int 0));
  Alcotest.(check bool) "cross-type ne" false (Value.equal (v_int 1) (Value.Float 1.))

let test_value_compare () =
  Alcotest.(check bool) "1 < 2" true (Value.compare (v_int 1) (v_int 2) < 0);
  Alcotest.(check bool) "b > a" true (Value.compare (v_str "b") (v_str "a") > 0);
  Alcotest.(check int) "reflexive" 0 (Value.compare (Value.Bool true) (Value.Bool true));
  Alcotest.(check bool) "null smallest" true (Value.compare Value.Null (v_int min_int) < 0)

let test_value_projections () =
  Alcotest.(check int) "as_int" 5 (Value.as_int (v_int 5));
  Alcotest.(check string) "as_str" "x" (Value.as_str (v_str "x"));
  Alcotest.(check (float 0.)) "number of int" 5. (Value.number (v_int 5));
  Alcotest.(check (float 0.)) "number of float" 2.5 (Value.number (Value.Float 2.5));
  Alcotest.check_raises "as_int on str" (Invalid_argument "Value.as_int: got \"x\"") (fun () ->
      ignore (Value.as_int (v_str "x")))

let test_value_typing () =
  Alcotest.(check bool) "int has tint" true (Value.has_type (v_int 1) Value.Tint);
  Alcotest.(check bool) "int lacks tstr" false (Value.has_type (v_int 1) Value.Tstr);
  Alcotest.(check bool) "null has any" true (Value.has_type Value.Null Value.Tbool)

(* --- Schema ----------------------------------------------------------- *)

let test_schema_basic () =
  let s = accounts_schema () in
  Alcotest.(check string) "name" "accounts" (Schema.name s);
  Alcotest.(check int) "arity" 4 (Schema.arity s);
  Alcotest.(check int) "position" 2 (Schema.position s "balance");
  Alcotest.(check bool) "mem" true (Schema.mem s "owner");
  Alcotest.(check bool) "not mem" false (Schema.mem s "nope");
  Alcotest.(check (list string)) "key" [ "id" ] (Schema.key_columns s)

let test_schema_rejects_duplicates () =
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "t: duplicate column x")
    (fun () ->
      ignore (Schema.make ~name:"t" ~key:[ "x" ] [ Schema.col "x" Value.Tint; Schema.col "x" Value.Tint ]))

let test_schema_rejects_bad_key () =
  Alcotest.check_raises "empty key" (Invalid_argument "t: empty primary key") (fun () ->
      ignore (Schema.make ~name:"t" ~key:[] [ Schema.col "x" Value.Tint ]));
  Alcotest.check_raises "unknown key" (Invalid_argument "t: unknown key column y") (fun () ->
      ignore (Schema.make ~name:"t" ~key:[ "y" ] [ Schema.col "x" Value.Tint ]));
  Alcotest.check_raises "nullable key" (Invalid_argument "t: nullable key column x") (fun () ->
      ignore (Schema.make ~name:"t" ~key:[ "x" ] [ Schema.col ~nullable:true "x" Value.Tint ]))

let test_schema_check_row () =
  let s = accounts_schema () in
  let ok = [| v_int 1; v_str "a"; v_int 0; Value.Null |] in
  Alcotest.(check bool) "valid row" true (Result.is_ok (Schema.check_row s ok));
  let wrong_arity = [| v_int 1 |] in
  Alcotest.(check bool) "arity" true (Result.is_error (Schema.check_row s wrong_arity));
  let wrong_type = [| v_int 1; v_int 2; v_int 0; Value.Null |] in
  Alcotest.(check bool) "type" true (Result.is_error (Schema.check_row s wrong_type));
  let bad_null = [| v_int 1; Value.Null; v_int 0; Value.Null |] in
  Alcotest.(check bool) "null" true (Result.is_error (Schema.check_row s bad_null))

let test_schema_key_of_row () =
  let s =
    Schema.make ~name:"pairs" ~key:[ "a"; "b" ]
      [ Schema.col "a" Value.Tint; Schema.col "x" Value.Tstr; Schema.col "b" Value.Tint ]
  in
  let row = [| v_int 1; v_str "mid"; v_int 2 |] in
  Alcotest.(check bool) "composite key" true (Schema.key_of_row s row = [ v_int 1; v_int 2 ])

(* --- Predicate -------------------------------------------------------- *)

let test_predicate_eval () =
  let s = accounts_schema () in
  let row = [| v_int 1; v_str "alice"; v_int 100; Value.Null |] in
  let holds p = Predicate.compile s p row in
  Alcotest.(check bool) "true" true (holds Predicate.True);
  Alcotest.(check bool) "eq" true (holds (Predicate.Eq ("owner", v_str "alice")));
  Alcotest.(check bool) "eq false" false (holds (Predicate.Eq ("owner", v_str "bob")));
  Alcotest.(check bool) "ne" true (holds (Predicate.Ne ("id", v_int 9)));
  Alcotest.(check bool) "lt" true (holds (Predicate.Cmp (Predicate.Lt, "balance", v_int 200)));
  Alcotest.(check bool) "ge" true (holds (Predicate.Cmp (Predicate.Ge, "balance", v_int 100)));
  Alcotest.(check bool) "gt false" false (holds (Predicate.Cmp (Predicate.Gt, "balance", v_int 100)));
  Alcotest.(check bool) "in" true (holds (Predicate.In ("id", [ v_int 7; v_int 1 ])));
  Alcotest.(check bool) "and" true
    (holds (Predicate.And (Predicate.Eq ("id", v_int 1), Predicate.True)));
  Alcotest.(check bool) "or" true
    (holds (Predicate.Or (Predicate.Eq ("id", v_int 9), Predicate.Eq ("id", v_int 1))));
  Alcotest.(check bool) "not" false (holds (Predicate.Not Predicate.True))

let test_predicate_bindings () =
  let p =
    Predicate.And
      ( Predicate.Eq ("a", v_int 1),
        Predicate.And (Predicate.Cmp (Predicate.Lt, "b", v_int 9), Predicate.Eq ("c", v_int 2)) )
  in
  Alcotest.(check bool) "eq conjuncts extracted" true
    (Predicate.equality_bindings p = [ ("a", v_int 1); ("c", v_int 2) ]);
  let p_or = Predicate.Or (Predicate.Eq ("a", v_int 1), Predicate.Eq ("a", v_int 2)) in
  Alcotest.(check bool) "or yields none" true (Predicate.equality_bindings p_or = [])

let test_predicate_unknown_column () =
  let s = accounts_schema () in
  Alcotest.check_raises "unknown col"
    (Invalid_argument "accounts: unknown column ghost")
    (fun () ->
      let (_ : Value.t array -> bool) =
        Predicate.compile s (Predicate.Eq ("ghost", v_int 0))
      in
      ())

let test_predicate_conj () =
  let s = accounts_schema () in
  let row = [| v_int 1; v_str "alice"; v_int 100; Value.Null |] in
  Alcotest.(check bool) "empty conj = true" true (Predicate.compile s (Predicate.conj []) row);
  let p = Predicate.conj [ Predicate.Eq ("id", v_int 1); Predicate.Eq ("owner", v_str "alice") ] in
  Alcotest.(check bool) "conj of two" true (Predicate.compile s p row)

(* --- Table ------------------------------------------------------------ *)

let test_table_insert_get () =
  let t = make_accounts () in
  Alcotest.(check int) "cardinality" 3 (Table.cardinality t);
  match Table.get t [ v_int 2 ] with
  | None -> Alcotest.fail "row 2 missing"
  | Some row ->
      Alcotest.(check string) "owner" "bob" (Value.as_str row.(1));
      Alcotest.(check int) "balance" 250 (Value.as_int row.(2))

let test_table_get_returns_copy () =
  let t = make_accounts () in
  (match Table.get t [ v_int 1 ] with
  | Some row -> row.(2) <- v_int 0 (* mutate the copy *)
  | None -> Alcotest.fail "missing");
  Alcotest.(check int) "store unaffected" 100
    (Value.as_int (Table.get_exn t [ v_int 1 ]).(2))

let test_table_duplicate_key () =
  let t = make_accounts () in
  Alcotest.check_raises "dup"
    (Table.Duplicate_key ("accounts", [ v_int 1 ]))
    (fun () -> Table.insert t [| v_int 1; v_str "x"; v_int 0; Value.Null |])

let test_table_invalid_row () =
  let t = make_accounts () in
  let raised =
    try
      Table.insert t [| v_int 9; v_int 0; v_int 0; Value.Null |];
      false
    with Table.Invalid_row _ -> true
  in
  Alcotest.(check bool) "invalid row rejected" true raised

let test_table_update () =
  let t = make_accounts () in
  let updated =
    Table.update t [ v_int 1 ] (fun row ->
        row.(2) <- v_int 175;
        row)
  in
  Alcotest.(check int) "returned row" 175 (Value.as_int updated.(2));
  Alcotest.(check int) "stored row" 175 (Value.as_int (Table.get_exn t [ v_int 1 ]).(2))

let test_table_set_column () =
  let t = make_accounts () in
  ignore (Table.set_column t [ v_int 3 ] "balance" (v_int 999));
  Alcotest.(check int) "set_column" 999 (Value.as_int (Table.get_exn t [ v_int 3 ]).(2))

let test_table_update_missing () =
  let t = make_accounts () in
  Alcotest.check_raises "missing"
    (Table.No_such_row ("accounts", [ v_int 42 ]))
    (fun () -> ignore (Table.update t [ v_int 42 ] Fun.id))

let test_table_update_key_change_rejected () =
  let t = make_accounts () in
  let raised =
    try
      ignore
        (Table.update t [ v_int 1 ] (fun row ->
             row.(0) <- v_int 10;
             row));
      false
    with Table.Invalid_row _ -> true
  in
  Alcotest.(check bool) "key change rejected" true raised;
  Alcotest.(check bool) "old key still present" true (Table.mem t [ v_int 1 ])

let test_table_delete () =
  let t = make_accounts () in
  let row = Table.delete t [ v_int 2 ] in
  Alcotest.(check string) "deleted row returned" "bob" (Value.as_str row.(1));
  Alcotest.(check int) "cardinality" 2 (Table.cardinality t);
  Alcotest.(check bool) "gone" false (Table.mem t [ v_int 2 ]);
  Alcotest.check_raises "double delete"
    (Table.No_such_row ("accounts", [ v_int 2 ]))
    (fun () -> ignore (Table.delete t [ v_int 2 ]))

let test_table_scan_full () =
  let t = make_accounts () in
  Alcotest.(check int) "all rows" 3 (List.length (Table.scan t));
  Alcotest.(check int) "scan cost = cardinality" 3 (Table.last_scan_cost t)

let test_table_scan_predicate () =
  let t = make_accounts () in
  let rows = Table.scan ~where:(Predicate.Eq ("owner", v_str "alice")) t in
  Alcotest.(check int) "two alices" 2 (List.length rows);
  let n = Table.scan_count ~where:(Predicate.Cmp (Predicate.Ge, "balance", v_int 100)) t in
  Alcotest.(check int) "balance >= 100" 2 n

let test_table_scan_keys () =
  let t = make_accounts () in
  let keys = Table.scan_keys ~where:(Predicate.Eq ("owner", v_str "alice")) t in
  Alcotest.(check bool) "keys 1 and 3" true (keys = [ [ v_int 1 ]; [ v_int 3 ] ])

let test_index_lookup_and_maintenance () =
  let t = make_accounts () in
  Table.add_index t ~name:"by_owner" [ "owner" ];
  let keys = Table.index_lookup t ~index:"by_owner" [ v_str "alice" ] in
  Alcotest.(check int) "two alices via index" 2 (List.length keys);
  (* insert maintains the index *)
  Table.insert t [| v_int 4; v_str "alice"; v_int 1; Value.Null |];
  Alcotest.(check int) "three after insert" 3
    (List.length (Table.index_lookup t ~index:"by_owner" [ v_str "alice" ]));
  (* delete maintains the index *)
  ignore (Table.delete t [ v_int 1 ]);
  Alcotest.(check int) "two after delete" 2
    (List.length (Table.index_lookup t ~index:"by_owner" [ v_str "alice" ]));
  (* update that moves the secondary key maintains the index *)
  ignore (Table.set_column t [ v_int 3 ] "owner" (v_str "carol"));
  Alcotest.(check int) "one after move" 1
    (List.length (Table.index_lookup t ~index:"by_owner" [ v_str "alice" ]));
  Alcotest.(check bool) "carol indexed" true
    (Table.index_lookup t ~index:"by_owner" [ v_str "carol" ] = [ [ v_int 3 ] ])

let test_index_accelerates_scan () =
  let t = make_accounts () in
  Table.add_index t ~name:"by_owner" [ "owner" ];
  let rows = Table.scan ~where:(Predicate.Eq ("owner", v_str "bob")) t in
  Alcotest.(check int) "one bob" 1 (List.length rows);
  Alcotest.(check int) "only indexed candidates examined" 1 (Table.last_scan_cost t)

let test_index_on_populated_table () =
  let t = make_accounts () in
  Table.add_index t ~name:"late" [ "balance" ];
  Alcotest.(check bool) "finds existing row" true
    (Table.index_lookup t ~index:"late" [ v_int 250 ] = [ [ v_int 2 ] ])

let test_index_duplicate_name () =
  let t = make_accounts () in
  Table.add_index t ~name:"i" [ "owner" ];
  Alcotest.check_raises "dup index"
    (Invalid_argument "accounts: duplicate index i")
    (fun () -> Table.add_index t ~name:"i" [ "balance" ])

let test_table_iter_sorted_snapshot () =
  let t = make_accounts () in
  let seen = ref [] in
  Table.iter
    (fun pk _row ->
      seen := pk :: !seen;
      (* mutating from within iter must be safe *)
      if pk = [ v_int 1 ] then ignore (Table.delete t [ v_int 2 ]))
    t;
  Alcotest.(check int) "all three visited" 3 (List.length !seen)

let test_table_fold () =
  let t = make_accounts () in
  let total = Table.fold (fun _ row acc -> acc + Value.as_int row.(2)) t 0 in
  Alcotest.(check int) "sum balances" 400 total

let test_table_copy_independent () =
  let t = make_accounts () in
  Table.add_index t ~name:"by_owner" [ "owner" ];
  let c = Table.copy t in
  ignore (Table.delete t [ v_int 1 ]);
  Alcotest.(check int) "copy keeps row" 3 (Table.cardinality c);
  Alcotest.(check int) "copy index intact" 2
    (List.length (Table.index_lookup c ~index:"by_owner" [ v_str "alice" ]))

let test_field () =
  let t = make_accounts () in
  let row = Table.get_exn t [ v_int 2 ] in
  Alcotest.(check int) "field by name" 250 (Value.as_int (Table.field t row "balance"))

(* --- Ordered index ------------------------------------------------------ *)

module Ordered_index = Acc_relation.Ordered_index

let oi_key row = [ row.(1) ] (* index accounts by owner *)

let make_oi rows =
  let idx = Ordered_index.create ~name:"t" ~key_of:oi_key in
  List.iter (fun (pk, owner) -> Ordered_index.insert idx ~pk:[ v_int pk ] [| v_int pk; owner |]) rows;
  idx

let test_oi_basic () =
  let idx = make_oi [ (1, v_str "carol"); (2, v_str "alice"); (3, v_str "bob") ] in
  Alcotest.(check int) "size" 3 (Ordered_index.size idx);
  Alcotest.(check bool) "invariant" true (Ordered_index.invariant_ok idx);
  (match Ordered_index.min_entry idx () with
  | Some ([ Value.Str "alice" ], [ Value.Int 2 ]) -> ()
  | _ -> Alcotest.fail "wrong min");
  (match Ordered_index.max_entry idx with
  | Some ([ Value.Str "carol" ], [ Value.Int 1 ]) -> ()
  | _ -> Alcotest.fail "wrong max");
  (* ascending order *)
  let keys = List.map fst (Ordered_index.range idx ()) in
  Alcotest.(check bool) "ascending" true
    (keys = [ [ v_str "alice" ]; [ v_str "bob" ]; [ v_str "carol" ] ])

let test_oi_min_above () =
  let idx = make_oi [ (1, v_int 10); (2, v_int 20); (3, v_int 30) ] in
  (match Ordered_index.min_entry idx ~above:[ v_int 10 ] () with
  | Some ([ Value.Int 20 ], _) -> ()
  | _ -> Alcotest.fail "min above 10 should be 20");
  Alcotest.(check bool) "above max is none" true
    (Ordered_index.min_entry idx ~above:[ v_int 30 ] () = None)

let test_oi_range_bounds () =
  let idx = make_oi (List.init 10 (fun i -> (i, v_int (i * 10)))) in
  let in_range lo hi =
    List.map (fun (k, _) -> Value.as_int (List.hd k)) (Ordered_index.range idx ~lo ~hi ())
  in
  Alcotest.(check (list int)) "closed range" [ 20; 30; 40 ] (in_range [ v_int 20 ] [ v_int 40 ]);
  Alcotest.(check (list int)) "open top"
    [ 70; 80; 90 ]
    (List.map (fun (k, _) -> Value.as_int (List.hd k)) (Ordered_index.range idx ~lo:[ v_int 70 ] ()));
  Alcotest.(check (list int)) "empty range" [] (in_range [ v_int 41 ] [ v_int 49 ])

let test_oi_duplicate_keys () =
  (* same index key for two rows: both entries live, distinguished by pk *)
  let idx = make_oi [ (1, v_str "x"); (2, v_str "x") ] in
  Alcotest.(check int) "both present" 2 (List.length (Ordered_index.prefix idx [ v_str "x" ]));
  Ordered_index.remove idx ~pk:[ v_int 1 ] [| v_int 1; v_str "x" |];
  Alcotest.(check int) "one left" 1 (List.length (Ordered_index.prefix idx [ v_str "x" ]));
  Alcotest.(check bool) "right one left" true
    (List.for_all (fun (_, pk) -> pk = [ v_int 2 ]) (Ordered_index.prefix idx [ v_str "x" ]))

let test_oi_prefix_composite () =
  let idx = Ordered_index.create ~name:"c" ~key_of:(fun row -> [ row.(0); row.(1) ]) in
  List.iter
    (fun (a, b) -> Ordered_index.insert idx ~pk:[ v_int a; v_int b ] [| v_int a; v_int b |])
    [ (1, 1); (1, 2); (2, 1); (2, 9); (3, 5) ];
  Alcotest.(check int) "prefix 2" 2 (List.length (Ordered_index.prefix idx [ v_int 2 ]));
  Alcotest.(check int) "prefix 9" 0 (List.length (Ordered_index.prefix idx [ v_int 9 ]));
  (* short lo bound acts as prefix bound: everything from group 2 up *)
  Alcotest.(check int) "lo prefix" 3 (List.length (Ordered_index.range idx ~lo:[ v_int 2 ] ()))

let prop_oi_matches_model =
  QCheck2.Test.make ~name:"ordered_index: random ops match sorted model" ~count:200
    QCheck2.Gen.(list_size (int_range 0 120) (pair (int_range 0 30) (int_range 0 8)))
    (fun ops ->
      (* insert (k, pk); key collisions and re-insertions exercised via a
         model association set *)
      let idx = Ordered_index.create ~name:"m" ~key_of:(fun row -> [ row.(0) ]) in
      let model = ref [] in
      List.iteri
        (fun i (k, action) ->
          let pk = [ v_int i ] in
          if action < 6 then begin
            Ordered_index.insert idx ~pk [| v_int k |];
            model := (k, i) :: !model
          end
          else begin
            match !model with
            | (k', i') :: rest ->
                Ordered_index.remove idx ~pk:[ v_int i' ] [| v_int k' |];
                model := rest
            | [] -> ()
          end)
        ops;
      let expected = List.sort compare (List.map (fun (k, i) -> (k, i)) !model) in
      let actual =
        List.map
          (fun (key, pk) -> (Value.as_int (List.hd key), Value.as_int (List.hd pk)))
          (Ordered_index.range idx ())
      in
      Ordered_index.invariant_ok idx
      && Ordered_index.size idx = List.length !model
      && actual = expected)

let test_table_ordered_integration () =
  let t = make_accounts () in
  Table.add_ordered_index t ~name:"by_balance" [ "balance" ];
  (* range probe *)
  let entries = Table.range_lookup t ~index:"by_balance" ~lo:[ v_int 60 ] () in
  Alcotest.(check int) "two rows >= 60" 2 (List.length entries);
  (* maintained by update *)
  ignore (Table.set_column t [ v_int 3 ] "balance" (v_int 70));
  Alcotest.(check int) "three rows >= 60" 3
    (List.length (Table.range_lookup t ~index:"by_balance" ~lo:[ v_int 60 ] ()));
  (* min probe *)
  (match Table.min_lookup t ~index:"by_balance" () with
  | Some ([ Value.Int 70 ], [ Value.Int 3 ]) -> ()
  | _ -> Alcotest.fail "min should be the moved row");
  (* maintained by delete *)
  ignore (Table.delete t [ v_int 3 ]);
  match Table.min_lookup t ~index:"by_balance" () with
  | Some ([ Value.Int 100 ], _) -> ()
  | _ -> Alcotest.fail "min after delete"

let test_ordered_planner () =
  (* the scan planner uses an ordered index for equality-prefix + range
     predicates: candidates shrink below the cardinality *)
  let t = Table.create (accounts_schema ()) in
  Table.add_ordered_index t ~name:"owner_balance" [ "owner"; "balance" ];
  for i = 1 to 50 do
    Table.insert t
      [| v_int i; v_str (if i mod 2 = 0 then "alice" else "bob"); v_int i; Value.Null |]
  done;
  let where =
    Predicate.conj
      [ Predicate.Eq ("owner", v_str "alice"); Predicate.Cmp (Predicate.Ge, "balance", v_int 40) ]
  in
  let rows = Table.scan ~where t in
  Alcotest.(check int) "six alices >= 40" 6 (List.length rows);
  Alcotest.(check bool)
    (Printf.sprintf "examined %d candidates, not all 50" (Table.last_scan_cost t))
    true
    (Table.last_scan_cost t < 10)

(* --- Aggregate ----------------------------------------------------------- *)

let test_aggregate_scalars () =
  let t = make_accounts () in
  Alcotest.(check int) "count" 3 (Aggregate.count t);
  Alcotest.(check int) "count where" 2
    (Aggregate.count ~where:(Predicate.Eq ("owner", v_str "alice")) t);
  Alcotest.(check int) "sum" 400 (Aggregate.sum_int t ~column:"balance");
  Alcotest.(check (float 1e-9)) "sum float of ints" 400.
    (Aggregate.sum_float t ~column:"balance");
  Alcotest.(check bool) "min" true (Aggregate.min_value t ~column:"balance" = Some (v_int 50));
  Alcotest.(check bool) "max" true (Aggregate.max_value t ~column:"balance" = Some (v_int 250));
  let empty = Table.create (accounts_schema ()) in
  Alcotest.(check bool) "min of empty" true (Aggregate.min_value empty ~column:"balance" = None);
  Alcotest.(check int) "sum of empty" 0 (Aggregate.sum_int empty ~column:"balance")

let test_aggregate_group_by () =
  let t = make_accounts () in
  Alcotest.(check bool) "count by owner" true
    (Aggregate.count_by t ~key:[ "owner" ]
    = [ ([ v_str "alice" ], 2); ([ v_str "bob" ], 1) ]);
  Alcotest.(check bool) "sum by owner" true
    (Aggregate.sum_float_by t ~key:[ "owner" ] ~column:"balance"
    = [ ([ v_str "alice" ], 150.); ([ v_str "bob" ], 250.) ]);
  Alcotest.(check bool) "group with predicate" true
    (Aggregate.count_by ~where:(Predicate.Cmp (Predicate.Ge, "balance", v_int 100)) t
       ~key:[ "owner" ]
    = [ ([ v_str "alice" ], 1); ([ v_str "bob" ], 1) ])

(* --- Database ---------------------------------------------------------- *)

let test_database () =
  let db = Database.create () in
  let _accounts = Database.create_table db (accounts_schema ()) in
  Alcotest.(check (list string)) "names" [ "accounts" ] (Database.table_names db);
  Alcotest.(check bool) "find" true (Option.is_some (Database.find_table db "accounts"));
  Alcotest.(check bool) "find missing" true (Option.is_none (Database.find_table db "ghost"));
  Alcotest.check_raises "dup table"
    (Invalid_argument "Database.create_table: duplicate accounts")
    (fun () -> ignore (Database.create_table db (accounts_schema ())))

let test_database_copy () =
  let db = Database.create () in
  let t = Database.create_table db (accounts_schema ()) in
  Table.insert t [| v_int 1; v_str "a"; v_int 7; Value.Null |];
  let db2 = Database.copy db in
  ignore (Table.delete t [ v_int 1 ]);
  Alcotest.(check int) "copy unaffected" 1 (Table.cardinality (Database.table db2 "accounts"));
  Alcotest.(check int) "total rows" 1 (Database.total_rows db2)

(* --- qcheck: table/index coherence under random mutation sequences ----- *)

type op = Insert of int * int | Delete of int | Update of int * int

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun k v -> Insert (k, v)) (int_range 0 20) (int_range 0 100);
        map (fun k -> Delete k) (int_range 0 20);
        map2 (fun k v -> Update (k, v)) (int_range 0 20) (int_range 0 100);
      ])

let apply_op model table op =
  (* [model] is an association list mirror of the table *)
  match op with
  | Insert (k, v) ->
      if List.mem_assoc k !model then ()
      else begin
        Table.insert table [| v_int k; v_str "o"; v_int v; Value.Null |];
        model := (k, v) :: !model
      end
  | Delete k ->
      if List.mem_assoc k !model then begin
        ignore (Table.delete table [ v_int k ]);
        model := List.remove_assoc k !model
      end
  | Update (k, v) ->
      if List.mem_assoc k !model then begin
        ignore (Table.set_column table [ v_int k ] "balance" (v_int v));
        model := (k, v) :: List.remove_assoc k !model
      end

let prop_table_matches_model =
  QCheck2.Test.make ~name:"table: random ops match model" ~count:200
    QCheck2.Gen.(list_size (int_range 0 60) op_gen)
    (fun ops ->
      let table = Table.create (accounts_schema ()) in
      Table.add_index table ~name:"by_balance" [ "balance" ];
      let model = ref [] in
      List.iter (apply_op model table) ops;
      (* cardinality and every row agree with the model *)
      Table.cardinality table = List.length !model
      && List.for_all
           (fun (k, v) ->
             match Table.get table [ v_int k ] with
             | Some row -> Value.as_int row.(2) = v
             | None -> false)
           !model
      (* the index agrees with a predicate scan for every live balance *)
      && List.for_all
           (fun (_, v) ->
             let via_index = Table.index_lookup table ~index:"by_balance" [ v_int v ] in
             let via_scan = Table.scan_keys ~where:(Predicate.Eq ("balance", v_int v)) table in
             List.sort compare via_index = List.sort compare via_scan)
           !model)

let suites =
  [
    ( "relation.value",
      [
        Alcotest.test_case "equal" `Quick test_value_equal;
        Alcotest.test_case "compare" `Quick test_value_compare;
        Alcotest.test_case "projections" `Quick test_value_projections;
        Alcotest.test_case "typing" `Quick test_value_typing;
      ] );
    ( "relation.schema",
      [
        Alcotest.test_case "basic" `Quick test_schema_basic;
        Alcotest.test_case "rejects duplicates" `Quick test_schema_rejects_duplicates;
        Alcotest.test_case "rejects bad keys" `Quick test_schema_rejects_bad_key;
        Alcotest.test_case "check_row" `Quick test_schema_check_row;
        Alcotest.test_case "key_of_row composite" `Quick test_schema_key_of_row;
      ] );
    ( "relation.predicate",
      [
        Alcotest.test_case "eval" `Quick test_predicate_eval;
        Alcotest.test_case "equality bindings" `Quick test_predicate_bindings;
        Alcotest.test_case "unknown column" `Quick test_predicate_unknown_column;
        Alcotest.test_case "conj" `Quick test_predicate_conj;
      ] );
    ( "relation.table",
      [
        Alcotest.test_case "insert/get" `Quick test_table_insert_get;
        Alcotest.test_case "get returns copy" `Quick test_table_get_returns_copy;
        Alcotest.test_case "duplicate key" `Quick test_table_duplicate_key;
        Alcotest.test_case "invalid row" `Quick test_table_invalid_row;
        Alcotest.test_case "update" `Quick test_table_update;
        Alcotest.test_case "set_column" `Quick test_table_set_column;
        Alcotest.test_case "update missing" `Quick test_table_update_missing;
        Alcotest.test_case "update cannot change key" `Quick test_table_update_key_change_rejected;
        Alcotest.test_case "delete" `Quick test_table_delete;
        Alcotest.test_case "scan full" `Quick test_table_scan_full;
        Alcotest.test_case "scan with predicate" `Quick test_table_scan_predicate;
        Alcotest.test_case "scan keys" `Quick test_table_scan_keys;
        Alcotest.test_case "index lookup + maintenance" `Quick test_index_lookup_and_maintenance;
        Alcotest.test_case "index accelerates scan" `Quick test_index_accelerates_scan;
        Alcotest.test_case "index on populated table" `Quick test_index_on_populated_table;
        Alcotest.test_case "index duplicate name" `Quick test_index_duplicate_name;
        Alcotest.test_case "iter snapshot" `Quick test_table_iter_sorted_snapshot;
        Alcotest.test_case "fold" `Quick test_table_fold;
        Alcotest.test_case "copy independent" `Quick test_table_copy_independent;
        Alcotest.test_case "field by name" `Quick test_field;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_table_matches_model;
      ] );
    ( "relation.ordered_index",
      [
        Alcotest.test_case "basic" `Quick test_oi_basic;
        Alcotest.test_case "min above" `Quick test_oi_min_above;
        Alcotest.test_case "range bounds" `Quick test_oi_range_bounds;
        Alcotest.test_case "duplicate keys" `Quick test_oi_duplicate_keys;
        Alcotest.test_case "composite prefix" `Quick test_oi_prefix_composite;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_oi_matches_model;
        Alcotest.test_case "table integration" `Quick test_table_ordered_integration;
        Alcotest.test_case "planner uses ordered index" `Quick test_ordered_planner;
      ] );
    ( "relation.aggregate",
      [
        Alcotest.test_case "scalars" `Quick test_aggregate_scalars;
        Alcotest.test_case "group by" `Quick test_aggregate_group_by;
      ] );
    ( "relation.database",
      [
        Alcotest.test_case "namespace" `Quick test_database;
        Alcotest.test_case "deep copy" `Quick test_database_copy;
      ] );
  ]
