(* Tests for acc.tpcc: generators, loader, the decomposition's interference
   facts, the five transactions under both regimes, the 12-condition
   consistency checker, and crash recovery with pending compensations. *)

open Acc_tpcc
module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Value = Acc_relation.Value
module Predicate = Acc_relation.Predicate
module Executor = Acc_txn.Executor
module Lock_service = Acc_lock.Lock_service
module Schedule = Acc_txn.Schedule
module Runtime = Acc_core.Runtime
module Program = Acc_core.Program
module Interference = Acc_core.Interference
module Lock_table = Acc_lock.Lock_table
module Prng = Acc_util.Prng

let v_int n = Value.Int n
let params = Params.default

let check_consistent ?(what = "consistency") db =
  match Consistency.check db with
  | [] -> ()
  | problems -> Alcotest.fail (what ^ ": " ^ String.concat "; " problems)

let fresh_engine ?(seed = 5) () =
  Executor.create ~sem:Txns.semantics (Load.populate ~seed params)

(* --- params ------------------------------------------------------------- *)

let test_params () =
  Params.validate Params.default;
  Params.validate Params.full;
  Alcotest.(check bool) "bad params rejected" true
    (try
       Params.validate { Params.default with Params.items = 0 };
       false
     with Invalid_argument _ -> true)

(* --- random generators ---------------------------------------------------- *)

let test_nurand_bounds () =
  let gen = Random_gen.create ~seed:1 params in
  for _ = 1 to 2000 do
    let v = Random_gen.nurand gen ~a:1023 ~x:1 ~y:3000 in
    Alcotest.(check bool) "in [1,3000]" true (v >= 1 && v <= 3000)
  done

let test_nurand_nonuniform () =
  (* NURand concentrates mass: the most popular value should appear far more
     often than 1/range *)
  let gen = Random_gen.create ~seed:2 params in
  let counts = Hashtbl.create 64 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Random_gen.nurand gen ~a:255 ~x:1 ~y:1000 in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let max_count = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  Alcotest.(check bool) "peaked distribution" true (max_count > 3 * n / 1000)

let test_customer_item_bounds () =
  let gen = Random_gen.create ~seed:3 params in
  for _ = 1 to 1000 do
    let c = Random_gen.customer gen in
    Alcotest.(check bool) "customer in range" true
      (c >= 1 && c <= params.Params.customers_per_district);
    let i = Random_gen.item gen in
    Alcotest.(check bool) "item in range" true (i >= 1 && i <= params.Params.items)
  done

let test_district_skew () =
  let gen = Random_gen.create ~seed:4 params in
  let hot = ref 0 and n = 10_000 in
  for _ = 1 to n do
    if Random_gen.district gen ~skewed:true = 1 then incr hot
  done;
  let share = float_of_int !hot /. float_of_int n in
  Alcotest.(check bool) "district 1 gets ~55%" true (share > 0.5 && share < 0.6);
  let gen2 = Random_gen.create ~seed:4 params in
  let hot2 = ref 0 in
  for _ = 1 to n do
    if Random_gen.district gen2 ~skewed:false = 1 then incr hot2
  done;
  let share2 = float_of_int !hot2 /. float_of_int n in
  Alcotest.(check bool) "uniform gives ~10%" true (share2 > 0.07 && share2 < 0.13)

let test_distinct_items () =
  let gen = Random_gen.create ~seed:5 params in
  for _ = 1 to 200 do
    let items = Random_gen.distinct_items gen ~count:15 in
    Alcotest.(check int) "count" 15 (List.length items);
    Alcotest.(check int) "distinct" 15 (List.length (List.sort_uniq compare items))
  done

let test_last_name () =
  let gen = Random_gen.create ~seed:6 params in
  Alcotest.(check string) "name 0" "BARBARBAR" (Random_gen.last_name gen 0);
  Alcotest.(check string) "name 371" "PRICALLYOUGHT" (Random_gen.last_name gen 371);
  Alcotest.(check string) "name 999" "EINGEINGEING" (Random_gen.last_name gen 999)

let test_mix_frequencies () =
  let env = Txns.default_env ~seed:8 params in
  let counts = Hashtbl.create 8 in
  let n = 20_000 in
  for _ = 1 to n do
    let name = Txns.txn_name (Txns.gen_input env) in
    Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
  done;
  let share name = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts name)) /. float_of_int n in
  Alcotest.(check bool) "new_order ~45%" true (Float.abs (share "new_order" -. 0.45) < 0.02);
  Alcotest.(check bool) "payment ~43%" true (Float.abs (share "payment" -. 0.43) < 0.02);
  Alcotest.(check bool) "order_status ~4%" true (Float.abs (share "order_status" -. 0.04) < 0.01);
  Alcotest.(check bool) "delivery ~4%" true (Float.abs (share "delivery" -. 0.04) < 0.01);
  Alcotest.(check bool) "stock_level ~4%" true (Float.abs (share "stock_level" -. 0.04) < 0.01)

(* --- loader ---------------------------------------------------------------- *)

let test_load_cardinalities () =
  let db = Load.populate ~seed:1 params in
  let card name = Table.cardinality (Database.table db name) in
  Alcotest.(check int) "warehouses" params.Params.warehouses (card "warehouse");
  Alcotest.(check int) "districts"
    (params.Params.warehouses * params.Params.districts_per_warehouse)
    (card "district");
  Alcotest.(check int) "customers"
    (params.Params.warehouses * params.Params.districts_per_warehouse
   * params.Params.customers_per_district)
    (card "customer");
  Alcotest.(check int) "items" params.Params.items (card "item");
  Alcotest.(check int) "stock" (params.Params.warehouses * params.Params.items) (card "stock");
  Alcotest.(check int) "orders"
    (params.Params.warehouses * params.Params.districts_per_warehouse
   * params.Params.initial_orders_per_district)
    (card "orders");
  Alcotest.(check int) "history = customers" (card "customer") (card "history")

let test_load_consistent () =
  check_consistent ~what:"fresh database" (Load.populate ~seed:1 params);
  check_consistent ~what:"fresh database (other seed)" (Load.populate ~seed:99 params)

let test_load_deterministic () =
  let a = Load.populate ~seed:11 params and b = Load.populate ~seed:11 params in
  Alcotest.(check int) "same total rows" (Database.total_rows a) (Database.total_rows b);
  let row db = Table.get_exn (Database.table db "district") (Load.district_key ~w:1 ~d:3) in
  Alcotest.(check bool) "same district row" true (row a = row b)

(* --- the decomposition ------------------------------------------------------ *)

let test_eleven_forward_steps () =
  Alcotest.(check int) "eleven distinct forward step types" 11 Txns.forward_step_count

let test_counter_vs_ytd_headline () =
  (* Sec 5.1: "updates to the counter and the year-to-date payment field do
     not interfere and hence [new-order and payment] within the same
     district [may] interleave" *)
  let si step assertion = Interference.step_interferes Txns.interference ~step_type:step ~assertion in
  (* payment's district step (id 7) does not interfere with new_order's
     counter assertion (id 1) — different columns of the same tuple *)
  Alcotest.(check bool) "payment district-ytd vs counter assertion" false (si 7 1);
  (* new_order's counter step (id 1) does not interfere with payment's
     interstep assertion (id 3) *)
  Alcotest.(check bool) "new_order counter vs payment assertion" false (si 1 3);
  (* the hand-proved monotonicity: other new_orders' counter increments do
     not invalidate the counter assertion *)
  Alcotest.(check bool) "counter increments commute" false (si 1 1);
  (* but delivery genuinely interferes with the new_order loop invariant *)
  Alcotest.(check bool) "delivery vs order lines invariant" true (si 11 2)

(* --- running transactions ---------------------------------------------------- *)

let run_inputs eng env inputs =
  let outcomes = ref [] in
  Schedule.run ~policy:Runtime.victim_policy eng
    (List.map (fun input () -> outcomes := Txns.run_acc eng env input :: !outcomes) inputs);
  List.rev !outcomes

let test_each_type_acc () =
  let eng = fresh_engine () in
  let env = Txns.default_env ~seed:21 params in
  let inputs =
    [
      Txns.New_order { (Txns.gen_new_order env) with Txns.no_fail_last = false };
      Txns.Payment (Txns.gen_payment env);
      Txns.Order_status { Txns.os_w = 1; os_d = 2; os_customer = Txns.By_id 3 };
      Txns.Delivery { Txns.dl_w = 1; dl_carrier = 5 };
      Txns.Stock_level { Txns.sl_w = 1; sl_d = 1; sl_threshold = 15 };
    ]
  in
  let outcomes = run_inputs eng env inputs in
  List.iter
    (fun o -> Alcotest.(check bool) "committed" true (o = Runtime.Committed))
    outcomes;
  check_consistent (Executor.db eng);
  Alcotest.(check int) "locks drained" 0 (Lock_service.lock_count (Executor.lock_service eng))

let test_each_type_flat () =
  let eng = Executor.create ~sem:Acc_lock.Mode.no_semantics (Load.populate ~seed:5 params) in
  let env = Txns.default_env ~seed:21 params in
  let inputs =
    [
      Txns.New_order { (Txns.gen_new_order env) with Txns.no_fail_last = false };
      Txns.Payment (Txns.gen_payment env);
      Txns.Order_status { Txns.os_w = 1; os_d = 2; os_customer = Txns.By_id 3 };
      Txns.Delivery { Txns.dl_w = 1; dl_carrier = 5 };
      Txns.Stock_level { Txns.sl_w = 1; sl_d = 1; sl_threshold = 15 };
    ]
  in
  Schedule.run eng
    (List.map
       (fun input () ->
         match Txns.run_flat eng env input with
         | `Committed -> ()
         | `Aborted -> Alcotest.fail "unexpected abort")
       inputs);
  check_consistent (Executor.db eng);
  Alcotest.(check int) "locks drained" 0 (Lock_service.lock_count (Executor.lock_service eng))

let test_forced_abort_semantics () =
  (* the 1% rule: under ACC the new-order compensates and leaves a cancelled
     order; under 2PL it aborts physically and leaves no trace *)
  let env = Txns.default_env ~seed:22 params in
  let failing = { (Txns.gen_new_order env) with Txns.no_fail_last = true } in
  (* ACC *)
  let eng = fresh_engine () in
  let outcomes = run_inputs eng env [ Txns.New_order failing ] in
  (match outcomes with
  | [ Runtime.Compensated { completed_steps } ] ->
      Alcotest.(check bool) "some steps completed" true (completed_steps >= 2)
  | _ -> Alcotest.fail "expected compensation");
  check_consistent (Executor.db eng);
  let cancelled =
    Table.fold
      (fun _ row acc -> if Value.as_int row.(4) = -2 then acc + 1 else acc)
      (Database.table (Executor.db eng) "orders")
      0
  in
  Alcotest.(check int) "one cancelled order" 1 cancelled;
  (* baseline *)
  let engb = Executor.create ~sem:Acc_lock.Mode.no_semantics (Load.populate ~seed:5 params) in
  Schedule.run engb
    [
      (fun () ->
        match Txns.run_flat engb env (Txns.New_order failing) with
        | `Aborted -> ()
        | `Committed -> Alcotest.fail "expected abort");
    ];
  check_consistent (Executor.db engb);
  Alcotest.(check int) "no cancelled order under 2PL" 0
    (Table.fold
       (fun _ row acc -> if Value.as_int row.(4) = -2 then acc + 1 else acc)
       (Database.table (Executor.db engb) "orders")
       0)

let test_payment_by_last_name () =
  (* by-name selection resolves through the last-name index and the payment
     lands on the midpoint customer of that name *)
  let eng = fresh_engine () in
  let env = Txns.default_env ~seed:71 params in
  let db = Executor.db eng in
  (* find a name carried by at least one customer of district 1 *)
  let name =
    Value.as_str (Table.get_exn (Database.table db "customer") (Load.customer_key ~w:1 ~d:1 ~c:5)).(3)
  in
  let matches_before =
    Table.index_lookup (Database.table db "customer") ~index:"by_last"
      [ v_int 1; v_int 1; Value.Str name ]
  in
  Alcotest.(check bool) "name exists" true (matches_before <> []);
  let input =
    Txns.Payment
      { Txns.p_w = 1; p_d = 1; p_c_w = 1; p_c_d = 1; p_customer = Txns.By_last_name name; p_amount = 42.0 }
  in
  let outcomes = run_inputs eng env [ input ] in
  Alcotest.(check bool) "committed" true (outcomes = [ Runtime.Committed ]);
  check_consistent (Executor.db eng);
  (* the midpoint customer got the payment *)
  let midpoint = List.nth matches_before (List.length matches_before / 2) in
  let row = Table.get_exn (Database.table db "customer") midpoint in
  Alcotest.(check int) "payment count bumped" 2 (Value.as_int row.(8))

let test_payment_unknown_name_aborts () =
  let eng = fresh_engine () in
  let env = Txns.default_env ~seed:72 params in
  let input =
    Txns.Payment
      { Txns.p_w = 1; p_d = 1; p_c_w = 1; p_c_d = 1; p_customer = Txns.By_last_name "NOSUCHNAME"; p_amount = 1.0 }
  in
  let outcomes = run_inputs eng env [ input ] in
  (match outcomes with
  | [ Runtime.Compensated { completed_steps } ] ->
      (* steps 1 and 2 had applied the amounts; compensation undid them *)
      Alcotest.(check int) "failed in step 3" 2 completed_steps
  | _ -> Alcotest.fail "expected compensation");
  check_consistent (Executor.db eng)

let test_delivery_drains_queue () =
  let eng = fresh_engine () in
  let env = Txns.default_env ~seed:23 params in
  (* enqueue two orders in district 1, then deliver twice *)
  let order d =
    Txns.New_order
      { Txns.no_w = 1; no_d = d; no_c = 1; no_items = [ (1, 2, 1); (2, 1, 1) ]; no_fail_last = false }
  in
  let delivery = Txns.Delivery { Txns.dl_w = 1; dl_carrier = 9 } in
  let outcomes = run_inputs eng env [ order 1; order 1; delivery; delivery ] in
  List.iter (fun o -> Alcotest.(check bool) "committed" true (o = Runtime.Committed)) outcomes;
  let queue_len =
    Table.scan_count
      ~where:(Predicate.conj [ Predicate.Eq ("no_w_id", v_int 1); Predicate.Eq ("no_d_id", v_int 1) ])
      (Database.table (Executor.db eng) "new_order")
  in
  Alcotest.(check int) "district 1 queue drained" 0 queue_len;
  check_consistent (Executor.db eng)

let test_consistency_detects_corruption () =
  let db = Load.populate ~seed:5 params in
  check_consistent db;
  (* break C1/C9: bump a district's ytd *)
  ignore
    (Table.update (Database.table db "district") (Load.district_key ~w:1 ~d:1) (fun row ->
         row.(4) <- Value.Float (Value.number row.(4) +. 1.0);
         row));
  Alcotest.(check bool) "violation found" true (Consistency.check db <> []);
  Alcotest.(check int) "12 conditions documented" 12 (List.length Consistency.conditions)

(* --- crash recovery ----------------------------------------------------------- *)

let test_recovery_every_prefix_mixed () =
  let baseline = Load.populate ~seed:31 params in
  let eng = Executor.create ~sem:Txns.semantics (Database.copy baseline) in
  let env = Txns.default_env ~seed:32 params in
  let inputs =
    [
      Txns.New_order { (Txns.gen_new_order env) with Txns.no_fail_last = false };
      Txns.Payment (Txns.gen_payment env);
      Txns.Delivery { Txns.dl_w = 1; dl_carrier = 2 };
      Txns.New_order { (Txns.gen_new_order env) with Txns.no_fail_last = true };
      Txns.Payment (Txns.gen_payment env);
    ]
  in
  ignore (run_inputs eng env inputs);
  let log = Executor.log eng in
  for cut = 0 to Acc_wal.Log.length log do
    let db = Recovery_comp.recover_and_compensate ~baseline (Acc_wal.Log.prefix log cut) in
    match Consistency.check db with
    | [] -> ()
    | problems ->
        Alcotest.fail (Printf.sprintf "cut %d: %s" cut (String.concat "; " problems))
  done

let test_checkpoint_truncates_recovery () =
  (* run work, checkpoint at quiescence, run more work: recovery from the
     checkpoint over the suffix matches full recovery, compensations and all *)
  let baseline = Load.populate ~seed:41 params in
  let eng = Executor.create ~sem:Txns.semantics (Database.copy baseline) in
  let env = Txns.default_env ~seed:42 params in
  let batch n = List.init n (fun _ -> Txns.gen_input env) in
  ignore (run_inputs eng env (batch 6));
  let cp = Executor.checkpoint eng in
  ignore
    (run_inputs eng env
       (Txns.New_order { (Txns.gen_new_order env) with Txns.no_fail_last = true } :: batch 5));
  let log = Executor.log eng in
  (* a crash after the checkpoint, mid-suffix *)
  let cut = Acc_wal.Log.length log - 3 in
  let prefix = Acc_wal.Log.prefix log cut in
  let full = Acc_wal.Recovery.recover ~baseline prefix in
  Recovery_comp.complete_all full.Acc_wal.Recovery.db full;
  (* checkpoint-based recovery only sees the suffix *)
  let suffix_records =
    List.filteri (fun i _ -> i >= Acc_wal.Checkpoint.position cp) prefix
  in
  let from_cp =
    Acc_wal.Recovery.recover ~baseline:(Acc_wal.Checkpoint.snapshot cp) suffix_records
  in
  Recovery_comp.complete_all from_cp.Acc_wal.Recovery.db from_cp;
  check_consistent ~what:"full recovery" full.Acc_wal.Recovery.db;
  check_consistent ~what:"checkpoint recovery" from_cp.Acc_wal.Recovery.db;
  (* identical databases *)
  List.iter
    (fun tname ->
      let a = Database.table full.Acc_wal.Recovery.db tname in
      let b = Database.table from_cp.Acc_wal.Recovery.db tname in
      Alcotest.(check int) (tname ^ " cardinality") (Table.cardinality a) (Table.cardinality b);
      Table.iter
        (fun pk row ->
          match Table.get b pk with
          | Some row' ->
              if row <> row' then Alcotest.fail (tname ^ ": row mismatch after recovery")
          | None -> Alcotest.fail (tname ^ ": row missing after checkpoint recovery"))
        a)
    Schema.table_names

let test_multi_warehouse () =
  let params2 = { params with Params.warehouses = 2 } in
  let db = Load.populate ~seed:51 params2 in
  Alcotest.(check int) "two warehouses" 2 (Table.cardinality (Database.table db "warehouse"));
  check_consistent ~what:"2-warehouse load" db;
  let eng = Executor.create ~sem:Txns.semantics db in
  let env = { (Txns.default_env ~seed:52 params2) with Txns.params = params2 } in
  let inputs = List.init 12 (fun _ -> Txns.gen_input env) in
  (* both warehouses get traffic *)
  Alcotest.(check bool) "traffic on both warehouses" true
    (List.exists
       (fun i -> match i with Txns.New_order n -> n.Txns.no_w = 2 | _ -> false)
       inputs
    || List.exists
         (fun i -> match i with Txns.Payment p -> p.Txns.p_w = 2 | _ -> false)
         inputs);
  ignore (run_inputs eng env inputs);
  check_consistent ~what:"after 2-warehouse mix" (Executor.db eng)

let test_full_scale_load () =
  (* the Rev 3.1 cardinalities load and pass the consistency conditions *)
  let db = Load.populate ~seed:61 Params.full in
  Alcotest.(check int) "customers" 30_000 (Table.cardinality (Database.table db "customer"));
  Alcotest.(check int) "stock" 100_000 (Table.cardinality (Database.table db "stock"));
  Alcotest.(check int) "orders" 30_000 (Table.cardinality (Database.table db "orders"));
  check_consistent ~what:"full-scale load" db

(* --- property: random concurrent mixes stay consistent -------------------- *)

let prop_concurrent_mix_consistent =
  QCheck2.Test.make ~name:"tpcc: random concurrent ACC mixes stay consistent" ~count:15
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 2 6))
    (fun (seed, n_fibers) ->
      let eng = fresh_engine ~seed:(seed mod 1000) () in
      let env = Txns.default_env ~seed params in
      let fibers =
        List.init n_fibers (fun _ ->
            let env = { env with Txns.gen = Random_gen.split env.Txns.gen } in
            fun () ->
              for _ = 1 to 3 do
                ignore (Txns.run_acc eng env (Txns.gen_input env))
              done)
      in
      Schedule.run ~policy:Runtime.victim_policy eng fibers;
      Consistency.check (Executor.db eng) = []
      && Lock_service.lock_count (Executor.lock_service eng) = 0)

let suites =
  [
    ( "tpcc.generators",
      [
        Alcotest.test_case "params" `Quick test_params;
        Alcotest.test_case "nurand bounds" `Quick test_nurand_bounds;
        Alcotest.test_case "nurand non-uniform" `Quick test_nurand_nonuniform;
        Alcotest.test_case "customer/item bounds" `Quick test_customer_item_bounds;
        Alcotest.test_case "district skew" `Quick test_district_skew;
        Alcotest.test_case "distinct items" `Quick test_distinct_items;
        Alcotest.test_case "last names" `Quick test_last_name;
        Alcotest.test_case "mix frequencies" `Quick test_mix_frequencies;
      ] );
    ( "tpcc.load",
      [
        Alcotest.test_case "cardinalities" `Quick test_load_cardinalities;
        Alcotest.test_case "fresh db consistent" `Quick test_load_consistent;
        Alcotest.test_case "deterministic" `Quick test_load_deterministic;
      ] );
    ( "tpcc.decomposition",
      [
        Alcotest.test_case "eleven forward steps" `Quick test_eleven_forward_steps;
        Alcotest.test_case "counter vs ytd (the Sec 5.1 headline)" `Quick
          test_counter_vs_ytd_headline;
      ] );
    ( "tpcc.transactions",
      [
        Alcotest.test_case "each type under ACC" `Quick test_each_type_acc;
        Alcotest.test_case "each type under 2PL" `Quick test_each_type_flat;
        Alcotest.test_case "forced abort semantics" `Quick test_forced_abort_semantics;
        Alcotest.test_case "payment by last name" `Quick test_payment_by_last_name;
        Alcotest.test_case "unknown name aborts" `Quick test_payment_unknown_name_aborts;
        Alcotest.test_case "delivery drains queue" `Quick test_delivery_drains_queue;
        Alcotest.test_case "checker detects corruption" `Quick test_consistency_detects_corruption;
      ] );
    ( "tpcc.recovery",
      [
        Alcotest.test_case "crash at every prefix (mixed types)" `Slow
          test_recovery_every_prefix_mixed;
        Alcotest.test_case "checkpoint truncates recovery" `Quick
          test_checkpoint_truncates_recovery;
        Alcotest.test_case "multi-warehouse" `Quick test_multi_warehouse;
        Alcotest.test_case "full-scale load" `Slow test_full_scale_load;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_concurrent_mix_consistent;
      ] );
  ]
