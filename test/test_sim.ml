(* Tests for acc.sim: event ordering, delays, conditions, resources, and
   queueing sanity against analytic expectations. *)

module Sim = Acc_sim.Sim
module Prng = Acc_util.Prng
module Tally = Acc_util.Stats.Tally

let check_float = Alcotest.(check (float 1e-9))

let test_clock_starts_at_zero () =
  let s = Sim.create () in
  check_float "t=0" 0. (Sim.now s);
  Sim.run s;
  check_float "still 0 with no events" 0. (Sim.now s)

let test_delay_advances_clock () =
  let s = Sim.create () in
  let seen = ref [] in
  Sim.spawn s (fun () ->
      seen := (Sim.now s, "start") :: !seen;
      Sim.delay 2.5;
      seen := (Sim.now s, "mid") :: !seen;
      Sim.delay 1.5;
      seen := (Sim.now s, "end") :: !seen);
  Sim.run s;
  Alcotest.(check bool) "timeline" true
    (List.rev !seen = [ (0., "start"); (2.5, "mid"); (4., "end") ]);
  check_float "final clock" 4. (Sim.now s)

let test_spawn_at () =
  let s = Sim.create () in
  let order = ref [] in
  Sim.spawn s ~at:5. (fun () -> order := "late" :: !order);
  Sim.spawn s ~at:1. (fun () -> order := "early" :: !order);
  Sim.run s;
  Alcotest.(check (list string)) "time order beats insertion order" [ "early"; "late" ]
    (List.rev !order)

let test_same_time_fifo () =
  let s = Sim.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Sim.spawn s ~at:1. (fun () -> order := i :: !order)
  done;
  Sim.run s;
  Alcotest.(check (list int)) "insertion order at equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_until_freezes () =
  let s = Sim.create () in
  let ran_late = ref false in
  Sim.spawn s ~at:10. (fun () -> ran_late := true);
  Sim.spawn s ~at:1. (fun () -> ());
  Sim.run ~until:5. s;
  Alcotest.(check bool) "late event dropped" false !ran_late;
  check_float "clock stopped at until" 5. (Sim.now s)

let test_interleaved_processes () =
  let s = Sim.create () in
  let trace = ref [] in
  let proc name start step =
    Sim.spawn s ~at:start (fun () ->
        for _ = 1 to 3 do
          trace := (Sim.now s, name) :: !trace;
          Sim.delay step
        done)
  in
  proc "a" 0. 2.;
  proc "b" 1. 2.;
  Sim.run s;
  Alcotest.(check bool) "alternating" true
    (List.rev !trace
    = [ (0., "a"); (1., "b"); (2., "a"); (3., "b"); (4., "a"); (5., "b") ])

let test_zero_delay_keeps_order () =
  let s = Sim.create () in
  let order = ref [] in
  Sim.spawn s (fun () ->
      order := "a1" :: !order;
      Sim.delay 0.;
      order := "a2" :: !order);
  Sim.spawn s (fun () -> order := "b" :: !order);
  Sim.run s;
  (* a's continuation is scheduled after b's start *)
  Alcotest.(check (list string)) "zero delay requeues" [ "a1"; "b"; "a2" ] (List.rev !order)

(* --- conditions -------------------------------------------------------- *)

let test_condition_signal () =
  let s = Sim.create () in
  let c = Sim.Condition.create () in
  let got = ref 0 in
  Sim.spawn s (fun () -> got := Sim.Condition.wait c);
  Sim.spawn s (fun () ->
      Sim.delay 3.;
      ignore (Sim.Condition.signal s c 42));
  Sim.run s;
  Alcotest.(check int) "value delivered" 42 !got

let test_condition_fifo () =
  let s = Sim.create () in
  let c = Sim.Condition.create () in
  let order = ref [] in
  for i = 1 to 3 do
    Sim.spawn s (fun () ->
        let v = Sim.Condition.wait c in
        order := (i, v) :: !order)
  done;
  Sim.spawn s (fun () ->
      Sim.delay 1.;
      ignore (Sim.Condition.signal s c 10);
      ignore (Sim.Condition.signal s c 20);
      ignore (Sim.Condition.signal s c 30));
  Sim.run s;
  Alcotest.(check (list (pair int int))) "FIFO wakeups" [ (1, 10); (2, 20); (3, 30) ]
    (List.rev !order)

let test_condition_signal_empty () =
  let s = Sim.create () in
  Sim.spawn s (fun () ->
      Alcotest.(check bool) "no waiter" false (Sim.Condition.signal s (Sim.Condition.create ()) 1));
  Sim.run s

let test_condition_broadcast () =
  let s = Sim.create () in
  let c = Sim.Condition.create () in
  let woken = ref 0 in
  for _ = 1 to 4 do
    Sim.spawn s (fun () ->
        ignore (Sim.Condition.wait c);
        incr woken)
  done;
  Sim.spawn s (fun () ->
      Sim.delay 1.;
      Alcotest.(check int) "broadcast count" 4 (Sim.Condition.broadcast s c ()));
  Sim.run s;
  Alcotest.(check int) "all woken" 4 !woken

(* --- mailboxes ------------------------------------------------------------ *)

let test_mailbox_send_recv () =
  let s = Sim.create () in
  let m = Sim.Mailbox.create () in
  let got = ref [] in
  Sim.spawn s (fun () ->
      for _ = 1 to 3 do
        got := Sim.Mailbox.recv m :: !got
      done);
  Sim.spawn s (fun () ->
      Sim.delay 1.;
      Sim.Mailbox.send s m "a";
      Sim.Mailbox.send s m "b";
      Sim.delay 1.;
      Sim.Mailbox.send s m "c");
  Sim.run s;
  Alcotest.(check (list string)) "fifo order" [ "a"; "b"; "c" ] (List.rev !got)

let test_mailbox_buffering () =
  let s = Sim.create () in
  let m = Sim.Mailbox.create () in
  Sim.spawn s (fun () ->
      Sim.Mailbox.send s m 1;
      Sim.Mailbox.send s m 2;
      Alcotest.(check int) "buffered" 2 (Sim.Mailbox.length m);
      Alcotest.(check (option int)) "try_recv" (Some 1) (Sim.Mailbox.try_recv m);
      Alcotest.(check (option int)) "try_recv 2" (Some 2) (Sim.Mailbox.try_recv m);
      Alcotest.(check (option int)) "empty" None (Sim.Mailbox.try_recv m));
  Sim.run s

let test_mailbox_producer_consumer () =
  (* the consumer is paced by the producer's simulated schedule *)
  let s = Sim.create () in
  let m = Sim.Mailbox.create () in
  let stamps = ref [] in
  Sim.spawn s (fun () ->
      for _ = 1 to 3 do
        ignore (Sim.Mailbox.recv m);
        stamps := Sim.now s :: !stamps
      done);
  Sim.spawn s (fun () ->
      for _ = 1 to 3 do
        Sim.delay 2.;
        Sim.Mailbox.send s m ()
      done);
  Sim.run s;
  Alcotest.(check (list (float 1e-9))) "paced" [ 2.; 4.; 6. ] (List.rev !stamps)

(* --- resources ---------------------------------------------------------- *)

let test_resource_serializes () =
  let s = Sim.create () in
  let r = Sim.Resource.create s ~capacity:1 in
  let finish = ref [] in
  for i = 1 to 3 do
    Sim.spawn s (fun () ->
        Sim.Resource.use r 2.;
        finish := (i, Sim.now s) :: !finish)
  done;
  Sim.run s;
  Alcotest.(check bool) "sequential service" true
    (List.rev !finish = [ (1, 2.); (2, 4.); (3, 6.) ]);
  check_float "busy time" 6. (Sim.Resource.busy_time r);
  check_float "full utilization" 1. (Sim.Resource.utilization r ~at:6.)

let test_resource_parallel_capacity () =
  let s = Sim.create () in
  let r = Sim.Resource.create s ~capacity:3 in
  let finish = ref [] in
  for i = 1 to 3 do
    Sim.spawn s (fun () ->
        Sim.Resource.use r 2.;
        finish := (i, Sim.now s) :: !finish)
  done;
  Sim.run s;
  Alcotest.(check bool) "all done at t=2" true
    (List.for_all (fun (_, t) -> t = 2.) !finish)

let test_resource_two_servers () =
  let s = Sim.create () in
  let r = Sim.Resource.create s ~capacity:2 in
  let finish = ref [] in
  for i = 1 to 4 do
    Sim.spawn s (fun () ->
        Sim.Resource.use r 2.;
        finish := (i, Sim.now s) :: !finish)
  done;
  Sim.run s;
  Alcotest.(check bool) "two waves" true (List.rev !finish = [ (1, 2.); (2, 2.); (3, 4.); (4, 4.) ])

let test_resource_fifo_handoff () =
  (* a latecomer must not jump the queue when a unit is handed over *)
  let s = Sim.create () in
  let r = Sim.Resource.create s ~capacity:1 in
  let order = ref [] in
  Sim.spawn s ~at:0. (fun () ->
      Sim.Resource.use r 5.;
      order := 1 :: !order);
  Sim.spawn s ~at:1. (fun () ->
      Sim.Resource.use r 1.;
      order := 2 :: !order);
  Sim.spawn s ~at:2. (fun () ->
      Sim.Resource.use r 1.;
      order := 3 :: !order);
  Sim.run s;
  Alcotest.(check (list int)) "service order" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check int) "nothing left busy" 0 (Sim.Resource.in_use r);
  Alcotest.(check int) "queue drained" 0 (Sim.Resource.queue_length r)

let test_resource_invalid_capacity () =
  let s = Sim.create () in
  Alcotest.(check bool) "capacity 0 rejected" true
    (try
       ignore (Sim.Resource.create s ~capacity:0);
       false
     with Invalid_argument _ -> true)

(* M/D/1-ish sanity: with utilization ~0.5, mean response stays near service
   time scale and the server is busy about half the time. *)
let test_queueing_sanity () =
  let s = Sim.create () in
  let r = Sim.Resource.create s ~capacity:1 in
  let g = Prng.create ~seed:42 in
  let service = 1.0 and mean_interarrival = 2.0 in
  let tally = Tally.create () in
  let horizon = 20_000. in
  let rec arrivals t_next =
    if t_next < horizon then begin
      Sim.spawn s ~at:t_next (fun () ->
          let start = Sim.now s in
          Sim.Resource.use r service;
          Tally.add tally (Sim.now s -. start));
      arrivals (t_next +. Prng.exponential g ~mean:mean_interarrival)
    end
  in
  arrivals 0.;
  Sim.run s;
  let rho = Sim.Resource.utilization r ~at:(Sim.now s) in
  Alcotest.(check bool) "utilization near 0.5" true (Float.abs (rho -. 0.5) < 0.05);
  (* M/D/1: W = s + rho*s/(2(1-rho)) = 1 + 0.5/1 = 1.5 *)
  let w = Tally.mean tally in
  Alcotest.(check bool)
    (Printf.sprintf "mean response %.3f near M/D/1 prediction 1.5" w)
    true
    (w > 1.3 && w < 1.7)

let test_event_budget_guard () =
  let s = Sim.create () in
  let rec forever () =
    Sim.delay 1.;
    forever ()
  in
  Sim.spawn s forever;
  Alcotest.(check bool) "budget guard fires" true
    (try
       Sim.run ~max_events:1000 s;
       false
     with Failure _ -> true)

let suites =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "clock at zero" `Quick test_clock_starts_at_zero;
        Alcotest.test_case "delay advances clock" `Quick test_delay_advances_clock;
        Alcotest.test_case "spawn at" `Quick test_spawn_at;
        Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
        Alcotest.test_case "until freezes" `Quick test_until_freezes;
        Alcotest.test_case "interleaved processes" `Quick test_interleaved_processes;
        Alcotest.test_case "zero delay requeues" `Quick test_zero_delay_keeps_order;
        Alcotest.test_case "event budget guard" `Quick test_event_budget_guard;
      ] );
    ( "sim.condition",
      [
        Alcotest.test_case "signal delivers" `Quick test_condition_signal;
        Alcotest.test_case "FIFO wakeups" `Quick test_condition_fifo;
        Alcotest.test_case "signal empty" `Quick test_condition_signal_empty;
        Alcotest.test_case "broadcast" `Quick test_condition_broadcast;
      ] );
    ( "sim.mailbox",
      [
        Alcotest.test_case "send/recv" `Quick test_mailbox_send_recv;
        Alcotest.test_case "buffering" `Quick test_mailbox_buffering;
        Alcotest.test_case "producer/consumer pacing" `Quick test_mailbox_producer_consumer;
      ] );
    ( "sim.resource",
      [
        Alcotest.test_case "serializes" `Quick test_resource_serializes;
        Alcotest.test_case "parallel capacity" `Quick test_resource_parallel_capacity;
        Alcotest.test_case "two servers" `Quick test_resource_two_servers;
        Alcotest.test_case "FIFO handoff" `Quick test_resource_fifo_handoff;
        Alcotest.test_case "invalid capacity" `Quick test_resource_invalid_capacity;
        Alcotest.test_case "M/D/1 sanity" `Slow test_queueing_sanity;
      ] );
  ]
