(* Tests for the systematic interleaving explorer — and, through it,
   exhaustive verification of the ACC's semantic-correctness claim on
   concrete workload instances: EVERY schedule the scheduler can produce is
   executed and checked, not a random sample. *)

open Acc_txn
module W = Workload_orders
module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Schema = Acc_relation.Schema
module Value = Acc_relation.Value
module Lock_table = Acc_lock.Lock_table
module Lock_service = Acc_lock.Lock_service
module Mode = Acc_lock.Mode
module Program = Acc_core.Program
module Runtime = Acc_core.Runtime
module Footprint = Acc_core.Footprint

let v_int n = Value.Int n

let counter_schema =
  Schema.make ~name:"c" ~key:[ "id" ] [ Schema.col "id" Value.Tint; Schema.col "n" Value.Tint ]

let counter_engine () =
  let db = Database.create () in
  let t = Database.create_table db counter_schema in
  Table.insert t [| v_int 0; v_int 0 |];
  Executor.create ~sem:Mode.no_semantics db

let counter_value eng =
  Value.as_int (Table.get_exn (Database.table (Executor.db eng) "c") [ v_int 0 ]).(1)

(* --- mechanics ------------------------------------------------------------ *)

let test_explores_all_interleavings () =
  (* two fibers, one yield each, no conflicts: the walk must terminate
     exhausted with more than one schedule *)
  let make () =
    let eng = counter_engine () in
    let fiber () =
      Txn_effect.yield ();
      ()
    in
    (eng, [ fiber; fiber ])
  in
  let r = Explore.explore ~make ~check:(fun _ -> Ok ()) () in
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted;
  Alcotest.(check bool) "several schedules" true (r.Explore.schedules > 1);
  Alcotest.(check bool) "no failure" true (r.Explore.failure = None)

let test_single_schedule_when_sequential () =
  (* one fiber: no branching at all *)
  let make () = (counter_engine (), [ (fun () -> Txn_effect.yield ()) ]) in
  let r = Explore.explore ~make ~check:(fun _ -> Ok ()) () in
  Alcotest.(check int) "one schedule" 1 r.Explore.schedules;
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted

let test_cap_respected () =
  let make () =
    let eng = counter_engine () in
    let fiber () =
      for _ = 1 to 5 do
        Txn_effect.yield ()
      done
    in
    (eng, [ fiber; fiber; fiber ])
  in
  let r = Explore.explore ~max_schedules:50 ~make ~check:(fun _ -> Ok ()) () in
  Alcotest.(check int) "capped" 50 r.Explore.schedules;
  Alcotest.(check bool) "not exhausted" false r.Explore.exhausted

(* --- the explorer finds real races ----------------------------------------- *)

let test_finds_lost_update () =
  (* a deliberately broken program: read at READ COMMITTED, yield, then write
     back the incremented stale value — a classic lost update the explorer
     must catch in some schedule *)
  let make () =
    let eng = counter_engine () in
    let broken_increment () =
      let ctx = Executor.begin_txn eng ~txn_type:"broken" ~multi_step:false in
      let v =
        match Executor.read_committed ctx "c" [ v_int 0 ] with
        | Some row -> Value.as_int row.(1)
        | None -> assert false
      in
      Txn_effect.yield ();
      Executor.set_column ctx "c" [ v_int 0 ] "n" (v_int (v + 1));
      Executor.commit ctx
    in
    (eng, [ broken_increment; broken_increment ])
  in
  let check eng =
    if counter_value eng = 2 then Ok ()
    else Error (Printf.sprintf "lost update: counter = %d" (counter_value eng))
  in
  let r = Explore.explore ~make ~check () in
  (match r.Explore.failure with
  | Some (msg, trace) ->
      Alcotest.(check bool) "diagnosed" true
        (String.length msg > 0 && msg.[0] = 'l');
      (* the trace reproduces the failure *)
      let eng = Explore.replay ~make trace in
      Alcotest.(check int) "replayed counter" 1 (counter_value eng)
  | None -> Alcotest.fail "explorer missed the lost update");
  (* with proper 2PL (plain read, lock held) the race disappears *)
  let make_fixed () =
    let eng = counter_engine () in
    let incr_txn () =
      let rec attempt () =
        let ctx = Executor.begin_txn eng ~txn_type:"ok" ~multi_step:false in
        try
          let v =
            match Executor.read ctx "c" [ v_int 0 ] with
            | Some row -> Value.as_int row.(1)
            | None -> assert false
          in
          Txn_effect.yield ();
          Executor.set_column ctx "c" [ v_int 0 ] "n" (v_int (v + 1));
          Executor.commit ctx
        with Txn_effect.Deadlock_victim ->
          Executor.abort_physical ctx;
          Txn_effect.yield ();
          attempt ()
      in
      attempt ()
    in
    (eng, [ incr_txn; incr_txn ])
  in
  let r2 = Explore.explore ~make:make_fixed ~check () in
  Alcotest.(check bool) "2PL version exhausts clean" true
    (r2.Explore.exhausted && r2.Explore.failure = None)

(* --- exhaustive semantic correctness of the §4 workload --------------------- *)

let stock2 = [ (1, 15, 10); (2, 15, 20) ]

let no_with_yields ~items =
  let inst, result = W.new_order_instance ~items in
  let steps =
    Array.to_list inst.Program.i_steps
    |> List.map (fun (sd, body) ->
           ( sd,
             fun ctx ->
               if sd.Program.sd_name = "line" then Txn_effect.yield ();
               body ctx ))
  in
  ({ inst with Program.i_steps = Array.of_list steps }, result)

let check_orders_consistent eng =
  match W.check_consistency ~initial_stock:stock2 (Executor.db eng) with
  | exception e -> Error (Printexc.to_string e)
  | [] ->
      if Lock_service.lock_count (Executor.lock_service eng) = 0 then Ok ()
      else Error "locks leaked"
  | problems -> Error (String.concat "; " problems)

let test_exhaustive_two_new_orders () =
  (* EVERY interleaving of two decomposed new_orders (crossing item orders)
     ends in a consistent database with both committed *)
  let outcomes = ref (0, 0) in
  let make () =
    let eng = W.make_engine stock2 in
    let i1, _ = no_with_yields ~items:[ (1, 10); (2, 10) ] in
    let i2, _ = no_with_yields ~items:[ (2, 10); (1, 10) ] in
    let fiber inst () =
      match Runtime.run eng inst with
      | Runtime.Committed -> outcomes := (fst !outcomes + 1, snd !outcomes)
      | Runtime.Compensated _ -> outcomes := (fst !outcomes, snd !outcomes + 1)
    in
    (eng, [ fiber i1; fiber i2 ])
  in
  let r = Explore.explore ~max_schedules:20_000 ~make ~check:check_orders_consistent () in
  (match r.Explore.failure with
  | Some (msg, trace) ->
      Alcotest.failf "schedule %s broke consistency: %s"
        (String.concat "," (List.map string_of_int trace))
        msg
  | None -> ());
  Alcotest.(check bool) "explored the whole tree" true r.Explore.exhausted;
  Alcotest.(check bool) "nontrivial tree" true (r.Explore.schedules > 10);
  (* every schedule committed both (no compensation paths here) *)
  Alcotest.(check int) "no compensations" 0 (snd !outcomes)

let test_exhaustive_with_forced_abort () =
  (* same, but the second new_order aborts after its first line: every
     interleaving of forward steps with the compensating step stays
     consistent *)
  let make () =
    let eng = W.make_engine stock2 in
    let i1, _ = no_with_yields ~items:[ (1, 5) ] in
    let i2, _ = no_with_yields ~items:[ (2, 5); (1, 5) ] in
    ( eng,
      [
        (fun () -> ignore (Runtime.run eng i1));
        (fun () -> ignore (Runtime.run ~abort_at:2 eng i2));
      ] )
  in
  let r = Explore.explore ~max_schedules:20_000 ~make ~check:check_orders_consistent () in
  (match r.Explore.failure with
  | Some (msg, trace) ->
      Alcotest.failf "schedule %s broke consistency: %s"
        (String.concat "," (List.map string_of_int trace))
        msg
  | None -> ());
  Alcotest.(check bool) "explored the whole tree" true r.Explore.exhausted

let test_exhaustive_new_order_with_bill () =
  (* a bill of the first order races two new_orders: the admission lock must
     hold in every schedule — the bill always totals a complete order *)
  let make () =
    let eng = W.make_engine stock2 in
    let i1, r1 = no_with_yields ~items:[ (1, 2) ] in
    let i2, _ = no_with_yields ~items:[ (2, 3) ] in
    let fiber_bill () =
      Txn_effect.yield ();
      if r1.W.r_order_id >= 0 then begin
        let b, bres = W.bill_instance ~order:r1.W.r_order_id in
        match Runtime.run eng b with
        | Runtime.Committed ->
            if bres.W.b_total <> 2 * 10 then failwith "bill totalled an incomplete order"
        | Runtime.Compensated _ -> failwith "bill compensated"
      end
    in
    ( eng,
      [
        (fun () -> ignore (Runtime.run eng i1));
        (fun () -> ignore (Runtime.run eng i2));
        fiber_bill;
      ] )
  in
  let r = Explore.explore ~max_schedules:50_000 ~make ~check:check_orders_consistent () in
  (match r.Explore.failure with
  | Some (msg, trace) ->
      Alcotest.failf "schedule %s failed: %s"
        (String.concat "," (List.map string_of_int trace))
        msg
  | None -> ());
  Alcotest.(check bool) "explored the whole tree" true r.Explore.exhausted

(* --- meta-property: random decompositions, exhaustively explored ----------- *)

(* Random two-transaction workloads over a small account table: each step
   moves a random amount between random accounts; compensation returns the
   completed steps' money.  For EVERY generated instance, EVERY schedule must
   conserve the total. *)

let accounts_schema =
  Schema.make ~name:"acct" ~key:[ "id" ]
    [ Schema.col "id" Value.Tint; Schema.col "bal" Value.Tint ]

let mk_step ~id ~index =
  Program.step ~id ~name:(Printf.sprintf "s%d" id) ~txn_type:"mover" ~index ~reads:[]
    ~writes:[ Footprint.make "acct" (Footprint.Columns [ "bal" ]) ]
    ()

let mover_steps = [ mk_step ~id:1 ~index:1; mk_step ~id:2 ~index:2; mk_step ~id:3 ~index:3 ]

let mover_comp =
  Program.step ~id:4 ~name:"undo" ~txn_type:"mover" ~index:0 ~reads:[]
    ~writes:[ Footprint.make "acct" (Footprint.Columns [ "bal" ]) ]
    ()

let mover_type =
  Program.txn_type ~name:"mover" ~steps:mover_steps ~comp:mover_comp ~assertions:[] ()

let mover_interference = Acc_core.Interference.build (Program.workload [ mover_type ])

let mover_engine () =
  let db = Database.create () in
  let t = Database.create_table db accounts_schema in
  for id = 1 to 3 do
    Table.insert t [| v_int id; v_int 100 |]
  done;
  Executor.create ~sem:(Acc_core.Interference.semantics mover_interference) db

let move ctx ~src ~dst ~amount =
  let bump id delta =
    ignore
      (Executor.update ctx "acct" [ v_int id ] (fun row ->
           row.(1) <- v_int (Value.as_int row.(1) + delta);
           row))
  in
  bump src (-amount);
  bump dst amount

(* moves: (src, dst, amount) per step, 1-3 steps *)
let mover ~moves ~abort_after =
  let arr = Array.of_list moves in
  let steps =
    List.mapi
      (fun idx (src, dst, amount) ->
        ( List.nth mover_steps idx,
          fun ctx ->
            if idx > 0 then Txn_effect.yield ();
            move ctx ~src ~dst ~amount ))
      moves
  in
  (* a mover with fewer than 3 steps uses a trimmed type: rebuild instead *)
  let def =
    Program.txn_type ~name:"mover"
      ~steps:(List.filteri (fun i _ -> i < List.length moves) mover_steps)
      ~comp:mover_comp ~assertions:[] ()
  in
  let inst =
    Program.instance ~def ~steps
      ~compensate:(fun ctx ~completed ->
        Array.iteri
          (fun idx (src, dst, amount) ->
            if idx < completed then move ctx ~src:dst ~dst:src ~amount)
          arr)
      ()
  in
  (inst, abort_after)

let move_gen =
  QCheck2.Gen.(
    list_size (int_range 1 3) (triple (int_range 1 3) (int_range 1 3) (int_range 1 20)))

let prop_random_decompositions_conserve =
  QCheck2.Test.make ~name:"explore: random decompositions conserve money in all schedules"
    ~count:25
    QCheck2.Gen.(triple move_gen move_gen (int_range 0 3))
    (fun (moves1, moves2, abort_code) ->
      let make () =
        let eng = mover_engine () in
        let i1, _ = mover ~moves:moves1 ~abort_after:None in
        let abort_after =
          if abort_code = 0 then None else Some (min abort_code (List.length moves2))
        in
        let i2, _ = mover ~moves:moves2 ~abort_after in
        ( eng,
          [
            (fun () -> ignore (Runtime.run eng i1));
            (fun () -> ignore (Runtime.run ?abort_at:abort_after eng i2));
          ] )
      in
      let check eng =
        let db = Executor.db eng in
        let total =
          Table.fold (fun _ row acc -> acc + Value.as_int row.(1)) (Database.table db "acct") 0
        in
        if total = 300 then Ok () else Error (Printf.sprintf "total %d" total)
      in
      let r = Explore.explore ~max_schedules:3_000 ~make ~check () in
      r.Explore.failure = None)

let suites =
  [
    ( "explore.mechanics",
      [
        Alcotest.test_case "explores all interleavings" `Quick test_explores_all_interleavings;
        Alcotest.test_case "sequential = one schedule" `Quick test_single_schedule_when_sequential;
        Alcotest.test_case "cap respected" `Quick test_cap_respected;
        Alcotest.test_case "finds a lost update" `Quick test_finds_lost_update;
      ] );
    ( "explore.semantic_correctness",
      [
        Alcotest.test_case "two new_orders, all schedules" `Slow test_exhaustive_two_new_orders;
        Alcotest.test_case "forced abort, all schedules" `Slow test_exhaustive_with_forced_abort;
        Alcotest.test_case "bill races new_orders, all schedules" `Slow
          test_exhaustive_new_order_with_bill;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |])
          prop_random_decompositions_conserve;
      ] );
  ]
