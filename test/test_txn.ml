(* Tests for acc.txn: the executor (locking, logging, undo), the cooperative
   scheduler (blocking, wakeups, deadlock victims), and the serializability
   checker. *)

open Acc_txn
module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Schema = Acc_relation.Schema
module Value = Acc_relation.Value
module Predicate = Acc_relation.Predicate
module Mode = Acc_lock.Mode
module Resource_id = Acc_lock.Resource_id
module Lock_table = Acc_lock.Lock_table
module Lock_service = Acc_lock.Lock_service

let v_int n = Value.Int n

let accounts_schema =
  Schema.make ~name:"accounts" ~key:[ "id" ]
    [ Schema.col "id" Value.Tint; Schema.col "balance" Value.Tint ]

let fresh_engine rows =
  let db = Database.create () in
  let t = Database.create_table db accounts_schema in
  List.iter (fun (id, bal) -> Table.insert t [| v_int id; v_int bal |]) rows;
  Executor.create ~sem:Mode.no_semantics db

let balance eng id =
  Value.as_int (Table.get_exn (Database.table (Executor.db eng) "accounts") [ v_int id ]).(1)

let add_to_balance ctx id delta =
  ignore
    (Executor.update ctx "accounts" [ v_int id ] (fun row ->
         row.(1) <- v_int (Value.as_int row.(1) + delta);
         row))

(* simple flat transaction with deadlock retry *)
let rec with_retry eng ~txn_type body =
  let ctx = Executor.begin_txn eng ~txn_type ~multi_step:false in
  try
    body ctx;
    Executor.commit ctx
  with Txn_effect.Deadlock_victim ->
    Executor.abort_physical ctx;
    (* yield one round before retrying so the deadlock winner can finish *)
    Txn_effect.yield ();
    with_retry eng ~txn_type body

(* --- basic executor behaviour ------------------------------------------ *)

let test_flat_commit () =
  let eng = fresh_engine [ (1, 100); (2, 50) ] in
  Schedule.run eng
    [
      (fun () ->
        with_retry eng ~txn_type:"transfer" (fun ctx ->
            add_to_balance ctx 1 (-30);
            add_to_balance ctx 2 30));
    ];
  Alcotest.(check int) "debited" 70 (balance eng 1);
  Alcotest.(check int) "credited" 80 (balance eng 2);
  Alcotest.(check int) "no locks leaked" 0 (Lock_service.lock_count (Executor.lock_service eng))

let test_insert_delete_ops () =
  let eng = fresh_engine [ (1, 10) ] in
  Schedule.run eng
    [
      (fun () ->
        with_retry eng ~txn_type:"admin" (fun ctx ->
            Executor.insert ctx "accounts" [| v_int 9; v_int 900 |];
            Executor.delete ctx "accounts" [ v_int 1 ];
            match Executor.read ctx "accounts" [ v_int 9 ] with
            | Some row -> Alcotest.(check int) "read back" 900 (Value.as_int row.(1))
            | None -> Alcotest.fail "inserted row missing"));
    ];
  Alcotest.(check int) "insert persisted" 900 (balance eng 9);
  Alcotest.(check bool) "delete persisted" false
    (Table.mem (Database.table (Executor.db eng) "accounts") [ v_int 1 ])

let test_abort_restores () =
  let eng = fresh_engine [ (1, 100) ] in
  Schedule.run eng
    [
      (fun () ->
        let ctx = Executor.begin_txn eng ~txn_type:"doomed" ~multi_step:false in
        add_to_balance ctx 1 (-100);
        Executor.insert ctx "accounts" [| v_int 5; v_int 5 |];
        Executor.abort_physical ctx);
    ];
  Alcotest.(check int) "balance restored" 100 (balance eng 1);
  Alcotest.(check bool) "insert undone" false
    (Table.mem (Database.table (Executor.db eng) "accounts") [ v_int 5 ]);
  Alcotest.(check int) "no locks leaked" 0 (Lock_service.lock_count (Executor.lock_service eng))

let test_log_contents () =
  let eng = fresh_engine [ (1, 100) ] in
  Schedule.run eng
    [ (fun () -> with_retry eng ~txn_type:"t" (fun ctx -> add_to_balance ctx 1 1)) ];
  let records = Acc_wal.Log.to_list (Executor.log eng) in
  let kinds =
    List.map
      (function
        | Acc_wal.Record.Begin _ -> "begin"
        | Acc_wal.Record.Write _ -> "write"
        | Acc_wal.Record.Commit _ -> "commit"
        | Acc_wal.Record.Step_end _ -> "step"
        | Acc_wal.Record.Comp_area _ -> "area"
        | Acc_wal.Record.Abort _ -> "abort"
        | Acc_wal.Record.Prepare _ -> "prepare")
      records
  in
  Alcotest.(check (list string)) "log shape" [ "begin"; "write"; "commit" ] kinds

let test_recovery_from_engine_log () =
  (* run transactions, then replay the log against the pristine baseline *)
  let baseline_rows = [ (1, 100); (2, 50) ] in
  let eng = fresh_engine baseline_rows in
  let baseline = Database.copy (Executor.db eng) in
  Schedule.run eng
    [
      (fun () ->
        with_retry eng ~txn_type:"a" (fun ctx -> add_to_balance ctx 1 (-10));
        with_retry eng ~txn_type:"b" (fun ctx -> add_to_balance ctx 2 10));
    ];
  let r = Acc_wal.Recovery.recover ~baseline (Acc_wal.Log.to_list (Executor.log eng)) in
  Alcotest.(check int) "recovered 1" (balance eng 1)
    (Value.as_int (Table.get_exn (Database.table r.Acc_wal.Recovery.db "accounts") [ v_int 1 ]).(1));
  Alcotest.(check int) "recovered 2" (balance eng 2)
    (Value.as_int (Table.get_exn (Database.table r.Acc_wal.Recovery.db "accounts") [ v_int 2 ]).(1))

(* --- blocking and interleaving ------------------------------------------ *)

let test_write_blocks_reader () =
  let eng = fresh_engine [ (1, 100) ] in
  let observed = ref (-1) in
  Schedule.run eng
    [
      (fun () ->
        let ctx = Executor.begin_txn eng ~txn_type:"writer" ~multi_step:false in
        add_to_balance ctx 1 (-100);
        Txn_effect.yield ();
        (* reader must still be blocked here *)
        Alcotest.(check int) "reader has not read" (-1) !observed;
        Executor.commit ctx);
      (fun () ->
        let ctx = Executor.begin_txn eng ~txn_type:"reader" ~multi_step:false in
        (match Executor.read ctx "accounts" [ v_int 1 ] with
        | Some row -> observed := Value.as_int row.(1)
        | None -> Alcotest.fail "row missing");
        Executor.commit ctx);
    ];
  Alcotest.(check int) "reader saw committed value" 0 !observed

let test_readers_share () =
  let eng = fresh_engine [ (1, 100) ] in
  let both_read = ref 0 in
  let reader () =
    let ctx = Executor.begin_txn eng ~txn_type:"r" ~multi_step:false in
    ignore (Executor.read ctx "accounts" [ v_int 1 ]);
    incr both_read;
    Txn_effect.yield ();
    Executor.commit ctx
  in
  Schedule.run eng [ reader; reader ];
  Alcotest.(check int) "both readers ran" 2 !both_read

let test_scan_blocks_writer () =
  let eng = fresh_engine [ (1, 100); (2, 50) ] in
  let write_done_before_commit = ref false in
  Schedule.run eng
    [
      (fun () ->
        let ctx = Executor.begin_txn eng ~txn_type:"scanner" ~multi_step:false in
        let rows = Executor.scan ctx "accounts" () in
        Alcotest.(check int) "scanned all" 2 (List.length rows);
        Txn_effect.yield ();
        Alcotest.(check bool) "writer still blocked" false !write_done_before_commit;
        Executor.commit ctx);
      (fun () ->
        with_retry eng ~txn_type:"writer" (fun ctx ->
            add_to_balance ctx 1 1;
            write_done_before_commit := true));
    ];
  Alcotest.(check int) "write applied after scan" 101 (balance eng 1)

let test_read_committed_releases_early () =
  let eng = fresh_engine [ (1, 100) ] in
  let writer_done = ref false in
  Schedule.run eng
    [
      (fun () ->
        let ctx = Executor.begin_txn eng ~txn_type:"rc" ~multi_step:false in
        ignore (Executor.read_committed ctx "accounts" [ v_int 1 ]);
        Txn_effect.yield ();
        (* the writer must have been able to proceed before we commit *)
        Alcotest.(check bool) "writer proceeded" true !writer_done;
        Executor.commit ctx);
      (fun () ->
        with_retry eng ~txn_type:"writer" (fun ctx ->
            add_to_balance ctx 1 1;
            writer_done := true));
    ]

let test_scan_committed_releases_early () =
  let eng = fresh_engine [ (1, 100) ] in
  let writer_done = ref false in
  Schedule.run eng
    [
      (fun () ->
        let ctx = Executor.begin_txn eng ~txn_type:"rc" ~multi_step:false in
        ignore (Executor.scan_committed ctx "accounts" ());
        Txn_effect.yield ();
        Alcotest.(check bool) "writer proceeded" true !writer_done;
        Executor.commit ctx);
      (fun () ->
        with_retry eng ~txn_type:"writer" (fun ctx ->
            add_to_balance ctx 1 1;
            writer_done := true));
    ]

let test_scan_for_update_serializes () =
  (* two for-update scanners must not meet in the S-then-upgrade deadlock:
     the second waits for the first outright *)
  let eng = fresh_engine [ (1, 10); (2, 20) ] in
  let order = ref [] in
  let scanner name () =
    with_retry eng ~txn_type:name (fun ctx ->
        ignore (Executor.scan_keys_for_update ctx "accounts" ());
        Txn_effect.yield ();
        add_to_balance ctx 1 1;
        order := name :: !order)
  in
  Schedule.run eng [ scanner "first"; scanner "second" ];
  Alcotest.(check (list string)) "strictly serialized" [ "second"; "first" ] !order;
  Alcotest.(check int) "both updates applied" 12 (balance eng 1)

let test_peek_keys_no_locks () =
  (* peeking takes no data locks: a concurrent writer is not blocked *)
  let eng = fresh_engine [ (1, 10) ] in
  let writer_done = ref false in
  Schedule.run eng
    [
      (fun () ->
        let ctx = Executor.begin_txn eng ~txn_type:"peeker" ~multi_step:false in
        let keys = Executor.peek_keys ctx "accounts" () in
        Alcotest.(check int) "saw the row" 1 (List.length keys);
        Txn_effect.yield ();
        Alcotest.(check bool) "writer not blocked by peek" true !writer_done;
        Executor.commit ctx);
      (fun () ->
        with_retry eng ~txn_type:"writer" (fun ctx ->
            add_to_balance ctx 1 5;
            writer_done := true));
    ]

(* --- deadlock handling --------------------------------------------------- *)

let deadlock_pair eng ~order_1 ~order_2 =
  (* each fiber updates its two accounts in the given order, yielding after
     the first update to force the classic crossing *)
  let aborts = ref 0 in
  let fiber (a, b) () =
    let rec attempt () =
      let ctx = Executor.begin_txn eng ~txn_type:"transfer" ~multi_step:false in
      try
        add_to_balance ctx a 1;
        Txn_effect.yield ();
        add_to_balance ctx b 1;
        Executor.commit ctx
      with Txn_effect.Deadlock_victim ->
        incr aborts;
        Executor.abort_physical ctx;
        Txn_effect.yield ();
        attempt ()
    in
    attempt ()
  in
  Schedule.run eng [ fiber order_1; fiber order_2 ];
  !aborts

let test_deadlock_detected_and_resolved () =
  let eng = fresh_engine [ (1, 0); (2, 0) ] in
  let aborts = deadlock_pair eng ~order_1:(1, 2) ~order_2:(2, 1) in
  Alcotest.(check bool) "at least one victim" true (aborts >= 1);
  (* both transactions eventually applied both updates *)
  Alcotest.(check int) "account 1 total" 2 (balance eng 1);
  Alcotest.(check int) "account 2 total" 2 (balance eng 2);
  Alcotest.(check int) "no locks leaked" 0 (Lock_service.lock_count (Executor.lock_service eng))

let test_no_deadlock_same_order () =
  let eng = fresh_engine [ (1, 0); (2, 0) ] in
  let aborts = deadlock_pair eng ~order_1:(1, 2) ~order_2:(1, 2) in
  Alcotest.(check int) "no victims" 0 aborts;
  Alcotest.(check int) "account 2 total" 2 (balance eng 2)

let test_custom_victim_policy () =
  (* abort the *other* transaction in the cycle instead of the requester *)
  let eng = fresh_engine [ (1, 0); (2, 0) ] in
  let victims = ref [] in
  let policy locks ~requester ~cycle =
    ignore locks;
    let others = List.filter (fun t -> t <> requester) cycle in
    victims := others;
    others
  in
  let aborted_txns = ref [] in
  let fiber (a, b) () =
    let rec attempt () =
      let ctx = Executor.begin_txn eng ~txn_type:"t" ~multi_step:false in
      try
        add_to_balance ctx a 1;
        Txn_effect.yield ();
        add_to_balance ctx b 1;
        Executor.commit ctx
      with Txn_effect.Deadlock_victim ->
        aborted_txns := Executor.txn_id ctx :: !aborted_txns;
        Executor.abort_physical ctx;
        Txn_effect.yield ();
        attempt ()
    in
    attempt ()
  in
  Schedule.run ~policy eng [ fiber (1, 2); fiber (2, 1) ];
  Alcotest.(check bool) "some victim chosen" true (!victims <> []);
  Alcotest.(check bool) "victim was not requester" true
    (List.for_all (fun t -> List.mem t !victims) !aborted_txns);
  Alcotest.(check int) "account 1 total" 2 (balance eng 1);
  Alcotest.(check int) "account 2 total" 2 (balance eng 2)

let test_three_way_deadlock () =
  let eng = fresh_engine [ (1, 0); (2, 0); (3, 0) ] in
  let aborts = ref 0 in
  let fiber (a, b) () =
    let rec attempt () =
      let ctx = Executor.begin_txn eng ~txn_type:"t" ~multi_step:false in
      try
        add_to_balance ctx a 1;
        Txn_effect.yield ();
        add_to_balance ctx b 1;
        Executor.commit ctx
      with Txn_effect.Deadlock_victim ->
        incr aborts;
        Executor.abort_physical ctx;
        Txn_effect.yield ();
        attempt ()
    in
    attempt ()
  in
  Schedule.run eng [ fiber (1, 2); fiber (2, 3); fiber (3, 1) ];
  Alcotest.(check bool) "victims occurred" true (!aborts >= 1);
  List.iter (fun id -> Alcotest.(check int) (Printf.sprintf "account %d" id) 2 (balance eng id)) [ 1; 2; 3 ]

(* --- serializability checker --------------------------------------------- *)

let res x = Resource_id.Tuple ("t", [ v_int x ])

let test_checker_serial_trace () =
  let c = Serializability.create () in
  Serializability.hook c 1 `W (res 1);
  Serializability.hook c 1 `R (res 2);
  Serializability.hook c 2 `W (res 1);
  Serializability.note_commit c 1;
  Serializability.note_commit c 2;
  Alcotest.(check (list (pair int int))) "edge 1->2" [ (1, 2) ] (Serializability.conflict_edges c);
  Alcotest.(check bool) "serializable" true (Serializability.conflict_serializable c);
  Alcotest.(check bool) "witness order" true (Serializability.serial_order c = Some [ 1; 2 ])

let test_checker_nonserializable_trace () =
  (* T1 reads x before T2 writes it; T2 reads y before T1 writes it *)
  let c = Serializability.create () in
  Serializability.hook c 1 `R (res 1);
  Serializability.hook c 2 `R (res 2);
  Serializability.hook c 2 `W (res 1);
  Serializability.hook c 1 `W (res 2);
  Serializability.note_commit c 1;
  Serializability.note_commit c 2;
  Alcotest.(check bool) "cycle detected" false (Serializability.conflict_serializable c)

let test_checker_ignores_uncommitted () =
  let c = Serializability.create () in
  Serializability.hook c 1 `R (res 1);
  Serializability.hook c 2 `R (res 2);
  Serializability.hook c 2 `W (res 1);
  Serializability.hook c 1 `W (res 2);
  Serializability.note_commit c 1;
  Serializability.note_abort c 2;
  Alcotest.(check bool) "aborted txn excluded" true (Serializability.conflict_serializable c)

let test_checker_table_tuple_overlap () =
  let c = Serializability.create () in
  Serializability.hook c 1 `R (Resource_id.Table "t");
  Serializability.hook c 2 `W (res 1);
  Serializability.note_commit c 1;
  Serializability.note_commit c 2;
  Alcotest.(check (list (pair int int))) "scan conflicts with tuple write" [ (1, 2) ]
    (Serializability.conflict_edges c)

(* property: strict 2PL always yields conflict-serializable schedules *)
let prop_2pl_serializable =
  QCheck2.Test.make ~name:"executor: strict 2PL schedules are serializable" ~count:60
    QCheck2.Gen.(
      pair (int_range 0 1000)
        (list_size (int_range 2 6)
           (list_size (int_range 1 5) (pair (int_range 1 4) bool))))
    (fun (salt, txn_specs) ->
      let eng = fresh_engine [ (1, 100); (2, 100); (3, 100); (4, 100) ] in
      let checker = Serializability.create () in
      Executor.set_trace eng (Some (Serializability.hook checker));
      let fiber spec () =
        let rec attempt () =
          let ctx = Executor.begin_txn eng ~txn_type:"p" ~multi_step:false in
          try
            List.iteri
              (fun i (acct, write) ->
                if (i + salt) mod 2 = 0 then Txn_effect.yield ();
                if write then add_to_balance ctx acct 1
                else ignore (Executor.read ctx "accounts" [ v_int acct ]))
              spec;
            Executor.commit ctx;
            Serializability.note_commit checker (Executor.txn_id ctx)
          with Txn_effect.Deadlock_victim ->
            Executor.abort_physical ctx;
            Serializability.note_abort checker (Executor.txn_id ctx);
            Txn_effect.yield ();
            attempt ()
        in
        attempt ()
      in
      Schedule.run eng (List.map fiber txn_specs);
      Serializability.conflict_serializable checker
      && Lock_service.lock_count (Executor.lock_service eng) = 0)

(* property: concurrent random transfers conserve total balance *)
let prop_transfers_conserve_money =
  QCheck2.Test.make ~name:"executor: transfers conserve total balance" ~count:60
    QCheck2.Gen.(list_size (int_range 1 8) (triple (int_range 1 4) (int_range 1 4) (int_range 1 50)))
    (fun transfers ->
      let eng = fresh_engine [ (1, 100); (2, 100); (3, 100); (4, 100) ] in
      let fiber (src, dst, amt) () =
        with_retry eng ~txn_type:"transfer" (fun ctx ->
            add_to_balance ctx src (-amt);
            Txn_effect.yield ();
            add_to_balance ctx dst amt)
      in
      Schedule.run eng (List.map fiber transfers);
      balance eng 1 + balance eng 2 + balance eng 3 + balance eng 4 = 400)

(* --- decorrelated-jitter backoff ---------------------------------------- *)

let jitter_seq ?seed n =
  let j = Backoff.Jitter.create ?seed () in
  List.init n (fun i -> Backoff.Jitter.next j ~attempt:(i + 1))

let test_jitter_seeding () =
  (* two unseeded instances must draw distinct schedules — colliding
     retriers sharing one would re-collide forever *)
  Alcotest.(check bool) "unseeded schedules differ" false (jitter_seq 32 = jitter_seq 32);
  (* an explicit seed makes the schedule reproducible *)
  Alcotest.(check bool) "explicit seed reproduces" true
    (jitter_seq ~seed:42 32 = jitter_seq ~seed:42 32);
  Alcotest.check_raises "base must be positive" (Invalid_argument
    "Backoff.Jitter.create: base must be > 0") (fun () ->
      ignore (Backoff.Jitter.create ~base:0. ()));
  Alcotest.check_raises "cap must dominate base" (Invalid_argument
    "Backoff.Jitter.create: cap must be >= base") (fun () ->
      ignore (Backoff.Jitter.create ~base:1. ~cap:0.5 ()))

(* the decorrelated walk: every delay lies in [base, min cap (3 * previous)],
   and attempt <= 1 restarts the walk from base *)
let prop_jitter_walk =
  QCheck2.Test.make ~name:"backoff: jitter delays stay in [base, min cap 3*prev]" ~count:300
    QCheck2.Gen.(pair int (int_range 2 40))
    (fun (seed, n) ->
      let base = 0.001 and cap = 0.02 in
      let j = Backoff.Jitter.create ~base ~cap ~seed () in
      let ok = ref true in
      let prev = ref base in
      for i = 1 to n do
        (* restart the sequence halfway to exercise the attempt<=1 reset *)
        let attempt = if i <= n / 2 then i else i - (n / 2) in
        if attempt <= 1 then prev := base;
        let d = Backoff.Jitter.next j ~attempt in
        if not (d >= base -. 1e-12 && d <= Float.min cap (!prev *. 3.) +. 1e-12) then
          ok := false;
        prev := d
      done;
      !ok)

let suites =
  [
    ( "txn.executor",
      [
        Alcotest.test_case "flat commit" `Quick test_flat_commit;
        Alcotest.test_case "insert/delete" `Quick test_insert_delete_ops;
        Alcotest.test_case "abort restores" `Quick test_abort_restores;
        Alcotest.test_case "log contents" `Quick test_log_contents;
        Alcotest.test_case "recovery from engine log" `Quick test_recovery_from_engine_log;
      ] );
    ( "txn.blocking",
      [
        Alcotest.test_case "write blocks reader" `Quick test_write_blocks_reader;
        Alcotest.test_case "readers share" `Quick test_readers_share;
        Alcotest.test_case "scan blocks writer" `Quick test_scan_blocks_writer;
        Alcotest.test_case "read committed releases early" `Quick
          test_read_committed_releases_early;
        Alcotest.test_case "scan committed releases early" `Quick
          test_scan_committed_releases_early;
        Alcotest.test_case "scan-for-update serializes" `Quick test_scan_for_update_serializes;
        Alcotest.test_case "peek takes no data locks" `Quick test_peek_keys_no_locks;
      ] );
    ( "txn.deadlock",
      [
        Alcotest.test_case "detected and resolved" `Quick test_deadlock_detected_and_resolved;
        Alcotest.test_case "same order no deadlock" `Quick test_no_deadlock_same_order;
        Alcotest.test_case "custom victim policy" `Quick test_custom_victim_policy;
        Alcotest.test_case "three-way deadlock" `Quick test_three_way_deadlock;
      ] );
    ( "txn.serializability",
      [
        Alcotest.test_case "serial trace" `Quick test_checker_serial_trace;
        Alcotest.test_case "non-serializable trace" `Quick test_checker_nonserializable_trace;
        Alcotest.test_case "ignores uncommitted" `Quick test_checker_ignores_uncommitted;
        Alcotest.test_case "table/tuple overlap" `Quick test_checker_table_tuple_overlap;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_2pl_serializable;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_transfers_conserve_money;
      ] );
    ( "txn.backoff",
      [
        Alcotest.test_case "jitter seeding" `Quick test_jitter_seeding;
        QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xACC |]) prop_jitter_walk;
      ] );
  ]
