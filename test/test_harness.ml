(* Tests for acc.harness: the paired-measurement layer and the figure
   machinery, on deliberately tiny configurations. *)

module Experiment = Acc_harness.Experiment
module Figures = Acc_harness.Figures

let tiny =
  {
    Experiment.default_settings with
    Experiment.seeds = [ 3 ];
    horizon = 60.0;
    warmup = 10.0;
    terminals = 6;
  }

let test_measure_basics () =
  let p = Experiment.measure tiny in
  Alcotest.(check int) "terminals recorded" 6 p.Experiment.p_terminals;
  Alcotest.(check bool) "base responded" true (p.Experiment.p_base.Experiment.s_response > 0.);
  Alcotest.(check bool) "acc responded" true (p.Experiment.p_acc.Experiment.s_response > 0.);
  Alcotest.(check bool) "ratios finite" true
    (Float.is_finite (Experiment.response_ratio p)
    && Float.is_finite (Experiment.throughput_ratio p));
  Alcotest.(check int) "no violations" 0
    (p.Experiment.p_base.Experiment.s_violations + p.Experiment.p_acc.Experiment.s_violations);
  Alcotest.(check bool) "lock wait measured" true
    (p.Experiment.p_base.Experiment.s_lock_wait >= 0.)

let test_measure_deterministic () =
  let a = Experiment.measure tiny and b = Experiment.measure tiny in
  Alcotest.(check (float 1e-12)) "same base response" a.Experiment.p_base.Experiment.s_response
    b.Experiment.p_base.Experiment.s_response;
  Alcotest.(check (float 1e-12)) "same acc response" a.Experiment.p_acc.Experiment.s_response
    b.Experiment.p_acc.Experiment.s_response

let test_variants_differ () =
  (* the two-level variant takes a different code path: its ACC side must
     not be identical to the one-level run (deadlock counts, at least,
     diverge under contention; at this tiny scale responses may coincide,
     so compare the variant plumbing by label too) *)
  let one = Experiment.measure ~variant:Experiment.One_level tiny in
  let two = Experiment.measure ~variant:Experiment.Two_level tiny in
  Alcotest.(check bool) "baselines identical (shared)" true
    (one.Experiment.p_base.Experiment.s_response = two.Experiment.p_base.Experiment.s_response)

let test_sweep_labels () =
  let pts = Experiment.sweep_terminals tiny [ 2; 4 ] in
  Alcotest.(check (list int)) "terminal axis"
    [ 2; 4 ]
    (List.map (fun p -> p.Experiment.p_terminals) pts)

let test_figure_render_and_csv () =
  let fig = Figures.fig4 ~quick:true { tiny with Experiment.terminals = 4 } in
  let text = Format.asprintf "%a" Figures.render fig in
  let csv = Format.asprintf "%a" Figures.render_csv fig in
  Alcotest.(check bool) "text mentions title" true
    (String.length text > 0
    &&
    let has s sub =
      let n = String.length s and m = String.length sub in
      let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
      at 0
    in
    has text "Figure 4");
  Alcotest.(check bool) "csv has header" true
    (String.length csv > 0 && String.sub csv 0 6 = "figure");
  Alcotest.(check int) "no violations" 0 (Figures.consistency_violations fig)

let suites =
  [
    ( "harness",
      [
        Alcotest.test_case "measure basics" `Slow test_measure_basics;
        Alcotest.test_case "deterministic" `Slow test_measure_deterministic;
        Alcotest.test_case "variants share baselines" `Slow test_variants_differ;
        Alcotest.test_case "sweep labels" `Slow test_sweep_labels;
        Alcotest.test_case "figure render + csv" `Slow test_figure_render_and_csv;
      ] );
  ]
