(* Aggregated alcotest runner; suites are contributed by test_*.ml modules. *)
let () = Alcotest.run "acc" (Test_util.suites @ Test_relation.suites @ Test_lock.suites @ Test_obs.suites @ Test_wal.suites @ Test_txn.suites @ Test_acc.suites @ Test_sim.suites @ Test_tpcc.suites @ Test_integration.suites @ Test_explore.suites @ Test_harness.suites @ Test_surface.suites @ Test_parallel.suites)
