(* Tests for acc.obs (trace sink, conflict accounting) and the
   Metrics.Histogram / Counter.drain additions that back it. *)

module Trace = Acc_obs.Trace
module Json = Acc_obs.Json
module CA = Acc_obs.Conflict_accounting
module Metrics = Acc_util.Metrics
module Mode = Acc_lock.Mode
module Lock_table = Acc_lock.Lock_table
module Resource_id = Acc_lock.Resource_id
module Value = Acc_relation.Value

let res i = Resource_id.Tuple ("t", [ Value.Int i ])

(* one sample event per constructor: the taxonomy surface the encodings must
   cover *)
let one_of_each =
  [
    Trace.Txn_begin { txn = 1; txn_type = "new_order" };
    Trace.Txn_commit { txn = 1 };
    Trace.Txn_abort { txn = 2; compensated = true };
    Trace.Step_begin { txn = 1; step_type = 3; step_index = 1 };
    Trace.Step_end { txn = 1; step_index = 1 };
    Trace.Comp_run { txn = 2; step_type = 9; from_step = 2 };
    Trace.Lock_request { txn = 1; step_type = 3; mode = Mode.S; resource = res 1 };
    Trace.Lock_grant
      { txn = 1; step_type = 3; mode = Mode.A 2; resource = res 1; past_2pl = 1; reentrant = false };
    Trace.Lock_block
      {
        txn = 1;
        step_type = 3;
        mode = Mode.X;
        resource = res 2;
        blocker_txn = 7;
        blocker_mode = Mode.A 1;
        blocker_waiting = false;
        assertion = Some 4;
        interfering_step = Some 12;
      };
    Trace.Lock_wake { txn = 1; mode = Mode.X; resource = res 2 };
    Trace.Batch_acquired { txn = 1; step_type = 3; count = 6 };
    Trace.Lock_release { txn = 1; mode = Mode.X; resource = res 2 };
    Trace.Lock_attach { txn = 3; step_type = 0; mode = Mode.Comp 1; resource = res 3 };
    Trace.Lock_cancel { txn = 3; resource = res 3 };
    Trace.Assertion_check { txn = 1; assertion = 4; interfering_step = 12; passed = true };
    Trace.Deadlock_cycle { cycle = [ 1; 7; 9 ] };
    Trace.Victim { txn = 7; spared_compensating = true };
    Trace.Wal_append { txn = 1; lsn = 42; kind = "write"; dur = 3e-6 };
    Trace.Wal_flush { records = 17 };
    Trace.Timed_out { txn = 5; mode = Mode.X; resource = res 4; waited = 0.052 };
    Trace.Shed { inflight = 64; reason = "capacity" };
    Trace.Degraded { on = true; oldest_wait = 1.5 };
    Trace.Prepare { txn = 8; gid = 3 };
    Trace.Decide { gid = 3; commit = true; participants = 2 };
    Trace.Resolve { txn = 8; gid = 3; commit = false };
    Trace.Net_fault { kind = "drop"; msg = "decide" };
    Trace.Rpc_retry { msg = "decide"; gid = 3; attempt = 2 };
  ]

(* --- ring buffer ------------------------------------------------------- *)

let test_disabled_noop () =
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  Trace.emit (Trace.Txn_commit { txn = 1 });
  let d = Trace.drain () in
  Alcotest.(check int) "no events" 0 (List.length d.Trace.events);
  Alcotest.(check int) "no emitted" 0 d.Trace.emitted

let test_wraparound_drops_oldest () =
  Trace.start ~capacity:8 ();
  for i = 1 to 20 do
    Trace.emit (Trace.Txn_commit { txn = i })
  done;
  let d = Trace.stop () in
  Alcotest.(check int) "emitted" 20 d.Trace.emitted;
  Alcotest.(check int) "dropped" 12 d.Trace.dropped;
  Alcotest.(check int) "kept = capacity" 8 (List.length d.Trace.events);
  (* drop-oldest: the survivors are the *last* 8 emissions, in order *)
  let txns =
    List.map
      (fun e -> match e.Trace.ev with Trace.Txn_commit { txn } -> txn | _ -> -1)
      d.Trace.events
  in
  Alcotest.(check (list int)) "last 8 kept" [ 13; 14; 15; 16; 17; 18; 19; 20 ] txns;
  let seqs = List.map (fun e -> e.Trace.seq) d.Trace.events in
  Alcotest.(check (list int)) "seqs count drops" [ 12; 13; 14; 15; 16; 17; 18; 19 ] seqs

let test_restart_replaces_sink () =
  Trace.start ~capacity:8 ();
  Trace.emit (Trace.Txn_commit { txn = 1 });
  Trace.start ~capacity:8 ();
  (* a fresh sink: the old buffer must not leak into the new dump *)
  Trace.emit (Trace.Txn_commit { txn = 2 });
  let d = Trace.stop () in
  Alcotest.(check int) "one event" 1 (List.length d.Trace.events);
  (match (List.hd d.Trace.events).Trace.ev with
  | Trace.Txn_commit { txn } -> Alcotest.(check int) "from new sink" 2 txn
  | _ -> Alcotest.fail "unexpected event");
  Alcotest.(check bool) "stopped" false (Trace.enabled ())

let test_multi_domain_interleaved () =
  let per_domain = 2000 in
  Trace.start ~capacity:(4 * per_domain) ();
  let worker base () =
    for i = 0 to per_domain - 1 do
      Trace.emit (Trace.Txn_begin { txn = base + i; txn_type = "w" })
    done
  in
  let d1 = Domain.spawn (worker 10_000) in
  let d2 = Domain.spawn (worker 20_000) in
  Domain.join d1;
  Domain.join d2;
  let d = Trace.stop () in
  Alcotest.(check int) "emitted" (2 * per_domain) d.Trace.emitted;
  Alcotest.(check int) "dropped" 0 d.Trace.dropped;
  (* per-domain seq is contiguous from 0 and txn ids stay in emission order
     within a domain, whatever the merged interleaving looks like *)
  let by_dom = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let prev = try Hashtbl.find by_dom e.Trace.dom with Not_found -> [] in
      Hashtbl.replace by_dom e.Trace.dom (e :: prev))
    d.Trace.events;
  Alcotest.(check int) "two domains" 2 (Hashtbl.length by_dom);
  Hashtbl.iter
    (fun _dom rev_entries ->
      let entries = List.rev rev_entries in
      List.iteri
        (fun i e ->
          Alcotest.(check int) "seq contiguous" i e.Trace.seq;
          match e.Trace.ev with
          | Trace.Txn_begin { txn; _ } -> Alcotest.(check int) "txn order" (txn mod 10_000) i
          | _ -> Alcotest.fail "unexpected event")
        entries)
    by_dom;
  (* merged dump is timestamp-ordered *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Trace.ts <= b.Trace.ts && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamp-ordered" true (sorted d.Trace.events)

(* --- encodings --------------------------------------------------------- *)

let test_event_names_distinct () =
  let names = List.map Trace.event_name one_of_each in
  Alcotest.(check int) "one sample per constructor" (List.length Trace.all_event_names)
    (List.length one_of_each);
  List.iter
    (fun n -> Alcotest.(check bool) ("known name " ^ n) true (List.mem n Trace.all_event_names))
    names;
  Alcotest.(check int) "names distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let emit_one_of_each () =
  Trace.start ~capacity:64 ();
  List.iter Trace.emit one_of_each;
  Trace.stop ()

let test_jsonl_roundtrip () =
  let d = emit_one_of_each () in
  Alcotest.(check int) "all captured" (List.length one_of_each) (List.length d.Trace.events);
  (* every entry's JSON line parses back and carries the right wire name *)
  List.iter2
    (fun entry ev ->
      let line = Json.to_string (Trace.to_json entry) in
      match Json.of_string line with
      | Error msg -> Alcotest.fail ("unparseable line: " ^ msg ^ ": " ^ line)
      | Ok j ->
          let name = Option.bind (Json.member "ev" j) Json.to_str in
          Alcotest.(check (option string)) "ev name" (Some (Trace.event_name ev)) name;
          Alcotest.(check bool) "has ts" true (Json.member "ts" j <> None);
          Alcotest.(check bool) "has dom" true (Json.member "dom" j <> None))
    d.Trace.events one_of_each;
  (* the full file: one line per event plus the trace_summary trailer *)
  let path = Filename.temp_file "acc_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Trace.write_jsonl oc d;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "events + summary" (List.length one_of_each + 1) (List.length lines);
      let last = List.nth lines (List.length lines - 1) in
      match Json.of_string last with
      | Error msg -> Alcotest.fail ("bad summary: " ^ msg)
      | Ok j ->
          Alcotest.(check (option string))
            "summary ev" (Some "trace_summary")
            (Option.bind (Json.member "ev" j) Json.to_str);
          Alcotest.(check (option int))
            "summary events" (Some (List.length one_of_each))
            (Option.bind (Json.member "events" j) Json.to_int);
          Alcotest.(check (option int))
            "summary dropped" (Some 0)
            (Option.bind (Json.member "dropped" j) Json.to_int))

let test_chrome_valid_json () =
  let d = emit_one_of_each () in
  let path = Filename.temp_file "acc_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Trace.write_chrome oc d;
      close_out oc;
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      match Json.of_string s with
      | Error msg -> Alcotest.fail ("chrome trace unparseable: " ^ msg)
      | Ok j when Json.member "traceEvents" j <> None -> (
          match Json.member "traceEvents" j with
          | Some (Json.List events) ->
          Alcotest.(check bool) "nonempty" true (events <> []);
          (* the paired txn span must appear as a complete ("X") event *)
          let has_txn_span =
            List.exists
              (fun e ->
                Option.bind (Json.member "ph" e) Json.to_str = Some "X"
                && Option.bind (Json.member "cat" e) Json.to_str = Some "txn")
              events
          in
          Alcotest.(check bool) "txn X span" true has_txn_span;
          List.iter
            (fun e ->
              Alcotest.(check bool) "has name" true (Json.member "name" e <> None);
              Alcotest.(check bool) "has ph" true (Json.member "ph" e <> None);
              Alcotest.(check bool) "has ts" true (Json.member "ts" e <> None))
            events
          | _ -> Alcotest.fail "traceEvents is not an array")
      | Ok _ -> Alcotest.fail "chrome trace has no traceEvents array")

(* --- conflict accounting ----------------------------------------------- *)

let request ?(step_type = 3) decision =
  Lock_table.Ob_request
    { or_txn = 1; or_step_type = step_type; or_mode = Mode.X; or_resource = res 1;
      or_decision = decision }

let granted ?(past_2pl = 0) () =
  Lock_table.Dec_granted { past_2pl; reentrant = false; checks = [] }

let blocked ?assertion ?interfering_step () =
  Lock_table.Dec_blocked
    { blocker_txn = 9; blocker_mode = Mode.X; blocker_waiting = false; assertion;
      interfering_step; checks = [] }

let test_accounting_classification () =
  let t = CA.create () in
  CA.observe t (request (granted ()));
  CA.observe t (request (granted ~past_2pl:2 ()));
  CA.observe t (request (blocked ()));
  CA.observe t (request (blocked ~assertion:4 ~interfering_step:12 ()));
  (* non-request observations are ignored *)
  CA.observe t (Lock_table.Ob_release { ol_txn = 1; ol_mode = Mode.X; ol_resource = res 1 });
  CA.observe t (Lock_table.Ob_cancel { oc_txn = 1; oc_resource = res 1 });
  match CA.rows t with
  | [ row ] ->
      Alcotest.(check int) "step type" 3 row.CA.r_step_type;
      Alcotest.(check int) "granted clean" 1 row.CA.r_granted_clean;
      Alcotest.(check int) "passed 2pl" 1 row.CA.r_passed_2pl;
      Alcotest.(check int) "blocked conv" 1 row.CA.r_blocked_conv;
      Alcotest.(check int) "blocked assert" 1 row.CA.r_blocked_assert;
      Alcotest.(check int) "row total" 4 (CA.row_total row);
      Alcotest.(check int) "totals" 4 (CA.row_total (CA.totals t))
  | rows -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length rows))

let test_accounting_overflow_bucket () =
  let t = CA.create ~max_step_types:2 () in
  CA.observe t (request ~step_type:1 (granted ()));
  CA.observe t (request ~step_type:57 (granted ()));
  CA.observe t (request ~step_type:300 (blocked ()));
  match CA.rows t with
  | [ a; b ] ->
      Alcotest.(check int) "in-range row" 1 a.CA.r_step_type;
      Alcotest.(check int) "overflow row last" (-1) b.CA.r_step_type;
      Alcotest.(check int) "overflow pools" 2 (CA.row_total b)
  | rows -> Alcotest.fail (Printf.sprintf "expected 2 rows, got %d" (List.length rows))

let test_accounting_merge_and_json () =
  let t = CA.create () in
  CA.observe t (request ~step_type:1 (granted ~past_2pl:1 ()));
  CA.observe t (request ~step_type:2 (blocked ()));
  let rows = CA.rows t in
  let doubled = CA.merge_rows rows rows in
  Alcotest.(check int) "merge keeps rows" 2 (List.length doubled);
  List.iter2
    (fun r d -> Alcotest.(check int) "merge sums" (2 * CA.row_total r) (CA.row_total d))
    rows doubled;
  (* the JSON shape parses back with the documented fields *)
  let s = Json.to_string (CA.to_json t) in
  match Json.of_string s with
  | Error msg -> Alcotest.fail ("accounting json: " ^ msg)
  | Ok j ->
      (match Json.member "rows" j with
      | Some (Json.List rs) -> Alcotest.(check int) "json rows" 2 (List.length rs)
      | _ -> Alcotest.fail "no rows field");
      Alcotest.(check bool) "totals present" true (Json.member "totals" j <> None)

(* --- histogram / counter ----------------------------------------------- *)

let test_histogram_percentiles () =
  let h = Metrics.Histogram.create () in
  Alcotest.(check bool) "empty p50 nan" true (Float.is_nan (Metrics.Histogram.percentile h 0.5));
  for _ = 1 to 900 do
    Metrics.Histogram.record h 0.001
  done;
  for _ = 1 to 100 do
    Metrics.Histogram.record h 0.1
  done;
  Alcotest.(check int) "count" 1000 (Metrics.Histogram.count h);
  Alcotest.(check bool)
    "total ~ 10.9" true
    (Float.abs (Metrics.Histogram.total h -. 10.9) < 1e-6);
  let p50 = Metrics.Histogram.percentile h 0.5 in
  let p99 = Metrics.Histogram.percentile h 0.99 in
  (* quantile error is bounded by the winning bucket's width (one octave) *)
  Alcotest.(check bool) "p50 in 1ms bucket" true (p50 >= 0.0005 && p50 <= 0.002);
  Alcotest.(check bool) "p99 in 100ms bucket" true (p99 >= 0.05 && p99 <= 0.2);
  Alcotest.(check bool) "monotone" true (p50 <= p99);
  Alcotest.(check int) "two buckets" 2 (List.length (Metrics.Histogram.nonzero_buckets h))

let test_histogram_clamps () =
  let h = Metrics.Histogram.create () in
  Metrics.Histogram.record h (-5.0);
  Metrics.Histogram.record h Float.nan;
  Alcotest.(check int) "both counted" 2 (Metrics.Histogram.count h);
  match Metrics.Histogram.nonzero_buckets h with
  | [ (ub, 2) ] -> Alcotest.(check bool) "bucket 0" true (ub <= Metrics.Histogram.default_base +. 1e-12)
  | _ -> Alcotest.fail "expected everything in bucket 0"

let test_histogram_multi_domain () =
  let h = Metrics.Histogram.create () in
  let worker () =
    for _ = 1 to 10_000 do
      Metrics.Histogram.record h 0.001
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost updates" 30_000 (Metrics.Histogram.count h)

let test_counter_drain () =
  let c = Metrics.Counter.create () in
  Metrics.Counter.add c 5;
  Alcotest.(check int) "drain returns" 5 (Metrics.Counter.drain c);
  Alcotest.(check int) "zeroed" 0 (Metrics.Counter.get c);
  Metrics.Counter.incr c;
  Alcotest.(check int) "fresh epoch" 1 (Metrics.Counter.get c)

let suites =
  [
    ( "obs.trace",
      [
        Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
        Alcotest.test_case "wraparound drops oldest" `Quick test_wraparound_drops_oldest;
        Alcotest.test_case "restart replaces sink" `Quick test_restart_replaces_sink;
        Alcotest.test_case "multi-domain interleaved" `Quick test_multi_domain_interleaved;
        Alcotest.test_case "event names distinct" `Quick test_event_names_distinct;
        Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
        Alcotest.test_case "chrome trace valid" `Quick test_chrome_valid_json;
      ] );
    ( "obs.accounting",
      [
        Alcotest.test_case "classification" `Quick test_accounting_classification;
        Alcotest.test_case "overflow bucket" `Quick test_accounting_overflow_bucket;
        Alcotest.test_case "merge + json" `Quick test_accounting_merge_and_json;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
        Alcotest.test_case "histogram clamps" `Quick test_histogram_clamps;
        Alcotest.test_case "histogram multi-domain" `Quick test_histogram_multi_domain;
        Alcotest.test_case "counter drain" `Quick test_counter_drain;
      ] );
  ]
