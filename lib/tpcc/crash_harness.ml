(* Crash-restart harness: run TPC-C, kill the process at a registered crash
   point, restart from baseline + log, and check the recovery invariants the
   paper's §3.4 story depends on:

   - full-log recovery and checkpoint-based recovery agree (state and
     pending set);
   - recovery is idempotent: replaying the WAL a second time from the same
     baseline reproduces the same state;
   - automated compensation replay drives the pending set to empty, and
     re-recovering from the post-replay log confirms it (zero pending, state
     equal to the live engine);
   - no locks or waiters survive the replay engine;
   - the TPC-C consistency conditions hold after resuming the remaining
     transactions.

   A "crash" here is {!Acc_fault.Fault.Crash} propagating out of the
   scheduler: the engine object is discarded un-cleaned-up, exactly as a
   dead process leaves it, and restart sees only the baseline snapshot, the
   log, and the last durable checkpoint.

   Two drivers: [sweep] (deterministic — dry-run under [Fault.observe] to
   learn each point's passage count, then crash at a spread of hits per
   point) and [chaos] (seeded probabilistic crashes, including crashes that
   land inside the compensation replay itself). *)

module Fault = Acc_fault.Fault
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Database = Acc_relation.Database
module Lock_service = Acc_lock.Lock_service
module Log = Acc_wal.Log
module Record = Acc_wal.Record
module Recovery = Acc_wal.Recovery
module Checkpoint = Acc_wal.Checkpoint
module Replay = Acc_core.Replay

(* force linkage: the TPC-C compensation handlers register themselves at
   Recovery_comp's module-initialization time *)
let _force_handler_registration = Recovery_comp.complete

type config = {
  params : Params.t;
  seed : int;
  txns : int;
  abort_rate : float;
  step_fault_p : float;
  checkpoint_every : int;
  hits_per_point : int;
  chaos_p : float;
  verbose : bool;
  workload : Acc_workload.t option;
}

let default_config =
  {
    params = Params.default;
    seed = 7;
    txns = 48;
    (* elevated well past the spec's 1% so short runs exercise the inline
       compensation path (and its comp.* crash points) *)
    abort_rate = 0.15;
    step_fault_p = 0.05;
    checkpoint_every = 16;
    hits_per_point = 3;
    chaos_p = 0.004;
    verbose = false;
    workload = None;
  }

type result = { r_label : string; r_crashes : int; r_errors : string list }

let failed r = r.r_errors <> []

let say cfg fmt =
  if cfg.verbose then Printf.printf (fmt ^^ "\n%!") else Printf.ifprintf stdout fmt

(* ------------------------------------------------------------------ *)
(* The workload, lowered to what the harness needs: an array of ready-to-run
   transaction closures plus the incarnation hooks.  Inputs are generated
   once per jobs value, so every incarnation of a crashed machine resubmits
   the same transactions (bodies draw no randomness — the crash-determinism
   rule every workload plugin obeys). *)

type jobs = {
  j_name : string;
  j_reset : unit -> unit;  (** per-incarnation: surrogate sequences, replay handlers *)
  j_populate : seed:int -> Database.t;
  j_sem : Acc_lock.Mode.semantics;
  j_run : (Executor.t -> unit) array;
  j_consistency : Database.t -> string list;
  j_coverage : bool;
      (** the dead-crash-point check applies — only the default TPC-C
          workload is expected to reach every registered point *)
}

type run = {
  cfg : config;
  jobs : jobs;
  mutable baseline : Database.t;
  mutable eng : Executor.t;
  mutable mgr : Checkpoint.Manager.t;
}

let gen_inputs cfg =
  let env = Txns.default_env ~seed:cfg.seed cfg.params in
  let env = { env with Txns.new_order_abort_rate = cfg.abort_rate } in
  Array.init cfg.txns (fun _ -> Txns.gen_input env)

let jobs_of_inputs cfg inputs =
  let env = Txns.default_env ~seed:cfg.seed cfg.params in
  {
    j_name = "tpcc";
    j_reset = Txns.reset_history_seq;
    j_populate = (fun ~seed -> Load.populate ~seed cfg.params);
    j_sem = Txns.semantics;
    j_run = Array.map (fun input eng -> ignore (Txns.run_acc eng env input)) inputs;
    j_consistency = Consistency.check;
    j_coverage = true;
  }

let jobs_of cfg =
  match cfg.workload with
  | None -> jobs_of_inputs cfg (gen_inputs cfg)
  | Some w ->
      let module W = (val w : Acc_workload.S) in
      W.reset_global ();
      let env = W.make_env ~seed:cfg.seed () in
      let inputs = Array.init cfg.txns (fun _ -> W.gen_input env) in
      {
        j_name = W.name;
        j_reset = W.reset_global;
        j_populate = (fun ~seed -> W.populate ~seed);
        j_sem = W.semantics;
        j_run = Array.map (fun input eng -> ignore (W.run_acc eng env input)) inputs;
        j_consistency = W.consistency;
        j_coverage = false;
      }

(* The harness runs under group commit so the sweep covers the [wal.flush]
   batch-boundary crash window (§17's widened loss unit): a crash loses whole
   un-synced batches, and the flushed log prefix is what restart sees. *)
let harness_wal = Log.Buffered { cap = Log.default_cap; group = true }

let fresh cfg ~jobs =
  jobs.j_reset ();
  let db = jobs.j_populate ~seed:cfg.seed in
  let baseline = Database.copy db in
  let eng = Executor.create ~wal_policy:harness_wal ~sem:jobs.j_sem db in
  let mgr = Checkpoint.Manager.create ~every:cfg.checkpoint_every () in
  { cfg; jobs; baseline; eng; mgr }

let restart r ~db =
  r.baseline <- Database.copy db;
  r.eng <- Executor.create ~wal_policy:harness_wal ~sem:r.jobs.j_sem db;
  r.mgr <- Checkpoint.Manager.create ~every:r.cfg.checkpoint_every ()

exception Crashed of { point : string; hit : int; at : int; start_lsn : Log.lsn }
(** A crash surfaced while executing input [at]; [start_lsn] is the log
    position when that input started (its records are the log suffix). *)

(* Execute inputs [from ..], single fiber per transaction, taking a
   quiescent checkpoint every [checkpoint_every] log records. *)
let exec_from r ~from =
  let n = Array.length r.jobs.j_run in
  let i = ref from in
  try
    while !i < n do
      let job = r.jobs.j_run.(!i) in
      let start_lsn = Log.length (Executor.log r.eng) in
      (try Schedule.run r.eng [ (fun () -> job r.eng) ]
       with Fault.Crash { point; hit } -> raise (Crashed { point; hit; at = !i; start_lsn }));
      ignore (Checkpoint.Manager.maybe_take r.mgr (Executor.db r.eng) (Executor.log r.eng));
      incr i
    done
  with Crashed _ as c -> raise c

(* Did the input whose records start at [start_lsn] reach its commit record?
   (Deadlock/fault retries of the same input log Abort for the dead attempts;
   only a Commit means the work is durable.) *)
let committed_in_suffix log start_lsn =
  List.exists
    (function Record.Commit _ -> true | _ -> false)
    (Log.appended_since log start_lsn)

(* ------------------------------------------------------------------ *)
(* Recovery-side invariants. *)

let err errs label fmt =
  Printf.ksprintf (fun msg -> errs := (label ^ ": " ^ msg) :: !errs) fmt

(* Recover the crashed run and check everything that must hold before any
   compensation is replayed.  Pure log reading: no crash point fires here. *)
let recover_verified errs label r =
  let records = Log.to_list (Executor.log r.eng) in
  let rep = Recovery.recover ~baseline:r.baseline records in
  (* replaying the WAL a second time from the same baseline is a no-op:
     recovery is a pure function of (baseline, log) *)
  let again = Recovery.recover ~baseline:r.baseline records in
  if not (Database.equal rep.Recovery.db again.Recovery.db) then
    err errs label "double WAL replay diverged";
  (* restarting from the last durable checkpoint must agree with replaying
     the whole log from the baseline *)
  let from_ckpt = Checkpoint.Manager.recover r.mgr ~baseline:r.baseline (Executor.log r.eng) in
  if not (Database.equal rep.Recovery.db from_ckpt.Recovery.db) then begin
    err errs label "checkpoint recovery diverged from full-log recovery";
    List.iter (fun l -> err errs label "  %s" l)
      (Database.diff rep.Recovery.db from_ckpt.Recovery.db)
  end;
  let pending_sig rep =
    List.map
      (fun p -> (p.Recovery.p_txn, p.Recovery.p_completed_steps, p.Recovery.p_area))
      rep.Recovery.pending
    |> List.sort compare
  in
  if pending_sig rep <> pending_sig from_ckpt then
    err errs label "checkpoint recovery reports a different pending set";
  rep

(* What a restart incarnation hands the next one: recovery's output is an
   atomically-installed checkpoint — the recovered snapshot plus the
   obligations still pending against it.  The next incarnation recovers
   from its own (snapshot, log) pair and merges: an obligation is dropped
   once the log resolves it (its compensating step's end is durable),
   superseded by the log's fresher view if the log rewound a partial
   attempt, and carried unchanged if the crash cut it off before
   [adopt_pending] finished re-logging it — the case that makes carrying
   necessary at all. *)
let merge_carried carried (rep : Recovery.report) =
  List.filter_map
    (fun (p : Recovery.pending) ->
      if
        List.mem p.Recovery.p_txn rep.Recovery.committed
        || List.mem p.Recovery.p_txn rep.Recovery.already_resolved
      then None
      else
        match
          List.find_opt (fun (q : Recovery.pending) -> q.Recovery.p_txn = p.Recovery.p_txn)
            rep.Recovery.pending
        with
        | Some q -> Some q
        | None -> Some p)
    carried

(* Replay all pending compensations.  A crash can land inside the replay
   itself (comp.begin, comp.write, the WAL points): each retry re-recovers
   from the incarnation's snapshot over its own log, merges the carried
   obligations, and replays what is left.  Past [max_tries] the faults are
   disarmed so chaos mode always terminates. *)
let replay_with_retries errs label ~sem rep0 =
  let rec go ~snapshot ~carried ~tries =
    let eng' = Executor.create ~wal_policy:harness_wal ~sem (Database.copy snapshot) in
    match List.iter (Replay.replay_one eng') carried with
    | () -> (snapshot, carried, eng')
    | exception Fault.Crash _ ->
        if tries >= 100 then Fault.disarm ();
        let rep = Recovery.recover ~baseline:snapshot (Log.to_list (Executor.log eng')) in
        go ~snapshot:rep.Recovery.db ~carried:(merge_carried carried rep) ~tries:(tries + 1)
  in
  let snapshot, carried, eng' =
    go ~snapshot:rep0.Recovery.db ~carried:rep0.Recovery.pending ~tries:0
  in
  (* re-deriving the incarnation from its snapshot + log must show every
     obligation resolved and reproduce the live state: compensation replay
     is crash-idempotent and complete *)
  let rep' = Recovery.recover ~baseline:snapshot (Log.to_list (Executor.log eng')) in
  (match merge_carried carried rep' with
  | [] -> ()
  | left -> err errs label "%d pending compensations survive replay" (List.length left));
  if not (Database.equal rep'.Recovery.db (Executor.db eng')) then
    err errs label "re-recovery of the replay log diverges from the live state";
  let locks = Executor.lock_service eng' in
  if Lock_service.lock_count locks <> 0 then
    err errs label "%d dangling locks after replay" (Lock_service.lock_count locks);
  if Lock_service.waiter_count locks <> 0 then
    err errs label "%d dangling waiters after replay" (Lock_service.waiter_count locks);
  Executor.db eng'

let check_consistency jobs errs label db =
  List.iter (fun c -> err errs label "consistency: %s" c) (jobs.j_consistency db)

(* Crash → recover → replay → verify; leaves [r] restarted on the recovered
   database and returns the input index execution should resume from (the
   crashed input is re-submitted unless its commit record was durable). *)
let recover_crash errs label r ~at ~start_lsn =
  let committed = committed_in_suffix (Executor.log r.eng) start_lsn in
  let rep = recover_verified errs label r in
  let db = replay_with_retries errs label ~sem:r.jobs.j_sem rep in
  check_consistency r.jobs errs label db;
  restart r ~db;
  if committed then at + 1 else at

(* ------------------------------------------------------------------ *)
(* Deterministic sweep. *)

(* Dry-run the workload with counters live but nothing armed, to learn how
   many passages each crash point sees. *)
let observe_counts cfg ~jobs =
  Fault.observe ();
  if cfg.step_fault_p > 0. then Fault.arm_step_faults ~seed:(cfg.seed + 1) ~p:cfg.step_fault_p;
  let r = fresh cfg ~jobs in
  exec_from r ~from:0;
  let counts = List.map (fun name -> (name, Fault.trips_of name)) (Fault.registered ()) in
  Fault.disarm ();
  (counts, Executor.db r.eng)

(* [1; …; n] spread over [want] evenly-spaced values. *)
let hit_spread ~want n =
  if n <= 0 then []
  else
    let want = max 1 (min want n) in
    List.init want (fun k ->
        if want = 1 then 1 else 1 + (k * (n - 1) / (want - 1)))
    |> List.sort_uniq compare

let run_one_crash_jobs cfg ~jobs ~point ~hit =
  let label = Printf.sprintf "%s:%d" point hit in
  let errs = ref [] in
  Fault.arm ~point ~hit;
  if cfg.step_fault_p > 0. then Fault.arm_step_faults ~seed:(cfg.seed + 1) ~p:cfg.step_fault_p;
  let r = fresh cfg ~jobs in
  let crashes = ref 0 in
  let rec go from =
    match exec_from r ~from with
    | () -> ()
    | exception Crashed { at; start_lsn; _ } ->
        incr crashes;
        say cfg "  %s: crashed at txn %d, recovering" label at;
        (* the armed hit fired; recovery and the resumed run must survive
           with nothing armed, as a restarted process would *)
        Fault.disarm ();
        let resume = recover_crash errs label r ~at ~start_lsn in
        go resume
  in
  go 0;
  Fault.disarm ();
  if !crashes = 0 then err errs label "armed crash never fired";
  check_consistency r.jobs errs label (Executor.db r.eng);
  { r_label = label; r_crashes = !crashes; r_errors = List.rev !errs }

let run_one_crash cfg ~inputs ~point ~hit =
  run_one_crash_jobs cfg ~jobs:(jobs_of_inputs cfg inputs) ~point ~hit

let sweep ?(config = default_config) () =
  let cfg = config in
  let jobs = jobs_of cfg in
  let counts, clean_db = observe_counts cfg ~jobs in
  let errs0 = ref [] in
  check_consistency jobs errs0 "baseline(no faults)" clean_db;
  (* the dist.* points belong to the 2PC coordinator, which this single-
     engine workload never enters; the partitioned harness (lib/dist) owns
     their coverage.  Non-default workloads skip the dead-point check
     entirely: a workload with, say, no compensating steps legitimately
     never reaches the comp.* points. *)
  if jobs.j_coverage then begin
    let dead =
      List.filter
        (fun (name, n) ->
          n = 0
          && not (String.length name >= 5 && String.sub name 0 5 = "dist.")
          && name <> "wal.append.prepare")
        counts
    in
    List.iter
      (fun (name, _) -> err errs0 "coverage" "crash point %s never tripped by the workload" name)
      dead
  end;
  let base = { r_label = "baseline(no faults)"; r_crashes = 0; r_errors = List.rev !errs0 } in
  let per_point =
    List.concat_map
      (fun (point, n) ->
        List.map
          (fun hit ->
            say cfg "sweep %s hit %d/%d" point hit n;
            run_one_crash_jobs cfg ~jobs ~point ~hit)
          (hit_spread ~want:cfg.hits_per_point n))
      counts
  in
  base :: per_point

(* ------------------------------------------------------------------ *)
(* Chaos mode: every passage through any point crashes with probability
   [chaos_p]; faults stay armed through recovery and replay, so crashes land
   inside the compensation replay too. *)

let chaos ?(config = default_config) ~seed () =
  let cfg = config in
  let label = Printf.sprintf "chaos(seed=%d,p=%g)" seed cfg.chaos_p in
  let errs = ref [] in
  let jobs = jobs_of cfg in
  Fault.arm_chaos ~seed ~p:cfg.chaos_p;
  if cfg.step_fault_p > 0. then Fault.arm_step_faults ~seed:(cfg.seed + 1) ~p:cfg.step_fault_p;
  let r = fresh cfg ~jobs in
  let crashes = ref 0 in
  let rec go from =
    if !crashes > 500 then begin
      (* chaos drew an unluckily hot sequence; finish deterministically so
         the run terminates and the invariants still get checked *)
      Fault.disarm ();
      err errs label "gave up injecting after 500 crashes"
    end;
    match exec_from r ~from with
    | () -> ()
    | exception Crashed { at; start_lsn; point; hit } ->
        incr crashes;
        say cfg "  %s: crash #%d at %s:%d (txn %d)" label !crashes point hit at;
        go (recover_crash errs label r ~at ~start_lsn)
  in
  go 0;
  Fault.disarm ();
  check_consistency r.jobs errs label (Executor.db r.eng);
  { r_label = label; r_crashes = !crashes; r_errors = List.rev !errs }

(* ------------------------------------------------------------------ *)

let pp_result ppf r =
  if failed r then
    Format.fprintf ppf "@[<v2>FAIL %s (%d crashes):@,%a@]" r.r_label r.r_crashes
      (Format.pp_print_list Format.pp_print_string)
      r.r_errors
  else Format.fprintf ppf "ok   %s (%d crashes)" r.r_label r.r_crashes
