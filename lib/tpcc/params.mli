(** Scale parameters of the TPC-C database.

    TPC-C Rev 3.1 fixes the cardinalities per warehouse (10 districts, 3 000
    customers per district, 100 000 items).  A full-scale in-memory build is
    possible but pointless for the paper's experiments, whose contention
    lives in the district/warehouse tuples; the default scale keeps the same
    table shapes and skew structure at a fraction of the rows.  Paper-scale
    values are available as {!full}. *)

type t = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  initial_stock : int;  (** s_quantity each stock row starts with *)
  initial_orders_per_district : int;
      (** pre-loaded committed orders per district (order-status and delivery
          need history to chew on) *)
}

val default : t
(** 1 warehouse, 10 districts, 100 customers/district, 2 000 items: scaled
    down from Rev 3.1 while keeping item/customer collision probabilities
    low enough that the district tuples stay the leading hotspot, as at full
    scale. *)

val full : t
(** The Rev 3.1 cardinalities (1 warehouse). *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical values. *)
