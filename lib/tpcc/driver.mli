(** The experiment driver: a closed queueing network of terminals against one
    warehouse, mirroring the paper's §5.2 setup.

    Each terminal thinks (exponential think time), draws a transaction from
    the standard mix, and submits it to the engine; every engine work unit
    occupies one server of the pool (the 1–4 "database server processes"),
    and lock waits suspend the terminal without occupying a server.  The two
    systems under test share everything except the concurrency control:

    - {!Baseline}: every transaction runs flat under strict 2PL to commit
      (the unmodified system); stock-level runs at READ COMMITTED as the
      spec permits.
    - {!Acc}: the decomposed transactions run under the ACC runtime,
      order-status under legacy full isolation, stock-level at READ
      COMMITTED.

    Terminals stop issuing work at the horizon and the simulation drains to
    quiescence, where the consistency constraint is checked — semantic
    correctness made operational. *)

type system = Baseline | Acc

type config = {
  seed : int;
  system : system;
  terminals : int;
  servers : int;
  horizon : float;  (** stop issuing new transactions after this sim time *)
  warmup : float;  (** responses before this time are not recorded *)
  think_mean : float;
  compute_between : float;  (** client compute between successive statements *)
  cpu_per_unit : float;  (** server CPU seconds per engine work unit *)
  skewed_district : bool;
  min_items : int;
  max_items : int;
  params : Params.t;
  acc_options : Acc_core.Runtime.options;
      (** runtime options for the ACC side (retry budget, assertion
          granularity — set [Table] for the two-level ablation of §3.2) *)
  acc_semantics : Acc_lock.Mode.semantics option;
      (** override the interference oracle for the ACC side (e.g. tables
          built without the hand-proved commutativity facts); [None] uses
          the workload's own semantics *)
  workload : Acc_workload.t option;
      (** [None] (the default) runs TPC-C built from this config's scale
          knobs — the historical behavior, generator-stream-identical for a
          given seed; [Some w] runs any {!Acc_workload.S} plugin, and the
          TPC-C-specific fields ([params], [skewed_district], [min_items],
          [max_items]) are ignored *)
}

val default_config : config
(** 3 servers, 10 terminals, standard mix, no skew, no added compute time. *)

val workload_of : config -> Acc_workload.t
(** The plugin a config resolves to (TPC-C when [workload = None]). *)

type report = {
  completed : int;  (** transactions finished inside the horizon *)
  response : Acc_util.Stats.Tally.t;  (** response times after warmup *)
  lock_wait : Acc_util.Stats.Tally.t;
      (** time spent parked on locks, one observation per wait: the paper's
          bottleneck variable, measured directly *)
  per_type : (string * Acc_util.Stats.Tally.t) list;
  throughput : float;  (** completed per sim second of measured window *)
  deadlock_victims : int;
  forced_aborts : int;  (** the 1% new-order rule *)
  compensations : int;
  cpu_utilization : float;
  quiesced_at : float;
  violations : string list;  (** consistency breaches at quiescence (must be []) *)
}

val run : config -> report

val mean_response : report -> float
