module S = Acc_relation.Schema
module Database = Acc_relation.Database
module Table = Acc_relation.Table
open Acc_relation.Value

let warehouse =
  S.make ~name:"warehouse" ~key:[ "w_id" ]
    [
      S.col "w_id" Tint;
      S.col "w_name" Tstr;
      S.col "w_tax" Tfloat;
      S.col "w_ytd" Tfloat;
    ]

let district =
  S.make ~name:"district" ~key:[ "d_w_id"; "d_id" ]
    [
      S.col "d_w_id" Tint;
      S.col "d_id" Tint;
      S.col "d_name" Tstr;
      S.col "d_tax" Tfloat;
      S.col "d_ytd" Tfloat;
      S.col "d_next_o_id" Tint;
    ]

let customer =
  S.make ~name:"customer" ~key:[ "c_w_id"; "c_d_id"; "c_id" ]
    [
      S.col "c_w_id" Tint;
      S.col "c_d_id" Tint;
      S.col "c_id" Tint;
      S.col "c_last" Tstr;
      S.col "c_credit" Tstr;
      S.col "c_discount" Tfloat;
      S.col "c_balance" Tfloat;
      S.col "c_ytd_payment" Tfloat;
      S.col "c_payment_cnt" Tint;
      S.col "c_delivery_cnt" Tint;
    ]

(* h_c_* name the customer; h_w_id/h_d_id name where the payment was made —
   the two differ for the spec's 15% remote-customer payments *)
let history =
  S.make ~name:"history" ~key:[ "h_id" ]
    [
      S.col "h_id" Tint;
      S.col "h_c_w_id" Tint;
      S.col "h_c_d_id" Tint;
      S.col "h_c_id" Tint;
      S.col "h_w_id" Tint;
      S.col "h_d_id" Tint;
      S.col "h_amount" Tfloat;
    ]

let orders =
  S.make ~name:"orders" ~key:[ "o_w_id"; "o_d_id"; "o_id" ]
    [
      S.col "o_w_id" Tint;
      S.col "o_d_id" Tint;
      S.col "o_id" Tint;
      S.col "o_c_id" Tint;
      S.col "o_carrier_id" Tint (* -1 = not delivered *);
      S.col "o_ol_cnt" Tint;
    ]

let new_order =
  S.make ~name:"new_order" ~key:[ "no_w_id"; "no_d_id"; "no_o_id" ]
    [ S.col "no_w_id" Tint; S.col "no_d_id" Tint; S.col "no_o_id" Tint ]

let order_line =
  S.make ~name:"order_line" ~key:[ "ol_w_id"; "ol_d_id"; "ol_o_id"; "ol_number" ]
    [
      S.col "ol_w_id" Tint;
      S.col "ol_d_id" Tint;
      S.col "ol_o_id" Tint;
      S.col "ol_number" Tint;
      S.col "ol_i_id" Tint;
      S.col "ol_quantity" Tint;
      S.col "ol_amount" Tfloat;
      S.col "ol_delivery_d" Tint (* -1 = undelivered *);
      S.col "ol_supply_w" Tint (* supplying warehouse; <> ol_w_id for ~1% of lines *);
    ]

let item =
  S.make ~name:"item" ~key:[ "i_id" ]
    [ S.col "i_id" Tint; S.col "i_name" Tstr; S.col "i_price" Tfloat ]

let stock =
  S.make ~name:"stock" ~key:[ "s_w_id"; "s_i_id" ]
    [
      S.col "s_w_id" Tint;
      S.col "s_i_id" Tint;
      S.col "s_quantity" Tint;
      S.col "s_ytd" Tint;
      S.col "s_order_cnt" Tint;
    ]

let table_names =
  [
    "warehouse"; "district"; "customer"; "history"; "orders"; "new_order"; "order_line";
    "item"; "stock";
  ]

let create_all db =
  let _w = Database.create_table db warehouse in
  let _d = Database.create_table db district in
  let c = Database.create_table db customer in
  Table.add_index c ~name:"by_last" [ "c_w_id"; "c_d_id"; "c_last" ];
  let _h = Database.create_table db history in
  let o = Database.create_table db orders in
  Table.add_index o ~name:"by_customer" [ "o_w_id"; "o_d_id"; "o_c_id" ];
  let n = Database.create_table db new_order in
  Table.add_index n ~name:"by_district" [ "no_w_id"; "no_d_id" ];
  Table.add_ordered_index n ~name:"queue_order" [ "no_w_id"; "no_d_id"; "no_o_id" ];
  let ol = Database.create_table db order_line in
  Table.add_index ol ~name:"by_order" [ "ol_w_id"; "ol_d_id"; "ol_o_id" ];
  (* composite ordered index: stock-level's "last 20 orders of the district"
     range probe runs off this instead of a full scan *)
  Table.add_ordered_index ol ~name:"ol_order_range" [ "ol_w_id"; "ol_d_id"; "ol_o_id" ];
  let _i = Database.create_table db item in
  let _s = Database.create_table db stock in
  ()
