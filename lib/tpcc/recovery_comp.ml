module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Predicate = Acc_relation.Predicate
module Recovery = Acc_wal.Recovery
open Acc_relation.Value

let field area name =
  match List.assoc_opt name area with
  | Some v -> v
  | None -> invalid_arg ("Recovery_comp: work area lacks " ^ name)

let int_field area name = as_int (field area name)

let new_order db (p : Recovery.pending) =
  let area = p.Recovery.p_area in
  let w = int_field area "w" and d = int_field area "d" and o = int_field area "o_id" in
  let orders = Database.table db "orders" in
  let order_line = Database.table db "order_line" in
  let new_order_t = Database.table db "new_order" in
  let stock = Database.table db "stock" in
  let line_keys =
    Table.scan_keys
      ~where:
        (Predicate.conj
           [
             Predicate.Eq ("ol_w_id", Int w);
             Predicate.Eq ("ol_d_id", Int d);
             Predicate.Eq ("ol_o_id", Int o);
           ])
      order_line
  in
  List.iter
    (fun key ->
      let row = Table.get_exn order_line key in
      let item = as_int row.(4) and qty = as_int row.(5) in
      ignore
        (Table.update stock (Load.stock_key ~w ~i:item) (fun s ->
             s.(2) <- Int (as_int s.(2) + qty);
             s.(3) <- Int (as_int s.(3) - qty);
             s.(4) <- Int (as_int s.(4) - 1);
             s));
      ignore (Table.delete order_line key))
    line_keys;
  (* mark the burnt order number as a cancelled order *)
  (if Table.mem orders (Load.order_key ~w ~d ~o) then
     ignore
       (Table.update orders (Load.order_key ~w ~d ~o) (fun row ->
            row.(4) <- Int (-2);
            row.(5) <- Int 0;
            row))
   else Table.insert orders [| Int w; Int d; Int o; Int 1; Int (-2); Int 0 |]);
  if Table.mem new_order_t [ Int w; Int d; Int o ] then
    ignore (Table.delete new_order_t [ Int w; Int d; Int o ])

let payment db (p : Recovery.pending) =
  let area = p.Recovery.p_area in
  let w = int_field area "w" and d = int_field area "d" and c = int_field area "c" in
  let amount = number (field area "amount") in
  let completed = p.Recovery.p_completed_steps in
  if completed >= 1 then
    ignore
      (Table.update (Database.table db "warehouse") [ Int w ] (fun row ->
           row.(3) <- Float (number row.(3) -. amount);
           row));
  if completed >= 2 then
    ignore
      (Table.update (Database.table db "district") (Load.district_key ~w ~d) (fun row ->
           row.(4) <- Float (number row.(4) -. amount);
           row));
  if completed >= 3 then begin
    ignore
      (Table.update (Database.table db "customer") (Load.customer_key ~w ~d ~c) (fun row ->
           row.(6) <- Float (number row.(6) +. amount);
           row.(7) <- Float (number row.(7) -. amount);
           row.(8) <- Int (as_int row.(8) - 1);
           row));
    (* the exact history row is named in the work area *)
    let h_id = int_field area "h_id" in
    ignore (Table.delete (Database.table db "history") [ Int h_id ])
  end

let delivery db (p : Recovery.pending) =
  let area = p.Recovery.p_area in
  let w = int_field area "w" and n = int_field area "n" in
  let order_line = Database.table db "order_line" in
  for idx = 0 to n - 1 do
    let d = int_field area (Printf.sprintf "d%d" idx) in
    let o = int_field area (Printf.sprintf "o%d" idx) in
    let c = int_field area (Printf.sprintf "c%d" idx) in
    let amount = number (field area (Printf.sprintf "amt%d" idx)) in
    ignore
      (Table.update (Database.table db "customer") (Load.customer_key ~w ~d ~c) (fun row ->
           row.(6) <- Float (number row.(6) -. amount);
           row.(9) <- Int (as_int row.(9) - 1);
           row));
    let o_row = Table.get_exn (Database.table db "orders") (Load.order_key ~w ~d ~o) in
    for ln = 1 to as_int o_row.(5) do
      ignore
        (Table.update order_line [ Int w; Int d; Int o; Int ln ] (fun row ->
             row.(7) <- Int (-1);
             row))
    done;
    ignore
      (Table.update (Database.table db "orders") (Load.order_key ~w ~d ~o) (fun row ->
           row.(4) <- Int (-1);
           row));
    Table.insert (Database.table db "new_order") [| Int w; Int d; Int o |]
  done

let complete db (p : Recovery.pending) =
  match p.Recovery.p_txn_type with
  | "new_order" -> new_order db p
  | "payment" -> payment db p
  | "delivery" -> delivery db p
  | other -> invalid_arg ("Recovery_comp: unknown transaction type " ^ other)

let complete_all db (report : Recovery.report) =
  List.iter (complete db) report.Recovery.pending

let recover_and_compensate ~baseline records =
  let report = Recovery.recover ~baseline records in
  complete_all report.Recovery.db report;
  report.Recovery.db
