(* Crash-time completion of pending compensations (§3.4), as registered
   [Replay] handlers.

   Earlier revisions patched the recovered database directly with raw table
   writes; the handlers now run through a live [Executor.ctx] (created by
   [Replay.replay_one] via [Executor.adopt_pending]), so replayed
   compensation takes compensation locks, appends WAL records, and is itself
   crash-recoverable — a second crash mid-replay re-derives the same pending
   obligation from the new engine's log.

   Each handler is driven solely by the durable work area its forward steps
   checkpointed at every step boundary, never by in-memory workspace: that
   is the whole point of the area. *)

module Executor = Acc_txn.Executor
module Database = Acc_relation.Database
module Predicate = Acc_relation.Predicate
module Recovery = Acc_wal.Recovery
module Replay = Acc_core.Replay
module Program = Acc_core.Program
open Acc_relation.Value

let field area name =
  match List.assoc_opt name area with
  | Some v -> v
  | None -> invalid_arg ("Recovery_comp: work area lacks " ^ name)

let int_field area name = as_int (field area name)

let new_order_handler ctx ~completed ~area =
  let w = int_field area "w" and d = int_field area "d" and o = int_field area "o_id" in
  let c = int_field area "c" in
  if completed = 1 then
    (* only the reads+counter step completed: the consumed order number is
       exposed and cannot be taken back — record it as a cancelled order so
       the id sequence stays dense (same rule as the inline compensation) *)
    Executor.insert ctx "orders" [| Int w; Int d; Int o; Int c; Int (-2); Int 0 |]
  else begin
    (* steps 1..completed are durable: the order header, queue row and the
       lines of the completed line steps all exist; the line set is found by
       key scan because the replay has no in-memory workspace *)
    let line_keys =
      Executor.scan_keys ctx "order_line"
        ~where:
          (Predicate.conj
             [
               Predicate.Eq ("ol_w_id", Int w);
               Predicate.Eq ("ol_d_id", Int d);
               Predicate.Eq ("ol_o_id", Int o);
             ])
        ()
    in
    List.iter
      (fun key ->
        let row = Executor.read_exn ctx "order_line" key in
        let item = as_int row.(4) and qty = as_int row.(5) in
        let supply = as_int row.(8) in
        (* a line's stock lives at its supplying warehouse; in a partitioned
           home branch a remote warehouse is absent from this database and
           the remote-stock branch compensates it on its own partition *)
        if Executor.read_committed ctx "warehouse" [ Int supply ] <> None then
          Txns.undo_stock ctx ~supply ~item ~qty;
        Executor.delete ctx "order_line" key)
      line_keys;
    ignore
      (Executor.update ctx "orders" (Load.order_key ~w ~d ~o) (fun row ->
           row.(4) <- Int (-2);
           row.(5) <- Int 0;
           row));
    Executor.delete ctx "new_order" [ Int w; Int d; Int o ]
  end

let payment_handler ctx ~completed ~area =
  let w = int_field area "w" and d = int_field area "d" in
  let amount = number (field area "amount") in
  if completed >= 1 then
    ignore
      (Executor.update ctx "warehouse" [ Int w ] (fun row ->
           row.(3) <- Float (number row.(3) -. amount);
           row));
  if completed >= 2 then
    ignore
      (Executor.update ctx "district" (Load.district_key ~w ~d) (fun row ->
           row.(4) <- Float (number row.(4) -. amount);
           row));
  if completed >= 3 then begin
    let c = int_field area "c" in
    (* the customer may live at another warehouse (the 15% remote case) *)
    let c_w = int_field area "c_w" and c_d = int_field area "c_d" in
    ignore
      (Executor.update ctx "customer" (Load.customer_key ~w:c_w ~d:c_d ~c) (fun row ->
           row.(6) <- Float (number row.(6) +. amount);
           row.(7) <- Float (number row.(7) -. amount);
           row.(8) <- Int (as_int row.(8) - 1);
           row));
    (* the exact history row is named in the work area *)
    let h_id = int_field area "h_id" in
    Executor.delete ctx "history" [ Int h_id ]
  end

let delivery_handler ctx ~completed ~area =
  ignore completed;
  let w = int_field area "w" and n = int_field area "n" in
  for idx = 0 to n - 1 do
    let d = int_field area (Printf.sprintf "d%d" idx) in
    let o = int_field area (Printf.sprintf "o%d" idx) in
    let c = int_field area (Printf.sprintf "c%d" idx) in
    let amount = number (field area (Printf.sprintf "amt%d" idx)) in
    ignore
      (Executor.update ctx "customer" (Load.customer_key ~w ~d ~c) (fun row ->
           row.(6) <- Float (number row.(6) -. amount);
           row.(9) <- Int (as_int row.(9) - 1);
           row));
    let o_row = Executor.read_exn ctx "orders" (Load.order_key ~w ~d ~o) in
    for ln = 1 to as_int o_row.(5) do
      ignore
        (Executor.update ctx "order_line" [ Int w; Int d; Int o; Int ln ] (fun row ->
             row.(7) <- Int (-1);
             row))
    done;
    ignore
      (Executor.update ctx "orders" (Load.order_key ~w ~d ~o) (fun row ->
           row.(4) <- Int (-1);
           row));
    Executor.insert ctx "new_order" [| Int w; Int d; Int o |]
  done

(* --- partitioned-branch handlers (Dist_txns) --- *)

(* the home branch of a cross-partition payment: only the two ytd bumps *)
let payment_home_handler ctx ~completed ~area =
  let w = int_field area "w" and d = int_field area "d" in
  let amount = number (field area "amount") in
  if completed >= 1 then
    ignore
      (Executor.update ctx "warehouse" [ Int w ] (fun row ->
           row.(3) <- Float (number row.(3) -. amount);
           row));
  if completed >= 2 then
    ignore
      (Executor.update ctx "district" (Load.district_key ~w ~d) (fun row ->
           row.(4) <- Float (number row.(4) -. amount);
           row))

(* the remote-customer branch: customer rollback + history delete *)
let payment_rcust_handler ctx ~completed ~area =
  if completed >= 1 then begin
    let c_w = int_field area "c_w" and c_d = int_field area "c_d" in
    let c = int_field area "c" in
    let amount = number (field area "amount") in
    ignore
      (Executor.update ctx "customer" (Load.customer_key ~w:c_w ~d:c_d ~c) (fun row ->
           row.(6) <- Float (number row.(6) +. amount);
           row.(7) <- Float (number row.(7) -. amount);
           row.(8) <- Int (as_int row.(8) - 1);
           row));
    Executor.delete ctx "history" [ Int (int_field area "h_id") ]
  end

(* the remote-stock branch: restock the first [completed] draws *)
let new_order_rstock_handler ctx ~completed ~area =
  let n = int_field area "n" in
  for k = 0 to min completed n - 1 do
    let supply = int_field area (Printf.sprintf "w%d" k) in
    let item = int_field area (Printf.sprintf "i%d" k) in
    let qty = int_field area (Printf.sprintf "q%d" k) in
    Txns.undo_stock ctx ~supply ~item ~qty
  done

(* Linking this module is enough to make TPC-C recoverable: the handlers are
   registered at module-initialization time, keyed by transaction-type name
   and carrying the design-time id of each compensating step.  The home
   branch of a partitioned new_order shares the single-node handler — its
   work area has the same shape, and the handler's warehouse-presence check
   already skips stock rows the partition does not own. *)
let () =
  Replay.register ~txn_type:"new_order" ~step_type:Txns.no_comp.Program.sd_id new_order_handler;
  Replay.register ~txn_type:"payment" ~step_type:Txns.pay_comp.Program.sd_id payment_handler;
  Replay.register ~txn_type:"delivery" ~step_type:Txns.dl_comp.Program.sd_id delivery_handler;
  Replay.register ~txn_type:"new_order_home" ~step_type:Dist_txns.nh_comp.Program.sd_id
    new_order_handler;
  Replay.register ~txn_type:"payment_home" ~step_type:Dist_txns.ph_comp.Program.sd_id
    payment_home_handler;
  Replay.register ~txn_type:"payment_rcust" ~step_type:Dist_txns.pr_comp.Program.sd_id
    payment_rcust_handler;
  Replay.register ~txn_type:"new_order_rstock" ~step_type:Dist_txns.nr_comp.Program.sd_id
    new_order_rstock_handler

let replay_engine db = Executor.create ~sem:Txns.semantics db

let complete db (p : Recovery.pending) = Replay.replay_one (replay_engine db) p

let complete_all db (report : Recovery.report) =
  ignore (Replay.replay_pending (replay_engine db) report)

let recover_and_compensate ~baseline records =
  let report = Recovery.recover ~baseline records in
  complete_all report.Recovery.db report;
  report.Recovery.db
