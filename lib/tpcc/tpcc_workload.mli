(** TPC-C as a first-class {!Acc_workload.S} plugin.

    The drivers' historical defaults are this module's defaults, so
    [make ()] reproduces the exact pre-interface TPC-C behavior (same
    generator streams for the same seed). *)

type mix = Standard | New_order_payment

val make :
  ?params:Params.t ->
  ?skewed_district:bool ->
  ?mix:mix ->
  ?min_items:int ->
  ?max_items:int ->
  ?abort_rate:float ->
  unit ->
  Acc_workload.t

val of_spec : Acc_workload.spec -> Acc_workload.t
(** [spec.scale] is the warehouse count; [spec.skew > 0] turns on the
    skewed-district hotspot; mixes: ["standard"], ["new-order-payment"]. *)

val register : unit -> unit
(** Idempotently add ["tpcc"] to {!Acc_workload.Registry}. *)
