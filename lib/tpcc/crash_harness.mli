(** Crash-restart harness: kill TPC-C at registered crash points, recover,
    and check the §3.4 recovery invariants.

    Each injected {!Acc_fault.Fault.Crash} models the process dying: the
    engine is discarded with its locks still held and its cleanup un-run,
    and restart sees only the baseline snapshot, the WAL, and the last
    durable checkpoint.  After every crash the harness checks that

    - full-log and checkpoint-based recovery agree (state and pending set);
    - replaying the WAL a second time is a no-op (recovery is idempotent);
    - compensation replay empties the pending set, the post-replay log
      re-recovers to the live state, and no locks or waiters survive;
    - the TPC-C consistency conditions hold once the remaining transactions
      have been resubmitted and run to completion.

    See RECOVERY.md for the crash-point map and the recovery model. *)

type config = {
  params : Params.t;
  seed : int;  (** input generation and population seed *)
  txns : int;  (** transactions per run *)
  abort_rate : float;
      (** forced new-order failure rate — elevated above the spec's 1% so
          short runs exercise inline compensation and its crash points *)
  step_fault_p : float;  (** retryable injected step-failure probability *)
  checkpoint_every : int;  (** quiescent checkpoint cadence, in log records *)
  hits_per_point : int;
      (** deterministic sweep: crash at this many evenly-spaced passage
          counts per point (always including the first and the last) *)
  chaos_p : float;  (** chaos mode: per-passage crash probability *)
  verbose : bool;  (** narrate each crash/recovery on stdout *)
  workload : Acc_workload.t option;
      (** [None] crashes TPC-C (the historical behavior, including the
          crash-point coverage check); [Some w] crashes any workload plugin
          — every recovery invariant still applies, but dead crash points
          are not reported (a workload without compensations legitimately
          never reaches the comp.* points) *)
}

val default_config : config

type jobs
(** A workload lowered to the harness's terms: a fixed, seed-deterministic
    array of transaction closures plus the per-incarnation reset hooks. *)

val jobs_of : config -> jobs
(** Respects [config.workload]. *)

type result = {
  r_label : string;  (** ["point:hit"], ["chaos(seed=…)"], or the baseline *)
  r_crashes : int;  (** crashes injected and survived *)
  r_errors : string list;  (** violated invariants; empty = pass *)
}

val failed : result -> bool

val gen_inputs : config -> Txns.input array
(** The seed-deterministic transaction mix every run of this config executes. *)

val run_one_crash : config -> inputs:Txns.input array -> point:string -> hit:int -> result
(** One deterministic crash: arm [point] at its [hit]-th passage, run,
    recover, resume, check.  [r_errors] includes ["armed crash never
    fired"] when the workload never reaches that passage.  TPC-C only
    (explicit inputs); any-workload callers use {!run_one_crash_jobs}. *)

val run_one_crash_jobs : config -> jobs:jobs -> point:string -> hit:int -> result
(** {!run_one_crash} over a {!jobs} value from {!jobs_of}. *)

val sweep : ?config:config -> unit -> result list
(** Deterministic sweep.  Dry-runs the workload under
    {!Acc_fault.Fault.observe} to learn each registered point's passage
    count (reporting points the workload never reaches as coverage
    failures), then for each point crashes at [hits_per_point] spread hit
    counts, recovering and resuming after each.  The first result is the
    fault-free baseline run. *)

val chaos : ?config:config -> seed:int -> unit -> result
(** Probabilistic soak: every passage through any point crashes with
    probability [chaos_p] from a PRNG seeded with [seed].  Faults stay armed
    through recovery, so crashes also land inside the compensation replay —
    exercising its re-recovery path. *)

val pp_result : Format.formatter -> result -> unit
