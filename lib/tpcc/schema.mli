(** The nine TPC-C tables (Rev 3.1 §1.2), with the columns the five
    transactions touch.  Keys follow the specification; the secondary indexes
    mirror what the paper's Ingres setup needed "to allow the system to use
    page locks as much as possible". *)

(** key w_id *)
val warehouse : Acc_relation.Schema.t

(** key (d_w_id, d_id) *)
val district : Acc_relation.Schema.t

(** key (c_w_id, c_d_id, c_id) *)
val customer : Acc_relation.Schema.t

(** key h_id (surrogate) *)
val history : Acc_relation.Schema.t

(** key (o_w_id, o_d_id, o_id) *)
val orders : Acc_relation.Schema.t

(** key (no_w_id, no_d_id, no_o_id) *)
val new_order : Acc_relation.Schema.t

(** key (ol_w_id, ol_d_id, ol_o_id, ol_number) *)
val order_line : Acc_relation.Schema.t

(** key i_id *)
val item : Acc_relation.Schema.t

(** key (s_w_id, s_i_id) *)
val stock : Acc_relation.Schema.t


val create_all : Acc_relation.Database.t -> unit
(** Create the nine tables and their secondary indexes. *)

val table_names : string list
