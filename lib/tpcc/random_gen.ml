module Prng = Acc_util.Prng

type t = { g : Prng.t; params : Params.t; c_customer : int; c_item : int }

let create ~seed params =
  let g = Prng.create ~seed in
  (* the constant C of NURand, chosen once per run as the spec requires *)
  { g; params; c_customer = Prng.int g 1024; c_item = Prng.int g 8192 }

let split t = { t with g = Prng.split t.g }
let prng t = t.g

let nurand_c t a = if a = 1023 then t.c_customer else t.c_item

let nurand t ~a ~x ~y =
  let c = nurand_c t a in
  let r1 = Prng.int_in t.g 0 a and r2 = Prng.int_in t.g x y in
  (((r1 lor r2) + c) mod (y - x + 1)) + x

let warehouse t = Prng.int_in t.g 1 t.params.Params.warehouses

let district t ~skewed =
  let n = t.params.Params.districts_per_warehouse in
  if skewed && Prng.bool t.g then 1 else Prng.int_in t.g 1 n

let customer t =
  let n = t.params.Params.customers_per_district in
  (* scale the spec's NURand(1023, 1, 3000) to the configured cardinality *)
  if n >= 3000 then nurand t ~a:1023 ~x:1 ~y:n else (nurand t ~a:1023 ~x:1 ~y:3000 mod n) + 1

let item t =
  let n = t.params.Params.items in
  if n >= 100_000 then nurand t ~a:8191 ~x:1 ~y:n
  else (nurand t ~a:8191 ~x:1 ~y:100_000 mod n) + 1

let order_line_count t ~min_items ~max_items = Prng.int_in t.g min_items max_items

let quantity t = Prng.int_in t.g 1 10

let distinct_items t ~count =
  let n = t.params.Params.items in
  let count = min count n in
  let rec pick acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let candidate = item t in
      if List.mem candidate acc then
        (* fall back to uniform probing to terminate fast at small scales *)
        let rec probe c = if List.mem c acc then probe ((c mod n) + 1) else c in
        pick (probe candidate :: acc) (remaining - 1)
      else pick (candidate :: acc) (remaining - 1)
    end
  in
  pick [] count

let payment_amount t = 1.0 +. Prng.float t.g 4999.0

let syllables =
  [| "BAR"; "OUGHT"; "ABLE"; "PRI"; "PRES"; "ESE"; "ANTI"; "CALLY"; "ATION"; "EING" |]

let last_name _t n =
  let n = n mod 1000 in
  syllables.(n / 100) ^ syllables.(n / 10 mod 10) ^ syllables.(n mod 10)
