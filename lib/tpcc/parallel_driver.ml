(* The multicore TPC-C driver: real domains against the in-memory engine,
   wall-clock time, no simulator.  Counterpart of the simulated {!Driver};
   reuses the same transaction bodies ({!Txns}) and consistency checker. *)

module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Backoff = Acc_txn.Backoff
module Runtime = Acc_core.Runtime
module Engine = Acc_parallel.Engine
module Watchdog = Acc_parallel.Watchdog
module Domain_pool = Acc_parallel.Domain_pool
module Sharded_lock_table = Acc_parallel.Sharded_lock_table
module Mode = Acc_lock.Mode
module Prng = Acc_util.Prng
module Metrics = Acc_util.Metrics
module Tally = Acc_util.Stats.Tally
module Program = Acc_core.Program
module Trace = Acc_obs.Trace
module Conflict_accounting = Acc_obs.Conflict_accounting
module Lock_obs = Acc_obs.Lock_obs

type system = Baseline | Acc

type mix =
  | Standard  (** the full five-type TPC-C mix *)
  | New_order_payment  (** 50/50 new-order/payment: the high-conflict core *)

type config = {
  seed : int;
  system : system;
  domains : int;
  shards : int;
  duration : float;  (** wall-clock seconds (when [txns_per_domain] is [None]) *)
  txns_per_domain : int option;  (** fixed-count mode, for deterministic tests *)
  think_mean : float;  (** mean exponential pause between transactions, seconds *)
  compute_between : float;
      (** pause at each intra-transaction pace point, seconds: models client
          compute while locks are held — the regime the paper targets *)
  skewed_district : bool;  (** district hotspot (drives up conflict rates) *)
  detector_cadence : float;
  params : Params.t;
  mix : mix;
  acc_options : Runtime.options;
  warmup : float;
      (** duration-mode only: outcomes and latencies are recorded only after
          this many seconds.  Gating at the source is what keeps the shared
          counters tear-free (see the {!Acc_util.Metrics} contract) — there is
          no mid-run reset. *)
  accounting : bool;  (** classify every lock decision ({!Conflict_accounting}) *)
  lock_deadline : float option;
      (** per-request lock-wait budget, seconds ([None] disables timeouts) *)
  max_inflight : int option;
      (** admission cap on concurrently running multi-step transactions *)
  shed_watermark : float option;
      (** abort rate (victims + timeouts per second) above which admissions
          shed *)
  fast_path : bool;
      (** lock-free uncontended fast path in the sharded lock table (on by
          default; off forces every request through the shard mutexes) *)
  group_commit : bool;
      (** group commit: buffered WAL appends, concurrent syncs merged into
          leader-flushed batches (implies a buffered WAL) *)
  wal_buffer : int;
      (** per-domain WAL buffer capacity in records; [0] keeps the direct
          (append = flush) WAL unless [group_commit] forces the default
          capacity *)
  workload : Acc_workload.t option;
      (** [None] runs TPC-C from this config's scale knobs (the historical
          behavior); [Some w] runs any {!Acc_workload.S} plugin, ignoring
          the TPC-C-specific fields ([params], [mix], [skewed_district]) *)
}

let default_config =
  {
    seed = 7;
    system = Baseline;
    domains = 2;
    shards = Acc_parallel.Sharded_lock_table.default_shards;
    duration = 2.0;
    txns_per_domain = None;
    think_mean = 0.0;
    compute_between = 0.0;
    skewed_district = false;
    detector_cadence = Acc_parallel.Deadlock_detector.default_cadence;
    params = Params.default;
    mix = Standard;
    acc_options = Runtime.default_options;
    warmup = 0.0;
    accounting = false;
    lock_deadline = None;
    max_inflight = None;
    shed_watermark = None;
    fast_path = true;
    group_commit = false;
    wal_buffer = 0;
    workload = None;
  }

let workload_of cfg =
  match cfg.workload with
  | Some w -> w
  | None ->
      Tpcc_workload.make ~params:cfg.params ~skewed_district:cfg.skewed_district
        ~mix:
          (match cfg.mix with
          | Standard -> Tpcc_workload.Standard
          | New_order_payment -> Tpcc_workload.New_order_payment)
        ()

(* the WAL policy a config asks for: [--wal-buffer N] buffers, and
   [--group-commit] additionally merges concurrent syncs (forcing the
   default buffer capacity when none was given) *)
let wal_policy_of cfg =
  let open Acc_wal.Log in
  if cfg.group_commit then
    Buffered
      { cap = (if cfg.wal_buffer > 0 then cfg.wal_buffer else default_cap); group = true }
  else if cfg.wal_buffer > 0 then Buffered { cap = cfg.wal_buffer; group = false }
  else Direct

type report = {
  committed : int;
  forced_aborts : int;
  compensations : int;
  detector_victims : int;
  detector_sweeps : int;
  response : Tally.t;
  elapsed : float;  (** whole run, warmup included *)
  measured : float;  (** the recording window: [elapsed - warmup], clamped *)
  throughput : float;  (** committed transactions per second of [measured] *)
  per_domain_committed : int list;
  violations : string list;
  leaked_locks : int;
  leaked_waiters : int;
  step_hist : (int * Metrics.Histogram.t) list;
      (** per-step-type latency histograms (step type, histogram), non-empty
          buckets only; empty for the flat baseline, which has no steps *)
  conflicts : Conflict_accounting.row list;
      (** lock-decision classification per step type; empty unless
          [cfg.accounting] *)
  lock_timeouts : int;  (** lock waits expired by the watchdog *)
  shed : int;  (** admissions refused by the overload gate *)
  degraded_runs : int;
      (** transactions executed on the fully isolated legacy path because
          degraded mode was on at admission time *)
  degraded_trips : int;  (** watchdog degraded-mode trips *)
  lock_wait_p99 : float;
      (** 99th-percentile completed blocking lock wait, seconds ([nan] when
          no wait ever blocked) *)
  lock_wait_count : int;
  peak_queue_depth : int;  (** largest waiter count the watchdog sampled *)
  peak_oldest_wait : float;  (** largest oldest-waiter age it sampled, seconds *)
  mutex_acquisitions : int;
      (** explicit shard-mutex acquisitions in the lock manager over the whole
          run — the contention-side quantity batched footprint acquisition
          ([acc_options.batch_footprints]) and the lock-free fast path
          amortize *)
  fast_path_attempts : int;
      (** lock requests that probed the lock-free fast path *)
  fast_path_hits : int;
      (** fast-path probes that granted without touching a shard mutex *)
  wal_flushes : int;
      (** WAL durability round trips: one per append with a direct WAL, one
          per flushed batch under group commit *)
  workload_name : string;
  step_label : int -> string;
      (** render a step-type id in this run's workload ("txn.step") *)
  step_txn_type : int -> string option;
      (** the owning transaction type of a step-type id, if declared *)
  extras : (string * float) list;
      (** workload-specific counters (e.g. the long-reader workload's shadow
          predicate-lock statistics) *)
}

(* step-type naming for the historical TPC-C workload, shared with the CLI
   and bench output; per-run reports carry their own workload's renderers *)
let workload_steps = lazy (Program.all_steps Txns.workload)

let step_def id =
  List.find_opt (fun s -> s.Program.sd_id = id) (Lazy.force workload_steps)

let step_label id =
  match step_def id with
  | Some s when s.Program.sd_txn_type <> "" ->
      s.Program.sd_txn_type ^ "." ^ s.Program.sd_name
  | Some s -> s.Program.sd_name
  | None ->
      if id = Program.legacy_step_id then "legacy" else Printf.sprintf "step %d" id

let step_txn_type id =
  match step_def id with
  | Some s when s.Program.sd_txn_type <> "" -> Some s.Program.sd_txn_type
  | Some _ | None -> None

(* Aggregate per-step-type conflict rows up to transaction types.  Steps of
   undeclared type (the flat baseline's legacy step 0, overflow) land under
   "(flat)". *)
let conflicts_by_txn_type_with ~step_txn_type conflicts =
  let open Conflict_accounting in
  let name_of row =
    match step_txn_type row.r_step_type with Some t -> t | None -> "(flat)"
  in
  let names = List.sort_uniq String.compare (List.map name_of conflicts) in
  List.map
    (fun name ->
      let agg =
        List.fold_left
          (fun a row ->
            if name_of row <> name then a
            else
              {
                a with
                r_granted_clean = a.r_granted_clean + row.r_granted_clean;
                r_passed_2pl = a.r_passed_2pl + row.r_passed_2pl;
                r_blocked_conv = a.r_blocked_conv + row.r_blocked_conv;
                r_blocked_assert = a.r_blocked_assert + row.r_blocked_assert;
              })
          {
            r_step_type = -1;
            r_granted_clean = 0;
            r_passed_2pl = 0;
            r_blocked_conv = 0;
            r_blocked_assert = 0;
          }
          conflicts
      in
      (name, agg))
    names

let conflicts_by_txn_type conflicts = conflicts_by_txn_type_with ~step_txn_type conflicts

let run cfg =
  if cfg.domains < 1 then invalid_arg "Parallel_driver.run: domains must be >= 1";
  if cfg.workload = None then Params.validate cfg.params;
  let module W = (val workload_of cfg : Acc_workload.S) in
  W.reset_global ();
  let step_info = Acc_workload.Step_info.of_workload W.workload in
  let db = W.populate ~seed:cfg.seed in
  let sem =
    match cfg.system with Baseline -> Mode.no_semantics | Acc -> W.semantics
  in
  let engine =
    Engine.create ~shards:cfg.shards ~detector_cadence:cfg.detector_cadence
      ?lock_deadline:cfg.lock_deadline ?max_inflight:cfg.max_inflight
      ?shed_watermark:cfg.shed_watermark ~fast_path:cfg.fast_path
      ~wal_policy:(wal_policy_of cfg) ~sem db
  in
  let eng = Engine.executor engine in
  let max_step_id = step_info.Acc_workload.Step_info.max_step_id in
  let hists = Array.init (max_step_id + 1) (fun _ -> Metrics.Histogram.create ()) in
  let accounting =
    if cfg.accounting then Some (Conflict_accounting.create ()) else None
  in
  if cfg.accounting || Trace.enabled () then
    Sharded_lock_table.set_observer (Engine.locks engine)
      (Some (Lock_obs.observer ?accounting ()));
  (match accounting with
  | None -> ()
  | Some acct ->
      (* the four 2PL-comparison classes, as registry poll-counters over the
         accounting table's atomics *)
      List.iter
        (fun (name, help, get) ->
          Acc_obs.Registry.register ~help name
            (Acc_obs.Registry.Poll_counter
               (fun () -> get (Conflict_accounting.totals acct))))
        [
          ( "acc_conflict_granted_clean_total",
            "grants strict 2PL would also have made",
            fun (r : Conflict_accounting.row) -> r.Conflict_accounting.r_granted_clean );
          ( "acc_conflict_passed_2pl_total",
            "grants a strict-2PL system would have blocked",
            fun r -> r.Conflict_accounting.r_passed_2pl );
          ( "acc_conflict_blocked_conventional_total",
            "blocks from conventional mode incompatibility",
            fun r -> r.Conflict_accounting.r_blocked_conv );
          ( "acc_conflict_blocked_assertional_total",
            "blocks from interference-table hits (true conflicts)",
            fun r -> r.Conflict_accounting.r_blocked_assert );
        ]);
  let committed = Metrics.Counter.create () in
  let forced_aborts = Metrics.Counter.create () in
  let compensations = Metrics.Counter.create () in
  let degraded_runs = Metrics.Counter.create () in
  let response = Metrics.Latency.create () in
  let reg ?help name v = Acc_obs.Registry.register ?help name v in
  reg "acc_driver_committed_total" ~help:"transactions committed by the driver"
    (Acc_obs.Registry.Counter committed);
  reg "acc_driver_forced_aborts_total" ~help:"forced 1% abort-rule aborts"
    (Acc_obs.Registry.Counter forced_aborts);
  reg "acc_driver_compensations_total" ~help:"compensated (logically undone) runs"
    (Acc_obs.Registry.Counter compensations);
  reg "acc_driver_degraded_runs_total" ~help:"transactions run on the degraded fallback path"
    (Acc_obs.Registry.Counter degraded_runs);
  (* split the generator on this domain, before spawning: the PRNG is not
     thread-safe, and splitting up front makes each worker's stream a pure
     function of (seed, worker index) regardless of domain interleaving *)
  let base_env =
    W.make_env
      ~pace:(fun () -> if cfg.compute_between > 0.0 then Unix.sleepf cfg.compute_between)
      ~seed:((cfg.seed * 31) + 1) ()
  in
  let envs = Array.init cfg.domains (fun _ -> W.split_env base_env) in
  let started = Unix.gettimeofday () in
  let deadline = started +. cfg.duration in
  (* warmup applies to duration mode only; fixed-count runs record everything *)
  let record_after =
    started +. (if cfg.txns_per_domain = None then Float.max 0.0 cfg.warmup else 0.0)
  in
  let recording =
    if record_after <= started then fun () -> true
    else fun () -> Unix.gettimeofday () >= record_after
  in
  Executor.set_clock eng Unix.gettimeofday;
  Executor.set_on_step_end eng (fun ~step_type ~dur ->
      if step_type >= 0 && step_type < Array.length hists && recording () then
        Metrics.Histogram.record hists.(step_type) dur);
  let worker i =
    let env = envs.(i) in
    let jitter = Backoff.Jitter.create ~seed:((cfg.seed * 7919) + i) () in
    let think_g = Prng.create ~seed:((cfg.seed * 1009) + i) in
    let slot = Metrics.Latency.slot response in
    let mine = ref 0 in
    let budget = ref (match cfg.txns_per_domain with Some n -> n | None -> max_int) in
    let time_ok () =
      cfg.txns_per_domain <> None || Unix.gettimeofday () < deadline
    in
    let continue () = !budget > 0 && time_ok () in
    (* duration mode only: once the deadline passes, in-flight transactions
       stop issuing new steps and compensate out instead of running to
       completion — drain time is bounded by one step, not one transaction *)
    let stop () = cfg.txns_per_domain = None && Unix.gettimeofday () >= deadline in
    let run_flat_outcome () =
      Engine.run_txn ~jitter (fun () ->
          let input = W.gen_input env in
          match W.run_flat ~stop eng env input with
          | `Committed -> `Done
          | `Aborted -> `Forced_abort)
    in
    let run_acc_outcome () =
      Engine.run_txn ~jitter (fun () ->
          let input = W.gen_input env in
          match W.run_acc ~options:cfg.acc_options ~stop eng env input with
          | Runtime.Committed -> `Done
          | Runtime.Compensated _ ->
              if W.forced_abort input then `Forced_abort_compensated else `Compensated)
    in
    while continue () do
      decr budget;
      if cfg.think_mean > 0.0 then
        Unix.sleepf (Prng.exponential think_g ~mean:cfg.think_mean);
      let t0 = Unix.gettimeofday () in
      let outcome =
        match cfg.system with
        | Baseline ->
            (* the flat baseline is itself the fully isolated legacy path;
               the multi-step admission gate does not apply *)
            Some (run_flat_outcome ())
        | Acc ->
            (* admission bracket: jittered retry while shed; while degraded,
               fall back to the legacy path instead of queueing behind a
               wedged protocol *)
            let rec admit attempt =
              match Engine.try_admit engine with
              | Engine.Admitted -> `Acc
              | Engine.Shed "degraded" -> `Degraded
              | Engine.Shed _ ->
                  if time_ok () then begin
                    Unix.sleepf (Backoff.Jitter.next jitter ~attempt);
                    admit (attempt + 1)
                  end
                  else `Drop
            in
            (match admit 1 with
            | `Drop -> None
            | `Degraded ->
                Metrics.Counter.incr degraded_runs;
                Some (run_flat_outcome ())
            | `Acc ->
                Fun.protect
                  ~finally:(fun () -> Engine.finish engine)
                  (fun () -> Some (run_acc_outcome ())))
      in
      let t1 = Unix.gettimeofday () in
      match outcome with
      | None -> ()
      | Some outcome ->
          if recording () then begin
            match outcome with
            | `Done ->
                Metrics.Counter.incr committed;
                incr mine;
                Metrics.Latency.record slot (t1 -. t0)
            | `Forced_abort -> Metrics.Counter.incr forced_aborts
            | `Forced_abort_compensated ->
                Metrics.Counter.incr forced_aborts;
                Metrics.Counter.incr compensations
            | `Compensated -> Metrics.Counter.incr compensations
          end
    done;
    !mine
  in
  let per_domain_committed = Domain_pool.run ~domains:cfg.domains worker in
  let elapsed = Unix.gettimeofday () -. started in
  (* workers have joined; the detector must still be alive up to here, since
     it is what unwedges the final stragglers' deadlocks *)
  Engine.shutdown engine;
  let locks = Engine.locks engine in
  let measured = Float.max 0.0 (elapsed -. (record_after -. started)) in
  {
    committed = Metrics.Counter.get committed;
    forced_aborts = Metrics.Counter.get forced_aborts;
    compensations = Metrics.Counter.get compensations;
    detector_victims = Acc_parallel.Deadlock_detector.victims (Engine.detector engine);
    detector_sweeps = Acc_parallel.Deadlock_detector.sweeps (Engine.detector engine);
    response = Metrics.Latency.snapshot response;
    elapsed;
    measured;
    throughput =
      (if measured > 0.0 then float_of_int (Metrics.Counter.get committed) /. measured
       else 0.0);
    per_domain_committed;
    violations = W.consistency (Executor.db eng);
    leaked_locks = Sharded_lock_table.lock_count locks;
    leaked_waiters = Sharded_lock_table.waiter_count locks;
    step_hist =
      List.filter
        (fun (_, h) -> Metrics.Histogram.count h > 0)
        (List.mapi (fun i h -> (i, h)) (Array.to_list hists));
    conflicts =
      (match accounting with Some a -> Conflict_accounting.rows a | None -> []);
    lock_timeouts = Engine.timeout_count engine;
    shed = Engine.shed_count engine;
    degraded_runs = Metrics.Counter.get degraded_runs;
    degraded_trips = Watchdog.degraded_trips (Engine.watchdog engine);
    lock_wait_p99 = Metrics.Histogram.percentile (Engine.lock_waits engine) 0.99;
    lock_wait_count = Metrics.Histogram.count (Engine.lock_waits engine);
    peak_queue_depth = Watchdog.peak_queue_depth (Engine.watchdog engine);
    peak_oldest_wait = Watchdog.peak_oldest_wait (Engine.watchdog engine);
    mutex_acquisitions = Sharded_lock_table.mutex_acquisitions locks;
    fast_path_attempts = Sharded_lock_table.fast_attempts locks;
    fast_path_hits = Sharded_lock_table.fast_hits locks;
    wal_flushes = Acc_wal.Log.flush_count (Executor.log eng);
    workload_name = W.name;
    step_label = step_info.Acc_workload.Step_info.label;
    step_txn_type = step_info.Acc_workload.Step_info.txn_type;
    extras = W.extras ();
  }

let pp_step_hist ~label ppf hist =
  Format.fprintf ppf "@[<v>step latency (s)     %-24s %8s %10s %10s %10s@,"
    "" "count" "p50" "p95" "p99";
  List.iter
    (fun (st, h) ->
      Format.fprintf ppf "                     %-24s %8d %10.6f %10.6f %10.6f@,"
        (label st)
        (Metrics.Histogram.count h)
        (Metrics.Histogram.percentile h 0.50)
        (Metrics.Histogram.percentile h 0.95)
        (Metrics.Histogram.percentile h 0.99))
    hist;
  Format.pp_close_box ppf ()

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>committed            %d@,throughput           %.1f txn/s@,\
     mean response        %.4f s@,p95 response         %.4f s@,\
     forced aborts        %d@,compensations        %d@,\
     detector victims     %d (over %d sweeps)@,per-domain committed %s@,\
     leaked locks         %d@,leaked waiters       %d@,consistency          %s@]"
    r.committed r.throughput (Tally.mean r.response)
    (Tally.percentile r.response 0.95)
    r.forced_aborts r.compensations r.detector_victims r.detector_sweeps
    (String.concat ", " (List.map string_of_int r.per_domain_committed))
    r.leaked_locks r.leaked_waiters
    (match r.violations with
    | [] -> "OK"
    | v -> Printf.sprintf "%d VIOLATION(S)" (List.length v));
  Format.fprintf ppf "@.shard-mutex acquisitions %d" r.mutex_acquisitions;
  if r.fast_path_attempts > 0 then
    Format.fprintf ppf "@.fast-path hits       %d / %d (%.1f%%)" r.fast_path_hits
      r.fast_path_attempts
      (100.0 *. float_of_int r.fast_path_hits /. float_of_int r.fast_path_attempts);
  Format.fprintf ppf "@.wal flushes          %d" r.wal_flushes;
  if
    r.lock_timeouts > 0 || r.shed > 0 || r.degraded_trips > 0 || r.degraded_runs > 0
    || r.lock_wait_count > 0
  then
    Format.fprintf ppf
      "@.@[<v>lock timeouts        %d@,shed admissions      %d@,\
       degraded             %d trip(s), %d legacy run(s)@,\
       p99 lock wait        %.6f s (%d waits)@,\
       peak queue depth     %d@,peak oldest wait     %.4f s@]"
      r.lock_timeouts r.shed r.degraded_trips r.degraded_runs
      (if r.lock_wait_count = 0 then 0. else r.lock_wait_p99)
      r.lock_wait_count r.peak_queue_depth r.peak_oldest_wait;
  if r.extras <> [] then
    List.iter (fun (k, v) -> Format.fprintf ppf "@.%-20s %.0f" k v) r.extras;
  if r.step_hist <> [] then
    Format.fprintf ppf "@.%a" (pp_step_hist ~label:r.step_label) r.step_hist;
  if r.conflicts <> [] then
    Format.fprintf ppf "@.%a"
      (Conflict_accounting.pp_table ~label:r.step_label ~header:"lock decisions")
      r.conflicts
