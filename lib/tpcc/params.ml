type t = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  initial_stock : int;
  initial_orders_per_district : int;
}

let default =
  {
    warehouses = 1;
    districts_per_warehouse = 10;
    customers_per_district = 100;
    items = 2000;
    initial_stock = 50;
    initial_orders_per_district = 5;
  }

let full =
  {
    warehouses = 1;
    districts_per_warehouse = 10;
    customers_per_district = 3000;
    items = 100_000;
    initial_stock = 100;
    initial_orders_per_district = 3000;
  }

let validate t =
  let check name v = if v < 1 then invalid_arg (Printf.sprintf "Params: %s must be >= 1" name) in
  check "warehouses" t.warehouses;
  check "districts_per_warehouse" t.districts_per_warehouse;
  check "customers_per_district" t.customers_per_district;
  check "items" t.items;
  check "initial_stock" t.initial_stock;
  if t.initial_orders_per_district < 0 then
    invalid_arg "Params: initial_orders_per_district must be >= 0"
