module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Program = Acc_core.Program
module Assertion = Acc_core.Assertion
module Footprint = Acc_core.Footprint
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime
module Value = Acc_relation.Value
module Table = Acc_relation.Table
module Database = Acc_relation.Database
module Predicate = Acc_relation.Predicate
module Prng = Acc_util.Prng
module Fault = Acc_fault.Fault
module Mode = Acc_lock.Mode
module Rid = Acc_lock.Resource_id
open Value

type env = {
  gen : Random_gen.t;
  params : Params.t;
  skewed_district : bool;
  min_items : int;
  max_items : int;
  new_order_abort_rate : float;
  remote_customer_rate : float;
  remote_item_rate : float;
  pace : unit -> unit;
}

let default_env ?(seed = 1) params =
  {
    gen = Random_gen.create ~seed params;
    params;
    skewed_district = false;
    min_items = 5;
    max_items = 15;
    new_order_abort_rate = 0.01;
    remote_customer_rate = 0.15;
    remote_item_rate = 0.01;
    pace = (fun () -> ());
  }

type new_order_input = {
  no_w : int;
  no_d : int;
  no_c : int;
  no_items : (int * int * int) list;
  no_fail_last : bool;
}

type customer_selector = By_id of int | By_last_name of string

type payment_input = {
  p_w : int;
  p_d : int;
  p_c_w : int;
  p_c_d : int;
  p_customer : customer_selector;
  p_amount : float;
}
type order_status_input = { os_w : int; os_d : int; os_customer : customer_selector }
type delivery_input = { dl_w : int; dl_carrier : int }
type stock_level_input = { sl_w : int; sl_d : int; sl_threshold : int }

type input =
  | New_order of new_order_input
  | Payment of payment_input
  | Order_status of order_status_input
  | Delivery of delivery_input
  | Stock_level of stock_level_input

let txn_name = function
  | New_order _ -> "new_order"
  | Payment _ -> "payment"
  | Order_status _ -> "order_status"
  | Delivery _ -> "delivery"
  | Stock_level _ -> "stock_level"

(* a warehouse other than [home], uniform over the rest *)
let gen_remote_warehouse env ~home =
  let g = Random_gen.prng env.gen in
  let w = 1 + Prng.int g (env.params.Params.warehouses - 1) in
  if w >= home then w + 1 else w

let gen_new_order env =
  let g = Random_gen.prng env.gen in
  let w = Random_gen.warehouse env.gen in
  let count = Random_gen.order_line_count env.gen ~min_items:env.min_items ~max_items:env.max_items in
  let items =
    List.map
      (fun i ->
        (* spec §2.4.1.5: ~1% of lines draw their stock from a remote
           warehouse (only meaningful with more than one warehouse) *)
        let supply =
          if env.params.Params.warehouses > 1 && Prng.chance g env.remote_item_rate
          then gen_remote_warehouse env ~home:w
          else w
        in
        (i, Random_gen.quantity env.gen, supply))
      (Random_gen.distinct_items env.gen ~count)
  in
  {
    no_w = w;
    no_d = Random_gen.district env.gen ~skewed:env.skewed_district;
    no_c = Random_gen.customer env.gen;
    no_items = items;
    no_fail_last = Prng.chance g env.new_order_abort_rate;
  }

(* the spec's 60/40 split between by-last-name and by-id selection *)
let gen_customer_selector env =
  let g = Random_gen.prng env.gen in
  let c = Random_gen.customer env.gen in
  if Prng.chance g 0.6 then
    By_last_name (Random_gen.last_name env.gen (if c <= 1000 then c - 1 else Prng.int g 1000))
  else By_id c

let gen_payment env =
  let g = Random_gen.prng env.gen in
  let w = Random_gen.warehouse env.gen in
  let d = Random_gen.district env.gen ~skewed:env.skewed_district in
  (* spec §2.5.1.2: 15% of payments are for a customer of a remote
     warehouse (only meaningful with more than one warehouse) *)
  let c_w, c_d =
    if env.params.Params.warehouses > 1 && Prng.chance g env.remote_customer_rate
    then
      (gen_remote_warehouse env ~home:w, Random_gen.district env.gen ~skewed:false)
    else (w, d)
  in
  {
    p_w = w;
    p_d = d;
    p_c_w = c_w;
    p_c_d = c_d;
    p_customer = gen_customer_selector env;
    p_amount = Random_gen.payment_amount env.gen;
  }

let gen_input env =
  let g = Random_gen.prng env.gen in
  let roll = Prng.int g 100 in
  if roll < 45 then New_order (gen_new_order env)
  else if roll < 88 then Payment (gen_payment env)
  else if roll < 92 then
    Order_status
      {
        os_w = Random_gen.warehouse env.gen;
        os_d = Random_gen.district env.gen ~skewed:env.skewed_district;
        os_customer = gen_customer_selector env;
      }
  else if roll < 96 then
    Delivery { dl_w = Random_gen.warehouse env.gen; dl_carrier = 1 + Prng.int g 10 }
  else
    Stock_level
      {
        sl_w = Random_gen.warehouse env.gen;
        sl_d = Random_gen.district env.gen ~skewed:env.skewed_district;
        sl_threshold = 10 + Prng.int g 11;
      }

(* ====================================================================== *)
(* Static decomposition: the eleven forward step types                    *)
(* ====================================================================== *)

let fp = Footprint.make
let cols cs = Footprint.Columns cs
let fresh = Footprint.Fresh

(* --- new_order: 4 forward steps + compensation --- *)

let no_reads =
  Program.step ~id:1 ~name:"reads+counter" ~txn_type:"new_order" ~index:1
    ~reads:
      [
        fp "warehouse" (cols [ "w_tax" ]);
        fp "district" (cols [ "d_tax"; "d_next_o_id" ]);
        fp "customer" (cols [ "c_discount"; "c_last"; "c_credit" ]);
      ]
    ~writes:[ fp "district" (cols [ "d_next_o_id" ]) ]
    ()

let no_insert =
  Program.step ~id:2 ~name:"insert-order" ~txn_type:"new_order" ~index:2
    ~reads:[]
    ~writes:
      [ fp ~fresh "orders" Footprint.All_columns; fp ~fresh "new_order" Footprint.All_columns ]
    ()

let no_line =
  Program.step ~id:3 ~name:"order-line" ~txn_type:"new_order" ~index:3 ~repeats:true
    ~reads:[ fp "item" (cols [ "i_price" ]); fp "stock" (cols [ "s_quantity" ]) ]
    ~writes:
      [
        fp "stock" (cols [ "s_quantity"; "s_ytd"; "s_order_cnt" ]);
        fp ~fresh "order_line" Footprint.All_columns;
      ]
    ()

let no_final =
  Program.step ~id:4 ~name:"finalize" ~txn_type:"new_order" ~index:4
    ~reads:[ fp ~fresh "orders" Footprint.All_columns ]
    ~writes:[]
    ()

let no_comp =
  Program.step ~id:5 ~name:"cancel-order" ~txn_type:"new_order" ~index:0
    ~reads:
      [ fp ~fresh "order_line" Footprint.All_columns; fp "warehouse" (cols [ "w_id" ]) ]
    ~writes:
      [
        fp "stock" (cols [ "s_quantity"; "s_ytd"; "s_order_cnt" ]);
        fp ~fresh "orders" (cols [ "o_carrier_id"; "o_ol_cnt" ]);
        fp ~fresh "order_line" Footprint.All_columns;
        fp ~fresh "new_order" Footprint.All_columns;
      ]
    ()

(* pre(S_2): "the order id I drew is mine alone and below the counter" —
   references the district counter, but foreign increments are monotone and
   cannot falsify it: declared compatible below *)
let a_no_seq =
  Assertion.make ~id:1 ~name:"no_counter_seq" ~txn_type:"new_order" ~pre_of:2 ~until:2
    ~refs:
      [ fp "district" (cols [ "d_next_o_id" ]); fp ~fresh "orders" Footprint.All_columns ]

(* pre(S_3)...: the I1-style loop invariant — my order header, queue row and
   order lines agree with my progress *)
let a_no_lines =
  Assertion.make ~id:2 ~name:"no_lines_inv" ~txn_type:"new_order" ~pre_of:3
    ~until:Assertion.until_commit
    ~refs:
      [
        fp ~fresh "orders" (cols [ "o_ol_cnt"; "o_carrier_id" ]);
        fp ~fresh "order_line" Footprint.All_columns;
        fp ~fresh "new_order" Footprint.All_columns;
      ]

let new_order_type =
  Program.txn_type ~name:"new_order"
    ~steps:[ no_reads; no_insert; no_line; no_final ]
    ~comp:no_comp
    ~assertions:[ a_no_seq; a_no_lines ]
    ()

(* --- payment: 3 forward steps + compensation --- *)

let pay_wh =
  Program.step ~id:6 ~name:"warehouse-ytd" ~txn_type:"payment" ~index:1
    ~reads:[ fp "warehouse" (cols [ "w_name" ]) ]
    ~writes:[ fp "warehouse" (cols [ "w_ytd" ]) ]
    ()

let pay_dist =
  Program.step ~id:7 ~name:"district-ytd" ~txn_type:"payment" ~index:2
    ~reads:[ fp "district" (cols [ "d_name" ]) ]
    ~writes:[ fp "district" (cols [ "d_ytd" ]) ]
    ()

let pay_cust =
  Program.step ~id:8 ~name:"customer+history" ~txn_type:"payment" ~index:3
    ~reads:[ fp "customer" (cols [ "c_credit" ]) ]
    ~writes:
      [
        fp "customer" (cols [ "c_balance"; "c_ytd_payment"; "c_payment_cnt" ]);
        fp ~fresh "history" Footprint.All_columns;
      ]
    ()

let pay_comp =
  Program.step ~id:9 ~name:"refund" ~txn_type:"payment" ~index:0
    ~reads:[]
    ~writes:
      [
        fp "warehouse" (cols [ "w_ytd" ]);
        fp "district" (cols [ "d_ytd" ]);
        fp "customer" (cols [ "c_balance"; "c_ytd_payment"; "c_payment_cnt" ]);
        fp ~fresh "history" Footprint.All_columns;
      ]
    ()

(* the maximally-reduced interstep assertion: only the transaction's own
   (fresh) history row is referenced — the running ytd totals are protected
   by commutativity, not by locks (§3.1's weakest-assertions principle) *)
let a_pay_applied =
  Assertion.make ~id:3 ~name:"pay_applied" ~txn_type:"payment" ~pre_of:2
    ~until:Assertion.until_commit
    ~refs:[ fp ~fresh "history" Footprint.All_columns ]

let payment_type =
  Program.txn_type ~name:"payment"
    ~steps:[ pay_wh; pay_dist; pay_cust ]
    ~comp:pay_comp
    ~assertions:[ a_pay_applied ]
    ()

(* --- delivery: 2 forward steps + compensation --- *)

let dl_init =
  Program.step ~id:10 ~name:"assign-carrier" ~txn_type:"delivery" ~index:1
    ~reads:[ fp "warehouse" (cols [ "w_name" ]) ]
    ~writes:[]
    ()

let dl_district =
  Program.step ~id:11 ~name:"deliver-district" ~txn_type:"delivery" ~index:2 ~repeats:true
    ~reads:[ fp "new_order" Footprint.All_columns; fp "orders" (cols [ "o_c_id"; "o_ol_cnt" ]) ]
    ~writes:
      [
        fp "new_order" Footprint.All_columns;
        fp "orders" (cols [ "o_carrier_id" ]);
        fp "order_line" (cols [ "ol_delivery_d" ]);
        fp "customer" (cols [ "c_balance"; "c_delivery_cnt" ]);
      ]
    ()

let dl_comp =
  Program.step ~id:12 ~name:"undeliver" ~txn_type:"delivery" ~index:0
    ~reads:[]
    ~writes:
      [
        fp "new_order" Footprint.All_columns;
        fp "orders" (cols [ "o_carrier_id" ]);
        fp "order_line" (cols [ "ol_delivery_d" ]);
        fp "customer" (cols [ "c_balance"; "c_delivery_cnt" ]);
      ]
    ()

(* districts delivered so far stay delivered while the rest are processed *)
let a_dl_progress =
  Assertion.make ~id:4 ~name:"delivery_progress" ~txn_type:"delivery" ~pre_of:2
    ~until:Assertion.until_commit
    ~refs:
      [
        fp "orders" (cols [ "o_carrier_id" ]);
        fp "order_line" (cols [ "ol_delivery_d" ]);
        fp "new_order" Footprint.All_columns;
      ]

let delivery_type =
  Program.txn_type ~name:"delivery"
    ~steps:[ dl_init; dl_district ]
    ~comp:dl_comp
    ~assertions:[ a_dl_progress ]
    ()

(* --- order_status and stock_level: analyzed read-only single steps --- *)

let os_read =
  Program.step ~id:13 ~name:"read-status" ~txn_type:"order_status" ~index:1
    ~reads:
      [
        fp "customer" Footprint.All_columns;
        fp "orders" Footprint.All_columns;
        fp "order_line" Footprint.All_columns;
      ]
    ~writes:[] ()

let order_status_type =
  Program.txn_type ~name:"order_status" ~steps:[ os_read ] ~assertions:[] ()

let sl_read =
  Program.step ~id:14 ~name:"count-low-stock" ~txn_type:"stock_level" ~index:1
    ~reads:
      [
        fp "district" (cols [ "d_next_o_id" ]);
        fp "order_line" (cols [ "ol_i_id"; "ol_o_id" ]);
        fp "stock" (cols [ "s_quantity" ]);
      ]
    ~writes:[] ()

let stock_level_type = Program.txn_type ~name:"stock_level" ~steps:[ sl_read ] ~assertions:[] ()

let workload =
  Program.workload
    [ new_order_type; payment_type; delivery_type; order_status_type; stock_level_type ]

(* the hand-proved compatibilities (monotone counter): foreign counter
   increments cannot invalidate a_no_seq *)
let interference =
  Interference.build ~compatible:[ (no_reads.Program.sd_id, a_no_seq.Assertion.id) ] workload

let semantics = Interference.semantics interference

let forward_step_count =
  List.length
    (List.filter
       (fun (s : Program.step_def) -> s.Program.sd_index > 0 && s.Program.sd_id <> 0)
       (Program.all_steps workload))

(* ====================================================================== *)
(* Shared SQL-ish pieces                                                   *)
(* ====================================================================== *)

let fnum = Value.number

(* Resolve a customer selector to an id.  By-name resolution probes the
   last-name hash index without data locks (the subsequent point access to
   the chosen customer takes the real locks); the spec picks the midpoint of
   the matches ordered by c_first — here, by id. *)
let resolve_customer ctx ~w ~d selector =
  match selector with
  | By_id c -> c
  | By_last_name name -> (
      let matches =
        Executor.peek_keys ctx "customer"
          ~where:
            (Predicate.conj
               [
                 Predicate.Eq ("c_w_id", Int w);
                 Predicate.Eq ("c_d_id", Int d);
                 Predicate.Eq ("c_last", Str name);
               ])
          ()
      in
      match matches with
      | [] -> raise Txn_effect.Abort_requested (* unknown name: spec says fail *)
      | keys -> (
          let middle = List.nth keys (List.length keys / 2) in
          match middle with
          | [ _; _; Int c ] -> c
          | _ -> assert false))

(* workspace threaded through a new_order execution *)
type no_ws = {
  mutable o_id : int;
  mutable ol_number : int;
  mutable total : float;
}

let no_step1 env (i : new_order_input) ws ctx =
  let w_row = Executor.read_exn ctx "warehouse" [ Int i.no_w ] in
  ignore (fnum w_row.(2));
  env.pace ();
  let d_row =
    Executor.update ctx "district" (Load.district_key ~w:i.no_w ~d:i.no_d) (fun row ->
        row.(5) <- Int (as_int row.(5) + 1);
        row)
  in
  ws.o_id <- as_int d_row.(5) - 1;
  env.pace ();
  ignore (Executor.read_exn ctx "customer" (Load.customer_key ~w:i.no_w ~d:i.no_d ~c:i.no_c))

let no_step2 env (i : new_order_input) ws ctx =
  Executor.insert ctx "orders"
    [| Int i.no_w; Int i.no_d; Int ws.o_id; Int i.no_c; Int (-1); Int (List.length i.no_items) |];
  env.pace ();
  Executor.insert ctx "new_order" [| Int i.no_w; Int i.no_d; Int ws.o_id |]

(* the stock draw itself, shared with the remote-stock branch of the
   partitioned decomposition *)
let draw_stock ctx ~supply ~item ~qty =
  ignore
    (Executor.update ctx "stock" (Load.stock_key ~w:supply ~i:item) (fun row ->
         let q = as_int row.(2) in
         let q' = if q - qty >= 10 then q - qty else q - qty + 91 in
         row.(2) <- Int q';
         row.(3) <- Int (as_int row.(3) + qty);
         row.(4) <- Int (as_int row.(4) + 1);
         row))

let undo_stock ctx ~supply ~item ~qty =
  ignore
    (Executor.update ctx "stock" (Load.stock_key ~w:supply ~i:item) (fun s ->
         s.(2) <- Int (as_int s.(2) + qty);
         s.(3) <- Int (as_int s.(3) - qty);
         s.(4) <- Int (as_int s.(4) - 1);
         s))

let no_step_line env (i : new_order_input) ws ~ln ~last ~item ~qty ~supply ctx =
  (* idempotent under step retry: the line number comes from the step's
     position, and the workspace is assigned, not accumulated *)
  if last && i.no_fail_last then raise Txn_effect.Abort_requested;
  let item_row = Executor.read_exn ctx "item" [ Int item ] in
  let price = fnum item_row.(2) in
  env.pace ();
  draw_stock ctx ~supply ~item ~qty;
  env.pace ();
  ws.ol_number <- ln;
  Executor.insert ctx "order_line"
    [|
      Int i.no_w; Int i.no_d; Int ws.o_id; Int ln; Int item; Int qty;
      Float (float_of_int qty *. price); Int (-1); Int supply;
    |]

let no_step_final (i : new_order_input) ws ctx =
  (* re-read the header to compute the displayed total (w_tax/d_tax applied
     client-side); keeps the step non-trivial without new writes *)
  let o = Executor.read_exn ctx "orders" (Load.order_key ~w:i.no_w ~d:i.no_d ~o:ws.o_id) in
  ignore (as_int o.(5))

let no_compensation (i : new_order_input) ws ctx ~completed =
  (* semantic undo (§4): return filled stock, drop the lines and the queue
     row, and mark the order row cancelled (carrier -2, zero lines); the
     consumed order number stays burnt *)
  if completed = 1 then
    (* the counter advance is exposed and cannot be taken back; record the
       burnt number as a cancelled order so the id sequence stays dense *)
    Executor.insert ctx "orders"
      [| Int i.no_w; Int i.no_d; Int ws.o_id; Int i.no_c; Int (-2); Int 0 |];
  if completed >= 2 then begin
    (* the committed lines are exactly 1 .. completed - 2 (steps 1 and 2 are
       the reads and the order insert): point-keyed access only — a
       compensating step touches nothing beyond its own items (§3.4) *)
    let committed_lines = min (List.length i.no_items) (max 0 (completed - 2)) in
    for ln = 1 to committed_lines do
      let key = [ Int i.no_w; Int i.no_d; Int ws.o_id; Int ln ] in
      let row = Executor.read_exn ctx "order_line" key in
      let item = as_int row.(4) and qty = as_int row.(5) in
      let supply = as_int row.(8) in
      (* return the stock only if the supplying warehouse lives in this
         database — a partitioned home branch leaves remote draws to the
         remote-stock branch's own compensation *)
      if Executor.read_committed ctx "warehouse" [ Int supply ] <> None then
        undo_stock ctx ~supply ~item ~qty;
      Executor.delete ctx "order_line" key
    done;
    ignore
      (Executor.update ctx "orders" (Load.order_key ~w:i.no_w ~d:i.no_d ~o:ws.o_id) (fun row ->
           row.(4) <- Int (-2);
           row.(5) <- Int 0;
           row));
    Executor.delete ctx "new_order" [ Int i.no_w; Int i.no_d; Int ws.o_id ]
  end

(* --- payment pieces --- *)

type pay_ws = { mutable h_id : int; mutable w_customer : int }

let pay_h_seq = Atomic.make 1_000_000 (* surrogate history keys; process-wide *)

(* Cross-run determinism (the crash-equivalence property test runs the same
   inputs twice and compares final states): the history keys must restart
   from the same origin for both runs. *)
let reset_history_seq () = Atomic.set pay_h_seq 1_000_000

let pay_step1 env (i : payment_input) ctx =
  ignore env;
  ignore
    (Executor.update ctx "warehouse" [ Int i.p_w ] (fun row ->
         row.(3) <- Float (fnum row.(3) +. i.p_amount);
         row))

let pay_step2 env (i : payment_input) ctx =
  ignore env;
  ignore
    (Executor.update ctx "district" (Load.district_key ~w:i.p_w ~d:i.p_d) (fun row ->
         row.(4) <- Float (fnum row.(4) +. i.p_amount);
         row))

let next_history_id () = 1 + Atomic.fetch_and_add pay_h_seq 1

let pay_step3 env (i : payment_input) ws ctx =
  let c = resolve_customer ctx ~w:i.p_c_w ~d:i.p_c_d i.p_customer in
  ws.w_customer <- c;
  ignore
    (Executor.update ctx "customer" (Load.customer_key ~w:i.p_c_w ~d:i.p_c_d ~c) (fun row ->
         row.(6) <- Float (fnum row.(6) -. i.p_amount);
         row.(7) <- Float (fnum row.(7) +. i.p_amount);
         row.(8) <- Int (as_int row.(8) + 1);
         row));
  env.pace ();
  ws.h_id <- next_history_id ();
  Executor.insert ctx "history"
    [|
      Int ws.h_id; Int i.p_c_w; Int i.p_c_d; Int ws.w_customer; Int i.p_w; Int i.p_d;
      Float i.p_amount;
    |]

let pay_compensation (i : payment_input) ws ctx ~completed =
  let c = ws.w_customer in
  if completed >= 1 then
    ignore
      (Executor.update ctx "warehouse" [ Int i.p_w ] (fun row ->
           row.(3) <- Float (fnum row.(3) -. i.p_amount);
           row));
  if completed >= 2 then
    ignore
      (Executor.update ctx "district" (Load.district_key ~w:i.p_w ~d:i.p_d) (fun row ->
           row.(4) <- Float (fnum row.(4) -. i.p_amount);
           row));
  if completed >= 3 then begin
    ignore
      (Executor.update ctx "customer" (Load.customer_key ~w:i.p_c_w ~d:i.p_c_d ~c) (fun row ->
           row.(6) <- Float (fnum row.(6) +. i.p_amount);
           row.(7) <- Float (fnum row.(7) -. i.p_amount);
           row.(8) <- Int (as_int row.(8) - 1);
           row));
    Executor.delete ctx "history" [ Int ws.h_id ]
  end

(* --- delivery pieces --- *)

type dl_delivered = { dv_d : int; dv_o : int; dv_c : int; dv_amount : float }

type dl_ws = { mutable delivered : dl_delivered list }

(* Oldest undelivered order of the district: hunt via an index peek, then
   lock-and-verify.  New queue entries always carry higher order ids, so a
   phantom insert cannot displace the minimum; a concurrent delivery racing
   us to the same entry loses the X-lock race and re-hunts. *)
let rec dl_hunt_oldest env (i : delivery_input) ~d ctx =
  let queue =
    Executor.peek_keys ctx "new_order"
      ~where:
        (Predicate.conj
           [ Predicate.Eq ("no_w_id", Int i.dl_w); Predicate.Eq ("no_d_id", Int d) ])
      ()
  in
  match queue with
  | [] -> None
  | oldest :: _ -> (
      try
        Executor.delete ctx "new_order" oldest;
        Some oldest
      with Table.No_such_row _ -> dl_hunt_oldest env i ~d ctx)

let dl_step_district env (i : delivery_input) ws ~d ctx =
  match dl_hunt_oldest env i ~d ctx with
  | None -> ()
  | Some oldest ->
      let o_id = match oldest with [ _; _; Int o ] -> o | _ -> assert false in
      env.pace ();
      let o_row =
        Executor.update ctx "orders" (Load.order_key ~w:i.dl_w ~d ~o:o_id) (fun row ->
            row.(4) <- Int i.dl_carrier;
            row)
      in
      let c_id = as_int o_row.(3) in
      env.pace ();
      (* the order header is X-locked: its lines are stable, address them by
         primary key *)
      let amount = ref 0.0 in
      for ln = 1 to as_int o_row.(5) do
        let row =
          Executor.update ctx "order_line"
            [ Int i.dl_w; Int d; Int o_id; Int ln ]
            (fun row ->
              row.(7) <- Int 1;
              row)
        in
        amount := !amount +. fnum row.(6)
      done;
      env.pace ();
      ignore
        (Executor.update ctx "customer" (Load.customer_key ~w:i.dl_w ~d ~c:c_id) (fun row ->
             row.(6) <- Float (fnum row.(6) +. !amount);
             row.(9) <- Int (as_int row.(9) + 1);
             row));
      ws.delivered <- { dv_d = d; dv_o = o_id; dv_c = c_id; dv_amount = !amount } :: ws.delivered

let dl_compensation (i : delivery_input) ws ctx ~completed =
  ignore completed;
  List.iter
    (fun dv ->
      ignore
        (Executor.update ctx "customer" (Load.customer_key ~w:i.dl_w ~d:dv.dv_d ~c:dv.dv_c)
           (fun row ->
             row.(6) <- Float (fnum row.(6) -. dv.dv_amount);
             row.(9) <- Int (as_int row.(9) - 1);
             row));
      let o_row =
        Executor.read_exn ctx "orders" (Load.order_key ~w:i.dl_w ~d:dv.dv_d ~o:dv.dv_o)
      in
      for ln = 1 to as_int o_row.(5) do
        ignore
          (Executor.update ctx "order_line"
             [ Int i.dl_w; Int dv.dv_d; Int dv.dv_o; Int ln ]
             (fun row ->
               row.(7) <- Int (-1);
               row))
      done;
      ignore
        (Executor.update ctx "orders" (Load.order_key ~w:i.dl_w ~d:dv.dv_d ~o:dv.dv_o)
           (fun row ->
             row.(4) <- Int (-1);
             row));
      Executor.insert ctx "new_order" [| Int i.dl_w; Int dv.dv_d; Int dv.dv_o |])
    ws.delivered

(* --- order_status and stock_level pieces --- *)

let order_status_body env (i : order_status_input) ctx =
  let c = resolve_customer ctx ~w:i.os_w ~d:i.os_d i.os_customer in
  let _crow = Executor.read_exn ctx "customer" (Load.customer_key ~w:i.os_w ~d:i.os_d ~c) in
  env.pace ();
  (* most recent order of the customer *)
  let orders =
    Executor.scan ctx "orders"
      ~where:
        (Predicate.conj
           [
             Predicate.Eq ("o_w_id", Int i.os_w);
             Predicate.Eq ("o_d_id", Int i.os_d);
             Predicate.Eq ("o_c_id", Int c);
           ])
      ()
  in
  match List.rev orders with
  | [] -> ()
  | last :: _ ->
      let o_id = as_int last.(2) in
      env.pace ();
      let lines =
        Executor.scan ctx "order_line"
          ~where:
            (Predicate.conj
               [
                 Predicate.Eq ("ol_w_id", Int i.os_w);
                 Predicate.Eq ("ol_d_id", Int i.os_d);
                 Predicate.Eq ("ol_o_id", Int o_id);
               ])
          ()
      in
      (* the isolation property under test: a consistent order is complete *)
      if as_int last.(4) <> -2 && List.length lines <> as_int last.(5) then
        failwith
          (Printf.sprintf "order_status: order %d has %d lines, header says %d" o_id
             (List.length lines) (as_int last.(5)))

let stock_level_body env (i : stock_level_input) ctx =
  let d_row = Executor.read_committed ctx "district" (Load.district_key ~w:i.sl_w ~d:i.sl_d) in
  let next_o =
    match d_row with Some row -> as_int row.(5) | None -> failwith "stock_level: no district"
  in
  env.pace ();
  let recent =
    Executor.scan_committed ctx "order_line"
      ~where:
        (Predicate.conj
           [
             Predicate.Eq ("ol_w_id", Int i.sl_w);
             Predicate.Eq ("ol_d_id", Int i.sl_d);
             Predicate.Cmp (Predicate.Ge, "ol_o_id", Int (next_o - 20));
           ])
      ()
  in
  let items = List.sort_uniq Stdlib.compare (List.map (fun row -> as_int row.(4)) recent) in
  env.pace ();
  let low = ref 0 in
  List.iter
    (fun item ->
      match Executor.read_committed ctx "stock" (Load.stock_key ~w:i.sl_w ~i:item) with
      | Some s -> if as_int s.(2) < i.sl_threshold then incr low
      | None -> ())
    items;
  ignore !low

(* ====================================================================== *)
(* Flat (baseline) dispatch                                                *)
(* ====================================================================== *)

let flat_new_order env (i : new_order_input) ctx =
  let ws = { o_id = 0; ol_number = 0; total = 0.0 } in
  no_step1 env i ws ctx;
  env.pace ();
  no_step2 env i ws ctx;
  env.pace ();
  let n = List.length i.no_items in
  List.iteri
    (fun idx (item, qty, supply) ->
      no_step_line env i ws ~ln:(idx + 1) ~last:(idx = n - 1) ~item ~qty ~supply ctx;
      env.pace ())
    i.no_items;
  no_step_final i ws ctx

let flat_payment env (i : payment_input) ctx =
  let ws = { h_id = 0; w_customer = 0 } in
  pay_step1 env i ctx;
  env.pace ();
  pay_step2 env i ctx;
  env.pace ();
  pay_step3 env i ws ctx

let flat_delivery env (i : delivery_input) ctx =
  let ws = { delivered = [] } in
  ignore (Executor.read_exn ctx "warehouse" [ Int i.dl_w ]);
  for d = 1 to env.params.Params.districts_per_warehouse do
    env.pace ();
    dl_step_district env i ws ~d ctx
  done

let flat env input ctx =
  match input with
  | New_order i -> flat_new_order env i ctx
  | Payment i -> flat_payment env i ctx
  | Order_status i -> order_status_body env i ctx
  | Delivery i -> flat_delivery env i ctx
  | Stock_level i -> stock_level_body env i ctx

let is_read_committed = function
  | Stock_level _ -> true
  | New_order _ | Payment _ | Order_status _ | Delivery _ -> false

(* ====================================================================== *)
(* Stepped (ACC) instances                                                 *)
(* ====================================================================== *)

(* Declared per-step footprints for batched pre-acquisition
   (Runtime.options.batch_footprints): the (mode, resource) pairs each
   dynamic step is known to lock, evaluated at step start so workspace
   values computed by earlier steps (the drawn order id) are available.
   Keys the step discovers mid-flight (the delivery hunt's queue entry, a
   by-name customer, the surrogate history key) are left out — the step
   acquires them dynamically, which is always sound. *)

let tab t = Rid.Table t
let tup t k = Rid.Tuple (t, k)

let new_order_footprints (i : new_order_input) ws =
  let items = Array.of_list i.no_items in
  let n_items = Array.length items in
  fun j ->
    if j = 1 then
      [
        (Mode.IS, tab "warehouse"); (Mode.S, tup "warehouse" [ Int i.no_w ]);
        (Mode.IX, tab "district");
        (Mode.X, tup "district" (Load.district_key ~w:i.no_w ~d:i.no_d));
        (Mode.IS, tab "customer");
        (Mode.S, tup "customer" (Load.customer_key ~w:i.no_w ~d:i.no_d ~c:i.no_c));
      ]
    else if j = 2 then
      [
        (Mode.IX, tab "orders");
        (Mode.X, tup "orders" (Load.order_key ~w:i.no_w ~d:i.no_d ~o:ws.o_id));
        (Mode.IX, tab "new_order");
        (Mode.X, tup "new_order" [ Int i.no_w; Int i.no_d; Int ws.o_id ]);
      ]
    else if j >= 3 && j <= n_items + 2 then
      let item, _, supply = items.(j - 3) in
      [
        (Mode.IS, tab "item"); (Mode.S, tup "item" [ Int item ]);
        (Mode.IX, tab "stock"); (Mode.X, tup "stock" (Load.stock_key ~w:supply ~i:item));
        (Mode.IX, tab "order_line");
        (Mode.X, tup "order_line" [ Int i.no_w; Int i.no_d; Int ws.o_id; Int (j - 2) ]);
      ]
    else if j = n_items + 3 then
      [
        (Mode.IS, tab "orders");
        (Mode.S, tup "orders" (Load.order_key ~w:i.no_w ~d:i.no_d ~o:ws.o_id));
      ]
    else []

let payment_footprints (i : payment_input) j =
  if j = 1 then [ (Mode.IX, tab "warehouse"); (Mode.X, tup "warehouse" [ Int i.p_w ]) ]
  else if j = 2 then
    [
      (Mode.IX, tab "district");
      (Mode.X, tup "district" (Load.district_key ~w:i.p_w ~d:i.p_d));
    ]
  else if j = 3 then
    (* the history tuple key is a surrogate drawn inside the step; a by-name
       customer is unknown until resolved — table intents still batch *)
    (Mode.IX, tab "customer") :: (Mode.IX, tab "history")
    ::
    (match i.p_customer with
    | By_id c ->
        [
          (Mode.IS, tab "customer");
          (Mode.X, tup "customer" (Load.customer_key ~w:i.p_c_w ~d:i.p_c_d ~c));
        ]
    | By_last_name _ -> [ (Mode.IS, tab "customer") ])
  else []

let delivery_footprints (i : delivery_input) j =
  if j = 1 then [ (Mode.IS, tab "warehouse"); (Mode.S, tup "warehouse" [ Int i.dl_w ]) ]
  else
    (* per-district step: every tuple key is discovered by the hunt, so only
       the table-intent layer of the hierarchy is declarable *)
    [
      (Mode.IS, tab "new_order"); (Mode.IX, tab "new_order");
      (Mode.IX, tab "orders"); (Mode.IX, tab "order_line");
      (Mode.IS, tab "customer"); (Mode.IX, tab "customer");
    ]

let new_order_instance env (i : new_order_input) =
  let ws = { o_id = 0; ol_number = 0; total = 0.0 } in
  let n_items = List.length i.no_items in
  let line_steps =
    List.mapi
      (fun idx (item, qty, supply) ->
        ( no_line,
          fun ctx ->
            no_step_line env i ws ~ln:(idx + 1) ~last:(idx = n_items - 1) ~item ~qty ~supply
              ctx ))
      i.no_items
  in
  let steps =
    ((no_reads, fun ctx -> no_step1 env i ws ctx)
    :: (no_insert, fun ctx -> no_step2 env i ws ctx)
    :: line_steps)
    @ [ (no_final, fun ctx -> no_step_final i ws ctx) ]
  in
  let n = List.length steps in
  let assertions =
    [
      { Program.ai_assertion = a_no_seq; ai_from = 2; ai_until = 2; ai_check = None };
      { Program.ai_assertion = a_no_lines; ai_from = 3; ai_until = n; ai_check = None };
    ]
  in
  Program.instance ~def:new_order_type ~steps ~assertions
    ~footprints:(new_order_footprints i ws)
    ~compensate:(fun ctx ~completed -> no_compensation i ws ctx ~completed)
    ~comp_area:(fun () ->
      [ ("w", Int i.no_w); ("d", Int i.no_d); ("o_id", Int ws.o_id); ("c", Int i.no_c) ])
    ()

let payment_instance env (i : payment_input) =
  let ws = { h_id = 0; w_customer = 0 } in
  let steps =
    [
      (pay_wh, fun ctx -> pay_step1 env i ctx);
      (pay_dist, fun ctx -> pay_step2 env i ctx);
      (pay_cust, fun ctx -> pay_step3 env i ws ctx);
    ]
  in
  let assertions =
    [ { Program.ai_assertion = a_pay_applied; ai_from = 2; ai_until = 3; ai_check = None } ]
  in
  Program.instance ~def:payment_type ~steps ~assertions
    ~footprints:(payment_footprints i)
    ~compensate:(fun ctx ~completed -> pay_compensation i ws ctx ~completed)
    ~comp_area:(fun () ->
      [
        ("w", Int i.p_w);
        ("d", Int i.p_d);
        ("c_w", Int i.p_c_w);
        ("c_d", Int i.p_c_d);
        ("c", Int ws.w_customer);
        ("amount", Float i.p_amount);
        ("h_id", Int ws.h_id);
      ])
    ()

let delivery_instance env (i : delivery_input) =
  let ws = { delivered = [] } in
  let district_steps =
    List.init env.params.Params.districts_per_warehouse (fun d0 ->
        (dl_district, fun ctx -> dl_step_district env i ws ~d:(d0 + 1) ctx))
  in
  let steps =
    (dl_init, fun ctx -> ignore (Executor.read_exn ctx "warehouse" [ Int i.dl_w ]))
    :: district_steps
  in
  let n = List.length steps in
  let assertions =
    [ { Program.ai_assertion = a_dl_progress; ai_from = 2; ai_until = n; ai_check = None } ]
  in
  Program.instance ~def:delivery_type ~steps ~assertions
    ~footprints:(delivery_footprints i)
    ~compensate:(fun ctx ~completed -> dl_compensation i ws ctx ~completed)
    ~comp_area:(fun () ->
      (* flatten the delivered list: crash recovery must be able to undo each
         (district, order, customer, amount) quadruple *)
      ("w", Int i.dl_w)
      :: ("n", Int (List.length ws.delivered))
      :: List.concat
           (List.mapi
              (fun idx dv ->
                [
                  (Printf.sprintf "d%d" idx, Int dv.dv_d);
                  (Printf.sprintf "o%d" idx, Int dv.dv_o);
                  (Printf.sprintf "c%d" idx, Int dv.dv_c);
                  (Printf.sprintf "amt%d" idx, Float dv.dv_amount);
                ])
              (List.rev ws.delivered)))
    ()

let instance env input =
  match input with
  | New_order i -> Some (new_order_instance env i)
  | Payment i -> Some (payment_instance env i)
  | Delivery i -> Some (delivery_instance env i)
  | Order_status _ | Stock_level _ -> None

let run_acc ?options ?stop eng env input =
  let stopped () = match stop with Some f -> f () | None -> false in
  match input with
  | New_order _ | Payment _ | Delivery _ -> begin
      match instance env input with
      | Some inst -> Runtime.run ?options ?stop eng inst
      | None -> assert false
    end
  | Order_status i ->
      Runtime.run_legacy ?options ?stop eng ~txn_type:"order_status" (fun ctx ->
          order_status_body env i ctx)
  | Stock_level i ->
      (* READ COMMITTED: flat, no assertional locks, short read locks *)
      let rec attempt n =
        let ctx = Executor.begin_txn eng ~txn_type:"stock_level" ~multi_step:false in
        Executor.set_step ctx ~step_type:sl_read.Program.sd_id ~step_index:1;
        try
          Fault.step_trip ();
          stock_level_body env i ctx;
          Executor.commit ctx;
          Runtime.Committed
        with Txn_effect.Deadlock_victim | Txn_effect.Lock_timeout | Fault.Step_fault ->
          Executor.abort_physical ctx;
          if stopped () then Runtime.Compensated { completed_steps = 0 }
          else begin
            Txn_effect.yield ~attempt:n ();
            attempt (n + 1)
          end
      in
      attempt 1

let run_flat ?stop eng env input =
  let stopped () = match stop with Some f -> f () | None -> false in
  let rec attempt n =
    let ctx = Executor.begin_txn eng ~txn_type:(txn_name input) ~multi_step:false in
    try
      Fault.step_trip ();
      flat env input ctx;
      Executor.commit ctx;
      `Committed
    with
    | Txn_effect.Deadlock_victim | Txn_effect.Lock_timeout | Fault.Step_fault ->
        Executor.abort_physical ctx;
        if stopped () then `Aborted
        else begin
          Txn_effect.yield ~attempt:n ();
          attempt (n + 1)
        end
    | Txn_effect.Abort_requested ->
        Executor.abort_physical ctx;
        `Aborted
    | e when not (Fault.is_crash e) ->
        (* a simulated crash runs no cleanup: the abort record must not reach
           the log, recovery handles the loser *)
        Executor.abort_physical ctx;
        raise e
  in
  attempt 1
