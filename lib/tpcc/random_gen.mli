(** TPC-C random input generation (Rev 3.1 §2.1.6, §4.3), plus the paper's
    skewed variants.

    [NURand(A, x, y)] produces the non-uniform distribution the benchmark
    uses for customer and item selection.  The paper additionally skews the
    {e district} choice to manufacture hotspots ("when the district
    distribution is skewed, creating hotspots in the district table") — that
    is {!district} with [skewed:true]. *)

type t

val create : seed:int -> Params.t -> t
val split : t -> t
(** Independent stream (one per simulated terminal). *)

val prng : t -> Acc_util.Prng.t

val nurand : t -> a:int -> x:int -> y:int -> int

val warehouse : t -> int
val district : t -> skewed:bool -> int
(** Uniform over districts, or — skewed — district 1 with 50% probability
    and uniform otherwise. *)

val customer : t -> int
(** NURand(1023-scaled) over the district's customers. *)

val item : t -> int
(** NURand(8191-scaled) over the item range. *)

val order_line_count : t -> min_items:int -> max_items:int -> int
val quantity : t -> int
(** Uniform 1..10. *)

val distinct_items : t -> count:int -> int list
(** [count] distinct item ids (NURand-biased first picks, uniform fill). *)

val payment_amount : t -> float
(** Uniform 1.00 .. 5000.00. *)

val last_name : t -> int -> string
(** The spec's syllable-concatenation last-name generator. *)
