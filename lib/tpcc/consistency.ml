module Database = Acc_relation.Database
module Table = Acc_relation.Table
open Acc_relation.Value

let conditions =
  [
    (1, "w_ytd = sum(d_ytd) for the warehouse's districts");
    (2, "d_next_o_id - 1 >= max(o_id) per district, with equality when orders exist");
    (3, "new_order queue ids are distinct, within (delivered, next) range");
    (4, "sum(o_ol_cnt) = count(order_line) per district");
    (5, "o_carrier_id = -1 iff the order has a new_order queue row");
    (6, "count(order_line of order) = o_ol_cnt for every order");
    (7, "ol_delivery_d set iff the owning order is delivered");
    (8, "w_ytd = sum(h_amount) for the warehouse");
    (9, "d_ytd = sum(h_amount) for the district");
    (10, "c_balance + c_ytd_payment = sum(delivered ol_amount) for the customer");
    (11, "per district: orders - cancelled - delivered = queue length");
    (12, "s_ytd = sum(ol_quantity) over the item's order lines; quantities sane");
  ]

let near a b = Float.abs (a -. b) < 1e-6 *. (1.0 +. Float.abs a +. Float.abs b)

let check db =
  let problems = ref [] in
  let complain c fmt =
    Format.kasprintf (fun s -> problems := Printf.sprintf "C%d: %s" c s :: !problems) fmt
  in
  let warehouse = Database.table db "warehouse" in
  let district = Database.table db "district" in
  let customer = Database.table db "customer" in
  let history = Database.table db "history" in
  let orders = Database.table db "orders" in
  let new_order = Database.table db "new_order" in
  let order_line = Database.table db "order_line" in
  let stock = Database.table db "stock" in
  (* gather once: per-(w,d) aggregates.  History groups by h_w_id/h_d_id —
     where the payment was made — not by the customer's home (remote-customer
     payments put the money in the paying warehouse's ytd). *)
  let dist_sum_ytd = Hashtbl.create 16 (* w -> sum d_ytd *) in
  let hist_w = Hashtbl.create 16 and hist_d = Hashtbl.create 64 in
  Table.iter
    (fun _ row ->
      let w = as_int row.(4) and d = as_int row.(5) in
      let amt = number row.(6) in
      let bump tbl key = Hashtbl.replace tbl key (amt +. Option.value ~default:0. (Hashtbl.find_opt tbl key)) in
      bump hist_w w;
      bump hist_d (w, d))
    history;
  let queue_ids = Hashtbl.create 64 (* (w,d) -> o_id list *) in
  Table.iter
    (fun _ row ->
      let w = as_int row.(0) and d = as_int row.(1) and o = as_int row.(2) in
      Hashtbl.replace queue_ids (w, d)
        (o :: Option.value ~default:[] (Hashtbl.find_opt queue_ids (w, d))))
    new_order;
  (* per-order line aggregates *)
  let lines_per_order = Hashtbl.create 1024 in
  let delivered_amount_per_order = Hashtbl.create 1024 in
  let lines_per_district = Hashtbl.create 64 in
  let qty_per_item = Hashtbl.create 256 in
  Table.iter
    (fun _ row ->
      let w = as_int row.(0) and d = as_int row.(1) and o = as_int row.(2) in
      let item = as_int row.(4) and qty = as_int row.(5) in
      let amount = number row.(6) and delivered = as_int row.(7) >= 0 in
      let supply = as_int row.(8) in
      let bump tbl key v =
        Hashtbl.replace tbl key (v + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      in
      bump lines_per_order (w, d, o) 1;
      bump lines_per_district (w, d) 1;
      (* C12 groups by the supplying warehouse: a remote line draws the
         remote warehouse's stock *)
      bump qty_per_item (supply, item) qty;
      if delivered then
        Hashtbl.replace delivered_amount_per_order (w, d, o)
          (amount +. Option.value ~default:0. (Hashtbl.find_opt delivered_amount_per_order (w, d, o)));
      if qty < 1 then complain 12 "order_line (%d,%d,%d) has quantity %d" w d o qty)
    order_line;
  (* orders pass: conditions 2,3,4,5,6,7,10,11 pieces *)
  let max_o_id = Hashtbl.create 64 in
  let order_count = Hashtbl.create 64 in
  let cancelled_count = Hashtbl.create 64 in
  let delivered_count = Hashtbl.create 64 in
  let ol_cnt_sum = Hashtbl.create 64 in
  let delivered_amount_per_customer = Hashtbl.create 256 in
  Table.iter
    (fun _ row ->
      let w = as_int row.(0) and d = as_int row.(1) and o = as_int row.(2) in
      let c = as_int row.(3) and carrier = as_int row.(4) and ol_cnt = as_int row.(5) in
      let bump tbl key v =
        Hashtbl.replace tbl key (v + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      in
      Hashtbl.replace max_o_id (w, d) (max o (Option.value ~default:0 (Hashtbl.find_opt max_o_id (w, d))));
      bump order_count (w, d) 1;
      bump ol_cnt_sum (w, d) ol_cnt;
      if carrier = -2 then bump cancelled_count (w, d) 1;
      if carrier >= 0 then bump delivered_count (w, d) 1;
      (* C6 *)
      let actual_lines = Option.value ~default:0 (Hashtbl.find_opt lines_per_order (w, d, o)) in
      if actual_lines <> ol_cnt then
        complain 6 "order (%d,%d,%d): o_ol_cnt=%d but %d order lines" w d o ol_cnt actual_lines;
      (* C5 *)
      let queued =
        List.mem o (Option.value ~default:[] (Hashtbl.find_opt queue_ids (w, d)))
      in
      if carrier = -1 && not queued then
        complain 5 "undelivered order (%d,%d,%d) missing from new_order queue" w d o;
      if carrier <> -1 && queued then
        complain 5 "order (%d,%d,%d) with carrier %d still queued" w d o carrier;
      (* C7 *)
      let delivered_amt = Hashtbl.find_opt delivered_amount_per_order (w, d, o) in
      if carrier >= 0 && actual_lines > 0 && delivered_amt = None then
        complain 7 "delivered order (%d,%d,%d) has undelivered lines" w d o;
      if carrier < 0 && delivered_amt <> None then
        complain 7 "undelivered order (%d,%d,%d) has delivered lines" w d o;
      (* accumulate delivered amounts per customer for C10 *)
      (match delivered_amt with
      | Some amt ->
          Hashtbl.replace delivered_amount_per_customer (w, d, c)
            (amt
            +. Option.value ~default:0. (Hashtbl.find_opt delivered_amount_per_customer (w, d, c)))
      | None -> ()))
    orders;
  (* district pass *)
  Table.iter
    (fun _ row ->
      let w = as_int row.(0) and d = as_int row.(1) in
      let d_ytd = number row.(4) and next_o = as_int row.(5) in
      let bump tbl key v = Hashtbl.replace tbl key (v +. Option.value ~default:0. (Hashtbl.find_opt tbl key)) in
      bump dist_sum_ytd w d_ytd;
      (* C2 *)
      let mx = Option.value ~default:0 (Hashtbl.find_opt max_o_id (w, d)) in
      if Option.is_some (Hashtbl.find_opt order_count (w, d)) && next_o - 1 <> mx then
        complain 2 "district (%d,%d): d_next_o_id=%d but max o_id=%d" w d next_o mx;
      (* C3 *)
      let ids = List.sort Stdlib.compare (Option.value ~default:[] (Hashtbl.find_opt queue_ids (w, d))) in
      let rec dup = function a :: b :: _ when a = b -> true | _ :: r -> dup r | [] -> false in
      if dup ids then complain 3 "district (%d,%d): duplicate queue entries" w d;
      List.iter
        (fun o -> if o < 1 || o >= next_o then complain 3 "district (%d,%d): queue id %d out of range" w d o)
        ids;
      (* C4 *)
      let sum_cnt = Option.value ~default:0 (Hashtbl.find_opt ol_cnt_sum (w, d)) in
      let line_cnt = Option.value ~default:0 (Hashtbl.find_opt lines_per_district (w, d)) in
      if sum_cnt <> line_cnt then
        complain 4 "district (%d,%d): sum(o_ol_cnt)=%d, order lines=%d" w d sum_cnt line_cnt;
      (* C9 *)
      let h = Option.value ~default:0. (Hashtbl.find_opt hist_d (w, d)) in
      if not (near d_ytd h) then complain 9 "district (%d,%d): d_ytd=%.2f, history=%.2f" w d d_ytd h;
      (* C11 *)
      let n_orders = Option.value ~default:0 (Hashtbl.find_opt order_count (w, d)) in
      let n_cancel = Option.value ~default:0 (Hashtbl.find_opt cancelled_count (w, d)) in
      let n_deliv = Option.value ~default:0 (Hashtbl.find_opt delivered_count (w, d)) in
      let n_queue = List.length ids in
      if n_orders - n_cancel - n_deliv <> n_queue then
        complain 11 "district (%d,%d): %d orders - %d cancelled - %d delivered <> %d queued" w d
          n_orders n_cancel n_deliv n_queue)
    district;
  (* warehouse pass: C1, C8 *)
  Table.iter
    (fun _ row ->
      let w = as_int row.(0) in
      let w_ytd = number row.(3) in
      let dsum = Option.value ~default:0. (Hashtbl.find_opt dist_sum_ytd w) in
      if not (near w_ytd dsum) then complain 1 "warehouse %d: w_ytd=%.2f, sum(d_ytd)=%.2f" w w_ytd dsum;
      let h = Option.value ~default:0. (Hashtbl.find_opt hist_w w) in
      if not (near w_ytd h) then complain 8 "warehouse %d: w_ytd=%.2f, history=%.2f" w w_ytd h)
    warehouse;
  (* customer pass: C10 *)
  Table.iter
    (fun _ row ->
      let w = as_int row.(0) and d = as_int row.(1) and c = as_int row.(2) in
      let balance = number row.(6) and ytd_pay = number row.(7) in
      let delivered =
        Option.value ~default:0. (Hashtbl.find_opt delivered_amount_per_customer (w, d, c))
      in
      if not (near (balance +. ytd_pay) delivered) then
        complain 10 "customer (%d,%d,%d): balance %.2f + ytd %.2f <> delivered %.2f" w d c balance
          ytd_pay delivered)
    customer;
  (* stock pass: C12 *)
  Table.iter
    (fun _ row ->
      let w = as_int row.(0) and i = as_int row.(1) in
      let s_ytd = as_int row.(3) in
      let sold = Option.value ~default:0 (Hashtbl.find_opt qty_per_item (w, i)) in
      if s_ytd <> sold then complain 12 "stock (%d,%d): s_ytd=%d, sum(ol_quantity)=%d" w i s_ytd sold)
    stock;
  List.rev !problems
