(** The five TPC-C transaction types, in both forms under test.

    {b Flat} bodies run under plain strict 2PL — the "unmodified Open Ingres"
    comparator.  {b Stepped} instances are the ACC decomposition (§5.1): the
    eleven forward step types, their compensating steps and the interstep
    assertions, mirroring the paper's analysis:

    - [new_order]: reads + district-counter increment | order/queue insert |
      one step per order line | finalize.  Its counter assertion is declared
      {e compatible} with foreign counter increments (monotonicity), which is
      exactly how the analysis learns that new-order and payment "within the
      same district" may interleave — the counter and the year-to-date
      columns do not overlap.
    - [payment]: warehouse ytd | district ytd | customer + history.
    - [delivery]: header | one step per district (the long transaction).
    - [order_status]: analyzed read-only single step, executed with full
      isolation (it must not observe exposed intermediate order lines).
    - [stock_level]: single step at READ COMMITTED, as the spec permits.

    Forced failure: the spec requires 1% of new-orders to abort "during the
    order of the final item" — [fail_last] makes the last line step raise,
    which the ACC answers with the compensating step. *)

type env = {
  gen : Random_gen.t;
  params : Params.t;
  skewed_district : bool;
  min_items : int;
  max_items : int;
  new_order_abort_rate : float;  (** spec: 0.01 *)
  remote_customer_rate : float;
      (** fraction of payments made for a customer of another warehouse
          (spec §2.5.1.2: 0.15); inert with a single warehouse *)
  remote_item_rate : float;
      (** per-line probability of drawing stock from another warehouse
          (spec §2.4.1.5: 0.01); inert with a single warehouse *)
  pace : unit -> unit;
      (** called between successive SQL statements — the experiment knob
          "adding compute time between successive SQL statements" *)
}

val default_env : ?seed:int -> Params.t -> env

(** {1 Generated inputs} *)

type new_order_input = {
  no_w : int;
  no_d : int;
  no_c : int;
  no_items : (int * int * int) list;
      (** (item id, quantity, supplying warehouse), distinct items; the
          supplying warehouse differs from [no_w] for ~1% of lines *)
  no_fail_last : bool;
}

type customer_selector =
  | By_id of int
  | By_last_name of string
      (** the spec's 60% case: resolve via the last-name index, choosing the
          midpoint of the matches (Rev 3.1 §2.5.2.2) *)

type payment_input = {
  p_w : int;  (** warehouse taking the payment *)
  p_d : int;
  p_c_w : int;  (** the customer's warehouse; <> [p_w] for 15% of payments *)
  p_c_d : int;
  p_customer : customer_selector;
  p_amount : float;
}

type order_status_input = { os_w : int; os_d : int; os_customer : customer_selector }

type delivery_input = { dl_w : int; dl_carrier : int }

type stock_level_input = { sl_w : int; sl_d : int; sl_threshold : int }

type input =
  | New_order of new_order_input
  | Payment of payment_input
  | Order_status of order_status_input
  | Delivery of delivery_input
  | Stock_level of stock_level_input

val txn_name : input -> string

val gen_input : env -> input
(** Draw a transaction from the standard mix
    (45 / 43 / 4 / 4 / 4 % for new-order / payment / order-status /
    delivery / stock-level). *)

val gen_new_order : env -> new_order_input
val gen_payment : env -> payment_input

(** {1 The static ACC workload} *)

val workload : Acc_core.Program.workload
val interference : Acc_core.Interference.t
val semantics : Acc_lock.Mode.semantics
val forward_step_count : int
(** = 11, the paper's "eleven distinct forward step types". *)

val no_comp : Acc_core.Program.step_def
(** new_order's compensating step (cancel-order); {!Recovery_comp} keys its
    replay handler on its design-time id. *)

val no_reads : Acc_core.Program.step_def
(** new_order's first forward step (reads + order counter); named so
    {!Dist_txns} can extend the counter's interference compatibility to the
    partitioned home branch. *)

val a_no_seq : Acc_core.Assertion.t
(** the order-counter sequencing assertion, for the same reason. *)

val pay_comp : Acc_core.Program.step_def
(** payment's compensating step (refund). *)

val dl_comp : Acc_core.Program.step_def
(** delivery's compensating step (undeliver). *)

val reset_history_seq : unit -> unit
(** Reset the process-wide surrogate history-key sequence.  Call before a
    run whose final state must be comparable with another run of the same
    inputs (the crash-equivalence property test). *)

val next_history_id : unit -> int
(** Draw the next surrogate history key (shared with the partitioned
    payment branches, which insert history rows of their own). *)

(** {1 Shared SQL-ish pieces, reused by the partitioned branch programs} *)

val resolve_customer :
  Acc_txn.Executor.ctx -> w:int -> d:int -> customer_selector -> int
(** Resolve a selector to a customer id ([By_last_name] probes the index and
    picks the spec's midpoint match; raises
    {!Acc_txn.Txn_effect.Abort_requested} on an unknown name). *)

val draw_stock : Acc_txn.Executor.ctx -> supply:int -> item:int -> qty:int -> unit
(** The new-order stock draw: quantity decrement with the spec's +91 restock
    rule, s_ytd and s_order_cnt bumped. *)

val undo_stock : Acc_txn.Executor.ctx -> supply:int -> item:int -> qty:int -> unit
(** Exact inverse of {!draw_stock}. *)

(** {1 Flat (baseline) bodies} *)

val flat : env -> input -> Acc_txn.Executor.ctx -> unit
(** May raise {!Acc_txn.Txn_effect.Abort_requested} (1% new-orders). *)

val is_read_committed : input -> bool
(** Stock-level runs at READ COMMITTED in both systems. *)

(** {1 Stepped (ACC) instances} *)

val instance : env -> input -> Acc_core.Program.instance option
(** [None] for the types that do not run through {!Acc_core.Runtime.run}:
    order-status (legacy full isolation) and stock-level (read committed). *)

val run_acc :
  ?options:Acc_core.Runtime.options ->
  ?stop:(unit -> bool) ->
  Acc_txn.Executor.t -> env -> input ->
  Acc_core.Runtime.outcome
(** Dispatch one transaction under the ACC regime: decomposed types through
    the runtime, order-status through the legacy path, stock-level as a flat
    read-committed transaction.  [stop] bounds drain: once it returns [true]
    no new step is issued and no victim/timeout retry is attempted (see
    {!Acc_core.Runtime.run}). *)

val run_flat :
  ?stop:(unit -> bool) ->
  Acc_txn.Executor.t -> env -> input -> [ `Committed | `Aborted ]
(** Dispatch one transaction under the baseline regime (strict 2PL, retry on
    deadlock or lock timeout, abort on the 1% rule).  A [stop] that turns
    [true] during a retry converts it into [`Aborted]. *)
