(** Crash-time completion of pending compensations (§3.4) for the TPC-C
    workload.

    {!Acc_wal.Recovery.recover} reports multi-step transactions that had
    completed one or more steps when the system died; their exposed effects
    must be undone {e logically}.  This module registers the semantic undo of
    each TPC-C transaction type as an {!Acc_core.Replay} handler (keyed by
    type name, at module-initialization time), driven entirely by the work
    area the forward steps made durable at every step boundary.

    The handlers run through a live executor context, so a replayed
    compensation takes compensation locks, appends WAL records, and is
    itself crash-recoverable; drivers with a long-lived engine should call
    {!Acc_core.Replay.replay_pending} on it directly — the helpers below
    spin up a throwaway engine around a bare database for tests and
    examples. *)

val complete : Acc_relation.Database.t -> Acc_wal.Recovery.pending -> unit
(** Apply the compensating step for one pending transaction, on a throwaway
    engine over [db].  Raises [Failure] on an unknown transaction type,
    [Invalid_argument] on a work area missing required fields. *)

val complete_all : Acc_relation.Database.t -> Acc_wal.Recovery.report -> unit

val recover_and_compensate :
  baseline:Acc_relation.Database.t -> Acc_wal.Record.t list -> Acc_relation.Database.t
(** One-call restart: physical recovery then all pending compensations;
    returns the consistent database. *)
