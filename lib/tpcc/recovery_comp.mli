(** Crash-time completion of pending compensations (§3.4).

    {!Acc_wal.Recovery.recover} reports multi-step transactions that had
    completed one or more steps when the system died; their exposed effects
    must be undone {e logically}.  This module re-executes the semantic undo
    of each TPC-C transaction type directly against the recovered database,
    driven by the work area the forward steps checkpointed at every step
    boundary — exactly what a restarted ACC would do before accepting new
    work. *)

val complete : Acc_relation.Database.t -> Acc_wal.Recovery.pending -> unit
(** Apply the compensating action for one pending transaction.  Raises
    [Invalid_argument] on an unknown transaction type or a work area missing
    required fields. *)

val complete_all : Acc_relation.Database.t -> Acc_wal.Recovery.report -> unit

val recover_and_compensate :
  baseline:Acc_relation.Database.t -> Acc_wal.Record.t list -> Acc_relation.Database.t
(** One-call restart: physical recovery then all pending compensations;
    returns the consistent database. *)
