module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Prng = Acc_util.Prng
open Acc_relation.Value

let district_key ~w ~d = [ Int w; Int d ]
let customer_key ~w ~d ~c = [ Int w; Int d; Int c ]
let stock_key ~w ~i = [ Int w; Int i ]
let order_key ~w ~d ~o = [ Int w; Int d; Int o ]

(* The freshly loaded database must satisfy all twelve consistency
   conditions (verified by the test suite): ytd columns equal the history
   sums, delivered pre-loaded order lines carry zero amounts (as in the
   spec's initial population), and stock s_ytd equals the quantities of the
   pre-loaded lines.

   [only] restricts the population to the warehouses it accepts — a
   partition's share of the database.  The item table (read-only, warehouse-
   independent) is always loaded in full, and every PRNG draw happens
   whether or not the row is kept, so each partition's load is an exact
   projection of the unrestricted database: merging the partition loads
   reproduces [populate] without a filter. *)
let populate ?(only = fun _ -> true) ~seed params =
  Params.validate params;
  let gen = Random_gen.create ~seed params in
  let g = Random_gen.prng gen in
  let db = Database.create () in
  Schema.create_all db;
  let table = Database.table db in
  let p = params in
  let initial_payment = 10.0 in
  for w = 1 to p.Params.warehouses do
    let keep = only w in
    let ins name row = if keep then Table.insert (table name) row in
    let customers_per_wh =
      p.Params.customers_per_district * p.Params.districts_per_warehouse
    in
    ins "warehouse"
      [|
        Int w;
        Str (Printf.sprintf "wh-%d" w);
        Float (Prng.float g 0.2);
        Float (initial_payment *. float_of_int customers_per_wh);
      |];
    for i = 1 to p.Params.items do
      if w = 1 then
        Table.insert (table "item")
          [| Int i; Str (Prng.alpha_string g ~min:6 ~max:14); Float (1.0 +. Prng.float g 99.0) |];
      ins "stock" [| Int w; Int i; Int p.Params.initial_stock; Int 0; Int 0 |]
    done;
    let h_id = ref (w * 10_000_000) in
    for d = 1 to p.Params.districts_per_warehouse do
      let preloaded = p.Params.initial_orders_per_district in
      ins "district"
        [|
          Int w;
          Int d;
          Str (Printf.sprintf "dist-%d-%d" w d);
          Float (Prng.float g 0.2);
          Float (initial_payment *. float_of_int p.Params.customers_per_district);
          Int (preloaded + 1);
        |];
      for c = 1 to p.Params.customers_per_district do
        ins "customer"
          [|
            Int w;
            Int d;
            Int c;
            Str (Random_gen.last_name gen (if c <= 1000 then c - 1 else Prng.int g 1000));
            Str (if Prng.chance g 0.1 then "BC" else "GC");
            Float (Prng.float g 0.5);
            Float (-.initial_payment);
            Float initial_payment;
            Int 1;
            Int 0;
          |];
        incr h_id;
        ins "history"
          [| Int !h_id; Int w; Int d; Int c; Int w; Int d; Float initial_payment |]
      done;
      (* pre-loaded, already-delivered orders (zero-amount lines, as in the
         spec's initial population of delivered orders) *)
      for o = 1 to preloaded do
        let c = ((o - 1) mod p.Params.customers_per_district) + 1 in
        let ol_cnt = Prng.int_in g 1 3 in
        ins "orders" [| Int w; Int d; Int o; Int c; Int 1; Int ol_cnt |];
        for ol = 1 to ol_cnt do
          let i = Prng.int_in g 1 p.Params.items in
          let qty = Prng.int_in g 1 5 in
          ins "order_line"
            [| Int w; Int d; Int o; Int ol; Int i; Int qty; Float 0.0; Int 1; Int w |];
          if keep then
            ignore
              (Table.update (table "stock") (stock_key ~w ~i) (fun s ->
                   s.(3) <- Int (as_int s.(3) + qty);
                   s.(4) <- Int (as_int s.(4) + 1);
                   s))
        done
      done
    done
  done;
  db
