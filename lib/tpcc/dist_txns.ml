(* Partitioned TPC-C: per-partition branch programs for the two transaction
   types that can cross warehouse — and hence partition — boundaries.

   A cross-partition payment splits into
     - payment_home  (partition of p_w):   warehouse ytd | district ytd
     - payment_rcust (partition of p_c_w): customer update + history insert
   and a cross-partition new_order into
     - new_order_home   (partition of no_w): the full four-step decomposition,
       except that remote lines skip the stock draw
     - new_order_rstock (one per remote partition): the stock draws that the
       home branch skipped, one step per item.

   Each branch is an ordinary ACC program instance with its own compensating
   step, so [Acc_core.Runtime.prepare] can hold it in doubt and
   [abort_prepared] can cancel it — the 2PC abort path is compensation
   replay, exactly as the single-node abort path is.  Branch step ids
   continue the numbering of {!Txns} (15..26); assertion ids continue at 5. *)

module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Program = Acc_core.Program
module Assertion = Acc_core.Assertion
module Footprint = Acc_core.Footprint
module Interference = Acc_core.Interference
module Value = Acc_relation.Value
module Mode = Acc_lock.Mode
module Rid = Acc_lock.Resource_id
open Value

let fp = Footprint.make
let cols cs = Footprint.Columns cs
let fresh = Footprint.Fresh
let fnum = Value.number
let tab t = Rid.Table t
let tup t k = Rid.Tuple (t, k)

(* --- payment_home: 2 forward steps + compensation --- *)

let ph_wh =
  Program.step ~id:15 ~name:"wh-ytd" ~txn_type:"payment_home" ~index:1
    ~reads:[ fp "warehouse" (cols [ "w_name" ]) ]
    ~writes:[ fp "warehouse" (cols [ "w_ytd" ]) ]
    ()

let ph_dist =
  Program.step ~id:16 ~name:"district-ytd" ~txn_type:"payment_home" ~index:2
    ~reads:[ fp "district" (cols [ "d_name" ]) ]
    ~writes:[ fp "district" (cols [ "d_ytd" ]) ]
    ()

let ph_comp =
  Program.step ~id:17 ~name:"refund-home" ~txn_type:"payment_home" ~index:0
    ~reads:[]
    ~writes:[ fp "warehouse" (cols [ "w_ytd" ]); fp "district" (cols [ "d_ytd" ]) ]
    ()

let payment_home_type =
  Program.txn_type ~name:"payment_home" ~steps:[ ph_wh; ph_dist ] ~comp:ph_comp
    ~assertions:[] ()

(* --- payment_rcust: 1 forward step + compensation --- *)

let pr_cust =
  Program.step ~id:18 ~name:"customer+history" ~txn_type:"payment_rcust" ~index:1
    ~reads:[ fp "customer" (cols [ "c_credit" ]) ]
    ~writes:
      [
        fp "customer" (cols [ "c_balance"; "c_ytd_payment"; "c_payment_cnt" ]);
        fp ~fresh "history" Footprint.All_columns;
      ]
    ()

let pr_comp =
  Program.step ~id:19 ~name:"refund-rcust" ~txn_type:"payment_rcust" ~index:0
    ~reads:[]
    ~writes:
      [
        fp "customer" (cols [ "c_balance"; "c_ytd_payment"; "c_payment_cnt" ]);
        fp ~fresh "history" Footprint.All_columns;
      ]
    ()

let payment_rcust_type =
  Program.txn_type ~name:"payment_rcust" ~steps:[ pr_cust ] ~comp:pr_comp
    ~assertions:[] ()

(* --- new_order_home: the four-step decomposition, remote stock skipped --- *)

let nh_reads =
  Program.step ~id:20 ~name:"reads+counter" ~txn_type:"new_order_home" ~index:1
    ~reads:
      [
        fp "warehouse" (cols [ "w_tax" ]);
        fp "district" (cols [ "d_tax"; "d_next_o_id" ]);
        fp "customer" (cols [ "c_discount"; "c_last"; "c_credit" ]);
      ]
    ~writes:[ fp "district" (cols [ "d_next_o_id" ]) ]
    ()

let nh_insert =
  Program.step ~id:21 ~name:"insert-order" ~txn_type:"new_order_home" ~index:2
    ~reads:[]
    ~writes:
      [ fp ~fresh "orders" Footprint.All_columns; fp ~fresh "new_order" Footprint.All_columns ]
    ()

let nh_line =
  Program.step ~id:22 ~name:"order-line" ~txn_type:"new_order_home" ~index:3 ~repeats:true
    ~reads:[ fp "item" (cols [ "i_price" ]); fp "stock" (cols [ "s_quantity" ]) ]
    ~writes:
      [
        fp "stock" (cols [ "s_quantity"; "s_ytd"; "s_order_cnt" ]);
        fp ~fresh "order_line" Footprint.All_columns;
      ]
    ()

let nh_final =
  Program.step ~id:23 ~name:"finalize" ~txn_type:"new_order_home" ~index:4
    ~reads:[ fp ~fresh "orders" Footprint.All_columns ]
    ~writes:[]
    ()

let nh_comp =
  Program.step ~id:24 ~name:"cancel-order" ~txn_type:"new_order_home" ~index:0
    ~reads:
      [ fp ~fresh "order_line" Footprint.All_columns; fp "warehouse" (cols [ "w_id" ]) ]
    ~writes:
      [
        fp "stock" (cols [ "s_quantity"; "s_ytd"; "s_order_cnt" ]);
        fp ~fresh "orders" (cols [ "o_carrier_id"; "o_ol_cnt" ]);
        fp ~fresh "order_line" Footprint.All_columns;
        fp ~fresh "new_order" Footprint.All_columns;
      ]
    ()

let a_nh_seq =
  Assertion.make ~id:5 ~name:"nh_counter_seq" ~txn_type:"new_order_home" ~pre_of:2 ~until:2
    ~refs:
      [ fp "district" (cols [ "d_next_o_id" ]); fp ~fresh "orders" Footprint.All_columns ]

let a_nh_lines =
  Assertion.make ~id:6 ~name:"nh_lines_inv" ~txn_type:"new_order_home" ~pre_of:3
    ~until:Assertion.until_commit
    ~refs:
      [
        fp ~fresh "orders" (cols [ "o_ol_cnt"; "o_carrier_id" ]);
        fp ~fresh "order_line" Footprint.All_columns;
        fp ~fresh "new_order" Footprint.All_columns;
      ]

let new_order_home_type =
  Program.txn_type ~name:"new_order_home"
    ~steps:[ nh_reads; nh_insert; nh_line; nh_final ]
    ~comp:nh_comp
    ~assertions:[ a_nh_seq; a_nh_lines ]
    ()

(* --- new_order_rstock: one stock draw per remote item + compensation --- *)

let nr_stock =
  Program.step ~id:25 ~name:"remote-stock" ~txn_type:"new_order_rstock" ~index:1
    ~repeats:true
    ~reads:[ fp "stock" (cols [ "s_quantity" ]) ]
    ~writes:[ fp "stock" (cols [ "s_quantity"; "s_ytd"; "s_order_cnt" ]) ]
    ()

let nr_comp =
  Program.step ~id:26 ~name:"restock" ~txn_type:"new_order_rstock" ~index:0
    ~reads:[]
    ~writes:[ fp "stock" (cols [ "s_quantity"; "s_ytd"; "s_order_cnt" ]) ]
    ()

let new_order_rstock_type =
  Program.txn_type ~name:"new_order_rstock" ~steps:[ nr_stock ] ~comp:nr_comp
    ~assertions:[] ()

let branch_types =
  [ payment_home_type; payment_rcust_type; new_order_home_type; new_order_rstock_type ]

(* The combined static workload a partition engine serves: every single-
   partition transaction runs its ordinary program, cross-partition ones run
   branch programs — both against the same lock semantics. *)
let workload = Program.workload (Program.txn_types Txns.workload @ branch_types)

(* the same monotone-counter compatibility as the single-node analysis,
   closed over both counter-writing steps and both counter assertions *)
let interference =
  Interference.build
    ~compatible:
      [
        (Txns.no_reads.Program.sd_id, Txns.a_no_seq.Assertion.id);
        (Txns.no_reads.Program.sd_id, a_nh_seq.Assertion.id);
        (nh_reads.Program.sd_id, Txns.a_no_seq.Assertion.id);
        (nh_reads.Program.sd_id, a_nh_seq.Assertion.id);
      ]
    workload

let semantics = Interference.semantics interference

(* ====================================================================== *)
(* Branch instances                                                        *)
(* ====================================================================== *)

let payment_home_instance env (i : Txns.payment_input) =
  let pace = env.Txns.pace in
  let steps =
    [
      ( ph_wh,
        fun ctx ->
          ignore
            (Executor.update ctx "warehouse" [ Int i.Txns.p_w ] (fun row ->
                 row.(3) <- Float (fnum row.(3) +. i.Txns.p_amount);
                 row)) );
      ( ph_dist,
        fun ctx ->
          pace ();
          ignore
            (Executor.update ctx "district"
               (Load.district_key ~w:i.Txns.p_w ~d:i.Txns.p_d)
               (fun row ->
                 row.(4) <- Float (fnum row.(4) +. i.Txns.p_amount);
                 row)) );
    ]
  in
  let footprints j =
    if j = 1 then [ (Mode.IX, tab "warehouse"); (Mode.X, tup "warehouse" [ Int i.Txns.p_w ]) ]
    else if j = 2 then
      [
        (Mode.IX, tab "district");
        (Mode.X, tup "district" (Load.district_key ~w:i.Txns.p_w ~d:i.Txns.p_d));
      ]
    else []
  in
  Program.instance ~def:payment_home_type ~steps ~footprints
    ~compensate:(fun ctx ~completed ->
      if completed >= 1 then
        ignore
          (Executor.update ctx "warehouse" [ Int i.Txns.p_w ] (fun row ->
               row.(3) <- Float (fnum row.(3) -. i.Txns.p_amount);
               row));
      if completed >= 2 then
        ignore
          (Executor.update ctx "district"
             (Load.district_key ~w:i.Txns.p_w ~d:i.Txns.p_d)
             (fun row ->
               row.(4) <- Float (fnum row.(4) -. i.Txns.p_amount);
               row)))
    ~comp_area:(fun () ->
      [ ("w", Int i.Txns.p_w); ("d", Int i.Txns.p_d); ("amount", Float i.Txns.p_amount) ])
    ()

let payment_rcust_instance env (i : Txns.payment_input) =
  let pace = env.Txns.pace in
  let h_id = ref 0 and cust = ref 0 in
  let body ctx =
    let c = Txns.resolve_customer ctx ~w:i.Txns.p_c_w ~d:i.Txns.p_c_d i.Txns.p_customer in
    cust := c;
    ignore
      (Executor.update ctx "customer"
         (Load.customer_key ~w:i.Txns.p_c_w ~d:i.Txns.p_c_d ~c)
         (fun row ->
           row.(6) <- Float (fnum row.(6) -. i.Txns.p_amount);
           row.(7) <- Float (fnum row.(7) +. i.Txns.p_amount);
           row.(8) <- Int (as_int row.(8) + 1);
           row));
    pace ();
    h_id := Txns.next_history_id ();
    Executor.insert ctx "history"
      [|
        Int !h_id; Int i.Txns.p_c_w; Int i.Txns.p_c_d; Int c; Int i.Txns.p_w;
        Int i.Txns.p_d; Float i.Txns.p_amount;
      |]
  in
  let footprints j =
    if j = 1 then
      (Mode.IX, tab "customer") :: (Mode.IX, tab "history")
      ::
      (match i.Txns.p_customer with
      | Txns.By_id c ->
          [
            (Mode.IS, tab "customer");
            (Mode.X, tup "customer" (Load.customer_key ~w:i.Txns.p_c_w ~d:i.Txns.p_c_d ~c));
          ]
      | Txns.By_last_name _ -> [ (Mode.IS, tab "customer") ])
    else []
  in
  Program.instance ~def:payment_rcust_type ~steps:[ (pr_cust, body) ] ~footprints
    ~compensate:(fun ctx ~completed ->
      if completed >= 1 then begin
        ignore
          (Executor.update ctx "customer"
             (Load.customer_key ~w:i.Txns.p_c_w ~d:i.Txns.p_c_d ~c:!cust)
             (fun row ->
               row.(6) <- Float (fnum row.(6) +. i.Txns.p_amount);
               row.(7) <- Float (fnum row.(7) -. i.Txns.p_amount);
               row.(8) <- Int (as_int row.(8) - 1);
               row));
        Executor.delete ctx "history" [ Int !h_id ]
      end)
    ~comp_area:(fun () ->
      [
        ("c_w", Int i.Txns.p_c_w);
        ("c_d", Int i.Txns.p_c_d);
        ("c", Int !cust);
        ("amount", Float i.Txns.p_amount);
        ("h_id", Int !h_id);
      ])
    ()

type nh_ws = { mutable o_id : int }

let new_order_home_instance env ~local (i : Txns.new_order_input) =
  let pace = env.Txns.pace in
  let ws = { o_id = 0 } in
  let w = i.Txns.no_w and d = i.Txns.no_d and c = i.Txns.no_c in
  let items = Array.of_list i.Txns.no_items in
  let n_items = Array.length items in
  let step1 ctx =
    ignore (Executor.read_exn ctx "warehouse" [ Int w ]);
    pace ();
    let d_row =
      Executor.update ctx "district" (Load.district_key ~w ~d) (fun row ->
          row.(5) <- Int (as_int row.(5) + 1);
          row)
    in
    ws.o_id <- as_int d_row.(5) - 1;
    pace ();
    ignore (Executor.read_exn ctx "customer" (Load.customer_key ~w ~d ~c))
  in
  let step2 ctx =
    Executor.insert ctx "orders"
      [| Int w; Int d; Int ws.o_id; Int c; Int (-1); Int n_items |];
    pace ();
    Executor.insert ctx "new_order" [| Int w; Int d; Int ws.o_id |]
  in
  let step_line ~ln ~last ~item ~qty ~supply ctx =
    if last && i.Txns.no_fail_last then raise Txn_effect.Abort_requested;
    let item_row = Executor.read_exn ctx "item" [ Int item ] in
    let price = fnum item_row.(2) in
    pace ();
    (* a remote line's stock draw belongs to that partition's rstock branch *)
    if local supply then Txns.draw_stock ctx ~supply ~item ~qty;
    pace ();
    Executor.insert ctx "order_line"
      [|
        Int w; Int d; Int ws.o_id; Int ln; Int item; Int qty;
        Float (float_of_int qty *. price); Int (-1); Int supply;
      |]
  in
  let step_final ctx =
    ignore (Executor.read_exn ctx "orders" (Load.order_key ~w ~d ~o:ws.o_id))
  in
  let line_steps =
    List.mapi
      (fun idx (item, qty, supply) ->
        ( nh_line,
          step_line ~ln:(idx + 1) ~last:(idx = n_items - 1) ~item ~qty ~supply ))
      i.Txns.no_items
  in
  let steps =
    ((nh_reads, step1) :: (nh_insert, step2) :: line_steps) @ [ (nh_final, step_final) ]
  in
  let n = List.length steps in
  let assertions =
    [
      { Program.ai_assertion = a_nh_seq; ai_from = 2; ai_until = 2; ai_check = None };
      { Program.ai_assertion = a_nh_lines; ai_from = 3; ai_until = n; ai_check = None };
    ]
  in
  let footprints j =
    if j = 1 then
      [
        (Mode.IS, tab "warehouse"); (Mode.S, tup "warehouse" [ Int w ]);
        (Mode.IX, tab "district"); (Mode.X, tup "district" (Load.district_key ~w ~d));
        (Mode.IS, tab "customer"); (Mode.S, tup "customer" (Load.customer_key ~w ~d ~c));
      ]
    else if j = 2 then
      [
        (Mode.IX, tab "orders");
        (Mode.X, tup "orders" (Load.order_key ~w ~d ~o:ws.o_id));
        (Mode.IX, tab "new_order");
        (Mode.X, tup "new_order" [ Int w; Int d; Int ws.o_id ]);
      ]
    else if j >= 3 && j <= n_items + 2 then
      let item, _, supply = items.(j - 3) in
      (Mode.IS, tab "item") :: (Mode.S, tup "item" [ Int item ])
      :: (Mode.IX, tab "order_line")
      :: (Mode.X, tup "order_line" [ Int w; Int d; Int ws.o_id; Int (j - 2) ])
      ::
      (if local supply then
         [ (Mode.IX, tab "stock"); (Mode.X, tup "stock" (Load.stock_key ~w:supply ~i:item)) ]
       else [])
    else if j = n_items + 3 then
      [ (Mode.IS, tab "orders"); (Mode.S, tup "orders" (Load.order_key ~w ~d ~o:ws.o_id)) ]
    else []
  in
  Program.instance ~def:new_order_home_type ~steps ~assertions ~footprints
    ~compensate:(fun ctx ~completed ->
      if completed = 1 then
        Executor.insert ctx "orders" [| Int w; Int d; Int ws.o_id; Int c; Int (-2); Int 0 |];
      if completed >= 2 then begin
        let committed_lines = min n_items (max 0 (completed - 2)) in
        for ln = 1 to committed_lines do
          let key = [ Int w; Int d; Int ws.o_id; Int ln ] in
          let row = Executor.read_exn ctx "order_line" key in
          let item = as_int row.(4) and qty = as_int row.(5) in
          let supply = as_int row.(8) in
          if Executor.read_committed ctx "warehouse" [ Int supply ] <> None then
            Txns.undo_stock ctx ~supply ~item ~qty;
          Executor.delete ctx "order_line" key
        done;
        ignore
          (Executor.update ctx "orders" (Load.order_key ~w ~d ~o:ws.o_id) (fun row ->
               row.(4) <- Int (-2);
               row.(5) <- Int 0;
               row));
        Executor.delete ctx "new_order" [ Int w; Int d; Int ws.o_id ]
      end)
    ~comp_area:(fun () ->
      [ ("w", Int w); ("d", Int d); ("o_id", Int ws.o_id); ("c", Int c) ])
    ()

let new_order_rstock_instance env items =
  let pace = env.Txns.pace in
  let items = Array.of_list items in
  let n = Array.length items in
  let steps =
    Array.to_list
      (Array.map
         (fun (item, qty, supply) ->
           ( nr_stock,
             fun ctx ->
               pace ();
               Txns.draw_stock ctx ~supply ~item ~qty ))
         items)
  in
  let footprints j =
    if j >= 1 && j <= n then
      let item, _, supply = items.(j - 1) in
      [ (Mode.IX, tab "stock"); (Mode.X, tup "stock" (Load.stock_key ~w:supply ~i:item)) ]
    else []
  in
  Program.instance ~def:new_order_rstock_type ~steps ~footprints
    ~compensate:(fun ctx ~completed ->
      for k = 0 to min completed n - 1 do
        let item, qty, supply = items.(k) in
        Txns.undo_stock ctx ~supply ~item ~qty
      done)
    ~comp_area:(fun () ->
      ("n", Int n)
      :: List.concat
           (List.mapi
              (fun k (item, qty, supply) ->
                [
                  (Printf.sprintf "w%d" k, Int supply);
                  (Printf.sprintf "i%d" k, Int item);
                  (Printf.sprintf "q%d" k, Int qty);
                ])
              (Array.to_list items)))
    ()

(* ====================================================================== *)
(* Routing                                                                 *)
(* ====================================================================== *)

let home_warehouse (input : Txns.input) =
  match input with
  | Txns.New_order i -> i.Txns.no_w
  | Txns.Payment i -> i.Txns.p_w
  | Txns.Order_status i -> i.Txns.os_w
  | Txns.Delivery i -> i.Txns.dl_w
  | Txns.Stock_level i -> i.Txns.sl_w

let partitions_of_input ~part_of (input : Txns.input) =
  let ps =
    match input with
    | Txns.New_order i ->
        part_of i.Txns.no_w :: List.map (fun (_, _, s) -> part_of s) i.Txns.no_items
    | Txns.Payment i -> [ part_of i.Txns.p_w; part_of i.Txns.p_c_w ]
    | Txns.Order_status i -> [ part_of i.Txns.os_w ]
    | Txns.Delivery i -> [ part_of i.Txns.dl_w ]
    | Txns.Stock_level i -> [ part_of i.Txns.sl_w ]
  in
  List.sort_uniq Stdlib.compare ps

let branches env ~part_of (input : Txns.input) =
  match input with
  | Txns.Payment i ->
      [
        (part_of i.Txns.p_w, payment_home_instance env i);
        (part_of i.Txns.p_c_w, payment_rcust_instance env i);
      ]
  | Txns.New_order i ->
      let home = part_of i.Txns.no_w in
      let remote_pids =
        List.sort_uniq Stdlib.compare
          (List.filter_map
             (fun (_, _, s) -> if part_of s <> home then Some (part_of s) else None)
             i.Txns.no_items)
      in
      (home, new_order_home_instance env ~local:(fun s -> part_of s = home) i)
      :: List.map
           (fun pid ->
             let items =
               List.filter (fun (_, _, s) -> part_of s = pid) i.Txns.no_items
             in
             (pid, new_order_rstock_instance env items))
           remote_pids
  | Txns.Order_status _ | Txns.Delivery _ | Txns.Stock_level _ ->
      invalid_arg "Dist_txns.branches: warehouse-local transaction type"
