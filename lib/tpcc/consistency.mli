(** The TPC-C consistency constraint — "I has twelve components" (§5.1).

    Conditions follow the spec's §3.3.2 consistency requirements, adapted for
    the ACC's cancelled orders: a compensated new-order keeps its order row,
    marked cancelled ([o_carrier_id = -2], [o_ol_cnt = 0]), because the
    consumed order number cannot be returned to the (exposed, monotone)
    district counter.  Delivered orders have [o_carrier_id >= 0]; undelivered
    ones have [-1] and exactly one queue row.

    The checker is the executable form of the constraint [I]: the test suite
    and the experiment harness call it at quiescent points, where semantic
    correctness requires it to hold. *)

val check : Acc_relation.Database.t -> string list
(** All violations found (empty = consistent).  Each message is prefixed
    with its condition number C1..C12. *)

val conditions : (int * string) list
(** Condition number and description, for documentation output. *)
