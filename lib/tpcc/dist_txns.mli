(** Per-partition branch programs for cross-partition TPC-C transactions.

    A cross-partition [payment] splits into a home branch (warehouse and
    district ytd) and a remote-customer branch (customer update + history
    insert); a cross-partition [new_order] into a home branch (the full
    four-step decomposition with remote stock draws skipped) and one
    remote-stock branch per remote partition.  Every branch is an ordinary
    ACC program instance with a compensating step, so the two-phase-commit
    abort path is compensation replay. *)

(** {1 Static branch definitions} *)

val payment_home_type : Acc_core.Program.txn_type_def
val payment_rcust_type : Acc_core.Program.txn_type_def
val new_order_home_type : Acc_core.Program.txn_type_def
val new_order_rstock_type : Acc_core.Program.txn_type_def

val branch_types : Acc_core.Program.txn_type_def list

val ph_comp : Acc_core.Program.step_def
val pr_comp : Acc_core.Program.step_def
val nh_comp : Acc_core.Program.step_def
val nr_comp : Acc_core.Program.step_def

val workload : Acc_core.Program.workload
(** The single-node workload plus the four branch types: what a partition
    engine serves. *)

val interference : Acc_core.Interference.t
val semantics : Acc_lock.Mode.semantics

(** {1 Routing} *)

val home_warehouse : Txns.input -> int

val partitions_of_input : part_of:(int -> int) -> Txns.input -> int list
(** Sorted, deduplicated partition ids the input touches.  [part_of] maps a
    warehouse id to its partition id.  A singleton means the transaction is
    warehouse-local to one partition and needs no coordinator. *)

val branches :
  Txns.env -> part_of:(int -> int) -> Txns.input -> (int * Acc_core.Program.instance) list
(** Branch instances of a cross-partition input, home branch first, keyed by
    partition id.  Raises [Invalid_argument] for inherently local types. *)
