(* TPC-C packaged as one {!Acc_workload.S} plugin — the reference instance
   of the workload interface.  Nothing here is new behavior: the module
   closes over the same {!Txns} environment the drivers used to build by
   hand, so a driver run through this plugin is input-for-input identical
   to the pre-interface code path. *)

module W = Acc_workload
module Runtime = Acc_core.Runtime
module Prng = Acc_util.Prng

(* the compensation-replay handlers register themselves when Recovery_comp
   is linked; any workload user must be recoverable *)
let _force_handler_registration = Recovery_comp.complete

type mix = Standard | New_order_payment

type env = {
  te : Txns.env;
  nop_mix : bool;  (** 50/50 new-order/payment instead of the full mix *)
}

let make ?(params = Params.default) ?(skewed_district = false) ?(mix = Standard)
    ?(min_items = 5) ?(max_items = 15) ?(abort_rate = 0.01) () : W.t =
  (module struct
    let name = "tpcc"
    let describe = "the paper's Sec 5 workload: five txn types over one warehouse"
    let conflict_shape = "district counter hotspot; payment/new-order ytd overlap"

    type input = Txns.input
    type nonrec env = env

    let populate ~seed = Load.populate ~seed params

    let make_env ?(pace = fun () -> ()) ~seed () =
      {
        te =
          {
            (Txns.default_env ~seed params) with
            Txns.skewed_district;
            min_items;
            max_items;
            new_order_abort_rate = abort_rate;
            pace;
          };
        nop_mix = (mix = New_order_payment);
      }

    let split_env env = { env with te = { env.te with Txns.gen = Random_gen.split env.te.Txns.gen } }
    let reset_global () = Txns.reset_history_seq ()

    let gen_input env =
      if env.nop_mix then
        if Prng.chance (Random_gen.prng env.te.Txns.gen) 0.5 then
          Txns.New_order (Txns.gen_new_order env.te)
        else Txns.Payment (Txns.gen_payment env.te)
      else Txns.gen_input env.te

    let txn_name = Txns.txn_name

    let forced_abort = function
      | Txns.New_order { Txns.no_fail_last = true; _ } -> true
      | _ -> false

    let workload = Txns.workload
    let interference = Txns.interference
    let semantics = Txns.semantics
    let run_flat ?stop eng env input = Txns.run_flat ?stop eng env.te input
    let run_acc ?options ?stop eng env input = Txns.run_acc ?options ?stop eng env.te input
    let consistency = Consistency.check
    let extras () = []
  end : W.S)

let of_spec (spec : W.spec) : W.t =
  let mix =
    match spec.W.mix with
    | None | Some "standard" -> Standard
    | Some ("new-order-payment" | "nop") -> New_order_payment
    | Some m -> failwith (Printf.sprintf "tpcc: unknown mix %S" m)
  in
  make
    ~params:{ Params.default with Params.warehouses = max 1 spec.W.scale }
    ~skewed_district:(spec.W.skew > 0.) ~mix
    ?abort_rate:spec.W.abort_rate ()

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    W.Registry.register ~name:"tpcc"
      ~doc:"TPC-C (reference): --scale adds warehouses, --skew>0 skews districts"
      of_spec
  end
