module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Lock_table = Acc_lock.Lock_table
module Lock_service = Acc_lock.Lock_service
module Mode = Acc_lock.Mode
module Runtime = Acc_core.Runtime
module Sim = Acc_sim.Sim
module Prng = Acc_util.Prng
module Tally = Acc_util.Stats.Tally
module Trace = Acc_obs.Trace
module Lock_obs = Acc_obs.Lock_obs

let trace_deadlock ~requester ~cycle ~victims =
  if Trace.enabled () then begin
    Trace.emit (Trace.Deadlock_cycle { cycle });
    let spared_compensating = not (List.mem requester victims) in
    List.iter
      (fun v -> Trace.emit (Trace.Victim { txn = v; spared_compensating }))
      victims
  end

type system = Baseline | Acc

type config = {
  seed : int;
  system : system;
  terminals : int;
  servers : int;
  horizon : float;
  warmup : float;
  think_mean : float;
  compute_between : float;
  cpu_per_unit : float;
  skewed_district : bool;
  min_items : int;
  max_items : int;
  params : Params.t;
  acc_options : Acc_core.Runtime.options;
  acc_semantics : Acc_lock.Mode.semantics option;
  workload : Acc_workload.t option;
      (** [None] runs TPC-C with this config's scale knobs (the historical
          behavior); [Some w] runs any {!Acc_workload.S} plugin, ignoring
          the TPC-C-specific fields *)
}

let default_config =
  {
    seed = 7;
    system = Baseline;
    terminals = 10;
    servers = 3;
    horizon = 600.0;
    warmup = 30.0;
    think_mean = 4.0;
    compute_between = 0.0;
    cpu_per_unit = 0.004;
    skewed_district = false;
    min_items = 5;
    max_items = 15;
    params = Params.default;
    acc_options = Acc_core.Runtime.default_options;
    acc_semantics = None;
    workload = None;
  }

let workload_of cfg =
  match cfg.workload with
  | Some w -> w
  | None ->
      Tpcc_workload.make ~params:cfg.params ~skewed_district:cfg.skewed_district
        ~min_items:cfg.min_items ~max_items:cfg.max_items ()

type report = {
  completed : int;
  response : Tally.t;
  lock_wait : Tally.t;
  per_type : (string * Tally.t) list;
  throughput : float;
  deadlock_victims : int;
  forced_aborts : int;
  compensations : int;
  cpu_utilization : float;
  quiesced_at : float;
  violations : string list;
}

let mean_response r = Tally.mean r.response

type wait_outcome = Granted | Victim

type state = {
  cfg : config;
  sim : Sim.t;
  eng : Executor.t;
  servers_pool : Sim.Resource.resource;
  parked : (Lock_table.ticket, wait_outcome Sim.Condition.cond) Hashtbl.t;
  backoff_g : Prng.t;
  lock_wait : Tally.t;
  mutable deadlock_victims : int;
}

let deliver_wakeups st wakeups =
  List.iter
    (fun w ->
      match Hashtbl.find_opt st.parked w.Lock_table.woken_ticket with
      | Some cond ->
          Hashtbl.remove st.parked w.Lock_table.woken_ticket;
          ignore (Sim.Condition.signal st.sim cond Granted)
      | None -> ())
    wakeups

(* Resume [txn]'s parked wait (if any) as a deadlock victim. *)
let kill_waiter st txn =
  let locks = Executor.lock_service st.eng in
  let victim_tickets =
    Hashtbl.fold
      (fun ticket _ acc ->
        match Lock_service.ticket_txn locks ~ticket with
        | Some t when t = txn -> ticket :: acc
        | Some _ | None -> acc)
      st.parked []
  in
  List.iter
    (fun ticket ->
      match Hashtbl.find_opt st.parked ticket with
      | Some cond ->
          Hashtbl.remove st.parked ticket;
          st.deadlock_victims <- st.deadlock_victims + 1;
          Lock_service.cancel locks ~ticket;
          ignore (Sim.Condition.signal st.sim cond Victim)
      | None -> ())
    victim_tickets

(* Run one transaction attempt under the lock-wait/yield effect handler.
   Runs inside a sim process; lock waits suspend the terminal. *)
let with_txn_effects : type r. state -> (unit -> r) -> r =
 fun st f ->
  let locks = Executor.lock_service st.eng in
  Effect.Deep.match_with f ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Txn_effect.Wait_lock { ticket; txn } ->
              Some
                (fun (k : (b, r) Effect.Deep.continuation) ->
                  if not (Lock_service.outstanding locks ~ticket) then Effect.Deep.continue k ()
                  else begin
                    let self_victim =
                      match Lock_service.find_cycle locks ~from:txn with
                      | None -> false
                      | Some cycle ->
                          let victims = Runtime.victim_policy locks ~requester:txn ~cycle in
                          trace_deadlock ~requester:txn ~cycle ~victims;
                          List.iter (fun v -> if v <> txn then kill_waiter st v) victims;
                          List.mem txn victims
                    in
                    if self_victim then begin
                      st.deadlock_victims <- st.deadlock_victims + 1;
                      Lock_service.cancel locks ~ticket;
                      Effect.Deep.discontinue k Txn_effect.Deadlock_victim
                    end
                    else if not (Lock_service.outstanding locks ~ticket) then
                      (* cancelling the other victims promoted the queue and
                         granted our own request before we could park *)
                      Effect.Deep.continue k ()
                    else begin
                      let cond = Sim.Condition.create () in
                      Hashtbl.replace st.parked ticket cond;
                      let t0 = Sim.now st.sim in
                      let outcome = Sim.Condition.wait cond in
                      Tally.add st.lock_wait (Sim.now st.sim -. t0);
                      match outcome with
                      | Granted -> Effect.Deep.continue k ()
                      | Victim -> Effect.Deep.discontinue k Txn_effect.Deadlock_victim
                    end
                  end)
          | Txn_effect.Yield attempt ->
              (* deadlock-retry backoff: randomized so that repeatedly
                 colliding transactions desynchronize instead of retrying in
                 lockstep forever, scaled by the capped exponential factor of
                 the attempt number *)
              Some
                (fun (k : (b, r) Effect.Deep.continuation) ->
                  Sim.delay
                    ((0.002 +. Prng.exponential st.backoff_g ~mean:0.05)
                    *. Acc_txn.Backoff.factor ~attempt ());
                  Effect.Deep.continue k ())
          | _ -> None);
    }

let run cfg =
  if cfg.workload = None then Params.validate cfg.params;
  let module W = (val workload_of cfg : Acc_workload.S) in
  W.reset_global ();
  let db = W.populate ~seed:cfg.seed in
  let sem =
    match cfg.system with
    | Baseline -> Mode.no_semantics
    | Acc -> Option.value ~default:W.semantics cfg.acc_semantics
  in
  let eng = Executor.create ~sem db in
  let sim = Sim.create () in
  let servers_pool = Sim.Resource.create sim ~capacity:cfg.servers in
  let st =
    {
      cfg;
      sim;
      eng;
      servers_pool;
      parked = Hashtbl.create 64;
      backoff_g = Prng.create ~seed:(cfg.seed * 7919);
      lock_wait = Tally.create ();
      deadlock_victims = 0;
    }
  in
  Executor.set_on_wakeup eng (deliver_wakeups st);
  Executor.set_charge eng (fun units ->
      if units > 0.0 then Sim.Resource.use servers_pool (units *. cfg.cpu_per_unit));
  (* step durations in virtual time; lock decisions to the trace when one is
     being collected (ACC_TRACE / --trace in the CLI) *)
  Executor.set_clock eng (fun () -> Sim.now sim);
  if Trace.enabled () then
    Lock_service.set_observer (Executor.lock_service eng) (Some (Lock_obs.observer ()));
  let response = Tally.create () in
  let per_type = Hashtbl.create 8 in
  let type_tally name =
    match Hashtbl.find_opt per_type name with
    | Some t -> t
    | None ->
        let t = Tally.create () in
        Hashtbl.add per_type name t;
        t
  in
  let completed = ref 0 in
  let forced_aborts = ref 0 in
  let compensations = ref 0 in
  let base_env =
    W.make_env
      ~pace:(fun () -> if cfg.compute_between > 0.0 then Sim.delay cfg.compute_between)
      ~seed:((cfg.seed * 31) + 1) ()
  in
  let terminal term_id =
    let env = W.split_env base_env in
    let think_g = Prng.create ~seed:((cfg.seed * 1009) + term_id) in
    let rec loop () =
      if Sim.now sim < cfg.horizon then begin
        Sim.delay (Prng.exponential think_g ~mean:cfg.think_mean);
        if Sim.now sim < cfg.horizon then begin
          let input = W.gen_input env in
          let t0 = Sim.now sim in
          let outcome =
            with_txn_effects st (fun () ->
                match cfg.system with
                | Baseline -> begin
                    match W.run_flat eng env input with
                    | `Committed -> `Done
                    | `Aborted -> `Forced_abort
                  end
                | Acc -> begin
                    match W.run_acc ~options:cfg.acc_options eng env input with
                    | Runtime.Committed -> `Done
                    | Runtime.Compensated _ ->
                        if W.forced_abort input then `Forced_abort_compensated
                        else `Compensated
                  end)
          in
          let t1 = Sim.now sim in
          (match outcome with
          | `Done -> ()
          | `Forced_abort -> incr forced_aborts
          | `Forced_abort_compensated ->
              incr forced_aborts;
              incr compensations
          | `Compensated -> incr compensations);
          if t0 >= cfg.warmup && t1 <= cfg.horizon then begin
            incr completed;
            Tally.add response (t1 -. t0);
            Tally.add (type_tally (W.txn_name input)) (t1 -. t0)
          end;
          loop ()
        end
      end
    in
    loop
  in
  let active_terminals = ref 0 in
  for term_id = 1 to cfg.terminals do
    incr active_terminals;
    Sim.spawn sim (fun () ->
        terminal term_id ();
        decr active_terminals)
  done;
  (* Periodic deadlock detector (in addition to the at-block check): grant
     promotions and lock upgrades can close a waits-for cycle without any
     transaction newly blocking, so an Ingres-style background sweep is the
     safety net that guarantees progress. *)
  let locks = Executor.lock_service eng in
  let rec detector () =
    if !active_terminals > 0 then begin
      Sim.delay 0.25;
      let parked_txns =
        Hashtbl.fold
          (fun ticket _ acc ->
            match Lock_service.ticket_txn locks ~ticket with
            | Some txn -> txn :: acc
            | None -> acc)
          st.parked []
        |> List.sort_uniq compare
      in
      List.iter
        (fun txn ->
          match Lock_service.find_cycle locks ~from:txn with
          | Some cycle ->
              let victims = Runtime.victim_policy locks ~requester:txn ~cycle in
              trace_deadlock ~requester:txn ~cycle ~victims;
              List.iter (fun v -> kill_waiter st v) victims
          | None -> ())
        parked_txns;
      detector ()
    end
  in
  Sim.spawn sim detector;
  (* event budget proportional to the configured load: a runaway-retry guard
     that legitimate heavy configurations (many terminals, huge orders) do
     not trip *)
  let max_events =
    max 50_000_000 (int_of_float (float_of_int cfg.terminals *. cfg.horizon *. 20_000.))
  in
  Sim.run ~max_events sim;
  if Hashtbl.length st.parked > 0 then begin
    let locks = Executor.lock_service eng in
    Format.eprintf "stranded lock state:@.%a@.wait edges:@." Lock_service.pp_state locks;
    List.iter (fun (a, b) -> Format.eprintf "  T%d -> T%d@." a b) (Lock_service.wait_edges locks);
    raise (Txn_effect.Stuck "driver: terminals stranded on locks at quiescence")
  end;
  let quiesced_at = Sim.now sim in
  {
    completed = !completed;
    response;
    lock_wait = st.lock_wait;
    per_type =
      Hashtbl.fold (fun name t acc -> (name, t) :: acc) per_type []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    throughput =
      (if cfg.horizon > cfg.warmup then float_of_int !completed /. (cfg.horizon -. cfg.warmup)
       else 0.);
    deadlock_victims = st.deadlock_victims;
    forced_aborts = !forced_aborts;
    compensations = !compensations;
    cpu_utilization = Sim.Resource.utilization servers_pool ~at:quiesced_at;
    quiesced_at;
    violations = W.consistency (Executor.db eng);
  }
