(** Initial database population (TPC-C Rev 3.1 §4.3, scaled by {!Params}).

    Every district is pre-loaded with a run of delivered orders so that
    order-status and delivery have material to work on, and [d_next_o_id]
    starts just past them — the consistency conditions hold of the freshly
    loaded database (verified by the test suite). *)

val populate : ?only:(int -> bool) -> seed:int -> Params.t -> Acc_relation.Database.t
(** Build and fill a fresh database.  [only] keeps only the warehouses it
    accepts (a partition's share); the item table is always loaded in full,
    and the PRNG draws are independent of the filter, so partition loads are
    exact disjoint projections of the unfiltered database (items excepted —
    they are replicated). *)

val district_key : w:int -> d:int -> Acc_relation.Table.key
val customer_key : w:int -> d:int -> c:int -> Acc_relation.Table.key
val stock_key : w:int -> i:int -> Acc_relation.Table.key
val order_key : w:int -> d:int -> o:int -> Acc_relation.Table.key
