(** Deterministic fault injection for crash-recovery testing.

    The engine threads named {e crash points} through its durability-critical
    code paths (WAL append, step commit, lock release, compensation).  Each
    point is {!register}ed once at module-initialization time and {!trip}ped
    at every passage.  Disarmed — the default — a trip is a single boolean
    load.  Armed, the selected passage raises {!Crash}, which models the
    process dying at that instant: callers must let it propagate without
    running any recovery-visible cleanup (no log appends, no lock releases),
    because a crashed process performs neither.

    See RECOVERY.md for the crash-point map and the recovery protocol that
    consumes these crashes. *)

exception Crash of { point : string; hit : int }
(** The simulated process death.  [point] names the registered crash point,
    [hit] the passage count at which it fired.  Never catch this to resume
    the transaction — recover from the log instead.  {!is_crash} identifies
    it in generic handlers. *)

exception Step_fault
(** A retryable, injected step failure (see {!arm_step_faults}): the runtime
    treats it exactly like a deadlock victimization — roll the step back,
    back off, retry. *)

type point
(** A registered crash point (name + passage counter). *)

val register : string -> point
(** [register name] adds a crash point to the global registry (idempotent:
    re-registering a name returns the existing point).  Call at module-init
    time in the module that owns the code path. *)

val registered : unit -> string list
(** Names of every registered crash point, in registration order.  The
    crash-restart harness iterates this to kill the system everywhere. *)

val trip : point -> unit
(** [trip p] records a passage through [p] and raises {!Crash} if the armed
    mode selects this passage.  Disarmed cost: one boolean load. *)

val trips : point -> int
(** Passages recorded since the last arming (each [arm]/[arm_chaos]/[disarm]
    resets all counters). *)

val trips_of : string -> int
(** {!trips} looked up by name; raises [Invalid_argument] if unregistered. *)

val observe : unit -> unit
(** Count passages without ever crashing: a dry run under [observe] tells
    the harness how many times each point trips for a given workload, so it
    can arm a representative spread of hit counts. *)

val arm : point:string -> hit:int -> unit
(** Crash at exactly the [hit]-th passage (1-based) through the named point.
    Raises [Invalid_argument] for an unregistered name or [hit < 1]. *)

val arm_chaos : seed:int -> p:float -> unit
(** Crash each passage through {e any} point with probability [p], drawn
    from a PRNG seeded with [seed] (deterministic given the same execution). *)

val arm_step_faults : seed:int -> p:float -> unit
(** Independently of crash arming: make {!step_trip} raise {!Step_fault}
    with probability [p] per call, for retry-policy exercise. *)

val step_trip : unit -> unit
(** Called by the runtime at the top of each step attempt; raises
    {!Step_fault} when step faults are armed and the draw fires. *)

val disarm : unit -> unit
(** Return to the zero-cost disarmed state and reset all counters. *)

val is_crash : exn -> bool
(** [is_crash e] is true iff [e] is {!Crash}.  Use in [when] guards so
    generic catch-all handlers stand aside for simulated process death. *)

(** Message-level fault specs for the dist transport: what the injectable
    network-fault layer may do to each wire message, how often, and from
    which seed.  The spec lives here (beside the crash-point registry, same
    seeding and env-var conventions); the injection itself is the
    transport's fault layer ({!Acc_dist.Transport}). *)
module Netfault : sig
  type spec = {
    drop : float;  (** message silently discarded *)
    dup : float;  (** message delivered twice *)
    delay : float;  (** message held back for 1-3 later sends *)
    reorder : float;  (** message swapped with the next send *)
    disconnect : float;  (** connection flap: a 1-4 message drop burst *)
    seed : int;
    ops : string list;  (** message kinds faults apply to; [[]] = all *)
  }

  val none : spec
  (** All probabilities zero. *)

  val is_none : spec -> bool

  val applies : spec -> op:string -> bool
  (** Does this spec target messages of kind [op]? *)

  val kinds : string list
  (** The five fault kinds, as spec keys: drop, dup, delay, reorder,
      disconnect. *)

  val parse : string -> spec
  (** ["drop=0.1,dup=0.05,seed=7,ops=decide+prepare"]; [all=p] sets every
      kind to [p].  Raises [Invalid_argument] on unknown keys or
      out-of-range probabilities. *)

  val to_string : spec -> string
  (** Inverse of {!parse} (zero-probability kinds omitted). *)

  val of_env : unit -> spec option
  (** Parse [ACC_NETFAULT], the workload binaries' arming path ([None] when
      unset or empty). *)
end

val configure_from_env : unit -> unit
(** Arm from the environment, for binaries:
    [ACC_CRASHPOINT=point[:hit]] or [ACC_CRASHPOINT=chaos:p[:seed]], and
    [ACC_STEP_FAULTS=p[:seed]].  Unset/empty variables leave faults
    disarmed. *)
