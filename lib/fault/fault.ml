(* Deterministic fault injection: a registry of named crash points threaded
   through the engine (WAL append, step commit, lock release, compensation).

   A crash point is a call to [trip point] at the place where a real process
   could die.  Disarmed, the call is a single atomic load — cheap enough to
   leave in production paths.  Armed, the [hit]-th passage through the named
   point raises {!Crash}, which models the machine stopping: the caller must
   NOT run any cleanup that appends to the log or releases locks — a dead
   process does neither — and the harness recovers from baseline + log
   exactly as a restarted process would.

   Two arming styles:
   - deterministic: [arm ~point ~hit] (or [ACC_CRASHPOINT=point:hit]) crashes
     at an exact, reproducible place;
   - chaos: [arm_chaos ~seed ~p] (or [ACC_CRASHPOINT=chaos:p:seed]) crashes
     each passage with probability [p] from a seeded PRNG, for soak runs.

   [Step_fault] is the softer sibling: a retryable step failure (armed with
   [arm_step_faults]) that the runtime treats like a deadlock victimization —
   roll back the step, back off, retry — exercising the retry policy without
   killing the process. *)

module Prng = Acc_util.Prng

exception Crash of { point : string; hit : int }
exception Step_fault

type point = { name : string; mutable hits : int }

(* The registry is append-only and built at module-init time (each owning
   module registers its points at top level), so iteration needs no lock. *)
let registry : point list ref = ref []
let registry_mu = Mutex.create ()

let register name =
  Mutex.lock registry_mu;
  let p =
    match List.find_opt (fun p -> p.name = name) !registry with
    | Some p -> p
    | None ->
        let p = { name; hits = 0 } in
        registry := p :: !registry;
        p
  in
  Mutex.unlock registry_mu;
  p

let registered () = List.rev_map (fun p -> p.name) !registry
let trips p = p.hits

let trips_of name =
  match List.find_opt (fun p -> p.name = name) !registry with
  | Some p -> p.hits
  | None -> invalid_arg ("Fault.trips_of: unknown crash point " ^ name)

type mode =
  | Disarmed
  | At of { point : string; hit : int }
  | Chaos of { g : Prng.t; p : float }

(* [enabled] is the fast path: a plain bool read (no fence needed — arming
   happens before the run starts, on the same thread or before domains
   spawn).  The slow path takes [mu] so chaos-mode PRNG draws and hit
   counting are race-free under the parallel engine. *)
let enabled = ref false
let mode = ref Disarmed
let mu = Mutex.create ()

let step_faults : (Prng.t * float) option ref = ref None

let reset_counters () = List.iter (fun p -> p.hits <- 0) !registry

let disarm () =
  Mutex.lock mu;
  mode := Disarmed;
  step_faults := None;
  enabled := false;
  reset_counters ();
  Mutex.unlock mu

let observe () =
  (* count passages without ever firing: the harness dry-runs a workload
     under [observe] to learn how many times each point trips, then arms a
     spread of those hit counts *)
  Mutex.lock mu;
  reset_counters ();
  mode := Disarmed;
  enabled := true;
  Mutex.unlock mu

let arm ~point ~hit =
  if hit < 1 then invalid_arg "Fault.arm: hit must be >= 1";
  if not (List.exists (fun p -> p.name = point) !registry) then
    invalid_arg ("Fault.arm: unknown crash point " ^ point);
  Mutex.lock mu;
  reset_counters ();
  mode := At { point; hit };
  enabled := true;
  Mutex.unlock mu

let arm_chaos ~seed ~p =
  if p < 0. || p > 1. then invalid_arg "Fault.arm_chaos: p must be in [0,1]";
  Mutex.lock mu;
  reset_counters ();
  mode := Chaos { g = Prng.create ~seed; p };
  enabled := true;
  Mutex.unlock mu

let arm_step_faults ~seed ~p =
  if p < 0. || p > 1. then invalid_arg "Fault.arm_step_faults: p must be in [0,1]";
  Mutex.lock mu;
  step_faults := Some (Prng.create ~seed, p);
  Mutex.unlock mu

let trip point =
  if !enabled then begin
    Mutex.lock mu;
    point.hits <- point.hits + 1;
    let fire =
      match !mode with
      | Disarmed -> false
      | At { point = name; hit } -> point.name = name && point.hits = hit
      | Chaos { g; p } -> Prng.chance g p
    in
    let hit = point.hits in
    Mutex.unlock mu;
    (* raise outside the lock: the handler may inspect the registry *)
    if fire then raise (Crash { point = point.name; hit })
  end

let step_trip () =
  match !step_faults with
  | None -> ()
  | Some (g, p) ->
      Mutex.lock mu;
      let fire = Prng.chance g p in
      Mutex.unlock mu;
      if fire then raise Step_fault

let is_crash = function Crash _ -> true | _ -> false

(* Message-level fault specs for the dist transport.  This module only owns
   the spec (what to inject, how often, from which seed) — the injection
   itself lives in the transport's fault layer, which draws from a PRNG
   seeded here exactly like [arm_chaos] does for crash points.  Kept beside
   the crash-point registry so every fault the test fleet can inject is
   configured through one library and one env-var convention. *)
module Netfault = struct
  type spec = {
    drop : float;  (* message silently discarded *)
    dup : float;  (* message delivered twice *)
    delay : float;  (* message held back for 1-3 later sends *)
    reorder : float;  (* message swapped with the next send *)
    disconnect : float;  (* connection flap: a 1-4 message drop burst *)
    seed : int;
    ops : string list;  (* message kinds faults apply to; [] = all *)
  }

  let none =
    { drop = 0.; dup = 0.; delay = 0.; reorder = 0.; disconnect = 0.; seed = 42; ops = [] }

  let is_none s =
    s.drop = 0. && s.dup = 0. && s.delay = 0. && s.reorder = 0. && s.disconnect = 0.

  let applies s ~op = s.ops = [] || List.mem op s.ops

  let kinds = [ "drop"; "dup"; "delay"; "reorder"; "disconnect" ]

  (* "drop=0.1,dup=0.05,seed=7,ops=decide+prepare"; "all=p" sets every kind *)
  let parse str =
    let check_p k p =
      if p < 0. || p > 1. then
        invalid_arg (Printf.sprintf "Netfault.parse: %s=%g not a probability" k p);
      p
    in
    List.fold_left
      (fun s field ->
        match String.index_opt field '=' with
        | None -> invalid_arg ("Netfault.parse: expected key=value, got " ^ field)
        | Some i -> (
            let k = String.sub field 0 i in
            let v = String.sub field (i + 1) (String.length field - i - 1) in
            let p () = check_p k (float_of_string v) in
            match k with
            | "drop" -> { s with drop = p () }
            | "dup" -> { s with dup = p () }
            | "delay" -> { s with delay = p () }
            | "reorder" -> { s with reorder = p () }
            | "disconnect" -> { s with disconnect = p () }
            | "all" ->
                let p = p () in
                { s with drop = p; dup = p; delay = p; reorder = p; disconnect = p }
            | "seed" -> { s with seed = int_of_string v }
            | "ops" -> { s with ops = String.split_on_char '+' v }
            | _ -> invalid_arg ("Netfault.parse: unknown key " ^ k)))
      none
      (List.filter (fun f -> f <> "") (String.split_on_char ',' str))

  let to_string s =
    let prob k v = if v > 0. then [ Printf.sprintf "%s=%g" k v ] else [] in
    String.concat ","
      (prob "drop" s.drop @ prob "dup" s.dup @ prob "delay" s.delay
      @ prob "reorder" s.reorder
      @ prob "disconnect" s.disconnect
      @ [ Printf.sprintf "seed=%d" s.seed ]
      @ if s.ops = [] then [] else [ "ops=" ^ String.concat "+" s.ops ])

  (* ACC_NETFAULT=spec, same convention as ACC_CRASHPOINT *)
  let of_env () =
    match Sys.getenv_opt "ACC_NETFAULT" with
    | None | Some "" -> None
    | Some spec -> Some (parse spec)
end

(* ACC_CRASHPOINT=point[:hit] | chaos:p[:seed]; ACC_STEP_FAULTS=p[:seed] *)
let configure_from_env () =
  (match Sys.getenv_opt "ACC_CRASHPOINT" with
  | None | Some "" -> ()
  | Some spec -> (
      match String.split_on_char ':' spec with
      | [ "chaos"; p ] -> arm_chaos ~seed:42 ~p:(float_of_string p)
      | [ "chaos"; p; seed ] ->
          arm_chaos ~seed:(int_of_string seed) ~p:(float_of_string p)
      | [ point ] -> arm ~point ~hit:1
      | [ point; hit ] -> arm ~point ~hit:(int_of_string hit)
      | _ -> invalid_arg ("ACC_CRASHPOINT: cannot parse " ^ spec)));
  match Sys.getenv_opt "ACC_STEP_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
      match String.split_on_char ':' spec with
      | [ p ] -> arm_step_faults ~seed:43 ~p:(float_of_string p)
      | [ p; seed ] -> arm_step_faults ~seed:(int_of_string seed) ~p:(float_of_string p)
      | _ -> invalid_arg ("ACC_STEP_FAULTS: cannot parse " ^ spec))
