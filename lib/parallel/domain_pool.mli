val run : domains:int -> (int -> 'a) -> 'a list
(** [run ~domains f] evaluates [f 0 .. f (domains-1)] on [domains] parallel
    execution streams (worker 0 on the calling domain) and returns the
    results in worker order.  Exceptions propagate after all workers have
    been joined. *)
