(** The multicore execution engine: an {!Acc_txn.Executor} whose lock
    backend is a {!Sharded_lock_table}, whose storage accesses are serialized
    by per-table mutexes, whose deadlocks are broken by a background
    {!Deadlock_detector} domain, and whose overload behavior — lock-wait
    deadlines, admission control, degraded mode — is driven by a background
    {!Watchdog} domain (DESIGN.md §13).

    The same transaction code (TPC-C bodies, the ACC runtime, flat 2PL
    runners) runs unchanged: lock waits block the worker domain inside the
    sharded table instead of performing [Wait_lock], victimization surfaces
    as the usual [Txn_effect.Deadlock_victim], and an expired lock-wait
    deadline as [Txn_effect.Lock_timeout]. *)

type t

val create :
  ?shards:int ->
  ?detector_cadence:float ->
  ?cost:Acc_txn.Cost_model.t ->
  ?lock_deadline:float ->
  ?max_inflight:int ->
  ?shed_watermark:float ->
  ?max_bypass:int ->
  ?watchdog_cadence:float ->
  ?degrade_after:float ->
  ?metrics_labels:(string * string) list ->
  ?fast_path:bool ->
  ?wal_policy:Acc_wal.Log.policy ->
  sem:Acc_lock.Mode.semantics ->
  Acc_relation.Database.t ->
  t
(** Builds the engine and starts the detector and watchdog domains; pair
    with {!shutdown}.

    Every engine registers its instruments ([acc_engine_*],
    [acc_watchdog_*], [acc_detector_*]) in {!Acc_obs.Registry.default} under
    [metrics_labels] — multi-engine processes must pass distinct labels (the
    dist driver passes [partition="N"]) or later engines replace earlier
    ones in the exposition.

    [lock_deadline] is a per-request wait budget in seconds (see
    {!Acc_txn.Executor.set_lock_deadline}); omitted disables timeouts.  [max_inflight] caps concurrently admitted multi-step
    transactions ({!try_admit}); [shed_watermark] is the abort rate
    (victims + timeouts per second) above which admissions shed;
    [max_bypass] is the lock tables' bounded-bypass fairness limit;
    [degrade_after] is the oldest-waiter age that trips degraded mode.

    [fast_path] (default [true]) enables the sharded table's lock-free
    uncontended fast path ({!Sharded_lock_table.create}'s [fast]);
    [wal_policy] selects the executor WAL's append policy
    ({!Acc_wal.Log.policy}, default [Direct]) — pass
    [Buffered {cap; group = true}] for group commit. *)

val executor : t -> Acc_txn.Executor.t

val locks : t -> Sharded_lock_table.t
(** The concrete sharded table (shard-level introspection). *)

val lock_service : t -> Acc_lock.Lock_service.t
(** The same table as the executor sees it: a {!Acc_lock.Lock_service.t}. *)

val detector : t -> Deadlock_detector.t
val watchdog : t -> Watchdog.t

val lock_waits : t -> Acc_util.Metrics.Histogram.t
(** Every completed blocking lock wait (granted, victimized or timed out),
    in seconds — the p99 here is the overload bench's headline. *)

val degraded : t -> bool
(** Watchdog's degraded flag: drivers should fall back to the fully isolated
    legacy path while set. *)

val timeout_count : t -> int

(** {1 Admission control} *)

type admission = Admitted | Shed of string
(** [Shed reason]: ["capacity"] (in-flight cap), ["watermark"] (abort-rate
    shedder), or ["degraded"].  Each shed emits a {!Acc_obs.Trace.Shed}
    event. *)

val try_admit : t -> admission
(** Non-blocking token gate, to bracket each multi-step transaction.  On
    [Admitted] the caller must {!finish} exactly once when the transaction
    (including any compensation) is done; on [Shed] nothing was acquired —
    back off (jittered) and retry, or fall back to the legacy path when the
    reason is ["degraded"]. *)

val finish : t -> unit
(** Return an admission token. *)

val inflight : t -> int
val shed_count : t -> int

val shutdown : t -> unit
(** Stop and join the watchdog and detector domains.  Call after worker
    domains have joined (the detector must outlive them: it breaks
    shutdown-time deadlocks; the watchdog likewise resolves in-flight
    deadline expiries). *)

val run_txn :
  ?jitter:Acc_txn.Backoff.Jitter.t -> ?backoff_g:Acc_util.Prng.t -> (unit -> 'r) -> 'r
(** Run a transaction body on the calling domain under the parallel effect
    handler: [Yield] becomes a short sleep — decorrelated-jitter when a
    {!Acc_txn.Backoff.Jitter} state is given (preferred; each worker should
    own one), else capped exponential over a randomized base from
    [backoff_g]; [Wait_lock] raises [Stuck] — it cannot occur with the
    blocking backend. *)
