(** The multicore execution engine: an {!Acc_txn.Executor} whose lock
    backend is a {!Sharded_lock_table}, whose storage accesses are serialized
    by per-table mutexes, and whose deadlocks are broken by a background
    {!Deadlock_detector} domain.

    The same transaction code (TPC-C bodies, the ACC runtime, flat 2PL
    runners) runs unchanged: lock waits block the worker domain inside the
    sharded table instead of performing [Wait_lock], and victimization
    surfaces as the usual [Txn_effect.Deadlock_victim]. *)

type t

val create :
  ?shards:int ->
  ?detector_cadence:float ->
  ?cost:Acc_txn.Cost_model.t ->
  sem:Acc_lock.Mode.semantics ->
  Acc_relation.Database.t ->
  t
(** Builds the engine and starts the detector domain; pair with
    {!shutdown}. *)

val executor : t -> Acc_txn.Executor.t
val locks : t -> Sharded_lock_table.t
val detector : t -> Deadlock_detector.t

val shutdown : t -> unit
(** Stop and join the detector domain.  Call after worker domains have
    joined (the detector must outlive them: it breaks shutdown-time
    deadlocks). *)

val run_txn : ?backoff_g:Acc_util.Prng.t -> (unit -> 'r) -> 'r
(** Run a transaction body on the calling domain under the parallel effect
    handler: [Yield] becomes a short (randomized, when a generator is given)
    sleep; [Wait_lock] raises [Stuck] — it cannot occur with the blocking
    backend. *)
