module Lock_core = Acc_lock.Lock_core
module Lock_service = Acc_lock.Lock_service
module Counter = Acc_util.Metrics.Counter
module Trace = Acc_obs.Trace

(* Periodic background sweep over the global waits-for graph.

   The edge snapshot is assembled shard by shard, so it is not an atomic
   picture of the whole table — but a real deadlock is stable (none of its
   members can make progress), so once formed it appears in full in every
   later snapshot and the sweep finds it.  The converse race — a stale
   snapshot showing a "cycle" some member of which has already been granted —
   can at worst victimize a transaction that would have made progress; the
   victim retries, so this is wasted work, never lost safety.  [kill] only
   cancels waits that still exist at kill time. *)

let sweep locks =
  let edges = Lock_service.wait_edges locks in
  let waiters = List.sort_uniq compare (List.map fst edges) in
  List.fold_left
    (fun killed txn ->
      (* re-snapshot after each kill so one sweep resolves overlapping cycles
         without victimizing transactions a previous kill already unblocked *)
      let edges = if killed = 0 then edges else Lock_service.wait_edges locks in
      match Lock_core.find_cycle ~edges ~from:txn with
      | None -> killed
      | Some cycle ->
          if Trace.enabled () then Trace.emit (Trace.Deadlock_cycle { cycle });
          let victims =
            Lock_core.victim_policy
              ~is_compensating:(fun v -> Lock_service.compensating_waiter locks ~txn:v)
              ~requester:txn ~cycle
          in
          (* §3.4: the requester was spared iff it is compensating and the
             policy shifted the abort onto the transactions delaying it *)
          let spared_compensating = not (List.mem txn victims) in
          List.fold_left
            (fun k v ->
              if Trace.enabled () then
                Trace.emit (Trace.Victim { txn = v; spared_compensating });
              k + Lock_service.kill locks ~txn:v)
            killed victims)
    0 waiters

type t = {
  stop_flag : bool Atomic.t;
  sweeps : Counter.t;
  victims : Counter.t;
  handle : unit Domain.t;
}

let default_cadence = 0.02

let start ?(cadence = default_cadence) locks =
  let stop_flag = Atomic.make false in
  let sweeps = Counter.create () in
  let victims = Counter.create () in
  let handle =
    Domain.spawn (fun () ->
        while not (Atomic.get stop_flag) do
          Unix.sleepf cadence;
          let k = sweep locks in
          Counter.incr sweeps;
          Counter.add victims k
        done)
  in
  { stop_flag; sweeps; victims; handle }

let stop t =
  if not (Atomic.get t.stop_flag) then begin
    Atomic.set t.stop_flag true;
    Domain.join t.handle
  end

let sweeps t = Counter.get t.sweeps
let victims t = Counter.get t.victims
