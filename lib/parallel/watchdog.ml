(* The engine's overload watchdog: one background domain that, every
   [cadence] seconds,

   - drives {!Lock_service.expire} — OCaml's [Condition] has no timed
     wait, so deadlined waiters cannot expire themselves; the sweep is what
     turns a passed deadline into a [Lock_timeout] wakeup — and emits a
     {!Trace.Timed_out} event per withdrawn wait;
   - samples queue depth and oldest-waiter age into gauges;
   - maintains a smoothed abort rate (deadlock victims + lock timeouts per
     second) and raises the shedding flag while it exceeds the watermark;
   - trips degraded mode when the oldest waiter's age says the engine is
     wedged (waits outliving any configured deadline by a wide margin), and
     clears it with hysteresis once the queue drains.

   The flags are plain atomics: the admission gate reads them on every
   admission, the watchdog writes them on its cadence.  Both the shedding and
   degraded transitions use a half-threshold release so a rate or age sitting
   at the watermark cannot flap the flag every tick. *)

module Trace = Acc_obs.Trace
module Metrics = Acc_util.Metrics
module Lock_service = Acc_lock.Lock_service

type t = {
  locks : Lock_service.t;
  detector : Deadlock_detector.t;
  cadence : float;
  degrade_after : float;
  shed_watermark : float option;
  stop_flag : bool Atomic.t;
  degraded_flag : bool Atomic.t;
  shedding_flag : bool Atomic.t;
  queue_depth : Metrics.Gauge.t;
  oldest : Metrics.Gauge.t;
  abort_rate : Metrics.Gauge.t;
  (* single-writer peaks (only the watchdog domain sets them) *)
  peak_depth : Metrics.Gauge.t;
  peak_oldest : Metrics.Gauge.t;
  ticks : int Atomic.t;
  degraded_trips : int Atomic.t;
  mutable dom : unit Domain.t option;
}

let default_cadence = 0.005
let default_degrade_after = 1.0

(* Periodic metrics-snapshot hook ([--metrics-dump]'s refresh): module-level
   and CAS-scheduled so that with N engines (N watchdog domains, e.g. one per
   partition) exactly one domain fires per period — whichever ticks first
   wins the CAS, the rest see the advanced timestamp.  The hook runs on a
   watchdog domain, so it must stay sampling-cheap (a Registry snapshot +
   file write is fine at a ≥100ms period). *)
let snapshot_hook : (float * (unit -> unit)) option Atomic.t = Atomic.make None
let snapshot_last = Atomic.make 0.

let set_snapshot_hook = function
  | None -> Atomic.set snapshot_hook None
  | Some (every, fn) ->
      if not (every > 0.) then invalid_arg "Watchdog.set_snapshot_hook: period <= 0";
      Atomic.set snapshot_last (Unix.gettimeofday ());
      Atomic.set snapshot_hook (Some (every, fn))

let maybe_snapshot ~now =
  match Atomic.get snapshot_hook with
  | None -> ()
  | Some (every, fn) ->
      let last = Atomic.get snapshot_last in
      if now -. last >= every && Atomic.compare_and_set snapshot_last last now then
        try fn () with _ -> ()

(* EMA smoothing per tick: ~0.25s time constant at the default cadence, so a
   burst of victims must persist before the watermark trips. *)
let alpha cadence = Float.min 1. (cadence /. 0.25)

let aborts t = Deadlock_detector.victims t.detector + Lock_service.timeout_count t.locks

let tick t ~prev_aborts ~prev_now =
  let now = Unix.gettimeofday () in
  let expired = Lock_service.expire t.locks ~now in
  if Trace.enabled () then
    List.iter
      (fun (e : Acc_lock.Lock_table.expired) ->
        Trace.emit
          (Trace.Timed_out
             { txn = e.ex_txn; mode = e.ex_mode; resource = e.ex_resource; waited = e.ex_waited }))
      expired;
  let depth = float_of_int (Lock_service.waiter_count t.locks) in
  Metrics.Gauge.set t.queue_depth depth;
  if depth > Metrics.Gauge.get t.peak_depth then Metrics.Gauge.set t.peak_depth depth;
  let oldest = Lock_service.oldest_wait t.locks ~now in
  Metrics.Gauge.set t.oldest oldest;
  if oldest > Metrics.Gauge.get t.peak_oldest then Metrics.Gauge.set t.peak_oldest oldest;
  let total = aborts t in
  let dt = Float.max 1e-6 (now -. prev_now) in
  let inst = float_of_int (total - prev_aborts) /. dt in
  let a = alpha t.cadence in
  let ema = (Metrics.Gauge.get t.abort_rate *. (1. -. a)) +. (inst *. a) in
  Metrics.Gauge.set t.abort_rate ema;
  (match t.shed_watermark with
  | None -> ()
  | Some w ->
      if ema > w then Atomic.set t.shedding_flag true
      else if ema < w /. 2. then Atomic.set t.shedding_flag false);
  (if Atomic.get t.degraded_flag then begin
     if oldest < t.degrade_after /. 2. then begin
       Atomic.set t.degraded_flag false;
       if Trace.enabled () then Trace.emit (Trace.Degraded { on = false; oldest_wait = oldest })
     end
   end
   else if oldest > t.degrade_after then begin
     Atomic.set t.degraded_flag true;
     Atomic.incr t.degraded_trips;
     if Trace.enabled () then Trace.emit (Trace.Degraded { on = true; oldest_wait = oldest })
   end);
  Atomic.incr t.ticks;
  maybe_snapshot ~now;
  (total, now)

let run t () =
  let prev_aborts = ref (aborts t) in
  let prev_now = ref (Unix.gettimeofday ()) in
  while not (Atomic.get t.stop_flag) do
    Unix.sleepf t.cadence;
    let a, n = tick t ~prev_aborts:!prev_aborts ~prev_now:!prev_now in
    prev_aborts := a;
    prev_now := n
  done

let start ?(cadence = default_cadence) ?(degrade_after = default_degrade_after) ?shed_watermark
    ~detector locks =
  let t =
    {
      locks;
      detector;
      cadence;
      degrade_after;
      shed_watermark;
      stop_flag = Atomic.make false;
      degraded_flag = Atomic.make false;
      shedding_flag = Atomic.make false;
      queue_depth = Metrics.Gauge.create ();
      oldest = Metrics.Gauge.create ();
      abort_rate = Metrics.Gauge.create ();
      peak_depth = Metrics.Gauge.create ();
      peak_oldest = Metrics.Gauge.create ();
      ticks = Atomic.make 0;
      degraded_trips = Atomic.make 0;
      dom = None;
    }
  in
  t.dom <- Some (Domain.spawn (run t));
  t

let degraded t = Atomic.get t.degraded_flag
let shedding t = Atomic.get t.shedding_flag
let queue_depth t = int_of_float (Metrics.Gauge.get t.queue_depth)
let oldest_wait t = Metrics.Gauge.get t.oldest
let abort_rate t = Metrics.Gauge.get t.abort_rate
let peak_queue_depth t = int_of_float (Metrics.Gauge.get t.peak_depth)
let peak_oldest_wait t = Metrics.Gauge.get t.peak_oldest
let ticks t = Atomic.get t.ticks
let degraded_trips t = Atomic.get t.degraded_trips

let stop t =
  Atomic.set t.stop_flag true;
  match t.dom with
  | None -> ()
  | Some d ->
      t.dom <- None;
      Domain.join d;
      (* final sweep so deadlines that passed during shutdown still resolve *)
      ignore (Lock_service.expire t.locks ~now:(Unix.gettimeofday ()))
