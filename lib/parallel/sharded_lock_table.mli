(** A thread-safe lock manager for real domains: N shards, each a complete
    sequential {!Acc_lock.Lock_table} behind its own mutex.

    Resources are sharded by {e table name}, so a tuple always co-shards with
    its parent table and every hierarchical check stays inside one shard;
    distinct tables spread across shards and proceed in parallel.

    Two surfaces: a synchronous one mirroring {!Acc_lock.Lock_table} (used by
    the parity property tests and the deadlock detector), and the blocking
    {!acquire_req}/{!acquire_batch} for worker domains (condition-variable
    wait; raises {!Acc_txn.Txn_effect.Deadlock_victim} when victimized by
    {!kill}).  {!service} packages the whole thing as a
    {!Acc_lock.Lock_service.t} — the form the engine and executor consume.

    The blocking surface additionally runs a {e lock-free fast path}
    (DESIGN.md §17): while a shard's lock table is completely empty, tuple
    and table-intention requests CAS-install their grants into per-shard
    fast slots, validated by a per-shard seqlock, without ever touching the
    shard mutex.  Any conflict, slot collision, table-level absolute mode,
    or seqlock movement falls back to the mutex path, after {e migrating}
    the affected fast holds into the lock table so the sequential decision
    logic — {!Acc_lock.Lock_core}, unchanged — sees every hold.  The
    installed observer fires on both paths.

    Tickets returned here are globally unique encodings of per-shard tickets
    ([local * n_shards + shard]). *)

type t

val default_shards : int

val create : ?shards:int -> ?max_bypass:int -> ?fast:bool -> Acc_lock.Mode.semantics -> t
(** Shard clocks are wall-clock time ([Unix.gettimeofday]): deadlines in
    requests passed to {!acquire_req}/{!submit} are absolute wall-clock
    instants.  [max_bypass] is each shard's bounded-bypass fairness limit.
    [fast] (default [true]) enables the lock-free fast path; pass [false]
    to force every operation through the shard mutexes (the parity tests
    compare the two). *)

val n_shards : t -> int

val set_on_wait : t -> (float -> unit) option -> unit
(** Install a recorder called with the duration (seconds) of every completed
    blocking wait — granted, victimized or timed out.  The engine points this
    at its lock-wait histogram.  Called outside the shard mutex. *)

val timeout_count : t -> int
(** Lock waits expired by {!expire} over the table's lifetime. *)

val mutex_acquisitions : t -> int
(** Explicit shard-mutex acquisitions over the table's lifetime: one per
    synchronous operation, one per blocking {!acquire_req} that misses the
    fast path, and one {e per shard group} of an {!acquire_batch} — the
    quantity batching amortizes and the fast path avoids entirely.
    Fast-path installs and shards skipped by the per-transaction activity
    index cost none.  Condition-variable reacquisitions during sleeps are
    not counted. *)

val fast_attempts : t -> int
(** Lock-free fast-path installs attempted (blocking surface only). *)

val fast_hits : t -> int
(** Fast-path installs that validated and stuck; [fast_hits/fast_attempts]
    is the hit rate reported by [bench scale] and gated in CI. *)

val set_observer : t -> (Acc_lock.Lock_table.observation -> unit) option -> unit
(** Install (or clear) one decision observer on every shard.  The observer
    runs under the owning shard's mutex, possibly from several domains at
    once (different shards), so it must be domain-safe, fast, and must not
    call back into the table — {!Acc_obs.Lock_obs.observer} satisfies all
    three. *)

val shard_index : t -> Acc_lock.Resource_id.t -> int

(** {2 Synchronous surface} *)

val submit : t -> Acc_lock.Lock_request.t -> Acc_lock.Lock_table.grant
(** Non-blocking request against the resource's shard; a [Queued] ticket is
    globalized.  (The parity tests drive both tables through this.) *)

val attach_req : t -> Acc_lock.Lock_request.t -> unit
(** Unconditional §3.3 grant on the resource's shard. *)

val attach_batch : t -> Acc_lock.Lock_request.t list -> unit
(** Attach a list of unconditional grants, grouped per shard (caller order
    preserved within a shard), one mutex acquisition per shard touched. *)

val release :
  t -> txn:int -> Acc_lock.Mode.t -> Acc_lock.Resource_id.t -> Acc_lock.Lock_table.wakeup list
(** Wakeups are both returned and published to any blocked acquirers. *)

val release_where :
  t ->
  txn:int ->
  (Acc_lock.Resource_id.t -> Acc_lock.Mode.t -> bool) ->
  Acc_lock.Lock_table.wakeup list

val release_all : t -> txn:int -> Acc_lock.Lock_table.wakeup list
val cancel : t -> ticket:int -> Acc_lock.Lock_table.wakeup list
val outstanding : t -> ticket:int -> bool
val ticket_txn : t -> ticket:int -> int option
val outstanding_tickets : t -> txn:int -> int list

val holders : t -> Acc_lock.Resource_id.t -> (int * Acc_lock.Mode.t * int) list
val held_by : t -> txn:int -> (Acc_lock.Resource_id.t * Acc_lock.Mode.t) list
val waiting_on : t -> txn:int -> Acc_lock.Resource_id.t list
val wait_edges : t -> (int * int) list
val compensating_waiter : t -> txn:int -> bool
val lock_count : t -> int
val waiter_count : t -> int
val entry_count : t -> int

val oldest_wait : t -> now:float -> float
(** Age in seconds of the longest-queued outstanding wait across all shards
    (0 when idle) — the watchdog's wedge signal. *)

val max_bypassed : t -> int
(** Largest bounded-bypass count over outstanding waiters, across shards. *)

val expire : t -> now:float -> Acc_lock.Lock_table.expired list
(** Withdraw every non-compensating wait whose deadline is at or before
    [now], wake the blocked acquirers with [Txn_effect.Lock_timeout], and
    publish the promotions the withdrawals enabled.  Driven periodically by
    the engine's watchdog domain (OCaml's [Condition] has no timed wait, so
    waiters cannot expire themselves).  Returned tickets are globalized. *)

val kill : t -> txn:int -> int
(** Victimize: cancel every outstanding wait of the transaction and wake the
    blocked acquirer with {!Acc_txn.Txn_effect.Deadlock_victim}.  Returns the
    number of waits cancelled (0 if the transaction was not waiting). *)

(** {2 Blocking surface} *)

val acquire_req : t -> Acc_lock.Lock_request.t -> unit
(** Grant, or block the calling domain until granted.  Raises
    [Txn_effect.Deadlock_victim] if {!kill}ed while waiting, and
    [Txn_effect.Lock_timeout] if the wait outlives the request's deadline
    (an absolute wall-clock instant; ignored on compensating requests). *)

val acquire_batch : t -> Acc_lock.Lock_request.t list -> unit
(** Acquire a whole footprint: canonicalize ({!Acc_lock.Lock_request.canonicalize}),
    group per shard preserving the canonical order, and take each shard mutex
    {e once per batch}, submitting the group's requests under the single
    acquisition.  A queued member sleeps on the shard's condition variable and
    the group continues under the reacquired mutex.  On victimization or
    expiry mid-batch the members already granted remain held — the caller's
    abort path releases them, as with locks taken one by one. *)

val pp_state : Format.formatter -> t -> unit

(** {2 The service view} *)

val service : t -> Acc_lock.Lock_service.t
(** The table as a {!Acc_lock.Lock_service.t}: [acquire]/[acquire_batch] are
    the blocking surface above, [expire]/[kill] wake sleepers, counters sum
    across shards.  This is what {!Engine} hands to the executor, the
    deadlock detector and the watchdog. *)
