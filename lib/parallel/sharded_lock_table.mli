(** A thread-safe lock manager for real domains: N shards, each a complete
    sequential {!Acc_lock.Lock_table} behind its own mutex.

    Resources are sharded by {e table name}, so a tuple always co-shards with
    its parent table and every hierarchical check stays inside one shard;
    distinct tables spread across shards and proceed in parallel.

    Two surfaces: a synchronous one mirroring {!Acc_lock.Lock_table} (used by
    the parity property tests and the deadlock detector), and a blocking
    {!acquire} for worker domains (condition-variable wait; raises
    {!Acc_txn.Txn_effect.Deadlock_victim} when victimized by {!kill}).

    Tickets returned here are globally unique encodings of per-shard tickets
    ([local * n_shards + shard]). *)

type t

val default_shards : int

val create : ?shards:int -> Acc_lock.Mode.semantics -> t
val n_shards : t -> int

val set_observer : t -> (Acc_lock.Lock_table.observation -> unit) option -> unit
(** Install (or clear) one decision observer on every shard.  The observer
    runs under the owning shard's mutex, possibly from several domains at
    once (different shards), so it must be domain-safe, fast, and must not
    call back into the table — {!Acc_obs.Lock_obs.observer} satisfies all
    three. *)

val shard_index : t -> Acc_lock.Resource_id.t -> int

(* synchronous surface *)

val request :
  t ->
  txn:int ->
  step_type:int ->
  ?admission:bool ->
  ?compensating:bool ->
  Acc_lock.Mode.t ->
  Acc_lock.Resource_id.t ->
  Acc_lock.Lock_table.grant

val attach :
  t -> txn:int -> step_type:int -> Acc_lock.Mode.t -> Acc_lock.Resource_id.t -> unit

val release :
  t -> txn:int -> Acc_lock.Mode.t -> Acc_lock.Resource_id.t -> Acc_lock.Lock_table.wakeup list
(** Wakeups are both returned and published to any blocked {!acquire}rs. *)

val release_where :
  t ->
  txn:int ->
  (Acc_lock.Resource_id.t -> Acc_lock.Mode.t -> bool) ->
  Acc_lock.Lock_table.wakeup list

val release_all : t -> txn:int -> Acc_lock.Lock_table.wakeup list
val cancel : t -> ticket:int -> Acc_lock.Lock_table.wakeup list
val outstanding : t -> ticket:int -> bool
val ticket_txn : t -> ticket:int -> int option
val outstanding_tickets : t -> txn:int -> int list

val holders : t -> Acc_lock.Resource_id.t -> (int * Acc_lock.Mode.t * int) list
val held_by : t -> txn:int -> (Acc_lock.Resource_id.t * Acc_lock.Mode.t) list
val waiting_on : t -> txn:int -> Acc_lock.Resource_id.t list
val wait_edges : t -> (int * int) list
val compensating_waiter : t -> txn:int -> bool
val lock_count : t -> int
val waiter_count : t -> int
val entry_count : t -> int

val kill : t -> txn:int -> int
(** Victimize: cancel every outstanding wait of the transaction and wake the
    blocked acquirer with {!Acc_txn.Txn_effect.Deadlock_victim}.  Returns the
    number of waits cancelled (0 if the transaction was not waiting). *)

(* blocking surface *)

val acquire :
  t ->
  txn:int ->
  step_type:int ->
  admission:bool ->
  compensating:bool ->
  Acc_lock.Mode.t ->
  Acc_lock.Resource_id.t ->
  unit
(** Grant, or block the calling domain until granted.  Raises
    [Txn_effect.Deadlock_victim] if {!kill}ed while waiting. *)

val pp_state : Format.formatter -> t -> unit
