(* Fork/join over real domains.  Worker 0 runs on the calling domain: with
   [domains = 1] no domain is spawned at all, and with more, the pool uses
   exactly [domains] execution streams. *)
let run ~domains f =
  if domains < 1 then invalid_arg "Domain_pool.run: domains must be >= 1";
  let spawned = Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> f (i + 1))) in
  let first =
    try f 0
    with e ->
      (* still join the others before re-raising: leaked domains outlive the
         exception and corrupt later tests *)
      Array.iter (fun d -> try ignore (Domain.join d) with _ -> ()) spawned;
      raise e
  in
  first :: Array.to_list (Array.map Domain.join spawned)
