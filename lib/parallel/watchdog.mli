(** The engine's overload watchdog domain.

    Periodically drives {!Acc_lock.Lock_service.expire} on the service it is
    given (waiters cannot expire
    themselves — OCaml's [Condition] has no timed wait), emitting a
    {!Acc_obs.Trace.Timed_out} event per withdrawn wait; samples queue depth,
    oldest-waiter age and a smoothed abort rate (deadlock victims + lock
    timeouts per second); and maintains the two flags the engine's admission
    gate reads: {e shedding} while the abort rate exceeds the watermark, and
    {e degraded} while the oldest waiter's age says the engine is wedged.
    Both flags release at half their trip threshold (hysteresis), so a
    metric sitting at the boundary cannot flap the flag every tick.

    See DESIGN.md §13 (Overload behavior). *)

type t

val default_cadence : float
(** 5ms — the resolution of lock-wait deadline enforcement. *)

val default_degrade_after : float
(** 1s of oldest-waiter age before degraded mode trips. *)

val start :
  ?cadence:float ->
  ?degrade_after:float ->
  ?shed_watermark:float ->
  detector:Deadlock_detector.t ->
  Acc_lock.Lock_service.t ->
  t
(** Spawn the watchdog domain.  [shed_watermark] is in aborts/second; when
    omitted the shedding flag never trips.  Pair with {!stop}. *)

val degraded : t -> bool
val shedding : t -> bool

val queue_depth : t -> int
(** Waiter count at the last tick. *)

val oldest_wait : t -> float
(** Oldest-waiter age (seconds) at the last tick. *)

val abort_rate : t -> float
(** Smoothed victims+timeouts per second. *)

val peak_queue_depth : t -> int
val peak_oldest_wait : t -> float
(** Largest values seen at any tick over the watchdog's lifetime. *)

val ticks : t -> int
val degraded_trips : t -> int

val set_snapshot_hook : (float * (unit -> unit)) option -> unit
(** Install (or clear) the process-wide periodic snapshot hook
    [(period_seconds, fn)]: some watchdog domain calls [fn] once per period
    from its tick loop — with several engines alive (one watchdog per
    partition) a CAS on the shared schedule guarantees exactly one firing.
    The binaries' [--metrics-dump] uses this to refresh the Prometheus
    exposition file while a run is in flight; exceptions from [fn] are
    swallowed.  Raises [Invalid_argument] on a non-positive period. *)

val stop : t -> unit
(** Signal, join, and run one final expiry sweep so deadlines passing during
    shutdown still resolve.  Idempotent. *)
