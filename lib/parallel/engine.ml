module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Backoff = Acc_txn.Backoff
module Database = Acc_relation.Database
module Prng = Acc_util.Prng
module Metrics = Acc_util.Metrics
module Trace = Acc_obs.Trace

type t = {
  exec : Executor.t;
  locks : Sharded_lock_table.t;
  detector : Deadlock_detector.t;
  watchdog : Watchdog.t;
  max_inflight : int option;
  inflight : int Atomic.t;
  shed : Metrics.Counter.t;
  lock_waits : Metrics.Histogram.t;
}

(* Every engine publishes its instruments in the process-wide registry; the
   names are stable (DESIGN.md §16) and [metrics_labels] disambiguates
   multi-engine processes (the dist driver labels each partition's engine
   with [partition="N"]).  A single-engine re-run re-registers the same
   (name, labels) pair and simply replaces the dead engine's entry. *)
let register_metrics t labels =
  let reg ?help name v = Acc_obs.Registry.register ?help ~labels name v in
  reg "acc_engine_shed_total" ~help:"admissions refused by the overload gate"
    (Acc_obs.Registry.Counter t.shed);
  reg "acc_engine_lock_wait_seconds" ~help:"blocking lock-acquisition wait time"
    (Acc_obs.Registry.Histogram t.lock_waits);
  reg "acc_engine_inflight" ~help:"multi-step transactions currently admitted"
    (Acc_obs.Registry.Poll_gauge (fun () -> float_of_int (Atomic.get t.inflight)));
  reg "acc_engine_lock_timeouts_total" ~help:"lock waits withdrawn at their deadline"
    (Acc_obs.Registry.Poll_counter (fun () -> Sharded_lock_table.timeout_count t.locks));
  reg "acc_detector_victims_total" ~help:"transactions killed by the deadlock detector"
    (Acc_obs.Registry.Poll_counter (fun () -> Deadlock_detector.victims t.detector));
  reg "acc_watchdog_queue_depth" ~help:"lock waiters at the last watchdog tick"
    (Acc_obs.Registry.Poll_gauge (fun () -> float_of_int (Watchdog.queue_depth t.watchdog)));
  reg "acc_watchdog_oldest_wait_seconds" ~help:"oldest-waiter age at the last tick"
    (Acc_obs.Registry.Poll_gauge (fun () -> Watchdog.oldest_wait t.watchdog));
  reg "acc_watchdog_abort_rate" ~help:"smoothed victims+timeouts per second"
    (Acc_obs.Registry.Poll_gauge (fun () -> Watchdog.abort_rate t.watchdog));
  reg "acc_watchdog_ticks_total" ~help:"watchdog ticks since engine start"
    (Acc_obs.Registry.Poll_counter (fun () -> Watchdog.ticks t.watchdog));
  reg "acc_watchdog_degraded_trips_total" ~help:"times degraded mode tripped"
    (Acc_obs.Registry.Poll_counter (fun () -> Watchdog.degraded_trips t.watchdog))

let create ?shards ?detector_cadence ?cost ?lock_deadline ?max_inflight ?shed_watermark
    ?max_bypass ?watchdog_cadence ?degrade_after ?(metrics_labels = []) ?fast_path
    ?wal_policy ~sem db =
  let locks = Sharded_lock_table.create ?shards ?max_bypass ?fast:fast_path sem in
  let service = Sharded_lock_table.service locks in
  let exec = Executor.create_with ?cost ?wal_policy ~service db in
  Executor.set_lock_deadline exec lock_deadline;
  let lock_waits = Metrics.Histogram.create () in
  Sharded_lock_table.set_on_wait locks (Some (Metrics.Histogram.record lock_waits));
  (* the storage engine (hashtables, ordered indexes) is not structurally
     thread-safe; one mutex per table serializes physical access while the
     lock protocol keeps logical access correct.  The fallback mutex covers
     tables created after the engine (none in practice). *)
  let table_mu = Hashtbl.create 16 in
  List.iter
    (fun name -> Hashtbl.replace table_mu name (Mutex.create ()))
    (Database.table_names db);
  let fallback_mu = Mutex.create () in
  Executor.set_table_wrap exec
    {
      Executor.wrap =
        (fun name f ->
          let mu =
            match Hashtbl.find_opt table_mu name with Some m -> m | None -> fallback_mu
          in
          Mutex.lock mu;
          Fun.protect ~finally:(fun () -> Mutex.unlock mu) f);
    };
  let detector = Deadlock_detector.start ?cadence:detector_cadence service in
  let watchdog =
    Watchdog.start ?cadence:watchdog_cadence ?degrade_after ?shed_watermark ~detector service
  in
  let t =
    {
      exec;
      locks;
      detector;
      watchdog;
      max_inflight;
      inflight = Atomic.make 0;
      shed = Metrics.Counter.create ();
      lock_waits;
    }
  in
  register_metrics t metrics_labels;
  t

let executor t = t.exec
let locks t = t.locks
let lock_service t = Executor.lock_service t.exec
let detector t = t.detector
let watchdog t = t.watchdog
let lock_waits t = t.lock_waits
let degraded t = Watchdog.degraded t.watchdog
let inflight t = Atomic.get t.inflight
let shed_count t = Metrics.Counter.get t.shed
let timeout_count t = Sharded_lock_table.timeout_count t.locks

(* Admission control: a token gate on multi-step transactions.  The cheap
   cap check bounds how many transactions can be mid-protocol at once
   (bounding queue depth and the deadlock search space); the watchdog's
   watermark and degraded flags shed load when aborts spike or the engine
   wedges.  Shedding happens before any lock is requested, so a shed
   transaction costs nothing to retry. *)

type admission = Admitted | Shed of string

let try_admit t =
  let refuse reason =
    Metrics.Counter.incr t.shed;
    if Trace.enabled () then
      Trace.emit (Trace.Shed { inflight = Atomic.get t.inflight; reason });
    Shed reason
  in
  if Watchdog.degraded t.watchdog then refuse "degraded"
  else if Watchdog.shedding t.watchdog then refuse "watermark"
  else
    match t.max_inflight with
    | None ->
        Atomic.incr t.inflight;
        Admitted
    | Some cap ->
        (* optimistic increment, backed out on overshoot: no CAS loop, and a
           transient over-read only refuses an admission it could have made *)
        let n = Atomic.fetch_and_add t.inflight 1 in
        if n >= cap then begin
          Atomic.decr t.inflight;
          refuse "capacity"
        end
        else Admitted

let finish t = Atomic.decr t.inflight

let shutdown t =
  Watchdog.stop t.watchdog;
  Deadlock_detector.stop t.detector

(* Transaction bodies still perform {!Txn_effect.Yield} (deadlock-retry
   backoff points); on a worker domain that becomes a short randomized sleep
   so colliding transactions desynchronize.  A {!Backoff.Jitter} state gives
   the decorrelated schedule; the legacy [backoff_g] path keeps the capped
   exponential with a randomized base.  {!Txn_effect.Wait_lock} must never
   surface here — the custom backend blocks internally. *)
let run_txn : type r. ?jitter:Backoff.Jitter.t -> ?backoff_g:Prng.t -> (unit -> r) -> r =
 fun ?jitter ?backoff_g f ->
  Effect.Deep.match_with f ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Txn_effect.Yield attempt ->
              Some
                (fun (k : (b, r) Effect.Deep.continuation) ->
                  (match jitter with
                  | Some j -> Unix.sleepf (Backoff.Jitter.next j ~attempt)
                  | None ->
                      let base =
                        match backoff_g with
                        | Some g -> 0.0002 +. Prng.exponential g ~mean:0.002
                        | None -> 0.001
                      in
                      (* capped exponential growth with the retry attempt, on
                         top of the randomized base so repeat colliders
                         desync *)
                      Unix.sleepf (base *. Backoff.factor ~attempt ()));
                  Effect.Deep.continue k ())
          | Txn_effect.Wait_lock _ ->
              Some
                (fun (_ : (b, r) Effect.Deep.continuation) ->
                  raise
                    (Txn_effect.Stuck
                       "parallel engine: Wait_lock effect from a blocking lock backend"))
          | _ -> None);
    }
