module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Database = Acc_relation.Database
module Prng = Acc_util.Prng

type t = {
  exec : Executor.t;
  locks : Sharded_lock_table.t;
  detector : Deadlock_detector.t;
}

let lock_ops locks =
  {
    Executor.lo_acquire =
      (fun ~txn ~step_type ~admission ~compensating mode res ->
        Sharded_lock_table.acquire locks ~txn ~step_type ~admission ~compensating mode res);
    lo_attach =
      (fun ~txn ~step_type mode res ->
        Sharded_lock_table.attach locks ~txn ~step_type mode res);
    lo_release =
      (fun ~txn mode res -> ignore (Sharded_lock_table.release locks ~txn mode res));
    lo_release_where =
      (fun ~txn pred -> ignore (Sharded_lock_table.release_where locks ~txn pred));
    lo_release_all = (fun ~txn -> ignore (Sharded_lock_table.release_all locks ~txn));
    lo_held_by = (fun ~txn -> Sharded_lock_table.held_by locks ~txn);
  }

let create ?shards ?detector_cadence ?cost ~sem db =
  let locks = Sharded_lock_table.create ?shards sem in
  let exec = Executor.create_custom ?cost ~lock_ops:(lock_ops locks) db in
  (* the storage engine (hashtables, ordered indexes) is not structurally
     thread-safe; one mutex per table serializes physical access while the
     lock protocol keeps logical access correct.  The fallback mutex covers
     tables created after the engine (none in practice). *)
  let table_mu = Hashtbl.create 16 in
  List.iter
    (fun name -> Hashtbl.replace table_mu name (Mutex.create ()))
    (Database.table_names db);
  let fallback_mu = Mutex.create () in
  Executor.set_table_wrap exec
    {
      Executor.wrap =
        (fun name f ->
          let mu =
            match Hashtbl.find_opt table_mu name with Some m -> m | None -> fallback_mu
          in
          Mutex.lock mu;
          Fun.protect ~finally:(fun () -> Mutex.unlock mu) f);
    };
  let detector = Deadlock_detector.start ?cadence:detector_cadence locks in
  { exec; locks; detector }

let executor t = t.exec
let locks t = t.locks
let detector t = t.detector
let shutdown t = Deadlock_detector.stop t.detector

(* Transaction bodies still perform {!Txn_effect.Yield} (deadlock-retry
   backoff points); on a worker domain that becomes a short randomized sleep
   so colliding transactions desynchronize.  {!Txn_effect.Wait_lock} must
   never surface here — the custom backend blocks internally. *)
let run_txn : type r. ?backoff_g:Prng.t -> (unit -> r) -> r =
 fun ?backoff_g f ->
  Effect.Deep.match_with f ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Txn_effect.Yield attempt ->
              Some
                (fun (k : (b, r) Effect.Deep.continuation) ->
                  let base =
                    match backoff_g with
                    | Some g -> 0.0002 +. Prng.exponential g ~mean:0.002
                    | None -> 0.001
                  in
                  (* capped exponential growth with the retry attempt, on top
                     of the randomized base so repeat colliders desync *)
                  Unix.sleepf (base *. Acc_txn.Backoff.factor ~attempt ());
                  Effect.Deep.continue k ())
          | Txn_effect.Wait_lock _ ->
              Some
                (fun (_ : (b, r) Effect.Deep.continuation) ->
                  raise
                    (Txn_effect.Stuck
                       "parallel engine: Wait_lock effect from a blocking lock backend"))
          | _ -> None);
    }
