(** Background deadlock detection for the sharded lock table.

    Blocking {!Sharded_lock_table.acquire_req} cannot run an at-block cycle
    check the way the sequential schedulers do (it would need a consistent
    global graph while holding one shard's mutex), so a dedicated detector
    domain periodically snapshots the waits-for edges through the
    {!Acc_lock.Lock_service.t} it is given, finds cycles with
    {!Acc_lock.Lock_core.find_cycle}, and applies the paper's §3.4 victim
    policy — never a transaction waiting on behalf of a compensating step.

    Snapshots are per-shard and therefore not globally atomic; real
    deadlocks are stable and always found, while a stale snapshot can at
    worst victimize a transaction that would have progressed (it retries —
    wasted work, never lost safety). *)

type t

val default_cadence : float

val sweep : Acc_lock.Lock_service.t -> int
(** One synchronous detection pass; returns the number of waits victimized.
    Exposed for deterministic tests. *)

val start : ?cadence:float -> Acc_lock.Lock_service.t -> t
(** Spawn the detector domain, sweeping every [cadence] seconds. *)

val stop : t -> unit
(** Signal and join the detector domain.  Idempotent. *)

val sweeps : t -> int
val victims : t -> int
