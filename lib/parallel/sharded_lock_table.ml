module Mode = Acc_lock.Mode
module Resource_id = Acc_lock.Resource_id
module Lock_table = Acc_lock.Lock_table
module Lock_core = Acc_lock.Lock_core
module Lock_request = Acc_lock.Lock_request
module Lock_service = Acc_lock.Lock_service
module Txn_effect = Acc_txn.Txn_effect

(* Each shard is a complete sequential {!Lock_table} behind its own mutex:
   all compatibility, queuing and upgrade logic is the single-threaded code
   path, verbatim, which is what makes the sharded table decision-equivalent
   to the sequential one (property-tested in test/test_parallel.ml).

   The shard key is the {e table name} of the resource, so a tuple always
   lands in the same shard as its parent table: the hierarchical checks
   (intention modes, reach-down of absolute table locks, the child sweep of
   checked table-level assertional requests) and grant promotion never cross
   a shard boundary.  Different tables spread across shards, which is where
   the parallelism comes from — TPC-C's nine tables give nine independent
   hot paths. *)

type shard = {
  mu : Mutex.t;
  cond : Condition.t;
  table : Lock_table.t;
  granted : (int, unit) Hashtbl.t;  (* global tickets granted while waiter slept *)
  victims : (int, unit) Hashtbl.t;  (* global tickets cancelled by the detector *)
  timed_out : (int, unit) Hashtbl.t;  (* global tickets expired by the watchdog *)
}

type t = {
  shards : shard array;
  timeouts : int Atomic.t;  (* lock waits expired over the table's lifetime *)
  mutex_ops : int Atomic.t;
      (* explicit shard-mutex acquisitions (one per synchronous operation, one
         per blocking acquire, one per shard group of a batch) — the quantity
         acquire_batch amortizes.  Condition.wait's internal reacquisitions
         are not counted: they are wakeups, not request round-trips. *)
  mutable on_wait : (float -> unit) option;
      (* called with each completed blocking wait's duration (seconds); the
         engine points this at its lock-wait histogram *)
}

let default_shards = 16

(* OCaml's [Condition] has no timed wait, so deadline expiry cannot be driven
   by the waiter itself: an external sweeper (the engine's watchdog domain)
   calls {!expire} periodically, which cancels overdue waits and broadcasts.
   The shard clock is wall-clock time; deadlines passed to {!acquire} are
   absolute [Unix.gettimeofday] values. *)
let create ?(shards = default_shards) ?max_bypass sem =
  if shards < 1 then invalid_arg "Sharded_lock_table.create: shards must be >= 1";
  {
    shards =
      Array.init shards (fun _ ->
          {
            mu = Mutex.create ();
            cond = Condition.create ();
            table = Lock_table.create ?max_bypass ~clock:Unix.gettimeofday sem;
            granted = Hashtbl.create 16;
            victims = Hashtbl.create 16;
            timed_out = Hashtbl.create 16;
          });
    timeouts = Atomic.make 0;
    mutex_ops = Atomic.make 0;
    on_wait = None;
  }

let set_on_wait t f = t.on_wait <- f
let timeout_count t = Atomic.get t.timeouts
let mutex_acquisitions t = Atomic.get t.mutex_ops

let n_shards t = Array.length t.shards

let lock_shard t s =
  Atomic.incr t.mutex_ops;
  Mutex.lock s.mu

let with_shard t s f =
  lock_shard t s;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mu) f

let set_observer t obs =
  Array.iter (fun s -> with_shard t s (fun () -> Lock_table.set_observer s.table obs)) t.shards

let shard_index t res = Hashtbl.hash (Resource_id.table_of res) mod n_shards t

(* ticket encoding: local tickets are per-shard counters, so globalize as
   [local * n_shards + shard] — unique, and decodable without a map *)
let globalize t idx local = (local * n_shards t) + idx
let ticket_shard t g = g mod n_shards t
let localize t g = g / n_shards t

(* Publish wakeups to sleeping acquirers.  Caller holds [s.mu]. *)
let publish t idx s (wakeups : Lock_table.wakeup list) =
  match wakeups with
  | [] -> []
  | _ ->
      let global =
        List.map
          (fun w ->
            let g = globalize t idx w.Lock_table.woken_ticket in
            Hashtbl.replace s.granted g ();
            { w with Lock_table.woken_ticket = g })
          wakeups
      in
      Condition.broadcast s.cond;
      global

(* --- the synchronous surface (parity tests, detector, introspection) ---- *)

let submit t (r : Lock_request.t) =
  let idx = shard_index t r.Lock_request.resource in
  let s = t.shards.(idx) in
  with_shard t s (fun () ->
      match Lock_table.submit s.table r with
      | Lock_table.Granted -> Lock_table.Granted
      | Lock_table.Queued local -> Lock_table.Queued (globalize t idx local))

let attach_req t (r : Lock_request.t) =
  let s = t.shards.(shard_index t r.Lock_request.resource) in
  with_shard t s (fun () -> Lock_table.attach_req s.table r)

(* Attaches are unconditional, so batching is just per-shard grouping (caller
   order preserved within each shard) under one mutex acquisition each. *)
let attach_batch t reqs =
  match reqs with
  | [] -> ()
  | reqs ->
      let groups = Array.make (n_shards t) [] in
      List.iter
        (fun (r : Lock_request.t) ->
          let idx = shard_index t r.Lock_request.resource in
          groups.(idx) <- r :: groups.(idx))
        reqs;
      Array.iteri
        (fun idx group ->
          match List.rev group with
          | [] -> ()
          | group ->
              let s = t.shards.(idx) in
              with_shard t s (fun () ->
                  List.iter (Lock_table.attach_req s.table) group))
        groups

let release t ~txn mode res =
  let idx = shard_index t res in
  let s = t.shards.(idx) in
  with_shard t s (fun () -> publish t idx s (Lock_table.release s.table ~txn mode res))

let fold_shards t f =
  let acc = ref [] in
  Array.iteri (fun idx s -> acc := !acc @ with_shard t s (fun () -> f idx s)) t.shards;
  !acc

let release_where t ~txn pred =
  fold_shards t (fun idx s -> publish t idx s (Lock_table.release_where s.table ~txn pred))

let release_all t ~txn =
  fold_shards t (fun idx s -> publish t idx s (Lock_table.release_all s.table ~txn))

let cancel t ~ticket =
  let idx = ticket_shard t ticket in
  let s = t.shards.(idx) in
  with_shard t s (fun () ->
      publish t idx s (Lock_table.cancel s.table ~ticket:(localize t ticket)))

let outstanding t ~ticket =
  let s = t.shards.(ticket_shard t ticket) in
  with_shard t s (fun () -> Lock_table.outstanding s.table ~ticket:(localize t ticket))

let ticket_txn t ~ticket =
  let s = t.shards.(ticket_shard t ticket) in
  with_shard t s (fun () -> Lock_table.ticket_txn s.table ~ticket:(localize t ticket))

let outstanding_tickets t ~txn =
  fold_shards t (fun idx s ->
      List.map (globalize t idx) (Lock_table.outstanding_tickets s.table ~txn))

let holders t res =
  let s = t.shards.(shard_index t res) in
  with_shard t s (fun () -> Lock_table.holders s.table res)

let held_by t ~txn = fold_shards t (fun _ s -> Lock_table.held_by s.table ~txn)
let waiting_on t ~txn = fold_shards t (fun _ s -> Lock_table.waiting_on s.table ~txn)
let wait_edges t = fold_shards t (fun _ s -> Lock_table.wait_edges s.table)

let compensating_waiter t ~txn =
  Array.exists
    (fun s -> with_shard t s (fun () -> Lock_table.compensating_waiter s.table ~txn))
    t.shards

let sum_shards t f =
  Array.fold_left (fun acc s -> acc + with_shard t s (fun () -> f s)) 0 t.shards

let lock_count t = sum_shards t (fun s -> Lock_table.lock_count s.table)
let waiter_count t = sum_shards t (fun s -> Lock_table.waiter_count s.table)
let entry_count t = sum_shards t (fun s -> Lock_table.entry_count s.table)

let oldest_wait t ~now =
  Array.fold_left
    (fun acc s ->
      Float.max acc (with_shard t s (fun () -> Lock_table.oldest_wait s.table ~now)))
    0. t.shards

let max_bypassed t =
  Array.fold_left
    (fun acc s -> max acc (with_shard t s (fun () -> Lock_table.max_bypassed s.table)))
    0 t.shards

(* --- deadline expiry (watchdog side) ------------------------------------ *)

(* Withdraw every overdue wait, wake its blocked acquirer with
   [Txn_effect.Lock_timeout], and publish the promotions the withdrawals
   enabled.  Returns the expired requests with globalized tickets. *)
let expire t ~now =
  let all = ref [] in
  Array.iteri
    (fun idx s ->
      with_shard t s (fun () ->
          let expired, wakeups = Lock_table.expire_overdue s.table ~now in
          if expired <> [] then begin
            List.iter
              (fun ex ->
                Hashtbl.replace s.timed_out
                  (globalize t idx ex.Lock_table.ex_ticket)
                  ();
                Atomic.incr t.timeouts)
              expired;
            ignore (publish t idx s wakeups);
            Condition.broadcast s.cond;
            all :=
              List.map
                (fun ex ->
                  { ex with Lock_table.ex_ticket = globalize t idx ex.Lock_table.ex_ticket })
                expired
              @ !all
          end
          else ignore (publish t idx s wakeups)))
    t.shards;
  !all

(* --- victimization (detector side) -------------------------------------- *)

let kill t ~txn =
  let killed = ref 0 in
  Array.iteri
    (fun idx s ->
      with_shard t s (fun () ->
          List.iter
            (fun local ->
              ignore (publish t idx s (Lock_table.cancel s.table ~ticket:local));
              Hashtbl.replace s.victims (globalize t idx local) ();
              incr killed;
              Condition.broadcast s.cond)
            (Lock_table.outstanding_tickets s.table ~txn)))
    t.shards;
  !killed

(* --- the blocking surface (worker domains) ------------------------------ *)

(* Wait until the globalized ticket [g] resolves.  Caller holds [s.mu]; on
   grant control returns with [s.mu] still held (a batch continues with its
   remaining same-shard requests under the same acquisition); on
   victimization or expiry the mutex is released and the usual exception
   raised. *)
let wait_resolved t s g =
  let started = Unix.gettimeofday () in
  let record_wait () =
    match t.on_wait with
    | None -> ()
    | Some f -> f (Unix.gettimeofday () -. started)
  in
  let rec wait () =
    if Hashtbl.mem s.granted g then begin
      Hashtbl.remove s.granted g;
      record_wait ()
    end
    else if Hashtbl.mem s.victims g then begin
      Hashtbl.remove s.victims g;
      Mutex.unlock s.mu;
      record_wait ();
      raise Txn_effect.Deadlock_victim
    end
    else if Hashtbl.mem s.timed_out g then begin
      Hashtbl.remove s.timed_out g;
      Mutex.unlock s.mu;
      record_wait ();
      raise Txn_effect.Lock_timeout
    end
    else begin
      Condition.wait s.cond s.mu;
      wait ()
    end
  in
  wait ()

let acquire_req t (r : Lock_request.t) =
  let idx = shard_index t r.Lock_request.resource in
  let s = t.shards.(idx) in
  lock_shard t s;
  (match Lock_table.submit s.table r with
  | Lock_table.Granted -> ()
  | Lock_table.Queued local -> wait_resolved t s (globalize t idx local));
  Mutex.unlock s.mu

(* Acquire a whole footprint with one mutex round-trip per shard touched.
   The batch is canonicalized first, so any two batches walk their common
   resources in the same global order — no intra-batch deadlock edges — and
   grouping preserves that order within each shard.  A queued member sleeps
   on the shard's condition variable ([Condition.wait] releases and
   reacquires [s.mu]), then the remaining same-shard requests continue under
   the same explicit acquisition.  On victimization or expiry mid-batch the
   already-granted members stay held; the caller's abort path releases them
   like any partially-acquired step. *)
let acquire_batch t reqs =
  match Lock_request.canonicalize reqs with
  | [] -> ()
  | reqs ->
      let groups = Array.make (n_shards t) [] in
      List.iter
        (fun (r : Lock_request.t) ->
          let idx = shard_index t r.Lock_request.resource in
          groups.(idx) <- r :: groups.(idx))
        reqs;
      Array.iteri
        (fun idx group ->
          match List.rev group with
          | [] -> ()
          | group ->
              let s = t.shards.(idx) in
              lock_shard t s;
              (try
                 List.iter
                   (fun r ->
                     match Lock_table.submit s.table r with
                     | Lock_table.Granted -> ()
                     | Lock_table.Queued local -> wait_resolved t s (globalize t idx local))
                   group
               with e ->
                 (* wait_resolved already released the mutex on the raising
                    paths; everything else raises with it held *)
                 (match e with
                 | Txn_effect.Deadlock_victim | Txn_effect.Lock_timeout -> ()
                 | _ -> Mutex.unlock s.mu);
                 raise e);
              Mutex.unlock s.mu)
        groups

let pp_state ppf t =
  Array.iteri
    (fun idx s ->
      with_shard t s (fun () ->
          if Lock_table.entry_count s.table > 0 then
            Format.fprintf ppf "shard %d:@.%a" idx Lock_table.pp_state s.table))
    t.shards

(* --- the LOCK_SERVICE view ---------------------------------------------- *)

let service t : Lock_service.t =
  (module struct
    let backend_name = "sharded"
    let acquire r = acquire_req t r
    let acquire_batch reqs = acquire_batch t reqs
    let attach r = attach_req t r
    let attach_batch reqs = attach_batch t reqs
    let release ~txn mode res = ignore (release t ~txn mode res)
    let release_where ~txn pred = ignore (release_where t ~txn pred)
    let release_all ~txn = ignore (release_all t ~txn)
    let cancel ~ticket = ignore (cancel t ~ticket)
    let outstanding ~ticket = outstanding t ~ticket
    let ticket_txn ~ticket = ticket_txn t ~ticket
    let outstanding_tickets ~txn = outstanding_tickets t ~txn
    let holders res = holders t res
    let held_by ~txn = held_by t ~txn
    let waiting_on ~txn = waiting_on t ~txn
    let wait_edges () = wait_edges t
    let find_cycle ~from = Lock_core.find_cycle ~edges:(wait_edges ()) ~from
    let compensating_waiter ~txn = compensating_waiter t ~txn
    let expire ~now = expire t ~now
    let kill ~txn = kill t ~txn
    let lock_count () = lock_count t
    let waiter_count () = waiter_count t
    let entry_count () = entry_count t
    let oldest_wait ~now = oldest_wait t ~now
    let max_bypassed () = max_bypassed t
    let timeout_count () = timeout_count t
    let mutex_acquisitions () = mutex_acquisitions t
    let set_observer obs = set_observer t obs
    let pp_state ppf () = pp_state ppf t
  end)
