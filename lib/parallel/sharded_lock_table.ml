module Mode = Acc_lock.Mode
module Resource_id = Acc_lock.Resource_id
module Lock_table = Acc_lock.Lock_table
module Lock_core = Acc_lock.Lock_core
module Lock_request = Acc_lock.Lock_request
module Lock_service = Acc_lock.Lock_service
module Txn_effect = Acc_txn.Txn_effect

(* Each shard is a complete sequential {!Lock_table} behind its own mutex:
   all compatibility, queuing and upgrade logic is the single-threaded code
   path, verbatim, which is what makes the sharded table decision-equivalent
   to the sequential one (property-tested in test/test_parallel.ml).

   The shard key is the {e table name} of the resource, so a tuple always
   lands in the same shard as its parent table: the hierarchical checks
   (intention modes, reach-down of absolute table locks, the child sweep of
   checked table-level assertional requests) and grant promotion never cross
   a shard boundary.  Different tables spread across shards, which is where
   the parallelism comes from — TPC-C's nine tables give nine independent
   hot paths.

   On top of the mutex path sits a lock-free {e fast path} (DESIGN.md §17)
   for the uncontended common case.  Uncontended holds live in per-shard
   {e fast slots} — 64 CAS-updated buckets keyed by resource hash — instead
   of the lock table; a fast slot holds the records of exactly one resource.
   A fast install is permitted only while the shard's lock table is
   completely empty ([slow_entries] = 0): any waiter, and any hold that has
   ever been contended, lives in the table, so an empty table means no queue
   to respect, no bypass accounting to update, and no cross-level waiter to
   consult — the grant decision collapses to {!Lock_core.holds_compatible}
   over the resource's slot and the reach-down holds of its parent's slot.

   Validation is a per-shard seqlock: [seq] is odd while a mutex-held
   mutating section ("slow section") is in progress and bumped again on
   exit, after refreshing [slow_entries].  A fast install reads [seq],
   decides, CAS-installs, and re-reads [seq]; if it moved, a slow section
   overlapped the decision window and the install is rolled back (it was
   never acknowledged, so at worst it transiently over-blocked — never
   under-blocks).  Conversely, a slow request {e migrates} the fast holds of
   its resource (and parent, and — for child-sweep requests — the whole
   table) into the lock table before deciding, so the sequential decision
   path sees every hold.  Either the migration's seq bump precedes the fast
   install's recheck (install rolls back) or the CAS precedes the
   migration's drain (the drain imports it): the SC atomics make one of the
   two orders definite. *)

type fhold = { f_txn : int; f_mode : Mode.t; f_step : int; f_count : int }

(* number of fast slots and per-txn activity counters per shard *)
let n_fast = 64

let hold_of_f fh =
  { Lock_core.h_txn = fh.f_txn; h_mode = fh.f_mode; h_step = fh.f_step; h_count = fh.f_count }

type shard = {
  mu : Mutex.t;
  cond : Condition.t;
  table : Lock_table.t;
  granted : (int, unit) Hashtbl.t;  (* global tickets granted while waiter slept *)
  victims : (int, unit) Hashtbl.t;  (* global tickets cancelled by the detector *)
  timed_out : (int, unit) Hashtbl.t;  (* global tickets expired by the watchdog *)
  seq : int Atomic.t;
      (* seqlock: odd while a mutex-held mutating section runs; even and
         stable across a fast path's [read … CAS … recheck] window proves no
         slow section overlapped the decision *)
  slow_entries : int Atomic.t;
      (* snapshot of [Lock_table.entry_count table], refreshed on every slow
         section exit: 0 ⇒ the shard's lock table is empty ⇒ no waiters, no
         contended holds — the fast-install precondition, and the license to
         skip this shard in waiter-directed sweeps (expire/kill/wait_edges) *)
  fast : (Resource_id.t * fhold list) option Atomic.t array;
      (* the fast slots; index = [Resource_id.hash res land (n_fast - 1)];
         a slot holds records of one resource only (collisions go slow) *)
  activity : int Atomic.t array;
      (* per-txn-hash count of hold records and waiters in this shard, fast
         slots and lock table combined (the table side feeds it through
         {!Lock_table.set_activity_hook}); 0 ⇒ the txn has nothing here, so
         release_where/release_all/held_by sweeps skip the shard without
         touching its mutex.  Hash collisions only cause extra visits. *)
}

type t = {
  shards : shard array;
  sem : Mode.semantics;
  use_fast : bool;
  timeouts : int Atomic.t;  (* lock waits expired over the table's lifetime *)
  mutex_ops : int Atomic.t;
      (* explicit shard-mutex acquisitions (one per synchronous operation, one
         per blocking acquire, one per shard group of a batch) — the quantity
         acquire_batch amortizes and the fast path avoids entirely.
         Condition.wait's internal reacquisitions are not counted: they are
         wakeups, not request round-trips. *)
  fast_attempts : int Atomic.t;  (* fast-path installs attempted *)
  fast_hits : int Atomic.t;  (* fast-path installs that stuck *)
  mutable obs : (Lock_table.observation -> unit) option;
      (* the same observer installed on every shard table, kept here so the
         lock-free path can emit grant/attach/release observations without a
         mutex (observers are already called concurrently from different
         shards, so they are domain-safe by contract) *)
  mutable on_wait : (float -> unit) option;
      (* called with each completed blocking wait's duration (seconds); the
         engine points this at its lock-wait histogram *)
}

let default_shards = 16

let txn_slot txn = txn land (n_fast - 1)
let slot_index res = Resource_id.hash res land (n_fast - 1)

(* OCaml's [Condition] has no timed wait, so deadline expiry cannot be driven
   by the waiter itself: an external sweeper (the engine's watchdog domain)
   calls {!expire} periodically, which cancels overdue waits and broadcasts.
   The shard clock is wall-clock time; deadlines passed to {!acquire} are
   absolute [Unix.gettimeofday] values. *)
let create ?(shards = default_shards) ?max_bypass ?(fast = true) sem =
  if shards < 1 then invalid_arg "Sharded_lock_table.create: shards must be >= 1";
  let t =
    {
      shards =
        Array.init shards (fun _ ->
            let activity = Array.init n_fast (fun _ -> Atomic.make 0) in
            let table = Lock_table.create ?max_bypass ~clock:Unix.gettimeofday sem in
            Lock_table.set_activity_hook table
              (Some
                 (fun txn delta ->
                   ignore (Atomic.fetch_and_add activity.(txn_slot txn) delta)));
            {
              mu = Mutex.create ();
              cond = Condition.create ();
              table;
              granted = Hashtbl.create 16;
              victims = Hashtbl.create 16;
              timed_out = Hashtbl.create 16;
              seq = Atomic.make 0;
              slow_entries = Atomic.make 0;
              fast = Array.init n_fast (fun _ -> Atomic.make None);
              activity;
            });
      sem;
      use_fast = fast;
      timeouts = Atomic.make 0;
      mutex_ops = Atomic.make 0;
      fast_attempts = Atomic.make 0;
      fast_hits = Atomic.make 0;
      obs = None;
      on_wait = None;
    }
  in
  t

let set_on_wait t f = t.on_wait <- f
let timeout_count t = Atomic.get t.timeouts
let mutex_acquisitions t = Atomic.get t.mutex_ops
let fast_attempts t = Atomic.get t.fast_attempts
let fast_hits t = Atomic.get t.fast_hits

let n_shards t = Array.length t.shards

(* --- slow sections ------------------------------------------------------ *)

let enter_slow s = Atomic.incr s.seq

let exit_slow s =
  Atomic.set s.slow_entries (Lock_table.entry_count s.table);
  Atomic.incr s.seq

let lock_shard t s =
  Atomic.incr t.mutex_ops;
  Mutex.lock s.mu;
  enter_slow s

let unlock_shard s =
  exit_slow s;
  Mutex.unlock s.mu

let with_shard t s f =
  lock_shard t s;
  Fun.protect ~finally:(fun () -> unlock_shard s) f

let set_observer t obs =
  t.obs <- obs;
  Array.iter (fun s -> with_shard t s (fun () -> Lock_table.set_observer s.table obs)) t.shards

let shard_index t res = Hashtbl.hash (Resource_id.table_of res) mod n_shards t

(* ticket encoding: local tickets are per-shard counters, so globalize as
   [local * n_shards + shard] — unique, and decodable without a map *)
let globalize t idx local = (local * n_shards t) + idx
let ticket_shard t g = g mod n_shards t
let localize t g = g / n_shards t

(* Publish wakeups to sleeping acquirers.  Caller holds [s.mu]. *)
let publish t idx s (wakeups : Lock_table.wakeup list) =
  match wakeups with
  | [] -> []
  | _ ->
      let global =
        List.map
          (fun w ->
            let g = globalize t idx w.Lock_table.woken_ticket in
            Hashtbl.replace s.granted g ();
            { w with Lock_table.woken_ticket = g })
          wakeups
      in
      Condition.broadcast s.cond;
      global

(* --- migration: fast slots → lock table --------------------------------- *)

(* Drain [res]'s fast slot (if it currently homes [res]) into the shard's
   lock table.  Caller holds [s.mu] inside a slow section, so the only CAS
   contention is lock-free installers/releasers — retry until it sticks.
   [import_hold] feeds the activity counter (+1 per record) through the
   table hook before the matching slot-side decrement, so the counter never
   transiently under-counts (a concurrent sweep reading 0 may skip the
   shard). *)
let drain_res s res =
  let slot = s.fast.(slot_index res) in
  let rec loop () =
    match Atomic.get slot with
    | Some (r', fhs) as old when Resource_id.equal r' res ->
        if Atomic.compare_and_set slot old None then
          List.iter
            (fun fh ->
              Lock_table.import_hold s.table ~txn:fh.f_txn ~step_type:fh.f_step
                ~mode:fh.f_mode ~count:fh.f_count res;
              ignore (Atomic.fetch_and_add s.activity.(txn_slot fh.f_txn) (-1)))
            fhs
        else loop ()
    | _ -> ()
  in
  loop ()

(* Bring every hold a slow decision on [r] could consult into the lock
   table: the resource's own slot, the parent table's slot (reach-down
   holds), and — for checked table-level assertional requests — every slot
   homing a tuple of the table (the child sweep). *)
let migrate_for s (r : Lock_request.t) =
  let res = r.Lock_request.resource in
  drain_res s res;
  (match Resource_id.parent res with Some p -> drain_res s p | None -> ());
  if Lock_core.needs_child_sweep res ~mode:r.Lock_request.mode then
    let tname = Resource_id.table_of res in
    Array.iter
      (fun slot ->
        match Atomic.get slot with
        | Some (r', _) when String.equal (Resource_id.table_of r') tname ->
            drain_res s r'
        | _ -> ())
      s.fast

(* --- the lock-free fast path -------------------------------------------- *)

(* Only tuples (any mode) and table intention locks are fast-eligible:
   table-level S/X/A/Comp reach down to tuples (and checked table A requests
   sweep children), so they always take the sequential path — which also
   means a reach-down hold can only ever appear via a slow section, and the
   seqlock recheck catches it racing a fast tuple install. *)
let fast_eligible (r : Lock_request.t) =
  match (r.Lock_request.resource, r.Lock_request.mode) with
  | Resource_id.Tuple _, _ -> true
  | Resource_id.Table _, (Mode.IS | Mode.IX) -> true
  | Resource_id.Table _, _ -> false

let observe t ob = match t.obs with None -> () | Some f -> f ob

let observe_fast_grant t (r : Lock_request.t) ~reentrant ~rel ~requester =
  match t.obs with
  | None -> ()
  | Some f ->
      let txn = r.Lock_request.txn and mode = r.Lock_request.mode in
      let decision =
        if reentrant then
          Lock_table.Dec_granted { past_2pl = 0; reentrant = true; checks = [] }
        else
          Lock_table.Dec_granted
            {
              past_2pl = Lock_core.past_2pl_count rel ~txn ~mode;
              reentrant = false;
              checks = Lock_core.checks_against t.sem rel ~txn ~mode ~requester;
            }
      in
      f
        (Lock_table.Ob_request
           {
             or_txn = txn;
             or_step_type = r.Lock_request.step_type;
             or_mode = mode;
             or_resource = r.Lock_request.resource;
             or_decision = decision;
           })

(* Withdraw a fast install whose validation failed (the seqlock moved across
   the decision window).  The grant was never acknowledged, so until now it
   could only have {e over}-blocked others — which is safe, merely
   pessimistic.  Usually the record is still in the slot (CAS it out); if a
   concurrent slow section already migrated it into the lock table, withdraw
   it there and poke the promotion sweep, since the phantom may have queued
   a waiter behind it. *)
let retreat t idx s res (fh : fhold) =
  let slot = s.fast.(slot_index res) in
  let rec undo () =
    match Atomic.get slot with
    | Some (r', fhs) as old when Resource_id.equal r' res && List.memq fh fhs ->
        let kept = List.filter (fun x -> x != fh) fhs in
        let next = match kept with [] -> None | _ -> Some (res, kept) in
        if Atomic.compare_and_set slot old next then
          ignore (Atomic.fetch_and_add s.activity.(txn_slot fh.f_txn) (-1))
        else undo ()
    | _ ->
        lock_shard t s;
        (try ignore (Lock_table.release s.table ~txn:fh.f_txn fh.f_mode res)
         with Invalid_argument _ -> ());
        ignore
          (publish t idx s
             (Lock_table.promote s.table ~table:(Resource_id.table_of res)));
        unlock_shard s
  in
  undo ()

(* One fast-install attempt.  Returns true iff the request is granted and
   the grant validated; false means "take the mutex path" (no partial state
   is left behind).  The decision itself is {!Lock_core} — the same
   compatibility predicate the sequential table runs — applied to the
   resource's slot plus the parent slot's reach-down holds; the empty-table
   precondition makes those the {e only} holds a sequential decision would
   consult, and queue/fairness checks vacuous. *)
let fast_acquire t idx s (r : Lock_request.t) =
  Atomic.incr t.fast_attempts;
  let res = r.Lock_request.resource
  and txn = r.Lock_request.txn
  and mode = r.Lock_request.mode
  and step_type = r.Lock_request.step_type in
  let seq0 = Atomic.get s.seq in
  if seq0 land 1 <> 0 || Atomic.get s.slow_entries <> 0 then false
  else begin
    let slot = s.fast.(slot_index res) in
    let old = Atomic.get slot in
    match old with
    | Some (r', _) when not (Resource_id.equal r' res) -> false (* collision *)
    | _ -> (
        let here = match old with Some (_, fhs) -> fhs | None -> [] in
        let covering =
          List.find_opt (fun fh -> fh.f_txn = txn && Mode.covers fh.f_mode mode) here
        in
        match covering with
        | Some fh ->
            (* re-entrant grant: bumping our own hold's count is valid
               whatever runs concurrently — CAS success alone proves the
               slot (hence our hold) was untouched, so no seq recheck *)
            let bumped =
              List.map (fun x -> if x == fh then { x with f_count = x.f_count + 1 } else x) here
            in
            if Atomic.compare_and_set slot old (Some (res, bumped)) then begin
              Atomic.incr t.fast_hits;
              observe_fast_grant t r ~reentrant:true ~rel:[]
                ~requester:Mode.{ req_step_type = step_type; req_admission = false };
              true
            end
            else false
        | None -> (
            let parent_ok =
              match Resource_id.parent res with
              | None -> Some []
              | Some p -> (
                  match Atomic.get s.fast.(slot_index p) with
                  | None -> Some []
                  | Some (r', fhs) when Resource_id.equal r' p ->
                      Some
                        (List.filter_map
                           (fun fh ->
                             let h = hold_of_f fh in
                             if Lock_core.reaches_down h then Some h else None)
                           fhs)
                  | Some _ -> None (* parent slot homes another resource *))
            in
            match parent_ok with
            | None -> false
            | Some parent_holds ->
                let rel = List.map hold_of_f here @ parent_holds in
                let requester =
                  Mode.
                    {
                      req_step_type = step_type;
                      req_admission = r.Lock_request.admission;
                    }
                in
                if not (Lock_core.holds_compatible t.sem rel ~txn ~mode ~requester)
                then false
                else begin
                  let fh = { f_txn = txn; f_mode = mode; f_step = step_type; f_count = 1 } in
                  (* count the record before publishing it, so the activity
                     counter never under-counts a visible hold *)
                  ignore (Atomic.fetch_and_add s.activity.(txn_slot txn) 1);
                  if not (Atomic.compare_and_set slot old (Some (res, here @ [ fh ])))
                  then begin
                    ignore (Atomic.fetch_and_add s.activity.(txn_slot txn) (-1));
                    false
                  end
                  else if Atomic.get s.seq = seq0 then begin
                    Atomic.incr t.fast_hits;
                    observe_fast_grant t r ~reentrant:false ~rel ~requester;
                    true
                  end
                  else begin
                    retreat t idx s res fh;
                    false
                  end
                end))
  end

(* Fast unconditional attach.  No validation recheck is needed: an attach is
   granted whatever it coexists with, and any concurrent decision that did
   not see the record simply serializes before it — a legal order for two
   racing operations.  The empty-table precondition keeps the §13 bypass
   accounting exact (no waiter exists to be overtaken). *)
let fast_attach t s (r : Lock_request.t) =
  let res = r.Lock_request.resource
  and txn = r.Lock_request.txn
  and mode = r.Lock_request.mode
  and step_type = r.Lock_request.step_type in
  let seq0 = Atomic.get s.seq in
  if seq0 land 1 <> 0 || Atomic.get s.slow_entries <> 0 then false
  else begin
    let slot = s.fast.(slot_index res) in
    let old = Atomic.get slot in
    match old with
    | Some (r', _) when not (Resource_id.equal r' res) -> false
    | _ -> (
        let here = match old with Some (_, fhs) -> fhs | None -> [] in
        match
          List.find_opt (fun fh -> fh.f_txn = txn && Mode.equal fh.f_mode mode) here
        with
        | Some fh ->
            let bumped =
              List.map (fun x -> if x == fh then { x with f_count = x.f_count + 1 } else x) here
            in
            if Atomic.compare_and_set slot old (Some (res, bumped)) then begin
              observe t
                (Lock_table.Ob_attach
                   { oa_txn = txn; oa_step_type = step_type; oa_mode = mode; oa_resource = res });
              true
            end
            else false
        | None ->
            let fh = { f_txn = txn; f_mode = mode; f_step = step_type; f_count = 1 } in
            ignore (Atomic.fetch_and_add s.activity.(txn_slot txn) 1);
            if Atomic.compare_and_set slot old (Some (res, here @ [ fh ])) then begin
              observe t
                (Lock_table.Ob_attach
                   { oa_txn = txn; oa_step_type = step_type; oa_mode = mode; oa_resource = res });
              true
            end
            else begin
              ignore (Atomic.fetch_and_add s.activity.(txn_slot txn) (-1));
              false
            end)
  end

(* Fast release of one unit of an exactly-matching fast hold.  CAS success
   is decisive: a migration would have drained the slot (failing the CAS),
   so the record really was the live copy.  If a slow section overlapped
   anyway, poke the promotion sweep defensively — cheap, and only possible
   on a rare race. *)
let fast_release t idx s ~txn mode res =
  let slot = s.fast.(slot_index res) in
  let rec go () =
    match Atomic.get slot with
    | Some (r', fhs) as old when Resource_id.equal r' res -> (
        match
          List.find_opt (fun fh -> fh.f_txn = txn && Mode.equal fh.f_mode mode) fhs
        with
        | None -> false
        | Some fh ->
            let seq0 = Atomic.get s.seq in
            let next =
              if fh.f_count > 1 then
                Some
                  ( res,
                    List.map
                      (fun x -> if x == fh then { x with f_count = x.f_count - 1 } else x)
                      fhs )
              else
                match List.filter (fun x -> x != fh) fhs with
                | [] -> None
                | kept -> Some (res, kept)
            in
            if not (Atomic.compare_and_set slot old next) then go ()
            else begin
              if fh.f_count = 1 then begin
                ignore (Atomic.fetch_and_add s.activity.(txn_slot txn) (-1));
                observe t
                  (Lock_table.Ob_release { ol_txn = txn; ol_mode = mode; ol_resource = res })
              end;
              if Atomic.get s.seq <> seq0 then begin
                lock_shard t s;
                ignore
                  (publish t idx s
                     (Lock_table.promote s.table ~table:(Resource_id.table_of res)));
                unlock_shard s
              end;
              true
            end)
    | _ -> false
  in
  go ()

(* Remove every fast record of [txn] accepted by [pred], emitting the
   release observations and activity decrements.  Safe under the shard mutex
   (no migration can race) and safe lock-free (the CAS retries absorb racing
   installers; each record is removed exactly once). *)
let sweep_fast t s ~txn pred =
  Array.iter
    (fun slot ->
      let rec go () =
        match Atomic.get slot with
        | Some (res, fhs) as old ->
            let mine, kept =
              List.partition (fun fh -> fh.f_txn = txn && pred res fh.f_mode) fhs
            in
            if mine <> [] then begin
              let next = match kept with [] -> None | _ -> Some (res, kept) in
              if Atomic.compare_and_set slot old next then
                List.iter
                  (fun fh ->
                    ignore (Atomic.fetch_and_add s.activity.(txn_slot txn) (-1));
                    observe t
                      (Lock_table.Ob_release
                         { ol_txn = txn; ol_mode = fh.f_mode; ol_resource = res }))
                  mine
              else go ()
            end
        | None -> ()
      in
      go ())
    s.fast

(* --- the synchronous surface (parity tests, detector, introspection) ---- *)

let submit t (r : Lock_request.t) =
  let idx = shard_index t r.Lock_request.resource in
  let s = t.shards.(idx) in
  with_shard t s (fun () ->
      migrate_for s r;
      match Lock_table.submit s.table r with
      | Lock_table.Granted -> Lock_table.Granted
      | Lock_table.Queued local -> Lock_table.Queued (globalize t idx local))

let attach_req t (r : Lock_request.t) =
  let s = t.shards.(shard_index t r.Lock_request.resource) in
  if t.use_fast && fast_eligible r && fast_attach t s r then ()
  else with_shard t s (fun () -> Lock_table.attach_req s.table r)

(* Attaches are unconditional, so batching is just per-shard grouping (caller
   order preserved within each shard) under one mutex acquisition each; each
   member first tries the lock-free install. *)
let attach_batch t reqs =
  match reqs with
  | [] -> ()
  | reqs ->
      let groups = Array.make (n_shards t) [] in
      List.iter
        (fun (r : Lock_request.t) ->
          let idx = shard_index t r.Lock_request.resource in
          let s = t.shards.(idx) in
          if not (t.use_fast && fast_eligible r && fast_attach t s r) then
            groups.(idx) <- r :: groups.(idx))
        reqs;
      Array.iteri
        (fun idx group ->
          match List.rev group with
          | [] -> ()
          | group ->
              let s = t.shards.(idx) in
              with_shard t s (fun () ->
                  List.iter (Lock_table.attach_req s.table) group))
        groups

let release t ~txn mode res =
  let idx = shard_index t res in
  let s = t.shards.(idx) in
  if t.use_fast && fast_release t idx s ~txn mode res then []
  else
    with_shard t s (fun () -> publish t idx s (Lock_table.release s.table ~txn mode res))

(* Per-txn sweeps visit only shards whose activity counter says the txn has
   (or may have — collisions over-approximate) records there; a visited
   shard whose lock table is provably untouched across the lock-free slot
   sweep (seqlock stable, no entries) never takes the mutex at all.  If a
   slow section overlapped the lock-free sweep, records may have migrated
   into the table mid-sweep, so the shard is redone under the mutex (each
   record is still released exactly once: the CAS removals and the table op
   partition them). *)
let txn_sweep t ~txn ~pred ~table_op =
  let out = ref [] in
  Array.iteri
    (fun idx s ->
      if Atomic.get s.activity.(txn_slot txn) <> 0 then begin
        let seq0 = Atomic.get s.seq in
        let slow () =
          out :=
            !out
            @ with_shard t s (fun () ->
                  sweep_fast t s ~txn pred;
                  publish t idx s (table_op s))
        in
        if t.use_fast && seq0 land 1 = 0 && Atomic.get s.slow_entries = 0 then begin
          sweep_fast t s ~txn pred;
          if Atomic.get s.seq <> seq0 then slow ()
        end
        else slow ()
      end)
    t.shards;
  !out

let release_where t ~txn pred =
  txn_sweep t ~txn ~pred ~table_op:(fun s -> Lock_table.release_where s.table ~txn pred)

let release_all t ~txn =
  txn_sweep t ~txn
    ~pred:(fun _ _ -> true)
    ~table_op:(fun s -> Lock_table.release_all s.table ~txn)

let cancel t ~ticket =
  let idx = ticket_shard t ticket in
  let s = t.shards.(idx) in
  with_shard t s (fun () ->
      publish t idx s (Lock_table.cancel s.table ~ticket:(localize t ticket)))

let outstanding t ~ticket =
  let s = t.shards.(ticket_shard t ticket) in
  with_shard t s (fun () -> Lock_table.outstanding s.table ~ticket:(localize t ticket))

let ticket_txn t ~ticket =
  let s = t.shards.(ticket_shard t ticket) in
  with_shard t s (fun () -> Lock_table.ticket_txn s.table ~ticket:(localize t ticket))

(* Waiters live only in the lock table (fast installs require an empty one),
   so waiter-directed folds skip shards with no entries; the snapshot is
   refreshed on slow-section exit, so a miss can only last one watchdog or
   detector cadence. *)
let fold_waiter_shards t f =
  let acc = ref [] in
  Array.iteri
    (fun idx s ->
      if Atomic.get s.slow_entries <> 0 || Atomic.get s.seq land 1 <> 0 then
        acc := !acc @ with_shard t s (fun () -> f idx s))
    t.shards;
  !acc

let outstanding_tickets t ~txn =
  let acc = ref [] in
  Array.iteri
    (fun idx s ->
      if Atomic.get s.activity.(txn_slot txn) <> 0 then
        acc :=
          !acc
          @ with_shard t s (fun () ->
                List.map (globalize t idx) (Lock_table.outstanding_tickets s.table ~txn)))
    t.shards;
  !acc

let fast_holders s res =
  match Atomic.get s.fast.(slot_index res) with
  | Some (r', fhs) when Resource_id.equal r' res ->
      List.map (fun fh -> (fh.f_txn, fh.f_mode, fh.f_step)) fhs
  | _ -> []

let holders t res =
  let s = t.shards.(shard_index t res) in
  with_shard t s (fun () -> Lock_table.holders s.table res @ fast_holders s res)

let fast_held_by s ~txn =
  Array.fold_left
    (fun acc slot ->
      match Atomic.get slot with
      | Some (res, fhs) ->
          List.filter_map
            (fun fh -> if fh.f_txn = txn then Some (res, fh.f_mode) else None)
            fhs
          @ acc
      | None -> acc)
    [] s.fast

let held_by t ~txn =
  let acc = ref [] in
  Array.iter
    (fun s ->
      if Atomic.get s.activity.(txn_slot txn) <> 0 then
        acc :=
          !acc
          @ with_shard t s (fun () -> Lock_table.held_by s.table ~txn @ fast_held_by s ~txn))
    t.shards;
  !acc

let waiting_on t ~txn =
  let acc = ref [] in
  Array.iter
    (fun s ->
      if Atomic.get s.activity.(txn_slot txn) <> 0 then
        acc := !acc @ with_shard t s (fun () -> Lock_table.waiting_on s.table ~txn))
    t.shards;
  !acc

let wait_edges t = fold_waiter_shards t (fun _ s -> Lock_table.wait_edges s.table)

let compensating_waiter t ~txn =
  Array.exists
    (fun s ->
      Atomic.get s.activity.(txn_slot txn) <> 0
      && with_shard t s (fun () -> Lock_table.compensating_waiter s.table ~txn))
    t.shards

let sum_shards t f =
  Array.fold_left (fun acc s -> acc + with_shard t s (fun () -> f s)) 0 t.shards

let fast_record_count s =
  Array.fold_left
    (fun acc slot ->
      match Atomic.get slot with Some (_, fhs) -> acc + List.length fhs | None -> acc)
    0 s.fast

let fast_slot_count s =
  Array.fold_left
    (fun acc slot -> match Atomic.get slot with Some _ -> acc + 1 | None -> acc)
    0 s.fast

let lock_count t =
  sum_shards t (fun s -> Lock_table.lock_count s.table)
  + Array.fold_left (fun acc s -> acc + fast_record_count s) 0 t.shards

let waiter_count t = sum_shards t (fun s -> Lock_table.waiter_count s.table)

let entry_count t =
  sum_shards t (fun s -> Lock_table.entry_count s.table)
  + Array.fold_left (fun acc s -> acc + fast_slot_count s) 0 t.shards

let oldest_wait t ~now =
  Array.fold_left
    (fun acc s ->
      if Atomic.get s.slow_entries <> 0 || Atomic.get s.seq land 1 <> 0 then
        Float.max acc (with_shard t s (fun () -> Lock_table.oldest_wait s.table ~now))
      else acc)
    0. t.shards

let max_bypassed t =
  Array.fold_left
    (fun acc s ->
      if Atomic.get s.slow_entries <> 0 || Atomic.get s.seq land 1 <> 0 then
        max acc (with_shard t s (fun () -> Lock_table.max_bypassed s.table))
      else acc)
    0 t.shards

(* --- deadline expiry (watchdog side) ------------------------------------ *)

(* Withdraw every overdue wait, wake its blocked acquirer with
   [Txn_effect.Lock_timeout], and publish the promotions the withdrawals
   enabled.  Returns the expired requests with globalized tickets.  Shards
   with an empty lock table hold no waiters and are skipped without touching
   their mutex. *)
let expire t ~now =
  let all = ref [] in
  Array.iteri
    (fun idx s ->
      if Atomic.get s.slow_entries <> 0 || Atomic.get s.seq land 1 <> 0 then
        with_shard t s (fun () ->
            let expired, wakeups = Lock_table.expire_overdue s.table ~now in
            if expired <> [] then begin
              List.iter
                (fun ex ->
                  Hashtbl.replace s.timed_out
                    (globalize t idx ex.Lock_table.ex_ticket)
                    ();
                  Atomic.incr t.timeouts)
                expired;
              ignore (publish t idx s wakeups);
              Condition.broadcast s.cond;
              all :=
                List.map
                  (fun ex ->
                    { ex with Lock_table.ex_ticket = globalize t idx ex.Lock_table.ex_ticket })
                  expired
                @ !all
            end
            else ignore (publish t idx s wakeups)))
    t.shards;
  !all

(* --- victimization (detector side) -------------------------------------- *)

let kill t ~txn =
  let killed = ref 0 in
  Array.iteri
    (fun idx s ->
      if Atomic.get s.slow_entries <> 0 || Atomic.get s.seq land 1 <> 0 then
        with_shard t s (fun () ->
            List.iter
              (fun local ->
                ignore (publish t idx s (Lock_table.cancel s.table ~ticket:local));
                Hashtbl.replace s.victims (globalize t idx local) ();
                incr killed;
                Condition.broadcast s.cond)
              (Lock_table.outstanding_tickets s.table ~txn)))
    t.shards;
  !killed

(* --- the blocking surface (worker domains) ------------------------------ *)

(* Wait until the globalized ticket [g] resolves.  Caller holds [s.mu]
   inside a slow section; on grant control returns with [s.mu] still held
   and the section re-entered (a batch continues with its remaining
   same-shard requests under the same acquisition); on victimization or
   expiry the section is exited, the mutex released and the usual exception
   raised.  The sleep itself is {e outside} the slow section — the seqlock
   must not stay odd across a block — which is sound because the sleeper's
   queued ticket keeps the lock table non-empty, disabling fast installs
   shard-wide for the duration. *)
let wait_resolved t s g =
  let started = Unix.gettimeofday () in
  let record_wait () =
    match t.on_wait with
    | None -> ()
    | Some f -> f (Unix.gettimeofday () -. started)
  in
  let rec wait () =
    if Hashtbl.mem s.granted g then begin
      Hashtbl.remove s.granted g;
      record_wait ()
    end
    else if Hashtbl.mem s.victims g then begin
      Hashtbl.remove s.victims g;
      unlock_shard s;
      record_wait ();
      raise Txn_effect.Deadlock_victim
    end
    else if Hashtbl.mem s.timed_out g then begin
      Hashtbl.remove s.timed_out g;
      unlock_shard s;
      record_wait ();
      raise Txn_effect.Lock_timeout
    end
    else begin
      exit_slow s;
      Condition.wait s.cond s.mu;
      enter_slow s;
      wait ()
    end
  in
  wait ()

let acquire_req t (r : Lock_request.t) =
  let idx = shard_index t r.Lock_request.resource in
  let s = t.shards.(idx) in
  if t.use_fast && fast_eligible r && fast_acquire t idx s r then ()
  else begin
    lock_shard t s;
    migrate_for s r;
    (match Lock_table.submit s.table r with
    | Lock_table.Granted -> ()
    | Lock_table.Queued local -> wait_resolved t s (globalize t idx local));
    unlock_shard s
  end

(* Acquire a whole footprint with (at most) one mutex round-trip per shard
   touched.  The batch is canonicalized first, so any two batches walk their
   common resources in the same global order — no intra-batch deadlock
   edges — and grouping preserves that order within each shard.  Each shard
   group first runs a lock-free prefix: members install through the fast
   path until the first miss, preserving the shard-then-canonical
   acquisition order (a fast grant never blocks, so the prefix adds no
   wait-for edges); the rest of the group proceeds under the mutex.  A
   queued member sleeps on the shard's condition variable ([Condition.wait]
   releases and reacquires [s.mu]), then the remaining same-shard requests
   continue under the same explicit acquisition.  On victimization or expiry
   mid-batch the already-granted members stay held; the caller's abort path
   releases them like any partially-acquired step. *)
let acquire_batch t reqs =
  match Lock_request.canonicalize reqs with
  | [] -> ()
  | reqs ->
      let groups = Array.make (n_shards t) [] in
      List.iter
        (fun (r : Lock_request.t) ->
          let idx = shard_index t r.Lock_request.resource in
          groups.(idx) <- r :: groups.(idx))
        reqs;
      Array.iteri
        (fun idx group ->
          match List.rev group with
          | [] -> ()
          | group -> (
              let s = t.shards.(idx) in
              let rec fast_prefix = function
                | r :: rest when t.use_fast && fast_eligible r && fast_acquire t idx s r
                  ->
                    fast_prefix rest
                | rest -> rest
              in
              match fast_prefix group with
              | [] -> ()
              | group ->
                  lock_shard t s;
                  (try
                     List.iter
                       (fun r ->
                         migrate_for s r;
                         match Lock_table.submit s.table r with
                         | Lock_table.Granted -> ()
                         | Lock_table.Queued local ->
                             wait_resolved t s (globalize t idx local))
                       group
                   with e ->
                     (* wait_resolved already exited and released on the
                        raising paths; everything else raises with the
                        section open and the mutex held *)
                     (match e with
                     | Txn_effect.Deadlock_victim | Txn_effect.Lock_timeout -> ()
                     | _ -> unlock_shard s);
                     raise e);
                  unlock_shard s))
        groups

let pp_state ppf t =
  Array.iteri
    (fun idx s ->
      with_shard t s (fun () ->
          if Lock_table.entry_count s.table > 0 then
            Format.fprintf ppf "shard %d:@.%a" idx Lock_table.pp_state s.table;
          Array.iter
            (fun slot ->
              match Atomic.get slot with
              | Some (res, fhs) ->
                  Format.fprintf ppf "shard %d fast %a:" idx Resource_id.pp res;
                  List.iter
                    (fun fh ->
                      Format.fprintf ppf " T%d:%a(x%d)" fh.f_txn Mode.pp fh.f_mode fh.f_count)
                    fhs;
                  Format.fprintf ppf "@."
              | None -> ())
            s.fast))
    t.shards

(* --- the LOCK_SERVICE view ---------------------------------------------- *)

let service t : Lock_service.t =
  (module struct
    let backend_name = "sharded"
    let acquire r = acquire_req t r
    let acquire_batch reqs = acquire_batch t reqs
    let attach r = attach_req t r
    let attach_batch reqs = attach_batch t reqs
    let release ~txn mode res = ignore (release t ~txn mode res)
    let release_where ~txn pred = ignore (release_where t ~txn pred)
    let release_all ~txn = ignore (release_all t ~txn)
    let cancel ~ticket = ignore (cancel t ~ticket)
    let outstanding ~ticket = outstanding t ~ticket
    let ticket_txn ~ticket = ticket_txn t ~ticket
    let outstanding_tickets ~txn = outstanding_tickets t ~txn
    let holders res = holders t res
    let held_by ~txn = held_by t ~txn
    let waiting_on ~txn = waiting_on t ~txn
    let wait_edges () = wait_edges t
    let find_cycle ~from = Lock_core.find_cycle ~edges:(wait_edges ()) ~from
    let compensating_waiter ~txn = compensating_waiter t ~txn
    let expire ~now = expire t ~now
    let kill ~txn = kill t ~txn
    let lock_count () = lock_count t
    let waiter_count () = waiter_count t
    let entry_count () = entry_count t
    let oldest_wait ~now = oldest_wait t ~now
    let max_bypassed () = max_bypassed t
    let timeout_count () = timeout_count t
    let mutex_acquisitions () = mutex_acquisitions t
    let fast_attempts () = fast_attempts t
    let fast_hits () = fast_hits t
    let set_observer obs = set_observer t obs
    let pp_state ppf () = pp_state ppf t
  end)
