(* A process-wide metric registry: every counter/gauge/histogram in the
   system registers under a stable Prometheus-style name so one snapshot
   call can see them all (the Prom exposition, the watchdog's periodic dump,
   the binaries' --metrics-dump).

   Registration is rare (engine/coordinator construction) and snapshots are
   sampling-path, so a single mutex guards the table; the hot paths stay the
   metrics' own lock-free operations — the registry only holds references.

   Per-run metrics re-register on every engine construction, so a second
   register under the same (name, labels) replaces the first rather than
   erroring: the live run's metrics win. *)

module Metrics = Acc_util.Metrics

type value =
  | Counter of Metrics.Counter.t
  | Gauge of Metrics.Gauge.t
  | Histogram of Metrics.Histogram.t
  | Poll_counter of (unit -> int)
      (* adapts pre-registry counters (raw [int Atomic.t]s, accounting
         arrays) without refactoring their owners *)
  | Poll_gauge of (unit -> float)

type metric = {
  name : string;
  help : string;
  labels : (string * string) list;
  value : value;
}

type t = { mu : Mutex.t; mutable metrics : metric list (* newest first *) }

let create () = { mu = Mutex.create (); metrics = [] }
let default = create ()

let name_ok s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let label_ok s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let register ?(registry = default) ?(help = "") ?(labels = []) name value =
  if not (name_ok name) then invalid_arg ("Registry.register: bad metric name " ^ name);
  List.iter
    (fun (k, _) ->
      if not (label_ok k) then
        invalid_arg ("Registry.register: bad label name " ^ k ^ " on " ^ name))
    labels;
  let labels = canon_labels labels in
  Mutex.lock registry.mu;
  registry.metrics <-
    { name; help; labels; value }
    :: List.filter
         (fun m -> not (m.name = name && m.labels = labels))
         registry.metrics;
  Mutex.unlock registry.mu

let clear ?(registry = default) () =
  Mutex.lock registry.mu;
  registry.metrics <- [];
  Mutex.unlock registry.mu

type sample =
  | S_counter of int
  | S_gauge of float
  | S_histogram of Metrics.Histogram.Snapshot.t

type row = {
  r_name : string;
  r_help : string;
  r_labels : (string * string) list;
  r_sample : sample;
}

let sample_of = function
  | Counter c -> S_counter (Metrics.Counter.get c)
  | Gauge g -> S_gauge (Metrics.Gauge.get g)
  | Histogram h -> S_histogram (Metrics.Histogram.snapshot h)
  | Poll_counter f -> S_counter (f ())
  | Poll_gauge f -> S_gauge (f ())

let snapshot ?(registry = default) () =
  Mutex.lock registry.mu;
  let metrics = registry.metrics in
  Mutex.unlock registry.mu;
  (* sample outside the lock: pollers may do their own locking *)
  metrics
  |> List.map (fun m ->
         { r_name = m.name; r_help = m.help; r_labels = m.labels; r_sample = sample_of m.value })
  |> List.sort (fun a b ->
         match String.compare a.r_name b.r_name with
         | 0 -> compare a.r_labels b.r_labels
         | c -> c)

let size ?(registry = default) () =
  Mutex.lock registry.mu;
  let n = List.length registry.metrics in
  Mutex.unlock registry.mu;
  n
