(** A process-wide metric registry.

    Every counter, gauge and histogram in the system registers here under a
    stable Prometheus-style name (DESIGN.md §16 has the naming scheme:
    [acc_engine_*], [acc_watchdog_*], [acc_coordinator_*], …) so one
    {!snapshot} sees them all — the {!Prom} exposition, the watchdog's
    periodic dump hook and the binaries' [--metrics-dump] all read from it.

    The registry holds {e references}; the hot paths remain the metrics' own
    lock-free operations.  Registration is construction-time and snapshots
    are sampling-path, so a mutex guards the table.  Registering an existing
    [(name, labels)] pair {e replaces} it — per-run metrics re-register on
    every engine construction and the live run wins. *)

module Metrics := Acc_util.Metrics

type value =
  | Counter of Metrics.Counter.t
  | Gauge of Metrics.Gauge.t
  | Histogram of Metrics.Histogram.t
  | Poll_counter of (unit -> int)
      (** adapts pre-registry counters (raw [Atomic.t]s, accounting arrays)
          without refactoring their owners; sampled at snapshot time *)
  | Poll_gauge of (unit -> float)

type t

val create : unit -> t

val default : t
(** The process-wide registry everything registers into by default. *)

val register :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> string -> value -> unit
(** [register name value].  Raises [Invalid_argument] on a name outside
    [[a-zA-Z_:][a-zA-Z0-9_:]*] or a label name outside
    [[a-zA-Z_][a-zA-Z0-9_]*].  Labels are stored sorted by key. *)

val clear : ?registry:t -> unit -> unit

(** {1 Snapshots} *)

type sample =
  | S_counter of int
  | S_gauge of float
  | S_histogram of Metrics.Histogram.Snapshot.t

type row = {
  r_name : string;
  r_help : string;
  r_labels : (string * string) list;
  r_sample : sample;
}

val snapshot : ?registry:t -> unit -> row list
(** Sample every registered metric, sorted by [(name, labels)].  Histogram
    rows carry internally-consistent {!Metrics.Histogram.Snapshot}s.
    Pollers run outside the registry lock. *)

val size : ?registry:t -> unit -> int
