(* Span reconstruction: fold a timestamp-ordered event stream into one span
   per transaction, attributing wall time to disjoint phases.

   The phase taxonomy (DESIGN.md §16):

     lock_wait     every Lock_block → (Lock_wake | Timed_out) interval
     execute       Step_begin → Step_end of non-compensating steps, minus the
                   lock_wait and wal_append time that fell inside the step
     wal_append    the [dur] carried by each Wal_append event
     prepare_hold  Prepare(txn,gid) → Decide(gid) — the 2PC in-doubt window,
                   the cost the assertional-lock-across-prepare design bets on
     decide        Decide(gid) → the branch's end event — applying the
                   decision (commit/compensation dispatch tail)
     compensate    Comp_run → Step_end of compensating steps, minus inner
                   lock_wait/wal, plus the abort dispatch tail

   The intervals are disjoint by construction (a step cannot end while its
   transaction is blocked; the prepare window opens after the last step's
   end), so the phase durations of a closed span sum to at most its wall
   time — the qcheck property in test_span.ml.

   Events are correlated by txn id; Decide events carry only a gid, so the
   builder keeps a gid → txns index populated by Prepare events.  Partition
   attribution rides on the per-partition txn-id bands of
   {!Acc_dist.Partition} (txn / band = partition id). *)

type phase = Lock_wait | Execute | Wal_append | Prepare_hold | Decide | Compensate

let all_phases = [ Lock_wait; Execute; Wal_append; Prepare_hold; Decide; Compensate ]

let phase_name = function
  | Lock_wait -> "lock_wait"
  | Execute -> "execute"
  | Wal_append -> "wal_append"
  | Prepare_hold -> "prepare_hold"
  | Decide -> "decide"
  | Compensate -> "compensate"

let phase_index = function
  | Lock_wait -> 0
  | Execute -> 1
  | Wal_append -> 2
  | Prepare_hold -> 3
  | Decide -> 4
  | Compensate -> 5

let n_phases = 6

let phase_of_index = function
  | 0 -> Lock_wait
  | 1 -> Execute
  | 2 -> Wal_append
  | 3 -> Prepare_hold
  | 4 -> Decide
  | 5 -> Compensate
  | _ -> invalid_arg "Span.phase_of_index"

type outcome = Committed | Aborted of { compensated : bool } | Open

type t = {
  sp_txn : int;
  sp_txn_type : string;
  sp_dom : int;
  sp_gid : int option;
  sp_begin : float;
  sp_end : float option;
  sp_outcome : outcome;
  sp_phases : (phase * float) list;  (* all six phases, zeros included *)
  sp_open_phase : phase option;
      (* the phase left open: always set for Open spans that died inside a
         phase; set on a closed span only when its prepare window was never
         resolved by a Decide/Resolve (a protocol-order violation) *)
}

let wall t = Option.map (fun e -> e -. t.sp_begin) t.sp_end
let phase t p = List.assoc p t.sp_phases
let complete t = t.sp_end <> None && t.sp_open_phase = None

(* ---------- the builder --------------------------------------------------- *)

(* The event subset spans care about, already stripped of lock modes,
   resources and step types — both front-ends (live Trace.event values and
   parsed JSONL lines) normalize to this. *)
type sev =
  | E_begin of string  (* txn_type *)
  | E_commit
  | E_abort of bool  (* compensated *)
  | E_step_begin
  | E_step_end
  | E_comp_run
  | E_block
  | E_unblock  (* lock_wake or timed_out *)
  | E_wal of float  (* dur *)
  | E_prepare of int  (* gid *)
  | E_decide of int  (* gid; txn field is meaningless *)
  | E_resolve of int  (* gid *)

module Builder = struct
  type state = {
    st_begin : float;
    mutable st_txn_type : string;
    mutable st_dom : int;
    mutable st_gid : int option;
    acc : float array;  (* per-phase accumulators, indexed by phase_index *)
    mutable step_open : (float * bool * float) option;
        (* (open ts, compensating, lock_wait+wal accumulated at open) *)
    mutable block_open : float option;
    mutable prep_open : float option;
    mutable decide_open : float option;
  }

  type b = {
    states : (int, state) Hashtbl.t;
    by_gid : (int, int list ref) Hashtbl.t;  (* gid -> prepared txns *)
    mutable done_ : t list;  (* finalized spans, newest first *)
    mutable orphans : int;
    mutable orphan_sample : (int * string) list;  (* (txn, event), first few *)
    mutable last_ts : float;
  }

  let create () =
    {
      states = Hashtbl.create 256;
      by_gid = Hashtbl.create 64;
      done_ = [];
      orphans = 0;
      orphan_sample = [];
      last_ts = 0.;
    }

  let inner st = st.acc.(phase_index Lock_wait) +. st.acc.(phase_index Wal_append)

  let close_block st ts =
    match st.block_open with
    | None -> ()
    | Some t0 ->
        st.acc.(phase_index Lock_wait) <- st.acc.(phase_index Lock_wait) +. (ts -. t0);
        st.block_open <- None

  let close_step st ts =
    match st.step_open with
    | None -> ()
    | Some (t0, comp, inner0) ->
        let raw = ts -. t0 in
        let charged = Float.max 0. (raw -. (inner st -. inner0)) in
        let p = if comp then Compensate else Execute in
        st.acc.(phase_index p) <- st.acc.(phase_index p) +. charged;
        st.step_open <- None

  (* A span that ends with its prepare window still open never saw the
     decision event: charge the whole in-doubt window to prepare_hold and
     flag the span incomplete (sp_open_phase = Prepare_hold). *)
  let close_prepare st ts =
    match st.prep_open with
    | None -> false
    | Some t0 ->
        st.acc.(phase_index Prepare_hold) <-
          st.acc.(phase_index Prepare_hold) +. (ts -. t0);
        st.prep_open <- None;
        true

  let phases_of st = List.map (fun p -> (p, st.acc.(phase_index p))) all_phases

  let finalize b txn st ~ts ~outcome =
    Hashtbl.remove b.states txn;
    let ended, open_phase =
      match outcome with
      | Open ->
          (* crash-truncated: report what was mid-flight at the cut *)
          let op =
            match (st.step_open, st.block_open, st.prep_open, st.decide_open) with
            | Some (_, comp, _), _, _, _ -> Some (if comp then Compensate else Execute)
            | None, Some _, _, _ -> Some Lock_wait
            | None, None, Some _, _ -> Some Prepare_hold
            | None, None, None, Some _ -> Some Decide
            | None, None, None, None -> None
          in
          (None, op)
      | Committed | Aborted _ ->
          close_block st ts;
          close_step st ts;
          let dangling = close_prepare st ts in
          (match st.decide_open with
          | Some d ->
              st.acc.(phase_index Decide) <- st.acc.(phase_index Decide) +. (ts -. d);
              st.decide_open <- None
          | None -> ());
          (Some ts, if dangling then Some Prepare_hold else None)
    in
    b.done_ <-
      {
        sp_txn = txn;
        sp_txn_type = st.st_txn_type;
        sp_dom = st.st_dom;
        sp_gid = st.st_gid;
        sp_begin = st.st_begin;
        sp_end = ended;
        sp_outcome = outcome;
        sp_phases = phases_of st;
        sp_open_phase = open_phase;
      }
      :: b.done_

  let orphan b txn ev =
    b.orphans <- b.orphans + 1;
    if List.length b.orphan_sample < 8 then
      b.orphan_sample <- b.orphan_sample @ [ (txn, ev) ]

  let decide_for b gid ts =
    match Hashtbl.find_opt b.by_gid gid with
    | None -> ()
    | Some txns ->
        List.iter
          (fun txn ->
            match Hashtbl.find_opt b.states txn with
            | None -> ()
            | Some st ->
                (match st.prep_open with
                | Some t0 ->
                    st.acc.(phase_index Prepare_hold) <-
                      st.acc.(phase_index Prepare_hold) +. (ts -. t0);
                    st.prep_open <- None
                | None -> ());
                if st.decide_open = None then st.decide_open <- Some ts)
          !txns

  let feed b ~ts ~dom ~txn ev =
    b.last_ts <- Float.max b.last_ts ts;
    let state orphan_name =
      match Hashtbl.find_opt b.states txn with
      | Some st -> Some st
      | None ->
          orphan b txn orphan_name;
          None
    in
    match ev with
    | E_begin txn_type ->
        (* a second begin for a live txn id means the first span was cut
           (crash + recovery re-adoption within one trace): close it open *)
        (match Hashtbl.find_opt b.states txn with
        | Some st -> finalize b txn st ~ts ~outcome:Open
        | None -> ());
        Hashtbl.replace b.states txn
          {
            st_begin = ts;
            st_txn_type = txn_type;
            st_dom = dom;
            st_gid = None;
            acc = Array.make n_phases 0.;
            step_open = None;
            block_open = None;
            prep_open = None;
            decide_open = None;
          }
    | E_commit -> (
        match state "txn_commit" with
        | Some st -> finalize b txn st ~ts ~outcome:Committed
        | None -> ())
    | E_abort compensated -> (
        match state "txn_abort" with
        | Some st -> finalize b txn st ~ts ~outcome:(Aborted { compensated })
        | None -> ())
    | E_step_begin -> (
        match state "step_begin" with
        | Some st ->
            close_step st ts;
            st.step_open <- Some (ts, false, inner st)
        | None -> ())
    | E_comp_run -> (
        match state "comp_run" with
        | Some st ->
            close_step st ts;
            st.step_open <- Some (ts, true, inner st)
        | None -> ())
    | E_step_end -> (
        match state "step_end" with Some st -> close_step st ts | None -> ())
    | E_block -> (
        match Hashtbl.find_opt b.states txn with
        | Some st -> if st.block_open = None then st.block_open <- Some ts
        | None -> ())
    | E_unblock -> (
        match Hashtbl.find_opt b.states txn with
        | Some st -> close_block st ts
        | None -> ())
    | E_wal dur -> (
        match Hashtbl.find_opt b.states txn with
        | Some st ->
            st.acc.(phase_index Wal_append) <- st.acc.(phase_index Wal_append) +. dur
        | None -> ())
    | E_prepare gid -> (
        match state "prepare" with
        | Some st ->
            st.st_gid <- Some gid;
            st.prep_open <- Some ts;
            let txns =
              match Hashtbl.find_opt b.by_gid gid with
              | Some l -> l
              | None ->
                  let l = ref [] in
                  Hashtbl.replace b.by_gid gid l;
                  l
            in
            txns := txn :: !txns
        | None -> ())
    | E_decide gid -> decide_for b gid ts
    | E_resolve gid -> (
        (* recovery learned the decision for an adopted in-doubt branch *)
        match Hashtbl.find_opt b.states txn with
        | None -> ()
        | Some st ->
            st.st_gid <- Some gid;
            ignore
              (match st.prep_open with
              | Some t0 ->
                  st.acc.(phase_index Prepare_hold) <-
                    st.acc.(phase_index Prepare_hold) +. (ts -. t0);
                  st.prep_open <- None;
                  true
              | None -> false);
            if st.decide_open = None then st.decide_open <- Some ts)

  let feed_event b ~ts ~dom (ev : Trace.event) =
    match ev with
    | Trace.Txn_begin { txn; txn_type } -> feed b ~ts ~dom ~txn (E_begin txn_type)
    | Trace.Txn_commit { txn } -> feed b ~ts ~dom ~txn E_commit
    | Trace.Txn_abort { txn; compensated } -> feed b ~ts ~dom ~txn (E_abort compensated)
    | Trace.Step_begin { txn; _ } -> feed b ~ts ~dom ~txn E_step_begin
    | Trace.Step_end { txn; _ } -> feed b ~ts ~dom ~txn E_step_end
    | Trace.Comp_run { txn; _ } -> feed b ~ts ~dom ~txn E_comp_run
    | Trace.Lock_block { txn; _ } -> feed b ~ts ~dom ~txn E_block
    | Trace.Lock_wake { txn; _ } | Trace.Timed_out { txn; _ } ->
        feed b ~ts ~dom ~txn E_unblock
    | Trace.Wal_append { txn; dur; _ } -> feed b ~ts ~dom ~txn (E_wal dur)
    | Trace.Prepare { txn; gid } -> feed b ~ts ~dom ~txn (E_prepare gid)
    | Trace.Decide { gid; _ } -> feed b ~ts ~dom ~txn:(-1) (E_decide gid)
    | Trace.Resolve { txn; gid; _ } -> feed b ~ts ~dom ~txn (E_resolve gid)
    | Trace.Lock_request _ | Trace.Lock_grant _ | Trace.Batch_acquired _
    | Trace.Lock_release _ | Trace.Lock_attach _ | Trace.Lock_cancel _
    | Trace.Assertion_check _ | Trace.Deadlock_cycle _ | Trace.Victim _
    | Trace.Wal_flush _ | Trace.Shed _ | Trace.Degraded _ | Trace.Net_fault _
    | Trace.Rpc_retry _ ->
        ()

  (* One parsed JSONL trace line (see {!Trace.to_json}); unknown events and
     the trace_summary trailer are ignored, so a whole file can be streamed
     through without pre-filtering. *)
  let feed_json b json =
    let str name = Option.bind (Json.member name json) Json.to_str in
    let int name = Option.bind (Json.member name json) Json.to_int in
    let num name =
      match Json.member name json with
      | Some (Json.Float f) -> Some f
      | Some (Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    let bool name =
      match Json.member name json with Some (Json.Bool v) -> Some v | _ -> None
    in
    match (str "ev", num "ts") with
    | None, _ | _, None -> ()
    | Some ev, Some ts -> (
        let dom = Option.value ~default:0 (int "dom") in
        let txn = Option.value ~default:(-1) (int "txn") in
        let go sev = feed b ~ts ~dom ~txn sev in
        match ev with
        | "txn_begin" -> go (E_begin (Option.value ~default:"?" (str "type")))
        | "txn_commit" -> go E_commit
        | "txn_abort" -> go (E_abort (Option.value ~default:false (bool "compensated")))
        | "step_begin" -> go E_step_begin
        | "step_end" -> go E_step_end
        | "comp_run" -> go E_comp_run
        | "lock_block" -> go E_block
        | "lock_wake" | "timed_out" -> go E_unblock
        | "wal_append" -> go (E_wal (Option.value ~default:0. (num "dur")))
        | "prepare" -> (
            match int "gid" with Some gid -> go (E_prepare gid) | None -> ())
        | "decide" -> (
            match int "gid" with Some gid -> go (E_decide gid) | None -> ())
        | "resolve" -> (
            match int "gid" with Some gid -> go (E_resolve gid) | None -> ())
        | _ -> ())

  let orphans b = b.orphans
  let orphan_sample b = b.orphan_sample

  let finish b =
    (* everything still live is an open (crash-truncated) span *)
    let live = Hashtbl.fold (fun txn st acc -> (txn, st) :: acc) b.states [] in
    List.iter (fun (txn, st) -> finalize b txn st ~ts:b.last_ts ~outcome:Open) live;
    List.rev b.done_
end

let of_entries (entries : Trace.entry list) =
  let b = Builder.create () in
  List.iter (fun (e : Trace.entry) -> Builder.feed_event b ~ts:e.Trace.ts ~dom:e.Trace.dom e.Trace.ev) entries;
  Builder.finish b

let of_dump (dump : Trace.dump) = of_entries dump.Trace.events

(* ---------- the report ---------------------------------------------------- *)

module Report = struct
  module H = Acc_util.Metrics.Histogram

  (* histogram + exact max: the histogram gives the quantiles, the max keeps
     the tail honest past bucket resolution *)
  type agg = { h : H.t; mutable mx : float }

  let agg () = { h = H.create (); mx = 0. }

  let agg_record a v =
    H.record a.h v;
    if v > a.mx then a.mx <- v

  type key_aggs = (phase * agg) list

  let key_aggs () = List.map (fun p -> (p, agg ())) all_phases

  type r = {
    total : int;
    committed : int;
    aborted : int;
    compensated : int;
    open_spans : int;
    incomplete_committed : int;  (* committed spans with an unresolved phase *)
    wall : agg;
    overall : key_aggs;
    by_txn_type : (string * key_aggs) list;
    by_partition : (int * key_aggs) list;
  }

  let find_or_add assoc key mk =
    match List.assoc_opt key !assoc with
    | Some v -> v
    | None ->
        let v = mk () in
        assoc := !assoc @ [ (key, v) ];
        v

  let build ?partition_of spans =
    let total = ref 0
    and committed = ref 0
    and aborted = ref 0
    and compensated = ref 0
    and open_spans = ref 0
    and incomplete = ref 0 in
    let wall_agg = agg () in
    let overall = key_aggs () in
    let by_type = ref [] in
    let by_part = ref [] in
    List.iter
      (fun sp ->
        incr total;
        (match sp.sp_outcome with
        | Committed ->
            incr committed;
            if not (complete sp) then incr incomplete
        | Aborted { compensated = c } ->
            incr aborted;
            if c then incr compensated
        | Open -> incr open_spans);
        match sp.sp_end with
        | None -> ()
        | Some e ->
            agg_record wall_agg (e -. sp.sp_begin);
            let tkey = find_or_add by_type sp.sp_txn_type key_aggs in
            let pkey =
              Option.map
                (fun f -> find_or_add by_part (f sp.sp_txn) key_aggs)
                partition_of
            in
            List.iter
              (fun (p, v) ->
                (* conditional distributions: a phase the span never entered
                   contributes no sample, so p50(compensate) is the median of
                   actual compensation runs, not of a sea of zeros *)
                if v > 0. then begin
                  agg_record (List.assoc p overall) v;
                  agg_record (List.assoc p tkey) v;
                  match pkey with
                  | Some k -> agg_record (List.assoc p k) v
                  | None -> ()
                end)
              sp.sp_phases)
      spans;
    {
      total = !total;
      committed = !committed;
      aborted = !aborted;
      compensated = !compensated;
      open_spans = !open_spans;
      incomplete_committed = !incomplete;
      wall = wall_agg;
      overall;
      by_txn_type = !by_type;
      by_partition = !by_part;
    }

  let agg_json a =
    let s = H.snapshot a.h in
    Json.Obj
      [
        ("count", Json.Int (H.Snapshot.count s));
        ("mean", Json.Float (H.Snapshot.mean s));
        ("p50", Json.Float (H.Snapshot.percentile s 0.50));
        ("p95", Json.Float (H.Snapshot.percentile s 0.95));
        ("p99", Json.Float (H.Snapshot.percentile s 0.99));
        ("max", Json.Float a.mx);
      ]

  let key_aggs_json ks =
    Json.Obj
      (List.filter_map
         (fun (p, a) ->
           if H.count a.h = 0 then None else Some (phase_name p, agg_json a))
         ks)

  let to_json r =
    Json.Obj
      [
        ( "spans",
          Json.Obj
            [
              ("total", Json.Int r.total);
              ("committed", Json.Int r.committed);
              ("aborted", Json.Int r.aborted);
              ("compensated", Json.Int r.compensated);
              ("open", Json.Int r.open_spans);
              ("incomplete_committed", Json.Int r.incomplete_committed);
            ] );
        ("wall", agg_json r.wall);
        ("by_phase", key_aggs_json r.overall);
        ( "prepare_hold",
          agg_json (List.assoc Prepare_hold r.overall) );
        ( "by_txn_type",
          Json.Obj (List.map (fun (k, v) -> (k, key_aggs_json v)) r.by_txn_type) );
        ( "by_partition",
          Json.Obj
            (List.map
               (fun (k, v) -> (string_of_int k, key_aggs_json v))
               r.by_partition) );
      ]

  let incomplete_committed r = r.incomplete_committed
  let committed r = r.committed
  let open_spans r = r.open_spans

  let pp_aggs ppf ks =
    List.iter
      (fun (p, a) ->
        if H.count a.h > 0 then
          let s = H.snapshot a.h in
          Format.fprintf ppf "  %-13s %8d %12.6f %12.6f %12.6f %12.6f %12.6f@."
            (phase_name p) (H.Snapshot.count s) (H.Snapshot.mean s)
            (H.Snapshot.percentile s 0.50) (H.Snapshot.percentile s 0.95)
            (H.Snapshot.percentile s 0.99) a.mx)
      ks

  let pp ppf r =
    Format.fprintf ppf "spans: %d total, %d committed, %d aborted (%d compensated), %d open@."
      r.total r.committed r.aborted r.compensated r.open_spans;
    if r.incomplete_committed > 0 then
      Format.fprintf ppf "!! %d committed span(s) with an unresolved phase@."
        r.incomplete_committed;
    Format.fprintf ppf "@.phase breakdown (seconds):@.";
    Format.fprintf ppf "  %-13s %8s %12s %12s %12s %12s %12s@." "phase" "count" "mean"
      "p50" "p95" "p99" "max";
    pp_aggs ppf r.overall;
    List.iter
      (fun (name, ks) ->
        Format.fprintf ppf "@.txn type %s:@." name;
        pp_aggs ppf ks)
      r.by_txn_type;
    List.iter
      (fun (pid, ks) ->
        Format.fprintf ppf "@.partition %d:@." pid;
        pp_aggs ppf ks)
      r.by_partition;
    let ph = List.assoc Prepare_hold r.overall in
    if H.count ph.h > 0 then
      Format.fprintf ppf
        "@.prepare-hold tail: p95 %.6fs p99 %.6fs max %.6fs over %d windows@."
        (H.percentile ph.h 0.95) (H.percentile ph.h 0.99) ph.mx (H.count ph.h)
end
