(** The bridge from the lock layer's observation feed to the observability
    layer: one function to install as {!Acc_lock.Lock_table.set_observer} (or
    {!Acc_parallel.Sharded_lock_table.set_observer}) that fans each
    observation out to {!Trace} events and, optionally, a
    {!Conflict_accounting} table. *)

val observer :
  ?accounting:Conflict_accounting.t ->
  unit ->
  Acc_lock.Lock_table.observation -> unit
(** [observer ?accounting ()] returns a lock-table observer that

    - feeds every [Ob_request] to [accounting] when given;
    - when {!Trace.enabled}, emits [Lock_request] followed by one
      [Assertion_check] per interference-oracle consultation the decision
      recorded, then [Lock_grant] or [Lock_block]; and [Lock_attach],
      [Lock_wake], [Lock_release], [Lock_cancel] for the other observations.

    With tracing disabled and no accounting, the observer is a no-op — but
    prefer installing [None] as the observer in that case so the lock table
    skips constructing observations entirely. *)
