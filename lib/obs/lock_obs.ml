module Lock_table = Acc_lock.Lock_table
module Lock_core = Acc_lock.Lock_core

let emit_checks txn (checks : Lock_core.acheck list) =
  List.iter
    (fun (c : Lock_core.acheck) ->
      Trace.emit
        (Trace.Assertion_check
           {
             txn;
             assertion = c.ac_assertion;
             interfering_step = c.ac_step_type;
             passed = c.ac_passed;
           }))
    checks

let observer ?accounting () (ob : Lock_table.observation) =
  (match accounting with Some acc -> Conflict_accounting.observe acc ob | None -> ());
  if Trace.enabled () then
    match ob with
    | Ob_request { or_txn = txn; or_step_type = step_type; or_mode = mode;
                   or_resource = resource; or_decision } -> (
        Trace.emit (Trace.Lock_request { txn; step_type; mode; resource });
        match or_decision with
        | Dec_granted { past_2pl; reentrant; checks } ->
            emit_checks txn checks;
            Trace.emit
              (Trace.Lock_grant { txn; step_type; mode; resource; past_2pl; reentrant })
        | Dec_blocked
            { blocker_txn; blocker_mode; blocker_waiting; assertion; interfering_step;
              checks } ->
            emit_checks txn checks;
            Trace.emit
              (Trace.Lock_block
                 {
                   txn; step_type; mode; resource; blocker_txn; blocker_mode;
                   blocker_waiting; assertion; interfering_step;
                 }))
    | Ob_attach { oa_txn = txn; oa_step_type = step_type; oa_mode = mode;
                  oa_resource = resource } ->
        Trace.emit (Trace.Lock_attach { txn; step_type; mode; resource })
    | Ob_wake { ow_txn = txn; ow_mode = mode; ow_resource = resource } ->
        Trace.emit (Trace.Lock_wake { txn; mode; resource })
    | Ob_release { ol_txn = txn; ol_mode = mode; ol_resource = resource } ->
        Trace.emit (Trace.Lock_release { txn; mode; resource })
    | Ob_cancel { oc_txn = txn; oc_resource = resource } ->
        Trace.emit (Trace.Lock_cancel { txn; resource })
