type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- rendering ---------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null" (* JSON has no NaN; degrade explicitly *)
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" f

let rec render ~indent ~level buf j =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          render ~indent ~level:(level + 1) buf item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          escape buf k;
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          render ~indent ~level:(level + 1) buf v)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  render ~indent:false ~level:0 buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

let pretty_to_channel oc j =
  let buf = Buffer.create 1024 in
  render ~indent:true ~level:0 buf j;
  Buffer.add_char buf '\n';
  output_string oc (Buffer.contents buf)

(* ---------- parsing ------------------------------------------------------ *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "dangling escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else begin
                     (* re-encode as UTF-8 (sufficient for the BMP; we never
                        emit surrogate pairs) *)
                     if code < 0x800 then begin
                       Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                       Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                     end
                     else begin
                       Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                       Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                       Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                     end
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            loop ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          List (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | Null | Bool _ | Float _ | Str _ | List _ | Obj _ -> None

let to_str = function
  | Str s -> Some s
  | Null | Bool _ | Int _ | Float _ | List _ | Obj _ -> None
