module Mode = Acc_lock.Mode
module Resource_id = Acc_lock.Resource_id

type event =
  | Txn_begin of { txn : int; txn_type : string }
  | Txn_commit of { txn : int }
  | Txn_abort of { txn : int; compensated : bool }
  | Step_begin of { txn : int; step_type : int; step_index : int }
  | Step_end of { txn : int; step_index : int }
  | Comp_run of { txn : int; step_type : int; from_step : int }
  | Lock_request of { txn : int; step_type : int; mode : Mode.t; resource : Resource_id.t }
  | Lock_grant of {
      txn : int;
      step_type : int;
      mode : Mode.t;
      resource : Resource_id.t;
      past_2pl : int;
      reentrant : bool;
    }
  | Lock_block of {
      txn : int;
      step_type : int;
      mode : Mode.t;
      resource : Resource_id.t;
      blocker_txn : int;
      blocker_mode : Mode.t;
      blocker_waiting : bool;
      assertion : int option;
      interfering_step : int option;
    }
  | Lock_wake of { txn : int; mode : Mode.t; resource : Resource_id.t }
  | Batch_acquired of { txn : int; step_type : int; count : int }
  | Lock_release of { txn : int; mode : Mode.t; resource : Resource_id.t }
  | Lock_attach of { txn : int; step_type : int; mode : Mode.t; resource : Resource_id.t }
  | Lock_cancel of { txn : int; resource : Resource_id.t }
  | Assertion_check of { txn : int; assertion : int; interfering_step : int; passed : bool }
  | Deadlock_cycle of { cycle : int list }
  | Victim of { txn : int; spared_compensating : bool }
  | Wal_append of { txn : int; lsn : int; kind : string; dur : float }
  | Wal_flush of { records : int }
  (* overload robustness (DESIGN.md §13) *)
  | Timed_out of { txn : int; mode : Mode.t; resource : Resource_id.t; waited : float }
  | Shed of { inflight : int; reason : string }
  | Degraded of { on : bool; oldest_wait : float }
  (* distributed commit (DESIGN.md §15) *)
  | Prepare of { txn : int; gid : int }
  | Decide of { gid : int; commit : bool; participants : int }
  | Resolve of { txn : int; gid : int; commit : bool }
  (* faultable transport (DESIGN.md §18) *)
  | Net_fault of { kind : string; msg : string }
  | Rpc_retry of { msg : string; gid : int; attempt : int }

let event_name = function
  | Txn_begin _ -> "txn_begin"
  | Txn_commit _ -> "txn_commit"
  | Txn_abort _ -> "txn_abort"
  | Step_begin _ -> "step_begin"
  | Step_end _ -> "step_end"
  | Comp_run _ -> "comp_run"
  | Lock_request _ -> "lock_request"
  | Lock_grant _ -> "lock_grant"
  | Lock_block _ -> "lock_block"
  | Lock_wake _ -> "lock_wake"
  | Batch_acquired _ -> "batch_acquired"
  | Lock_release _ -> "lock_release"
  | Lock_attach _ -> "lock_attach"
  | Lock_cancel _ -> "lock_cancel"
  | Assertion_check _ -> "assertion_check"
  | Deadlock_cycle _ -> "deadlock_cycle"
  | Victim _ -> "victim"
  | Wal_append _ -> "wal_append"
  | Wal_flush _ -> "wal_flush"
  | Timed_out _ -> "timed_out"
  | Shed _ -> "shed"
  | Degraded _ -> "degraded"
  | Prepare _ -> "prepare"
  | Decide _ -> "decide"
  | Resolve _ -> "resolve"
  | Net_fault _ -> "net_fault"
  | Rpc_retry _ -> "rpc_retry"

let all_event_names =
  [
    "txn_begin"; "txn_commit"; "txn_abort"; "step_begin"; "step_end"; "comp_run";
    "lock_request"; "lock_grant"; "lock_block"; "lock_wake"; "batch_acquired"; "lock_release";
    "lock_attach"; "lock_cancel"; "assertion_check"; "deadlock_cycle"; "victim";
    "wal_append"; "wal_flush"; "timed_out"; "shed"; "degraded"; "prepare"; "decide";
    "resolve"; "net_fault"; "rpc_retry";
  ]

(* ---------- the sink ----------------------------------------------------- *)

let pad_event = Txn_commit { txn = -1 }

type buf = {
  b_dom : int;
  b_ring : (float * event) array;
  mutable b_head : int; (* total events emitted by this domain, ≥ ring length *)
}

type sink = {
  s_gen : int;
  s_capacity : int;
  s_t0 : float;
  s_bufs : buf list Atomic.t; (* CAS-prepend registration, like Metrics.Latency *)
}

let current : sink option Atomic.t = Atomic.make None
let generations = Atomic.make 0

let enabled () = Atomic.get current <> None

let default_capacity = 1 lsl 16

let start ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.start: capacity must be >= 1";
  let sink =
    {
      s_gen = Atomic.fetch_and_add generations 1;
      s_capacity = capacity;
      s_t0 = Unix.gettimeofday ();
      s_bufs = Atomic.make [];
    }
  in
  Atomic.set current (Some sink)

(* Each domain's buffer, cached in domain-local storage along with the sink
   generation it belongs to, so a buffer never outlives its sink. *)
let dls : (int * buf) option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let rec register sink b =
  let cur = Atomic.get sink.s_bufs in
  if not (Atomic.compare_and_set sink.s_bufs cur (b :: cur)) then register sink b

let emit ev =
  match Atomic.get current with
  | None -> ()
  | Some sink ->
      let cell = Domain.DLS.get dls in
      let buf =
        match !cell with
        | Some (gen, b) when gen = sink.s_gen -> b
        | Some _ | None ->
            let b =
              {
                b_dom = (Domain.self () :> int);
                b_ring = Array.make sink.s_capacity (0., pad_event);
                b_head = 0;
              }
            in
            register sink b;
            cell := Some (sink.s_gen, b);
            b
      in
      let ts = Unix.gettimeofday () -. sink.s_t0 in
      buf.b_ring.(buf.b_head mod sink.s_capacity) <- (ts, ev);
      buf.b_head <- buf.b_head + 1

type entry = { ts : float; dom : int; seq : int; ev : event }

type dump = { events : entry list; emitted : int; dropped : int }

let empty_dump = { events = []; emitted = 0; dropped = 0 }

let drain_sink sink =
  let bufs = Atomic.get sink.s_bufs in
  let events =
    List.concat_map
      (fun b ->
        let head = b.b_head in
        let cap = Array.length b.b_ring in
        let kept = min head cap in
        let first = head - kept in
        List.init kept (fun i ->
            let seq = first + i in
            let ts, ev = b.b_ring.(seq mod cap) in
            { ts; dom = b.b_dom; seq; ev }))
      bufs
    |> List.sort (fun a b ->
           let c = Float.compare a.ts b.ts in
           if c <> 0 then c
           else
             let c = Int.compare a.dom b.dom in
             if c <> 0 then c else Int.compare a.seq b.seq)
  in
  let emitted = List.fold_left (fun acc b -> acc + b.b_head) 0 bufs in
  let dropped =
    List.fold_left (fun acc b -> acc + max 0 (b.b_head - Array.length b.b_ring)) 0 bufs
  in
  { events; emitted; dropped }

let drain () =
  match Atomic.get current with None -> empty_dump | Some sink -> drain_sink sink

let stop () =
  match Atomic.get current with
  | None -> empty_dump
  | Some sink ->
      Atomic.set current None;
      drain_sink sink

(* ---------- JSONL -------------------------------------------------------- *)

let mode_str m = Mode.to_string m
let res_str r = Format.asprintf "%a" Resource_id.pp r

let opt_field name = function None -> [] | Some v -> [ (name, Json.Int v) ]

let payload = function
  | Txn_begin { txn; txn_type } -> [ ("txn", Json.Int txn); ("type", Json.Str txn_type) ]
  | Txn_commit { txn } -> [ ("txn", Json.Int txn) ]
  | Txn_abort { txn; compensated } ->
      [ ("txn", Json.Int txn); ("compensated", Json.Bool compensated) ]
  | Step_begin { txn; step_type; step_index } ->
      [ ("txn", Json.Int txn); ("step", Json.Int step_type); ("idx", Json.Int step_index) ]
  | Step_end { txn; step_index } -> [ ("txn", Json.Int txn); ("idx", Json.Int step_index) ]
  | Comp_run { txn; step_type; from_step } ->
      [ ("txn", Json.Int txn); ("step", Json.Int step_type); ("from", Json.Int from_step) ]
  | Lock_request { txn; step_type; mode; resource } ->
      [
        ("txn", Json.Int txn); ("step", Json.Int step_type);
        ("mode", Json.Str (mode_str mode)); ("res", Json.Str (res_str resource));
      ]
  | Lock_grant { txn; step_type; mode; resource; past_2pl; reentrant } ->
      [
        ("txn", Json.Int txn); ("step", Json.Int step_type);
        ("mode", Json.Str (mode_str mode)); ("res", Json.Str (res_str resource));
        ("past2pl", Json.Int past_2pl); ("reentrant", Json.Bool reentrant);
      ]
  | Lock_block
      { txn; step_type; mode; resource; blocker_txn; blocker_mode; blocker_waiting; assertion;
        interfering_step } ->
      [
        ("txn", Json.Int txn); ("step", Json.Int step_type);
        ("mode", Json.Str (mode_str mode)); ("res", Json.Str (res_str resource));
        ("btxn", Json.Int blocker_txn); ("bmode", Json.Str (mode_str blocker_mode));
        ("bwaiting", Json.Bool blocker_waiting);
      ]
      @ opt_field "assertion" assertion
      @ opt_field "istep" interfering_step
  | Lock_wake { txn; mode; resource } ->
      [
        ("txn", Json.Int txn); ("mode", Json.Str (mode_str mode));
        ("res", Json.Str (res_str resource));
      ]
  | Lock_release { txn; mode; resource } ->
      [
        ("txn", Json.Int txn); ("mode", Json.Str (mode_str mode));
        ("res", Json.Str (res_str resource));
      ]
  | Lock_attach { txn; step_type; mode; resource } ->
      [
        ("txn", Json.Int txn); ("step", Json.Int step_type);
        ("mode", Json.Str (mode_str mode)); ("res", Json.Str (res_str resource));
      ]
  | Lock_cancel { txn; resource } ->
      [ ("txn", Json.Int txn); ("res", Json.Str (res_str resource)) ]
  | Batch_acquired { txn; step_type; count } ->
      [ ("txn", Json.Int txn); ("step", Json.Int step_type); ("count", Json.Int count) ]
  | Assertion_check { txn; assertion; interfering_step; passed } ->
      [
        ("txn", Json.Int txn); ("assertion", Json.Int assertion);
        ("istep", Json.Int interfering_step); ("passed", Json.Bool passed);
      ]
  | Deadlock_cycle { cycle } ->
      [ ("cycle", Json.List (List.map (fun t -> Json.Int t) cycle)) ]
  | Victim { txn; spared_compensating } ->
      [ ("txn", Json.Int txn); ("spared", Json.Bool spared_compensating) ]
  | Wal_append { txn; lsn; kind; dur } ->
      [
        ("txn", Json.Int txn); ("lsn", Json.Int lsn); ("kind", Json.Str kind);
        ("dur", Json.Float dur);
      ]
  | Wal_flush { records } -> [ ("records", Json.Int records) ]
  | Timed_out { txn; mode; resource; waited } ->
      [
        ("txn", Json.Int txn); ("mode", Json.Str (mode_str mode));
        ("res", Json.Str (res_str resource)); ("waited", Json.Float waited);
      ]
  | Shed { inflight; reason } ->
      [ ("inflight", Json.Int inflight); ("reason", Json.Str reason) ]
  | Degraded { on; oldest_wait } ->
      [ ("on", Json.Bool on); ("oldest_wait", Json.Float oldest_wait) ]
  | Prepare { txn; gid } -> [ ("txn", Json.Int txn); ("gid", Json.Int gid) ]
  | Decide { gid; commit; participants } ->
      [
        ("gid", Json.Int gid); ("commit", Json.Bool commit);
        ("participants", Json.Int participants);
      ]
  | Resolve { txn; gid; commit } ->
      [ ("txn", Json.Int txn); ("gid", Json.Int gid); ("commit", Json.Bool commit) ]
  | Net_fault { kind; msg } -> [ ("kind", Json.Str kind); ("msg", Json.Str msg) ]
  | Rpc_retry { msg; gid; attempt } ->
      [ ("msg", Json.Str msg); ("gid", Json.Int gid); ("attempt", Json.Int attempt) ]

let to_json e =
  Json.Obj
    ([
       ("ts", Json.Float e.ts); ("dom", Json.Int e.dom); ("seq", Json.Int e.seq);
       ("ev", Json.Str (event_name e.ev));
     ]
    @ payload e.ev)

let write_jsonl oc dump =
  List.iter
    (fun e ->
      Json.to_channel oc (to_json e);
      output_char oc '\n')
    dump.events;
  Json.to_channel oc
    (Json.Obj
       [
         ("ev", Json.Str "trace_summary");
         ("events", Json.Int (List.length dump.events));
         ("emitted", Json.Int dump.emitted);
         ("dropped", Json.Int dump.dropped);
       ]);
  output_char oc '\n'

(* ---------- Chrome trace format ------------------------------------------ *)

(* Transactions and steps become complete ("X") duration events on a
   per-transaction track, so interleaved transactions (the simulator runs
   every terminal on one domain) never violate B/E nesting.  Everything else
   is an instant event on the same track. *)

let txn_of_event = function
  | Txn_begin { txn; _ } | Txn_commit { txn } | Txn_abort { txn; _ }
  | Step_begin { txn; _ } | Step_end { txn; _ } | Comp_run { txn; _ }
  | Lock_request { txn; _ } | Lock_grant { txn; _ } | Lock_block { txn; _ }
  | Lock_wake { txn; _ } | Lock_release { txn; _ } | Lock_attach { txn; _ }
  | Lock_cancel { txn; _ } | Batch_acquired { txn; _ } | Assertion_check { txn; _ }
  | Victim { txn; _ } | Wal_append { txn; _ } | Timed_out { txn; _ }
  | Prepare { txn; _ } | Resolve { txn; _ } ->
      txn
  | Deadlock_cycle _ | Wal_flush _ | Shed _ | Degraded _ | Decide _ | Net_fault _
  | Rpc_retry _ ->
      0

let us t = t *. 1e6

let chrome_complete ~name ~cat ~tid ~ts ~dur args =
  Json.Obj
    ([
       ("name", Json.Str name); ("cat", Json.Str cat); ("ph", Json.Str "X");
       ("ts", Json.Float (us ts)); ("dur", Json.Float (us dur)); ("pid", Json.Int 1);
       ("tid", Json.Int tid);
     ]
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let chrome_instant e =
  Json.Obj
    [
      ("name", Json.Str (event_name e.ev)); ("cat", Json.Str "event"); ("ph", Json.Str "i");
      ("s", Json.Str "t"); ("ts", Json.Float (us e.ts)); ("pid", Json.Int 1);
      ("tid", Json.Int (txn_of_event e.ev));
      ("args", Json.Obj (("dom", Json.Int e.dom) :: payload e.ev));
    ]

let write_chrome oc dump =
  let out = ref [] in
  let push j = out := j :: !out in
  (* pair txn and step spans *)
  let txn_open = Hashtbl.create 64 in
  let step_open = Hashtbl.create 64 in
  List.iter
    (fun e ->
      (match e.ev with
      | Txn_begin { txn; txn_type } -> Hashtbl.replace txn_open txn (e.ts, txn_type)
      | Txn_commit { txn } | Txn_abort { txn; _ } -> (
          match Hashtbl.find_opt txn_open txn with
          | Some (t0, txn_type) ->
              Hashtbl.remove txn_open txn;
              push
                (chrome_complete ~name:txn_type ~cat:"txn" ~tid:txn ~ts:t0 ~dur:(e.ts -. t0)
                   [ ("txn", Json.Int txn) ])
          | None -> ())
      | Step_begin { txn; step_type; step_index } ->
          Hashtbl.replace step_open txn (e.ts, step_type, step_index)
      | Step_end { txn; step_index } -> (
          match Hashtbl.find_opt step_open txn with
          | Some (t0, step_type, idx) when idx = step_index ->
              Hashtbl.remove step_open txn;
              push
                (chrome_complete
                   ~name:(Printf.sprintf "step %d" step_type)
                   ~cat:"step" ~tid:txn ~ts:t0 ~dur:(e.ts -. t0)
                   [ ("txn", Json.Int txn); ("idx", Json.Int idx) ])
          | Some _ | None -> ())
      | Comp_run _ | Lock_request _ | Lock_grant _ | Lock_block _ | Lock_wake _
      | Batch_acquired _ | Lock_release _ | Lock_attach _ | Lock_cancel _
      | Assertion_check _ | Deadlock_cycle _ | Victim _ | Wal_append _ | Wal_flush _
      | Timed_out _ | Shed _ | Degraded _ | Prepare _ | Decide _ | Resolve _
      | Net_fault _ | Rpc_retry _ -> ());
      match e.ev with
      | Txn_begin _ | Txn_commit _ | Txn_abort _ | Step_begin _ | Step_end _ -> ()
      | Comp_run _ | Lock_request _ | Lock_grant _ | Lock_block _ | Lock_wake _
      | Batch_acquired _ | Lock_release _ | Lock_attach _ | Lock_cancel _
      | Assertion_check _ | Deadlock_cycle _ | Victim _ | Wal_append _ | Wal_flush _
      | Timed_out _ | Shed _ | Degraded _ | Prepare _ | Decide _ | Resolve _
      | Net_fault _ | Rpc_retry _ ->
          push (chrome_instant e))
    dump.events;
  (* spans still open at drain time become instants so no data is lost *)
  Hashtbl.iter
    (fun txn (t0, txn_type) ->
      push
        (chrome_complete ~name:(txn_type ^ " (unfinished)") ~cat:"txn" ~tid:txn ~ts:t0 ~dur:0.
           [ ("txn", Json.Int txn) ]))
    txn_open;
  Json.to_channel oc (Json.Obj [ ("traceEvents", Json.List (List.rev !out)) ])
