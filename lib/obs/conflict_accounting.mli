(** Classify every lock-request decision by what a strict-2PL system would
    have done, per requesting step type.

    This measures the paper's central claim directly: assertional modes admit
    interleavings 2PL forbids.  Each {!Acc_lock.Lock_table.Ob_request}
    observation lands in exactly one class:

    - {b granted_clean}: granted, and 2PL would have granted too (no foreign
      hold's {!Acc_lock.Mode.twopl_shadow} conflicts).
    - {b passed_despite_2pl}: granted, but at least one foreign hold would
      have blocked a strict-2PL request — the false conflicts ACC removes.
    - {b blocked_assertional}: blocked by an interference-table hit (the
      assertion genuinely fails against a concurrent step) — a {e true}
      conflict.
    - {b blocked_conventional}: blocked on conventional mode incompatibility
      (IS/IX/S/X lattice or FIFO queue discipline).

    Counters are [Atomic.t]s bucketed by step type, so accounting is
    domain-safe and adds two atomic increments per classified request.  Live
    reads are approximate while workers run; exact after they join (same
    contract as {!Acc_util.Metrics}). *)

type t

val create : ?max_step_types:int -> unit -> t
(** [max_step_types] bounds the per-step-type table (default 64).  Step types
    at or beyond the bound share a single overflow bucket reported as step
    type [-1]. *)

val observe : t -> Acc_lock.Lock_table.observation -> unit
(** Classify an observation.  Only [Ob_request] updates counters; attach,
    wake, release and cancel observations are ignored. *)

type row = {
  r_step_type : int;  (** [-1] is the overflow bucket *)
  r_granted_clean : int;
  r_passed_2pl : int;
  r_blocked_conv : int;
  r_blocked_assert : int;
}

val row_total : row -> int

val rows : t -> row list
(** Rows with at least one classified request, in step-type order. *)

val totals : t -> row
(** Sum over all rows, reported with [r_step_type = -1]. *)

val merge_rows : row list -> row list -> row list
(** Pointwise sum, matching rows by step type (for folding per-worker or
    per-transaction-type tables together). *)

val pp_table :
  ?label:(int -> string) -> header:string -> Format.formatter -> row list -> unit
(** Render rows as an aligned table.  [label] names a step type (defaults to
    ["step <n>"]); a totals row is appended when more than one row prints. *)

val row_to_json : ?label:(int -> string) -> row -> Json.t

val to_json : ?label:(int -> string) -> t -> Json.t
(** [{ "rows": [...], "totals": {...} }] — the shape embedded in
    [BENCH_<mode>.json] and the [--conflicts] driver output. *)
