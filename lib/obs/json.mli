(** A minimal JSON tree: render and parse, no external dependencies.

    This exists so the observability layer (trace drains, bench summaries)
    can emit and verify machine-readable output without adding a package the
    container may not have.  It covers the JSON subset those producers use:
    finite floats, UTF-8 passed through verbatim, [\u....] escapes decoded to
    raw bytes only for the ASCII range. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no whitespace). *)

val to_channel : out_channel -> t -> unit

val pretty_to_channel : out_channel -> t -> unit
(** Two-space-indented rendering, for the bench summaries humans also read. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; [Error msg] carries the byte offset of the fault.
    Trailing non-whitespace input is an error. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else or a missing key. *)

val to_int : t -> int option
(** [Int n] (or an integral [Float]) as an int. *)

val to_str : t -> string option
