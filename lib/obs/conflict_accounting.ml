module Lock_table = Acc_lock.Lock_table

(* Four parallel arrays of atomic counters, indexed by step type; the last
   slot is the shared overflow bucket.  Plain Atomic.incr per classified
   request — no locks, so the lock-table observer can run this under a shard
   mutex without widening the critical section meaningfully. *)
type t = {
  cap : int;
  granted_clean : int Atomic.t array;
  passed_2pl : int Atomic.t array;
  blocked_conv : int Atomic.t array;
  blocked_assert : int Atomic.t array;
}

let create ?(max_step_types = 64) () =
  if max_step_types < 1 then invalid_arg "Conflict_accounting.create";
  let mk () = Array.init (max_step_types + 1) (fun _ -> Atomic.make 0) in
  {
    cap = max_step_types;
    granted_clean = mk ();
    passed_2pl = mk ();
    blocked_conv = mk ();
    blocked_assert = mk ();
  }

let bucket t step_type =
  if step_type >= 0 && step_type < t.cap then step_type else t.cap

let observe t (ob : Lock_table.observation) =
  match ob with
  | Ob_request { or_step_type; or_decision; _ } -> (
      let i = bucket t or_step_type in
      match or_decision with
      | Dec_granted { past_2pl; _ } ->
          if past_2pl > 0 then Atomic.incr t.passed_2pl.(i)
          else Atomic.incr t.granted_clean.(i)
      | Dec_blocked { assertion = Some _; _ } -> Atomic.incr t.blocked_assert.(i)
      | Dec_blocked { assertion = None; _ } -> Atomic.incr t.blocked_conv.(i))
  | Ob_attach _ | Ob_wake _ | Ob_release _ | Ob_cancel _ -> ()

type row = {
  r_step_type : int;
  r_granted_clean : int;
  r_passed_2pl : int;
  r_blocked_conv : int;
  r_blocked_assert : int;
}

let row_total r = r.r_granted_clean + r.r_passed_2pl + r.r_blocked_conv + r.r_blocked_assert

let rows t =
  let out = ref [] in
  for i = t.cap downto 0 do
    let r =
      {
        r_step_type = (if i = t.cap then -1 else i);
        r_granted_clean = Atomic.get t.granted_clean.(i);
        r_passed_2pl = Atomic.get t.passed_2pl.(i);
        r_blocked_conv = Atomic.get t.blocked_conv.(i);
        r_blocked_assert = Atomic.get t.blocked_assert.(i);
      }
    in
    if row_total r > 0 then out := r :: !out
  done;
  (* overflow bucket (step -1) sorts last, not first *)
  let overflow, named = List.partition (fun r -> r.r_step_type = -1) !out in
  named @ overflow

let sum_rows step_type rs =
  List.fold_left
    (fun acc r ->
      {
        acc with
        r_granted_clean = acc.r_granted_clean + r.r_granted_clean;
        r_passed_2pl = acc.r_passed_2pl + r.r_passed_2pl;
        r_blocked_conv = acc.r_blocked_conv + r.r_blocked_conv;
        r_blocked_assert = acc.r_blocked_assert + r.r_blocked_assert;
      })
    {
      r_step_type = step_type;
      r_granted_clean = 0;
      r_passed_2pl = 0;
      r_blocked_conv = 0;
      r_blocked_assert = 0;
    }
    rs

let totals t = sum_rows (-1) (rows t)

let merge_rows a b =
  let keys =
    List.sort_uniq Int.compare (List.map (fun r -> r.r_step_type) (a @ b))
  in
  let overflow, named = List.partition (fun k -> k = -1) keys in
  List.map
    (fun k -> sum_rows k (List.filter (fun r -> r.r_step_type = k) (a @ b)))
    (named @ overflow)

let default_label st = if st = -1 then "(other)" else Printf.sprintf "step %d" st

let pp_table ?(label = default_label) ~header fmt rs =
  let name r = if r.r_step_type = -1 then "(other)" else label r.r_step_type in
  let width =
    List.fold_left (fun w r -> max w (String.length (name r))) (String.length header) rs
  in
  let line name a b c d =
    Format.fprintf fmt "  %-*s %12s %12s %12s %12s@," width name a b c d
  in
  Format.pp_open_vbox fmt 0;
  line header "granted" "ACC-only" "blk(conv)" "blk(assert)";
  List.iter
    (fun r ->
      line (name r)
        (string_of_int r.r_granted_clean)
        (string_of_int r.r_passed_2pl)
        (string_of_int r.r_blocked_conv)
        (string_of_int r.r_blocked_assert))
    rs;
  (if List.length rs > 1 then
     let tot = sum_rows (-1) rs in
     line "total"
       (string_of_int tot.r_granted_clean)
       (string_of_int tot.r_passed_2pl)
       (string_of_int tot.r_blocked_conv)
       (string_of_int tot.r_blocked_assert));
  Format.pp_close_box fmt ()

let row_to_json ?(label = default_label) r =
  Json.Obj
    [
      ("step_type", Json.Int r.r_step_type);
      ("label", Json.Str (if r.r_step_type = -1 then "(other)" else label r.r_step_type));
      ("granted_clean", Json.Int r.r_granted_clean);
      ("passed_despite_2pl", Json.Int r.r_passed_2pl);
      ("blocked_conventional", Json.Int r.r_blocked_conv);
      ("blocked_assertional", Json.Int r.r_blocked_assert);
    ]

let to_json ?label t =
  Json.Obj
    [
      ("rows", Json.List (List.map (row_to_json ?label) (rows t)));
      ("totals", row_to_json ?label (totals t));
    ]
