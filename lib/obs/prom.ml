(* Prometheus text exposition format 0.0.4 over a Registry snapshot.

   Rows are grouped by metric name: one # HELP / # TYPE header per name
   (the first registered help string wins), then one line per label set.
   Histograms expand to the cumulative [le] bucket series plus _sum and
   _count, built from Metrics.Histogram.Snapshot.cumulative so the series
   is internally consistent (bucket counts, _count and _sum all from one
   frozen view). *)

module H = Acc_util.Metrics.Histogram

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let labels_str labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v)) labels)
      ^ "}"

(* Prometheus floats: no OCaml-isms ("inf" not "infinity", plain decimals) *)
let float_str v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let type_str (row : Registry.row) =
  match row.Registry.r_sample with
  | Registry.S_counter _ -> "counter"
  | Registry.S_gauge _ -> "gauge"
  | Registry.S_histogram _ -> "histogram"

let write_row buf (row : Registry.row) =
  let name = row.Registry.r_name in
  match row.Registry.r_sample with
  | Registry.S_counter n ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %d\n" name (labels_str row.Registry.r_labels) n)
  | Registry.S_gauge v ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" name (labels_str row.Registry.r_labels) (float_str v))
  | Registry.S_histogram s ->
      let base = row.Registry.r_labels in
      List.iter
        (fun (ub, cum) ->
          let labels = base @ [ ("le", float_str ub) ] in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name (labels_str labels) cum))
        (H.Snapshot.cumulative s);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" name (labels_str base)
           (float_str (H.Snapshot.sum s)));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" name (labels_str base) (H.Snapshot.count s))

let to_string ?registry () =
  let rows = Registry.snapshot ?registry () in
  let buf = Buffer.create 4096 in
  let last_name = ref "" in
  List.iter
    (fun (row : Registry.row) ->
      if row.Registry.r_name <> !last_name then begin
        last_name := row.Registry.r_name;
        if row.Registry.r_help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" row.Registry.r_name
               (escape_help row.Registry.r_help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" row.Registry.r_name (type_str row))
      end;
      write_row buf row)
    rows;
  Buffer.contents buf

let dump_file ?registry path =
  let body = to_string ?registry () in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc body);
  Sys.rename tmp path
