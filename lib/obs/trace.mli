(** Structured, low-overhead event tracing for the whole runtime.

    A {e sink} is a set of per-domain ring buffers.  Each domain writes its
    own buffer — wait-free, no locks, no contention — so emission is safe
    from worker domains, the deadlock-detector domain and the simulator
    alike.  A full ring overwrites its oldest events (drop-oldest) and
    counts the drops, so tracing a long run can never block or OOM the
    system under test.

    {b Disabled path}: with no sink installed, {!enabled} is one atomic load.
    Emission sites must guard event construction:
    {[ if Trace.enabled () then Trace.emit (Trace.Lock_release { ... }) ]}
    so the disabled path allocates nothing — that guard is the whole ≤2%
    overhead budget of DESIGN.md's Observability section.

    {b Draining}: {!drain}/{!stop} fold every per-domain buffer into one
    timestamp-ordered dump.  Counts are exact once the emitting domains have
    quiesced (joined); a live drain is an approximate snapshot, same
    contract as {!Acc_util.Metrics.Latency}. *)

module Mode := Acc_lock.Mode
module Resource_id := Acc_lock.Resource_id

type event =
  | Txn_begin of { txn : int; txn_type : string }
  | Txn_commit of { txn : int }
  | Txn_abort of { txn : int; compensated : bool }
  | Step_begin of { txn : int; step_type : int; step_index : int }
  | Step_end of { txn : int; step_index : int }
  | Comp_run of { txn : int; step_type : int; from_step : int }
      (** a compensating step starting to run (§3.4), undoing [from_step - 1]
          completed steps *)
  | Lock_request of { txn : int; step_type : int; mode : Mode.t; resource : Resource_id.t }
  | Lock_grant of {
      txn : int;
      step_type : int;
      mode : Mode.t;
      resource : Resource_id.t;
      past_2pl : int;  (** foreign holds a strict-2PL system would have blocked on *)
      reentrant : bool;
    }
  | Lock_block of {
      txn : int;
      step_type : int;
      mode : Mode.t;
      resource : Resource_id.t;
      blocker_txn : int;
      blocker_mode : Mode.t;
      blocker_waiting : bool;
      assertion : int option;
      interfering_step : int option;
    }
  | Lock_wake of { txn : int; mode : Mode.t; resource : Resource_id.t }
  | Batch_acquired of { txn : int; step_type : int; count : int }
      (** one [Lock_service.acquire_batch] of [count] requests
          completed (the per-lock grant/block events still fire from the
          lock table's observer as usual) *)
  | Lock_release of { txn : int; mode : Mode.t; resource : Resource_id.t }
  | Lock_attach of { txn : int; step_type : int; mode : Mode.t; resource : Resource_id.t }
  | Lock_cancel of { txn : int; resource : Resource_id.t }
  | Assertion_check of {
      txn : int;
      assertion : int;
      interfering_step : int;
      passed : bool;
    }  (** one interference-oracle consultation (§3.3's table lookup) *)
  | Deadlock_cycle of { cycle : int list }
  | Victim of { txn : int; spared_compensating : bool }
      (** [spared_compensating]: this victim was chosen {e instead of} a
          compensating requester the §3.4 policy protected *)
  | Wal_append of { txn : int; lsn : int; kind : string; dur : float }
      (** [dur]: seconds the append spent inside {!Acc_wal.Log.append}
          (measured only while tracing is enabled; the span layer charges it
          to the [wal_append] phase) *)
  | Wal_flush of { records : int }
  | Timed_out of { txn : int; mode : Acc_lock.Mode.t; resource : Acc_lock.Resource_id.t; waited : float }
      (** a lock wait withdrawn because its deadline expired; [waited] is the
          seconds spent queued *)
  | Shed of { inflight : int; reason : string }
      (** an admission refused by the overload gate ([reason]: ["capacity"]
          for the in-flight cap, ["watermark"] for the abort-rate shedder,
          ["degraded"] while degraded mode is on) *)
  | Degraded of { on : bool; oldest_wait : float }
      (** the watchdog tripped (or cleared) degraded mode; [oldest_wait] is
          the oldest-waiter age that triggered the transition *)
  | Prepare of { txn : int; gid : int }
      (** a 2PC participant branch voted yes for global transaction [gid];
          the branch is in doubt until the matching [Decide]/[Resolve] *)
  | Decide of { gid : int; commit : bool; participants : int }
      (** the coordinator's decision for [gid] is durable *)
  | Resolve of { txn : int; gid : int; commit : bool }
      (** recovery resolved an in-doubt participant branch from the
          coordinator's decision log (presumed abort when no decision) *)
  | Net_fault of { kind : string; msg : string }
      (** the transport's fault layer injected [kind] (drop / dup / delay /
          reorder / disconnect) on a wire message of kind [msg] *)
  | Rpc_retry of { msg : string; gid : int; attempt : int }
      (** a coordinator RPC timed out and is being re-sent ([attempt] counts
          from 1); participant handlers are idempotent, so the duplicate the
          retry may produce is safe *)

val event_name : event -> string
(** The wire name (the ["ev"] field of the JSONL encoding). *)

val all_event_names : string list
(** Every constructor's wire name (taxonomy surface, used by the round-trip
    tests and [trace_check]). *)

(** {1 The global sink} *)

val enabled : unit -> bool

val start : ?capacity:int -> unit -> unit
(** Install a fresh sink (replacing any previous one) with [capacity] events
    per domain (default 65536). *)

val emit : event -> unit
(** Record an event with the current wall-clock timestamp on the calling
    domain's ring.  No-op when disabled, but callers should guard with
    {!enabled} to avoid constructing the event at all. *)

type entry = { ts : float; dom : int; seq : int; ev : event }
(** [ts] is seconds since the sink was started; [seq] is the per-domain
    emission index (contiguous 0.. within a domain, including dropped). *)

type dump = { events : entry list; emitted : int; dropped : int }
(** [events] is timestamp-ordered; [emitted = List.length events + dropped]. *)

val drain : unit -> dump
(** Snapshot the current sink's buffers (empty dump when disabled). *)

val stop : unit -> dump
(** Disable tracing and return the final dump. *)

(** {1 Encodings} *)

val to_json : entry -> Json.t
(** The JSONL line object: [{"ts":…,"dom":…,"seq":…,"ev":…,…}]. *)

val write_jsonl : out_channel -> dump -> unit
(** One event per line, terminated by a
    [{"ev":"trace_summary","events":…,"dropped":…}] line that lets a
    consumer verify completeness. *)

val write_chrome : out_channel -> dump -> unit
(** The Chrome [chrome://tracing] / Perfetto JSON array format: steps and
    transactions as duration (B/E) events per domain track, everything else
    as instant events. *)
