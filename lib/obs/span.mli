(** Span reconstruction: per-transaction phase attribution from a trace.

    A {e span} is one transaction's lifetime — [Txn_begin] to
    [Txn_commit]/[Txn_abort], or to the end of the trace for a transaction
    cut off by a crash — with its wall time attributed to six disjoint
    phases:

    - [Lock_wait]: queued on a lock ([Lock_block] → [Lock_wake]/[Timed_out]),
      including admission waits before the first step
    - [Execute]: inside a forward step, net of the lock waits and WAL
      appends that fell within it
    - [Wal_append]: inside {!Acc_wal.Log.append} (the [dur] field of
      [Wal_append] events)
    - [Prepare_hold]: the 2PC in-doubt window, [Prepare] → [Decide] (or
      [Resolve] for adopted branches) — the cost the assertional-lock-across-
      prepare design trades against
    - [Decide]: from the decision to the branch's end event
    - [Compensate]: inside compensating steps, plus the abort dispatch tail

    The intervals are disjoint by construction, so a closed span's phase
    durations sum to at most its wall time (a qcheck property in the test
    suite).  Events are correlated by txn id; [Decide] events (which carry
    only a gid) reach branches through the gid recorded at [Prepare].
    Partition attribution uses the per-partition txn-id bands of
    {!Acc_dist.Partition}. *)

type phase = Lock_wait | Execute | Wal_append | Prepare_hold | Decide | Compensate

val all_phases : phase list
val phase_name : phase -> string
(** ["lock_wait"], ["execute"], … — the wire/metric-label names. *)

val phase_index : phase -> int
val phase_of_index : int -> phase
val n_phases : int

type outcome =
  | Committed
  | Aborted of { compensated : bool }
  | Open  (** the trace ended (crash point, ring cut) before the txn did *)

type t = {
  sp_txn : int;
  sp_txn_type : string;
  sp_dom : int;  (** domain that emitted [Txn_begin] *)
  sp_gid : int option;  (** global txn id, for 2PC participant branches *)
  sp_begin : float;
  sp_end : float option;  (** [None] iff [sp_outcome = Open] *)
  sp_outcome : outcome;
  sp_phases : (phase * float) list;  (** all six phases, zeros included *)
  sp_open_phase : phase option;
      (** the phase left open: set for [Open] spans cut mid-phase, and on a
          {e closed} span only when its prepare window was never resolved by
          a [Decide]/[Resolve] — a protocol-order violation worth flagging *)
}

val wall : t -> float option
val phase : t -> phase -> float
val complete : t -> bool
(** Ended, and every phase closed. *)

(** Streaming reconstruction.  Feed events in timestamp order (the order
    {!Trace.dump} and the JSONL files already have); call {!Builder.finish}
    once to collect the spans. *)
module Builder : sig
  type b

  val create : unit -> b

  val feed_event : b -> ts:float -> dom:int -> Trace.event -> unit
  (** Live front-end: fold a {!Trace.entry} stream. *)

  val feed_json : b -> Json.t -> unit
  (** Offline front-end: one parsed JSONL trace line.  Unknown events and
      the [trace_summary] trailer are ignored. *)

  val orphans : b -> int
  (** Span-bearing events (steps, commits, prepares, …) whose txn had no
      live span — begin events lost to ring drops or crash truncation. *)

  val orphan_sample : b -> (int * string) list
  (** Up to the first 8 orphans, as [(txn, event_name)]. *)

  val finish : b -> t list
  (** Finalize: every still-live txn becomes an [Open] span (ended at the
      last timestamp seen).  Spans are returned in completion order. *)
end

val of_entries : Trace.entry list -> t list
val of_dump : Trace.dump -> t list

(** Aggregation: p50/p95/p99 per phase, overall / per txn type / per
    partition, plus span counts and the prepare-hold tail.  Phase
    distributions are conditional — a span contributes a sample to a phase
    only if it spent time there — so p50(compensate) is the median of actual
    compensation runs, not of a sea of zeros. *)
module Report : sig
  type r

  val build : ?partition_of:(int -> int) -> t list -> r
  (** [partition_of] maps a txn id to its partition (txn-id bands); when
      given, the report includes a per-partition breakdown. *)

  val to_json : r -> Json.t
  (** The ["phases"] object attached to bench cells and emitted by
      [acc-trace-profile --json]. *)

  val pp : Format.formatter -> r -> unit

  val committed : r -> int
  val open_spans : r -> int
  val incomplete_committed : r -> int
  (** Committed spans with an unresolved phase — must be 0 on a clean traced
      run ([acc-trace-profile --require-complete] gates on it). *)
end
