(** Prometheus text exposition (format 0.0.4) over a {!Registry} snapshot.

    Rows group by metric name — one [# HELP]/[# TYPE] header per name, one
    sample line per label set.  Histograms expand to the cumulative [le]
    bucket series plus [_sum]/[_count], all taken from one frozen
    {!Acc_util.Metrics.Histogram.Snapshot} so the series is internally
    consistent.  The last (open-ended) bucket and the [+Inf] bound
    coincide, matching Prometheus's requirement that [_count] equals the
    [+Inf] bucket.

    There is no HTTP server here on purpose: the binaries dump to a file
    ([--metrics-dump], the watchdog's periodic hook) and anything that wants
    a [/metrics] endpoint can serve that file. *)

val to_string : ?registry:Registry.t -> unit -> string

val dump_file : ?registry:Registry.t -> string -> unit
(** Atomic-ish dump: write to [path ^ ".tmp"], then rename over [path], so a
    concurrent reader never sees a torn exposition. *)
