(** Predicate locks (Eswaran, Gray, Lorie, Traiger 1976) — the comparator
    §3.2 positions assertional locks against.

    A predicate lock protects the set of rows satisfying a predicate; two
    locks conflict when at least one writes and their predicates may
    intersect.  The expensive part — and the paper's point — is that the
    intersection test runs {e at lock-acquisition time}, for every pair of
    outstanding locks on the table, instead of being a precomputed table
    lookup.  {!may_intersect} is implemented as a sound, conservative
    satisfiability check over per-column interval summaries (exact for
    conjunctive predicates over [=], [<>], [<], [<=], [>], [>=], [IN];
    disjunctions and negations fall back to "may intersect").

    The micro-benchmark suite measures {!may_intersect} against the ACC's
    interference lookup to quantify the claim. *)

module Predicate = Acc_relation.Predicate

type t

val create : unit -> t

type mode = Read | Write

val acquire :
  t -> txn:int -> mode:mode -> table:string -> Predicate.t ->
  [ `Granted | `Conflict of int list ]
(** Grant unless a conflicting lock is held by another transaction; on
    conflict, report the blockers (this manager does not queue — it is a
    comparator for conflict-checking cost and semantics, not a scheduler). *)

val release_all : t -> txn:int -> unit
val lock_count : t -> int

val may_intersect : Predicate.t -> Predicate.t -> bool
(** Could some row satisfy both predicates?  Sound (never answers [false]
    when a common row exists); conservative on non-conjunctive structure. *)

val definitely_disjoint : Predicate.t -> Predicate.t -> bool
(** [not (may_intersect a b)]. *)
