(** A lock request as one value.

    The lock managers historically took six optional/labelled arguments per
    call ([~txn ~step_type ?admission ?compensating ?deadline mode res]);
    every layer that forwarded a request had to spell all six out, and a
    batch of requests had no representation at all.  [Lock_request.t] packs
    the full request into a single record, which is what the batched
    acquisition path ({!Lock_service.acquire_batch}) sorts, groups and
    forwards. *)

type t = {
  txn : int;  (** requesting transaction *)
  step_type : int;  (** design-time step type the request is issued from *)
  admission : bool;
      (** transaction-initiation acquisition of the first interstep
          assertion: prefix-interference checks apply *)
  compensating : bool;
      (** issued by a compensating step: never timed out, never gated by the
          fairness bound, never chosen as deadlock victim (§3.4) *)
  deadline : float option;
      (** absolute instant (in the table's clock) after which a queued
          request may be withdrawn; ignored when [compensating] *)
  mode : Mode.t;
  resource : Resource_id.t;
}

val make :
  txn:int ->
  ?step_type:int ->
  ?admission:bool ->
  ?compensating:bool ->
  ?deadline:float ->
  Mode.t ->
  Resource_id.t ->
  t
(** [make ~txn mode res] with [step_type] defaulting to [0] and the flags to
    [false]/[None] — the common shape for tests and simple callers. *)

val compare : t -> t -> int
(** Canonical batch order: by resource ({!Resource_id.compare}), then mode,
    then transaction.  Every batch acquired in this shared total order cannot
    contribute an intra-batch deadlock edge — two batches lock their common
    resources in the same sequence. *)

val canonicalize : t list -> t list
(** Sort into canonical order and drop exact duplicates: the form
    {!Lock_service.acquire_batch} processes. *)

val pp : Format.formatter -> t -> unit
