(** Lockable database items.

    The lock hierarchy has two levels: whole tables (locked with intention
    modes, or S/X for full-table operations) and individual tuples (named by
    table and primary key).  The paper attaches assertional locks "to any
    database item that can be locked with a conventional lock"; both levels
    qualify. *)

type t =
  | Table of string
  | Tuple of string * Acc_relation.Value.t list  (** table name, primary key *)

val table_of : t -> string
val parent : t -> t option
(** [parent (Tuple (t, _)) = Some (Table t)]; tables have no parent. *)

val equal : t -> t -> bool
val hash : t -> int
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
