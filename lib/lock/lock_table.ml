type ticket = int

type grant = Granted | Queued of ticket

type wakeup = { woken_ticket : ticket; woken_txn : int }

(* a queued request withdrawn because its lock-wait deadline passed *)
type expired = {
  ex_ticket : ticket;
  ex_txn : int;
  ex_mode : Mode.t;
  ex_resource : Resource_id.t;
  ex_waited : float; (* seconds spent queued, in the table's clock *)
}

(* the hold/waiter shapes and all compatibility decisions live in the pure
   [Lock_core], shared with the sharded multi-domain table (lib/parallel) *)
type hold = Lock_core.hold = {
  h_txn : int;
  h_mode : Mode.t;
  h_step : int;
  mutable h_count : int;
}

type waiter = Lock_core.waiter = {
  w_ticket : ticket;
  w_txn : int;
  w_mode : Mode.t;
  w_step : int;
  w_requester : Mode.requester;
  w_resource : Resource_id.t;
  w_compensating : bool;
  w_deadline : float option;
  w_enqueued : float;
  mutable w_bypassed : int;
}

type entry = {
  e_resource : Resource_id.t;
  mutable holds : hold list; (* oldest first *)
  mutable queue : waiter list; (* FIFO, head = next to be served *)
}

(* Observations of lock-manager decisions, for the observability layer
   (lib/obs).  Emitted only when an observer is installed — the disabled path
   is a single [None] match and allocates nothing. *)
type decision =
  | Dec_granted of {
      past_2pl : int; (* foreign holds a strict-2PL system would have blocked on *)
      reentrant : bool; (* covered by an own hold; no compatibility check ran *)
      checks : Lock_core.acheck list; (* interference-oracle consultations *)
    }
  | Dec_blocked of {
      blocker_txn : int;
      blocker_mode : Mode.t;
      blocker_waiting : bool; (* blocked behind a queued waiter (FIFO), not a holder *)
      assertion : int option; (* set when the blocking conflict is assertional *)
      interfering_step : int option;
      checks : Lock_core.acheck list;
    }

type observation =
  | Ob_request of {
      or_txn : int;
      or_step_type : int;
      or_mode : Mode.t;
      or_resource : Resource_id.t;
      or_decision : decision;
    }
  | Ob_attach of { oa_txn : int; oa_step_type : int; oa_mode : Mode.t; oa_resource : Resource_id.t }
  | Ob_wake of { ow_txn : int; ow_mode : Mode.t; ow_resource : Resource_id.t }
  | Ob_release of { ol_txn : int; ol_mode : Mode.t; ol_resource : Resource_id.t }
  | Ob_cancel of { oc_txn : int; oc_resource : Resource_id.t }

type t = {
  sem : Mode.semantics;
  entries : entry Resource_id.Tbl.t;
  (* all resources of a table that currently carry holds or waiters: the
     hierarchical checks and cross-level promotion need them *)
  by_table : (string, unit Resource_id.Tbl.t) Hashtbl.t;
  mutable next_ticket : int;
  tickets : (ticket, waiter) Hashtbl.t; (* outstanding waits only *)
  by_txn : (int, unit Resource_id.Tbl.t) Hashtbl.t; (* txn -> resources held *)
  mutable obs : (observation -> unit) option;
  mutable activity : (int -> int -> unit) option;
  (* per-transaction bookkeeping hook: called with (txn, +1) whenever a hold
     record or a waiter of [txn] enters the table and (txn, -1) when one
     leaves (re-entrant count changes are not reported).  The sharded table
     points this at per-shard atomic counters so "does txn hold or wait for
     anything here?" is answerable without the shard mutex. *)
  max_bypass : int; (* bounded-bypass fairness limit *)
  clock : unit -> float; (* timestamps queue times and checks deadlines *)
}

let create ?(max_bypass = Lock_core.default_max_bypass) ?(clock = fun () -> 0.) sem =
  {
    sem;
    entries = Resource_id.Tbl.create 1024;
    by_table = Hashtbl.create 64;
    next_ticket = 0;
    tickets = Hashtbl.create 64;
    by_txn = Hashtbl.create 64;
    obs = None;
    activity = None;
    max_bypass;
    clock;
  }

let set_observer t obs = t.obs <- obs
let set_activity_hook t hook = t.activity <- hook
let act t txn delta = match t.activity with None -> () | Some f -> f txn delta

let table_members t tname =
  match Hashtbl.find_opt t.by_table tname with
  | Some set -> set
  | None ->
      let set = Resource_id.Tbl.create 64 in
      Hashtbl.add t.by_table tname set;
      set

let note_entry_active t res = Resource_id.Tbl.replace (table_members t (Resource_id.table_of res)) res ()

let entry t res =
  match Resource_id.Tbl.find_opt t.entries res with
  | Some e -> e
  | None ->
      let e = { e_resource = res; holds = []; queue = [] } in
      Resource_id.Tbl.add t.entries res e;
      e

(* drop empty entries so the child-sweep of table-level assertional requests
   stays proportional to live locks *)
let gc_entry t e =
  if e.holds = [] && e.queue = [] then begin
    Resource_id.Tbl.remove t.entries e.e_resource;
    let tname = Resource_id.table_of e.e_resource in
    match Hashtbl.find_opt t.by_table tname with
    | Some set ->
        Resource_id.Tbl.remove set e.e_resource;
        if Resource_id.Tbl.length set = 0 then Hashtbl.remove t.by_table tname
    | None -> ()
  end

let note_held t ~txn res =
  let set =
    match Hashtbl.find_opt t.by_txn txn with
    | Some s -> s
    | None ->
        let s = Resource_id.Tbl.create 16 in
        Hashtbl.add t.by_txn txn s;
        s
  in
  Resource_id.Tbl.replace set res ()

let forget_held_if_empty t ~txn res e =
  if not (List.exists (fun h -> h.h_txn = txn) e.holds) then
    match Hashtbl.find_opt t.by_txn txn with
    | Some set ->
        Resource_id.Tbl.remove set res;
        if Resource_id.Tbl.length set = 0 then Hashtbl.remove t.by_txn txn
    | None -> ()

let hold_conflict t h ~mode ~requester = Lock_core.hold_conflict t.sem h ~mode ~requester
let waiter_conflict t w ~mode ~requester = Lock_core.waiter_conflict t.sem w ~mode ~requester

(* The holds a request on [res] must be compatible with:
   - holds on [res] itself;
   - holds on the parent table (a tuple write must respect table-level
     assertional locks, e.g. a legacy scan's isolation lock);
   - for a checked assertional request on a whole table: holds on the
     table's tuples (a legacy scan must wait out in-flight writers, whose
     exposure is recorded by tuple-level compensation locks). *)
let relevant_holds t res ~mode =
  let own = match Resource_id.Tbl.find_opt t.entries res with Some e -> e.holds | None -> [] in
  let parent =
    match Resource_id.parent res with
    | Some p -> (
        match Resource_id.Tbl.find_opt t.entries p with
        | Some e -> List.filter Lock_core.reaches_down e.holds
        | None -> [])
    | None -> []
  in
  let children =
    if Lock_core.needs_child_sweep res ~mode then
      match Hashtbl.find_opt t.by_table (Resource_id.table_of res) with
      | Some set ->
          Resource_id.Tbl.fold
            (fun r () acc ->
              match r with
              | Resource_id.Tuple _ -> (
                  match Resource_id.Tbl.find_opt t.entries r with
                  | Some e -> e.holds @ acc
                  | None -> acc)
              | Resource_id.Table _ -> acc)
            set []
      | None -> []
    else []
  in
  own @ parent @ children

let holds_compatible t res ~txn ~mode ~requester =
  Lock_core.holds_compatible t.sem (relevant_holds t res ~mode) ~txn ~mode ~requester

(* --- bounded-bypass fairness ---------------------------------------------

   FIFO already prevents a request from overtaking a conflicting waiter in
   the same queue, but three avenues bypass it: upgrades (which only check
   holders), re-entrant grants, and cross-level grants (a tuple grant never
   consults the table-level queue, and an absolute table grant never consults
   the tuple queues).  Every such grant increments [w_bypassed] on the
   conflicting waiters it overtook; once a waiter has been overtaken
   [max_bypass] times the table refuses further conflicting grants until it
   is served.  Compensating requests are exempt from the gate (§3.4: nothing
   may delay compensation). *)

(* waiters in other queues a grant on [res] can overtake: the parent table's
   queue for a tuple grant, the tuple queues for an absolute table grant *)
let cross_level_waiters t res ~mode =
  let parent =
    match Resource_id.parent res with
    | Some p -> (
        match Resource_id.Tbl.find_opt t.entries p with Some e -> e.queue | None -> [])
    | None -> []
  in
  let children =
    match (res, mode) with
    | Resource_id.Table _, (Mode.IS | Mode.IX) -> []
    | Resource_id.Table _, _ -> (
        match Hashtbl.find_opt t.by_table (Resource_id.table_of res) with
        | Some set ->
            Resource_id.Tbl.fold
              (fun r () acc ->
                match r with
                | Resource_id.Tuple _ -> (
                    match Resource_id.Tbl.find_opt t.entries r with
                    | Some e -> e.queue @ acc
                    | None -> acc)
                | Resource_id.Table _ -> acc)
              set []
        | None -> [])
    | Resource_id.Tuple _, _ -> []
  in
  parent @ children

(* a foreign waiter already overtaken [max_bypass] times that this grant
   would overtake again — the fairness gate's refusal witness *)
let starving_waiter t ~txn ~mode ~step_type waiters =
  List.find_opt
    (fun w ->
      w.w_txn <> txn
      && w.w_bypassed >= t.max_bypass
      && Lock_core.grant_blocks_waiter t.sem ~mode ~step_type w)
    waiters

let record_bypass t ~txn ~mode ~step_type waiters =
  List.iter
    (fun w ->
      if w.w_txn <> txn && Lock_core.grant_blocks_waiter t.sem ~mode ~step_type w then
        w.w_bypassed <- w.w_bypassed + 1)
    waiters

let queue_ahead_compatible t ~txn ~mode ~requester ahead =
  Lock_core.queue_ahead_compatible t.sem ~txn ~mode ~requester ahead

let add_hold t e ~txn ~step_type ~mode res =
  e.holds <- e.holds @ [ { h_txn = txn; h_mode = mode; h_step = step_type; h_count = 1 } ];
  note_entry_active t res;
  note_held t ~txn res;
  act t txn 1

(* Post-hoc classification of a decision, for the observer.  Runs only when
   an observer is installed; re-reads the same holds/queue the decision
   used. *)
let classify_decision t ~txn ~mode ~requester ?starved ~granted rel queue_ahead =
  let checks = Lock_core.checks_against t.sem rel ~txn ~mode ~requester in
  if granted then
    Dec_granted
      { past_2pl = Lock_core.past_2pl_count rel ~txn ~mode; reentrant = false; checks }
  else
    match starved with
    | Some s ->
        (* fairness deferral: otherwise-compatible, held back behind a
           starved waiter the grant would overtake again *)
        Dec_blocked
          {
            blocker_txn = s.w_txn;
            blocker_mode = s.w_mode;
            blocker_waiting = true;
            assertion = None;
            interfering_step = None;
            checks;
          }
    | None -> (
    match Lock_core.first_blocking_hold t.sem rel ~txn ~mode ~requester with
    | Some h ->
        let ac = Lock_core.assertional_check t.sem ~held:h.h_mode ~held_step:h.h_step ~req:mode ~requester in
        Dec_blocked
          {
            blocker_txn = h.h_txn;
            blocker_mode = h.h_mode;
            blocker_waiting = false;
            assertion = Option.map (fun c -> c.Lock_core.ac_assertion) ac;
            interfering_step = Option.map (fun c -> c.Lock_core.ac_step_type) ac;
            checks;
          }
    | None -> (
        match Lock_core.first_blocking_waiter t.sem queue_ahead ~txn ~mode ~requester with
        | Some w ->
            let ac =
              Lock_core.assertional_check t.sem ~held:w.w_mode ~held_step:w.w_step ~req:mode ~requester
            in
            Dec_blocked
              {
                blocker_txn = w.w_txn;
                blocker_mode = w.w_mode;
                blocker_waiting = true;
                assertion = Option.map (fun c -> c.Lock_core.ac_assertion) ac;
                interfering_step = Option.map (fun c -> c.Lock_core.ac_step_type) ac;
                checks;
              }
        | None ->
            (* cannot happen: a blocked request conflicts somewhere; emit a
               self-blocked marker rather than failing the observer *)
            Dec_blocked
              {
                blocker_txn = txn;
                blocker_mode = mode;
                blocker_waiting = false;
                assertion = None;
                interfering_step = None;
                checks;
              }))

let submit t (r : Lock_request.t) =
  let txn = r.Lock_request.txn
  and step_type = r.Lock_request.step_type
  and admission = r.Lock_request.admission
  and compensating = r.Lock_request.compensating
  and mode = r.Lock_request.mode
  and res = r.Lock_request.resource in
  (* §3.4 compensation-sparing: a compensating request never times out *)
  let deadline = if compensating then None else r.Lock_request.deadline in
  let e = entry t res in
  match Lock_core.find_covering e.holds ~txn ~mode with
  | Some h ->
      h.h_count <- h.h_count + 1;
      record_bypass t ~txn ~mode ~step_type (e.queue @ cross_level_waiters t res ~mode);
      (match t.obs with
      | None -> ()
      | Some f ->
          f
            (Ob_request
               {
                 or_txn = txn;
                 or_step_type = step_type;
                 or_mode = mode;
                 or_resource = res;
                 or_decision = Dec_granted { past_2pl = 0; reentrant = true; checks = [] };
               }));
      Granted
  | None ->
      let requester = Mode.{ req_step_type = step_type; req_admission = admission } in
      let upgrade = List.exists (fun h -> h.h_txn = txn) e.holds in
      let rel = relevant_holds t res ~mode in
      let affected = e.queue @ cross_level_waiters t res ~mode in
      let compatible =
        Lock_core.holds_compatible t.sem rel ~txn ~mode ~requester
        && (upgrade || queue_ahead_compatible t ~txn ~mode ~requester e.queue)
      in
      let starved =
        if compatible && not compensating then
          starving_waiter t ~txn ~mode ~step_type affected
        else None
      in
      let granted = compatible && starved = None in
      (match t.obs with
      | None -> ()
      | Some f ->
          f
            (Ob_request
               {
                 or_txn = txn;
                 or_step_type = step_type;
                 or_mode = mode;
                 or_resource = res;
                 or_decision =
                   classify_decision t ~txn ~mode ~requester ?starved ~granted rel e.queue;
               }));
      if granted then begin
        record_bypass t ~txn ~mode ~step_type affected;
        add_hold t e ~txn ~step_type ~mode res;
        Granted
      end
      else begin
        let ticket = t.next_ticket in
        t.next_ticket <- ticket + 1;
        let w =
          {
            w_ticket = ticket;
            w_txn = txn;
            w_mode = mode;
            w_step = step_type;
            w_requester = requester;
            w_resource = res;
            w_compensating = compensating;
            w_deadline = deadline;
            w_enqueued = t.clock ();
            w_bypassed = 0;
          }
        in
        (* upgrades wait at the head so they cannot deadlock behind requests
           that conflict with the lock they already hold *)
        e.queue <- (if upgrade then w :: e.queue else e.queue @ [ w ]);
        note_entry_active t res;
        Hashtbl.replace t.tickets ticket w;
        act t txn 1;
        Queued ticket
      end

let attach_req t (r : Lock_request.t) =
  let txn = r.Lock_request.txn
  and step_type = r.Lock_request.step_type
  and mode = r.Lock_request.mode
  and res = r.Lock_request.resource in
  (match t.obs with
  | None -> ()
  | Some f ->
      f (Ob_attach { oa_txn = txn; oa_step_type = step_type; oa_mode = mode; oa_resource = res }));
  let e = entry t res in
  (* unconditional grants still count against the fairness bound of the
     waiters they overtake *)
  record_bypass t ~txn ~mode ~step_type (e.queue @ cross_level_waiters t res ~mode);
  match
    List.find_opt (fun h -> h.h_txn = txn && Mode.equal h.h_mode mode) e.holds
  with
  | Some h -> h.h_count <- h.h_count + 1
  | None -> add_hold t e ~txn ~step_type ~mode res

(* Grant the maximal FIFO-respecting set of waiters on [e].  A promotion
   grant is subject to the same fairness gate as a fresh request: it may not
   overtake (again) a starved waiter it was already counted past — skipped
   same-queue waiters and cross-level queues both count. *)
let promote_entry t e =
  let rec loop granted still_waiting = function
    | [] ->
        e.queue <- List.rev still_waiting;
        List.rev granted
    | w :: rest ->
        let overtaken =
          List.rev still_waiting @ cross_level_waiters t w.w_resource ~mode:w.w_mode
        in
        let compatible =
          holds_compatible t w.w_resource ~txn:w.w_txn ~mode:w.w_mode ~requester:w.w_requester
          && queue_ahead_compatible t ~txn:w.w_txn ~mode:w.w_mode ~requester:w.w_requester
               (List.rev still_waiting)
        in
        let fair =
          w.w_compensating
          || starving_waiter t ~txn:w.w_txn ~mode:w.w_mode ~step_type:w.w_step overtaken
             = None
        in
        if compatible && fair then begin
          record_bypass t ~txn:w.w_txn ~mode:w.w_mode ~step_type:w.w_step overtaken;
          add_hold t e ~txn:w.w_txn ~step_type:w.w_step ~mode:w.w_mode w.w_resource;
          Hashtbl.remove t.tickets w.w_ticket;
          act t w.w_txn (-1);
          (match t.obs with
          | None -> ()
          | Some f ->
              f (Ob_wake { ow_txn = w.w_txn; ow_mode = w.w_mode; ow_resource = w.w_resource }));
          loop ({ woken_ticket = w.w_ticket; woken_txn = w.w_txn } :: granted) still_waiting rest
        end
        else loop granted (w :: still_waiting) rest
  in
  loop [] [] e.queue

(* A release on any resource of a table can unblock waiters anywhere in that
   table (cross-level conflicts), so promotion sweeps the table's queued
   entries to a fixpoint. *)
let promote_table t tname =
  let rec sweep acc =
    let entries_with_queues =
      match Hashtbl.find_opt t.by_table tname with
      | Some set ->
          Resource_id.Tbl.fold
            (fun r () acc ->
              match Resource_id.Tbl.find_opt t.entries r with
              | Some e when e.queue <> [] -> e :: acc
              | Some _ | None -> acc)
            set []
          |> List.sort (fun a b -> Resource_id.compare a.e_resource b.e_resource)
      | None -> []
    in
    let woken = List.concat_map (fun e -> promote_entry t e) entries_with_queues in
    if woken = [] then acc else sweep (acc @ woken)
  in
  sweep []

(* gc every drained entry of the table *)
let gc_table_drained t tname =
  match Hashtbl.find_opt t.by_table tname with
  | Some set ->
      let drained =
        Resource_id.Tbl.fold
          (fun r () acc ->
            match Resource_id.Tbl.find_opt t.entries r with
            | Some e when e.holds = [] && e.queue = [] -> e :: acc
            | Some _ -> acc
            | None -> acc)
          set []
      in
      List.iter (gc_entry t) drained
  | None -> ()

let after_change t e =
  let tname = Resource_id.table_of e.e_resource in
  let woken = promote_table t tname in
  gc_entry t e;
  gc_table_drained t tname;
  woken

(* Promotion poke without a triggering release: run the table's promotion
   sweep to a fixpoint and gc what drained.  The sharded table calls this
   after a lock-free fast-path retreat (a rolled-back optimistic install may
   have transiently blocked a grantable waiter). *)
let promote t ~table =
  let woken = promote_table t table in
  gc_table_drained t table;
  woken

(* Unconditional install of an already-granted hold, used when the sharded
   table migrates a lock-free fast-path grant into the sequential table (the
   resource is becoming contended).  The grant decision already happened —
   and was already observed — at fast-install time, and no waiter existed
   then (fast installs require an empty shard table), so neither the observer
   nor the bypass bookkeeping fires here. *)
let import_hold t ~txn ~step_type ~mode ~count res =
  if count < 1 then invalid_arg "Lock_table.import_hold: count must be >= 1";
  let e = entry t res in
  match
    List.find_opt (fun h -> h.h_txn = txn && Mode.equal h.h_mode mode) e.holds
  with
  | Some h -> h.h_count <- h.h_count + count
  | None ->
      e.holds <-
        e.holds @ [ { h_txn = txn; h_mode = mode; h_step = step_type; h_count = count } ];
      note_entry_active t res;
      note_held t ~txn res;
      act t txn 1

let release t ~txn mode res =
  let e = entry t res in
  match
    List.find_opt (fun h -> h.h_txn = txn && Mode.equal h.h_mode mode) e.holds
  with
  | None ->
      gc_entry t e;
      invalid_arg
        (Format.asprintf "Lock_table.release: %d does not hold %a on %a" txn Mode.pp mode
           Resource_id.pp res)
  | Some h ->
      if h.h_count > 1 then begin
        h.h_count <- h.h_count - 1;
        []
      end
      else begin
        e.holds <- List.filter (fun h' -> h' != h) e.holds;
        act t txn (-1);
        (match t.obs with
        | None -> ()
        | Some f -> f (Ob_release { ol_txn = txn; ol_mode = mode; ol_resource = res }));
        forget_held_if_empty t ~txn res e;
        after_change t e
      end

let release_where t ~txn pred =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> []
  | Some set ->
      let resources = Resource_id.Tbl.fold (fun res () acc -> res :: acc) set [] in
      List.concat_map
        (fun res ->
          let e = entry t res in
          let mine, kept =
            List.partition (fun h -> h.h_txn = txn && pred res h.h_mode) e.holds
          in
          if mine = [] then begin
            gc_entry t e;
            []
          end
          else begin
            e.holds <- kept;
            act t txn (-List.length mine);
            (match t.obs with
            | None -> ()
            | Some f ->
                List.iter
                  (fun h -> f (Ob_release { ol_txn = txn; ol_mode = h.h_mode; ol_resource = res }))
                  mine);
            forget_held_if_empty t ~txn res e;
            after_change t e
          end)
        (List.sort Resource_id.compare resources)

let cancel t ~ticket =
  match Hashtbl.find_opt t.tickets ticket with
  | None -> []
  | Some w ->
      Hashtbl.remove t.tickets ticket;
      act t w.w_txn (-1);
      (match t.obs with
      | None -> ()
      | Some f -> f (Ob_cancel { oc_txn = w.w_txn; oc_resource = w.w_resource }));
      let e = entry t w.w_resource in
      e.queue <- List.filter (fun w' -> w'.w_ticket <> ticket) e.queue;
      after_change t e

let release_all t ~txn =
  (* withdraw any outstanding wait first so promotion is not blocked by it *)
  let my_tickets =
    Hashtbl.fold (fun tk w acc -> if w.w_txn = txn then tk :: acc else acc) t.tickets []
  in
  let w1 = List.concat_map (fun tk -> cancel t ~ticket:tk) my_tickets in
  let w2 = release_where t ~txn (fun _ _ -> true) in
  w1 @ w2

let outstanding t ~ticket = Hashtbl.mem t.tickets ticket
let ticket_txn t ~ticket = Option.map (fun w -> w.w_txn) (Hashtbl.find_opt t.tickets ticket)

let outstanding_tickets t ~txn =
  Hashtbl.fold (fun tk w acc -> if w.w_txn = txn then tk :: acc else acc) t.tickets []

let holders t res =
  match Resource_id.Tbl.find_opt t.entries res with
  | None -> []
  | Some e -> List.map (fun h -> (h.h_txn, h.h_mode, h.h_step)) e.holds

let held_by t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> []
  | Some set ->
      Resource_id.Tbl.fold
        (fun res () acc ->
          let holds =
            match Resource_id.Tbl.find_opt t.entries res with Some e -> e.holds | None -> []
          in
          List.filter_map (fun h -> if h.h_txn = txn then Some (res, h.h_mode) else None) holds
          @ acc)
        set []
      |> List.sort compare

let waiting_on t ~txn =
  Hashtbl.fold
    (fun _ w acc -> if w.w_txn = txn then w.w_resource :: acc else acc)
    t.tickets []

let waiter_blockers t w =
  let from_holds =
    List.filter_map
      (fun h ->
        if
          h.h_txn <> w.w_txn
          && hold_conflict t h ~mode:w.w_mode ~requester:w.w_requester
        then Some h.h_txn
        else None)
      (relevant_holds t w.w_resource ~mode:w.w_mode)
  in
  let e = entry t w.w_resource in
  let rec ahead acc = function
    | [] -> [] (* w not queued here anymore *)
    | w' :: _ when w'.w_ticket = w.w_ticket -> List.rev acc
    | w' :: rest -> ahead (w' :: acc) rest
  in
  let ahead_ws = ahead [] e.queue in
  let from_queue =
    List.filter_map
      (fun w' ->
        if w'.w_txn <> w.w_txn && waiter_conflict t w' ~mode:w.w_mode ~requester:w.w_requester
        then Some w'.w_txn
        else None)
      ahead_ws
  in
  (* fairness edges: a waiter deferred by the bounded-bypass gate is waiting
     on the starved waiters its grant would overtake.  Without these edges a
     gate-induced wedge would be invisible to the deadlock detector. *)
  let from_fairness =
    if w.w_compensating then []
    else
      List.filter_map
        (fun s ->
          if
            s.w_txn <> w.w_txn
            && s.w_bypassed >= t.max_bypass
            && Lock_core.grant_blocks_waiter t.sem ~mode:w.w_mode ~step_type:w.w_step s
          then Some s.w_txn
          else None)
        (ahead_ws @ cross_level_waiters t w.w_resource ~mode:w.w_mode)
  in
  gc_entry t e;
  List.sort_uniq compare (from_holds @ from_queue @ from_fairness)

let blockers t ~ticket =
  match Hashtbl.find_opt t.tickets ticket with
  | None -> []
  | Some w -> waiter_blockers t w

let wait_edges t =
  Hashtbl.fold
    (fun _ w acc -> List.map (fun b -> (w.w_txn, b)) (waiter_blockers t w) @ acc)
    t.tickets []

let find_cycle t ~from = Lock_core.find_cycle ~edges:(wait_edges t) ~from

let compensating_waiter t ~txn =
  Hashtbl.fold
    (fun _ w acc -> acc || (w.w_txn = txn && w.w_compensating))
    t.tickets false

(* Withdraw every non-compensating waiter whose deadline has passed.  The
   expired requests are reported to the caller (who turns them into timeout
   aborts); the wakeups are the promotions their withdrawal enabled. *)
let expire_overdue t ~now =
  let overdue =
    Hashtbl.fold
      (fun _ w acc ->
        match w.w_deadline with
        | Some d when d <= now && not w.w_compensating -> w :: acc
        | Some _ | None -> acc)
      t.tickets []
    |> List.sort (fun a b -> compare a.w_ticket b.w_ticket)
  in
  let wakeups = List.concat_map (fun w -> cancel t ~ticket:w.w_ticket) overdue in
  let expired =
    List.map
      (fun w ->
        {
          ex_ticket = w.w_ticket;
          ex_txn = w.w_txn;
          ex_mode = w.w_mode;
          ex_resource = w.w_resource;
          ex_waited = now -. w.w_enqueued;
        })
      overdue
  in
  (expired, wakeups)

let oldest_wait t ~now =
  Hashtbl.fold (fun _ w acc -> Float.max acc (now -. w.w_enqueued)) t.tickets 0.

let max_bypassed t = Hashtbl.fold (fun _ w acc -> max acc w.w_bypassed) t.tickets 0

let lock_count t =
  Resource_id.Tbl.fold (fun _ e acc -> acc + List.length e.holds) t.entries 0

let waiter_count t = Hashtbl.length t.tickets
let entry_count t = Resource_id.Tbl.length t.entries

let pp_state ppf t =
  Resource_id.Tbl.iter
    (fun res e ->
      if e.holds <> [] || e.queue <> [] then begin
        Format.fprintf ppf "@[<h>%a:" Resource_id.pp res;
        List.iter
          (fun h -> Format.fprintf ppf " held(T%d,%a,x%d)" h.h_txn Mode.pp h.h_mode h.h_count)
          e.holds;
        List.iter (fun w -> Format.fprintf ppf " wait(T%d,%a)" w.w_txn Mode.pp w.w_mode) e.queue;
        Format.fprintf ppf "@]@."
      end)
    t.entries
