(** The lock manager.

    Synchronous by design: {!request} never blocks — it either grants or
    queues and returns a ticket; {!release} and friends return the set of
    queued requests that became grantable, and the {e caller} (simulator
    driver, test harness, example scheduler) decides how waiting and waking
    are realised.  This keeps every concurrency-control decision unit-testable
    with hand-built schedules.

    Queuing is FIFO with two standard refinements: a request by a transaction
    that already holds a lock on the resource (an upgrade) checks only against
    holders and, when blocked, waits at the head of the queue; all other
    requests also respect the queue (they will not overtake a waiter they
    conflict with).

    Overload robustness (DESIGN.md §13): requests may carry a lock-wait
    deadline checked by {!expire_overdue}; grants that bypass the FIFO
    discipline (upgrades, re-entrant grants, attaches, cross-level grants)
    are counted against the overtaken waiters, and once a waiter has been
    overtaken [max_bypass] times the table stops granting past it
    (bounded-bypass fairness).  Compensating requests are exempt from both:
    they never time out and are never gated (§3.4). *)

type t

type ticket = int

type grant = Granted | Queued of ticket

type wakeup = { woken_ticket : ticket; woken_txn : int }

type expired = {
  ex_ticket : ticket;
  ex_txn : int;
  ex_mode : Mode.t;
  ex_resource : Resource_id.t;
  ex_waited : float;  (** seconds spent queued, in the table's clock *)
}
(** A queued request withdrawn by {!expire_overdue}. *)

(** {2 Decision observations}

    Every grant/block decision, grant promotion, release and cancellation can
    be reported to an installed observer — the feed the observability layer
    (lib/obs) turns into trace events and conflict accounting.  With no
    observer installed ({!create}'s default) the instrumentation is a single
    [None] match per operation and allocates nothing. *)

type decision =
  | Dec_granted of {
      past_2pl : int;
          (** foreign holds whose {!Mode.twopl_shadow} conflicts with the
              request: the false conflicts a strict-2PL system would have
              taken where the ACC granted (Figs. 2–4's quantity) *)
      reentrant : bool;  (** covered by an own hold; no compatibility check ran *)
      checks : Lock_core.acheck list;  (** interference-oracle consultations *)
    }
  | Dec_blocked of {
      blocker_txn : int;
      blocker_mode : Mode.t;
      blocker_waiting : bool;
          (** blocked behind a queued waiter (FIFO discipline), not a holder *)
      assertion : int option;  (** the assertion, when the conflict is assertional *)
      interfering_step : int option;  (** the interfering step type, likewise *)
      checks : Lock_core.acheck list;
    }

type observation =
  | Ob_request of {
      or_txn : int;
      or_step_type : int;
      or_mode : Mode.t;
      or_resource : Resource_id.t;
      or_decision : decision;
    }
  | Ob_attach of { oa_txn : int; oa_step_type : int; oa_mode : Mode.t; oa_resource : Resource_id.t }
  | Ob_wake of { ow_txn : int; ow_mode : Mode.t; ow_resource : Resource_id.t }
      (** a queued request granted by promotion after a release/cancel *)
  | Ob_release of { ol_txn : int; ol_mode : Mode.t; ol_resource : Resource_id.t }
      (** final release of a hold (re-entrant count reaching zero) *)
  | Ob_cancel of { oc_txn : int; oc_resource : Resource_id.t }

val create : ?max_bypass:int -> ?clock:(unit -> float) -> Mode.semantics -> t
(** [max_bypass] bounds how many conflicting grants may overtake one waiter
    (default {!Lock_core.default_max_bypass}); [clock] supplies the timestamps
    used for queue times and deadlines (default: the constant 0 clock, which
    disables aging — the simulator's virtual time or [Unix.gettimeofday] are
    the real choices). *)

val set_observer : t -> (observation -> unit) option -> unit
(** Install (or clear) the decision observer.  The observer runs synchronously
    inside lock-table operations — in the sharded table, under the shard
    mutex — so it must be fast and must not call back into the table. *)

val set_activity_hook : t -> (int -> int -> unit) option -> unit
(** Install (or clear) the per-transaction activity hook, called with
    [(txn, +1)] whenever a hold record or waiter of [txn] enters the table
    and [(txn, -1)] when one leaves (re-entrant count changes are not
    reported).  The sharded table points this at per-shard atomic counters
    so "does txn hold or wait for anything here?" is answerable without the
    shard mutex. *)

val submit : t -> Lock_request.t -> grant
(** Ask for a lock.  [admission] marks the transaction-initiation acquisition
    of the first interstep assertion (prefix-interference checks apply);
    [compensating] marks requests made on behalf of a compensating step,
    which the deadlock resolver must never choose as victim.  [deadline] is an
    absolute time in the table's clock after which a queued request may be
    withdrawn by {!expire_overdue}; it is ignored on compensating requests
    (§3.4: compensation is never timed out).  Re-requesting a covered mode is
    re-entrant and always granted. *)

val attach_req : t -> Lock_request.t -> unit
(** Unconditional grant, bypassing all conflict checks: the §3.3 rule
    "before initiating step [S_ij]: unconditionally grant [A(pre(S_i,j+1))]
    locks".  Safe because the protocol only attaches assertional locks to
    items on which the transaction already holds a conventional lock.  The
    request's [admission]/[compensating]/[deadline] fields are ignored. *)

val release : t -> txn:int -> Mode.t -> Resource_id.t -> wakeup list
(** Release one unit of one hold.  Raises [Invalid_argument] if not held. *)

val release_where : t -> txn:int -> (Resource_id.t -> Mode.t -> bool) -> wakeup list
(** Drop every hold of [txn] satisfying the predicate (regardless of
    re-entrant count); returns all wakeups across resources. *)

val release_all : t -> txn:int -> wakeup list
(** Commit/final-abort: drop all holds {e and} any outstanding waiting
    request of the transaction. *)

val cancel : t -> ticket:ticket -> wakeup list
(** Withdraw a waiting request (used when its step is chosen as deadlock
    victim); no-op if the ticket is no longer outstanding. *)

val promote : t -> table:string -> wakeup list
(** Run the table's promotion sweep to a fixpoint (and gc drained entries)
    without a triggering release.  Used by the sharded table after rolling
    back an optimistic fast-path install that may have transiently blocked a
    grantable waiter. *)

val import_hold :
  t -> txn:int -> step_type:int -> mode:Mode.t -> count:int -> Resource_id.t -> unit
(** Install an already-granted hold unconditionally, merging into an existing
    hold of the same (txn, mode) if present.  Used when the sharded table
    migrates a lock-free fast-path grant into the table because the resource
    is becoming contended.  The grant was decided (and observed) at
    fast-install time, so no conflict check, observation, or bypass
    accounting happens here.  Raises [Invalid_argument] if [count < 1]. *)

val expire_overdue : t -> now:float -> expired list * wakeup list
(** Withdraw every non-compensating waiter whose deadline is at or before
    [now] (in the table's clock).  Returns the expired requests — which the
    caller turns into timeout aborts — and the promotions their withdrawal
    enabled. *)

val oldest_wait : t -> now:float -> float
(** Age in seconds of the longest-queued outstanding request (0 when the
    queue is empty) — the watchdog's wedge signal. *)

val max_bypassed : t -> int
(** Largest bypass count over outstanding waiters (fairness introspection). *)

val outstanding : t -> ticket:ticket -> bool
(** Is the ticket still waiting?  (False once granted or cancelled.) *)

val ticket_txn : t -> ticket:ticket -> int option

val outstanding_tickets : t -> txn:int -> ticket list
(** All outstanding waiting tickets of the transaction (at most one in
    well-formed executions; the sharded table's victim killer sweeps them). *)

(* Introspection *)

val holders : t -> Resource_id.t -> (int * Mode.t * int) list
(** (txn, mode, step_type) of each hold, oldest first. *)

val held_by : t -> txn:int -> (Resource_id.t * Mode.t) list
val waiting_on : t -> txn:int -> Resource_id.t list

val blockers : t -> ticket:ticket -> int list
(** Transactions this waiter is waiting for (holders it conflicts with and
    conflicting waiters ahead of it), deduplicated. *)

val wait_edges : t -> (int * int) list
(** All (waiter-txn, blocking-txn) edges of the waits-for graph. *)

val find_cycle : t -> from:int -> int list option
(** A waits-for cycle through [from], as the list of transactions on the
    cycle (starting with [from]), if one exists. *)

val compensating_waiter : t -> txn:int -> bool
(** Is this transaction's outstanding wait flagged as compensating? *)

val lock_count : t -> int
(** Total holds outstanding (for leak tests). *)

val waiter_count : t -> int
(** Outstanding queued requests (for leak tests). *)

val entry_count : t -> int
(** Live lock-table entries (for leak tests). *)

val pp_state : Format.formatter -> t -> unit
