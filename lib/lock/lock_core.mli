(** The pure decision core of the lock manager, shared by the sequential
    {!Lock_table} and the sharded multi-domain table (lib/parallel).  All
    compatibility, cycle-search and victim-selection logic lives here so the
    two tables cannot drift. *)

type hold = {
  h_txn : int;
  h_mode : Mode.t;
  h_step : int;
  mutable h_count : int;  (** re-entrant grants *)
}

type waiter = {
  w_ticket : int;
  w_txn : int;
  w_mode : Mode.t;
  w_step : int;
  w_requester : Mode.requester;
  w_resource : Resource_id.t;
  w_compensating : bool;
  w_deadline : float option;
      (** absolute expiry in the owning table's clock; [None] for requests
          without a deadline — compensating requests never carry one *)
  w_enqueued : float;  (** table-clock timestamp at queue time *)
  mutable w_bypassed : int;
      (** conflicting grants that have overtaken this waiter (fairness) *)
}

val default_max_bypass : int
(** Default bound on conflicting grants past one waiter before the fairness
    gate refuses further bypass. *)

val hold_conflict : Mode.semantics -> hold -> mode:Mode.t -> requester:Mode.requester -> bool
val waiter_conflict : Mode.semantics -> waiter -> mode:Mode.t -> requester:Mode.requester -> bool

val grant_blocks_waiter : Mode.semantics -> mode:Mode.t -> step_type:int -> waiter -> bool
(** Would granting [mode] (requested by step [step_type]) delay the waiter?
    The bypass test of the bounded-bypass fairness rule. *)

val holds_compatible :
  Mode.semantics -> hold list -> txn:int -> mode:Mode.t -> requester:Mode.requester -> bool
(** Is a request by [txn] compatible with every foreign hold in the list? *)

val queue_ahead_compatible :
  Mode.semantics -> txn:int -> mode:Mode.t -> requester:Mode.requester -> waiter list -> bool
(** FIFO discipline: may the request overtake (i.e. not conflict with) every
    foreign waiter queued ahead of it? *)

val reaches_down : hold -> bool
(** Does a table-level hold constrain tuple-level requests?  (Intention modes
    do not; absolute S/X/A/Comp locks do.) *)

val needs_child_sweep : Resource_id.t -> mode:Mode.t -> bool
(** Must a request on this resource also be checked against the table's
    tuple-level holds?  (Checked assertional requests on whole tables.) *)

val find_covering : hold list -> txn:int -> mode:Mode.t -> hold option
(** An existing hold of [txn] covering [mode] (re-entrant grant). *)

(** {2 Decision classification}

    Pure post-hoc analysis of a grant/block decision for the observability
    layer (lib/obs): which interference checks the decision ran, what blocked
    it, and whether a strict-2PL system would have blocked where the ACC did
    not.  Never consulted on the decision path itself. *)

type acheck = {
  ac_assertion : int;  (** assertion id consulted *)
  ac_step_type : int;  (** the potentially interfering step type under test *)
  ac_passed : bool;  (** oracle said “does not interfere” *)
}

val assertional_check :
  Mode.semantics ->
  held:Mode.t ->
  held_step:int ->
  req:Mode.t ->
  requester:Mode.requester ->
  acheck option
(** The interference-oracle consultation a (held, requested) pair triggers,
    or [None] when the static matrix decides. *)

val checks_against :
  Mode.semantics -> hold list -> txn:int -> mode:Mode.t -> requester:Mode.requester ->
  acheck list
(** All oracle consultations a request runs against foreign holds. *)

val past_2pl_count : hold list -> txn:int -> mode:Mode.t -> int
(** Foreign holds whose {!Mode.twopl_shadow} conflicts with the request: on a
    granted request, the false conflicts a conventional system would have
    taken (the quantity of the paper's Figs. 2–4). *)

val first_blocking_hold :
  Mode.semantics -> hold list -> txn:int -> mode:Mode.t -> requester:Mode.requester ->
  hold option

val first_blocking_waiter :
  Mode.semantics -> waiter list -> txn:int -> mode:Mode.t -> requester:Mode.requester ->
  waiter option

val find_cycle : edges:(int * int) list -> from:int -> int list option
(** A waits-for cycle through [from] in the given edge list, as the list of
    transactions on the cycle (starting with [from]), if one exists. *)

val victim_policy :
  is_compensating:(int -> bool) -> requester:int -> cycle:int list -> int list
(** The paper's §3.4 policy: never victimize a transaction waiting on behalf
    of a compensating step; abort the transactions delaying it instead. *)
