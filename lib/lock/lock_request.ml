type t = {
  txn : int;
  step_type : int;
  admission : bool;
  compensating : bool;
  deadline : float option;
  mode : Mode.t;
  resource : Resource_id.t;
}

let make ~txn ?(step_type = 0) ?(admission = false) ?(compensating = false) ?deadline mode
    resource =
  { txn; step_type; admission; compensating; deadline; mode; resource }

(* Canonical order: primarily by resource, so every batch walks shared
   resources in one global sequence (no intra-batch deadlock edges); mode and
   txn break ties only to make the order total and the dedup stable. *)
let compare a b =
  match Resource_id.compare a.resource b.resource with
  | 0 -> (
      match Stdlib.compare a.mode b.mode with
      | 0 -> Stdlib.compare (a.txn, a.step_type, a.admission, a.compensating, a.deadline)
               (b.txn, b.step_type, b.admission, b.compensating, b.deadline)
      | c -> c)
  | c -> c

let canonicalize reqs = List.sort_uniq compare reqs

let pp ppf r =
  Format.fprintf ppf "@[<h>T%d:%a@ on@ %a%s%s%s@]" r.txn Mode.pp r.mode Resource_id.pp
    r.resource
    (if r.admission then " (admission)" else "")
    (if r.compensating then " (compensating)" else "")
    (match r.deadline with None -> "" | Some d -> Printf.sprintf " (deadline %.3f)" d)
