type t = IS | IX | S | X | A of int | Comp of int

type semantics = {
  step_interferes : step_type:int -> assertion:int -> bool;
  prefix_interferes : holder_assertion:int -> assertion:int -> bool;
}

let no_semantics =
  {
    step_interferes = (fun ~step_type:_ ~assertion:_ -> false);
    prefix_interferes = (fun ~holder_assertion:_ ~assertion:_ -> false);
  }

let conventional = function IS | IX | S | X -> true | A _ | Comp _ -> false

let covers held req =
  match (held, req) with
  | X, (X | S | IS | IX) -> true
  | S, (S | IS) -> true
  | IX, (IX | IS) -> true
  | IS, IS -> true
  | A a, A b -> a = b
  | Comp a, Comp b -> a = b
  | (X | S | IX | IS | A _ | Comp _), _ -> false

type requester = { req_step_type : int; req_admission : bool }

(* Classical compatibility of the hierarchical modes. *)
let conventional_conflict held req =
  match (held, req) with
  | IS, X | X, IS -> true
  | IX, (S | X) | (S | X), IX -> true
  | S, X | X, S | X, X -> true
  | S, S | IS, (IS | IX | S) | (IX | S), IS | IX, IX -> false
  | (A _ | Comp _), _ | _, (A _ | Comp _) -> assert false

let conflicts sem ~held ~held_step ~req ~requester =
  match (held, req) with
  (* conventional vs conventional: the textbook matrix *)
  | (IS | IX | S | X), (IS | IX | S | X) -> conventional_conflict held req
  (* a write blocked by a foreign active assertion it interferes with (§3.3,
     "acquire conventional read and write locks") *)
  | A a, X -> sem.step_interferes ~step_type:requester.req_step_type ~assertion:a
  (* reads never invalidate assertions; intention modes carry no data access *)
  | A _, (S | IS | IX) -> false
  (* an exclusive holder is mid-flight: a checked assertional request (an
     admission lock, or a legacy transaction's isolation lock) on the same
     item must wait if the holding step interferes with the assertion *)
  | X, A a -> sem.step_interferes ~step_type:held_step ~assertion:a
  | (IS | IX | S), A _ -> false
  (* admission: holder's A(pre(S_k,l)) stands for the completed prefix
     S_k,1..S_k,l-1; check the prefix as a whole against the new assertion *)
  | A held_a, A req_a when requester.req_admission ->
      sem.prefix_interferes ~holder_assertion:held_a ~assertion:req_a
  | A _, A _ -> false
  (* compensation guarantees (§3.4): an item a transaction has modified may
     later be re-written by its compensating step [cs]; assertions that [cs]
     would interfere with must not attach to the item, in either order *)
  | Comp cs, A a | A a, Comp cs -> sem.step_interferes ~step_type:cs ~assertion:a
  | Comp _, (IS | IX | S | X) | (IS | IX | S | X), Comp _ -> false
  | Comp _, Comp _ -> false

(* The conventional lock a non-ACC (strict 2PL) system would hold in place of
   each ACC mode: an assertional lock stands for the read locks of the steps
   it protects (held to commit under 2PL), a compensation lock for the write
   locks of the exposed items.  This is the shadow used by the conflict
   accounting to measure the paper's false-conflict reduction: a request that
   the ACC grants past a foreign hold whose shadow conflicts is exactly a
   conflict the one-level design eliminated. *)
let twopl_shadow = function A _ -> S | Comp _ -> X | (IS | IX | S | X) as m -> m

let twopl_would_block ~held ~req =
  conventional_conflict (twopl_shadow held) (twopl_shadow req)

let pp ppf = function
  | IS -> Format.pp_print_string ppf "IS"
  | IX -> Format.pp_print_string ppf "IX"
  | S -> Format.pp_print_string ppf "S"
  | X -> Format.pp_print_string ppf "X"
  | A a -> Format.fprintf ppf "A(%d)" a
  | Comp c -> Format.fprintf ppf "Comp(%d)" c

let equal (a : t) (b : t) = a = b
let to_string m = Format.asprintf "%a" pp m
