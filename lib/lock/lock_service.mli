(** The unified lock-manager interface.

    Both lock managers — the sequential {!Lock_table} driven by schedulers
    through tickets and wakeups, and the multi-domain sharded table of
    lib/parallel that blocks the calling domain — implement this first-class
    module type.  The executor, the ACC runtime, the deadlock detector, the
    watchdog and the drivers all program against [t]; which manager backs an
    engine is decided once, at construction.

    Requests are {!Lock_request.t} values; {!acquire_batch} is the hot-path
    payload: a step's declared footprint is sorted into canonical resource
    order ({!Lock_request.compare}) and, on the sharded backend, grouped per
    shard so each shard mutex is taken {e once per step} instead of once per
    lock.  Ordered acquisition inside a batch also removes intra-batch
    deadlock edges — any two batches lock their common resources in the same
    global sequence. *)

(** Operations of one lock-manager instance.  The functions close over the
    instance, so a backend is a value of type [t = (module S)]; use the
    same-named dispatch helpers below rather than unpacking by hand. *)
module type S = sig
  val backend_name : string
  (** ["sequential"] or ["sharded"] — for diagnostics and bench labels. *)

  val acquire : Lock_request.t -> unit
  (** Checked acquisition; when control returns normally the lock is held.
      How a queued request waits is the backend's affair: the sequential
      backend suspends the calling fiber (the executor's wait callback
      performs [Txn_effect.Wait_lock]), the sharded backend blocks the
      calling domain on the shard's condition variable.  Both surface
      victimization as [Txn_effect.Deadlock_victim] and deadline expiry as
      [Txn_effect.Lock_timeout]. *)

  val acquire_batch : Lock_request.t list -> unit
  (** Acquire a whole footprint: the batch is canonicalized
      ({!Lock_request.canonicalize} — sorted, exact duplicates coalesced)
      and acquired in that order.  The sharded backend takes each shard
      mutex once per batch.  On victimization or deadline expiry mid-batch
      the members already granted {e remain held} — the caller's abort path
      (rollback + release) reclaims them, exactly as it does for locks a
      partially executed step took one by one. *)

  val attach : Lock_request.t -> unit
  (** Unconditional grant (the §3.3 assertional-lock attach); the request's
      [admission]/[compensating]/[deadline] fields are ignored. *)

  val attach_batch : Lock_request.t list -> unit
  (** Attach a list of unconditional grants, in caller order (attaches
      cannot deadlock, so no canonicalization — multiplicity is preserved
      because each attach counts re-entrantly).  The sharded backend groups
      per shard and takes each mutex once. *)

  val release : txn:int -> Mode.t -> Resource_id.t -> unit
  (** Release one unit of one hold; wakeups are delivered internally (to the
      executor's wakeup hook, or the shard's sleepers). *)

  val release_where : txn:int -> (Resource_id.t -> Mode.t -> bool) -> unit
  val release_all : txn:int -> unit
  val cancel : ticket:int -> unit

  val outstanding : ticket:int -> bool
  val ticket_txn : ticket:int -> int option
  val outstanding_tickets : txn:int -> int list
  val holders : Resource_id.t -> (int * Mode.t * int) list
  val held_by : txn:int -> (Resource_id.t * Mode.t) list
  val waiting_on : txn:int -> Resource_id.t list
  val wait_edges : unit -> (int * int) list
  val find_cycle : from:int -> int list option
  val compensating_waiter : txn:int -> bool

  val expire : now:float -> Lock_table.expired list
  (** Withdraw every non-compensating wait whose deadline passed, deliver
      the promotions, and (sharded) wake the blocked acquirers with
      [Lock_timeout].  Tickets in the result are in the backend's encoding
      (globalized on the sharded table). *)

  val kill : txn:int -> int
  (** Victimize: withdraw every outstanding wait of the transaction, waking
      blocked acquirers with [Deadlock_victim] on the sharded backend.
      Returns the number of waits withdrawn. *)

  val lock_count : unit -> int
  val waiter_count : unit -> int
  val entry_count : unit -> int
  val oldest_wait : now:float -> float
  val max_bypassed : unit -> int

  val timeout_count : unit -> int
  (** Lock waits expired over the backend's lifetime (0 on the sequential
      backend, which leaves expiry to its scheduler). *)

  val mutex_acquisitions : unit -> int
  (** Shard-mutex lock operations over the backend's lifetime — the quantity
      {!acquire_batch} exists to reduce.  Constantly 0 on the sequential
      backend (no mutex). *)

  val fast_attempts : unit -> int
  (** Lock-free fast-path installs attempted over the backend's lifetime
      (DESIGN.md §17).  Constantly 0 on backends without a fast path,
      including the sequential one. *)

  val fast_hits : unit -> int
  (** Fast-path installs that validated and stuck: [fast_hits () /
      fast_attempts ()] is the fast-path hit rate the scale bench and its CI
      gate report. *)

  val set_observer : (Lock_table.observation -> unit) option -> unit
  val pp_state : Format.formatter -> unit -> unit
end

type t = (module S)
(** A lock-manager backend. *)

(** {1 Dispatch helpers}

    [Lock_service.acquire svc req] instead of
    [let (module M) = svc in M.acquire req]. *)

val backend_name : t -> string
val acquire : t -> Lock_request.t -> unit
val acquire_batch : t -> Lock_request.t list -> unit
val attach : t -> Lock_request.t -> unit
val attach_batch : t -> Lock_request.t list -> unit
val release : t -> txn:int -> Mode.t -> Resource_id.t -> unit
val release_where : t -> txn:int -> (Resource_id.t -> Mode.t -> bool) -> unit
val release_all : t -> txn:int -> unit
val cancel : t -> ticket:int -> unit
val outstanding : t -> ticket:int -> bool
val ticket_txn : t -> ticket:int -> int option
val outstanding_tickets : t -> txn:int -> int list
val holders : t -> Resource_id.t -> (int * Mode.t * int) list
val held_by : t -> txn:int -> (Resource_id.t * Mode.t) list
val waiting_on : t -> txn:int -> Resource_id.t list
val wait_edges : t -> (int * int) list
val find_cycle : t -> from:int -> int list option
val compensating_waiter : t -> txn:int -> bool
val expire : t -> now:float -> Lock_table.expired list
val kill : t -> txn:int -> int
val lock_count : t -> int
val waiter_count : t -> int
val entry_count : t -> int
val oldest_wait : t -> now:float -> float
val max_bypassed : t -> int
val timeout_count : t -> int
val mutex_acquisitions : t -> int
val fast_attempts : t -> int
val fast_hits : t -> int
val set_observer : t -> (Lock_table.observation -> unit) option -> unit
val pp_state : Format.formatter -> t -> unit

(** {1 Backends} *)

val of_table :
  wait:(ticket:int -> txn:int -> unit) ->
  deliver:(Lock_table.wakeup list -> unit) ->
  Lock_table.t ->
  t
(** The sequential backend over a {!Lock_table}.  [wait] realizes a queued
    request's suspension — the executor passes a closure performing
    [Txn_effect.Wait_lock] (this library cannot depend on the effect
    declarations, which live above it).  [deliver] receives every wakeup
    list produced by releases, cancellations and expiry, in the order the
    table produced them.  {!kill} withdraws waits but resuming the
    victim's fiber remains the scheduler's job, as it always was on this
    backend. *)
