(** Lock modes and their conflict relation.

    Beyond the classical hierarchical modes (IS/IX/S/X) there are the two
    modes the ACC adds (paper §3.2–3.4):

    - [A a] — an {e assertional lock} protecting interstep assertion [a]: a
      write by a step [s] on an item carrying a foreign [A a] is delayed iff
      the design-time interference table says [s] interferes with [a].
    - [Comp cs] — a {e compensation lock}: acquired by forward steps on every
      item they modify, naming the compensating step type [cs] that would undo
      them.  It blocks later foreign assertional locks that [cs] would
      interfere with, guaranteeing that a compensating step never waits on an
      assertional lock (the unrecoverable-deadlock prevention of §3.4).

    Conflicts involving [A]/[Comp] are not a static matrix: they defer to a
    {!semantics} oracle — the run-time face of the design-time interference
    tables. *)

type t =
  | IS  (** intend shared: tuple reads below this table *)
  | IX  (** intend exclusive: tuple writes below this table *)
  | S   (** shared *)
  | X   (** exclusive *)
  | A of int  (** assertional lock on assertion id *)
  | Comp of int  (** compensation lock naming a compensating step type *)

type semantics = {
  step_interferes : step_type:int -> assertion:int -> bool;
      (** Does an execution of step type [step_type] potentially falsify
          assertion [assertion]?  Looked up for X-vs-A, A-vs-Comp and
          Comp-vs-A pairs. *)
  prefix_interferes : holder_assertion:int -> assertion:int -> bool;
      (** Admission check of §3.3: the holder of [A holder_assertion] has
          completed (or is completing) the step prefix leading to it; does
          that prefix, as a whole, interfere with [assertion]? *)
}

val no_semantics : semantics
(** Oracle for plain 2PL workloads: no step interferes with anything (there
    are no assertional locks to protect). *)

val conventional : t -> bool
(** IS/IX/S/X — the modes released at step end; [A]/[Comp] survive. *)

val covers : t -> t -> bool
(** [covers held req]: holding [held] already grants [req] (e.g. X covers S,
    S covers IS, every mode covers itself). *)

type requester = {
  req_step_type : int;  (** design-time step type making the request *)
  req_admission : bool;
      (** true only for the transaction-initiation acquisition of
          [A (pre (S_i1))], which must run the prefix-interference check;
          mid-transaction assertional locks are granted unconditionally and
          never pass through conflict checking at all *)
}

val conflicts : semantics -> held:t -> held_step:int -> req:t -> requester:requester -> bool
(** Conflict between a lock held by one transaction and a request by a
    {e different} transaction (same-transaction pairs never conflict and must
    be filtered by the caller). *)

val twopl_shadow : t -> t
(** The conventional mode a strict-2PL system would hold in place of an ACC
    mode: [A _] stands for read locks held to commit ([S]), [Comp _] for the
    write locks of exposed items ([X]); conventional modes map to themselves. *)

val twopl_would_block : held:t -> req:t -> bool
(** Would a strict-2PL system have blocked this request?  Conflict of the
    {!twopl_shadow}s — the hypothetical the conflict accounting charges a
    request against to measure the paper's false-conflict reduction. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val to_string : t -> string
