module Value = Acc_relation.Value

type t = Table of string | Tuple of string * Value.t list

let table_of = function Table t -> t | Tuple (t, _) -> t
let parent = function Table _ -> None | Tuple (t, _) -> Some (Table t)

let equal a b =
  match (a, b) with
  | Table x, Table y -> String.equal x y
  | Tuple (x, kx), Tuple (y, ky) ->
      String.equal x y && List.length kx = List.length ky && List.for_all2 Value.equal kx ky
  | (Table _ | Tuple _), _ -> false

let hash = Hashtbl.hash

let compare a b =
  match (a, b) with
  | Table x, Table y -> String.compare x y
  | Table _, Tuple _ -> -1
  | Tuple _, Table _ -> 1
  | Tuple (x, kx), Tuple (y, ky) ->
      let c = String.compare x y in
      if c <> 0 then c else List.compare Value.compare kx ky

let pp ppf = function
  | Table t -> Format.fprintf ppf "table:%s" t
  | Tuple (t, k) ->
      Format.fprintf ppf "%s[%a]" t
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Value.pp)
        k

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hsh = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Tbl = Hashtbl.Make (Hsh)
