module Value = Acc_relation.Value
module Predicate = Acc_relation.Predicate

type mode = Read | Write

(* --- conservative per-column constraint summaries ------------------------ *)

(* The summary of what a conjunctive predicate says about one column. *)
type col_constraint = {
  eq : Value.t option;
  ne : Value.t list;
  lo : (Value.t * bool) option; (* bound, inclusive? *)
  hi : (Value.t * bool) option;
  inset : Value.t list option; (* IN list, when present *)
}

let top_constraint = { eq = None; ne = []; lo = None; hi = None; inset = None }

type summary =
  | Anything (* non-conjunctive structure: assume it can match any row *)
  | Cols of (string * col_constraint) list

let tighten_lo cur (v, incl) =
  match cur with
  | None -> Some (v, incl)
  | Some (v', incl') ->
      let c = Value.compare v v' in
      if c > 0 then Some (v, incl)
      else if c < 0 then Some (v', incl')
      else Some (v, incl && incl')

let tighten_hi cur (v, incl) =
  match cur with
  | None -> Some (v, incl)
  | Some (v', incl') ->
      let c = Value.compare v v' in
      if c < 0 then Some (v, incl)
      else if c > 0 then Some (v', incl')
      else Some (v, incl && incl')

let add_constraint cols col f =
  let cur = Option.value ~default:top_constraint (List.assoc_opt col cols) in
  (col, f cur) :: List.remove_assoc col cols

let rec summarize p =
  match p with
  | Predicate.True -> Cols []
  | Predicate.Eq (c, v) -> Cols [ (c, { top_constraint with eq = Some v }) ]
  | Predicate.Ne (c, v) -> Cols [ (c, { top_constraint with ne = [ v ] }) ]
  | Predicate.Cmp (op, c, v) ->
      let cc =
        match op with
        | Predicate.Lt -> { top_constraint with hi = Some (v, false) }
        | Predicate.Le -> { top_constraint with hi = Some (v, true) }
        | Predicate.Gt -> { top_constraint with lo = Some (v, false) }
        | Predicate.Ge -> { top_constraint with lo = Some (v, true) }
      in
      Cols [ (c, cc) ]
  | Predicate.In (c, vs) -> Cols [ (c, { top_constraint with inset = Some vs }) ]
  | Predicate.And (a, b) -> begin
      match (summarize a, summarize b) with
      | Anything, _ | _, Anything -> Anything
      | Cols ca, Cols cb ->
          let merge acc (col, cc) =
            add_constraint acc col (fun cur ->
                let eq, forced_empty =
                  match (cur.eq, cc.eq) with
                  | Some a, Some b when not (Value.equal a b) ->
                      (* x = a AND x = b with a <> b: unsatisfiable *)
                      (Some a, true)
                  | (Some _ as e), _ | _, e -> (e, false)
                in
                {
                  eq;
                  ne = cc.ne @ cur.ne;
                  lo = (match cc.lo with Some b -> tighten_lo cur.lo b | None -> cur.lo);
                  hi = (match cc.hi with Some b -> tighten_hi cur.hi b | None -> cur.hi);
                  inset =
                    (if forced_empty then Some []
                     else
                       match (cur.inset, cc.inset) with
                       | Some xs, Some ys ->
                           Some (List.filter (fun x -> List.exists (Value.equal x) ys) xs)
                       | Some xs, None -> Some xs
                       | None, s -> s);
                })
          in
          Cols (List.fold_left merge ca cb)
    end
  | Predicate.Or _ | Predicate.Not _ -> Anything

(* Is the merged constraint on one column satisfiable? *)
let satisfiable cc =
  let within v =
    (match cc.lo with
    | Some (b, incl) ->
        let c = Value.compare v b in
        if incl then c >= 0 else c > 0
    | None -> true)
    && (match cc.hi with
       | Some (b, incl) ->
           let c = Value.compare v b in
           if incl then c <= 0 else c < 0
       | None -> true)
    && not (List.exists (Value.equal v) cc.ne)
  in
  match (cc.eq, cc.inset) with
  | Some v, Some vs -> List.exists (Value.equal v) vs && within v
  | Some v, None -> within v
  | None, Some vs -> List.exists within vs
  | None, None -> (
      (* interval nonempty?  discrete gaps from [ne] are ignored: sound,
         conservative *)
      match (cc.lo, cc.hi) with
      | Some (l, li), Some (h, hi_incl) ->
          let c = Value.compare l h in
          c < 0 || (c = 0 && li && hi_incl)
      | _ -> true)

(* merge the two summaries column-wise and test satisfiability *)
let may_intersect a b =
  match summarize (Predicate.And (a, b)) with
  | Anything -> true
  | Cols cols -> List.for_all (fun (_, cc) -> satisfiable cc) cols

let definitely_disjoint a b = not (may_intersect a b)

(* --- the lock manager ------------------------------------------------------ *)

type lock = { l_txn : int; l_mode : mode; l_table : string; l_pred : Predicate.t }

type t = { mutable locks : lock list }

let create () = { locks = [] }

let conflict a b =
  a.l_txn <> b.l_txn
  && (a.l_mode = Write || b.l_mode = Write)
  && String.equal a.l_table b.l_table
  && may_intersect a.l_pred b.l_pred

let acquire t ~txn ~mode ~table pred =
  let candidate = { l_txn = txn; l_mode = mode; l_table = table; l_pred = pred } in
  match
    List.filter_map
      (fun held -> if conflict held candidate then Some held.l_txn else None)
      t.locks
  with
  | [] ->
      t.locks <- candidate :: t.locks;
      `Granted
  | blockers -> `Conflict (List.sort_uniq compare blockers)

let release_all t ~txn = t.locks <- List.filter (fun l -> l.l_txn <> txn) t.locks
let lock_count t = List.length t.locks
