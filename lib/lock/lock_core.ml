(* The pure decision core of the lock manager, shared by the sequential
   table ([Lock_table], driven by the discrete-event simulator) and the
   sharded multi-domain table (lib/parallel).  Everything here is
   side-effect-free over its inputs: mode compatibility against held locks
   and queued waiters, the hierarchical reach-down rule, the waits-for cycle
   search, and the paper's §3.4 victim policy.  Keeping the logic in one
   module is what guarantees the two tables make identical grant/block
   decisions for the same request sequence. *)

type hold = {
  h_txn : int;
  h_mode : Mode.t;
  h_step : int;
  mutable h_count : int;
}

type waiter = {
  w_ticket : int;
  w_txn : int;
  w_mode : Mode.t;
  w_step : int;
  w_requester : Mode.requester;
  w_resource : Resource_id.t;
  w_compensating : bool;
  w_deadline : float option;
      (* absolute expiry in the owning table's clock; compensating requests
         never carry one (§3.4 compensation-sparing: a compensating step is
         never timed out) *)
  w_enqueued : float; (* table-clock timestamp at queue time *)
  mutable w_bypassed : int;
      (* grants made past this waiter that it conflicts with; the fairness
         gate refuses further bypass once this reaches the table's bound *)
}

(* Default bound on how many conflicting grants may overtake one waiter
   before the table stops granting past it (bounded bypass).  Large enough
   that healthy workloads never trip it; small enough that a pathological
   grant stream cannot starve a waiter. *)
let default_max_bypass = 64

let hold_conflict sem h ~mode ~requester =
  Mode.conflicts sem ~held:h.h_mode ~held_step:h.h_step ~req:mode ~requester

let waiter_conflict sem w ~mode ~requester =
  Mode.conflicts sem ~held:w.w_mode ~held_step:w.w_step ~req:mode ~requester

(* Would granting [mode] (requested by [step_type]) delay waiter [w]?  The
   conflict is taken in the direction the grant creates: the granted request
   becomes a hold that [w]'s queued request must then be compatible with.
   This is the bypass test of the fairness rule: a grant for which this holds
   overtakes [w]. *)
let grant_blocks_waiter sem ~mode ~step_type w =
  Mode.conflicts sem ~held:mode ~held_step:step_type ~req:w.w_mode ~requester:w.w_requester

(* A request is compatible with a set of (relevant) holds when every foreign
   hold is non-conflicting. *)
let holds_compatible sem holds ~txn ~mode ~requester =
  List.for_all (fun h -> h.h_txn = txn || not (hold_conflict sem h ~mode ~requester)) holds

(* FIFO discipline: a request must also be compatible with every foreign
   waiter queued ahead of it, or it would overtake them. *)
let queue_ahead_compatible sem ~txn ~mode ~requester ahead =
  List.for_all (fun w -> w.w_txn = txn || not (waiter_conflict sem w ~mode ~requester)) ahead

(* Intention holders at the table level never constrain tuple-level requests:
   only absolute table locks (S/X/A/Comp) reach down the hierarchy. *)
let reaches_down h = match h.h_mode with Mode.IS | Mode.IX -> false | _ -> true

(* A checked assertional request on a whole table must also be compatible
   with the table's tuple-level holds (a legacy scan waits out in-flight
   writers, whose exposure is recorded by tuple-level compensation locks). *)
let needs_child_sweep res ~mode =
  match (res, mode) with
  | Resource_id.Table _, Mode.A _ -> true
  | (Resource_id.Table _ | Resource_id.Tuple _), _ -> false

(* Re-entrant grant: an existing hold of the same transaction that covers the
   requested mode. *)
let find_covering holds ~txn ~mode =
  List.find_opt (fun h -> h.h_txn = txn && Mode.covers h.h_mode mode) holds

(* --- decision classification (observability) ----------------------------

   Pure post-hoc analysis of a grant/block decision, consumed by the tracing
   and conflict-accounting layer.  Nothing here influences the decision
   itself; the functions re-read the same hold/waiter lists the decision
   used. *)

(* One consultation of the interference oracle: which assertion was checked
   against which step type, and did the request pass it.  [ac_step_type] is
   the interfering step under test — the requester's step for writes hitting
   a foreign assertion, the holder's step for checked assertional requests,
   the compensating step type for compensation-lock pairs. *)
type acheck = { ac_assertion : int; ac_step_type : int; ac_passed : bool }

(* The oracle consultations a (held, requested) mode pair triggers — mirrors
   the assertional arms of [Mode.conflicts].  [None] for pairs decided by the
   static matrix. *)
let assertional_check sem ~held ~held_step ~req ~requester =
  match (held, req) with
  | Mode.A a, Mode.X ->
      let step = requester.Mode.req_step_type in
      Some { ac_assertion = a; ac_step_type = step;
             ac_passed = not (sem.Mode.step_interferes ~step_type:step ~assertion:a) }
  | Mode.X, Mode.A a ->
      Some { ac_assertion = a; ac_step_type = held_step;
             ac_passed = not (sem.Mode.step_interferes ~step_type:held_step ~assertion:a) }
  | Mode.A ha, Mode.A a when requester.Mode.req_admission ->
      Some { ac_assertion = a; ac_step_type = held_step;
             ac_passed = not (sem.Mode.prefix_interferes ~holder_assertion:ha ~assertion:a) }
  | (Mode.Comp cs, Mode.A a | Mode.A a, Mode.Comp cs) ->
      Some { ac_assertion = a; ac_step_type = cs;
             ac_passed = not (sem.Mode.step_interferes ~step_type:cs ~assertion:a) }
  | (Mode.IS | Mode.IX | Mode.S | Mode.X | Mode.A _ | Mode.Comp _), _ -> None

let checks_against sem holds ~txn ~mode ~requester =
  List.filter_map
    (fun h ->
      if h.h_txn = txn then None
      else assertional_check sem ~held:h.h_mode ~held_step:h.h_step ~req:mode ~requester)
    holds

(* Foreign holds whose 2PL shadow conflicts with the request: on a granted
   request this is the count of conflicts a conventional system would have
   suffered — the paper's false conflicts, avoided. *)
let past_2pl_count holds ~txn ~mode =
  List.length
    (List.filter
       (fun h -> h.h_txn <> txn && Mode.twopl_would_block ~held:h.h_mode ~req:mode)
       holds)

let first_blocking_hold sem holds ~txn ~mode ~requester =
  List.find_opt
    (fun h -> h.h_txn <> txn && hold_conflict sem h ~mode ~requester)
    holds

let first_blocking_waiter sem waiters ~txn ~mode ~requester =
  List.find_opt
    (fun w -> w.w_txn <> txn && waiter_conflict sem w ~mode ~requester)
    waiters

(* BFS from [from]'s successors back to [from] over an explicit waits-for
   edge list: O(V + E), with parent pointers to reconstruct one witness
   cycle. *)
let find_cycle ~edges ~from =
  let succ = Hashtbl.create 32 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace succ a (b :: Option.value ~default:[] (Hashtbl.find_opt succ a)))
    edges;
  let successors n = Option.value ~default:[] (Hashtbl.find_opt succ n) in
  let parent = Hashtbl.create 32 in
  let frontier = Queue.create () in
  List.iter
    (fun s ->
      if not (Hashtbl.mem parent s) then begin
        Hashtbl.replace parent s from;
        Queue.add s frontier
      end)
    (successors from);
  let rec search () =
    if Queue.is_empty frontier then None
    else begin
      let n = Queue.pop frontier in
      if n = from then begin
        (* walk the parent chain back to [from] *)
        let rec unwind node acc =
          if node = from && acc <> [] then acc
          else unwind (Hashtbl.find parent node) (node :: acc)
        in
        (* n = from was enqueued with a parent on the cycle *)
        let last = Hashtbl.find parent from in
        Some (from :: List.filter (fun x -> x <> from) (unwind last []))
      end
      else begin
        List.iter
          (fun s ->
            if not (Hashtbl.mem parent s) then begin
              Hashtbl.replace parent s n;
              Queue.add s frontier
            end)
          (successors n);
        search ()
      end
    end
  in
  search ()

(* §3.4: a compensating step is never victimized; the transactions delaying
   it are aborted instead.  With an all-compensating cycle (which the paper
   argues cannot arise from well-formed compensation) fall back to the
   requester. *)
let victim_policy ~is_compensating ~requester ~cycle =
  if is_compensating requester then begin
    match List.filter (fun t -> t <> requester && not (is_compensating t)) cycle with
    | [] -> [ requester ]
    | victims -> victims
  end
  else [ requester ]
