module type S = sig
  val backend_name : string
  val acquire : Lock_request.t -> unit
  val acquire_batch : Lock_request.t list -> unit
  val attach : Lock_request.t -> unit
  val attach_batch : Lock_request.t list -> unit
  val release : txn:int -> Mode.t -> Resource_id.t -> unit
  val release_where : txn:int -> (Resource_id.t -> Mode.t -> bool) -> unit
  val release_all : txn:int -> unit
  val cancel : ticket:int -> unit
  val outstanding : ticket:int -> bool
  val ticket_txn : ticket:int -> int option
  val outstanding_tickets : txn:int -> int list
  val holders : Resource_id.t -> (int * Mode.t * int) list
  val held_by : txn:int -> (Resource_id.t * Mode.t) list
  val waiting_on : txn:int -> Resource_id.t list
  val wait_edges : unit -> (int * int) list
  val find_cycle : from:int -> int list option
  val compensating_waiter : txn:int -> bool
  val expire : now:float -> Lock_table.expired list
  val kill : txn:int -> int
  val lock_count : unit -> int
  val waiter_count : unit -> int
  val entry_count : unit -> int
  val oldest_wait : now:float -> float
  val max_bypassed : unit -> int
  val timeout_count : unit -> int
  val mutex_acquisitions : unit -> int
  val fast_attempts : unit -> int
  val fast_hits : unit -> int
  val set_observer : (Lock_table.observation -> unit) option -> unit
  val pp_state : Format.formatter -> unit -> unit
end

type t = (module S)

let backend_name (module M : S) = M.backend_name
let acquire (module M : S) req = M.acquire req
let acquire_batch (module M : S) reqs = M.acquire_batch reqs
let attach (module M : S) req = M.attach req
let attach_batch (module M : S) reqs = M.attach_batch reqs
let release (module M : S) ~txn mode res = M.release ~txn mode res
let release_where (module M : S) ~txn pred = M.release_where ~txn pred
let release_all (module M : S) ~txn = M.release_all ~txn
let cancel (module M : S) ~ticket = M.cancel ~ticket
let outstanding (module M : S) ~ticket = M.outstanding ~ticket
let ticket_txn (module M : S) ~ticket = M.ticket_txn ~ticket
let outstanding_tickets (module M : S) ~txn = M.outstanding_tickets ~txn
let holders (module M : S) res = M.holders res
let held_by (module M : S) ~txn = M.held_by ~txn
let waiting_on (module M : S) ~txn = M.waiting_on ~txn
let wait_edges (module M : S) = M.wait_edges ()
let find_cycle (module M : S) ~from = M.find_cycle ~from
let compensating_waiter (module M : S) ~txn = M.compensating_waiter ~txn
let expire (module M : S) ~now = M.expire ~now
let kill (module M : S) ~txn = M.kill ~txn
let lock_count (module M : S) = M.lock_count ()
let waiter_count (module M : S) = M.waiter_count ()
let entry_count (module M : S) = M.entry_count ()
let oldest_wait (module M : S) ~now = M.oldest_wait ~now
let max_bypassed (module M : S) = M.max_bypassed ()
let timeout_count (module M : S) = M.timeout_count ()
let mutex_acquisitions (module M : S) = M.mutex_acquisitions ()
let fast_attempts (module M : S) = M.fast_attempts ()
let fast_hits (module M : S) = M.fast_hits ()
let set_observer (module M : S) obs = M.set_observer obs
let pp_state ppf (module M : S) = M.pp_state ppf ()

let of_table ~wait ~deliver table : t =
  (module struct
    let backend_name = "sequential"

    let acquire (r : Lock_request.t) =
      match Lock_table.submit table r with
      | Lock_table.Granted -> ()
      | Lock_table.Queued ticket -> wait ~ticket ~txn:r.Lock_request.txn

    (* no shard mutex to amortize here: a batch is the canonical-order
       singleton sequence (the ordering still removes intra-batch deadlock
       edges against other batches) *)
    let acquire_batch reqs = List.iter acquire (Lock_request.canonicalize reqs)
    let attach r = Lock_table.attach_req table r
    let attach_batch reqs = List.iter attach reqs
    let release ~txn mode res = deliver (Lock_table.release table ~txn mode res)
    let release_where ~txn pred = deliver (Lock_table.release_where table ~txn pred)
    let release_all ~txn = deliver (Lock_table.release_all table ~txn)
    let cancel ~ticket = deliver (Lock_table.cancel table ~ticket)
    let outstanding ~ticket = Lock_table.outstanding table ~ticket
    let ticket_txn ~ticket = Lock_table.ticket_txn table ~ticket
    let outstanding_tickets ~txn = Lock_table.outstanding_tickets table ~txn
    let holders res = Lock_table.holders table res
    let held_by ~txn = Lock_table.held_by table ~txn
    let waiting_on ~txn = Lock_table.waiting_on table ~txn
    let wait_edges () = Lock_table.wait_edges table
    let find_cycle ~from = Lock_table.find_cycle table ~from
    let compensating_waiter ~txn = Lock_table.compensating_waiter table ~txn

    let expire ~now =
      let expired, wakeups = Lock_table.expire_overdue table ~now in
      deliver wakeups;
      expired

    let kill ~txn =
      let tickets = Lock_table.outstanding_tickets table ~txn in
      List.iter (fun ticket -> deliver (Lock_table.cancel table ~ticket)) tickets;
      List.length tickets

    let lock_count () = Lock_table.lock_count table
    let waiter_count () = Lock_table.waiter_count table
    let entry_count () = Lock_table.entry_count table
    let oldest_wait ~now = Lock_table.oldest_wait table ~now
    let max_bypassed () = Lock_table.max_bypassed table
    let timeout_count () = 0
    let mutex_acquisitions () = 0

    (* no lock-free fast path in the sequential backend: every request is
       already a plain function call *)
    let fast_attempts () = 0
    let fast_hits () = 0
    let set_observer obs = Lock_table.set_observer table obs
    let pp_state ppf () = Lock_table.pp_state ppf table
  end)
