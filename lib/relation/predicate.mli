(** First-order row predicates for scans.

    Predicates are a small structured language (no closures) so they can be
    printed in traces and inspected for index applicability. *)

type comparison = Lt | Le | Gt | Ge

type t =
  | True
  | Eq of string * Value.t
  | Ne of string * Value.t
  | Cmp of comparison * string * Value.t  (** [column <op> constant] *)
  | In of string * Value.t list
  | And of t * t
  | Or of t * t
  | Not of t

val conj : t list -> t
(** Conjunction of a list ([True] when empty). *)

val compile : Schema.t -> t -> Value.t array -> bool
(** Resolve column names to positions once; the returned closure evaluates
    rows. Raises [Invalid_argument] on unknown columns. *)

val equality_bindings : t -> (string * Value.t) list
(** Columns bound by equality in every satisfying row: the [Eq] conjuncts
    reachable through [And] only.  Used for index selection. *)

val comparison_bindings : t -> (comparison * string * Value.t) list
(** The [Cmp] conjuncts reachable through [And] only: range constraints that
    hold of every satisfying row.  Used for ordered-index selection. *)

val pp : Format.formatter -> t -> unit
