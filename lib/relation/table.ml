type key = Value.t list

exception Duplicate_key of string * key
exception No_such_row of string * key
exception Invalid_row of string

type index = {
  index_name : string;
  index_positions : int array;
  (* secondary key -> set of primary keys *)
  entries : (Value.t list, (key, unit) Hashtbl.t) Hashtbl.t;
}

type t = {
  schema : Schema.t;
  rows : (key, Value.t array) Hashtbl.t;
  mutable indexes : index list;
  mutable ordered : (Ordered_index.t * int array) list;
  mutable last_scan_cost : int;
}

let create schema =
  { schema; rows = Hashtbl.create 256; indexes = []; ordered = []; last_scan_cost = 0 }
let schema t = t.schema
let name t = Schema.name t.schema
let cardinality t = Hashtbl.length t.rows
let last_scan_cost t = t.last_scan_cost

let index_key idx row = Array.to_list (Array.map (fun i -> row.(i)) idx.index_positions)

let index_add idx ~pk row =
  let k = index_key idx row in
  let set =
    match Hashtbl.find_opt idx.entries k with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 4 in
        Hashtbl.add idx.entries k s;
        s
  in
  Hashtbl.replace set pk ()

let index_remove idx ~pk row =
  let k = index_key idx row in
  match Hashtbl.find_opt idx.entries k with
  | None -> ()
  | Some set ->
      Hashtbl.remove set pk;
      if Hashtbl.length set = 0 then Hashtbl.remove idx.entries k

let index_name_taken t name =
  List.exists (fun i -> i.index_name = name) t.indexes
  || List.exists (fun (o, _) -> Ordered_index.name o = name) t.ordered

let add_index t ~name cols =
  if index_name_taken t name then
    invalid_arg (Printf.sprintf "%s: duplicate index %s" (Schema.name t.schema) name);
  let index_positions = Array.of_list (List.map (Schema.position t.schema) cols) in
  let idx = { index_name = name; index_positions; entries = Hashtbl.create 256 } in
  Hashtbl.iter (fun pk row -> index_add idx ~pk row) t.rows;
  t.indexes <- idx :: t.indexes

let add_ordered_index t ~name cols =
  if index_name_taken t name then
    invalid_arg (Printf.sprintf "%s: duplicate index %s" (Schema.name t.schema) name);
  let positions = Array.of_list (List.map (Schema.position t.schema) cols) in
  let key_of row = Array.to_list (Array.map (fun i -> row.(i)) positions) in
  let idx = Ordered_index.create ~name ~key_of in
  Hashtbl.iter (fun pk row -> Ordered_index.insert idx ~pk row) t.rows;
  t.ordered <- (idx, positions) :: t.ordered

let find_ordered t name =
  match List.find_opt (fun (o, _) -> Ordered_index.name o = name) t.ordered with
  | Some (o, _) -> o
  | None -> invalid_arg (Printf.sprintf "%s: no ordered index %s" (Schema.name t.schema) name)

let range_lookup t ~index ?lo ?hi () = Ordered_index.range (find_ordered t index) ?lo ?hi ()
let min_lookup t ~index ?above () = Ordered_index.min_entry (find_ordered t index) ?above ()

let validate t row =
  match Schema.check_row t.schema row with
  | Ok () -> ()
  | Error msg -> raise (Invalid_row msg)

let insert t row =
  validate t row;
  let row = Array.copy row in
  let pk = Schema.key_of_row t.schema row in
  if Hashtbl.mem t.rows pk then raise (Duplicate_key (name t, pk));
  Hashtbl.add t.rows pk row;
  List.iter (fun idx -> index_add idx ~pk row) t.indexes;
  List.iter (fun (o, _) -> Ordered_index.insert o ~pk row) t.ordered

let get t pk = Option.map Array.copy (Hashtbl.find_opt t.rows pk)

let get_exn t pk =
  match get t pk with Some row -> row | None -> raise (No_such_row (name t, pk))

let mem t pk = Hashtbl.mem t.rows pk

let update t pk f =
  match Hashtbl.find_opt t.rows pk with
  | None -> raise (No_such_row (name t, pk))
  | Some old_row ->
      let new_row = f (Array.copy old_row) in
      validate t new_row;
      let new_row = Array.copy new_row in
      let new_pk = Schema.key_of_row t.schema new_row in
      if new_pk <> pk then
        raise (Invalid_row (Printf.sprintf "%s: update may not change the primary key" (name t)));
      Hashtbl.replace t.rows pk new_row;
      List.iter
        (fun idx ->
          if index_key idx old_row <> index_key idx new_row then begin
            index_remove idx ~pk old_row;
            index_add idx ~pk new_row
          end)
        t.indexes;
      List.iter
        (fun (o, _) ->
          Ordered_index.remove o ~pk old_row;
          Ordered_index.insert o ~pk new_row)
        t.ordered;
      Array.copy new_row

let set_column t pk col v =
  let i = Schema.position t.schema col in
  update t pk (fun row ->
      row.(i) <- v;
      row)

let delete t pk =
  match Hashtbl.find_opt t.rows pk with
  | None -> raise (No_such_row (name t, pk))
  | Some row ->
      Hashtbl.remove t.rows pk;
      List.iter (fun idx -> index_remove idx ~pk row) t.indexes;
      List.iter (fun (o, _) -> Ordered_index.remove o ~pk row) t.ordered;
      row

(* Pick an index whose columns are all bound by equality in the predicate. *)
let applicable_index t where =
  let bindings = Predicate.equality_bindings where in
  let bound col = List.assoc_opt col bindings in
  let rec try_indexes = function
    | [] -> None
    | idx :: rest ->
        let cols =
          Array.map (fun i -> (Schema.columns t.schema).(i).Schema.name) idx.index_positions
        in
        let probe = Array.map bound cols in
        if Array.for_all Option.is_some probe then
          Some (idx, Array.to_list (Array.map Option.get probe))
        else try_indexes rest
  in
  try_indexes t.indexes

(* An ordered index applies when a prefix of its columns is equality-bound
   and (optionally) the next column carries a range constraint: the classic
   composite-index access path.  The extracted candidate set may be a
   superset of the answer; the caller's residual filter finishes the job. *)
let applicable_ordered_index t where =
  let eqs = Predicate.equality_bindings where in
  let cmps = Predicate.comparison_bindings where in
  let col_name i = (Schema.columns t.schema).(i).Schema.name in
  let rec try_ordered = function
    | [] -> None
    | (o, positions) :: rest ->
        let cols = Array.to_list (Array.map col_name positions) in
        let rec split_prefix acc = function
          | c :: cs when List.mem_assoc c eqs -> split_prefix (List.assoc c eqs :: acc) cs
          | remaining -> (List.rev acc, remaining)
        in
        let prefix_vals, rest_cols = split_prefix [] cols in
        let lo_bound, hi_bound =
          match rest_cols with
          | c :: _ ->
              ( List.find_map
                  (fun (op, c', v) ->
                    if c' = c && (op = Predicate.Ge || op = Predicate.Gt) then Some v else None)
                  cmps,
                List.find_map
                  (fun (op, c', v) ->
                    if c' = c && (op = Predicate.Le || op = Predicate.Lt) then Some v else None)
                  cmps )
          | [] -> (None, None)
        in
        if prefix_vals = [] && lo_bound = None && hi_bound = None then try_ordered rest
        else begin
          let with_bound bound =
            match bound with
            | Some v -> Some (prefix_vals @ [ v ])
            | None -> if prefix_vals = [] then None else Some prefix_vals
          in
          Some
            (List.map snd
               (Ordered_index.range o ?lo:(with_bound lo_bound) ?hi:(with_bound hi_bound) ()))
        end
  in
  try_ordered t.ordered

let candidates t where =
  match applicable_index t where with
  | Some (idx, probe_key) -> begin
      match Hashtbl.find_opt idx.entries probe_key with
      | None -> []
      | Some set -> Hashtbl.fold (fun pk () acc -> pk :: acc) set []
    end
  | None -> (
      match applicable_ordered_index t where with
      | Some pks -> pks
      | None -> Hashtbl.fold (fun pk _ acc -> pk :: acc) t.rows [])

let scan_matches ?(where = Predicate.True) t f =
  let test = Predicate.compile t.schema where in
  let pks = List.sort compare (candidates t where) in
  t.last_scan_cost <- List.length pks;
  List.iter
    (fun pk ->
      match Hashtbl.find_opt t.rows pk with
      | Some row when test row -> f pk row
      | Some _ | None -> ())
    pks

let scan ?where t =
  let acc = ref [] in
  scan_matches ?where t (fun _ row -> acc := Array.copy row :: !acc);
  List.rev !acc

let scan_count ?where t =
  let n = ref 0 in
  scan_matches ?where t (fun _ _ -> incr n);
  !n

let scan_keys ?where t =
  let acc = ref [] in
  scan_matches ?where t (fun pk _ -> acc := pk :: !acc);
  List.rev !acc

let index_lookup t ~index probe =
  match List.find_opt (fun i -> i.index_name = index) t.indexes with
  | None -> invalid_arg (Printf.sprintf "%s: no index %s" (name t) index)
  | Some idx -> begin
      match Hashtbl.find_opt idx.entries probe with
      | None -> []
      | Some set -> List.sort compare (Hashtbl.fold (fun pk () acc -> pk :: acc) set [])
    end

let iter f t =
  let snapshot = Hashtbl.fold (fun pk row acc -> (pk, Array.copy row) :: acc) t.rows [] in
  List.iter (fun (pk, row) -> f pk row) (List.sort compare snapshot)

let fold f t init =
  let acc = ref init in
  iter (fun pk row -> acc := f pk row !acc) t;
  !acc

let copy t =
  let fresh = create t.schema in
  Hashtbl.iter (fun pk row -> Hashtbl.add fresh.rows pk (Array.copy row)) t.rows;
  List.iter
    (fun idx ->
      let cols =
        Array.to_list
          (Array.map (fun i -> (Schema.columns t.schema).(i).Schema.name) idx.index_positions)
      in
      add_index fresh ~name:idx.index_name cols)
    (List.rev t.indexes);
  List.iter
    (fun (o, positions) ->
      let fresh_idx =
        Ordered_index.create ~name:(Ordered_index.name o) ~key_of:(Ordered_index.projection o)
      in
      Hashtbl.iter (fun pk row -> Ordered_index.insert fresh_idx ~pk row) fresh.rows;
      fresh.ordered <- (fresh_idx, positions) :: fresh.ordered)
    (List.rev t.ordered);
  fresh.last_scan_cost <- t.last_scan_cost;
  fresh

let col_names t positions =
  Array.to_list (Array.map (fun i -> (Schema.columns t.schema).(i).Schema.name) positions)

let index_specs t =
  List.rev_map (fun idx -> (idx.index_name, col_names t idx.index_positions)) t.indexes

let ordered_index_specs t =
  List.rev_map (fun (o, positions) -> (Ordered_index.name o, col_names t positions)) t.ordered

let equal a b =
  Hashtbl.length a.rows = Hashtbl.length b.rows
  && Hashtbl.fold
       (fun pk row acc ->
         acc && match Hashtbl.find_opt b.rows pk with Some r -> r = row | None -> false)
       a.rows true

let field t row col = row.(Schema.position t.schema col)
