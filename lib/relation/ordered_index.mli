(** Ordered secondary indexes: sorted access and range scans.

    The hash indexes of {!Table} answer only exact-match probes; ordered
    indexes answer range and prefix queries — what the TPC-C access paths
    need for "the last 20 orders of the district" (stock-level) and "the
    oldest undelivered order" (delivery).

    The implementation is a size-balanced binary search tree over
    [(index key, primary key)] pairs, keyed lexicographically: O(log n)
    insert/remove, O(log n + k) range extraction.  It is deliberately a
    plain persistent-node structure wrapped in a mutable root — simple to
    verify, and the workloads here never need better constants. *)

type t

val create : name:string -> key_of:(Value.t array -> Value.t list) -> t
(** [key_of] projects a row to its index key (any column list). *)

val name : t -> string
(** The index's name (unique within its table). *)

val size : t -> int
(** Number of entries. *)

val projection : t -> Value.t array -> Value.t list
(** The index's key projection (for rebuilding a copy). *)

val insert : t -> pk:Value.t list -> Value.t array -> unit
(** Add one row's entry. *)

val remove : t -> pk:Value.t list -> Value.t array -> unit
(** Remove the entry of a row (given the row as it was indexed). *)

val min_entry : t -> ?above:Value.t list -> unit -> (Value.t list * Value.t list) option
(** Smallest [(index key, pk)], optionally restricted to keys strictly above
    [above]. *)

val max_entry : t -> (Value.t list * Value.t list) option
(** Largest [(index key, pk)] entry. *)

val range :
  t -> ?lo:Value.t list -> ?hi:Value.t list -> unit -> (Value.t list * Value.t list) list
(** Entries with [lo <= key <= hi] (missing bound = unbounded), in ascending
    key order.  Bounds compare lexicographically, so a shorter [lo]/[hi]
    acts as a prefix bound. *)

val prefix : t -> Value.t list -> (Value.t list * Value.t list) list
(** Entries whose index key starts with the given prefix, ascending. *)

val fold_ascending : t -> init:'a -> f:('a -> Value.t list -> Value.t list -> 'a) -> 'a
(** Fold [f acc index_key pk] over every entry in ascending key order. *)

val invariant_ok : t -> bool
(** BST ordering and size bookkeeping hold (test hook). *)
