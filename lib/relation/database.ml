type t = { tables : (string, Table.t) Hashtbl.t }

let create () = { tables = Hashtbl.create 16 }

let create_table t schema =
  let name = Schema.name schema in
  if Hashtbl.mem t.tables name then invalid_arg ("Database.create_table: duplicate " ^ name);
  let table = Table.create schema in
  Hashtbl.add t.tables name table;
  table

let find_table t name = Hashtbl.find_opt t.tables name

let table t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> invalid_arg ("Database.table: no table " ^ name)

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort String.compare

let copy t =
  let fresh = create () in
  Hashtbl.iter (fun name tbl -> Hashtbl.add fresh.tables name (Table.copy tbl)) t.tables;
  fresh

let total_rows t = Hashtbl.fold (fun _ tbl acc -> acc + Table.cardinality tbl) t.tables 0

let equal a b =
  table_names a = table_names b
  && List.for_all (fun n -> Table.equal (table a n) (table b n)) (table_names a)

let diff ?(limit = 10) a b =
  let out = ref [] in
  let add fmt = Format.kasprintf (fun s -> out := s :: !out) fmt in
  let pp_key ppf key =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
      Value.pp ppf key
  in
  let pp_row ppf row =
    Format.fprintf ppf "(%a)" pp_key (Array.to_list row)
  in
  let names_a = table_names a and names_b = table_names b in
  List.iter (fun n -> if not (List.mem n names_b) then add "table %s only on left" n) names_a;
  List.iter (fun n -> if not (List.mem n names_a) then add "table %s only on right" n) names_b;
  List.iter
    (fun n ->
      if List.mem n names_b then begin
        let ta = table a n and tb = table b n in
        Table.iter
          (fun pk row ->
            match Table.get tb pk with
            | None -> add "%s[%a]: only on left" n pp_key pk
            | Some row' ->
                if row <> row' then
                  add "%s[%a]: %a <> %a" n pp_key pk pp_row row pp_row row')
          ta;
        Table.iter
          (fun pk _ ->
            if not (Table.mem ta pk) then add "%s[%a]: only on right" n pp_key pk)
          tb
      end)
    names_a;
  let all = List.rev !out in
  let n = List.length all in
  if n <= limit then all
  else List.filteri (fun i _ -> i < limit) all @ [ Printf.sprintf "... and %d more" (n - limit) ]

let pp_summary ppf t =
  List.iter
    (fun name ->
      Format.fprintf ppf "%-16s %6d rows@." name (Table.cardinality (table t name)))
    (table_names t)
