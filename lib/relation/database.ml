type t = { tables : (string, Table.t) Hashtbl.t }

let create () = { tables = Hashtbl.create 16 }

let create_table t schema =
  let name = Schema.name schema in
  if Hashtbl.mem t.tables name then invalid_arg ("Database.create_table: duplicate " ^ name);
  let table = Table.create schema in
  Hashtbl.add t.tables name table;
  table

let find_table t name = Hashtbl.find_opt t.tables name

let table t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> invalid_arg ("Database.table: no table " ^ name)

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort String.compare

let copy t =
  let fresh = create () in
  Hashtbl.iter (fun name tbl -> Hashtbl.add fresh.tables name (Table.copy tbl)) t.tables;
  fresh

let total_rows t = Hashtbl.fold (fun _ tbl acc -> acc + Table.cardinality tbl) t.tables 0

let pp_summary ppf t =
  List.iter
    (fun name ->
      Format.fprintf ppf "%-16s %6d rows@." name (Table.cardinality (table t name)))
    (table_names t)
