(** Aggregation helpers over tables: the read-side query vocabulary the
    workloads and consistency checkers share (SQL's COUNT/SUM/MIN/MAX/GROUP
    BY for this engine's scans). *)

val count : ?where:Predicate.t -> Table.t -> int
(** Number of rows satisfying the predicate (all rows when omitted). *)

val sum_int : ?where:Predicate.t -> Table.t -> column:string -> int
(** Sum of an integer column over the satisfying rows. *)

val sum_float : ?where:Predicate.t -> Table.t -> column:string -> float
(** Sum of a numeric (int or float) column. *)

val min_value : ?where:Predicate.t -> Table.t -> column:string -> Value.t option
(** Smallest value of the column over the satisfying rows, by
    {!Value.compare}; [None] when no row satisfies. *)

val max_value : ?where:Predicate.t -> Table.t -> column:string -> Value.t option
(** Largest value of the column over the satisfying rows. *)

val group_by :
  ?where:Predicate.t ->
  Table.t ->
  key:string list ->
  init:'a ->
  f:('a -> Value.t array -> 'a) ->
  (Value.t list * 'a) list
(** Fold the satisfying rows per group key, returning (group, accumulated)
    pairs sorted by group key. *)

val count_by :
  ?where:Predicate.t -> Table.t -> key:string list -> (Value.t list * int) list
(** Per-group {!count}: (group key, row count) pairs sorted by group key. *)

val sum_float_by :
  ?where:Predicate.t ->
  Table.t ->
  key:string list ->
  column:string ->
  (Value.t list * float) list
(** Per-group {!sum_float}. *)
