(** Aggregation helpers over tables: the read-side query vocabulary the
    workloads and consistency checkers share (SQL's COUNT/SUM/MIN/MAX/GROUP
    BY for this engine's scans). *)

val count : ?where:Predicate.t -> Table.t -> int

val sum_int : ?where:Predicate.t -> Table.t -> column:string -> int
(** Sum of an integer column over the satisfying rows. *)

val sum_float : ?where:Predicate.t -> Table.t -> column:string -> float
(** Sum of a numeric (int or float) column. *)

val min_value : ?where:Predicate.t -> Table.t -> column:string -> Value.t option
val max_value : ?where:Predicate.t -> Table.t -> column:string -> Value.t option

val group_by :
  ?where:Predicate.t ->
  Table.t ->
  key:string list ->
  init:'a ->
  f:('a -> Value.t array -> 'a) ->
  (Value.t list * 'a) list
(** Fold the satisfying rows per group key, returning (group, accumulated)
    pairs sorted by group key. *)

val count_by :
  ?where:Predicate.t -> Table.t -> key:string list -> (Value.t list * int) list

val sum_float_by :
  ?where:Predicate.t ->
  Table.t ->
  key:string list ->
  column:string ->
  (Value.t list * float) list
