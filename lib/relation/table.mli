(** In-memory tables: a primary-key hash plus optional secondary hash
    indexes, maintained transparently by the mutators.

    Rows are immutable value arrays; an update replaces the whole row.  This
    makes before-images for the WAL free (just keep the old array) and rules
    out aliasing bugs between the store and transaction workspaces. *)

type t

type key = Value.t list
(** Primary-key values in schema key order. *)

exception Duplicate_key of string * key
exception No_such_row of string * key
exception Invalid_row of string

val create : Schema.t -> t
(** An empty table of the given schema. *)

val schema : t -> Schema.t
(** The table's schema. *)

val name : t -> string
(** = [Schema.name (schema t)]. *)

val cardinality : t -> int
(** Number of rows. *)

val add_index : t -> name:string -> string list -> unit
(** Secondary hash index on the given columns.  May be added to a populated
    table (it is built immediately).  Raises [Invalid_argument] on duplicate
    index names or unknown columns. *)

val insert : t -> Value.t array -> unit
(** Raises {!Invalid_row} if the row does not satisfy the schema and
    {!Duplicate_key} if the primary key is taken.  The array is copied. *)

val get : t -> key -> Value.t array option
(** Point lookup; the returned array is a copy. *)

val get_exn : t -> key -> Value.t array
(** {!get}, raising {!No_such_row} when absent. *)

val mem : t -> key -> bool
(** Whether a row with that key exists. *)

val update : t -> key -> (Value.t array -> Value.t array) -> Value.t array
(** [update t k f] replaces the row at [k] with [f row]; returns the {e new}
    row. [f] receives a private copy.  Raises {!No_such_row} if absent,
    {!Invalid_row} if the result is schema-invalid or changes the primary
    key (delete + insert is the supported way to move a row). *)

val set_column : t -> key -> string -> Value.t -> Value.t array
(** Specialised single-column update; returns the new row. *)

val delete : t -> key -> Value.t array
(** Remove and return the row.  Raises {!No_such_row} if absent. *)

val scan : ?where:Predicate.t -> t -> Value.t array list
(** All rows satisfying the predicate (copies).  Uses a secondary index when
    the predicate's equality bindings cover one; otherwise a full scan.
    Result order is unspecified but deterministic for a given history. *)

val scan_count : ?where:Predicate.t -> t -> int
(** [List.length (scan ~where t)] without building the rows. *)

val scan_keys : ?where:Predicate.t -> t -> key list
(** Primary keys of the satisfying rows. *)

val index_lookup : t -> index:string -> Value.t list -> key list
(** Exact-match probe of a secondary index. *)

val add_ordered_index : t -> name:string -> string list -> unit
(** Ordered secondary index on the given columns; supports range and
    min/max probes.  May be added to a populated table. *)

val range_lookup :
  t -> index:string -> ?lo:Value.t list -> ?hi:Value.t list -> unit ->
  (Value.t list * key) list
(** Entries of an ordered index with [lo <= key <= hi] (lexicographic;
    shorter bounds act as prefix bounds), ascending. *)

val min_lookup :
  t -> index:string -> ?above:Value.t list -> unit -> (Value.t list * key) option
(** Smallest entry of an ordered index, optionally strictly above a key. *)

val iter : (key -> Value.t array -> unit) -> t -> unit
(** Iterate over a snapshot of the rows; the visited arrays are copies, and
    mutating the table from the callback is allowed. *)

val fold : (key -> Value.t array -> 'a -> 'a) -> t -> 'a -> 'a
(** {!iter} as a fold, with the same snapshot semantics. *)

val last_scan_cost : t -> int
(** Number of rows examined by the most recent [scan]/[scan_count]/
    [scan_keys]: the harness reads this to charge simulated CPU. *)

val copy : t -> t
(** Deep copy (rows and indexes). *)

val index_specs : t -> (string * string list) list
(** Name and column list of every secondary hash index, in creation order;
    with {!ordered_index_specs} this is enough to rebuild the table's access
    paths after deserializing its rows (checkpoint save/load). *)

val ordered_index_specs : t -> (string * string list) list
(** Name and column list of every ordered index, in creation order. *)

val equal : t -> t -> bool
(** Row-level equality: same key set, equal row values.  Indexes are derived
    data and not compared. *)

val field : t -> Value.t array -> string -> Value.t
(** [field t row col] reads a column by name, e.g.
    [Value.as_int (Table.field stock row "s_level")]. *)
