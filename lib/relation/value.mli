(** Typed scalar values stored in relations. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null

type ty = Tint | Tfloat | Tstr | Tbool

val type_of : t -> ty option
(** [None] for {!Null}, which inhabits every column type. *)

val has_type : t -> ty -> bool
(** True for exact type matches and for [Null] against any type. *)

val equal : t -> t -> bool
(** Structural equality; [Null] equals only [Null] (this is storage equality,
    not SQL three-valued logic). *)

val compare : t -> t -> int
(** Total order: within a type the natural order; across types an arbitrary
    but fixed order with [Null] first. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, for traces and failure messages. *)

val pp_ty : Format.formatter -> ty -> unit
(** Render a column type. *)

val to_string : t -> string
(** String form of {!pp}. *)

(** Checked projections; raise [Invalid_argument] on a type mismatch so that
    workload bugs fail fast instead of corrupting an experiment. *)

val as_int : t -> int
val as_float : t -> float
val as_str : t -> string
val as_bool : t -> bool

val number : t -> float
(** Numeric reading of [Int] or [Float]; raises on other shapes. *)
