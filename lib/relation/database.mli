(** A database: a mutable namespace of {!Table.t}. *)

type t

val create : unit -> t
(** An empty database. *)

val create_table : t -> Schema.t -> Table.t
(** Create and register an empty table.  Raises [Invalid_argument] if a
    table with that schema name already exists. *)

val table : t -> string -> Table.t
(** Raises [Invalid_argument] if absent. *)

val find_table : t -> string -> Table.t option
(** Like {!table}, but [None] when absent. *)

val table_names : t -> string list
(** Sorted. *)

val copy : t -> t
(** Deep copy of every table: used by crash-recovery tests to rebuild a
    database from a log against a pristine baseline. *)

val total_rows : t -> int
(** Sum of all table cardinalities. *)

val equal : t -> t -> bool
(** Same table names and row-level equal contents ({!Table.equal}); the
    idempotence check for double WAL replay compares recovered databases
    with this. *)

val diff : ?limit:int -> t -> t -> string list
(** Human-readable row-level differences (at most [limit], default 10), for
    harness failure messages.  Empty iff {!equal}. *)

val pp_summary : Format.formatter -> t -> unit
(** One line per table with its cardinality. *)
