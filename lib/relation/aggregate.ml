let count ?where t = Table.scan_count ?where t

let fold_column ?where t ~column ~init ~f =
  let pos = Schema.position (Table.schema t) column in
  List.fold_left (fun acc row -> f acc row.(pos)) init (Table.scan ?where t)

let sum_int ?where t ~column =
  fold_column ?where t ~column ~init:0 ~f:(fun acc v -> acc + Value.as_int v)

let sum_float ?where t ~column =
  fold_column ?where t ~column ~init:0. ~f:(fun acc v -> acc +. Value.number v)

let extremum ?where t ~column better =
  fold_column ?where t ~column ~init:None ~f:(fun acc v ->
      match acc with
      | None -> Some v
      | Some best -> if better (Value.compare v best) then Some v else acc)

let min_value ?where t ~column = extremum ?where t ~column (fun c -> c < 0)
let max_value ?where t ~column = extremum ?where t ~column (fun c -> c > 0)

let group_by ?where t ~key ~init ~f =
  let schema = Table.schema t in
  let positions = List.map (Schema.position schema) key in
  let groups = Hashtbl.create 64 in
  List.iter
    (fun row ->
      let g = List.map (fun i -> row.(i)) positions in
      let acc = Option.value ~default:init (Hashtbl.find_opt groups g) in
      Hashtbl.replace groups g (f acc row))
    (Table.scan ?where t);
  Hashtbl.fold (fun g acc l -> (g, acc) :: l) groups []
  |> List.sort (fun (a, _) (b, _) -> List.compare Value.compare a b)

let count_by ?where t ~key = group_by ?where t ~key ~init:0 ~f:(fun acc _ -> acc + 1)

let sum_float_by ?where t ~key ~column =
  let pos = Schema.position (Table.schema t) column in
  group_by ?where t ~key ~init:0. ~f:(fun acc row -> acc +. Value.number row.(pos))
