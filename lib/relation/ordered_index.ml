(* Weight-balanced BST (Adams' bounded-balance trees, the scheme behind
   OCaml's Map) over composite (index key, primary key) entries.  Written
   out rather than reusing Map so the rebalancing invariant is testable
   directly and range extraction can walk the structure without closures
   over splits. *)

type entry = { e_key : Value.t list; e_pk : Value.t list }

type node = Leaf | Node of { l : node; v : entry; r : node; size : int }

type t = {
  idx_name : string;
  key_of : Value.t array -> Value.t list;
  mutable root : node;
}

let create ~name ~key_of = { idx_name = name; key_of; root = Leaf }
let name t = t.idx_name
let projection t = t.key_of

let node_size = function Leaf -> 0 | Node { size; _ } -> size
let size t = node_size t.root

let compare_entry a b =
  let c = List.compare Value.compare a.e_key b.e_key in
  if c <> 0 then c else List.compare Value.compare a.e_pk b.e_pk

let mk l v r = Node { l; v; r; size = 1 + node_size l + node_size r }

(* Adams' balance: neither subtree more than [delta] times the other. *)
let delta = 3

let rotate_single_left l v r =
  match r with
  | Node { l = rl; v = rv; r = rr; _ } -> mk (mk l v rl) rv rr
  | Leaf -> assert false

let rotate_single_right l v r =
  match l with
  | Node { l = ll; v = lv; r = lr; _ } -> mk ll lv (mk lr v r)
  | Leaf -> assert false

let rotate_double_left l v r =
  match r with
  | Node { l = Node { l = rll; v = rlv; r = rlr; _ }; v = rv; r = rr; _ } ->
      mk (mk l v rll) rlv (mk rlr rv rr)
  | Node _ | Leaf -> assert false

let rotate_double_right l v r =
  match l with
  | Node { l = ll; v = lv; r = Node { l = lrl; v = lrv; r = lrr; _ }; _ } ->
      mk (mk ll lv lrl) lrv (mk lrr v r)
  | Node _ | Leaf -> assert false

let balance l v r =
  let sl = node_size l and sr = node_size r in
  if sl + sr <= 1 then mk l v r
  else if sr > delta * sl then begin
    match r with
    | Node { l = rl; r = rr; _ } ->
        if node_size rl < node_size rr then rotate_single_left l v r
        else rotate_double_left l v r
    | Leaf -> assert false
  end
  else if sl > delta * sr then begin
    match l with
    | Node { l = ll; r = lr; _ } ->
        if node_size lr < node_size ll then rotate_single_right l v r
        else rotate_double_right l v r
    | Leaf -> assert false
  end
  else mk l v r

let rec insert_node n entry =
  match n with
  | Leaf -> mk Leaf entry Leaf
  | Node { l; v; r; _ } ->
      let c = compare_entry entry v in
      if c = 0 then mk l entry r
      else if c < 0 then balance (insert_node l entry) v r
      else balance l v (insert_node r entry)

let rec min_node = function
  | Leaf -> None
  | Node { l = Leaf; v; _ } -> Some v
  | Node { l; _ } -> min_node l

let rec remove_min = function
  | Leaf -> Leaf
  | Node { l = Leaf; r; _ } -> r
  | Node { l; v; r; _ } -> balance (remove_min l) v r

let rec remove_node n entry =
  match n with
  | Leaf -> Leaf
  | Node { l; v; r; _ } ->
      let c = compare_entry entry v in
      if c < 0 then balance (remove_node l entry) v r
      else if c > 0 then balance l v (remove_node r entry)
      else begin
        match (l, r) with
        | Leaf, _ -> r
        | _, Leaf -> l
        | _ -> (
            match min_node r with
            | Some succ -> balance l succ (remove_min r)
            | None -> assert false)
      end

let insert t ~pk row = t.root <- insert_node t.root { e_key = t.key_of row; e_pk = pk }
let remove t ~pk row = t.root <- remove_node t.root { e_key = t.key_of row; e_pk = pk }

let entry_pair e = (e.e_key, e.e_pk)

let min_entry t ?above () =
  let rec go n best =
    match n with
    | Leaf -> best
    | Node { l; v; r; _ } -> (
        match above with
        | Some floor when List.compare Value.compare v.e_key floor <= 0 -> go r best
        | Some _ | None -> go l (Some v))
  in
  Option.map entry_pair (go t.root None)

let max_entry t =
  let rec go = function
    | Leaf -> None
    | Node { v; r = Leaf; _ } -> Some v
    | Node { r; _ } -> go r
  in
  Option.map entry_pair (go t.root)

(* lexicographic bound tests: a short bound acts as a prefix bound *)
let rec cmp_prefix key bound =
  match (key, bound) with
  | _, [] -> 0 (* bound exhausted: equal on the prefix *)
  | [], _ -> -1
  | k :: ks, b :: bs ->
      let c = Value.compare k b in
      if c <> 0 then c else cmp_prefix ks bs

let range t ?lo ?hi () =
  let ge_lo key = match lo with None -> true | Some b -> cmp_prefix key b >= 0 in
  let le_hi key = match hi with None -> true | Some b -> cmp_prefix key b <= 0 in
  let rec go n acc =
    match n with
    | Leaf -> acc
    | Node { l; v; r; _ } ->
        let acc = if le_hi v.e_key then go r acc else acc in
        let acc =
          if ge_lo v.e_key && le_hi v.e_key then entry_pair v :: acc else acc
        in
        if ge_lo v.e_key then go l acc else acc
  in
  go t.root []

let prefix t p = range t ~lo:p ~hi:p ()

let fold_ascending t ~init ~f =
  let rec go n acc =
    match n with
    | Leaf -> acc
    | Node { l; v; r; _ } -> go r (f (go l acc) v.e_key v.e_pk)
  in
  go t.root init

let invariant_ok t =
  let rec check = function
    | Leaf -> Some (None, None, 0)
    | Node { l; v; r; size } -> (
        match (check l, check r) with
        | Some (lmin, lmax, ls), Some (rmin, rmax, rs) ->
            let ordered =
              (match lmax with Some m -> compare_entry m v < 0 | None -> true)
              && match rmin with Some m -> compare_entry v m < 0 | None -> true
            in
            if ordered && size = 1 + ls + rs then
              Some
                ( (match lmin with Some _ -> lmin | None -> Some v),
                  (match rmax with Some _ -> rmax | None -> Some v),
                  size )
            else None
        | _ -> None)
  in
  Option.is_some (check t.root)
