type comparison = Lt | Le | Gt | Ge

type t =
  | True
  | Eq of string * Value.t
  | Ne of string * Value.t
  | Cmp of comparison * string * Value.t
  | In of string * Value.t list
  | And of t * t
  | Or of t * t
  | Not of t

let conj = function [] -> True | p :: ps -> List.fold_left (fun a b -> And (a, b)) p ps

let holds cmp c =
  match cmp with Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0

let rec compile schema p =
  match p with
  | True -> fun _ -> true
  | Eq (col, v) ->
      let i = Schema.position schema col in
      fun row -> Value.equal row.(i) v
  | Ne (col, v) ->
      let i = Schema.position schema col in
      fun row -> not (Value.equal row.(i) v)
  | Cmp (cmp, col, v) ->
      let i = Schema.position schema col in
      fun row -> holds cmp (Value.compare row.(i) v)
  | In (col, vs) ->
      let i = Schema.position schema col in
      fun row -> List.exists (Value.equal row.(i)) vs
  | And (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun row -> fa row && fb row
  | Or (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun row -> fa row || fb row
  | Not a ->
      let fa = compile schema a in
      fun row -> not (fa row)

let rec equality_bindings = function
  | Eq (col, v) -> [ (col, v) ]
  | And (a, b) -> equality_bindings a @ equality_bindings b
  | True | Ne _ | Cmp _ | In _ | Or _ | Not _ -> []

let rec comparison_bindings = function
  | Cmp (op, col, v) -> [ (op, col, v) ]
  | And (a, b) -> comparison_bindings a @ comparison_bindings b
  | True | Eq _ | Ne _ | In _ | Or _ | Not _ -> []

let pp_comparison ppf cmp =
  Format.pp_print_string ppf (match cmp with Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Eq (c, v) -> Format.fprintf ppf "%s = %a" c Value.pp v
  | Ne (c, v) -> Format.fprintf ppf "%s <> %a" c Value.pp v
  | Cmp (cmp, c, v) -> Format.fprintf ppf "%s %a %a" c pp_comparison cmp Value.pp v
  | In (c, vs) ->
      Format.fprintf ppf "%s in (%a)" c
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Value.pp)
        vs
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(not %a)" pp a
