type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null

type ty = Tint | Tfloat | Tstr | Tbool

let type_of = function
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstr
  | Bool _ -> Some Tbool
  | Null -> None

let has_type v ty = match type_of v with None -> true | Some t -> t = ty

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Null, Null -> true
  | (Int _ | Float _ | Str _ | Bool _ | Null), _ -> false

let rank = function Null -> 0 | Bool _ -> 1 | Int _ -> 2 | Float _ -> 3 | Str _ -> 4

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Null, Null -> 0
  | _ -> Stdlib.compare (rank a) (rank b)

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.fprintf ppf "%b" b
  | Null -> Format.pp_print_string ppf "NULL"

let pp_ty ppf ty =
  Format.pp_print_string ppf
    (match ty with Tint -> "int" | Tfloat -> "float" | Tstr -> "string" | Tbool -> "bool")

let to_string v = Format.asprintf "%a" pp v

let type_error expected v =
  invalid_arg (Format.asprintf "Value.as_%s: got %a" expected pp v)

let as_int = function Int n -> n | v -> type_error "int" v
let as_float = function Float f -> f | v -> type_error "float" v
let as_str = function Str s -> s | v -> type_error "str" v
let as_bool = function Bool b -> b | v -> type_error "bool" v

let number = function
  | Int n -> float_of_int n
  | Float f -> f
  | v -> type_error "number" v
