type column = { name : string; ty : Value.ty; nullable : bool }

type t = {
  name : string;
  columns : column array;
  positions : (string, int) Hashtbl.t;
  key : string list;
  key_positions : int array;
}

let col ?(nullable = false) name ty = { name; ty; nullable }

let make ~name ~key (columns : column list) =
  if key = [] then invalid_arg (name ^ ": empty primary key");
  let columns = Array.of_list columns in
  let positions = Hashtbl.create (Array.length columns) in
  Array.iteri
    (fun i (c : column) ->
      if Hashtbl.mem positions c.name then
        invalid_arg (Printf.sprintf "%s: duplicate column %s" name c.name);
      Hashtbl.add positions c.name i)
    columns;
  let key_positions =
    Array.of_list
      (List.map
         (fun k ->
           match Hashtbl.find_opt positions k with
           | Some i ->
               if columns.(i).nullable then
                 invalid_arg (Printf.sprintf "%s: nullable key column %s" name k);
               i
           | None -> invalid_arg (Printf.sprintf "%s: unknown key column %s" name k))
         key)
  in
  { name; columns; positions; key; key_positions }

let name t = t.name
let columns t = t.columns
let arity t = Array.length t.columns
let key_columns t = t.key
let key_positions t = t.key_positions

let position t cname =
  match Hashtbl.find_opt t.positions cname with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "%s: unknown column %s" t.name cname)

let mem t cname = Hashtbl.mem t.positions cname
let column t cname = t.columns.(position t cname)

let check_row t row =
  if Array.length row <> arity t then
    Error
      (Printf.sprintf "%s: row arity %d, expected %d" t.name (Array.length row) (arity t))
  else begin
    let problem = ref None in
    Array.iteri
      (fun i v ->
        if !problem = None then
          let c = t.columns.(i) in
          if v = Value.Null then begin
            if not c.nullable then
              problem := Some (Printf.sprintf "%s.%s: NULL not allowed" t.name c.name)
          end
          else if not (Value.has_type v c.ty) then
            problem :=
              Some
                (Format.asprintf "%s.%s: %a is not a %a" t.name c.name Value.pp v
                   Value.pp_ty c.ty))
      row;
    match !problem with None -> Ok () | Some msg -> Error msg
  end

let key_of_row t row = Array.to_list (Array.map (fun i -> row.(i)) t.key_positions)

let pp ppf t =
  Format.fprintf ppf "@[<v2>table %s (key: %s)@," t.name (String.concat ", " t.key);
  Array.iter
    (fun (c : column) ->
      Format.fprintf ppf "%s : %a%s@," c.name Value.pp_ty c.ty
        (if c.nullable then " null" else ""))
    t.columns;
  Format.fprintf ppf "@]"
