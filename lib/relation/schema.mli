(** Table schemas: named, typed columns with a designated primary key. *)

type column = { name : string; ty : Value.ty; nullable : bool }

type t

val make : name:string -> key:string list -> column list -> t
(** [make ~name ~key columns] builds a schema.  Raises [Invalid_argument] if
    column names are not distinct, [key] is empty, or a key column is missing
    or nullable. *)

val name : t -> string
val columns : t -> column array
val arity : t -> int
val key_columns : t -> string list
val key_positions : t -> int array

val position : t -> string -> int
(** Index of a column by name; raises [Invalid_argument] if absent. *)

val mem : t -> string -> bool
val column : t -> string -> column

val check_row : t -> Value.t array -> (unit, string) result
(** Arity, per-column type, and null admissibility. *)

val key_of_row : t -> Value.t array -> Value.t list
(** Extract the primary-key values of a (schema-valid) row. *)

val pp : Format.formatter -> t -> unit

val col : ?nullable:bool -> string -> Value.ty -> column
(** Convenience constructor; [nullable] defaults to [false]. *)
