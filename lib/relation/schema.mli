(** Table schemas: named, typed columns with a designated primary key. *)

type column = { name : string; ty : Value.ty; nullable : bool }

type t

val make : name:string -> key:string list -> column list -> t
(** [make ~name ~key columns] builds a schema.  Raises [Invalid_argument] if
    column names are not distinct, [key] is empty, or a key column is missing
    or nullable. *)

val name : t -> string
(** The schema's (table) name. *)

val columns : t -> column array
(** Columns in declaration order. *)

val arity : t -> int
(** Number of columns. *)

val key_columns : t -> string list
(** Primary-key column names, in key order. *)

val key_positions : t -> int array
(** Positions of the key columns within a row, in key order. *)

val position : t -> string -> int
(** Index of a column by name; raises [Invalid_argument] if absent. *)

val mem : t -> string -> bool
(** Whether a column with that name exists. *)

val column : t -> string -> column
(** Column by name; raises [Invalid_argument] if absent. *)

val check_row : t -> Value.t array -> (unit, string) result
(** Arity, per-column type, and null admissibility. *)

val key_of_row : t -> Value.t array -> Value.t list
(** Extract the primary-key values of a (schema-valid) row. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering of the schema. *)

val col : ?nullable:bool -> string -> Value.ty -> column
(** Convenience constructor; [nullable] defaults to [false]. *)
