module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Mode = Acc_lock.Mode
module Lock_service = Acc_lock.Lock_service
module Resource_id = Acc_lock.Resource_id
module Fault = Acc_fault.Fault

(* the window after a transaction's last forward step completes and before
   its compensating step starts writing *)
let cp_comp_begin = Fault.register "comp.begin"

type outcome = Committed | Compensated of { completed_steps : int }

type granularity = Item | Table

type options = {
  step_retry_limit : int;
  verify_assertions : bool;
  assertion_granularity : granularity;
  batch_footprints : bool;
}

let default_options =
  {
    step_retry_limit = 1;
    verify_assertions = false;
    assertion_granularity = Item;
    batch_footprints = false;
  }

exception Assertion_violated of { txn : int; assertion : string; at_step : int }

(* Locks released at a step boundary under the instance's read-isolation
   level: a Snapshot reader keeps its S locks (and the isolation assertion)
   until commit so every read stays stable. *)
let step_release_mode inst _res mode =
  match (inst.Program.i_read_isolation, mode) with
  | Program.Snapshot, Mode.S -> false
  | Program.Snapshot, Mode.A a when a = Assertion.legacy_isolation_id -> false
  | (Program.Exposed | Program.Committed_only | Program.Snapshot), _ -> Mode.conventional mode

(* Assertions whose lock must be attached while executing dynamic step [j]:
   active ones (from <= j) and the one granted for the next boundary
   (from = j + 1), per the "unconditionally grant A(pre(S_{i,j+1})) before
   initiating S_ij" rule. *)
let attachable (ai : Program.assertion_instance) j =
  ai.Program.ai_from - 1 <= j && j <= ai.Program.ai_until

let active (ai : Program.assertion_instance) j =
  ai.Program.ai_from <= j && j <= ai.Program.ai_until

let verify_active_assertions eng inst ~txn ~at_step =
  List.iter
    (fun ai ->
      if active ai at_step then
        match ai.Program.ai_check with
        | Some check ->
            if not (check (Executor.db eng)) then
              raise
                (Assertion_violated
                   {
                     txn;
                     assertion = ai.Program.ai_assertion.Assertion.name;
                     at_step;
                   })
        | None -> ())
    inst.Program.i_assertions

(* The dynamic-acquisition hook: piggyback assertional locks (and the
   compensation lock for writes) on every conventional lock the step takes.
   Under [Table] granularity (the two-level ablation) assertional locks
   attach to whole tables, reproducing the false conflicts of §3.2. *)
let install_lock_hook ctx inst ~granularity ~step_dyn_index =
  let comp_step_id =
    match inst.Program.i_def.Program.tt_comp with
    | Some c -> Some c.Program.sd_id
    | None -> None
  in
  Executor.set_on_lock ctx (fun res mode ->
      (* assertional locks anchor on tuples: a table-level attachment would
         assert about every row of the table and block unrelated fresh-row
         writers; table-level assertional locks are reserved for the legacy
         full-isolation path, where that meaning is intended *)
      (match (res, mode) with
      | Resource_id.Tuple _, (Mode.S | Mode.X) ->
          let table = Resource_id.table_of res in
          (* one attach_batch per data lock: order and multiplicity are the
             assertion-list order, exactly as the attach-per-assertion loop
             produced *)
          Executor.attach_locks ctx
            (List.filter_map
               (fun ai ->
                 if
                   attachable ai step_dyn_index
                   && List.mem table (Assertion.tables ai.Program.ai_assertion)
                 then
                   let anchor =
                     match granularity with
                     | Item -> res
                     | Table -> Resource_id.Table table
                   in
                   Some (Mode.A ai.Program.ai_assertion.Assertion.id, anchor)
                 else None)
               inst.Program.i_assertions)
      | _, (Mode.IS | Mode.IX | Mode.A _ | Mode.Comp _) | Resource_id.Table _, _ -> ());
      match (res, mode, comp_step_id) with
      | Resource_id.Tuple _, Mode.X, Some cs ->
          (* checked request: must wait out foreign assertions the
             compensating step would interfere with (§3.4); the lock
             manager's hierarchical check makes this tuple-level exposure
             marker visible to table-level readers *)
          Executor.acquire ctx (Mode.Comp cs) res
      | _, (Mode.X | Mode.S | Mode.IS | Mode.IX | Mode.A _ | Mode.Comp _), _ -> ())

let remove_lock_hook ctx = Executor.set_on_lock ctx (fun _ _ -> ())

(* Release, at the end of dynamic step [j], the conventional locks and the
   assertional locks whose window closed. *)
let end_of_step_release ctx inst j =
  let closing =
    List.filter_map
      (fun ai ->
        if ai.Program.ai_until = j then Some ai.Program.ai_assertion.Assertion.id else None)
      inst.Program.i_assertions
  in
  Executor.release_locks ctx (fun res mode ->
      step_release_mode inst res mode
      || match mode with Mode.A a -> List.mem a closing | _ -> false)

let compensate ctx inst ~completed =
  if completed = 0 then begin
    (* nothing exposed: plain physical rollback *)
    Executor.abort_physical ctx;
    Compensated { completed_steps = 0 }
  end
  else begin
    match inst.Program.i_compensate with
    | None ->
        (* a multi-step instance without compensation cannot be here: the
           instance constructor enforces a body when tt_comp exists, and a
           single-step instance always has completed = 0 on failure *)
        assert false
    | Some body ->
        let comp_def =
          match inst.Program.i_def.Program.tt_comp with Some c -> c | None -> assert false
        in
        Executor.set_compensating ctx true;
        Executor.set_step ctx ~step_type:comp_def.Program.sd_id ~step_index:(completed + 1);
        remove_lock_hook ctx;
        Fault.trip cp_comp_begin;
        let rec attempt n =
          try
            Fault.step_trip ();
            body ctx ~completed
          with Txn_effect.Deadlock_victim | Txn_effect.Lock_timeout | Fault.Step_fault ->
            (* §3.4 guarantees the policy aborts the steps delaying a
               compensating step rather than the step itself; if we are
               nonetheless victimized (all-compensating cycle) or fault
               injected, undo this attempt, back off, and try again.
               [Lock_timeout] cannot arise here — compensating requests carry
               no deadline — but is caught for defence in depth. *)
            Executor.rollback_current_step ctx;
            Txn_effect.yield ~attempt:n ();
            attempt (n + 1)
        in
        attempt 1;
        Executor.end_step ctx ~comp_area:None;
        Executor.finish_compensated ctx;
        Compensated { completed_steps = completed }
  end

(* Admission plus the per-step loop, stopping short of the commit decision:
   [Error outcome] when the instance failed (compensated) along the way,
   [Ok ctx] with every step completed, conventional locks released at the
   last step boundary, and the until-commit assertional and compensation
   locks still held.  [run] commits immediately; [prepare] interposes the
   2PC vote, leaving the transaction open across the in-doubt window. *)
let run_steps ?(options = default_options) ?abort_at ?stop eng inst =
  let n_steps = Array.length inst.Program.i_steps in
  let needs_comp = Option.is_some inst.Program.i_compensate in
  (* [multi_step] is recovery's "compensable ACC program" flag: a loser with
     a durable completed step must go to compensation replay.  That covers
     single-step programs too when they declare a compensating step (the
     partitioned branch programs) — their one completed step is durable the
     moment its step-end record is, and only compensation can take it back. *)
  let multi_step = n_steps > 1 || needs_comp in
  let ctx = Executor.begin_txn eng ~txn_type:inst.Program.i_def.Program.tt_name ~multi_step in
  let stopped () = match stop with Some f -> f () | None -> false in
  let outcome = ref None in
  (try
     (* --- admission: lock pre(S_1) ------------------------------------- *)
     Executor.charge eng (Executor.cost eng).Acc_txn.Cost_model.admission;
     let rec admit n =
       try
         if options.batch_footprints then
           (* the admission set is a declared footprint too: one batch, one
              canonical order, one shard round-trip per shard *)
           Executor.acquire_footprint ctx ~admission:true
             (List.concat_map
                (fun (ai, items) ->
                  List.map
                    (fun item -> (Mode.A ai.Program.ai_assertion.Assertion.id, item))
                    items)
                inst.Program.i_admission)
         else
           List.iter
             (fun (ai, items) ->
               List.iter
                 (fun item ->
                   Executor.acquire ctx ~admission:true
                     (Mode.A ai.Program.ai_assertion.Assertion.id) item)
                 items)
             inst.Program.i_admission
       with Txn_effect.Deadlock_victim | Txn_effect.Lock_timeout ->
         (* nothing executed yet: drop what we got, let the winner finish, and
            re-admit — or abandon admission entirely when the driver is
            draining *)
         Executor.release_locks ctx (fun _ _ -> true);
         if stopped () then begin
           outcome := Some (compensate ctx inst ~completed:0);
           raise Exit
         end;
         Txn_effect.yield ~attempt:n ();
         admit (n + 1)
     in
     admit 1;
     (* --- steps ---------------------------------------------------------- *)
     for j0 = 0 to n_steps - 1 do
       let j = j0 + 1 in
       (* drain check at the step boundary: a stopped driver wants no {e new}
          steps issued, so compensate what completed and get off the locks;
          this is what bounds shutdown and lets the watchdog distinguish a
          drain from a wedge *)
       if stopped () then begin
         outcome := Some (compensate ctx inst ~completed:(j - 1));
         raise Exit
       end;
       let step_def, body = inst.Program.i_steps.(j0) in
       Executor.set_step ctx ~step_type:step_def.Program.sd_id ~step_index:j;
       install_lock_hook ctx inst ~granularity:options.assertion_granularity
         ~step_dyn_index:j;
       (* read-isolation restrictions ([Gerstl et al., TR 96/07], cf. §3.3):
          reads must not observe values an in-flight transaction could still
          compensate away, so the isolation assertional lock precedes each
          read lock and waits out compensation locks *)
       (match inst.Program.i_read_isolation with
       | Program.Exposed -> ()
       | Program.Committed_only | Program.Snapshot ->
           Executor.set_on_before_lock ctx (fun res mode ->
               match mode with
               | Mode.S ->
                   Executor.acquire ctx (Mode.A Assertion.legacy_isolation_id) res
               | Mode.X | Mode.IS | Mode.IX | Mode.A _ | Mode.Comp _ -> ()));
       if options.verify_assertions then
         verify_active_assertions eng inst ~txn:(Executor.txn_id ctx) ~at_step:j;
       let rec attempt ~n retries_left =
         try
           Fault.step_trip ();
           (* pre-acquire the step's declared footprint inside the attempt,
              so a victimization or timeout mid-batch takes the normal
              rollback-and-retry path (partially granted batch members are
              released by [release_locks] like any step locks) *)
           if options.batch_footprints then
             Executor.acquire_footprint ctx (inst.Program.i_footprint j);
           body ctx
         with
         | Txn_effect.Deadlock_victim | Txn_effect.Lock_timeout | Fault.Step_fault ->
             (* a lock-wait timeout takes the same compensating-abort path a
                deadlock victim does: roll the step back physically, retry
                within budget, compensate past it *)
             Executor.rollback_current_step ctx;
             Executor.release_locks ctx (step_release_mode inst);
             (* back off so the winner of the deadlock (or the faulted
                resource) can make progress; the attempt number makes the
                scheduler's delay grow exponentially, capped (Backoff) *)
             Txn_effect.yield ~attempt:n ();
             if retries_left > 0 && not (stopped ()) then
               attempt ~n:(n + 1) (retries_left - 1)
             else begin
               remove_lock_hook ctx;
               outcome := Some (compensate ctx inst ~completed:(j - 1));
               raise Exit
             end
         | Txn_effect.Abort_requested ->
             (* the program decided to fail (e.g. TPC-C's 1% new-orders):
                undo the current step physically, compensate the rest *)
             Executor.rollback_current_step ctx;
             Executor.release_locks ctx (step_release_mode inst);
             remove_lock_hook ctx;
             outcome := Some (compensate ctx inst ~completed:(j - 1));
             raise Exit
         | e when not (Fault.is_crash e) ->
             (* an unexpected failure in a step body: fail the transaction
                the same way a programmatic abort would — physical undo of
                the current step, compensation for the completed ones — and
                only then let the exception surface.  A buggy body must not
                leave locks behind.  [Fault.Crash] is exempt: it models the
                process dying, which runs no cleanup — it must propagate
                with the log exactly as the crash left it. *)
             Executor.rollback_current_step ctx;
             Executor.release_locks ctx (step_release_mode inst);
             remove_lock_hook ctx;
             (try ignore (compensate ctx inst ~completed:(j - 1))
              with _ ->
                (* the compensation failed too: drop everything so other
                   transactions can proceed; the database may need recovery *)
                Executor.release_locks ctx (fun _ _ -> true));
             raise e
       in
       attempt ~n:1 options.step_retry_limit;
       remove_lock_hook ctx;
       Executor.end_step ctx
         ~comp_area:(if needs_comp then Some (inst.Program.i_comp_area ()) else None);
       end_of_step_release ctx inst j;
       match abort_at with
       | Some k when k = j ->
           outcome := Some (compensate ctx inst ~completed:j);
           raise Exit
       | Some _ | None -> ()
     done
   with Exit -> ());
  match !outcome with
  | Some o -> Error o
  | None ->
      if options.verify_assertions then
        verify_active_assertions eng inst ~txn:(Executor.txn_id ctx) ~at_step:n_steps;
      Ok ctx

let run ?options ?abort_at ?stop eng inst =
  match run_steps ?options ?abort_at ?stop eng inst with
  | Error o -> o
  | Ok ctx ->
      Executor.commit ctx;
      Committed

type prepared = { pr_ctx : Executor.ctx; pr_inst : Program.instance; pr_txn : int }

let prepare ?options ?stop eng inst ~gid =
  if Option.is_none inst.Program.i_compensate then
    invalid_arg
      (inst.Program.i_def.Program.tt_name
      ^ ": a 2PC participant branch must declare a compensating step");
  match run_steps ?options ?stop eng inst with
  | Error o -> Error o
  | Ok ctx ->
      Executor.prepare ctx ~gid;
      Ok { pr_ctx = ctx; pr_inst = inst; pr_txn = Executor.txn_id ctx }

let prepared_txn p = p.pr_txn
let commit_prepared p = Executor.commit p.pr_ctx

let abort_prepared p =
  (* distributed cancel: every step completed, so this is always the logical
     path — the compensating step, exactly as [run ~abort_at:n] takes it *)
  ignore
    (compensate p.pr_ctx p.pr_inst ~completed:(Array.length p.pr_inst.Program.i_steps))

let run_legacy ?(options = default_options) ?stop eng ~txn_type body =
  ignore options;
  let stopped () = match stop with Some f -> f () | None -> false in
  let rec attempt n =
    let ctx = Executor.begin_txn eng ~txn_type ~multi_step:false in
    Executor.set_step ctx ~step_type:Program.legacy_step_id ~step_index:1;
    (* full isolation: the legacy-isolation assertional lock precedes every
       conventional data lock and is held to commit; acquiring it first means
       the transaction queues on in-flight multi-step writers (their Comp
       locks) without holding the data lock across the wait *)
    Executor.set_on_before_lock ctx (fun res mode ->
        match mode with
        | Mode.S | Mode.X ->
            Executor.acquire ctx (Mode.A Assertion.legacy_isolation_id) res
        | Mode.IS | Mode.IX | Mode.A _ | Mode.Comp _ -> ());
    try
      Fault.step_trip ();
      body ctx;
      Executor.commit ctx;
      Committed
    with
    | Txn_effect.Deadlock_victim | Txn_effect.Lock_timeout | Fault.Step_fault ->
        Executor.abort_physical ctx;
        if stopped () then Compensated { completed_steps = 0 }
        else begin
          Txn_effect.yield ~attempt:n ();
          attempt (n + 1)
        end
    | e when not (Fault.is_crash e) ->
        (* unexpected failure: a flat transaction can abort physically; a
           simulated crash must propagate without appending anything *)
        Executor.abort_physical ctx;
        raise e
  in
  attempt 1

let victim_policy locks ~requester ~cycle =
  Acc_lock.Lock_core.victim_policy
    ~is_compensating:(fun txn -> Lock_service.compensating_waiter locks ~txn)
    ~requester ~cycle
