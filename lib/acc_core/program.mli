(** Decomposed transaction programs.

    The {e static} side ({!step_def}, {!txn_type_def}, {!workload}) is what
    exists at design time: step types with symbolic footprints, assertions,
    and the compensating step.  The interference analysis consumes only this.

    The {e run-time} side ({!instance}) binds a static type to concrete
    arguments: executable step bodies (closures over a private workspace),
    resolved assertion windows and checkers, the admission item list of
    [pre(S_1)], and the compensation body. *)

type step_def = {
  sd_id : int;  (** globally unique step type; {!legacy_step_id} is reserved *)
  sd_name : string;
  sd_txn_type : string;
  sd_index : int;  (** 1-based position; compensating steps use 0 *)
  sd_reads : Footprint.access list;
  sd_writes : Footprint.access list;
  sd_repeats : bool;  (** loop step: may execute any number of times *)
}

val legacy_step_id : int
(** Reserved step type (0) for unanalyzed (legacy / ad-hoc) transactions;
    the analysis treats it as interfering with everything it could touch. *)

val step :
  id:int ->
  name:string ->
  txn_type:string ->
  index:int ->
  ?repeats:bool ->
  reads:Footprint.access list ->
  writes:Footprint.access list ->
  unit ->
  step_def

type txn_type_def = {
  tt_name : string;
  tt_steps : step_def list;  (** forward steps, in order *)
  tt_comp : step_def option;  (** compensating step type, if decomposed *)
  tt_assertions : Assertion.t list;
}

val txn_type :
  name:string ->
  steps:step_def list ->
  ?comp:step_def ->
  assertions:Assertion.t list ->
  unit ->
  txn_type_def
(** Validates step indices (1..n in order, with [repeats] allowed to stand
    for a run of indices) and assertion ownership. *)

type workload
(** A validated set of transaction types with globally unique step and
    assertion ids. *)

val workload : txn_type_def list -> workload
(** Raises [Invalid_argument] on duplicate ids/names. *)

val txn_types : workload -> txn_type_def list
val find_txn_type : workload -> string -> txn_type_def
val all_steps : workload -> step_def list
(** Every forward and compensating step, plus the legacy pseudo-step. *)

val all_assertions : workload -> Assertion.t list
(** Every declared assertion plus {!Assertion.legacy_isolation}. *)

val find_step : workload -> int -> step_def option
val max_step_id : workload -> int
val max_assertion_id : workload -> int

(** {1 Run-time instances} *)

type assertion_instance = {
  ai_assertion : Assertion.t;
  ai_from : int;  (** dynamic step index at whose boundary it becomes active *)
  ai_until : int;  (** dynamic index of the step whose end releases it *)
  ai_check : (Acc_relation.Database.t -> bool) option;
      (** optional run-time truth checker, resolved against the instance's
          arguments — used by the verification harness, never by the ACC *)
}

type read_isolation =
  | Exposed
      (** the default of the paper's §3.3: steps may read intermediate
          results other transactions exposed at their step boundaries *)
  | Committed_only
      (** the first restriction of [Gerstl et al., TR 96/07]: every read
          must return a value no in-flight multi-step transaction could
          still compensate away — reads wait out compensation locks *)
  | Snapshot
      (** the second restriction: all reads correspond to one snapshot —
          read locks and their isolation assertions are held to commit *)

type instance = {
  i_def : txn_type_def;
  i_steps : (step_def * (Acc_txn.Executor.ctx -> unit)) array;
      (** concrete executable steps; loop steps appear expanded *)
  i_assertions : assertion_instance list;
  i_admission : (assertion_instance * Acc_lock.Resource_id.t list) list;
      (** the items of [pre(S_1)] known before initiation *)
  i_compensate : (Acc_txn.Executor.ctx -> completed:int -> unit) option;
  i_comp_area : unit -> (string * Acc_relation.Value.t) list;
  i_read_isolation : read_isolation;
  i_footprint : int -> (Acc_lock.Mode.t * Acc_lock.Resource_id.t) list;
      (** concrete declared footprint of dynamic step [j] (1-based), for
          batched pre-acquisition; [] (the default) means undeclared — the
          step acquires dynamically, lock by lock *)
}

val instance :
  def:txn_type_def ->
  steps:(step_def * (Acc_txn.Executor.ctx -> unit)) list ->
  ?assertions:assertion_instance list ->
  ?admission:(assertion_instance * Acc_lock.Resource_id.t list) list ->
  ?compensate:(Acc_txn.Executor.ctx -> completed:int -> unit) ->
  ?comp_area:(unit -> (string * Acc_relation.Value.t) list) ->
  ?read_isolation:read_isolation ->
  ?footprints:(int -> (Acc_lock.Mode.t * Acc_lock.Resource_id.t) list) ->
  unit ->
  instance
(** Validates that the steps belong to [def] and appear in a legal order
    (non-repeating steps exactly once, in index order; repeating steps any
    number of consecutive times), and that a compensation body is given iff
    [def.tt_comp] exists.

    [footprints j] lists the (mode, resource) pairs dynamic step [j] is known
    to lock — evaluated at step start, so workspace values earlier steps
    computed may be consulted.  Used only when the runtime's
    [batch_footprints] option is on; a footprint may over-approximate (later
    in-step acquires are re-entrant) and under-approximation is harmless
    (missing locks are acquired one by one, as without batching). *)

val resolve_window : instance -> Assertion.t -> int * int
(** Dynamic [from, until] for an assertion given the instance's expanded step
    list ({!Assertion.until_commit} maps to the last step). *)
