(** Symbolic data-access footprints for the design-time analysis.

    A footprint describes, without running anything, which (table, column)
    pairs a step writes or an assertion references, and how the rows involved
    are identified.  Interference (§3.1) is then decidable by overlap:
    a step {e may} falsify an assertion only if it writes a column the
    assertion references in a row the assertion might be about. *)

type cols =
  | All_columns
  | Columns of string list

type freshness =
  | Fresh
      (** Rows identified by a value that is {e unique to the owning
          transaction instance} — e.g. an order number drawn from the
          monotone counter.  Two distinct instances can never denote the same
          row, so Fresh-vs-Fresh accesses from different instances never
          alias.  This is how the analysis knows that instances of
          [new_order] can interleave arbitrarily (§4). *)
  | Shared
      (** Rows identified by an externally supplied value (a district id, an
          existing order id): instances may collide. *)

type access = { acc_table : string; acc_cols : cols; acc_fresh : freshness }

val make : ?fresh:freshness -> string -> cols -> access
(** [make table cols]; [fresh] defaults to [Shared]. *)

val cols_overlap : cols -> cols -> bool
val may_alias : access -> access -> bool
(** Same table, overlapping columns, and row identities that can collide
    (i.e. not both [Fresh]). *)

val pp : Format.formatter -> access -> unit
