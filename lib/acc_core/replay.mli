(** Automated compensation replay: drive every {!Acc_wal.Recovery.pending}
    obligation to a clean state by re-executing its registered compensating
    step.

    Recovery reports {e what} must be compensated (transaction type,
    completed-step count, durable work area); the {e how} is program logic.
    Transaction programs register their compensating step once per type, and
    {!replay_pending} runs it for each pending transaction under the
    compensation-lock protocol (context flagged compensating, §3.4 victim
    sparing, rollback-and-backoff on deadlock or injected fault).

    Replay is crash-idempotent: {!Acc_txn.Executor.adopt_pending} re-logs
    each obligation on the recovered engine's log before the compensating
    step starts, so a crash mid-replay re-derives the same pending set on
    the next recovery. *)

type handler =
  Acc_txn.Executor.ctx ->
  completed:int ->
  area:(string * Acc_relation.Value.t) list ->
  unit
(** A compensating-step body: receives a live context (already flagged
    compensating, positioned at step [completed + 1]), the number of
    completed forward steps, and the durable work area. *)

val register : txn_type:string -> step_type:int -> handler -> unit
(** Register (or replace) the compensation handler for a transaction-type
    name.  [step_type] is the design-time id of the compensating step
    ({!Acc_core.Program.step_def}'s [sd_id]), used for lock provenance and
    tracing. *)

val has_handler : string -> bool

val replay_one : Acc_txn.Executor.t -> Acc_wal.Recovery.pending -> unit
(** Adopt and compensate a single pending transaction on the given (already
    recovered) engine.  Raises [Failure] if no handler is registered for its
    type. *)

val replay_pending : Acc_txn.Executor.t -> Acc_wal.Recovery.report -> int
(** [replay_one] for every pending transaction of the report, in report
    order; returns how many were compensated. *)

val resolve_in_doubt : Acc_txn.Executor.t -> commit:bool -> Acc_wal.Recovery.in_doubt -> unit
(** Resolve one in-doubt 2PC participant branch according to its
    coordinator's decision: [commit:true] adopts the branch
    ({!Acc_txn.Executor.adopt_in_doubt}, which re-logs the Prepare record
    for crash idempotence) and commits it; [commit:false] — an explicit
    abort decision or presumed abort — runs its registered compensation
    handler under the replay protocol.  Emits a [resolve] trace event.
    Raises [Failure] on abort if no handler is registered for the type. *)
