(** The one-level ACC runtime (§3.3, implemented-algorithm variant).

    Protocol per transaction instance:

    + {b admission} — request [A(pre(S_1))] locks (with the prefix
      interference check) on the instance's declared admission items;
    + {b per step} — run the body under strict 2PL; as each conventional
      lock is acquired, attach the assertional locks of the currently active
      assertions to the item (the dynamic acquisition optimization at the
      end of §3.3) and, for writes of a compensatable transaction, acquire
      the compensation lock (§3.4);
    + {b step end} — write the end-of-step record and work area, release
      conventional locks and the assertional locks whose window closed;
    + {b deadlock} — a victim's step is rolled back physically and retried;
      if it is victimized again the transaction rolls back via its
      compensating step (§3.4), which runs flagged so the victim policy
      never aborts it;
    + {b commit} — release everything.

    Legacy / ad-hoc transactions run through {!run_legacy}: single step,
    conventional locks plus the legacy-isolation assertional lock on every
    item, all held to commit — fully isolated from decomposed transactions. *)

type outcome =
  | Committed
  | Compensated of { completed_steps : int }
      (** Rolled back: physically if no step had completed, otherwise by the
          compensating step. *)

type granularity =
  | Item  (** the one-level ACC: assertional locks on the tuples touched *)
  | Table
      (** the two-level ACC of §3.2, for ablation: item identities are
          treated as unknown at design time, so assertional locks attach at
          table granularity and every may-alias conflict is taken — the
          false conflicts the one-level design exists to eliminate *)

type options = {
  step_retry_limit : int;
      (** Deadlock victimizations of one step before giving up and
          compensating (paper behaviour = 1 retry). *)
  verify_assertions : bool;
      (** Evaluate every active assertion's checker at each step boundary and
          raise {!Assertion_violated} on falsehood — the paper's correctness
          claim, made executable.  Test/diagnostic use only: the ACC itself
          never looks at values (§3.3). *)
  assertion_granularity : granularity;
  batch_footprints : bool;
      (** Acquire each step's declared footprint ({!Program.instance}'s
          [footprints]) and the admission set through
          {!Acc_txn.Executor.acquire_footprint} — one canonical-order batch,
          one shard-mutex round-trip per shard on the parallel engine —
          before running the step body (whose own acquires then hit
          re-entrant grants).  Off by default: the deterministic simulator
          paths are byte-for-byte unchanged. *)
}

val default_options : options

exception Assertion_violated of { txn : int; assertion : string; at_step : int }

val run :
  ?options:options ->
  ?abort_at:int ->
  ?stop:(unit -> bool) ->
  Acc_txn.Executor.t ->
  Program.instance ->
  outcome
(** Execute one instance to completion.  [abort_at j] forces a programmatic
    abort after step [j] completes (models the TPC-C requirement that 1% of
    new-order transactions abort, and exercises compensation).  [stop] is
    polled at every step boundary and after every victimization/timeout:
    once it returns [true] no new step is issued — completed steps are
    compensated and the transaction winds down (bounded drain for the
    parallel driver's shutdown).  Lock-wait timeouts
    ([Txn_effect.Lock_timeout]) take the same retry-then-compensate path as
    deadlock victims. *)

(** {1 Two-phase-commit participation}

    A cross-partition transaction's branch on one partition runs all its
    steps, then {e prepares} instead of committing: the [Prepare] record is
    the branch's durable yes-vote, and the until-commit assertional locks
    plus the compensation locks stay held across the in-doubt window (the
    conventional locks were already released at the last step boundary, as
    always).  The coordinator later applies its decision with
    {!commit_prepared} or {!abort_prepared} — the latter runs the
    compensating step, ACC's logical undo, as the distributed cancel. *)

type prepared
(** A branch that has voted yes and awaits the coordinator's decision. *)

val prepare :
  ?options:options ->
  ?stop:(unit -> bool) ->
  Acc_txn.Executor.t ->
  Program.instance ->
  gid:int ->
  (prepared, outcome) result
(** Run every step of the instance, then vote.  [Error outcome] means the
    branch failed before the vote (deadlock past the retry budget, timeout,
    programmatic abort) and has already rolled itself back — the coordinator
    must abort the sibling branches.  The instance must declare a
    compensating step: a prepared branch may still be told to abort. *)

val prepared_txn : prepared -> int
(** The branch's local transaction id. *)

val commit_prepared : prepared -> unit
(** Apply a commit decision: log [Commit], release everything. *)

val abort_prepared : prepared -> unit
(** Apply an abort decision: run the compensating step over all completed
    steps, log [Abort], release everything. *)

val run_legacy :
  ?options:options ->
  ?stop:(unit -> bool) ->
  Acc_txn.Executor.t ->
  txn_type:string ->
  (Acc_txn.Executor.ctx -> unit) ->
  outcome
(** Run an unanalyzed transaction with full isolation (retries internally on
    deadlock or lock timeout; commits unless [stop] becomes [true] during a
    retry, in which case the abort stands and the result is
    [Compensated { completed_steps = 0 }]). *)

val victim_policy : Acc_txn.Schedule.victim_policy
(** §3.4: the step closing the cycle is the victim, unless it is a
    compensating step — then every non-compensating transaction it waits on
    in the cycle is aborted instead. *)
