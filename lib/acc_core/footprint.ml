type cols = All_columns | Columns of string list

type freshness = Fresh | Shared

type access = { acc_table : string; acc_cols : cols; acc_fresh : freshness }

let make ?(fresh = Shared) table cols = { acc_table = table; acc_cols = cols; acc_fresh = fresh }

let cols_overlap a b =
  match (a, b) with
  | All_columns, _ | _, All_columns -> true
  | Columns xs, Columns ys -> List.exists (fun x -> List.mem x ys) xs

let may_alias a b =
  String.equal a.acc_table b.acc_table
  && cols_overlap a.acc_cols b.acc_cols
  && not (a.acc_fresh = Fresh && b.acc_fresh = Fresh)

let pp ppf a =
  let cols =
    match a.acc_cols with All_columns -> "*" | Columns cs -> String.concat "," cs
  in
  Format.fprintf ppf "%s(%s)%s" a.acc_table cols
    (match a.acc_fresh with Fresh -> " fresh" | Shared -> "")
