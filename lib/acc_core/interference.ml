type override = prefix_of:Assertion.t -> assertion:Assertion.t -> bool option

type t = {
  workload : Program.workload;
  step_table : bool array array; (* [step_id].[assertion_id] *)
  prefix_table : bool array array; (* [holder_assertion_id].[assertion_id] *)
}

let writes_anything (s : Program.step_def) = s.Program.sd_writes <> []

let wild (accs : Footprint.access list) =
  List.exists (fun a -> a.Footprint.acc_table = "*") accs

(* one execution of step [s] vs assertion [a] *)
let step_vs_assertion (s : Program.step_def) (a : Assertion.t) =
  if a.Assertion.id = Assertion.legacy_isolation_id then writes_anything s
  else if wild s.Program.sd_writes then true (* unanalyzed step: conservative *)
  else
    List.exists
      (fun w -> List.exists (fun r -> Footprint.may_alias w r) a.Assertion.refs)
      s.Program.sd_writes

(* Within one transaction type, Fresh footprints denote the *same* rows, so
   the prefix computation must not use the cross-instance aliasing rule.
   Interference of a step with an assertion of its own transaction type uses
   plain table+column overlap. *)
let own_step_vs_assertion (s : Program.step_def) (a : Assertion.t) =
  if a.Assertion.id = Assertion.legacy_isolation_id then writes_anything s
  else if wild s.Program.sd_writes then true
  else
    List.exists
      (fun (w : Footprint.access) ->
        List.exists
          (fun (r : Footprint.access) ->
            String.equal w.Footprint.acc_table r.Footprint.acc_table
            && Footprint.cols_overlap w.Footprint.acc_cols r.Footprint.acc_cols)
          a.Assertion.refs)
      s.Program.sd_writes

let build ?(compatible = []) ?(override = fun ~prefix_of:_ ~assertion:_ -> None) workload =
  let steps = Program.all_steps workload in
  let asserts = Program.all_assertions workload in
  let n_steps = Program.max_step_id workload + 1 in
  let n_asserts = Program.max_assertion_id workload + 1 in
  let step_table = Array.make_matrix n_steps n_asserts false in
  List.iter
    (fun (s : Program.step_def) ->
      List.iter
        (fun (a : Assertion.t) ->
          step_table.(s.Program.sd_id).(a.Assertion.id) <-
            step_vs_assertion s a && not (List.mem (s.Program.sd_id, a.Assertion.id) compatible))
        asserts)
    steps;
  (* prefix table: the holder of A h with h = pre(S_k,l) has executed steps of
     its own type with static index < l *)
  let prefix_table = Array.make_matrix n_asserts n_asserts false in
  List.iter
    (fun (h : Assertion.t) ->
      let prefix_steps =
        if h.Assertion.id = Assertion.legacy_isolation_id then []
          (* a legacy holder has exposed nothing: it is fully isolated *)
        else
          match
            List.find_opt
              (fun (tt : Program.txn_type_def) -> tt.Program.tt_name = h.Assertion.txn_type)
              (Program.txn_types workload)
          with
          | Some tt ->
              List.filter
                (fun (s : Program.step_def) -> s.Program.sd_index < h.Assertion.pre_of)
                tt.Program.tt_steps
          | None -> []
      in
      List.iter
        (fun (a : Assertion.t) ->
          let v =
            match override ~prefix_of:h ~assertion:a with
            | Some b -> b
            | None ->
                List.exists
                  (fun s ->
                    if s.Program.sd_txn_type = a.Assertion.txn_type then
                      own_step_vs_assertion s a
                    else step_table.(s.Program.sd_id).(a.Assertion.id))
                  prefix_steps
          in
          prefix_table.(h.Assertion.id).(a.Assertion.id) <- v)
        asserts)
    asserts;
  { workload; step_table; prefix_table }

let step_interferes t ~step_type ~assertion =
  if
    step_type < 0
    || step_type >= Array.length t.step_table
    || assertion < 0
    || assertion >= Array.length t.step_table.(0)
  then true
  else t.step_table.(step_type).(assertion)

let prefix_interferes t ~holder_assertion ~assertion =
  if
    holder_assertion < 0
    || holder_assertion >= Array.length t.prefix_table
    || assertion < 0
    || assertion >= Array.length t.prefix_table.(0)
  then true
  else t.prefix_table.(holder_assertion).(assertion)

let semantics t =
  Acc_lock.Mode.
    {
      step_interferes = (fun ~step_type ~assertion -> step_interferes t ~step_type ~assertion);
      prefix_interferes =
        (fun ~holder_assertion ~assertion -> prefix_interferes t ~holder_assertion ~assertion);
    }

let pp ppf t =
  let steps = Program.all_steps t.workload in
  let asserts = Program.all_assertions t.workload in
  Format.fprintf ppf "@[<v>Interference table (step vs assertion):@,";
  List.iter
    (fun (s : Program.step_def) ->
      let hits =
        List.filter
          (fun (a : Assertion.t) ->
            step_interferes t ~step_type:s.Program.sd_id ~assertion:a.Assertion.id)
          asserts
      in
      Format.fprintf ppf "  %-28s -> %s@,"
        (Printf.sprintf "%s.%s" s.Program.sd_txn_type s.Program.sd_name)
        (if hits = [] then "-"
         else String.concat ", " (List.map (fun (a : Assertion.t) -> a.Assertion.name) hits)))
    steps;
  Format.fprintf ppf "Prefix table (holder assertion vs admission assertion):@,";
  List.iter
    (fun (h : Assertion.t) ->
      let hits =
        List.filter
          (fun (a : Assertion.t) ->
            prefix_interferes t ~holder_assertion:h.Assertion.id ~assertion:a.Assertion.id)
          asserts
      in
      if hits <> [] then
        Format.fprintf ppf "  prefix(%-24s) -> %s@," h.Assertion.name
          (String.concat ", " (List.map (fun (a : Assertion.t) -> a.Assertion.name) hits)))
    asserts;
  Format.fprintf ppf "@]"
