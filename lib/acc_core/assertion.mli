(** Design-time interstep assertions.

    An assertion stands for one [pre(S_ij)] of a decomposed transaction type
    (or one conjunct of it): the ACC never evaluates assertions at run time —
    it protects their truth by locking the items they reference (§3.2).  The
    static record carries what the analysis needs: which transaction type and
    step boundary it belongs to, and its reference footprint. *)

type t = {
  id : int;  (** globally unique; {!legacy_isolation_id} is reserved *)
  name : string;
  txn_type : string;  (** owning transaction type ("" for the legacy assertion) *)
  pre_of : int;
      (** [j] such that this assertion is (a conjunct of) [pre(S_j)]; [1]
          makes it an admission assertion acquired before the transaction
          initiates. *)
  until : int;
      (** static index of the step whose termination releases it; for
          loop-spanning invariants of transactions with a dynamic number of
          steps this is {!until_commit} *)
  refs : Footprint.access list;  (** what the assertion references *)
}

val until_commit : int
(** Sentinel (max_int): the assertion stays locked until commit. *)

val legacy_isolation_id : int
(** Reserved assertion id (0) standing for "the values this unanalyzed
    transaction accessed are final": every write step of every decomposed
    transaction interferes with it, which is exactly what keeps legacy and
    ad-hoc transactions fully isolated (§3.3 end). *)

val legacy_isolation : t

val make :
  id:int -> name:string -> txn_type:string -> pre_of:int -> until:int ->
  refs:Footprint.access list -> t
(** Raises [Invalid_argument] on a reserved id or an empty window. *)

val tables : t -> string list
(** Tables referenced (the anchor tables to which its assertional locks are
    attached at run time). *)

val pp : Format.formatter -> t -> unit
