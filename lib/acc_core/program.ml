type step_def = {
  sd_id : int;
  sd_name : string;
  sd_txn_type : string;
  sd_index : int;
  sd_reads : Footprint.access list;
  sd_writes : Footprint.access list;
  sd_repeats : bool;
}

let legacy_step_id = 0

let legacy_step =
  {
    sd_id = legacy_step_id;
    sd_name = "legacy";
    sd_txn_type = "";
    sd_index = 1;
    sd_reads = [ Footprint.make "*" Footprint.All_columns ];
    sd_writes = [ Footprint.make "*" Footprint.All_columns ];
    sd_repeats = false;
  }

let step ~id ~name ~txn_type ~index ?(repeats = false) ~reads ~writes () =
  if id = legacy_step_id then invalid_arg "Program.step: id 0 is reserved";
  if id < 0 then invalid_arg "Program.step: negative id";
  {
    sd_id = id;
    sd_name = name;
    sd_txn_type = txn_type;
    sd_index = index;
    sd_reads = reads;
    sd_writes = writes;
    sd_repeats = repeats;
  }

type txn_type_def = {
  tt_name : string;
  tt_steps : step_def list;
  tt_comp : step_def option;
  tt_assertions : Assertion.t list;
}

let txn_type ~name ~steps ?comp ~assertions () =
  if steps = [] then invalid_arg (name ^ ": no steps");
  List.iteri
    (fun i sd ->
      if sd.sd_txn_type <> name then
        invalid_arg (Printf.sprintf "%s: step %s belongs to %s" name sd.sd_name sd.sd_txn_type);
      if sd.sd_index <> i + 1 then
        invalid_arg (Printf.sprintf "%s: step %s has index %d, expected %d" name sd.sd_name
           sd.sd_index (i + 1)))
    steps;
  (match comp with
  | Some c ->
      if c.sd_txn_type <> name then invalid_arg (name ^ ": foreign compensating step");
      if c.sd_index <> 0 then invalid_arg (name ^ ": compensating step must have index 0")
  | None ->
      (* a transaction that can expose intermediate results across a step
         boundary must be able to roll back logically (§3.4) *)
      if List.length steps > 1 || List.exists (fun s -> s.sd_repeats) steps then
        invalid_arg (name ^ ": multi-step transaction types must declare a compensating step"));
  List.iter
    (fun (a : Assertion.t) ->
      if a.Assertion.txn_type <> name then
        invalid_arg (Printf.sprintf "%s: assertion %s belongs to %s" name a.Assertion.name
           a.Assertion.txn_type))
    assertions;
  { tt_name = name; tt_steps = steps; tt_comp = comp; tt_assertions = assertions }

type workload = {
  types : txn_type_def list;
  steps : step_def list; (* includes compensating + legacy *)
  asserts : Assertion.t list; (* includes legacy isolation *)
}

let workload types =
  let steps =
    legacy_step
    :: List.concat_map
         (fun tt -> tt.tt_steps @ match tt.tt_comp with Some c -> [ c ] | None -> [])
         types
  in
  let asserts = Assertion.legacy_isolation :: List.concat_map (fun tt -> tt.tt_assertions) types in
  let check_unique what ids =
    let sorted = List.sort compare ids in
    let rec dup = function
      | a :: b :: _ when a = b -> Some a
      | _ :: rest -> dup rest
      | [] -> None
    in
    match dup sorted with
    | Some id -> invalid_arg (Printf.sprintf "Program.workload: duplicate %s id %d" what id)
    | None -> ()
  in
  check_unique "step" (List.map (fun s -> s.sd_id) steps);
  check_unique "assertion" (List.map (fun (a : Assertion.t) -> a.Assertion.id) asserts);
  check_unique "txn type (hashed name)"
    (List.map (fun tt -> Hashtbl.hash tt.tt_name) types);
  { types; steps; asserts }

let txn_types w = w.types

let find_txn_type w name =
  match List.find_opt (fun tt -> tt.tt_name = name) w.types with
  | Some tt -> tt
  | None -> invalid_arg ("Program.find_txn_type: " ^ name)

let all_steps w = w.steps
let all_assertions w = w.asserts
let find_step w id = List.find_opt (fun s -> s.sd_id = id) w.steps
let max_step_id w = List.fold_left (fun acc s -> max acc s.sd_id) 0 w.steps

let max_assertion_id w =
  List.fold_left (fun acc (a : Assertion.t) -> max acc a.Assertion.id) 0 w.asserts

(* --- run-time instances -------------------------------------------------- *)

type assertion_instance = {
  ai_assertion : Assertion.t;
  ai_from : int;
  ai_until : int;
  ai_check : (Acc_relation.Database.t -> bool) option;
}

type read_isolation = Exposed | Committed_only | Snapshot

type instance = {
  i_def : txn_type_def;
  i_steps : (step_def * (Acc_txn.Executor.ctx -> unit)) array;
  i_assertions : assertion_instance list;
  i_admission : (assertion_instance * Acc_lock.Resource_id.t list) list;
  i_compensate : (Acc_txn.Executor.ctx -> completed:int -> unit) option;
  i_comp_area : unit -> (string * Acc_relation.Value.t) list;
  i_read_isolation : read_isolation;
  i_footprint : int -> (Acc_lock.Mode.t * Acc_lock.Resource_id.t) list;
}

let check_step_sequence def steps =
  (* the concrete sequence must be the static sequence with repeating steps
     expanded in place *)
  let rec follow statics dynamics =
    match (statics, dynamics) with
    | _, [] ->
        if List.exists (fun (s : step_def) -> not s.sd_repeats) statics then
          invalid_arg (def.tt_name ^ ": instance is missing mandatory steps")
    | [], _ :: _ -> invalid_arg (def.tt_name ^ ": instance has extra steps")
    | s :: srest, d :: drest ->
        if (d : step_def).sd_id = s.sd_id then
          if s.sd_repeats then
            (* consume the run of this repeating step *)
            let rec run = function
              | d' :: drest' when (d' : step_def).sd_id = s.sd_id -> run drest'
              | rest -> follow srest rest
            in
            run drest
          else follow srest drest
        else if s.sd_repeats then follow srest (d :: drest)
        else
          invalid_arg
            (Printf.sprintf "%s: expected step %s, got %s" def.tt_name s.sd_name d.sd_name)
  in
  follow def.tt_steps (List.map fst steps)

let instance ~def ~steps ?(assertions = []) ?(admission = []) ?compensate
    ?(comp_area = fun () -> []) ?(read_isolation = Exposed) ?(footprints = fun _ -> []) () =
  if steps = [] then invalid_arg (def.tt_name ^ ": empty instance");
  check_step_sequence def steps;
  (match (def.tt_comp, compensate) with
  | Some _, None -> invalid_arg (def.tt_name ^ ": compensation body required")
  | None, Some _ -> invalid_arg (def.tt_name ^ ": unexpected compensation body")
  | Some _, Some _ | None, None -> ());
  {
    i_def = def;
    i_steps = Array.of_list steps;
    i_assertions = assertions;
    i_admission = admission;
    i_compensate = compensate;
    i_comp_area = comp_area;
    i_read_isolation = read_isolation;
    i_footprint = footprints;
  }

let resolve_window inst (a : Assertion.t) =
  let n = Array.length inst.i_steps in
  let static_of j = (fst inst.i_steps.(j - 1)).sd_index in
  (* first dynamic position of the static index (for the window opening) and
     last dynamic position (for the closing) *)
  let first_at target =
    let rec look j = if j > n then n else if static_of j = target then j else look (j + 1) in
    look 1
  in
  let last_at target =
    let rec look j = if j < 1 then 1 else if static_of j = target then j else look (j - 1) in
    look n
  in
  let from = if a.Assertion.pre_of <= 1 then 1 else first_at a.Assertion.pre_of in
  let until =
    if a.Assertion.until = Assertion.until_commit then n else last_at a.Assertion.until
  in
  (max 1 (min n from), max 1 (min n until))
