(** Design-time interference tables (§3.2–3.3).

    Built once per workload from symbolic footprints; consulted at run time
    by the lock manager through {!semantics} — a constant-time array lookup,
    which is the paper's stated advantage over predicate locks ("only a table
    look up is required at run time").

    Two tables are produced:

    - [step_interferes s a] — can one execution of step type [s] falsify
      assertion [a]?  True iff a write footprint of [s] may alias a reference
      footprint of [a] (column overlap on the same table, row identities not
      provably distinct), with two special cases: every writing step
      interferes with the legacy-isolation assertion, and the legacy
      pseudo-step interferes with everything.

    - [prefix_interferes h a] — the admission check of §3.3: the holder of
      assertional lock [A h] (h = [pre(S_k,l)]) has completed the prefix
      [S_k,1 .. S_k,l-1]; does that prefix as a whole interfere with [a]?
      Computed as the disjunction of step interference over the prefix,
      refinable with {!override} for workloads whose proofs show a prefix
      restores what it broke (the maximally-reduced-proof refinement of §3.1). *)

type t

type override = prefix_of:Assertion.t -> assertion:Assertion.t -> bool option
(** Consulted before the default prefix rule; [Some b] forces the answer. *)

val build :
  ?compatible:(int * int) list -> ?override:override -> Program.workload -> t
(** [compatible] lists (step id, assertion id) pairs that the syntactic
    overlap rule flags but a manual proof shows commute — e.g. the district
    counter: a foreign increment cannot falsify "my order id is below
    [d_next_o_id]" because the counter is monotone.  This is the hook through
    which the paper's hand analysis feeds semantic facts (commutativity,
    monotonicity) that footprint overlap cannot see. *)

val step_interferes : t -> step_type:int -> assertion:int -> bool
(** Out-of-range ids answer conservatively ([true]): an unknown step is an
    unanalyzed step. *)

val prefix_interferes : t -> holder_assertion:int -> assertion:int -> bool

val semantics : t -> Acc_lock.Mode.semantics
(** The oracle handed to {!Acc_lock.Lock_table.create}. *)

val pp : Format.formatter -> t -> unit
(** Render both tables with step/assertion names — the artifact the paper's
    design-time analysis ships to the run-time system. *)
