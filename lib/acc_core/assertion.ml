type t = {
  id : int;
  name : string;
  txn_type : string;
  pre_of : int;
  until : int;
  refs : Footprint.access list;
}

let until_commit = max_int
let legacy_isolation_id = 0

let legacy_isolation =
  {
    id = legacy_isolation_id;
    name = "legacy-isolation";
    txn_type = "";
    pre_of = 1;
    until = until_commit;
    refs = [ Footprint.make "*" Footprint.All_columns ];
  }

let make ~id ~name ~txn_type ~pre_of ~until ~refs =
  if id = legacy_isolation_id then
    invalid_arg "Assertion.make: id 0 is reserved for legacy isolation";
  if id < 0 then invalid_arg "Assertion.make: negative id";
  if pre_of < 1 || until < pre_of then invalid_arg ("Assertion.make: bad window for " ^ name);
  { id; name; txn_type; pre_of; until; refs }

let tables t = List.sort_uniq String.compare (List.map (fun a -> a.Footprint.acc_table) t.refs)

let pp ppf t =
  Format.fprintf ppf "A%d %s [%s, pre(S%d)..S%s] refs %a" t.id t.name t.txn_type t.pre_of
    (if t.until = until_commit then "commit" else string_of_int t.until)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") Footprint.pp)
    t.refs
