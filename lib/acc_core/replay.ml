(* Automated compensation replay: turn [Recovery.pending] obligations back
   into clean state.

   Recovery (lib/wal) can only report that a multi-step loser had completed
   [k] steps with work area [a] — the compensating logic itself is program
   code.  Transaction programs therefore register their compensating step
   here, keyed by transaction-type name, and [replay_pending] re-executes it
   for every pending obligation, under the same protocol the runtime uses
   for in-flight compensation: the context is flagged compensating (so its
   lock requests are never chosen as deadlock victims — the §3.4 sparing
   rule), the step runs at index [k + 1], and a deadlock victimization or an
   injected fault rolls the attempt back and retries with backoff.

   [Executor.adopt_pending] first re-logs the obligation (Begin, work area,
   last completed step) on the recovered engine's log, so a second crash in
   the middle of the replay leaves the very same pending transaction
   re-derivable from the durable history — the pre-crash log followed by
   this engine's log: replay is idempotent across repeated crashes.  (The
   pre-crash records stay part of that history: a recovered-but-not-yet-
   compensated snapshot alone is not a quiescent baseline, and a crash
   before an obligation is re-logged must still find it in the old tail.) *)

module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Recovery = Acc_wal.Recovery
module Value = Acc_relation.Value
module Fault = Acc_fault.Fault

let cp_comp_begin = Fault.register "comp.begin"

type handler = Executor.ctx -> completed:int -> area:(string * Value.t) list -> unit

(* txn_type -> (design-time step type of the compensating step, handler) *)
let registry : (string, int * handler) Hashtbl.t = Hashtbl.create 8

let register ~txn_type ~step_type handler =
  Hashtbl.replace registry txn_type (step_type, handler)

let has_handler txn_type = Hashtbl.mem registry txn_type

(* Replay runs on a quiesced engine, but the compensating bodies still
   perform [Yield] on retry; resume those inline.  A lock wait cannot be
   granted by anyone on an idle engine, so it is a protocol bug here. *)
let with_inline_scheduler f =
  Effect.Deep.match_with f ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Txn_effect.Yield _ ->
              Some (fun (k : (b, _) Effect.Deep.continuation) -> Effect.Deep.continue k ())
          | Txn_effect.Wait_lock _ ->
              Some
                (fun (_ : (b, _) Effect.Deep.continuation) ->
                  raise (Txn_effect.Stuck "Replay: lock wait on a quiesced engine"))
          | _ -> None);
    }

let replay_one eng (p : Recovery.pending) =
  match Hashtbl.find_opt registry p.Recovery.p_txn_type with
  | None ->
      failwith
        (Printf.sprintf "Replay: no compensation handler registered for %s (txn %d)"
           p.Recovery.p_txn_type p.Recovery.p_txn)
  | Some (step_type, handler) ->
      let ctx =
        Executor.adopt_pending eng ~txn:p.Recovery.p_txn ~txn_type:p.Recovery.p_txn_type
          ~completed_steps:p.Recovery.p_completed_steps ~area:p.Recovery.p_area
      in
      (* obligation is durable again; this is the last point where a crash
         leaves it entirely to the next recovery *)
      Fault.trip cp_comp_begin;
      Executor.set_compensating ctx true;
      Executor.set_step ctx ~step_type ~step_index:(p.Recovery.p_completed_steps + 1);
      with_inline_scheduler (fun () ->
          let rec attempt n =
            try
              Fault.step_trip ();
              handler ctx ~completed:p.Recovery.p_completed_steps ~area:p.Recovery.p_area
            with Txn_effect.Deadlock_victim | Fault.Step_fault ->
              Executor.rollback_current_step ctx;
              Txn_effect.yield ~attempt:n ();
              attempt (n + 1)
          in
          attempt 1;
          Executor.end_step ctx ~comp_area:None;
          Executor.finish_compensated ctx)

let replay_pending eng (report : Recovery.report) =
  List.iter (replay_one eng) report.Recovery.pending;
  List.length report.Recovery.pending

(* In-doubt 2PC participants resolve from the coordinator's decision, not on
   their own: commit finishes the adopted branch directly; abort runs the
   registered compensating handler exactly as [replay_one] would.  Either
   way [adopt_in_doubt] re-logged the Prepare record first, so a crash
   mid-resolution re-derives the same in-doubt obligation (and a commit
   decision, being read again from the decision log, is never undone). *)
let resolve_in_doubt eng ~commit (d : Recovery.in_doubt) =
  let adopt () =
    Executor.adopt_in_doubt eng ~txn:d.Recovery.i_txn ~txn_type:d.Recovery.i_txn_type
      ~completed_steps:d.Recovery.i_completed_steps ~area:d.Recovery.i_area
      ~gid:d.Recovery.i_gid
  in
  (if commit then begin
     let ctx = adopt () in
     Executor.commit ctx
   end
   else
     match Hashtbl.find_opt registry d.Recovery.i_txn_type with
     | None ->
         failwith
           (Printf.sprintf "Replay: no compensation handler registered for %s (txn %d)"
              d.Recovery.i_txn_type d.Recovery.i_txn)
     | Some (step_type, handler) ->
         let ctx = adopt () in
         Fault.trip cp_comp_begin;
         Executor.set_compensating ctx true;
         Executor.set_step ctx ~step_type ~step_index:(d.Recovery.i_completed_steps + 1);
         with_inline_scheduler (fun () ->
             let rec attempt n =
               try
                 Fault.step_trip ();
                 handler ctx ~completed:d.Recovery.i_completed_steps ~area:d.Recovery.i_area
               with Txn_effect.Deadlock_victim | Fault.Step_fault ->
                 Executor.rollback_current_step ctx;
                 Txn_effect.yield ~attempt:n ();
                 attempt (n + 1)
             in
             attempt 1;
             Executor.end_step ctx ~comp_area:None;
             Executor.finish_compensated ctx));
  if Acc_obs.Trace.enabled () then
    Acc_obs.Trace.emit
      (Acc_obs.Trace.Resolve { txn = d.Recovery.i_txn; gid = d.Recovery.i_gid; commit })
