(** The participant half of 2PC: per-partition protocol state and the
    idempotent handlers the coordinator's RPCs hit.

    {!stage} is the same-process surrogate for shipping a branch program
    to the partition; the later [Prepare] runs it.  Handlers answer from
    per-gid tables, so the transport may duplicate or retry any frame:

    - a duplicate [Prepare] returns the cached vote without re-running
      the branch;
    - a duplicate [Decide] finds the gid already applied and re-Acks.

    Crash point (registered at module initialization):
    - ["dist.apply"] — the decision reached the participant but the
      branch dies before applying it; the WAL still says Prepare, so
      recovery reports the branch in doubt and the decision log resolves
      it, same as a decision that never arrived. *)

type t

val make :
  ?options:Acc_core.Runtime.options ->
  ?stop:(unit -> bool) ->
  Partition.t ->
  t
(** Wrap a partition.  [options]/[stop] are forwarded to every
    {!Acc_core.Runtime.prepare} this participant runs. *)

val partition : t -> Partition.t

val stage : t -> gid:int -> Acc_core.Program.instance -> unit
(** Hand the partition its branch of global transaction [gid]; the next
    [Prepare {gid}] runs it. *)

val forget : t -> gid:int -> unit
(** Drop a staged-but-never-prepared branch (the coordinator aborted
    before this partition's Prepare arrived). *)

val handle : t -> Transport.msg -> Transport.msg
(** The request handler to build this partition's connection from:
    [Prepare]→[Vote], [Decide]→[Ack], both idempotent.  Raises
    [Invalid_argument] on a reply-kind message; lets a simulated
    {!Acc_fault.Fault.Crash} propagate. *)

val in_doubt : t -> int list
(** Gids prepared here whose decision has not been applied, ascending. *)

val max_gid : t -> int
(** Largest gid this participant has seen in any role (0 when none) — a
    failed-over coordinator restarts its counter above every survivor. *)

val settle_gid : t -> ask:(int -> bool option) -> int -> bool
(** Resolve one in-doubt gid: [ask gid] returns [Some commit] to apply
    (emitting a [Trace.Resolve]), [None] to leave the branch blocked —
    presumed abort is the coordinator's call, never the participant's
    default.  Returns whether the gid is settled (trivially true if it
    was not in doubt). *)

val settle : t -> ask:(int -> bool option) -> int * int
(** {!settle_gid} over every in-doubt gid: [(settled, still_blocked)]. *)
